(* The experiment harness: one section per experiment in DESIGN.md's
   index (E1–E10).  The paper (CLUSTER 2000) has no numbered tables —
   each experiment reproduces a figure or a quantitative claim from the
   text; EXPERIMENTS.md records the paper-vs-measured comparison.

   Wall-clock measurements (E1, E2, E7, E8) use Bechamel on this host;
   distributed-behaviour measurements (E3–E6, E9, E10) report the
   deterministic virtual clock of the simulated cluster. *)

module Api = Dityco.Api
module Cluster = Dityco.Cluster
module Site = Dityco.Site
module Output = Dityco.Output
module Report = Dityco.Report
module Stats = Tyco_support.Stats
module Latency = Tyco_net.Latency
module Simnet = Tyco_net.Simnet

let section id title =
  Format.printf "@.=== %s: %s ===@." id title

let row fmt = Format.printf fmt

(* ------------------------------------------------------------------ *)
(* Modes and machine-readable output.

   --smoke   reduced iteration counts (CI-friendly wall clock)
   --json    additionally write the recorded measurements as a flat
             JSON object (default BENCH_PR10.json; override with --out)

   Keys are flat ("e1_vm_ns_per_reduction") so shell pipelines can
   extract them without a JSON parser. *)

let smoke = ref false
let json_mode = ref false
let json_path = ref "BENCH_PR10.json"
let json_kvs : (string * string) list ref = ref [] (* newest first *)

let record k v = json_kvs := (k, v) :: !json_kvs
let record_f k v =
  record k (if Float.is_finite v then Printf.sprintf "%.1f" v else "null")
let record_i k v = record k (string_of_int v)

let write_json () =
  let oc = open_out !json_path in
  output_string oc "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then output_string oc ",";
      output_string oc (Printf.sprintf "\n  \"%s\": %s" k v))
    (List.rev !json_kvs);
  output_string oc "\n}\n";
  close_out oc;
  Format.printf "@.wrote %s (%d measurements)@." !json_path
    (List.length !json_kvs)

(* ------------------------------------------------------------------ *)
(* Bechamel helper: estimated ns per run of a thunk.                   *)

let bench_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let limit = if !smoke then 50 else 300 in
  let quota = Time.second (if !smoke then 0.1 else 0.4) in
  let cfg = Benchmark.cfg ~limit ~quota ~kde:None () in
  let results = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  match Hashtbl.fold (fun _ v acc -> v :: acc) analyzed [] with
  | [ est ] -> (
      match Analyze.OLS.estimates est with Some [ ns ] -> ns | _ -> nan)
  | _ -> nan

(* Minor-heap words allocated per run of a thunk — the allocation-rate
   side of the hot-path story (ns/run alone hides GC pressure). *)
let minor_words_per_run f =
  ignore (f ()); (* warm-up: one-time setup allocations don't count *)
  let runs = if !smoke then 3 else 10 in
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (f ())
  done;
  (Gc.minor_words () -. before) /. float_of_int runs

(* ------------------------------------------------------------------ *)
(* Workload sources.                                                   *)

(* A single-site workload: a counter object driven through [n]
   synchronous increments (~2 reductions per step). *)
let counter_src n =
  Printf.sprintf
    {| def Counter(self, acc) =
         self?{ bump(k) = (k![acc + 1] | Counter[self, acc + 1]) }
       in def Driver(c, n) =
         if n == 0 then io!printi[n]
         else new k (c!bump[k] | k?(v) = Driver[c, n - 1])
       in new c (Counter[c, 0] | Driver[c, %d]) |}
    n

(* Two-site ping-pong with a persistent server loop. *)
let pingpong_src rounds =
  Printf.sprintf
    {| site server {
         def Serve(svc) = svc?{ ping(v, k) = (k![v] | Serve[svc]) }
         in export new svc Serve[svc] }
       site client { import svc from server in
                     def Ping(n) =
                       if n == 0 then io!printi[0]
                       else let v = svc!ping[n] in Ping[n - 1]
                     in Ping[%d] } |}
    rounds

let run ?config ?placement ?until src =
  Api.run_program ?config ?placement ?until (Api.parse src)

(* ------------------------------------------------------------------ *)
(* E1 — byte-code VM vs reference interpreter.                         *)

let e1 () =
  section "E1"
    "byte-code VM vs calculus interpreter (paper: the VM design is \
     compact and efficient)";
  let n = 200 in
  let prog = Api.parse (counter_src n) in
  let run_vm () = ignore (Api.run_program ~typecheck:false prog) in
  let vm_ns = bench_ns "vm" run_vm in
  let ref_ns = bench_ns "ref" (fun () -> ignore (Api.run_reference prog)) in
  let vm_words = minor_words_per_run run_vm in
  let reductions = float_of_int (2 * n) in
  row "workload: counter, %d synchronous bumps (~%.0f reductions)@." n
    reductions;
  row "  %-28s %12.0f ns/run  %8.1f ns/reduction  %10.0f minor-words/run@."
    "byte-code VM (full cluster)" vm_ns (vm_ns /. reductions) vm_words;
  row "  %-28s %12.0f ns/run  %8.1f ns/reduction@." "reference interpreter"
    ref_ns (ref_ns /. reductions);
  row "  speedup: %.1fx@." (ref_ns /. vm_ns);
  record_f "e1_vm_ns_per_run" vm_ns;
  record_f "e1_vm_ns_per_reduction" (vm_ns /. reductions);
  record_f "e1_ref_ns_per_reduction" (ref_ns /. reductions);
  record_f "e1_speedup" (ref_ns /. vm_ns);
  record_f "e1_vm_minor_words_per_run" vm_words

(* ------------------------------------------------------------------ *)
(* E2 — byte-code compactness.                                         *)

let e2 () =
  section "E2"
    "byte-code compactness (paper: assembly/byte-code mapping almost \
     one-to-one)";
  let programs =
    [ ( "cell",
        {| def Cell(self, v) =
             self?{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
           in new x (Cell[x, 9] | new z (x!read[z] | z?(w) = io!printi[w])) |}
      );
      ("counter", counter_src 100);
      ("pingpong", pingpong_src 10);
      ( "seti",
        {| site seti {
             new database
             def DB(self, n) = self?{ chunk(k) = k![n] | DB[self, n + 1] }
             in export def Install(cl) = Go[cl]
                and Go(cl) = let d = database!chunk[] in (cl![d] | Go[cl])
             in DB[database, 0] }
           site client {
             def L(me) = me?(d) = (io!printi[d] | L[me])
             in new me (L[me] | import Install from seti in Install[me]) } |}
      ) ]
  in
  row "  %-10s %8s %8s %8s %8s %12s@." "program" "src-B" "AST" "instrs"
    "code-B" "B/AST-node";
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let units = Api.compile prog in
      let ast_nodes =
        List.fold_left
          (fun acc (s : Tyco_syntax.Ast.site_decl) ->
            acc + Tyco_syntax.Ast.size s.s_proc)
          0 prog.Tyco_syntax.Ast.sites
      in
      let stats = List.map (fun (_, u) -> Tyco_compiler.Disasm.stats u) units in
      let instrs =
        List.fold_left
          (fun a (s : Tyco_compiler.Disasm.stats) -> a + s.n_instrs)
          0 stats
      in
      let bytes =
        List.fold_left
          (fun a (s : Tyco_compiler.Disasm.stats) -> a + s.n_bytes)
          0 stats
      in
      row "  %-10s %8d %8d %8d %8d %12.2f@." name (String.length src)
        ast_nodes instrs bytes
        (float_of_int bytes /. float_of_int ast_nodes);
      record_i (Printf.sprintf "e2_%s_code_bytes" name) bytes;
      record_i (Printf.sprintf "e2_%s_instrs" name) instrs)
    programs

(* ------------------------------------------------------------------ *)
(* E3 — remote communication: two-step shipment.                       *)

let e3 () =
  section "E3"
    "remote communication cost (paper §3: asynchronous ship + local \
     rendez-vous)";
  let rounds = 50 in
  let r = run (pingpong_src rounds) in
  let rtt = float_of_int r.Api.virtual_ns /. float_of_int rounds in
  row "  %d RPC round trips over the Myrinet model@." rounds;
  row "  total %d ns, %.0f ns/round-trip (link one-way latency %d ns)@."
    r.Api.virtual_ns rtt Latency.myrinet.Latency.latency_ns;
  row "  packets: %d (2 data packets per round trip + name service)@."
    r.Api.packets;
  row "  lower bound 2 x one-way = %d ns; overhead = %.1f%%@."
    (2 * Latency.myrinet.Latency.latency_ns)
    ((rtt /. float_of_int (2 * Latency.myrinet.Latency.latency_ns) -. 1.)
    *. 100.)

(* ------------------------------------------------------------------ *)
(* E4 — link-model hierarchy (Fig. 1 platform).                        *)

let e4 () =
  section "E4"
    "link hierarchy: shared memory < Myrinet < Fast Ethernet (paper §5, \
     same-node optimization)";
  let rounds = 50 in
  let src = pingpong_src rounds in
  let with_topo name topology placement =
    let config = { Cluster.default_config with Cluster.topology } in
    let r = run ~config ?placement src in
    row "  %-24s %10.0f ns/round-trip@." name
      (float_of_int r.Api.virtual_ns /. float_of_int rounds)
  in
  with_topo "same node (shared mem)" Simnet.default_topology
    (Some (fun _ -> 0));
  with_topo "cross node (Myrinet)" Simnet.default_topology None;
  with_topo "cross node (FastEther)"
    { Simnet.default_topology with Simnet.cluster = Latency.fast_ethernet }
    None

(* ------------------------------------------------------------------ *)
(* E5 — latency hiding by context switching.                           *)

let e5 () =
  section "E5"
    "latency hiding: concurrent client threads overlap remote calls \
     (paper §1/§5)";
  let calls_per_client = 20 in
  row "  each client performs %d RPCs; server on another node@."
    calls_per_client;
  row "  %-10s %14s %18s@." "clients" "virtual ns" "calls/ms (virtual)";
  List.iter
    (fun nclients ->
      let spawn_clients =
        String.concat " | "
          (List.init nclients (fun i -> Printf.sprintf "C[%d]" i))
      in
      let src =
        Printf.sprintf
          {| site server {
               def Serve(svc) = svc?{ ping(v, k) = (k![v] | Serve[svc]) }
               in export new svc Serve[svc] }
             site client {
               import svc from server in
               def C(id) = Go[id, %d]
               and Go(id, n) =
                 if n == 0 then io!printi[id]
                 else let v = svc!ping[n] in Go[id, n - 1]
               in (%s) } |}
          calls_per_client spawn_clients
      in
      let r = run src in
      let calls = nclients * calls_per_client in
      row "  %-10d %14d %18.1f@." nclients r.Api.virtual_ns
        (float_of_int calls /. (float_of_int r.Api.virtual_ns /. 1e6)))
    [ 1; 2; 4; 8; 16; 32 ];
  row "  (throughput grows with concurrency until the link saturates)@."

(* ------------------------------------------------------------------ *)
(* E6 — code fetching vs code shipping, by applet size.                *)

let e6 () =
  section "E6"
    "applet deployment: FETCH (download class) vs SHIP (migrate object), \
     by code size (paper §4)";
  let body k =
    String.concat " | "
      (List.init k (fun i -> Printf.sprintf "io!printi[x + %d]" i))
  in
  row "  %-8s | %12s %8s | %12s %8s@." "applet" "fetch(ns)" "bytes"
    "ship(ns)" "bytes";
  List.iter
    (fun k ->
      let fetch_src =
        Printf.sprintf
          {| site server { export def Applet(x) = (%s) in nil }
             site client { import Applet from server in Applet[1] } |}
          (body k)
      in
      let ship_src =
        Printf.sprintf
          {| site server {
               def S(self) = self?{ get(p) = ((p?(x) = (%s)) | S[self]) }
               in export new srv S[srv] }
             site client { import srv from server in
                           new p (srv!get[p] | p![1]) } |}
          (body k)
      in
      let fetch = run fetch_src in
      let ship = run ship_src in
      let first_output r =
        match r.Api.outputs with (ts, _) :: _ -> ts | [] -> -1
      in
      row "  k=%-6d | %12d %8d | %12d %8d@." k (first_output fetch)
        fetch.Api.bytes (first_output ship) ship.Api.bytes)
    [ 1; 8; 32; 128 ];
  row "  (the shipped applet prints at the server: its io is lexically \
       bound there)@."

(* ------------------------------------------------------------------ *)
(* E7 — thread granularity.                                            *)

let e7 () =
  section "E7"
    "thread granularity (paper §1: a few tens of byte-code instructions \
     per thread)";
  let programs =
    [ ("counter", counter_src 100);
      ("pingpong", pingpong_src 30);
      ( "ring",
        {| new a, b, c
           (def Fa(x, y) = x?(t) = ((if t == 0 then io!printi[0] else y![t - 1]) | Fa[x, y])
            in (Fa[a, b] | Fa[b, c] | Fa[c, a] | a![300])) |} ) ]
  in
  row "  %-10s %8s %8s %8s %8s %8s@." "program" "threads" "mean" "p50" "p95"
    "max";
  List.iter
    (fun (name, src) ->
      let r = run src in
      let sites = Cluster.sites r.Api.cluster in
      (* report the busiest site *)
      let site =
        List.fold_left
          (fun best s ->
            let c v =
              Stats.Counter.value (Stats.counter (Site.stats v) "threads")
            in
            if c s > c best then s else best)
          (List.hd sites) sites
      in
      let d = Stats.dist (Site.stats site) "thread_len" in
      row "  %-10s %8d %8.1f %8.0f %8.0f %8.0f@." name (Stats.Dist.count d)
        (Stats.Dist.mean d)
        (Stats.Dist.percentile d 0.5)
        (Stats.Dist.percentile d 0.95)
        (Stats.Dist.max d))
    programs

(* ------------------------------------------------------------------ *)
(* E8 — name service costs.                                            *)

let e8 () =
  section "E8"
    "name service: registration/lookup micro-cost and import latency \
     (paper §5)";
  let ns = Tyco_net.Nameservice.create () in
  let i = ref 0 in
  let reg_ns =
    bench_ns "register" (fun () ->
        incr i;
        let r =
          Tyco_support.Netref.make ~kind:Tyco_support.Netref.Channel
            ~heap_id:!i ~site_id:0 ~ip:0
        in
        ignore
          (Tyco_net.Nameservice.register_id ns ~site:"s"
             ~name:(string_of_int (!i land 1023))
             r))
  in
  let w = { Tyco_net.Nameservice.w_req_id = 0; w_site = 0; w_ip = 0 } in
  let look_ns =
    bench_ns "lookup" (fun () ->
        incr i;
        ignore
          (Tyco_net.Nameservice.lookup_id ns ~site:"s"
             ~name:(string_of_int (!i land 1023))
             w))
  in
  row "  register: %.0f ns/op (host), lookup: %.0f ns/op (host)@." reg_ns
    look_ns;
  let r =
    run
      {| site a { export new p p?(v) = io!printi[v] }
         site b { import p from a in p![1] } |}
  in
  row "  cold import to first reduction: %d virtual ns@."
    (match r.Api.outputs with (ts, _) :: _ -> ts | [] -> -1)

(* ------------------------------------------------------------------ *)
(* E9 — scaling on the Fig. 1 cluster (4 nodes x 2 cpus).              *)

let e9 () =
  section "E9"
    "scaling: master/worker fan-out on 4 nodes x 2 cores (paper Fig. 1 \
     platform)";
  let items = 64 in
  let work = 400 in
  row "  %d work items, each ~%d instructions of local compute@." items
    (work * 3);
  row "  %-10s %14s %10s@." "workers" "virtual ns" "speedup";
  let base = ref 0.0 in
  List.iter
    (fun nworkers ->
      let worker i =
        Printf.sprintf
          {| site w%d {
               import pool from master in
               def Crunch(n, k) = if n == 0 then k![1] else Crunch[n - 1, k]
               and Work() = new k (
                 pool!take[k]
                 | k?{ item(v) = new d (Crunch[%d, d] | d?(x) = Work[]),
                       stop() = io!printi[%d] })
               in Work[] } |}
          i work i
      in
      let master =
        Printf.sprintf
          {| site master {
               def Pool(self, left) =
                 self?{ take(k) = (if left == 0 then (k!stop[] | Pool[self, left])
                                   else (k!item[left] | Pool[self, left - 1])) }
               in export new pool Pool[pool, %d] } |}
          items
      in
      let src = master ^ String.concat "" (List.init nworkers worker) in
      let placement name =
        if name = "master" then 0
        else
          (int_of_string (String.sub name 1 (String.length name - 1)) + 1)
          mod 4
      in
      let r = run ~placement src in
      let t = float_of_int r.Api.virtual_ns in
      if nworkers = 1 then base := t;
      row "  %-10d %14d %10.2fx@." nworkers r.Api.virtual_ns (!base /. t))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E10 — termination detection overhead (paper future work).           *)

let e10 () =
  section "E10"
    "termination detection: probe overhead and detection latency (paper \
     §7 future work)";
  let src = pingpong_src 150 in
  let plain = run src in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse src));
  let report = Dityco.Termination.run_with_detection ~period:200_000 cluster in
  let actual = Cluster.virtual_time cluster in
  row "  run without detector: %d virtual ns@." plain.Api.virtual_ns;
  (match report.Dityco.Termination.detected_at with
  | Some t ->
      row "  detector announced at %d ns (%d ns after quiescence)@." t
        (t - plain.Api.virtual_ns)
  | None -> row "  detector: no announcement (unexpected)@.");
  row "  probes: %d, modelled control overhead: %d ns (%.2f%% of run)@."
    report.Dityco.Termination.probes
    report.Dityco.Termination.probe_overhead_ns
    (100.
    *. float_of_int report.Dityco.Termination.probe_overhead_ns
    /. float_of_int (max actual 1))

(* ------------------------------------------------------------------ *)
(* E11 — centralized vs replicated name service (paper future work).   *)

let e11 () =
  section "E11"
    "name service deployment: centralized vs per-node replicas (paper \
     \xc2\xa77 future work)";
  let nclients = 6 in
  let src =
    Printf.sprintf
      {| site server { export new p
           def L(x) = p?(v) = (io!printi[v] | L[x]) in L[0] }
         %s |}
      (String.concat ""
         (List.init nclients (fun i ->
              Printf.sprintf
                "site c%d { import p from server in p![%d] }" i i)))
  in
  let measure name cfg =
    let r = run ~config:cfg src in
    let last =
      List.fold_left (fun acc (ts, _) -> max acc ts) 0 r.Api.outputs
    in
    row "  %-14s last-import-resolved=%8d ns  packets=%3d  bytes=%5d@."
      name last r.Api.packets r.Api.bytes
  in
  row "  %d importer sites spread over 4 nodes@." nclients;
  measure "centralized" Cluster.default_config;
  measure "replicated"
    { Cluster.default_config with Cluster.ns_mode = Cluster.Replicated };
  row "  (replication trades broadcast registrations for local lookups)@."

(* ------------------------------------------------------------------ *)
(* E12 — peephole ablation (DESIGN.md design decision).                *)

let e12 () =
  section "E12" "peephole optimization ablation: code size and speed";
  let prog =
    Api.parse
      {| def Go(n) = if n == 0 then io!printi[1 + 2 * 3 - 4 / 2]
                     else Go[n - (3 - 2)]
         in Go[500] |}
  in
  let size opt =
    List.fold_left
      (fun acc (_, u) -> acc + Tyco_compiler.Bytecode.byte_size u)
      0
      (Tyco_compiler.Compile.compile_program ~optimize:opt prog)
  in
  let instrs opt =
    List.fold_left
      (fun acc (_, u) -> acc + Tyco_compiler.Block.instr_count u)
      0
      (Tyco_compiler.Compile.compile_program ~optimize:opt prog)
  in
  row "  %-14s %8s %8s@." "" "instrs" "bytes";
  row "  %-14s %8d %8d@." "unoptimized" (instrs false) (size false);
  row "  %-14s %8d %8d@." "peephole" (instrs true) (size true);
  (* virtual-time effect on an arithmetic-heavy workload *)
  let arith =
    {| def Go(n) = if n == 0 then io!printi[1 + 2 * 3 - 4 / 2]
                   else Go[n - (3 - 2)]
       in Go[500] |}
  in
  let vt opt =
    let units =
      Tyco_compiler.Compile.compile_program ~optimize:opt (Api.parse arith)
    in
    let cluster = Cluster.create () in
    Cluster.load cluster units;
    Cluster.run cluster;
    Cluster.virtual_time cluster
  in
  row "  arithmetic loop: %d ns unoptimized, %d ns peephole (%.1f%% less)@."
    (vt false) (vt true)
    (100. *. (1. -. float_of_int (vt true) /. float_of_int (vt false)))

(* ------------------------------------------------------------------ *)
(* E13 — scheduling-quantum ablation.                                  *)

let e13 () =
  section "E13"
    "scheduling quantum ablation: context-switch overhead on a      compute-heavy site";
  let src =
    {| def Loop(n) = if n == 0 then io!printi[0] else Loop[n - 1]
       in Loop[30000] |}
  in
  let time quantum =
    let config = { Cluster.default_config with Cluster.quantum } in
    (run ~config src).Api.virtual_ns
  in
  let base = time 512 in
  row "  %-10s %14s %10s@." "quantum" "virtual ns" "vs 512";
  List.iter
    (fun quantum ->
      let t = time quantum in
      row "  %-10d %14d %9.2fx@." quantum t
        (float_of_int t /. float_of_int base))
    [ 8; 64; 512; 4096 ];
  row "  (small quanta pay a context switch every few instructions; the        messaging workloads of E3-E5 are quantum-insensitive because        their threads are shorter than any quantum — outputs are always        identical, which the metamorphic tests assert)@."

(* ------------------------------------------------------------------ *)
(* E14 — payload size vs transfer time (the bandwidth term).           *)

let e14 () =
  section "E14" "payload size vs one-way transfer time (link bandwidth term)";
  row "  %-10s %14s %14s@." "args" "myrinet ns" "ethernet ns";
  List.iter
    (fun nargs ->
      let args =
        String.concat ", " (List.init nargs string_of_int)
      in
      let params =
        String.concat ", " (List.init nargs (Printf.sprintf "a%d"))
      in
      let src =
        Printf.sprintf
          {| site a { export new p p?(%s) = io!printi[a0] }
             site b { import p from a in p![%s] } |}
          params args
      in
      let t topology =
        let config = { Cluster.default_config with Cluster.topology } in
        let r = run ~config src in
        match r.Api.outputs with (ts, _) :: _ -> ts | [] -> -1
      in
      let myri = t Simnet.default_topology in
      let ether =
        t { Simnet.default_topology with
            Simnet.cluster = Latency.fast_ethernet }
      in
      row "  %-10d %14d %14d@." nargs myri ether;
      record_i (Printf.sprintf "e14_args%d_myrinet_ns" nargs) myri;
      record_i (Printf.sprintf "e14_args%d_ethernet_ns" nargs) ether)
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E15 — reliable delivery under an adversarial fabric.                 *)

let e15 () =
  section "E15"
    "chaos: at-least-once delivery cost under packet loss (drop/dup/reorder)";
  let src = pingpong_src 30 in
  let clean = run src in
  let clean_outs = List.map snd clean.Api.outputs in
  row "  %-22s %12s %9s %8s %8s %8s  %s@." "fabric" "virtual ns" "packets"
    "drops" "retries" "dupes" "outputs";
  let trial name config =
    let r = run ~config src in
    let stats = Cluster.stats r.Api.cluster in
    let c n = Stats.counter_value stats n in
    row "  %-22s %12d %9d %8d %8d %8d  %s@." name r.Api.virtual_ns
      r.Api.packets (c "drops") (c "retries") (c "dupes_suppressed")
      (if Output.same_multiset clean_outs (List.map snd r.Api.outputs) then
         "intact"
       else "LOST")
  in
  trial "clean (seed run)"
    { Cluster.default_config with Cluster.reliable = true };
  List.iter
    (fun drop ->
      let faults =
        { Simnet.no_faults with
          Simnet.drop; duplicate = 0.1; reorder = 0.3; reorder_ns = 50_000 }
      in
      trial
        (Printf.sprintf "drop %.1f" drop)
        { Cluster.default_config with Cluster.faults; reliable = true })
    [ 0.1; 0.2; 0.3 ];
  (* the same adversary over a WAN-grade link: timeouts are dwarfed by
     propagation, so loss costs relatively less *)
  let faults =
    { Simnet.no_faults with
      Simnet.drop = 0.2; duplicate = 0.1; reorder = 0.3;
      reorder_ns = 50_000 }
  in
  trial "drop 0.2 over WAN"
    { Cluster.default_config with
      Cluster.topology =
        { Simnet.default_topology with Simnet.cluster = Latency.wan };
      faults;
      reliable = true;
      retry =
        { Cluster.default_retry_params with Cluster.rto_ns = 12_000_000 } }

(* ------------------------------------------------------------------ *)
(* E16 — transmit batching: frames, acks and allocation per message.   *)

(* The burst workload: a client fires [burst] asynchronous [put]s at
   each of [fanout] remote sinks, then a synchronous [flush] round-trip
   per sink, [rounds] times.  All of one round's sends leave the client
   within one scheduling quantum — the shape per-destination coalescing
   is built for. *)
let burst_src ~rounds ~burst ~fanout ~payload =
  let args = String.concat ", " (List.init payload string_of_int) in
  let params = String.concat ", " (List.init payload (Printf.sprintf "a%d")) in
  let sink i =
    Printf.sprintf
      {| site sink%d {
           export new svc%d
           def Serve%d(self) =
             self?{ put(%s) = Serve%d[self], flush(k) = (k![0] | Serve%d[self]) }
           in Serve%d[svc%d] } |}
      i i i params i i i i
  in
  let rec round_body i =
    if i = fanout then "Round[r - 1]"
    else
      Printf.sprintf "new k%d (%s svc%d!flush[k%d] | k%d?(v%d) = %s)" i
        (String.concat ""
           (List.init burst (fun _ -> Printf.sprintf "svc%d!put[%s] | " i args)))
        i i i i (round_body (i + 1))
  in
  let imports =
    String.concat " "
      (List.init fanout (fun i -> Printf.sprintf "import svc%d from sink%d in" i i))
  in
  Printf.sprintf
    {| %s
       site client {
         %s
         def Round(r) = if r == 0 then io!printi[0] else %s
         in Round[%d] } |}
    (String.concat "" (List.init fanout sink))
    imports (round_body 0) rounds

let e16 () =
  section "E16"
    "transmit batching: per-destination coalescing, cumulative acks, \
     buffer pooling";
  let rounds = if !smoke then 20 else 60 in
  let burst = 16 in
  (* client on node 0; sinks spread over the other three nodes *)
  let placement name =
    if name = "client" then 0
    else if String.length name > 4 && String.sub name 0 4 = "sink" then
      1 + (int_of_string (String.sub name 4 (String.length name - 4)) mod 3)
    else 0
  in
  let cfg ~batching ~reliable =
    { Cluster.default_config with Cluster.batching; reliable }
  in
  let messages ~fanout = rounds * fanout * (burst + 2) in
  (* one trial: run the burst program, return the per-message stats *)
  let trial ?(fanout = 1) ?(payload = 1) config =
    let src = burst_src ~rounds ~burst ~fanout ~payload in
    let r = run ~config ~placement src in
    let cl = r.Api.cluster in
    let stats = Cluster.stats cl in
    let pk = float_of_int (max 1 r.Api.packets) in
    ( r,
      float_of_int (Cluster.frames_sent cl) /. pk,
      float_of_int (Stats.counter_value stats "acks") /. pk,
      Cluster.batch_fill_mean cl,
      Cluster.acks_piggybacked cl )
  in
  row "  %d rounds of %d-packet bursts + 1 sync flush, client->sink, \
       per config:@." rounds burst;
  row "  %-26s %9s %9s %8s %8s %8s %12s@." "config" "packets" "frames"
    "frm/pkt" "ack/pkt" "fill" "virtual ns";
  let show name (r, fpp, app, fill, _piggy) =
    row "  %-26s %9d %9d %8.2f %8.2f %8.1f %12d@." name r.Api.packets
      (Cluster.frames_sent r.Api.cluster) fpp app fill r.Api.virtual_ns
  in
  let b_unrel = trial (cfg ~batching:true ~reliable:false) in
  let u_unrel = trial (cfg ~batching:false ~reliable:false) in
  let b_rel = trial (cfg ~batching:true ~reliable:true) in
  let u_rel = trial (cfg ~batching:false ~reliable:true) in
  show "batched" b_unrel;
  show "unbatched" u_unrel;
  show "batched + reliable" b_rel;
  show "unbatched + reliable" u_rel;
  let (rb, fpp_b, _, fill_b, _) = b_unrel in
  let (_, fpp_u, _, _, _) = u_unrel in
  let (rbr, fpp_br, app_br, _, piggy_br) = b_rel in
  let (_, fpp_ur, app_ur, _, _) = u_rel in
  (* frames reduction: same workload, same packet count, fewer frames *)
  let red_unrel = fpp_u /. fpp_b in
  let red_rel = fpp_ur /. fpp_br in
  row "  frames reduction: %.1fx unreliable, %.1fx reliable \
       (acks/packet %.2f -> %.2f, %d piggybacked)@."
    red_unrel red_rel app_ur app_br piggy_br;
  (* modeled latency the coalescing saved: n-1 fixed overheads per batch *)
  let saved =
    Latency.coalesce_saved_ns
      (Simnet.default_topology.Simnet.cluster)
      ~packets:(int_of_float (Float.round fill_b))
  in
  row "  mean fill %.1f pkts/batch -> %d ns modeled fixed overhead saved \
       per flush@." fill_b saved;
  (* host-side cost: wall clock and allocation per message.  The
     program is compiled once outside the thunk — the measured loop is
     place + run on a fresh cluster, so the delta between the two
     configs is the transport path itself.  A third run with every
     site on one node (pure same-node fast path, no fabric) gives the
     workload's VM baseline; subtracting it isolates what the
     *transport* allocates per message, which is the quantity batching
     changes. *)
  let msgs = float_of_int (messages ~fanout:1) in
  let units = Api.compile (Api.parse (burst_src ~rounds ~burst ~fanout:1 ~payload:1)) in
  let thunk placement config () =
    let cluster = Cluster.create ~config () in
    Cluster.load ~placement cluster units;
    Cluster.run cluster
  in
  let b_ns = bench_ns "e16-batched" (thunk placement (cfg ~batching:true ~reliable:true)) in
  let u_ns = bench_ns "e16-unbatched" (thunk placement (cfg ~batching:false ~reliable:true)) in
  let b_words = minor_words_per_run (thunk placement (cfg ~batching:true ~reliable:true)) in
  let u_words = minor_words_per_run (thunk placement (cfg ~batching:false ~reliable:true)) in
  let base_words =
    minor_words_per_run (thunk (fun _ -> 0) (cfg ~batching:true ~reliable:true))
  in
  let b_net = (b_words -. base_words) /. msgs in
  let u_net = (u_words -. base_words) /. msgs in
  let words_red = 100. *. (1. -. (b_net /. u_net)) in
  row "  host cost/message (reliable): %.0f ns, %.1f minor-words batched; \
       %.0f ns, %.1f minor-words unbatched@."
    (b_ns /. msgs) (b_words /. msgs) (u_ns /. msgs) (u_words /. msgs);
  row "  transport minor-words/message (net of %.1f same-node baseline): \
       %.1f batched vs %.1f unbatched (%.0f%% fewer)@."
    (base_words /. msgs) b_net u_net words_red;
  record_f "e16_frames_per_packet" fpp_b;
  record_f "e16_unbatched_frames_per_packet" fpp_u;
  record_f "e16_frames_reduction" red_unrel;
  record_f "e16_reliable_frames_per_packet" fpp_br;
  record_f "e16_reliable_unbatched_frames_per_packet" fpp_ur;
  record_f "e16_reliable_frames_reduction" red_rel;
  record_f "e16_acks_per_packet" app_br;
  record_f "e16_unbatched_acks_per_packet" app_ur;
  record_i "e16_acks_piggybacked" piggy_br;
  record_f "e16_batch_fill_mean" fill_b;
  record_i "e16_batched_virtual_ns" rb.Api.virtual_ns;
  record_i "e16_reliable_batched_virtual_ns" rbr.Api.virtual_ns;
  record_f "e16_batched_ns_per_msg" (b_ns /. msgs);
  record_f "e16_unbatched_ns_per_msg" (u_ns /. msgs);
  record_f "e16_batched_minor_words_per_msg" (b_words /. msgs);
  record_f "e16_unbatched_minor_words_per_msg" (u_words /. msgs);
  record_f "e16_baseline_minor_words_per_msg" (base_words /. msgs);
  record_f "e16_transport_minor_words_per_msg_batched" b_net;
  record_f "e16_transport_minor_words_per_msg_unbatched" u_net;
  record_f "e16_minor_words_reduction_pct" words_red;
  if not !smoke then begin
    (* the sweep: flush thresholds x fan-out x payload *)
    row "  sweep (batched, unreliable): frm/pkt by flush threshold, \
         fan-out, payload@.";
    row "  %-34s %8s %8s %8s@." "point" "packets" "frm/pkt" "fill";
    let sweep name ?fanout ?payload config =
      let (r, fpp, _, fill, _) = trial ?fanout ?payload config in
      row "  %-34s %8d %8.2f %8.1f@." name r.Api.packets fpp fill
    in
    List.iter
      (fun n ->
        sweep
          (Printf.sprintf "flush_max_packets=%d" n)
          { (cfg ~batching:true ~reliable:false) with
            Cluster.flush_max_packets = n })
      [ 2; 4; 8; 16; 32 ];
    List.iter
      (fun d ->
        sweep
          (Printf.sprintf "flush_deadline_ns=%d" d)
          { (cfg ~batching:true ~reliable:false) with
            Cluster.flush_deadline_ns = d })
      [ 0; 1_000; 10_000 ];
    List.iter
      (fun fanout ->
        sweep
          (Printf.sprintf "fanout=%d" fanout)
          ~fanout (cfg ~batching:true ~reliable:false))
      [ 1; 2; 3 ];
    List.iter
      (fun payload ->
        sweep
          (Printf.sprintf "payload=%d args" payload)
          ~payload (cfg ~batching:true ~reliable:false))
      [ 1; 8; 32 ]
  end

(* ------------------------------------------------------------------ *)
(* E17 — resource lifecycle soak: live state tracks the working set.   *)

(* The churn workload: every synchronous RPC allocates a fresh reply
   channel which the caller exports to the server — the canonical
   unbounded-growth shape.  [clients] sites each make [rounds] calls;
   with leases off every reply channel stays resident forever, with
   leases on the steady-state export tables track the in-flight
   window only. *)
let churn_src ~clients ~rounds =
  let client i =
    Printf.sprintf
      {| site c%d { import svc from server in
                    def Ping(n) = if n == 0 then io!printi[%d]
                                  else let v = svc!ping[n] in Ping[n - 1]
                    in Ping[%d] } |}
      i i rounds
  in
  Printf.sprintf
    {| site server {
         def Serve(svc) = svc?{ ping(v, k) = (k![v] | Serve[svc]) }
         in export new svc Serve[svc] }
       %s |}
    (String.concat "" (List.init clients client))

let e17 () =
  section "E17"
    "resource lifecycle soak: export tables bounded by the live working \
     set (leases) vs linear growth (baseline)";
  let clients = 4 in
  let rounds = if !smoke then 2_000 else 125_000 in
  let messages = 2 * clients * rounds in
  let leased_cfg =
    { Cluster.default_config with
      Cluster.lease_ns = 200_000; lease_refresh_ns = 50_000 }
  in
  let trial config ~rounds =
    let r = run ~config (churn_src ~clients ~rounds) in
    (r, (Report.of_result r).Report.memory)
  in
  row "  %d clients x %d RPCs = %d messages; each call exports a fresh \
       reply channel@." clients rounds messages;
  row "  %-10s %10s %10s %10s %10s %8s@." "config" "live" "allocated"
    "reclaimed" "refreshes" "held";
  let show name (_, m) =
    row "  %-10s %10d %10d %10d %10d %8d@." name m.Report.mem_chan_live
      m.Report.mem_chan_allocated m.Report.mem_ids_reclaimed
      m.Report.mem_lease_refreshes m.Report.mem_held_imports
  in
  let ((_, bm) as baseline) = trial Cluster.default_config ~rounds in
  let ((lr, lm) as leased) = trial leased_cfg ~rounds in
  show "baseline" baseline;
  show "leased" leased;
  (* the flatness evidence: half the churn, same steady-state live
     count under leases — while the baseline live count halves with the
     workload because it *is* the workload size *)
  let _, bh = trial Cluster.default_config ~rounds:(rounds / 2) in
  let _, lh = trial leased_cfg ~rounds:(rounds / 2) in
  row "  half-scale: baseline live %d -> %d (linear); leased live %d -> %d \
       (flat)@."
    bh.Report.mem_chan_live bm.Report.mem_chan_live lh.Report.mem_chan_live
    lm.Report.mem_chan_live;
  row "  leased end state: done_reqs=%d code_cache=%d fetch_cache=%d \
       stale_refs=%d@."
    lm.Report.mem_done_reqs lm.Report.mem_code_cache lm.Report.mem_fetch_cache
    lm.Report.mem_stale_refs;
  record_i "e17_messages" messages;
  record_i "e17_baseline_live_exports_end" bm.Report.mem_chan_live;
  record_i "e17_baseline_live_exports_half" bh.Report.mem_chan_live;
  record_i "e17_baseline_allocated" bm.Report.mem_chan_allocated;
  record_i "e17_live_exports_end" lm.Report.mem_chan_live;
  record_i "e17_live_exports_half" lh.Report.mem_chan_live;
  record_i "e17_leased_allocated" lm.Report.mem_chan_allocated;
  record_i "e17_leased_reclaimed" lm.Report.mem_ids_reclaimed;
  record_i "e17_lease_refreshes" lm.Report.mem_lease_refreshes;
  record_i "e17_held_imports_end" lm.Report.mem_held_imports;
  record_i "e17_done_reqs_end" lm.Report.mem_done_reqs;
  record_i "e17_stale_refs" lm.Report.mem_stale_refs;
  record_i "e17_leased_virtual_ns" lr.Api.virtual_ns

(* ------------------------------------------------------------------ *)
(* E18 — per-subsystem overhead: what each optional feature costs.     *)
(* The PR-6 regression (2.2x -> 1.2x E1 speedup) was bookkeeping from  *)
(* tracing/lease/batching accumulating on always-on paths; this        *)
(* microbench prices each subsystem separately — host ns/run and       *)
(* minor-words/run deltas against the same workload with the feature   *)
(* toggled — so a future PR sees what its hooks cost before it lands.  *)
(* Two workloads: the local E1 counter (pure reduction path, no        *)
(* packets) and a cross-node ping-pong (send path, exports, frames).   *)

let e18 () =
  section "E18"
    "per-subsystem overhead: trace/lease/batching on-off deltas";
  let local = Api.parse (counter_src 200) in
  let xnode = Api.parse (pingpong_src 50) in
  let measure prog config =
    let f () = ignore (Api.run_program ~typecheck:false ~config prog) in
    (bench_ns "cfg" f, minor_words_per_run f)
  in
  let base = Cluster.default_config in
  let traced =
    { base with Cluster.tracing = true }
  in
  let leased =
    { base with
      Cluster.lease_ns = 200_000; lease_refresh_ns = 50_000 }
  in
  let unbatched = { base with Cluster.batching = false } in
  let metered = { base with Cluster.metrics = true } in
  let pct over baseline =
    if baseline > 0. then (over -. baseline) /. baseline *. 100. else nan
  in
  let report tag prog configs =
    let base_ns, base_mw = measure prog base in
    row "  %-10s %-10s %12.0f ns/run  %10.0f minor-words/run@." tag "base"
      base_ns base_mw;
    record_f (Printf.sprintf "e18_%s_base_ns_per_run" tag) base_ns;
    record_f (Printf.sprintf "e18_%s_base_minor_words_per_run" tag) base_mw;
    List.iter
      (fun (name, config) ->
        let ns, mw = measure prog config in
        row "  %-10s %-10s %12.0f ns/run  %10.0f minor-words/run  (%+.1f%% ns)@."
          tag name ns mw (pct ns base_ns);
        record_f (Printf.sprintf "e18_%s_%s_ns_per_run" tag name) ns;
        record_f (Printf.sprintf "e18_%s_%s_minor_words_per_run" tag name) mw;
        record_f (Printf.sprintf "e18_%s_%s_overhead_pct" tag name)
          (pct ns base_ns))
      configs
  in
  (* local: disabled features must cost ~zero here — the trace/lease
     deltas on this workload are the number the E1 gate protects *)
  report "local" local
    [ ("trace", traced); ("lease", leased); ("metrics", metered) ];
  (* cross-node: what the same subsystems cost when actually exercised,
     plus the batching delta (frames vs per-packet transmission) *)
  report "xnode" xnode
    [ ("trace", traced); ("lease", leased); ("nobatch", unbatched);
      ("metrics", metered) ]

(* ------------------------------------------------------------------ *)
(* E19 — multicore scaling: the E9 master/worker workload, scaled up,  *)
(* run through the sharded multi-domain engine at 1/2/4/8 domains.     *)
(* Aggregate throughput = VM instructions / wall ns; the CI gate wants *)
(* >= 2.5x at 4 domains, which needs >= 4 host cores — the host core   *)
(* count is recorded so the gate can skip loudly on small runners.     *)

let e19 () =
  section "E19"
    "multicore scaling: domain-sharded cluster, E9-shaped master/worker \
     fan-out on 8 nodes";
  (* the workload does NOT shrink in smoke mode: the CI gate reads the
     smoke-run numbers, and a toy-sized run would measure domain spawn
     and coordinator overhead instead of scaling (only the repeat
     count shrinks) *)
  let items = 256 in
  let work = 2_000 in
  let nodes = 8 in
  let nworkers = 8 in
  let worker i =
    Printf.sprintf
      {| site w%d {
           import pool from master in
           def Crunch(n, k) = if n == 0 then k![1] else Crunch[n - 1, k]
           and Work() = new k (
             pool!take[k]
             | k?{ item(v) = new d (Crunch[%d, d] | d?(x) = Work[]),
                   stop() = io!printi[%d] })
           in Work[] } |}
      i work i
  in
  let master =
    Printf.sprintf
      {| site master {
           def Pool(self, left) =
             self?{ take(k) = (if left == 0 then (k!stop[] | Pool[self, left])
                               else (k!item[left] | Pool[self, left - 1])) }
           in export new pool Pool[pool, %d] } |}
      items
  in
  let src = master ^ String.concat "" (List.init nworkers worker) in
  let prog = Api.parse src in
  let placement name =
    if name = "master" then 0
    else
      (int_of_string (String.sub name 1 (String.length name - 1)) + 1)
      mod nodes
  in
  let config = { Cluster.default_config with Cluster.nodes } in
  let host_cores = Domain.recommended_domain_count () in
  row "  %d work items x ~%d instructions, %d workers on %d nodes, host \
       has %d cores@."
    items (work * 3) nworkers nodes host_cores;
  record_i "e19_host_cores" host_cores;
  row "  %-10s %12s %14s %10s %10s %10s@." "domains" "wall ms"
    "Minstr/s" "speedup" "handoffs" "parks";
  let repeats = if !smoke then 1 else 3 in
  let base_tp = ref 0.0 in
  List.iter
    (fun d ->
      (* best of [repeats]: wall-clock runs are noisy, min is the
         standard estimator for a fixed workload *)
      let best = ref None in
      for _ = 1 to repeats do
        let r = Api.run_parallel ~config ~placement ~domains:d prog in
        if r.Dityco.Par_runner.timed_out then
          failwith "e19: parallel run timed out";
        match !best with
        | Some b when b.Dityco.Par_runner.wall_ns <= r.Dityco.Par_runner.wall_ns
          ->
            ()
        | _ -> best := Some r
      done;
      let r = Option.get !best in
      let tp =
        float_of_int r.Dityco.Par_runner.instructions
        /. float_of_int (max r.Dityco.Par_runner.wall_ns 1)
      in
      if d = 1 then base_tp := tp;
      let speedup = tp /. !base_tp in
      row "  %-10d %12.1f %14.1f %9.2fx %10d %10d@." d
        (float_of_int r.Dityco.Par_runner.wall_ns /. 1e6)
        (tp *. 1e3) speedup r.Dityco.Par_runner.handoffs
        r.Dityco.Par_runner.parks;
      record_f (Printf.sprintf "e19_minstr_per_s_d%d" d) (tp *. 1e3);
      record_i (Printf.sprintf "e19_wall_ms_d%d" d)
        (r.Dityco.Par_runner.wall_ns / 1_000_000);
      record_i (Printf.sprintf "e19_handoffs_d%d" d)
        r.Dityco.Par_runner.handoffs;
      if d = 4 then
        record "e19_speedup_d4" (Printf.sprintf "%.3f" speedup))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E20 — load-aware placement: a Zipf-skewed workload (site counts per *)
(* node follow a heavy-headed distribution, with the two heaviest      *)
(* nodes colliding at ip mod 4) run through the sharded engine under   *)
(* --placement mod vs greedy.  Work is statically attached to sites —  *)
(* no pool to self-balance through — so the makespan is the loaded     *)
(* shard's: mod serializes 18/32 of the work on one domain where       *)
(* greedy's bound is the single heaviest node (12/32).  The CI gate    *)
(* wants greedy >= 1.3x mod at 4 domains (needs >= 4 host cores).      *)

let e20 () =
  section "E20"
    "load-aware placement: Zipf-skewed site counts on 8 nodes, mod vs \
     greedy sharding";
  (* per-node site counts: Zipf-ish head, permuted so the heavy nodes
     0 and 4 collide at ip mod 4 (the adversarial-but-realistic case:
     a skewed deployment that happens to alias under round-robin) *)
  let site_counts = [| 12; 3; 2; 2; 6; 2; 1; 4 |] in
  let nodes = Array.length site_counts in
  let work = 4_000 in
  let total_sites = Array.fold_left ( + ) 0 site_counts in
  let nworkers = total_sites - 1 (* node 0's first site is the hub *) in
  let hub =
    Printf.sprintf
      {| site hub {
           def Count(self, n) =
             self?{ ping() = if n == 1 then io!printi[0]
                             else Count[self, n - 1] }
           in export new done Count[done, %d] } |}
      nworkers
  in
  let worker name =
    (* fixed instruction budget per site, one cross-node completion
       ping: compute-bound with a trickle of fabric traffic *)
    Printf.sprintf
      {| site %s {
           import done from hub in
           def Crunch(n, k) = if n == 0 then k![1] else Crunch[n - 1, k]
           in new d (Crunch[%d, d] | d?(x) = done!ping[]) } |}
      name work
  in
  let names =
    List.concat
      (List.init nodes (fun n ->
           let count = site_counts.(n) - if n = 0 then 1 else 0 in
           List.init count (fun j -> Printf.sprintf "w%d_%d" n j)))
  in
  let src = hub ^ String.concat "" (List.map worker names) in
  let prog = Api.parse src in
  let placement name =
    (* "w<node>_<j>" — parsed by hand: Scanf's %d would swallow the
       underscore as a digit separator *)
    if name = "hub" then 0
    else
      let us = String.index name '_' in
      int_of_string (String.sub name 1 (us - 1))
  in
  let config = { Cluster.default_config with Cluster.nodes } in
  let host_cores = Domain.recommended_domain_count () in
  row "  %d sites on %d nodes (counts %s), ~%d instructions each, host \
       has %d cores@."
    total_sites nodes
    (String.concat ","
       (Array.to_list (Array.map string_of_int site_counts)))
    (work * 3) host_cores;
  record_i "e20_host_cores" host_cores;
  row "  %-8s %-8s %12s %14s %10s %12s@." "policy" "domains" "wall ms"
    "Minstr/s" "handoffs" "exec imbal";
  let repeats = if !smoke then 1 else 3 in
  let tp_at = Hashtbl.create 8 in
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun d ->
          let best = ref None in
          for _ = 1 to repeats do
            let r = Api.run_parallel ~config ~placement ~policy ~domains:d prog in
            if r.Dityco.Par_runner.timed_out then
              failwith "e20: parallel run timed out";
            match !best with
            | Some b
              when b.Dityco.Par_runner.wall_ns <= r.Dityco.Par_runner.wall_ns
              ->
                ()
            | _ -> best := Some r
          done;
          let r = Option.get !best in
          let tp =
            float_of_int r.Dityco.Par_runner.instructions
            /. float_of_int (max r.Dityco.Par_runner.wall_ns 1)
          in
          Hashtbl.replace tp_at (pname, d) tp;
          (* per-shard executed-events imbalance: max/mean, 1.0 =
             perfectly even — the signal the placement is meant to fix *)
          let execs =
            Array.map
              (fun s -> float_of_int s.Dityco.Par_runner.ss_events)
              r.Dityco.Par_runner.shard_stats
          in
          let imbal = Dityco.Placement.imbalance execs in
          row "  %-8s %-8d %12.1f %14.1f %10d %11.2fx@." pname d
            (float_of_int r.Dityco.Par_runner.wall_ns /. 1e6)
            (tp *. 1e3) r.Dityco.Par_runner.handoffs imbal;
          record_f
            (Printf.sprintf "e20_minstr_per_s_%s_d%d" pname d)
            (tp *. 1e3);
          record_i
            (Printf.sprintf "e20_wall_ms_%s_d%d" pname d)
            (r.Dityco.Par_runner.wall_ns / 1_000_000);
          record
            (Printf.sprintf "e20_exec_imbalance_%s_d%d" pname d)
            (Printf.sprintf "%.3f" imbal);
          if d = 4 then
            record
              (Printf.sprintf "e20_batch_fill_%s_d4" pname)
              (Printf.sprintf "%.2f" r.Dityco.Par_runner.ring_batch_fill_mean))
        [ 1; 2; 4; 8 ])
    [ ("mod", Dityco.Placement.Mod); ("greedy", Dityco.Placement.Greedy) ];
  let gain =
    Hashtbl.find tp_at ("greedy", 4) /. Hashtbl.find tp_at ("mod", 4)
  in
  row "  greedy/mod throughput at 4 domains: %.2fx@." gain;
  record "e20_gain_d4" (Printf.sprintf "%.3f" gain)

(* ------------------------------------------------------------------ *)
(* E21 — dynamic rebalancing: a phase-shifting workload where the hot  *)
(* half of the nodes alternates.  Greedy static placement is perfect   *)
(* for the run as a whole yet wrong in every phase: the active half    *)
(* sits on two of the four shards while the other two idle.  The       *)
(* rebalancer (--rebalance) migrates hot nodes toward the idle shards  *)
(* inside each phase and back after the flip.  The CI gate wants       *)
(* rebalancing >= 1.2x static greedy at 4 domains (needs >= 4 host     *)
(* cores — recorded so the gate can skip loudly on small runners).     *)

let e21 () =
  section "E21"
    "dynamic rebalancing: phase-shifting load on 8 worker nodes, static \
     greedy vs --rebalance at 4 domains";
  let nodes = 9 (* driver + NS on node 0, workers on 1..8 *) in
  let sites_per_node = 2 in
  let work = 100_000 in
  let phases = 6 in
  let domains = 4 in
  let wname n j = Printf.sprintf "w%d_%d" n j in
  let wchan n j = Printf.sprintf "c%d_%d" n j in
  (* worker sites export a serve channel immediately and import
     nothing: the reply channel travels inside the go message (a
     netref crossing sites — the paper's code mobility), so driver and
     workers have no import cycle to deadlock on *)
  let worker n j =
    Printf.sprintf
      {| site %s {
           def Crunch(n, k) = if n == 0 then k![1] else Crunch[n - 1, k]
           and Serve(self) =
             self?{ go(k) = new d (Crunch[%d, d]
                                   | d?(x) = (k![1] | Serve[self])) }
           in export new %s Serve[%s] } |}
      (wname n j) work (wchan n j) (wchan n j)
  in
  (* the alternating halves are computed from greedy's *actual* map:
     each phase lights up exactly the nodes greedy packed onto shards
     {0, 1}, then the ones on {2, 3} — adversarial but realistic (any
     static map is wrong for some phase order) *)
  let site_counts =
    Array.init nodes (fun n -> if n = 0 then 1 else sites_per_node)
  in
  let gmap =
    Dityco.Placement.assign ~domains ~site_counts Dityco.Placement.Greedy
  in
  let h1, h2 =
    let a = ref [] and b = ref [] in
    for n = nodes - 1 downto 1 do
      if gmap.(n) < domains / 2 then a := n :: !a else b := n :: !b
    done;
    (!a, !b)
  in
  if h1 = [] || h2 = [] then failwith "e21: degenerate greedy map";
  let chans half =
    List.concat_map
      (fun n -> List.init sites_per_node (fun j -> wchan n j))
      half
  in
  (* one phase: fire go at every site of the half, collect one reply
     per site off a single fresh reply channel, then flip *)
  let phase_def name next cs =
    let sends = String.concat " | " (List.map (fun c -> c ^ "!go[k]") cs) in
    let rec collect i =
      if i = List.length cs then Printf.sprintf "%s[p - 1]" next
      else Printf.sprintf "k?(r%d) = (%s)" i (collect (i + 1))
    in
    Printf.sprintf "%s(p) = if p == 0 then io!printi[0] else (new k (%s | %s))"
      name sends (collect 0)
  in
  let driver =
    let body =
      Printf.sprintf "def %s and %s in GoA[%d]"
        (phase_def "GoA" "GoB" (chans h1))
        (phase_def "GoB" "GoA" (chans h2))
        phases
    in
    let imports =
      List.fold_right
        (fun n acc ->
          List.fold_right
            (fun j acc ->
              Printf.sprintf "import %s from %s in %s" (wchan n j) (wname n j)
                acc)
            (List.init sites_per_node Fun.id)
            acc)
        (h1 @ h2) body
    in
    Printf.sprintf {| site driver { %s } |} imports
  in
  let workers =
    List.concat
      (List.init (nodes - 1) (fun n ->
           List.init sites_per_node (fun j -> worker (n + 1) j)))
  in
  let src = driver ^ String.concat "" workers in
  let prog = Api.parse src in
  let placement name =
    if name = "driver" then 0
    else
      let us = String.index name '_' in
      int_of_string (String.sub name 1 (us - 1))
  in
  let config = { Cluster.default_config with Cluster.nodes } in
  let host_cores = Domain.recommended_domain_count () in
  row "  %d phases x %d active sites x ~%d instructions, halves %s / %s, \
       host has %d cores@."
    phases
    (List.length (chans h1))
    (work * 3)
    (String.concat "," (List.map string_of_int h1))
    (String.concat "," (List.map string_of_int h2))
    host_cores;
  record_i "e21_host_cores" host_cores;
  let repeats = if !smoke then 1 else 3 in
  let measure rb =
    let best = ref None in
    for _ = 1 to repeats do
      let r =
        Api.run_parallel ~config ~placement ~policy:Dityco.Placement.Greedy
          ~domains ?rebalance:rb prog
      in
      if r.Dityco.Par_runner.timed_out then failwith "e21: run timed out";
      if not r.Dityco.Par_runner.clean then failwith "e21: unclean quiescence";
      if List.length r.Dityco.Par_runner.outputs <> 1 then
        failwith "e21: wrong output count";
      match !best with
      | Some b when b.Dityco.Par_runner.wall_ns <= r.Dityco.Par_runner.wall_ns
        ->
          ()
      | _ -> best := Some r
    done;
    Option.get !best
  in
  row "  %-8s %12s %14s %11s %10s %10s@." "mode" "wall ms" "Minstr/s"
    "migrations" "forwarded" "handoffs";
  let tp r =
    float_of_int r.Dityco.Par_runner.instructions
    /. float_of_int (max r.Dityco.Par_runner.wall_ns 1)
  in
  let show mode r =
    row "  %-8s %12.1f %14.1f %11d %10d %10d@." mode
      (float_of_int r.Dityco.Par_runner.wall_ns /. 1e6)
      (tp r *. 1e3) r.Dityco.Par_runner.migrations
      r.Dityco.Par_runner.forwarded_envelopes r.Dityco.Par_runner.handoffs;
    record_f
      (Printf.sprintf "e21_minstr_per_s_%s_d%d" mode domains)
      (tp r *. 1e3);
    record_i
      (Printf.sprintf "e21_wall_ms_%s_d%d" mode domains)
      (r.Dityco.Par_runner.wall_ns / 1_000_000)
  in
  let st = measure None in
  show "static" st;
  let rb =
    measure
      (Some { Dityco.Par_runner.rb_interval_ms = 4; rb_threshold = 1.3 })
  in
  show "rebal" rb;
  record_i "e21_migrations" rb.Dityco.Par_runner.migrations;
  record_i "e21_forwarded_envelopes" rb.Dityco.Par_runner.forwarded_envelopes;
  record_i "e21_migration_ms"
    (rb.Dityco.Par_runner.migration_ns / 1_000_000);
  let gain = tp rb /. tp st in
  row "  rebalance/static throughput at %d domains: %.2fx (%d migrations)@."
    domains gain rb.Dityco.Par_runner.migrations;
  record "e21_gain_d4" (Printf.sprintf "%.3f" gain)

(* ------------------------------------------------------------------ *)
(* Traced E1: one iteration of the E1 workload with causal tracing on. *)
(* Exercises the observability layer end-to-end and leaves the trace   *)
(* as an artifact (CI uploads it); the gated E1 numbers above are      *)
(* measured with tracing off, so this also documents that the default  *)
(* path carries no tracing cost.                                       *)

let traced_e1 out =
  section "E1-traced" "one traced E1 iteration (causal trace artifact)";
  let config = { Cluster.default_config with Cluster.tracing = true } in
  let r = run ~config (counter_src 200) in
  let tr = Cluster.tracer r.Api.cluster in
  let events = List.length (Tyco_support.Trace.events tr) in
  let data =
    if Filename.check_suffix out ".json" then
      Tyco_support.Trace.to_chrome_json tr
    else Tyco_support.Trace.serialize tr
  in
  let oc = open_out_bin out in
  output_string oc data;
  close_out oc;
  row "  %d trace events, %d bytes written to %s@." events
    (String.length data) out;
  record_i "e1_trace_events" events

let trace_out = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--json" :: rest ->
        json_mode := true;
        parse rest
    | "--out" :: path :: rest ->
        json_path := path;
        parse rest
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: %s [--smoke] [--json] [--out FILE] [--trace-out FILE]  \
           (unknown arg %s)\n"
          Sys.argv.(0) arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Format.printf "DiTyCO experiment harness (see DESIGN.md / EXPERIMENTS.md)%s@."
    (if !smoke then " [smoke mode]" else "");
  if !smoke then begin
    (* the measurements CI gates on; the rest are skipped for speed *)
    e1 ();
    e2 ();
    e14 ();
    e16 ();
    e17 ();
    e18 ();
    e19 ();
    e20 ();
    e21 ()
  end
  else begin
    e1 ();
    e2 ();
    e3 ();
    e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    e9 ();
    e10 ();
    e11 ();
    e12 ();
    e13 ();
    e14 ();
    e15 ();
    e16 ();
    e17 ();
    e18 ();
    e19 ();
    e20 ();
    e21 ()
  end;
  (match !trace_out with Some out -> traced_e1 out | None -> ());
  if !json_mode then write_json ();
  Format.printf "@.done.@."

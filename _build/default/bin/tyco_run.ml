(* tyco_run — run a DiTyCO program (usually a single site) and print
   its I/O events.  With --reference, run the calculus-level reference
   interpreter instead of the byte-code runtime. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_inputs specs =
  (* "site=1,2,3" or bare "1,2,3" (fed to site main) *)
  List.map
    (fun spec ->
      let site, csv =
        match String.index_opt spec '=' with
        | Some i ->
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
        | None -> ("main", spec)
      in
      ( site,
        if String.trim csv = "" then []
        else List.map int_of_string (String.split_on_char ',' csv) ))
    specs

let run path reference until timestamps input_specs =
  try
    let prog = Dityco.Api.parse ~file:path (read_file path) in
    let inputs = parse_inputs input_specs in
    if reference then
      let outs = Dityco.Api.run_reference ~inputs prog in
      List.iter (fun e -> Format.printf "%a@." Dityco.Output.pp_event e) outs
    else begin
      let r = Dityco.Api.run_program ~inputs ?until prog in
      List.iter
        (fun (ts, e) ->
          if timestamps then Format.printf "[%dns] %a@." ts Dityco.Output.pp_event e
          else Format.printf "%a@." Dityco.Output.pp_event e)
        r.Dityco.Api.outputs;
      Format.printf "-- %d event(s), %d packet(s), %d byte(s), %dns virtual time@."
        (List.length r.Dityco.Api.outputs)
        r.Dityco.Api.packets r.Dityco.Api.bytes r.Dityco.Api.virtual_ns
    end
  with
  | Dityco.Api.Error e ->
      Format.eprintf "%s@." (Dityco.Api.error_message e);
      exit 1
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Failure m ->
      Format.eprintf "error: bad --input (%s)@." m;
      exit 1

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"DiTyCO source file.")

let reference =
  Arg.(value & flag & info [ "reference" ]
       ~doc:"Use the calculus reference interpreter instead of the VM.")

let until =
  Arg.(value & opt (some int) None & info [ "until" ] ~docv:"NS"
       ~doc:"Stop after this much virtual time (for perpetual programs).")

let timestamps =
  Arg.(value & flag & info [ "t"; "timestamps" ]
       ~doc:"Prefix each event with its virtual timestamp.")

let input_specs =
  Arg.(value & opt_all string [] & info [ "input" ] ~docv:"SITE=N,N,..."
       ~doc:"Feed integers to a site's I/O port (io!readi); bare N,N,... \
             feeds site 'main'.  Repeatable.")

let cmd =
  Cmd.v
    (Cmd.info "tyco_run" ~version:"1.0" ~doc:"Run DiTyCO programs")
    Term.(const run $ path_arg $ reference $ until $ timestamps $ input_specs)

let () = exit (Cmd.eval cmd)

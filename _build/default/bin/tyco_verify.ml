(* tyco_verify — may-testing equivalence checking of DiTyCO programs
   over the exhaustive reduction relation (the paper's "provably
   correct" claim made executable).

   With one file: print all calculus-admissible outcomes (and whether
   the program is scheduling-deterministic).  With two files: decide
   may-testing equivalence. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  try
    let prog = Dityco.Api.parse ~file:path (read_file path) in
    ignore (Dityco.Api.typecheck prog);
    prog
  with
  | Dityco.Api.Error e ->
      Format.eprintf "%s: %s@." path (Dityco.Api.error_message e);
      exit 1
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      exit 1

let run file1 file2 max_states =
  let p1 = load file1 in
  match file2 with
  | None -> (
      match Tyco_calculus.Equiv.outcomes ~max_states p1 with
      | outcomes ->
          Format.printf "%d admissible outcome(s):@." (List.length outcomes);
          List.iter
            (fun o -> Format.printf "  %a@." Tyco_calculus.Equiv.pp_outcome o)
            outcomes;
          Format.printf "scheduling-deterministic: %b@."
            (List.length outcomes <= 1)
      | exception Tyco_calculus.Equiv.Search_exhausted n ->
          Format.eprintf "state space exceeds %d states; raise --max-states@." n;
          exit 2)
  | Some f2 -> (
      let p2 = load f2 in
      match Tyco_calculus.Equiv.may_equivalent ~max_states p1 p2 with
      | true ->
          Format.printf "EQUIVALENT (may-testing, up to %d states)@." max_states
      | false ->
          Format.printf "NOT equivalent@.";
          let show name p =
            Format.printf "%s outcomes:@." name;
            List.iter
              (fun o -> Format.printf "  %a@." Tyco_calculus.Equiv.pp_outcome o)
              (Tyco_calculus.Equiv.outcomes ~max_states p)
          in
          show file1 p1;
          show f2 p2;
          exit 1
      | exception Tyco_calculus.Equiv.Search_exhausted n ->
          Format.eprintf "state space exceeds %d states; raise --max-states@." n;
          exit 2)

let file1 =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE1"
       ~doc:"First program.")

let file2 =
  Arg.(value & pos 1 (some file) None & info [] ~docv:"FILE2"
       ~doc:"Second program (omit to just enumerate FILE1's outcomes).")

let max_states =
  Arg.(value & opt int 50_000 & info [ "max-states" ] ~docv:"N"
       ~doc:"State-space exploration bound.")

let cmd =
  Cmd.v
    (Cmd.info "tyco_verify" ~version:"1.0"
       ~doc:"May-testing equivalence of DiTyCO programs")
    Term.(const run $ file1 $ file2 $ max_states)

let () = exit (Cmd.eval cmd)

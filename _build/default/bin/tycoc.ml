(* tycoc — the DiTyCO compiler driver: type-check, compile,
   disassemble, and report byte-code statistics. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  try Dityco.Api.parse ~file:path (read_file path)
  with
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      exit 1
  | Dityco.Api.Error e ->
      Format.eprintf "%s@." (Dityco.Api.error_message e);
      exit 1

let check_types prog =
  try ignore (Dityco.Api.typecheck prog)
  with Dityco.Api.Error e ->
    Format.eprintf "%s@." (Dityco.Api.error_message e);
    exit 1

let compile_cmd path no_typecheck disasm stats emit_asm interfaces =
  let prog = load path in
  if interfaces then begin
    (match Dityco.Api.typecheck prog with
    | info ->
        if info.Tyco_types.Infer.export_name_types = []
           && info.Tyco_types.Infer.export_class_types = []
        then Format.printf "(no exported identifiers)@."
        else begin
          List.iter
            (fun ((site, name), ty) ->
              Format.printf "%s.%s : %s@." site name (Tyco_types.Ty.to_string ty))
            info.Tyco_types.Infer.export_name_types;
          List.iter
            (fun ((site, name), scheme) ->
              Format.printf "%s.%s : class (%s)@." site name
                (String.concat ", "
                   (List.map Tyco_types.Ty.to_string
                      (Tyco_types.Ty.instantiate info.Tyco_types.Infer.ctx
                         scheme))))
            info.Tyco_types.Infer.export_class_types
        end
    | exception Dityco.Api.Error e ->
        Format.eprintf "%s@." (Dityco.Api.error_message e);
        exit 1);
    exit 0
  end;
  if not no_typecheck then check_types prog;
  let units =
    try Dityco.Api.compile prog
    with Dityco.Api.Error e ->
      Format.eprintf "%s@." (Dityco.Api.error_message e);
      exit 1
  in
  List.iter
    (fun (site, unit_) ->
      Format.printf "== site %s ==@." site;
      if stats || not disasm then
        Format.printf "%a@." Tyco_compiler.Disasm.pp_stats
          (Tyco_compiler.Disasm.stats unit_);
      if disasm then Format.printf "%a@." Tyco_compiler.Disasm.pp unit_;
      if emit_asm then Format.printf "%a" Tyco_compiler.Asm.pp unit_)
    units;
  if not (disasm || stats || emit_asm) then Format.printf "ok@."

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
       ~doc:"DiTyCO source file (a process or site blocks).")

let no_typecheck =
  Arg.(value & flag & info [ "no-typecheck" ] ~doc:"Skip type checking.")

let disasm =
  Arg.(value & flag & info [ "d"; "disasm" ]
       ~doc:"Print the virtual machine assembly of each site.")

let stats =
  Arg.(value & flag & info [ "s"; "stats" ]
       ~doc:"Print byte-code statistics (blocks, instructions, bytes).")

let emit_asm =
  Arg.(value & flag & info [ "emit-asm" ]
       ~doc:"Print the virtual machine assembly.")

let interfaces =
  Arg.(value & flag & info [ "interfaces" ]
       ~doc:"Print the inferred types of every exported identifier \
             (the network interface of each site).")

let cmd =
  Cmd.v
    (Cmd.info "tycoc" ~version:"1.0"
       ~doc:"Compile DiTyCO programs to TyCO virtual machine byte-code")
    Term.(const compile_cmd $ path_arg $ no_typecheck $ disasm $ stats
          $ emit_asm $ interfaces)

let () = exit (Cmd.eval cmd)

(** A library of kernel-calculus encodings.

    The paper's introduction argues that process calculi “are scalable
    in the sense that high level constructs can be readily obtained
    from encodings in the kernel calculus” (claim 3).  This module
    makes that claim concrete: each value below is DiTyCO source for a
    classic concurrency abstraction, encoded with nothing but objects,
    messages and class recursion.  [with_prelude] splices them in front
    of a program so user code can instantiate them directly.

    Encodings provided (all polymorphic where sensible):

    - [cell] — the paper's §2 one-slot mutable reference
      ([read]/[write]);
    - [lock] — a mutual-exclusion lock: [acquire(k)] grants [k] a
      fresh release channel; firing it re-arms the lock;
    - [future] — a write-once single-assignment variable: [get]s that
      arrive before [fulfill] wait (the channel's FIFO queue makes the
      retry loop fair and terminating); after fulfilment every [get]
      answers immediately;
    - [barrier] — an [n]-party barrier built {e compositionally} on
      [future]: each arrival receives the shared door future, the last
      arrival fulfils it;
    - [bools] — booleans as objects ([True]/[False] with a
      [test(t, f)] method), the classic object-calculus encoding;
    - [counter] — a monotone counter with [bump(k)].

    Unordered buffers and semaphores need no encoding at all: a TyCO
    channel {e is} a FIFO buffer (send to put, object to take) and a
    channel holding [n] token messages is a counting semaphore — see
    [examples/encodings.ml]. *)

val cell : string
val lock : string
val future : string
val barrier : string
val bools : string

val once : string
(** one-shot initialization: only the first [run(k)] fires [k] *)

val rwlock : string
(** readers–writer lock: [rlock(k)] shares (reply carries the shared
    release channel), [wlock(k)] waits for readers to drain, then holds
    exclusively (reply carries a private release channel);
    instantiate as [new d (RwFwd[d, l] | RwFree[l, d])] *)

val counter : string

val all : string list

val with_prelude : ?defs:string list -> string -> string
(** [with_prelude body] returns a process whose [def] spine contains
    the chosen encodings (default: all) with [body] in their scope. *)

module Simnet = Tyco_net.Simnet

type report = {
  detected_at : int option;
  probes : int;
  probe_overhead_ns : int;
}

(* One control round-trip per site per probe, over the cluster link. *)
let probe_cost_per_site = 2 * 9_000

let network_idle cluster =
  Cluster.in_flight cluster = 0
  && List.for_all
       (fun s -> (not (Site.busy s)) && Site.outstanding s = 0)
       (Cluster.sites cluster)

let run_with_detection ?(period = 50_000) ?max_events cluster =
  ignore max_events;
  let sim = Cluster.sim cluster in
  let probes = ref 0 in
  let idle_streak = ref 0 in
  let detected = ref None in
  let nsites = List.length (Cluster.sites cluster) in
  let rec probe () =
    incr probes;
    if network_idle cluster then begin
      incr idle_streak;
      if !idle_streak >= 2 && !detected = None then
        detected := Some (Simnet.now sim)
          (* detection announced: stop probing so the run can end *)
      else if !detected = None then
        Simnet.schedule sim ~delay:period probe
    end
    else begin
      idle_streak := 0;
      Simnet.schedule sim ~delay:period probe
    end
  in
  Simnet.schedule sim ~delay:period probe;
  Cluster.run ?max_events cluster;
  { detected_at = !detected;
    probes = !probes;
    probe_overhead_ns = !probes * probe_cost_per_site * nsites }

(** Observable program outputs (the I/O port of each site, paper §5).

    Outputs are plain data so that runs of the byte-code runtime and of
    the reference interpreter can be compared directly. *)

type value =
  | Oint of int
  | Obool of bool
  | Ostr of string
  | Ochan of string   (** a channel reached the I/O port; label only *)

type event = {
  site : string;
  label : string;   (** io method, e.g. [printi] *)
  args : value list;
}

val of_vm_value : Tyco_vm.Value.t -> value
val of_ref_value : Tyco_calculus.Network.value -> value

val of_ref_outputs :
  (string * string * Tyco_calculus.Network.value list) list -> event list

val equal_value : value -> value -> bool
val equal_event : event -> event -> bool
val pp_value : Format.formatter -> value -> unit
val pp_event : Format.formatter -> event -> unit

val same_multiset : event list -> event list -> bool
(** Order-insensitive comparison — the two semantics may interleave
    sites differently, but must produce the same bag of outputs. *)

module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Nameservice = Tyco_net.Nameservice
module Netref = Tyco_support.Netref

(* The paper's first implementation uses a centralized name service;
   its stated future work is a distributed one "for reasons of both
   redundancy (for failure recovery) and performance".  [Replicated]
   keeps one replica per node: lookups are answered by the local
   replica (a shared-memory hop), registrations broadcast to all
   replicas over the cluster links. *)
type ns_mode = Centralized | Replicated

type config = {
  nodes : int;
  cores_per_node : int;
  quantum : int;
  topology : Simnet.topology;
  seed : int;
  ns_mode : ns_mode;
}

let default_config =
  { nodes = 4;
    cores_per_node = 2;
    quantum = 512;
    topology = Simnet.default_topology;
    seed = 42;
    ns_mode = Centralized }

type wrapper = {
  site : Site.t;
  node : Node.t;
  mutable pump_scheduled : bool;
}

type t = {
  cfg : config;
  sim : Simnet.t;
  replicas : Nameservice.t array;  (* one in Centralized mode *)
  ns_ip : int;
  node_arr : Node.t array;
  by_name : (string, wrapper) Hashtbl.t;
  by_id : (int, wrapper) Hashtbl.t;
  mutable wrappers : wrapper list; (* reversed creation order *)
  mutable next_site_id : int;
  mutable outs : (int * Output.event) list; (* newest first *)
  mutable packets : int;
  mutable bytes : int;
  mutable in_flight : int;
  mutable suspected : (int * string) list;
  mutable busy_until : int;  (* completion time of the latest quantum *)
  mutable trace : (int * Packet.t) list;  (* send-time packet log, newest first *)
}

(* Cost of a name-service transaction at the service itself. *)
let ns_processing_cost = 1_000

(* Scheduling overhead added after each quantum (context switch). *)
let context_switch_cost = 200

let create ?(config = default_config) () =
  let sim = Simnet.create ~topology:config.topology ~seed:config.seed () in
  { cfg = config;
    sim;
    replicas =
      (match config.ns_mode with
      | Centralized -> [| Nameservice.create () |]
      | Replicated -> Array.init config.nodes (fun _ -> Nameservice.create ()));
    (* in centralized mode the service lives on node 0's address, as a
       well-known location every site knows in advance (paper §5) *)
    ns_ip = 0;
    node_arr =
      Array.init config.nodes (fun i ->
          Node.create ~node_id:i ~ip:i ~cores:config.cores_per_node);
    by_name = Hashtbl.create 16;
    by_id = Hashtbl.create 16;
    wrappers = [];
    next_site_id = 0;
    outs = [];
    packets = 0;
    bytes = 0;
    in_flight = 0;
    suspected = [];
    busy_until = 0;
    trace = [];
  }

let sim t = t.sim
let config t = t.cfg
let virtual_time t = max (Simnet.now t.sim) t.busy_until
let site t name = (Hashtbl.find t.by_name name).site
let sites t = List.rev_map (fun w -> w.site) t.wrappers
let nodes t = Array.to_list t.node_arr
let outputs t = List.rev t.outs
let output_events t = List.rev_map snd t.outs |> List.rev |> List.rev
let packets_sent t = t.packets
let bytes_sent t = t.bytes
let in_flight t = t.in_flight
let name_service_pending t =
  Array.fold_left (fun acc ns -> acc + Nameservice.pending ns) 0 t.replicas

(* The replica a node consults: its own in Replicated mode. *)
let replica_of t ip =
  match t.cfg.ns_mode with
  | Centralized -> t.replicas.(0)
  | Replicated -> t.replicas.(ip mod Array.length t.replicas)
let suspected_failures t = List.rev t.suspected
let packet_trace t = List.rev t.trace

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let rec request_pump t w ~delay =
  if (not w.pump_scheduled) && Site.alive w.site then begin
    w.pump_scheduled <- true;
    Simnet.schedule t.sim ~delay (fun () -> pump_event t w)
  end

and pump_event t w =
  w.pump_scheduled <- false;
  if Site.alive w.site then begin
    let now = Simnet.now t.sim in
    let core, free = Node.earliest_core w.node in
    if free > now then
      (* all processors busy: wait for one (Fig. 1's dual-CPU nodes) *)
      request_pump t w ~delay:(free - now)
    else begin
      let cost = Site.pump w.site ~quantum:t.cfg.quantum in
      let duration = cost + context_switch_cost in
      Node.occupy w.node ~core ~until:(now + duration);
      t.busy_until <- max t.busy_until (now + duration);
      if Site.busy w.site then request_pump t w ~delay:duration
    end
  end

(* ------------------------------------------------------------------ *)
(* Packet transport (the TyCOd role).                                  *)

and send_packet t ~src_ip (p : Packet.t) =
  let bytes = Packet.byte_size p in
  let dst_ip =
    match (t.cfg.ns_mode, p) with
    (* replicated service: name-service traffic stays on the node *)
    | Replicated, (Packet.Pns_register _ | Packet.Pns_lookup _) -> src_ip
    | _ -> Packet.dst_ip p ~ns_ip:t.ns_ip
  in
  let delay = Simnet.packet_delay t.sim ~src_ip ~dst_ip ~bytes in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes;
  t.in_flight <- t.in_flight + 1;
  t.trace <- (Simnet.now t.sim, p) :: t.trace;
  Simnet.schedule t.sim ~delay (fun () ->
      t.in_flight <- t.in_flight - 1;
      deliver t ~at_ip:dst_ip p)

and deliver t ~at_ip (p : Packet.t) =
  match p with
  | Packet.Pns_register { site_name; id_name; nref; rtti } ->
      register_at t ~replica_ip:at_ip ~site_name ~id_name ~rtti nref;
      (* replicated mode: propagate to every other replica *)
      if t.cfg.ns_mode = Replicated then begin
        let bytes = Packet.byte_size p in
        Array.iteri
          (fun other _ ->
            if other <> at_ip mod Array.length t.replicas then begin
              let delay =
                Simnet.packet_delay t.sim ~src_ip:at_ip ~dst_ip:other ~bytes
              in
              t.packets <- t.packets + 1;
              t.bytes <- t.bytes + bytes;
              t.in_flight <- t.in_flight + 1;
              Simnet.schedule t.sim ~delay (fun () ->
                  t.in_flight <- t.in_flight - 1;
                  register_at t ~replica_ip:other ~site_name ~id_name ~rtti
                    nref)
            end)
          t.replicas
      end
  | Packet.Pns_lookup { site_name; id_name; req_id; requester_site; requester_ip; _ } -> (
      let waiter =
        { Nameservice.w_req_id = req_id; w_site = requester_site;
          w_ip = requester_ip }
      in
      let ns = replica_of t at_ip in
      match Nameservice.lookup_id ns ~site:site_name ~name:id_name waiter with
      | Some (nref, rtti) ->
          reply_ns t ~from_ip:at_ip
            (Packet.Pns_reply
               { req_id; dst_site = requester_site; dst_ip = requester_ip;
                 result = Some nref; rtti })
      | None -> (* parked until the registration arrives *) ())
  | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } ->
      deliver_to_site t dst.Netref.site_id p
  | Packet.Pfetch_req { cls; _ } -> deliver_to_site t cls.Netref.site_id p
  | Packet.Pfetch_rep { dst_site; _ } | Packet.Pns_reply { dst_site; _ } ->
      deliver_to_site t dst_site p

and register_at t ~replica_ip ~site_name ~id_name ~rtti nref =
  let ns = replica_of t replica_ip in
  let waiters =
    Nameservice.register_id ns ~site:site_name ~name:id_name ~rtti nref
  in
  List.iter
    (fun (wtr : Nameservice.waiter) ->
      reply_ns t ~from_ip:replica_ip
        (Packet.Pns_reply
           { req_id = wtr.Nameservice.w_req_id;
             dst_site = wtr.Nameservice.w_site;
             dst_ip = wtr.Nameservice.w_ip;
             result = Some nref;
             rtti }))
    waiters

and reply_ns t ~from_ip p =
  (* name-service processing cost, then the reply travels as a packet *)
  Simnet.schedule t.sim ~delay:ns_processing_cost (fun () ->
      send_packet t ~src_ip:from_ip p)

and deliver_to_site t site_id p =
  match Hashtbl.find_opt t.by_id site_id with
  | None -> ()
  | Some w ->
      if Site.alive w.site then begin
        Site.deliver w.site p;
        request_pump t w ~delay:0
      end
      else
        t.suspected <- (Simnet.now t.sim, Site.name w.site) :: t.suspected

(* ------------------------------------------------------------------ *)
(* Program loading.                                                    *)

let load ?placement ?(annotations = fun _ -> None) ?(inputs = fun _ -> [])
    t (units : (string * Tyco_compiler.Block.unit_) list) =
  List.iteri
    (fun i (name, unit_) ->
      if Hashtbl.mem t.by_name name then
        invalid_arg (Printf.sprintf "Cluster.load: duplicate site '%s'" name);
      let node_idx =
        match placement with
        | Some f ->
            let n = f name in
            if n < 0 || n >= Array.length t.node_arr then
              invalid_arg
                (Printf.sprintf "Cluster.load: site '%s' placed on node %d" name n)
            else n
        | None -> i mod Array.length t.node_arr
      in
      let node = t.node_arr.(node_idx) in
      let site_id = t.next_site_id in
      t.next_site_id <- site_id + 1;
      let w =
        { site =
            Site.create
              ?annotations:(annotations name)
              ~inputs:(inputs name)
              ~name ~site_id ~ip:(Node.ip node)
              ~send:(fun p -> send_packet t ~src_ip:(Node.ip node) p)
              ~on_output:(fun e -> t.outs <- (Simnet.now t.sim, e) :: t.outs)
              ~unit_ ();
          node;
          pump_scheduled = false }
      in
      Node.add_site node w.site;
      Hashtbl.replace t.by_name name w;
      Hashtbl.replace t.by_id site_id w;
      t.wrappers <- w :: t.wrappers;
      Array.iter
        (fun ns -> Nameservice.register_site ns name ~site_id ~ip:(Node.ip node))
        t.replicas;
      Site.start w.site;
      request_pump t w ~delay:0)
    units

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let run ?max_events t = ignore (Simnet.run t.sim ?max_events ())

let run_until t ~time =
  let rec go () =
    match Simnet.next_time t.sim with
    | Some ts when ts <= time ->
        ignore (Simnet.step t.sim);
        go ()
    | Some _ | None -> ()
  in
  go ()

let quiescent t = Option.is_none (Simnet.next_time t.sim)

let kill_site t name ~at =
  let w = Hashtbl.find t.by_name name in
  let delay = max 0 (at - Simnet.now t.sim) in
  Simnet.schedule t.sim ~delay (fun () -> Site.kill w.site)

(* Every encoding is one class-definition clause (or an [and]-joined
   pair), so [with_prelude] can join them into a single mutually
   visible [def] spine. *)

let cell =
  {|Cell(self, v) =
      self?{ read(r)  = r![v] | Cell[self, v],
             write(u) = Cell[self, u] }|}

(* Acquiring yields a fresh release channel; the lock re-arms when the
   holder fires it.  Waiting acquirers queue in FIFO order at [self]. *)
let lock =
  {|Lock(self) =
      self?{ acquire(k) = new rel (k![rel] | rel?() = Lock[self]) }|}

(* A [get] that arrives before [fulfill] is re-posted behind the
   pending messages; the channel's FIFO discipline guarantees the
   [fulfill] in the queue is reached, so the loop terminates whenever
   the future is eventually fulfilled. *)
let future =
  {|Future(self) =
      self?{ fulfill(v)  = Fulfilled[self, v],
             get(k)      = self!get[k] | Future[self] }
    and Fulfilled(self, v) =
      self?{ fulfill(u)  = Fulfilled[self, v],
             get(k)      = k![v] | Fulfilled[self, v] }|}

(* Composition: the barrier hands every arriver the shared door
   (a Future); the last arrival fulfils it.  Waiters then [get]. *)
let barrier =
  {|Barrier(self, left, door) =
      self?{ arrive(k) =
               (k![door]
                | (if left == 1 then door!fulfill[0] else nil)
                | Barrier[self, left - 1, door]) }|}

let bools =
  {|BTrue(self) =
      self?{ test(t, f) = t![] | BTrue[self] }
    and BFalse(self) =
      self?{ test(t, f) = f![] | BFalse[self] }|}

(* One-shot initialization: the first [run] acquires, later ones are
   ignored (the class decays to an absorbing state). *)
let once =
  {|Once(self) =
      self?{ run(k) = k![] | OnceDone[self] }
    and OnceDone(self) =
      self?{ run(k) = OnceDone[self] }|}

(* Readers–writer lock.  Readers share; a writer waits for the readers
   to drain (by re-posting its request behind their [rdone]s — the
   channel FIFO makes this fair) and then holds exclusively.  A
   forwarder turns the shared release channel into [rdone] methods. *)
let rwlock =
  {|RwFwd(done_, self) =
      done_?() = (self!rdone[] | RwFwd[done_, self])
    and RwFree(self, done_) =
      self?{ rlock(k) = (k![done_] | RwReaders[self, done_, 1]),
             wlock(k) = new w (k![w] | w?() = RwFree[self, done_]),
             rdone()  = RwFree[self, done_] }
    and RwReaders(self, done_, n) =
      self?{ rlock(k) = (k![done_] | RwReaders[self, done_, n + 1]),
             rdone()  = (if n == 1 then RwFree[self, done_]
                         else RwReaders[self, done_, n - 1]),
             wlock(k) = (self!wlock[k] | RwReaders[self, done_, n]) }|}

let counter =
  {|Counter(self, n) =
      self?{ bump(k) = (k![n + 1] | Counter[self, n + 1]) }|}

let all = [ cell; lock; future; barrier; bools; once; rwlock; counter ]

let with_prelude ?(defs = all) body =
  Printf.sprintf "def %s\nin (%s)" (String.concat "\nand " defs) body

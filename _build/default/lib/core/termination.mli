(** Global termination detection — listed as future work in the paper
    (§7: “we need to introduce … termination detection into the
    system”), implemented here as an extension.

    The detector runs {e inside} the simulation as a periodic control
    activity: every [period] ns it snapshots the network — per-site
    activity (runnable threads, unprocessed packets), outstanding
    fetch/import requests, and packets in flight — and announces
    termination after two consecutive all-idle snapshots (the classic
    double-scan defence against in-flight messages, cf.
    Dijkstra–Scholten / Mattern).  Each probe is charged a virtual-time
    cost proportional to the probed sites, modelling the control
    round-trips without flooding the packet layer. *)

type report = {
  detected_at : int option;
      (** virtual time of the announcement; [None] if the run ended
          before two idle snapshots (e.g. perpetual programs) *)
  probes : int;
  probe_overhead_ns : int;
      (** total modelled control cost (experiment E10's overhead) *)
}

val run_with_detection :
  ?period:int -> ?max_events:int -> Cluster.t -> report
(** Drive the cluster to quiescence with the detector active.
    [period] defaults to 50_000 ns. *)

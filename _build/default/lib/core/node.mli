(** A DiTyCO node (paper Fig. 4): one per IP address, hosting a pool of
    sites that share the node's processors.

    The paper's nodes are dual-processor PCs; here each node models
    [cores] processors as earliest-available timestamps, so concurrent
    sites on one node serialize when they outnumber the cores — the
    effect measured by the scaling experiment E9. *)

type t

val create : node_id:int -> ip:int -> cores:int -> t
val node_id : t -> int
val ip : t -> int
val add_site : t -> Site.t -> unit
val sites : t -> Site.t list

val earliest_core : t -> int * int
(** [(core index, time it becomes free)]. *)

val occupy : t -> core:int -> until:int -> unit

lib/core/api.mli: Cluster Output Tyco_compiler Tyco_syntax Tyco_types

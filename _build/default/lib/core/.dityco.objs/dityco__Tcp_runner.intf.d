lib/core/tcp_runner.mli: Output Tyco_compiler Tyco_syntax

lib/core/report.mli: Api Cluster Output

lib/core/cluster.mli: Node Output Site Tyco_compiler Tyco_net Tyco_support

lib/core/node.mli: Site

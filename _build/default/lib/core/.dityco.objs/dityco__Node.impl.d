lib/core/node.ml: Array List Site

lib/core/node.ml: Array Hashtbl List Site

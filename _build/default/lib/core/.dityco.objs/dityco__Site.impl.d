lib/core/site.ml: Array Format Hashtbl List Option Output Printf String Tyco_compiler Tyco_net Tyco_support Tyco_types Tyco_vm

lib/core/failure.mli: Cluster

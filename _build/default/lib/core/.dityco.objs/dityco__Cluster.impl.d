lib/core/cluster.ml: Array Hashtbl List Node Option Output Printf Site Tyco_compiler Tyco_net Tyco_support

lib/core/cluster.ml: Array Format Hashtbl List Node Option Output Printf Site Tyco_compiler Tyco_net Tyco_support

lib/core/report.ml: Api Buffer Char Cluster Float List Output Printf Site String Tyco_net Tyco_support

lib/core/site.mli: Output Tyco_compiler Tyco_net Tyco_support Tyco_types Tyco_vm

lib/core/tcp_runner.ml: Api Array Atomic Bytes Hashtbl List Mutex Output Queue Site String Thread Tyco_net Tyco_support Unix

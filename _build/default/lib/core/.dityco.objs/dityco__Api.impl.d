lib/core/api.ml: Cluster Format List Option Output Site Tyco_calculus Tyco_compiler Tyco_net Tyco_syntax Tyco_types Tyco_vm

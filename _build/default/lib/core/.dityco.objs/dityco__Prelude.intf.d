lib/core/prelude.mli:

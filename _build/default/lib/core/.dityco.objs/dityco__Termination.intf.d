lib/core/termination.mli: Cluster

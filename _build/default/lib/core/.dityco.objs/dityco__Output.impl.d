lib/core/output.ml: Bool Format Int List Option String Tyco_calculus Tyco_vm

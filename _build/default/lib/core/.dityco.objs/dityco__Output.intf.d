lib/core/output.mli: Format Tyco_calculus Tyco_vm

lib/core/termination.ml: Cluster List Site Tyco_net

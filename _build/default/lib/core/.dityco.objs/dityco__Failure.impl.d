lib/core/failure.ml: Cluster Hashtbl List Option Site Tyco_net

lib/core/prelude.ml: Printf String

type t = {
  node_id : int;
  ip : int;
  cores : int array;  (* time each core becomes free *)
  mutable sites : Site.t list;
}

let create ~node_id ~ip ~cores =
  if cores < 1 then invalid_arg "Node.create: cores must be >= 1";
  { node_id; ip; cores = Array.make cores 0; sites = [] }

let node_id t = t.node_id
let ip t = t.ip
let add_site t s = t.sites <- s :: t.sites
let sites t = List.rev t.sites

let earliest_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.cores - 1 do
    if t.cores.(i) < t.cores.(!best) then best := i
  done;
  (!best, t.cores.(!best))

let occupy t ~core ~until = t.cores.(core) <- max t.cores.(core) until

type value =
  | Oint of int
  | Obool of bool
  | Ostr of string
  | Ochan of string

type event = { site : string; label : string; args : value list }

let of_vm_value : Tyco_vm.Value.t -> value = function
  | Tyco_vm.Value.Vint n -> Oint n
  | Tyco_vm.Value.Vbool b -> Obool b
  | Tyco_vm.Value.Vstr s -> Ostr s
  | Tyco_vm.Value.Vchan c -> Ochan c.Tyco_vm.Value.ch_name
  | Tyco_vm.Value.Vnetref _ -> Ochan "<remote>"
  | Tyco_vm.Value.Vclass _ | Tyco_vm.Value.Vclassref _ -> Ochan "<class>"

let of_ref_value : Tyco_calculus.Network.value -> value = function
  | Tyco_calculus.Network.Vint n -> Oint n
  | Tyco_calculus.Network.Vbool b -> Obool b
  | Tyco_calculus.Network.Vstr s -> Ostr s
  | Tyco_calculus.Network.Vid _ -> Ochan "<chan>"

let of_ref_outputs outs =
  List.map
    (fun (site, label, vs) -> { site; label; args = List.map of_ref_value vs })
    outs

let equal_value a b =
  match (a, b) with
  | Oint x, Oint y -> Int.equal x y
  | Obool x, Obool y -> Bool.equal x y
  | Ostr x, Ostr y -> String.equal x y
  (* channel identities differ between runtimes; all channels agree *)
  | Ochan _, Ochan _ -> true
  | (Oint _ | Obool _ | Ostr _ | Ochan _), _ -> false

let equal_event a b =
  String.equal a.site b.site
  && String.equal a.label b.label
  && List.length a.args = List.length b.args
  && List.for_all2 equal_value a.args b.args

let pp_value ppf = function
  | Oint n -> Format.fprintf ppf "%d" n
  | Obool b -> Format.fprintf ppf "%b" b
  | Ostr s -> Format.fprintf ppf "%S" s
  | Ochan s -> Format.fprintf ppf "#%s" s

let pp_event ppf e =
  Format.fprintf ppf "io@%s %s[%a]" e.site e.label
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_value)
    e.args

let same_multiset xs ys =
  let rec remove_one e = function
    | [] -> None
    | y :: rest ->
        if equal_event e y then Some rest
        else Option.map (fun r -> y :: r) (remove_one e rest)
  in
  let rec go xs ys =
    match xs with
    | [] -> ys = []
    | x :: rest -> (
        match remove_one x ys with
        | Some ys' -> go rest ys'
        | None -> false)
  in
  go xs ys

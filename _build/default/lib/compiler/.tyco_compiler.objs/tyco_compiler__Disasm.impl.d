lib/compiler/disasm.ml: Array Block Bytecode Format

lib/compiler/link.ml: Array Block Instr Tyco_support

lib/compiler/compile.mli: Block Tyco_syntax

lib/compiler/block.ml: Array Format Instr Int Printf Set String

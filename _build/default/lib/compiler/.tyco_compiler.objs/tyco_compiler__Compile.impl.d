lib/compiler/compile.ml: Array Block Format Hashtbl Instr List Map Peephole Printf String Tyco_support Tyco_syntax

lib/compiler/bytecode.ml: Array Block Instr List Printf String Tyco_support Tyco_syntax

lib/compiler/instr.ml: Array Format String Tyco_syntax

lib/compiler/peephole.mli: Block

lib/compiler/peephole.ml: Array Block Instr List Option String Tyco_syntax

lib/compiler/asm.ml: Array Block Buffer Bytecode Format Hashtbl Instr List Option Scanf String Tyco_support Tyco_syntax

lib/compiler/bytecode.mli: Block Tyco_support

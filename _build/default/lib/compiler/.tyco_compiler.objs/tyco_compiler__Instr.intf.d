lib/compiler/instr.mli: Format Tyco_syntax

lib/compiler/disasm.mli: Block Format

lib/compiler/block.mli: Format Instr

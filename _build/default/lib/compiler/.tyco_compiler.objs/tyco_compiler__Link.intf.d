lib/compiler/link.mli: Block

lib/compiler/asm.mli: Block Format

module Vec = Tyco_support.Vec

type area = {
  blocks : Block.block Vec.t;
  mtables : Block.mtable Vec.t;
  groups : Block.group Vec.t;
  mutable instrs : int;
  mutable snap : Block.unit_ option;  (* cache, cleared by link *)
}

type offsets = { blk_off : int; mt_off : int; grp_off : int }

let create () =
  { blocks = Vec.create (); mtables = Vec.create (); groups = Vec.create ();
    instrs = 0; snap = None }

let shift_instr (o : offsets) (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Trobj mt -> Instr.Trobj (mt + o.mt_off)
  | Instr.Defgroup g -> Instr.Defgroup (g + o.grp_off)
  | Instr.Import_name r -> Instr.Import_name { r with cont = r.cont + o.blk_off }
  | Instr.Import_class r ->
      Instr.Import_class { r with cont = r.cont + o.blk_off }
  | _ -> ins

let link area (u : Block.unit_) : offsets =
  area.snap <- None;
  let o =
    { blk_off = Vec.length area.blocks;
      mt_off = Vec.length area.mtables;
      grp_off = Vec.length area.groups }
  in
  Array.iter
    (fun (b : Block.block) ->
      area.instrs <- area.instrs + Array.length b.blk_code;
      ignore
        (Vec.push area.blocks
           { b with
             Block.blk_id = b.blk_id + o.blk_off;
             blk_code = Array.map (shift_instr o) b.blk_code }))
    u.blocks;
  Array.iter
    (fun (mt : Block.mtable) ->
      ignore
        (Vec.push area.mtables
           { mt with
             Block.mt_id = mt.mt_id + o.mt_off;
             mt_entries =
               Array.map
                 (fun (e : Block.mentry) ->
                   { e with Block.me_block = e.me_block + o.blk_off })
                 mt.mt_entries }))
    u.mtables;
  Array.iter
    (fun (g : Block.group) ->
      ignore
        (Vec.push area.groups
           { g with
             Block.grp_id = g.grp_id + o.grp_off;
             grp_classes =
               Array.map
                 (fun (c : Block.class_sig) ->
                   { c with Block.cls_block = c.cls_block + o.blk_off })
                 g.grp_classes }))
    u.groups;
  o

let of_unit u =
  let area = create () in
  let o = link area u in
  (area, u.Block.entry + o.blk_off)

let block area i = Vec.get area.blocks i
let mtable area i = Vec.get area.mtables i
let group area i = Vec.get area.groups i
let n_blocks area = Vec.length area.blocks
let n_instrs area = area.instrs

let snapshot area =
  match area.snap with
  | Some u -> u
  | None ->
      let u =
        { Block.blocks = Array.of_list (Vec.to_list area.blocks);
          mtables = Array.of_list (Vec.to_list area.mtables);
          groups = Array.of_list (Vec.to_list area.groups);
          entry = 0 }
      in
      area.snap <- Some u;
      u

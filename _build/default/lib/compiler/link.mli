(** Dynamic linking of byte-code into a site's program area.

    “The code is then dynamically linked to the local program and the
    reduction proceeds locally.” (paper §5)

    A {!area} is the growable program area of one site.  Linking a
    received sub-unit appends its blocks, method tables and groups and
    rewrites their internal indices by fixed offsets — possible because
    {!Bytecode.extract_mtable}/[extract_group] re-base sub-units
    densely. *)

type area

val create : unit -> area
val of_unit : Block.unit_ -> area * int
(** Load an initial program; returns the area and the entry block id. *)

val block : area -> int -> Block.block
val mtable : area -> int -> Block.mtable
val group : area -> int -> Block.group
val n_blocks : area -> int
val n_instrs : area -> int

type offsets = { blk_off : int; mt_off : int; grp_off : int }

val link : area -> Block.unit_ -> offsets
(** Graft a sub-unit; old index [i] becomes [i + off] in the area. *)

val snapshot : area -> Block.unit_
(** The area as a unit (entry 0), for sub-unit extraction when code
    must be shipped.  Cached; invalidated by {!link}. *)

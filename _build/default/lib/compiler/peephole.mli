(** Peephole optimization of byte-code blocks.

    Local rewrites applied per block, preserving semantics exactly:

    - constant folding of builtin expressions
      ([pushi a; pushi b; add] → [pushi (a+b)], likewise for the other
      arithmetic, comparison and boolean operators — except division
      and modulo by a zero constant, which must keep their run-time
      error);
    - branch simplification ([pushb true; jmpf _] disappears,
      [pushb false; jmpf t] becomes [jmp t]);
    - jump threading (a jump to a jump retargets to the final
      destination) and removal of jumps to the next instruction;
    - dead-store elimination of [load i; store i] pairs.

    Jump targets are rewritten consistently when instructions are
    removed.  The ablation experiment E11 measures the effect on code
    size and execution speed. *)

val block : Block.block -> Block.block
val unit_ : Block.unit_ -> Block.unit_

type stats = { removed : int; folded : int }

val last_stats : unit -> stats
(** Counters accumulated since the program started (for reporting). *)

module Ast = Tyco_syntax.Ast

type stats = { removed : int; folded : int }

let removed_total = ref 0
let folded_total = ref 0
let last_stats () = { removed = !removed_total; folded = !folded_total }

(* Evaluate a binary operator over literal operands when safe. *)
let fold_binop op a b : Instr.t option =
  let module I = Instr in
  match (op, a, b) with
  | Ast.Add, I.Push_int x, I.Push_int y -> Some (I.Push_int (x + y))
  | Ast.Sub, I.Push_int x, I.Push_int y -> Some (I.Push_int (x - y))
  | Ast.Mul, I.Push_int x, I.Push_int y -> Some (I.Push_int (x * y))
  | Ast.Div, I.Push_int x, I.Push_int y when y <> 0 -> Some (I.Push_int (x / y))
  | Ast.Mod, I.Push_int x, I.Push_int y when y <> 0 ->
      Some (I.Push_int (x mod y))
  | Ast.Lt, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x < y))
  | Ast.Le, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x <= y))
  | Ast.Gt, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x > y))
  | Ast.Ge, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x >= y))
  | Ast.Eq, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x = y))
  | Ast.Neq, I.Push_int x, I.Push_int y -> Some (I.Push_bool (x <> y))
  | Ast.Eq, I.Push_bool x, I.Push_bool y -> Some (I.Push_bool (x = y))
  | Ast.Neq, I.Push_bool x, I.Push_bool y -> Some (I.Push_bool (x <> y))
  | Ast.Eq, I.Push_str x, I.Push_str y -> Some (I.Push_bool (String.equal x y))
  | Ast.And, I.Push_bool x, I.Push_bool y -> Some (I.Push_bool (x && y))
  | Ast.Or, I.Push_bool x, I.Push_bool y -> Some (I.Push_bool (x || y))
  | _ -> None

let fold_unop op a : Instr.t option =
  let module I = Instr in
  match (op, a) with
  | Ast.Neg, I.Push_int x -> Some (I.Push_int (-x))
  | Ast.Not, I.Push_bool x -> Some (I.Push_bool (not x))
  | _ -> None

(* One rewriting pass over a code list annotated with original
   positions.  Returns the rewritten list; every kept element remembers
   the original position range it covers so jumps can be remapped. *)
let rewrite_pass code =
  (* code : (orig_pos * instr) list *)
  let rec go acc = function
    | [] -> List.rev acc
    | (_, a) :: (_, Instr.Binop op) :: rest
      when Option.is_some
             (match acc with
             | (_, b) :: _ -> fold_binop op b a
             | [] -> None) -> (
        (* stack shape: [.. b a] with b from acc head *)
        match acc with
        | (pb, b) :: acc' ->
            incr folded_total;
            let folded = Option.get (fold_binop op b a) in
            go ((pb, folded) :: acc') rest
        | [] -> assert false)
    | (p, a) :: (_, Instr.Unop op) :: rest
      when Option.is_some (fold_unop op a) ->
        incr folded_total;
        go ((p, Option.get (fold_unop op a)) :: acc) rest
    | (p, Instr.Push_bool true) :: (_, Instr.Jump_if_false _) :: rest ->
        removed_total := !removed_total + 2;
        ignore p;
        go acc rest
    | (p, Instr.Push_bool false) :: (_, Instr.Jump_if_false t) :: rest ->
        incr removed_total;
        go ((p, Instr.Jump t) :: acc) rest
    | (p, Instr.Load i) :: (_, Instr.Store j) :: rest when i = j ->
        removed_total := !removed_total + 2;
        ignore p;
        go acc rest
    | (p, ins) :: rest -> go ((p, ins) :: acc) rest
  in
  go [] code

let block (b : Block.block) : Block.block =
  let n = Array.length b.Block.blk_code in
  if n = 0 then b
  else begin
    let annotated =
      List.init n (fun i -> (i, b.Block.blk_code.(i)))
    in
    (* to fixpoint: one pass folds left-nested expressions fully, but
       right-nested ones need another round *)
    let rec fix lst rounds =
      if rounds = 0 then lst
      else
        let lst' = rewrite_pass lst in
        if List.length lst' = List.length lst && lst' = lst then lst
        else fix lst' (rounds - 1)
    in
    let rewritten = fix annotated 10 in
    (* position map: original index -> new index of the first kept
       instruction at or after it *)
    let new_index = Array.make (n + 1) (List.length rewritten) in
    List.iteri
      (fun new_i (orig, _) ->
        (* everything from the previous kept original up to [orig]
           maps here *)
        for k = orig downto 0 do
          if new_index.(k) > new_i then new_index.(k) <- new_i
        done)
      rewritten;
    (* (the loop above is O(n^2) worst case but blocks are tiny) *)
    let remap t = if t >= n then List.length rewritten else new_index.(t) in
    let code =
      Array.of_list
        (List.map
           (fun (_, ins) ->
             match ins with
             | Instr.Jump t -> Instr.Jump (remap t)
             | Instr.Jump_if_false t -> Instr.Jump_if_false (remap t)
             | other -> other)
           rewritten)
    in
    (* jump threading: a jump landing on another jump retargets *)
    let rec final_target t depth =
      if depth > Array.length code then t
      else if t < Array.length code then
        match code.(t) with
        | Instr.Jump t' -> final_target t' (depth + 1)
        | _ -> t
      else t
    in
    Array.iteri
      (fun i ins ->
        match ins with
        | Instr.Jump t ->
            let t' = final_target t 0 in
            if t' = i + 1 then code.(i) <- Instr.Jump (i + 1)
            else code.(i) <- Instr.Jump t'
        | Instr.Jump_if_false t ->
            code.(i) <- Instr.Jump_if_false (final_target t 0)
        | _ -> ())
      code;
    { b with Block.blk_code = code }
  end

let unit_ (u : Block.unit_) : Block.unit_ =
  { u with Block.blocks = Array.map block u.Block.blocks }

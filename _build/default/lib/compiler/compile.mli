(** Code generation: surface programs to byte-code units.

    Compilation follows the paper's pipeline — “programs are compiled
    into an intermediate virtual machine assembly.  This in turn is
    compiled into hardware independent byte-code” — collapsed into one
    pass here (the assembly is observable via {!Disasm}).

    Conventions:
    - each source object becomes a method table whose methods are
      blocks with frame layout [params..][captured..][locals..];
    - each [def] becomes a definition group whose classes share one
      closure environment [captured..][group class values..], giving
      mutual recursion by in-place patching;
    - parallel composition compiles to sequential emission inside one
      thread (spawning happens only at communication and
      instantiation, which matches the TyCO machine and keeps threads
      at the granularity the paper reports);
    - [import] compiles to a suspension: the continuation becomes its
      own block, spawned when the name service reply arrives;
    - the entry block has one parameter: slot 0 receives the site's
      [io] port. *)

exception Error of string

val compile_proc : ?optimize:bool -> Tyco_syntax.Ast.proc -> Block.unit_
(** Compile one site body.  Desugars first; raises {!Error} on unbound
    identifiers (run the type-checker first for source-located
    diagnostics).  [optimize] (default [true]) runs the {!Peephole}
    pass on every block. *)

val compile_program :
  ?optimize:bool -> Tyco_syntax.Ast.program -> (string * Block.unit_) list
(** Compile every site of a network program. *)

(** Byte-code blocks and program units.

    “The nested structure of the source program is preserved in the
    final byte-code.  This allows the efficient dynamic selection of
    byte-code blocks that have to be moved between sites.” (paper §5)

    A compiled program is a {!unit_}: a table of {!block}s (straight-line
    instruction sequences with a frame of [nslots] slots), a table of
    method tables ({!mtable}, one per source object), and a table of
    definition groups ({!group}, one per [def]).  Blocks reference
    method tables and groups by index; {!code_closure} computes the
    transitive set needed to ship one object or class, and {!Link}
    grafts such a sub-unit into another site's program area. *)

(** One method of an object: label, body block, parameter count.  The
    body block's frame layout is [params..][captured..][locals..]. *)
type mentry = { me_label : string; me_block : int; me_nparams : int }

(** A method table: the compiled form of [x?{...}].  [mt_captures] are
    the creating frame's slots captured into the closure environment
    shared by all methods. *)
type mtable = { mt_id : int; mt_captures : int array; mt_entries : mentry array }

type class_sig = { cls_name : string; cls_block : int; cls_nparams : int }

(** A definition group: the compiled form of [def X1.. and Xk..].
    [grp_captures] are the creating frame's captured slots; the shared
    closure environment is [captured..][class values of the group..],
    enabling mutual recursion.  [grp_slots.(i)] is the creating frame's
    slot that receives class [i]'s closure value. *)
type group = {
  grp_id : int;
  grp_captures : int array;
  grp_classes : class_sig array;
  grp_slots : int array;
}

type block = {
  blk_id : int;
  blk_name : string;
  blk_nparams : int;
  blk_nslots : int;
  blk_code : Instr.t array;
}

type unit_ = {
  blocks : block array;
  mtables : mtable array;
  groups : group array;
  entry : int;  (** block id of the program body; slot 0 holds [io] *)
}

val instr_count : unit_ -> int
val pp : Format.formatter -> unit_ -> unit

(** {1 Shipping support} *)

type subset = { sub_blocks : int list; sub_mtables : int list; sub_groups : int list }

val closure_of_mtable : unit_ -> int -> subset
(** Transitive code needed to ship the object closure of a method
    table. *)

val closure_of_group : unit_ -> int -> subset
(** Transitive code needed to ship a definition group (FETCH reply). *)

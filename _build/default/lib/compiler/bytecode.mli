(** Binary serialization of byte-code units — the hardware-independent
    representation shipped between sites (paper §5) and the measurand
    of the compactness experiment E2.

    [extract_mtable]/[extract_group] cut the transitive sub-unit needed
    to move one object closure or one definition group; indices are
    re-based densely so the receiving site can graft the sub-unit with
    simple offsets ({!Link}). *)

val encode_unit : Tyco_support.Wire.enc -> Block.unit_ -> unit
val decode_unit : Tyco_support.Wire.dec -> Block.unit_
(** Raises {!Tyco_support.Wire.Malformed} on corrupt input, including
    out-of-range block/mtable/group references (part of the dynamic
    checking of incoming code). *)

val unit_to_string : Block.unit_ -> string
val unit_of_string : string -> Block.unit_

val byte_size : Block.unit_ -> int
(** Size of the serialized form in bytes. *)

val extract_mtable : Block.unit_ -> int -> Block.unit_ * int
(** [(sub_unit, mt')] where [mt'] is the method table's index within
    the sub-unit. *)

val extract_group : Block.unit_ -> int -> Block.unit_ * int

type mentry = { me_label : string; me_block : int; me_nparams : int }
type mtable = { mt_id : int; mt_captures : int array; mt_entries : mentry array }
type class_sig = { cls_name : string; cls_block : int; cls_nparams : int }

type group = {
  grp_id : int;
  grp_captures : int array;
  grp_classes : class_sig array;
  grp_slots : int array;
}

type block = {
  blk_id : int;
  blk_name : string;
  blk_nparams : int;
  blk_nslots : int;
  blk_code : Instr.t array;
}

type unit_ = {
  blocks : block array;
  mtables : mtable array;
  groups : group array;
  entry : int;
}

let instr_count u =
  Array.fold_left (fun n b -> n + Array.length b.blk_code) 0 u.blocks

let pp ppf u =
  Format.fprintf ppf "@[<v>unit: %d block(s), %d mtable(s), %d group(s), entry=b%d@ "
    (Array.length u.blocks) (Array.length u.mtables) (Array.length u.groups)
    u.entry;
  Array.iter
    (fun b ->
      Format.fprintf ppf "@[<v 2>block b%d %s (params=%d slots=%d):@ "
        b.blk_id b.blk_name b.blk_nparams b.blk_nslots;
      Array.iteri
        (fun i ins -> Format.fprintf ppf "%3d: %a@ " i Instr.pp ins)
        b.blk_code;
      Format.fprintf ppf "@]@ ")
    u.blocks;
  Array.iter
    (fun mt ->
      Format.fprintf ppf "mtable mt%d caps=%d: %s@ " mt.mt_id
        (Array.length mt.mt_captures)
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun e -> Printf.sprintf "%s->b%d/%d" e.me_label e.me_block e.me_nparams)
                 mt.mt_entries))))
    u.mtables;
  Array.iter
    (fun g ->
      Format.fprintf ppf "group g%d caps=%d: %s@ " g.grp_id
        (Array.length g.grp_captures)
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun c -> Printf.sprintf "%s->b%d/%d" c.cls_name c.cls_block c.cls_nparams)
                 g.grp_classes))))
    u.groups;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Transitive code closure, for mobility.                              *)

type subset = { sub_blocks : int list; sub_mtables : int list; sub_groups : int list }

module ISet = Set.Make (Int)

type walk = {
  mutable wblocks : ISet.t;
  mutable wmtables : ISet.t;
  mutable wgroups : ISet.t;
}

let rec walk_block u w bid =
  if not (ISet.mem bid w.wblocks) then begin
    w.wblocks <- ISet.add bid w.wblocks;
    Array.iter
      (function
        | Instr.Trobj mt -> walk_mtable u w mt
        | Instr.Defgroup g -> walk_group u w g
        | Instr.Import_name { cont; _ } | Instr.Import_class { cont; _ } ->
            walk_block u w cont
        | Instr.Push_int _ | Instr.Push_bool _ | Instr.Push_str _
        | Instr.Load _ | Instr.Store _ | Instr.Binop _ | Instr.Unop _
        | Instr.Jump _ | Instr.Jump_if_false _ | Instr.New_chan _
        | Instr.Trmsg _ | Instr.Instof _ | Instr.Export_name _
        | Instr.Export_class _ ->
            ())
      u.blocks.(bid).blk_code
  end

and walk_mtable u w mt =
  if not (ISet.mem mt w.wmtables) then begin
    w.wmtables <- ISet.add mt w.wmtables;
    Array.iter (fun e -> walk_block u w e.me_block) u.mtables.(mt).mt_entries
  end

and walk_group u w g =
  if not (ISet.mem g w.wgroups) then begin
    w.wgroups <- ISet.add g w.wgroups;
    Array.iter (fun c -> walk_block u w c.cls_block) u.groups.(g).grp_classes
  end

let finish w =
  { sub_blocks = ISet.elements w.wblocks;
    sub_mtables = ISet.elements w.wmtables;
    sub_groups = ISet.elements w.wgroups }

let closure_of_mtable u mt =
  let w = { wblocks = ISet.empty; wmtables = ISet.empty; wgroups = ISet.empty } in
  walk_mtable u w mt;
  finish w

let closure_of_group u g =
  let w = { wblocks = ISet.empty; wmtables = ISet.empty; wgroups = ISet.empty } in
  walk_group u w g;
  finish w

let pp = Block.pp
let to_string u = Format.asprintf "%a" pp u

type stats = {
  n_blocks : int;
  n_mtables : int;
  n_groups : int;
  n_instrs : int;
  n_bytes : int;
}

let stats (u : Block.unit_) =
  { n_blocks = Array.length u.blocks;
    n_mtables = Array.length u.mtables;
    n_groups = Array.length u.groups;
    n_instrs = Block.instr_count u;
    n_bytes = Bytecode.byte_size u }

let pp_stats ppf s =
  Format.fprintf ppf "blocks=%d mtables=%d groups=%d instrs=%d bytes=%d"
    s.n_blocks s.n_mtables s.n_groups s.n_instrs s.n_bytes

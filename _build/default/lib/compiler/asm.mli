(** The textual virtual-machine assembly (paper §5: “programs are
    compiled into an intermediate virtual machine assembly.  This in
    turn is compiled into hardware independent byte-code.  The mapping
    between the assembly and the final byte-code is almost
    one-to-one”).

    This module realizes both directions: {!print} renders a byte-code
    unit as assembly text; {!parse} assembles such text back into a
    unit.  The round trip is exact ([parse (print u)] re-serializes to
    the same bytes), which the test suite checks on every compiled
    program.

    Format sketch:
    {v
      unit entry=b0
      block b0 "entry" params=1 slots=3 {
        newc 1
        pushi 5
        load 1
        trmsg val/1
      }
      mtable mt0 caps=[0] {
        read -> b1/1
      }
      group g0 caps=[] slots=[2] {
        Cell -> b2/2
      }
    v} *)

exception Error of string
(** Parse/assembly errors, with a line number in the message. *)

val print : Block.unit_ -> string
val pp : Format.formatter -> Block.unit_ -> unit

val parse : string -> Block.unit_
(** Raises {!Error} on malformed assembly, undefined labels, or
    out-of-range references. *)

(** Disassembler: renders byte-code units as the intermediate “virtual
    machine assembly” of the paper (§5: the assembly/byte-code mapping
    is almost one-to-one, so the disassembly is faithful). *)

val pp : Format.formatter -> Block.unit_ -> unit
val to_string : Block.unit_ -> string

type stats = {
  n_blocks : int;
  n_mtables : int;
  n_groups : int;
  n_instrs : int;
  n_bytes : int;      (** serialized size *)
}

val stats : Block.unit_ -> stats
val pp_stats : Format.formatter -> stats -> unit

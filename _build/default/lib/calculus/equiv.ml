exception Search_exhausted of int

type outcome = (string * string * string) list

let render_value v = Format.asprintf "%a" Network.pp_value v

(* Channel identities in rendered values are fresh-name dependent
   ("c$17"), so two interleavings of the same program can render the
   same observable differently.  Observable outputs in practice are
   base values; channel mentions are canonicalized to "#chan". *)
let canon_value v =
  match v with
  | Network.Vid _ -> "#chan"
  | Network.Vint _ | Network.Vbool _ | Network.Vstr _ -> render_value v

let outcome_of_net net : outcome =
  List.sort compare
    (List.map
       (fun (site, label, vs) ->
         (site, label, String.concat "," (List.map canon_value vs)))
       (Network.outputs net))

(* A cheap state signature for duplicate pruning: the multiset of atom
   renderings plus outputs.  Fresh-name suffixes differ between
   branches that created names in different orders, so this is a sound
   but incomplete dedup (missed duplicates only cost time). *)
let signature net =
  let atoms =
    List.sort compare
      (List.map
         (fun (site, a) ->
           site ^ "|" ^ Format.asprintf "%a" (fun ppf -> function
             | Network.Amsg (x, l, vs) ->
                 Format.fprintf ppf "m %a %s %s" Term.pp_id x l
                   (String.concat "," (List.map canon_value vs))
             | Network.Aobj (x, ms) ->
                 Format.fprintf ppf "o %a %s" Term.pp_id x
                   (String.concat ","
                      (List.map (fun (m : Term.method_) -> m.Term.m_label) ms))
             | Network.Ainst (c, vs) ->
                 Format.fprintf ppf "i %s %s"
                   (match c with
                    | Term.Cplain x -> x
                    | Term.Clocated (s, x) -> s ^ "." ^ x)
                   (String.concat "," (List.map canon_value vs)))
             a)
         (Network.atoms net))
  in
  String.concat ";" atoms
  ^ "##"
  ^ String.concat ";"
      (List.map
         (fun (s, l, vs) ->
           s ^ l ^ String.concat "," (List.map canon_value vs))
         (Network.outputs net))

let explore ?(max_states = 50_000) net =
  let seen = Hashtbl.create 1024 in
  let results = Hashtbl.create 64 in
  let explored = ref 0 in
  let rec go net =
    let key = signature net in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr explored;
      if !explored > max_states then raise (Search_exhausted max_states);
      match Network.all_steps net with
      | [] -> Hashtbl.replace results (outcome_of_net net) ()
      | steps -> List.iter (fun (_, net') -> go net') steps
    end
  in
  go net;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) results [])

let outcomes_of_net ?max_states net = explore ?max_states net

let outcomes ?max_states ?inputs prog =
  let loaded = Interp.load ?inputs prog in
  explore ?max_states loaded.Interp.net

let may_equivalent ?max_states p1 p2 =
  outcomes ?max_states p1 = outcomes ?max_states p2

let deterministic ?max_states prog =
  match outcomes ?max_states prog with [ _ ] | [] -> true | _ -> false

let runtime_outcome_admissible ?max_states prog observed =
  let obs = List.sort compare observed in
  List.mem obs (outcomes ?max_states prog)

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf "{%s}"
    (String.concat "; "
       (List.map (fun (s, l, v) -> Printf.sprintf "%s:%s[%s]" s l v) o))

(** Kernel TyCO terms with located identifiers (paper §2–§3).

    This is the formal layer: identifiers are syntactic, and a name is
    either plain ([x], implicitly located at the enclosing site) or
    located ([s.x]).  The paper's σ translation and capture-avoiding
    substitution operate on these terms; {!Network} builds the network
    reduction relation on top. *)

type site = string

type id =
  | Plain of string
  | Located of site * string

type cid =
  | Cplain of string
  | Clocated of site * string

type lit = Lint of int | Lbool of bool | Lstr of string

type expr =
  | Eid of id
  | Elit of lit
  | Ebin of Tyco_syntax.Ast.binop * expr * expr
  | Eun of Tyco_syntax.Ast.unop * expr

type proc =
  | Nil
  | Par of proc * proc
  | New of string list * proc
  | Msg of id * string * expr list
  | Obj of id * method_ list
  | Inst of cid * expr list
  | Def of defn list * proc
  | If of expr * proc * proc

and method_ = { m_label : string; m_params : string list; m_body : proc }
and defn = { d_name : string; d_params : string list; d_body : proc }

val of_ast : Tyco_syntax.Ast.proc -> proc
(** Translate a desugared surface process (no [let], no export/import —
    those belong to the network layer).  Raises [Invalid_argument] on
    residual surface constructs. *)

val par_list : proc list -> proc
val flatten_par : proc -> proc list

(** {1 Identifier analysis} *)

val free_ids : proc -> id list
(** Free names, first-occurrence order; plain and located. *)

val free_cids : proc -> cid list

(** {1 The σ translation (paper §3)}

    [sigma ~from_:r] translates the free identifiers of a piece of code
    moving {e out of} site [r]: plain [x] becomes [r.x], [s.x] stays.
    Its inverse direction — localizing identifiers that arrive {e at}
    site [s] — is [localize ~at:s]: [s.x] becomes plain [x]. *)

val sigma_id : from_:site -> id -> id
val localize_id : at:site -> id -> id
val sigma : from_:site -> proc -> proc
val localize : at:site -> proc -> proc
val sigma_defn : from_:site -> defn -> defn
val sigma_method : from_:site -> method_ -> method_

(** {1 Substitution} *)

val subst : (string * expr) list -> proc -> proc
(** [subst \[(x1,e1);...\] p] — simultaneous, capture-avoiding on plain
    names.  Binders that would capture a free name of the substituted
    expressions are renamed. *)

val subst_cid : (string * cid) list -> proc -> proc
(** Replace free plain class variables. *)

val map_cids : (cid -> cid) -> proc -> proc
(** Apply a function to every class-variable occurrence, free or not;
    used by the FETCH rule to retarget a copied definition group. *)

val rename_bound : prefix:string -> proc -> proc
(** Alpha-rename every bound name deterministically ([prefix ^ counter]);
    used to compare terms up to alpha. *)

val alpha_equal : proc -> proc -> bool

val size : proc -> int

val pp : Format.formatter -> proc -> unit
val pp_id : Format.formatter -> id -> unit
val to_string : proc -> string

lib/calculus/term.mli: Format Tyco_syntax

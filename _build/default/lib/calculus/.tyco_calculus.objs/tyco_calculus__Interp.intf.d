lib/calculus/interp.mli: Network Tyco_syntax

lib/calculus/equiv.ml: Format Hashtbl Interp List Network Printf String Term

lib/calculus/congruence.mli: Term

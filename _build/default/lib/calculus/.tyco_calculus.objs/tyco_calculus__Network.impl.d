lib/calculus/network.ml: Fmt Format List Option Printf String Term Tyco_support Tyco_syntax

lib/calculus/term.ml: Fmt List Printf Set String Tyco_support Tyco_syntax

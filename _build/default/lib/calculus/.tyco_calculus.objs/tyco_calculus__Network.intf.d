lib/calculus/network.mli: Format Term

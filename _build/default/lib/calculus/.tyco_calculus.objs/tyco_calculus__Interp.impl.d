lib/calculus/interp.ml: Format List Map Network String Term Tyco_syntax

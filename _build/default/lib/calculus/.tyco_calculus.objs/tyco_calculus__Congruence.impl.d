lib/calculus/congruence.ml: Hashtbl List Printf String Term

lib/calculus/equiv.mli: Format Network Tyco_syntax

module Ast = Tyco_syntax.Ast

type site = string

type value =
  | Vid of Term.id
  | Vint of int
  | Vbool of bool
  | Vstr of string

type atom =
  | Amsg of Term.id * string * value list
  | Aobj of Term.id * Term.method_ list
  | Ainst of Term.cid * value list

type event =
  | Ecomm of site * string * string
  | Einst of site * string
  | Eship_msg of site * site * string
  | Eship_obj of site * site * string
  | Efetch of site * site * string
  | Eoutput of site * string * value list

exception Stuck of string

let stuck fmt = Format.kasprintf (fun m -> raise (Stuck m)) fmt

type t = {
  fresh : int;
  age : int;
  defs : ((site * string) * Term.defn list) list;
  atoms : (int * site * atom) list; (* oldest first *)
  outs : (site * string * value list) list; (* newest first *)
  inputs : (site * int list) list; (* pending io inputs per site *)
  (* class names marked for export: when the matching [def] is
     decomposed (with its enclosing binders already freshened), a
     public alias group is registered under the original names *)
  pending_exports : (site * string) list;
}

let empty =
  { fresh = 0; age = 0; defs = []; atoms = []; outs = []; inputs = [];
    pending_exports = [] }

let mark_exports t site names =
  { t with
    pending_exports =
      List.map (fun x -> (site, x)) names @ t.pending_exports }

let with_inputs t inputs = { t with inputs }
let atoms t = List.map (fun (_, s, a) -> (s, a)) t.atoms
let outputs t = List.rev t.outs

(* ------------------------------------------------------------------ *)
(* Expression evaluation (strict, at atom-creation time).              *)

let value_to_expr = function
  | Vid i -> Term.Eid i
  | Vint n -> Term.Elit (Term.Lint n)
  | Vbool b -> Term.Elit (Term.Lbool b)
  | Vstr s -> Term.Elit (Term.Lstr s)

let rec eval ~at (e : Term.expr) : value =
  match e with
  | Term.Eid id -> Vid (Term.localize_id ~at id)
  | Term.Elit (Term.Lint n) -> Vint n
  | Term.Elit (Term.Lbool b) -> Vbool b
  | Term.Elit (Term.Lstr s) -> Vstr s
  | Term.Eun (Ast.Neg, a) -> (
      match eval ~at a with
      | Vint n -> Vint (-n)
      | _ -> stuck "negation of a non-integer")
  | Term.Eun (Ast.Not, a) -> (
      match eval ~at a with
      | Vbool b -> Vbool (not b)
      | _ -> stuck "'not' of a non-boolean")
  | Term.Ebin (op, a, b) -> (
      let va = eval ~at a and vb = eval ~at b in
      match (op, va, vb) with
      | Ast.Add, Vint x, Vint y -> Vint (x + y)
      | Ast.Sub, Vint x, Vint y -> Vint (x - y)
      | Ast.Mul, Vint x, Vint y -> Vint (x * y)
      | Ast.Div, Vint _, Vint 0 -> stuck "division by zero"
      | Ast.Div, Vint x, Vint y -> Vint (x / y)
      | Ast.Mod, Vint _, Vint 0 -> stuck "modulo by zero"
      | Ast.Mod, Vint x, Vint y -> Vint (x mod y)
      | Ast.Lt, Vint x, Vint y -> Vbool (x < y)
      | Ast.Le, Vint x, Vint y -> Vbool (x <= y)
      | Ast.Gt, Vint x, Vint y -> Vbool (x > y)
      | Ast.Ge, Vint x, Vint y -> Vbool (x >= y)
      | Ast.Eq, x, y -> Vbool (x = y)
      | Ast.Neq, x, y -> Vbool (x <> y)
      | Ast.And, Vbool x, Vbool y -> Vbool (x && y)
      | Ast.Or, Vbool x, Vbool y -> Vbool (x || y)
      | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Lt | Ast.Le
        | Ast.Gt | Ast.Ge | Ast.And | Ast.Or), _, _ ->
          stuck "ill-typed operands in builtin expression")

(* ------------------------------------------------------------------ *)
(* Decomposition into atoms (structural-congruence normal form).       *)

let io_name = "io"

let rec add_proc t site (p : Term.proc) : t =
  match p with
  | Term.Nil -> t
  | Term.Par (a, b) -> add_proc (add_proc t site a) site b
  | Term.New (xs, q) ->
      (* [Split]/[New]: lift the restriction, freshening the names.  The
         [$] suffix cannot be written in source programs, so fresh names
         never collide with public (exported) ones. *)
      let t, renaming =
        List.fold_left
          (fun (t, ren) x ->
            let x' = Printf.sprintf "%s$%d" x t.fresh in
            ({ t with fresh = t.fresh + 1 },
             (x, Term.Eid (Term.Plain x')) :: ren))
          (t, []) xs
      in
      add_proc t site (Term.subst renaming q)
  | Term.If (e, a, b) -> (
      match eval ~at:site e with
      | Vbool true -> add_proc t site a
      | Vbool false -> add_proc t site b
      | _ -> stuck "condition is not a boolean")
  | Term.Msg (x, l, es) ->
      let vs = List.map (eval ~at:site) es in
      let x = Term.localize_id ~at:site x in
      if x = Term.Plain io_name then
        if String.equal l "readi" then
          (* input: pop the next supplied integer and reply on the
             argument channel; a starved read blocks silently *)
          match (vs, List.assoc_opt site t.inputs) with
          | [ Vid k ], Some (v :: rest) ->
              let t =
                { t with
                  inputs = (site, rest) :: List.remove_assoc site t.inputs }
              in
              add_proc t site (Term.Msg (k, "val", [ Term.Elit (Term.Lint v) ]))
          | [ Vid _ ], (Some [] | None) -> t
          | _ -> stuck "io!readi expects one reply channel"
        else { t with outs = (site, l, vs) :: t.outs }
      else push t site (Amsg (x, l, vs))
  | Term.Obj (x, ms) ->
      push t site (Aobj (Term.localize_id ~at:site x, ms))
  | Term.Inst (xc, es) ->
      let vs = List.map (eval ~at:site) es in
      push t site (Ainst (xc, vs))
  | Term.Def (ds, q) ->
      (* [Def]: lift the group to the definition table under fresh
         class names; internal references are retargeted. *)
      let t, renaming =
        List.fold_left
          (fun (t, ren) (d : Term.defn) ->
            let x' = Printf.sprintf "%s$%d" d.d_name t.fresh in
            ({ t with fresh = t.fresh + 1 },
             (d.d_name, Term.Clocated (site, x')) :: ren))
          (t, []) ds
      in
      let retarget = Term.subst_cid renaming in
      let group =
        List.map
          (fun (d : Term.defn) ->
            let x' =
              match List.assoc d.d_name renaming with
              | Term.Clocated (_, x') -> x'
              | Term.Cplain _ -> assert false
            in
            { d with Term.d_name = x'; d_body = retarget d.d_body })
          ds
      in
      let t =
        List.fold_left
          (fun t (d : Term.defn) ->
            { t with defs = ((site, d.d_name), group) :: t.defs })
          t group
      in
      (* exported groups additionally register under their public
         (original) names, with internal references retargeted to the
         public copies — the network-level [def s.D] of the paper's §4
         translation, now with correctly freshened free names *)
      let exported =
        List.filter
          (fun (d : Term.defn) -> List.mem (site, d.d_name) t.pending_exports)
          ds
      in
      let t =
        if exported = [] then t
        else begin
          let public_renaming =
            List.map
              (fun (d : Term.defn) ->
                (* tagged name of this member -> public name *)
                (match List.assoc d.d_name renaming with
                 | Term.Clocated (_, tagged) -> tagged
                 | Term.Cplain _ -> assert false),
                d.d_name)
              ds
          in
          let to_public =
            Term.map_cids (function
              | Term.Clocated (s', tagged)
                when String.equal s' site
                     && List.mem_assoc tagged public_renaming ->
                  Term.Clocated (site, List.assoc tagged public_renaming)
              | c -> c)
          in
          let public_group =
            List.map
              (fun (d : Term.defn) ->
                let tagged_d =
                  List.find
                    (fun (g : Term.defn) ->
                      match List.assoc d.d_name renaming with
                      | Term.Clocated (_, tg) -> String.equal g.Term.d_name tg
                      | Term.Cplain _ -> false)
                    group
                in
                { tagged_d with
                  Term.d_name = d.d_name;
                  d_body = to_public tagged_d.Term.d_body })
              ds
          in
          let t =
            List.fold_left
              (fun t (d : Term.defn) ->
                { t with defs = ((site, d.Term.d_name), public_group) :: t.defs })
              t public_group
          in
          { t with
            pending_exports =
              List.filter
                (fun (s', x) ->
                  not
                    (String.equal s' site
                    && List.exists
                         (fun (d : Term.defn) -> String.equal d.Term.d_name x)
                         exported))
                t.pending_exports }
        end
      in
      add_proc t site (retarget q)

and push t site atom =
  { t with age = t.age + 1; atoms = t.atoms @ [ (t.age, site, atom) ] }

let register_defs t site (ds : Term.defn list) : t =
  (* Public (exported) groups keep their class names; internal
     references become located at the defining site. *)
  let renaming =
    List.map
      (fun (d : Term.defn) -> (d.d_name, Term.Clocated (site, d.d_name)))
      ds
  in
  let group =
    List.map
      (fun (d : Term.defn) ->
        { d with Term.d_body = Term.subst_cid renaming d.d_body })
      ds
  in
  List.fold_left
    (fun t (d : Term.defn) ->
      { t with defs = ((site, d.d_name), group) :: t.defs })
    t group

(* ------------------------------------------------------------------ *)
(* Reduction.                                                          *)

let remove_atom t key =
  { t with atoms = List.filter (fun (k, _, _) -> k <> key) t.atoms }

let instantiate t site (d : Term.defn) vs =
  if List.length d.d_params <> List.length vs then
    stuck "class %s: arity mismatch" d.d_name;
  let map = List.combine d.d_params (List.map value_to_expr vs) in
  add_proc t site (Term.subst map d.d_body)

let translate_value ~from_ ~to_ = function
  | Vid id -> Vid (Term.localize_id ~at:to_ (Term.sigma_id ~from_ id))
  | (Vint _ | Vbool _ | Vstr _) as v -> v

let translate_method ~from_ ~to_ (m : Term.method_) =
  let m = Term.sigma_method ~from_ m in
  { m with Term.m_body = Term.localize ~at:to_ m.Term.m_body }

(* COMM: the oldest message that has a matching object at its site. *)
let find_comm t =
  let objs_at site x =
    List.filter_map
      (fun (k, s, a) ->
        match a with
        | Aobj (ox, ms) when String.equal s site && ox = Term.Plain x ->
            Some (k, ms)
        | Aobj _ | Amsg _ | Ainst _ -> None)
      t.atoms
  in
  let rec go = function
    | [] -> None
    | (k, site, Amsg (Term.Plain x, l, vs)) :: rest -> (
        match objs_at site x with
        | [] -> go rest
        | (ok, ms) :: _ -> Some (k, ok, site, x, l, vs, ms))
    | _ :: rest -> go rest
  in
  go t.atoms

let find_local_inst t =
  List.find_map
    (fun (k, site, a) ->
      match a with
      | Ainst ((Term.Clocated (s, x) as _c), vs) when String.equal s site -> (
          match List.assoc_opt (s, x) t.defs with
          | Some group -> Some (k, site, x, vs, group)
          | None -> stuck "unbound class %s.%s" s x)
      | Ainst (Term.Cplain x, _) -> stuck "unbound class '%s'" x
      | Ainst _ | Amsg _ | Aobj _ -> None)
    t.atoms

let find_ship_msg t =
  List.find_map
    (fun (k, site, a) ->
      match a with
      | Amsg ((Term.Located (s, x) as _i), l, vs) ->
          Some (k, site, s, x, l, vs)
      | Amsg _ | Aobj _ | Ainst _ -> None)
    t.atoms

let find_ship_obj t =
  List.find_map
    (fun (k, site, a) ->
      match a with
      | Aobj (Term.Located (s, x), ms) -> Some (k, site, s, x, ms)
      | Aobj _ | Amsg _ | Ainst _ -> None)
    t.atoms

let find_fetch t =
  List.find_map
    (fun (k, site, a) ->
      match a with
      | Ainst (Term.Clocated (s, x), vs) when not (String.equal s site) ->
          Some (k, site, s, x, vs)
      | Ainst _ | Amsg _ | Aobj _ -> None)
    t.atoms

let step t =
  match find_comm t with
  | Some (mk, ok, site, x, l, vs, ms) ->
      let t = remove_atom (remove_atom t mk) ok in
      let m =
        match
          List.find_opt (fun (m : Term.method_) -> String.equal m.Term.m_label l) ms
        with
        | Some m -> m
        | None -> stuck "channel '%s': no method '%s' (protocol error)" x l
      in
      if List.length m.Term.m_params <> List.length vs then
        stuck "channel '%s' method '%s': arity mismatch" x l;
      let map = List.combine m.Term.m_params (List.map value_to_expr vs) in
      let t = add_proc t site (Term.subst map m.Term.m_body) in
      Some (Ecomm (site, x, l), t)
  | None -> (
      match find_local_inst t with
      | Some (k, site, x, vs, group) ->
          let t = remove_atom t k in
          let d =
            List.find (fun (d : Term.defn) -> String.equal d.Term.d_name x) group
          in
          let t = instantiate t site d vs in
          Some (Einst (site, x), t)
      | None -> (
          match find_ship_msg t with
          | Some (k, from_, to_, x, l, vs) ->
              let t = remove_atom t k in
              let vs = List.map (translate_value ~from_ ~to_) vs in
              let t =
                if String.equal x io_name then
                  if String.equal l "readi" then
                    (* remote input request: shipped code reading from
                       its home site's I/O port *)
                    match (vs, List.assoc_opt to_ t.inputs) with
                    | [ Vid kk ], Some (v :: rest) ->
                        let t =
                          { t with
                            inputs =
                              (to_, rest) :: List.remove_assoc to_ t.inputs }
                        in
                        add_proc t to_
                          (Term.Msg (kk, "val", [ Term.Elit (Term.Lint v) ]))
                    | [ Vid _ ], (Some [] | None) -> t
                    | _ -> stuck "io!readi expects one reply channel"
                  else { t with outs = (to_, l, vs) :: t.outs }
                else push t to_ (Amsg (Term.Plain x, l, vs))
              in
              Some (Eship_msg (from_, to_, x), t)
          | None -> (
              match find_ship_obj t with
              | Some (k, from_, to_, x, ms) ->
                  let t = remove_atom t k in
                  let ms = List.map (translate_method ~from_ ~to_) ms in
                  let t = push t to_ (Aobj (Term.Plain x, ms)) in
                  Some (Eship_obj (from_, to_, x), t)
              | None -> (
                  match find_fetch t with
                  | Some (k, site, s, x, vs) -> (
                      match List.assoc_opt (s, x) t.defs with
                      | None -> stuck "unbound class %s.%s" s x
                      | Some group ->
                          let t = remove_atom t k in
                          (* Copy the whole group (it may be mutually
                             recursive), retargeting internal references
                             to the local copies and σ-translating the
                             bodies' free names. *)
                          let t, renaming =
                            List.fold_left
                              (fun (t, ren) (d : Term.defn) ->
                                let x' =
                                  Printf.sprintf "%s$%d" d.Term.d_name t.fresh
                                in
                                ({ t with fresh = t.fresh + 1 },
                                 (d.Term.d_name, x') :: ren))
                              (t, []) group
                          in
                          let retarget =
                            Term.map_cids (function
                              | Term.Clocated (s', x')
                                when String.equal s' s
                                     && List.mem_assoc x' renaming ->
                                  Term.Clocated (site, List.assoc x' renaming)
                              | c -> c)
                          in
                          let copied =
                            List.map
                              (fun (d : Term.defn) ->
                                (* σ excludes the class parameters (they
                                   are binding occurrences); localization
                                   only touches located identifiers, which
                                   are never bound. *)
                                let d' = Term.sigma_defn ~from_:s d in
                                let body =
                                  Term.localize ~at:site d'.Term.d_body
                                in
                                { d with
                                  Term.d_name = List.assoc d.Term.d_name renaming;
                                  d_body = retarget body })
                              group
                          in
                          let t =
                            List.fold_left
                              (fun t (d : Term.defn) ->
                                { t with
                                  defs =
                                    ((site, d.Term.d_name), copied) :: t.defs })
                              t copied
                          in
                          let t =
                            push t site
                              (Ainst
                                 ( Term.Clocated (site, List.assoc x renaming),
                                   vs ))
                          in
                          Some (Efetch (site, s, x), t))
                  | None -> None))))

(* ------------------------------------------------------------------ *)
(* Exhaustive redex enumeration, for the verification tools: unlike
   [step] (which imposes a deterministic FIFO strategy matching the
   byte-code runtime), [all_steps] returns every redex the calculus
   allows — any message may meet any object at its channel.            *)

let all_steps t : (event * t) list =
  let comms =
    List.concat_map
      (fun (mk, site, a) ->
        match a with
        | Amsg (Term.Plain x, l, vs) ->
            List.filter_map
              (fun (ok, s', a') ->
                match a' with
                | Aobj (ox, ms)
                  when String.equal s' site && ox = Term.Plain x -> (
                    match
                      List.find_opt
                        (fun (m : Term.method_) ->
                          String.equal m.Term.m_label l)
                        ms
                    with
                    | Some m when List.length m.Term.m_params = List.length vs
                      ->
                        let t' = remove_atom (remove_atom t mk) ok in
                        let map =
                          List.combine m.Term.m_params
                            (List.map value_to_expr vs)
                        in
                        let t' =
                          add_proc t' site (Term.subst map m.Term.m_body)
                        in
                        Some (Ecomm (site, x, l), t')
                    | Some _ -> stuck "channel '%s': arity mismatch" x
                    | None ->
                        stuck "channel '%s': no method '%s' (protocol error)"
                          x l)
                | Aobj _ | Amsg _ | Ainst _ -> None)
              t.atoms
        | Amsg _ | Aobj _ | Ainst _ -> [])
      t.atoms
  in
  let insts =
    List.filter_map
      (fun (k, site, a) ->
        match a with
        | Ainst (Term.Clocated (s, x), vs) when String.equal s site -> (
            match List.assoc_opt (s, x) t.defs with
            | Some group ->
                let d =
                  List.find
                    (fun (d : Term.defn) -> String.equal d.Term.d_name x)
                    group
                in
                Some (Einst (site, x), instantiate (remove_atom t k) site d vs)
            | None -> stuck "unbound class %s.%s" s x)
        | Ainst _ | Amsg _ | Aobj _ -> None)
      t.atoms
  in
  (* The shipment and fetch rules are point-to-point and confluent with
     everything else (the paper: migration is deterministic); exploring
     one order suffices, so they are appended as single options via the
     deterministic step when no local redex is chosen.  For simplicity
     and soundness we enumerate them individually as well. *)
  let ships =
    List.filter_map
      (fun (k, site, a) ->
        match a with
        | Amsg ((Term.Located (s, x) as _i), l, vs) ->
            let t' = remove_atom t k in
            let vs' = List.map (translate_value ~from_:site ~to_:s) vs in
            let t' =
              if String.equal x io_name then
                if String.equal l "readi" then
                  match (vs', List.assoc_opt s t'.inputs) with
                  | [ Vid kk ], Some (v :: rest) ->
                      let t' =
                        { t' with
                          inputs =
                            (s, rest) :: List.remove_assoc s t'.inputs }
                      in
                      add_proc t' s
                        (Term.Msg (kk, "val", [ Term.Elit (Term.Lint v) ]))
                  | _ -> t'
                else { t' with outs = (s, l, vs') :: t'.outs }
              else push t' s (Amsg (Term.Plain x, l, vs'))
            in
            Some (Eship_msg (site, s, x), t')
        | Aobj (Term.Located (s, x), ms) ->
            let t' = remove_atom t k in
            let ms' = List.map (translate_method ~from_:site ~to_:s) ms in
            Some (Eship_obj (site, s, x), push t' s (Aobj (Term.Plain x, ms')))
        | Amsg _ | Aobj _ | Ainst _ -> None)
      t.atoms
  in
  let fetches =
    List.filter_map
      (fun (k, site, a) ->
        match a with
        | Ainst (Term.Clocated (s, _x), _) when not (String.equal s site) -> (
            (* reuse the deterministic fetch implementation by isolating
               this atom as the only fetchable one *)
            match
              step { t with atoms = [ List.find (fun (k', _, _) -> k' = k) t.atoms ] }
            with
            | Some (ev, t_only) ->
                (* merge: t_only contains the copied defs + new atom *)
                let others =
                  List.filter (fun (k', _, _) -> k' <> k) t.atoms
                in
                Some (ev, { t_only with atoms = others @ t_only.atoms })
            | None -> None)
        | Ainst _ | Amsg _ | Aobj _ -> None)
      t.atoms
  in
  comms @ insts @ ships @ fetches

let quiescent t = Option.is_none (step t)

let run ?(max_steps = 1_000_000) t =
  let rec go t events n =
    if n >= max_steps then
      failwith (Printf.sprintf "Network.run: no quiescence after %d steps" n)
    else
      match step t with
      | None -> (t, List.rev events)
      | Some (ev, t') -> go t' (ev :: events) (n + 1)
  in
  go t [] 0

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let pp_value ppf = function
  | Vid i -> Term.pp_id ppf i
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vstr s -> Fmt.pf ppf "%S" s

let pp_values = Tyco_support.Pretty.comma_list pp_value

let pp_event ppf = function
  | Ecomm (s, x, l) -> Fmt.pf ppf "comm %s: %s!%s" s x l
  | Einst (s, x) -> Fmt.pf ppf "inst %s: %s" s x
  | Eship_msg (r, s, x) -> Fmt.pf ppf "ship-msg %s->%s: %s" r s x
  | Eship_obj (r, s, x) -> Fmt.pf ppf "ship-obj %s->%s: %s" r s x
  | Efetch (r, s, x) -> Fmt.pf ppf "fetch %s<-%s: %s" r s x
  | Eoutput (s, l, vs) -> Fmt.pf ppf "io %s: %s[%a]" s l pp_values vs

let pp_atom ppf = function
  | Amsg (x, l, vs) -> Fmt.pf ppf "%a!%s[%a]" Term.pp_id x l pp_values vs
  | Aobj (x, ms) ->
      Fmt.pf ppf "%a?{%a}" Term.pp_id x
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (m : Term.method_) ->
             Fmt.string ppf m.Term.m_label))
        ms
  | Ainst (c, vs) ->
      (match c with
      | Term.Cplain x -> Fmt.pf ppf "%s[%a]" x pp_values vs
      | Term.Clocated (s, x) -> Fmt.pf ppf "%s.%s[%a]" s x pp_values vs)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (k, s, a) -> Fmt.pf ppf "%d %s: %a@ " k s pp_atom a)
    t.atoms;
  Fmt.pf ppf "@]"

let rec gc (p : Term.proc) : Term.proc =
  match p with
  | Term.Nil -> Term.Nil
  | Term.Par (a, b) -> (
      match (gc a, gc b) with
      | Term.Nil, q | q, Term.Nil -> q
      | a, b -> Term.Par (a, b))
  | Term.New (xs, q) ->
      let q = gc q in
      let free = Term.free_ids q in
      let xs = List.filter (fun x -> List.mem (Term.Plain x) free) xs in
      if xs = [] then q else Term.New (xs, q)
  | Term.Obj (x, ms) ->
      Term.Obj
        (x, List.map (fun (m : Term.method_) -> { m with Term.m_body = gc m.Term.m_body }) ms)
  | Term.Def (ds, q) ->
      let q = gc q in
      let ds =
        List.map (fun (d : Term.defn) -> { d with Term.d_body = gc d.Term.d_body }) ds
      in
      let used = Term.free_cids q in
      if
        List.exists
          (fun (d : Term.defn) -> List.mem (Term.Cplain d.Term.d_name) used)
          ds
      then Term.Def (ds, q)
      else q
  | Term.If (e, a, b) -> Term.If (e, gc a, gc b)
  | Term.Msg _ | Term.Inst _ -> p

let flatten p = Term.flatten_par p

(* Collect extrudable [new] binders from the top-level parallel spine.
   Callers must have alpha-renamed binders apart, so pulling a binder
   over a sibling can never capture. *)
let rec collect binders atoms (p : Term.proc) =
  match p with
  | Term.Nil -> (binders, atoms)
  | Term.Par (a, b) ->
      let binders, atoms = collect binders atoms a in
      collect binders atoms b
  | Term.New (xs, q) -> collect (binders @ xs) atoms q
  | Term.Msg _ | Term.Obj _ | Term.Inst _ | Term.Def _ | Term.If _ ->
      (binders, atoms @ [ p ])

let prenex p =
  let p = Term.rename_bound ~prefix:"x" (gc p) in
  collect [] [] p

(* Mask the prenex-bound names of an atom so sorting is stable under
   renaming; internal binders are canonicalized per atom first. *)
let coarse_key binders atom =
  let canon = Term.rename_bound ~prefix:"i" atom in
  let masked =
    Term.subst
      (List.map (fun x -> (x, Term.Eid (Term.Plain "_"))) binders)
      canon
  in
  Term.to_string masked

let normal_form p =
  let binders, atoms = prenex p in
  let atoms = List.map (Term.rename_bound ~prefix:"i") atoms in
  let keyed = List.map (fun a -> (coarse_key binders a, a)) atoms in
  let sorted =
    List.stable_sort (fun (k1, _) (k2, _) -> String.compare k1 k2) keyed
  in
  let sorted_atoms = List.map snd sorted in
  (* canonical prenex names, in order of first occurrence *)
  let counter = ref 0 in
  let assigned = Hashtbl.create 8 in
  let assign x =
    if List.mem x binders && not (Hashtbl.mem assigned x) then begin
      Hashtbl.add assigned x (Printf.sprintf "b%d" !counter);
      incr counter
    end
  in
  List.iter
    (fun a ->
      List.iter
        (function Term.Plain x -> assign x | Term.Located _ -> ())
        (Term.free_ids a))
    sorted_atoms;
  (* drop binders that no atom uses (another GcN opportunity exposed by
     flattening) *)
  let renaming =
    Hashtbl.fold (fun x x' acc -> (x, Term.Eid (Term.Plain x')) :: acc)
      assigned []
  in
  let atoms' = List.map (Term.subst renaming) sorted_atoms in
  let atoms' = List.sort compare atoms' in
  let body = Term.par_list atoms' in
  let canon_binders = List.init !counter (Printf.sprintf "b%d") in
  if canon_binders = [] then body else Term.New (canon_binders, body)

let congruent p q = normal_form p = normal_form q

module Ast = Tyco_syntax.Ast
module Loc = Tyco_syntax.Loc

type site = string

type id =
  | Plain of string
  | Located of site * string

type cid =
  | Cplain of string
  | Clocated of site * string

type lit = Lint of int | Lbool of bool | Lstr of string

type expr =
  | Eid of id
  | Elit of lit
  | Ebin of Ast.binop * expr * expr
  | Eun of Ast.unop * expr

type proc =
  | Nil
  | Par of proc * proc
  | New of string list * proc
  | Msg of id * string * expr list
  | Obj of id * method_ list
  | Inst of cid * expr list
  | Def of defn list * proc
  | If of expr * proc * proc

and method_ = { m_label : string; m_params : string list; m_body : proc }
and defn = { d_name : string; d_params : string list; d_body : proc }

let rec expr_of_ast (e : Ast.expr) : expr =
  match e.Loc.it with
  | Ast.Evar x -> Eid (Plain x)
  | Ast.Eint n -> Elit (Lint n)
  | Ast.Ebool b -> Elit (Lbool b)
  | Ast.Estr s -> Elit (Lstr s)
  | Ast.Ebin (op, a, b) -> Ebin (op, expr_of_ast a, expr_of_ast b)
  | Ast.Eun (op, a) -> Eun (op, expr_of_ast a)

let rec of_ast (p : Ast.proc) : proc =
  match p.Loc.it with
  | Ast.Pnil -> Nil
  | Ast.Ppar (a, b) -> Par (of_ast a, of_ast b)
  | Ast.Pnew (xs, q) -> New (xs, of_ast q)
  | Ast.Pmsg (x, l, es) -> Msg (Plain x, l, List.map expr_of_ast es)
  | Ast.Pobj (x, ms) -> Obj (Plain x, List.map method_of_ast ms)
  | Ast.Pinst (xc, es) -> Inst (Cplain xc, List.map expr_of_ast es)
  | Ast.Pdef (ds, q) -> Def (List.map defn_of_ast ds, of_ast q)
  | Ast.Pif (e, a, b) -> If (expr_of_ast e, of_ast a, of_ast b)
  | Ast.Plet _ -> invalid_arg "Term.of_ast: 'let' must be desugared first"
  | Ast.Pexport_new _ | Ast.Pexport_def _ | Ast.Pimport_name _
  | Ast.Pimport_class _ ->
      invalid_arg "Term.of_ast: export/import belong to the network layer"

and method_of_ast (m : Ast.method_) =
  { m_label = m.m_label; m_params = m.m_params; m_body = of_ast m.m_body }

and defn_of_ast (d : Ast.defn) =
  { d_name = d.d_name; d_params = d.d_params; d_body = of_ast d.d_body }

let par_list = function
  | [] -> Nil
  | p :: ps -> List.fold_left (fun a b -> Par (a, b)) p ps

let rec flatten_par = function
  | Par (a, b) -> flatten_par a @ flatten_par b
  | Nil -> []
  | p -> [ p ]

(* ------------------------------------------------------------------ *)
(* Free identifiers.                                                   *)

module SSet = Set.Make (String)

let add_free bound acc x =
  match x with
  | Plain n when SSet.mem n bound -> acc
  | _ -> if List.mem x acc then acc else x :: acc

let rec expr_ids bound acc = function
  | Eid x -> add_free bound acc x
  | Elit _ -> acc
  | Ebin (_, a, b) -> expr_ids bound (expr_ids bound acc a) b
  | Eun (_, a) -> expr_ids bound acc a

let rec ids bound acc = function
  | Nil -> acc
  | Par (a, b) -> ids bound (ids bound acc a) b
  | New (xs, q) -> ids (SSet.add_seq (List.to_seq xs) bound) acc q
  | Msg (x, _, es) ->
      List.fold_left (expr_ids bound) (add_free bound acc x) es
  | Obj (x, ms) ->
      List.fold_left
        (fun acc m ->
          ids (SSet.add_seq (List.to_seq m.m_params) bound) acc m.m_body)
        (add_free bound acc x)
        ms
  | Inst (_, es) -> List.fold_left (expr_ids bound) acc es
  | Def (ds, q) ->
      let acc =
        List.fold_left
          (fun acc d ->
            ids (SSet.add_seq (List.to_seq d.d_params) bound) acc d.d_body)
          acc ds
      in
      ids bound acc q
  | If (e, a, b) -> ids bound (ids bound (expr_ids bound acc e) a) b

let free_ids p = List.rev (ids SSet.empty [] p)

let add_free_cid bound acc x =
  match x with
  | Cplain n when SSet.mem n bound -> acc
  | _ -> if List.mem x acc then acc else x :: acc

let rec cids bound acc = function
  | Nil | Msg _ -> acc
  | Par (a, b) | If (_, a, b) -> cids bound (cids bound acc a) b
  | New (_, q) -> cids bound acc q
  | Obj (_, ms) ->
      List.fold_left (fun acc m -> cids bound acc m.m_body) acc ms
  | Inst (x, _) -> add_free_cid bound acc x
  | Def (ds, q) ->
      let bound' =
        SSet.add_seq (List.to_seq (List.map (fun d -> d.d_name) ds)) bound
      in
      let acc =
        List.fold_left (fun acc d -> cids bound' acc d.d_body) acc ds
      in
      cids bound' acc q

let free_cids p = List.rev (cids SSet.empty [] p)

(* ------------------------------------------------------------------ *)
(* σ translation (paper §3): code leaving site [r] exposes its lexical
   bindings; code arriving at [s] localizes names bound there.          *)

let sigma_id ~from_ = function
  | Plain x -> Located (from_, x)
  | Located _ as i -> i

let localize_id ~at = function
  | Located (s, x) when String.equal s at -> Plain x
  | i -> i

let rec map_free_ids f bound p =
  let on_id x =
    match x with Plain n when SSet.mem n bound -> x | _ -> f x
  in
  let rec on_expr = function
    | Eid x -> Eid (on_id x)
    | Elit _ as e -> e
    | Ebin (op, a, b) -> Ebin (op, on_expr a, on_expr b)
    | Eun (op, a) -> Eun (op, on_expr a)
  in
  match p with
  | Nil -> Nil
  | Par (a, b) -> Par (map_free_ids f bound a, map_free_ids f bound b)
  | New (xs, q) ->
      New (xs, map_free_ids f (SSet.add_seq (List.to_seq xs) bound) q)
  | Msg (x, l, es) -> Msg (on_id x, l, List.map on_expr es)
  | Obj (x, ms) ->
      Obj
        ( on_id x,
          List.map
            (fun m ->
              { m with
                m_body =
                  map_free_ids f
                    (SSet.add_seq (List.to_seq m.m_params) bound)
                    m.m_body })
            ms )
  | Inst (xc, es) -> Inst (xc, List.map on_expr es)
  | Def (ds, q) ->
      Def
        ( List.map
            (fun d ->
              { d with
                d_body =
                  map_free_ids f
                    (SSet.add_seq (List.to_seq d.d_params) bound)
                    d.d_body })
            ds,
          map_free_ids f bound q )
  | If (e, a, b) ->
      If (on_expr e, map_free_ids f bound a, map_free_ids f bound b)

let sigma ~from_ p = map_free_ids (sigma_id ~from_) SSet.empty p
let localize ~at p = map_free_ids (localize_id ~at) SSet.empty p

let sigma_defn ~from_ (d : defn) =
  { d with
    d_body =
      map_free_ids (sigma_id ~from_)
        (SSet.add_seq (List.to_seq d.d_params) SSet.empty)
        d.d_body }

let sigma_method ~from_ (m : method_) =
  { m with
    m_body =
      map_free_ids (sigma_id ~from_)
        (SSet.add_seq (List.to_seq m.m_params) SSet.empty)
        m.m_body }

(* ------------------------------------------------------------------ *)
(* Capture-avoiding substitution of plain names by expressions.        *)

let expr_free_plains e =
  List.filter_map
    (function Plain x -> Some x | Located _ -> None)
    (expr_ids SSet.empty [] e)

let rec proc_plains acc = function
  (* every plain name occurring anywhere, bound or free: used to pick
     fresh names that cannot collide *)
  | Nil -> acc
  | Par (a, b) | If (_, a, b) -> proc_plains (proc_plains acc a) b
  | New (xs, q) -> proc_plains (xs @ acc) q
  | Msg (x, _, es) ->
      let acc = match x with Plain n -> n :: acc | Located _ -> acc in
      List.fold_left
        (fun acc e -> expr_free_plains e @ acc)
        acc es
  | Obj (x, ms) ->
      let acc = match x with Plain n -> n :: acc | Located _ -> acc in
      List.fold_left
        (fun acc m -> proc_plains (m.m_params @ acc) m.m_body)
        acc ms
  | Inst (_, es) ->
      List.fold_left (fun acc e -> expr_free_plains e @ acc) acc es
  | Def (ds, q) ->
      let acc =
        List.fold_left
          (fun acc d -> proc_plains (d.d_params @ acc) d.d_body)
          acc ds
      in
      proc_plains acc q

let fresh_name avoid base =
  let rec go i =
    let cand = Printf.sprintf "%s'%d" base i in
    if SSet.mem cand avoid then go (i + 1) else cand
  in
  go 0

let subst map p =
  let range_frees map =
    List.fold_left
      (fun acc (_, e) -> SSet.add_seq (List.to_seq (expr_free_plains e)) acc)
      SSet.empty map
  in
  let rec go map p =
    if map = [] then p
    else
      let on_id x =
        match x with
        | Plain n -> (
            match List.assoc_opt n map with
            | Some (Eid i) -> i
            | Some _ ->
                invalid_arg
                  "Term.subst: name position substituted by a non-name"
            | None -> x)
        | Located _ -> x
      in
      let rec on_expr e =
        match e with
        | Eid (Plain n) -> (
            match List.assoc_opt n map with Some e' -> e' | None -> e)
        | Eid (Located _) | Elit _ -> e
        | Ebin (op, a, b) -> Ebin (op, on_expr a, on_expr b)
        | Eun (op, a) -> Eun (op, on_expr a)
      in
      (* Restrict the map under a binder of [xs]; rename binders that
         would capture free names of the map's range. *)
      let under_binder xs body rebuild =
        let map' = List.filter (fun (n, _) -> not (List.mem n xs)) map in
        if map' = [] then rebuild xs body
        else
          let frees = range_frees map' in
          let clashing = List.filter (fun x -> SSet.mem x frees) xs in
          if clashing = [] then rebuild xs (go map' body)
          else begin
            let avoid =
              SSet.union frees
                (SSet.add_seq (List.to_seq (proc_plains xs body)) SSet.empty)
            in
            let renaming, _ =
              List.fold_left
                (fun (ren, avoid) x ->
                  if List.mem x clashing then
                    let x' = fresh_name avoid x in
                    ((x, Eid (Plain x')) :: ren, SSet.add x' avoid)
                  else (ren, avoid))
                ([], avoid) xs
            in
            let xs' =
              List.map
                (fun x ->
                  match List.assoc_opt x renaming with
                  | Some (Eid (Plain x')) -> x'
                  | _ -> x)
                xs
            in
            rebuild xs' (go map' (go renaming body))
          end
      in
      match p with
      | Nil -> Nil
      | Par (a, b) -> Par (go map a, go map b)
      | New (xs, q) -> under_binder xs q (fun xs q -> New (xs, q))
      | Msg (x, l, es) -> Msg (on_id x, l, List.map on_expr es)
      | Obj (x, ms) ->
          let x = on_id x in
          Obj
            ( x,
              List.map
                (fun m ->
                  under_binder m.m_params m.m_body (fun ps b ->
                      { m with m_params = ps; m_body = b })
                  |> fun m' -> m')
                ms )
      | Inst (xc, es) -> Inst (xc, List.map on_expr es)
      | Def (ds, q) ->
          Def
            ( List.map
                (fun d ->
                  under_binder d.d_params d.d_body (fun ps b ->
                      { d with d_params = ps; d_body = b }))
                ds,
              go map q )
      | If (e, a, b) -> If (on_expr e, go map a, go map b)
  in
  go map p

let rec subst_cid map p =
  if map = [] then p
  else
    let on_cid = function
      | Cplain n as c -> (
          match List.assoc_opt n map with Some c' -> c' | None -> c)
      | Clocated _ as c -> c
    in
    match p with
    | Nil | Msg _ -> p
    | Par (a, b) -> Par (subst_cid map a, subst_cid map b)
    | New (xs, q) -> New (xs, subst_cid map q)
    | Obj (x, ms) ->
        Obj (x, List.map (fun m -> { m with m_body = subst_cid map m.m_body }) ms)
    | Inst (xc, es) -> Inst (on_cid xc, es)
    | Def (ds, q) ->
        let shadowed = List.map (fun d -> d.d_name) ds in
        let map' = List.filter (fun (n, _) -> not (List.mem n shadowed)) map in
        Def
          ( List.map (fun d -> { d with d_body = subst_cid map' d.d_body }) ds,
            subst_cid map' q )
    | If (e, a, b) -> If (e, subst_cid map a, subst_cid map b)

let rec map_cids f p =
  match p with
  | Nil | Msg _ -> p
  | Par (a, b) -> Par (map_cids f a, map_cids f b)
  | New (xs, q) -> New (xs, map_cids f q)
  | Obj (x, ms) ->
      Obj (x, List.map (fun m -> { m with m_body = map_cids f m.m_body }) ms)
  | Inst (xc, es) -> Inst (f xc, es)
  | Def (ds, q) ->
      Def
        ( List.map (fun d -> { d with d_body = map_cids f d.d_body }) ds,
          map_cids f q )
  | If (e, a, b) -> If (e, map_cids f a, map_cids f b)

(* ------------------------------------------------------------------ *)
(* Alpha-equivalence via deterministic renaming of all binders.        *)

let rename_bound ~prefix p =
  let counter = ref 0 in
  let fresh () =
    let n = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    n
  in
  let rec go env p =
    let on_id = function
      | Plain n -> (
          match List.assoc_opt n env with Some n' -> Plain n' | None -> Plain n)
      | Located _ as i -> i
    in
    let rec on_expr = function
      | Eid x -> Eid (on_id x)
      | Elit _ as e -> e
      | Ebin (op, a, b) -> Ebin (op, on_expr a, on_expr b)
      | Eun (op, a) -> Eun (op, on_expr a)
    in
    let bind env xs =
      let xs' = List.map (fun _ -> fresh ()) xs in
      (List.combine xs xs' @ env, xs')
    in
    match p with
    | Nil -> Nil
    | Par (a, b) -> Par (go env a, go env b)
    | New (xs, q) ->
        let env', xs' = bind env xs in
        New (xs', go env' q)
    | Msg (x, l, es) -> Msg (on_id x, l, List.map on_expr es)
    | Obj (x, ms) ->
        Obj
          ( on_id x,
            List.map
              (fun m ->
                let env', ps' = bind env m.m_params in
                { m with m_params = ps'; m_body = go env' m.m_body })
              ms )
    | Inst (xc, es) -> Inst (xc, List.map on_expr es)
    | Def (ds, q) ->
        Def
          ( List.map
              (fun d ->
                let env', ps' = bind env d.d_params in
                { d with d_params = ps'; d_body = go env' d.d_body })
              ds,
            go env q )
    | If (e, a, b) -> If (on_expr e, go env a, go env b)
  in
  go [] p

let alpha_equal a b =
  rename_bound ~prefix:"%" a = rename_bound ~prefix:"%" b

let rec expr_size = function
  | Eid _ | Elit _ -> 1
  | Ebin (_, a, b) -> 1 + expr_size a + expr_size b
  | Eun (_, a) -> 1 + expr_size a

let rec size = function
  | Nil -> 1
  | Par (a, b) -> 1 + size a + size b
  | New (_, q) -> 1 + size q
  | Msg (_, _, es) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 es
  | Obj (_, ms) -> 1 + List.fold_left (fun n m -> n + 1 + size m.m_body) 0 ms
  | Inst (_, es) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 es
  | Def (ds, q) ->
      1 + List.fold_left (fun n d -> n + 1 + size d.d_body) 0 ds + size q
  | If (e, a, b) -> 1 + expr_size e + size a + size b

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let pp_id ppf = function
  | Plain x -> Fmt.string ppf x
  | Located (s, x) -> Fmt.pf ppf "%s.%s" s x

let pp_cid ppf = function
  | Cplain x -> Fmt.string ppf x
  | Clocated (s, x) -> Fmt.pf ppf "%s.%s" s x

let pp_lit ppf = function
  | Lint n -> Fmt.int ppf n
  | Lbool b -> Fmt.bool ppf b
  | Lstr s -> Fmt.pf ppf "%S" s

let rec pp_expr ppf = function
  | Eid x -> pp_id ppf x
  | Elit l -> pp_lit ppf l
  | Ebin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a
        (match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
        | Ast.Mod -> "%" | Ast.Eq -> "==" | Ast.Neq -> "!=" | Ast.Lt -> "<"
        | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">=" | Ast.And -> "&&"
        | Ast.Or -> "||")
        pp_expr b
  | Eun (Ast.Neg, a) -> Fmt.pf ppf "-%a" pp_expr a
  | Eun (Ast.Not, a) -> Fmt.pf ppf "not %a" pp_expr a

let pp_args ppf es = Fmt.pf ppf "[%a]" (Tyco_support.Pretty.comma_list pp_expr) es

let rec pp ppf = function
  | Nil -> Fmt.string ppf "0"
  | Par (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | New (xs, q) ->
      Fmt.pf ppf "new %a %a" (Tyco_support.Pretty.comma_list Fmt.string) xs pp q
  | Msg (x, l, es) -> Fmt.pf ppf "%a!%s%a" pp_id x l pp_args es
  | Obj (x, ms) ->
      Fmt.pf ppf "%a?{%a}" pp_id x
        (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf m ->
             Fmt.pf ppf "%s(%a)=%a" m.m_label
               (Tyco_support.Pretty.comma_list Fmt.string)
               m.m_params pp m.m_body))
        ms
  | Inst (xc, es) -> Fmt.pf ppf "%a%a" pp_cid xc pp_args es
  | Def (ds, q) ->
      Fmt.pf ppf "def %a in %a"
        (Fmt.list ~sep:(Fmt.any " and ") (fun ppf d ->
             Fmt.pf ppf "%s(%a)=%a" d.d_name
               (Tyco_support.Pretty.comma_list Fmt.string)
               d.d_params pp d.d_body))
        ds pp q
  | If (e, a, b) -> Fmt.pf ppf "if %a then %a else %a" pp_expr e pp a pp b

let to_string p = Fmt.str "%a" pp p

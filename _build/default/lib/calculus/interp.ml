module Ast = Tyco_syntax.Ast
module Loc = Tyco_syntax.Loc
module Sugar = Tyco_syntax.Sugar
module SMap = Map.Make (String)

type load_error = { msg : string }

exception Error of load_error

let fail fmt = Format.kasprintf (fun msg -> raise (Error { msg })) fmt

type loaded = {
  net : Network.t;
  exported_names : (string * string) list;
  exported_classes : (string * string) list;
}

type env = {
  site : string;
  names : Term.id SMap.t;   (* import renamings; absent = plain *)
  classes : Term.cid SMap.t;
}

let resolve_name env x =
  match SMap.find_opt x env.names with Some i -> i | None -> Term.Plain x

let resolve_class env x =
  match SMap.find_opt x env.classes with
  | Some c -> c
  | None -> Term.Cplain x

let rec resolve_expr env (e : Ast.expr) : Term.expr =
  match e.Loc.it with
  | Ast.Evar x -> Term.Eid (resolve_name env x)
  | Ast.Eint n -> Term.Elit (Term.Lint n)
  | Ast.Ebool b -> Term.Elit (Term.Lbool b)
  | Ast.Estr s -> Term.Elit (Term.Lstr s)
  | Ast.Ebin (op, a, b) ->
      Term.Ebin (op, resolve_expr env a, resolve_expr env b)
  | Ast.Eun (op, a) -> Term.Eun (op, resolve_expr env a)

let unbind_names env xs =
  { env with names = List.fold_left (fun m x -> SMap.remove x m) env.names xs }

let unbind_classes env xs =
  { env with
    classes = List.fold_left (fun m x -> SMap.remove x m) env.classes xs }

type acc = {
  mutable net : Network.t;
  mutable exp_names : (string * string) list;
  mutable exp_classes : (string * string) list;
}

(* Resolution returns a kernel term; export registrations flow through
   the accumulator because exported groups live in the network-level
   definition table, not in the process. *)
let rec resolve acc env (p : Ast.proc) : Term.proc =
  match p.Loc.it with
  | Ast.Pnil -> Term.Nil
  | Ast.Ppar (a, b) -> Term.Par (resolve acc env a, resolve acc env b)
  | Ast.Pnew (xs, q) -> Term.New (xs, resolve acc (unbind_names env xs) q)
  | Ast.Pmsg (x, l, es) ->
      Term.Msg (resolve_name env x, l, List.map (resolve_expr env) es)
  | Ast.Pobj (x, ms) ->
      Term.Obj
        ( resolve_name env x,
          List.map
            (fun (m : Ast.method_) ->
              { Term.m_label = m.m_label;
                m_params = m.m_params;
                m_body = resolve acc (unbind_names env m.m_params) m.m_body })
            ms )
  | Ast.Pinst (xc, es) ->
      Term.Inst (resolve_class env xc, List.map (resolve_expr env) es)
  | Ast.Pdef (ds, q) ->
      let group_names = List.map (fun (d : Ast.defn) -> d.d_name) ds in
      let env' = unbind_classes env group_names in
      Term.Def
        ( List.map
            (fun (d : Ast.defn) ->
              { Term.d_name = d.d_name;
                d_params = d.d_params;
                d_body = resolve acc (unbind_names env' d.d_params) d.d_body })
            ds,
          resolve acc env' q )
  | Ast.Pif (e, a, b) ->
      Term.If (resolve_expr env e, resolve acc env a, resolve acc env b)
  | Ast.Plet _ -> fail "internal: 'let' must be desugared before loading"
  | Ast.Pexport_new (xs, q) ->
      (* Exported names stay plain and public at this site; importers
         address them as [site.x]. *)
      List.iter
        (fun x -> acc.exp_names <- (env.site, x) :: acc.exp_names)
        xs;
      resolve acc (unbind_names env xs) q
  | Ast.Pexport_def (ds, q) ->
      let group_names = List.map (fun (d : Ast.defn) -> d.d_name) ds in
      let env' = unbind_classes env group_names in
      let group =
        List.map
          (fun (d : Ast.defn) ->
            { Term.d_name = d.d_name;
              d_params = d.d_params;
              d_body = resolve acc (unbind_names env' d.d_params) d.d_body })
          ds
      in
      (* the group stays a regular local [def] (so enclosing binders
         freshen into its bodies); the public registration happens when
         the decomposition reaches it *)
      acc.net <- Network.mark_exports acc.net env.site group_names;
      List.iter
        (fun x -> acc.exp_classes <- (env.site, x) :: acc.exp_classes)
        group_names;
      Term.Def (group, resolve acc env' q)
  | Ast.Pimport_name (x, s, q) ->
      resolve acc
        { env with names = SMap.add x (Term.Located (s, x)) env.names }
        q
  | Ast.Pimport_class (xc, s, q) ->
      resolve acc
        { env with classes = SMap.add xc (Term.Clocated (s, xc)) env.classes }
        q

let load ?(inputs = []) (prog : Ast.program) : loaded =
  let prog = Sugar.desugar_program prog in
  let acc = { net = Network.empty; exp_names = []; exp_classes = [] } in
  (* Two passes so that a site body can be decomposed even when it
     instantiates a class exported by a later site: registrations
     first, atom decomposition second. *)
  let resolved =
    List.map
      (fun (s : Ast.site_decl) ->
        let env =
          { site = s.s_name; names = SMap.empty; classes = SMap.empty }
        in
        (s.s_name, resolve acc env s.s_proc))
      prog.sites
  in
  let net =
    List.fold_left
      (fun net (site, term) -> Network.add_proc net site term)
      (Network.with_inputs acc.net inputs)
      resolved
  in
  { net;
    exported_names = List.rev acc.exp_names;
    exported_classes = List.rev acc.exp_classes }

let load_proc p =
  load { Ast.sites = [ { Ast.s_name = "main"; s_proc = p } ] }

let run ?max_steps ?inputs (prog : Ast.program) =
  let loaded = load ?inputs prog in
  Network.run ?max_steps loaded.net

let outputs ?max_steps ?inputs prog =
  let net, _events = run ?max_steps ?inputs prog in
  Network.outputs net

let outputs_of_source ?max_steps src =
  let prog = Tyco_syntax.Parser.parse_program src in
  outputs ?max_steps prog

(** Program-level driver for the reference semantics.

    Loads a (multi-site) surface program into a {!Network} state:
    [export]/[import] clauses are resolved per the paper's §4
    translation — an imported name [x from s] becomes the located
    identifier [s.x]; an exported definition group becomes a
    network-level [def s.D]; exported names keep their public names at
    their site.  Then runs the network reduction to quiescence.

    This is the oracle used by the differential tests: the byte-code VM
    must produce the same multiset of [io] outputs for every program. *)

type load_error = { msg : string }

exception Error of load_error

type loaded = {
  net : Network.t;
  exported_names : (string * string) list;  (** (site, name) *)
  exported_classes : (string * string) list;
}

val load : ?inputs:(string * int list) list -> Tyco_syntax.Ast.program -> loaded
(** Desugars, resolves import/export, decomposes every site body.
    Raises {!Error} on unresolved surface constructs. *)

val load_proc : Tyco_syntax.Ast.proc -> loaded
(** Single-site convenience ([site main]). *)

val run : ?max_steps:int -> ?inputs:(string * int list) list ->
  Tyco_syntax.Ast.program -> Network.t * Network.event list
(** [load] then reduce to quiescence. *)

val outputs : ?max_steps:int -> ?inputs:(string * int list) list ->
  Tyco_syntax.Ast.program -> (string * string * Network.value list) list
(** The chronological [io] events of a full run. *)

val outputs_of_source : ?max_steps:int -> string ->
  (string * string * Network.value list) list
(** Parse, type-check and run a source program. *)

(** May-testing equivalence of DiTyCO programs.

    The paper's first argument for the calculus approach is that it
    yields systems “provably correct, with relatively simple, well
    defined semantics” — this module is the corresponding verification
    tool.  Two programs are {e may-testing equivalent} with respect to
    I/O observation when the sets of output multisets reachable at
    quiescence — over {e every} reduction interleaving the calculus
    admits ({!Network.all_steps}), not just the runtime's deterministic
    strategy — coincide.

    For terminating programs with finite nondeterminism the check is
    exact; the [max_states] bound makes exploration total (an
    exploration that exceeds it raises {!Search_exhausted}, it never
    silently approximates).

    Two practical corollaries are also exposed:
    - {!deterministic}: the outcome set is a singleton — the program's
      observable behaviour is scheduling-independent;
    - {!runtime_outcome_admissible}: the byte-code runtime's output is
      one of the calculus-admissible outcomes (a soundness check used
      by the test suite on racy programs, where plain differential
      testing cannot pin a single expected result). *)

exception Search_exhausted of int
(** Raised when the state-space exploration exceeds the bound. *)

type outcome = (string * string * string) list
(** One quiescent result: sorted [(site, label, rendered args)]
    triples. *)

val outcomes :
  ?max_states:int -> ?inputs:(string * int list) list ->
  Tyco_syntax.Ast.program -> outcome list
(** All distinct quiescent outcomes, sorted.  [max_states] defaults to
    50_000 explored states. *)

val may_equivalent :
  ?max_states:int -> Tyco_syntax.Ast.program -> Tyco_syntax.Ast.program ->
  bool

val deterministic :
  ?max_states:int -> Tyco_syntax.Ast.program -> bool

val runtime_outcome_admissible :
  ?max_states:int -> Tyco_syntax.Ast.program ->
  (string * string * string) list -> bool
(** [runtime_outcome_admissible prog observed] — is the (unsorted)
    observed output list one of the calculus outcomes? *)

val outcomes_of_net : ?max_states:int -> Network.t -> outcome list
(** Outcome exploration starting from an already-loaded network state
    (used by tests that construct states directly). *)

val pp_outcome : Format.formatter -> outcome -> unit

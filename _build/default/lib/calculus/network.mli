(** The network reduction relation (paper §3), as an executable
    symbolic machine.

    A network state is kept in a structural-congruence normal form:
    every located process is decomposed into {e atoms} — messages,
    objects and instantiations — with [new] binders freshened
    ([Split]/[New]/[Def] read left-to-right) and [def] groups lifted to
    a network-level definition table.  The six reduction axioms then
    act on atoms:

    - local communication (COMM) and instantiation (INST), under LOC;
    - SHIPM / SHIPO — a message/object prefixed by a remote located
      name moves to its home site, its free identifiers translated by
      σ (upload) composed with localization at the destination;
    - FETCH — instantiating a class defined at another site copies the
      whole definition group, σ-translated, into the local table.

    Messages sent to the builtin name [io] become observable outputs
    rather than atoms; they are the observations compared against the
    byte-code VM in the differential tests.

    The structure is purely functional: each step returns a new state,
    so tests can snapshot and branch executions. *)

type site = string

type value =
  | Vid of Term.id
  | Vint of int
  | Vbool of bool
  | Vstr of string

type atom =
  | Amsg of Term.id * string * value list
  | Aobj of Term.id * Term.method_ list
  | Ainst of Term.cid * value list

type event =
  | Ecomm of site * string * string       (** site, channel, label *)
  | Einst of site * string                (** site, class *)
  | Eship_msg of site * site * string     (** from, to, channel *)
  | Eship_obj of site * site * string
  | Efetch of site * site * string        (** to, from, class *)
  | Eoutput of site * string * value list (** io method and arguments *)

type t

val empty : t

val with_inputs : t -> (site * int list) list -> t
(** Supply the integers each site's I/O port will hand to [io!readi]
    requests, in order (paper §5: the I/O port also feeds data {e to}
    programs).  A read with no input left blocks silently. *)

val add_proc : t -> site -> Term.proc -> t
(** Decompose a process into atoms at the given site.  [export]/[import]
    must already be resolved to located identifiers (see {!Interp}). *)

val register_defs : t -> site -> Term.defn list -> t
(** Install a definition group under its public class names at a site
    (the network-level [def s.D in ...] binder).  Use this only for
    groups whose free names are already resolved; groups nested under
    binders must go through {!mark_exports} + a regular [Def] term so
    the binders freshen first. *)

val mark_exports : t -> site -> string list -> t
(** Declare that the next [def] at the site defining these class names
    is exported: when {!add_proc} decomposes it, a public alias group
    is registered under the original names (with the enclosing [new]
    binders correctly freshened into the bodies). *)

val atoms : t -> (site * atom) list
val outputs : t -> (site * string * value list) list
(** Chronological [io] events. *)

val step : t -> (event * t) option
(** One reduction step, chosen deterministically (local reductions are
    preferred over shipments, shipments over fetches; ties broken by
    atom age).  [None] when the network is quiescent. *)

val all_steps : t -> (event * t) list
(** Every redex the calculus admits from this state — any message may
    meet any waiting object at its channel, unlike [step]'s FIFO
    strategy.  The verification tools ({!Equiv}) explore this relation
    exhaustively.  Empty iff [step] returns [None]. *)

exception Stuck of string
(** Raised on dynamic errors: wrong label arity, no such method at a
    channel with an object (protocol error), bad expression operand.
    Typed programs do not raise. *)

val run : ?max_steps:int -> t -> t * event list
(** Reduce to quiescence.  Raises [Failure] if [max_steps] (default
    1_000_000) is exceeded — the SETI-style perpetual programs must be
    run with an explicit bound. *)

val quiescent : t -> bool
val pp_value : Format.formatter -> value -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

(** Lowering of surface abbreviations to kernel TyCO (paper §2, §4).

    The single non-kernel form is the synchronous call
    [let y1,..,yn = x!l\[v..\] in P], which abbreviates
    [new r (x!l\[v..,r\] | r?(y1,..,yn) = P)] for a fresh reply name [r]
    (this is the abbreviation the paper uses in the SETI example).
    Default labels are already resolved by the parser. *)

val desugar : Ast.proc -> Ast.proc
(** Eliminates every [Plet], choosing reply names that cannot capture. *)

val desugar_program : Ast.program -> Ast.program

val is_kernel : Ast.proc -> bool
(** True when the process contains no [Plet]. *)

(** Lexical tokens of the DiTyCO source language. *)

type t =
  | IDENT of string   (** lowercase-initial: names, labels, sites *)
  | UIDENT of string  (** uppercase-initial: class variables *)
  | INT of int
  | STRING of string
  | KW_DEF | KW_AND | KW_IN | KW_NEW | KW_LET | KW_IF | KW_THEN | KW_ELSE
  | KW_EXPORT | KW_IMPORT | KW_FROM | KW_SITE | KW_NIL
  | KW_TRUE | KW_FALSE | KW_NOT
  | BANG      (** [!] *)
  | QUERY     (** [?] *)
  | LBRACE | RBRACE | LBRACKET | RBRACKET | LPAREN | RPAREN
  | COMMA | EQUAL | BAR | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE | AMPAMP | BARBAR
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val keyword_of_string : string -> t option
(** Recognizes reserved words among identifier-shaped lexemes. *)

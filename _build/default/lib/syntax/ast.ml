type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr_ =
  | Evar of string
  | Eint of int
  | Ebool of bool
  | Estr of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr

and expr = expr_ Loc.loc

type proc_ =
  | Pnil
  | Ppar of proc * proc
  | Pnew of string list * proc
  | Pmsg of string * string * expr list
  | Pobj of string * method_ list
  | Pinst of string * expr list
  | Pdef of defn list * proc
  | Pif of expr * proc * proc
  | Plet of string list * string * string * expr list * proc
  | Pexport_new of string list * proc
  | Pexport_def of defn list * proc
  | Pimport_name of string * string * proc
  | Pimport_class of string * string * proc

and proc = proc_ Loc.loc
and method_ = { m_label : string; m_params : string list; m_body : proc }
and defn = { d_name : string; d_params : string list; d_body : proc }

type site_decl = { s_name : string; s_proc : proc }
type program = { sites : site_decl list }

let default_label = "val"
let nil = Loc.no_loc Pnil
let par p q = Loc.no_loc (Ppar (p, q))

let par_list = function
  | [] -> nil
  | p :: ps -> List.fold_left par p ps

let new_ xs p = Loc.no_loc (Pnew (xs, p))
let msg x l es = Loc.no_loc (Pmsg (x, l, es))
let obj x ms = Loc.no_loc (Pobj (x, ms))
let inst x es = Loc.no_loc (Pinst (x, es))
let def ds p = Loc.no_loc (Pdef (ds, p))
let evar x = Loc.no_loc (Evar x)
let eint n = Loc.no_loc (Eint n)
let ebool b = Loc.no_loc (Ebool b)
let estr s = Loc.no_loc (Estr s)

(* Free-identifier analysis.  An accumulator keeps first-occurrence
   order; [bound] holds the names bound by enclosing binders. *)

module SSet = Set.Make (String)

let rec expr_names bound acc (e : expr) =
  match e.it with
  | Evar x -> if SSet.mem x bound || List.mem x acc then acc else x :: acc
  | Eint _ | Ebool _ | Estr _ -> acc
  | Ebin (_, a, b) -> expr_names bound (expr_names bound acc a) b
  | Eun (_, a) -> expr_names bound acc a

let add_name bound acc x =
  if SSet.mem x bound || List.mem x acc then acc else x :: acc

let rec names_proc bound acc (p : proc) =
  match p.it with
  | Pnil -> acc
  | Ppar (a, b) -> names_proc bound (names_proc bound acc a) b
  | Pnew (xs, q) | Pexport_new (xs, q) ->
      names_proc (SSet.add_seq (List.to_seq xs) bound) acc q
  | Pmsg (x, _, es) ->
      let acc = add_name bound acc x in
      List.fold_left (expr_names bound) acc es
  | Pobj (x, ms) ->
      let acc = add_name bound acc x in
      List.fold_left
        (fun acc m ->
          names_proc (SSet.add_seq (List.to_seq m.m_params) bound) acc m.m_body)
        acc ms
  | Pinst (_, es) -> List.fold_left (expr_names bound) acc es
  | Pdef (ds, q) | Pexport_def (ds, q) ->
      let acc =
        List.fold_left
          (fun acc d ->
            names_proc
              (SSet.add_seq (List.to_seq d.d_params) bound)
              acc d.d_body)
          acc ds
      in
      names_proc bound acc q
  | Pif (e, a, b) ->
      let acc = expr_names bound acc e in
      names_proc bound (names_proc bound acc a) b
  | Plet (ys, x, _, es, q) ->
      let acc = add_name bound acc x in
      let acc = List.fold_left (expr_names bound) acc es in
      names_proc (SSet.add_seq (List.to_seq ys) bound) acc q
  | Pimport_name (x, _, q) -> names_proc (SSet.add x bound) acc q
  | Pimport_class (_, _, q) -> names_proc bound acc q

let free_names p = List.rev (names_proc SSet.empty [] p)

let rec classes_proc bound acc (p : proc) =
  match p.it with
  | Pnil | Pmsg _ -> acc
  | Ppar (a, b) -> classes_proc bound (classes_proc bound acc a) b
  | Pnew (_, q) | Pexport_new (_, q) -> classes_proc bound acc q
  | Pobj (_, ms) ->
      List.fold_left (fun acc m -> classes_proc bound acc m.m_body) acc ms
  | Pinst (x, _) -> add_name bound acc x
  | Pdef (ds, q) | Pexport_def (ds, q) ->
      let bound' =
        SSet.add_seq (List.to_seq (List.map (fun d -> d.d_name) ds)) bound
      in
      let acc =
        List.fold_left (fun acc d -> classes_proc bound' acc d.d_body) acc ds
      in
      classes_proc bound' acc q
  | Pif (_, a, b) -> classes_proc bound (classes_proc bound acc a) b
  | Plet (_, _, _, _, q) -> classes_proc bound acc q
  | Pimport_name (_, _, q) -> classes_proc bound acc q
  | Pimport_class (x, _, q) -> classes_proc (SSet.add x bound) acc q

let free_classes p = List.rev (classes_proc SSet.empty [] p)

let rec expr_size (e : expr) =
  match e.it with
  | Evar _ | Eint _ | Ebool _ | Estr _ -> 1
  | Ebin (_, a, b) -> 1 + expr_size a + expr_size b
  | Eun (_, a) -> 1 + expr_size a

let rec size (p : proc) =
  match p.it with
  | Pnil -> 1
  | Ppar (a, b) -> 1 + size a + size b
  | Pnew (_, q) | Pexport_new (_, q) -> 1 + size q
  | Pmsg (_, _, es) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 es
  | Pobj (_, ms) ->
      1 + List.fold_left (fun n m -> n + 1 + size m.m_body) 0 ms
  | Pinst (_, es) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 es
  | Pdef (ds, q) | Pexport_def (ds, q) ->
      1 + List.fold_left (fun n d -> n + 1 + size d.d_body) 0 ds + size q
  | Pif (e, a, b) -> 1 + expr_size e + size a + size b
  | Plet (_, _, _, es, q) ->
      1 + List.fold_left (fun n e -> n + expr_size e) 0 es + size q
  | Pimport_name (_, _, q) | Pimport_class (_, _, q) -> 1 + size q

let rec expr_equal (a : expr) (b : expr) =
  match (a.it, b.it) with
  | Evar x, Evar y -> String.equal x y
  | Eint x, Eint y -> Int.equal x y
  | Ebool x, Ebool y -> Bool.equal x y
  | Estr x, Estr y -> String.equal x y
  | Ebin (op, a1, a2), Ebin (op', b1, b2) ->
      op = op' && expr_equal a1 b1 && expr_equal a2 b2
  | Eun (op, a1), Eun (op', b1) -> op = op' && expr_equal a1 b1
  | (Evar _ | Eint _ | Ebool _ | Estr _ | Ebin _ | Eun _), _ -> false

let exprs_equal es fs =
  List.length es = List.length fs && List.for_all2 expr_equal es fs

let rec equal (a : proc) (b : proc) =
  match (a.it, b.it) with
  | Pnil, Pnil -> true
  | Ppar (a1, a2), Ppar (b1, b2) -> equal a1 b1 && equal a2 b2
  | Pnew (xs, p), Pnew (ys, q) | Pexport_new (xs, p), Pexport_new (ys, q) ->
      xs = ys && equal p q
  | Pmsg (x, l, es), Pmsg (y, k, fs) ->
      String.equal x y && String.equal l k && exprs_equal es fs
  | Pobj (x, ms), Pobj (y, ns) ->
      String.equal x y
      && List.length ms = List.length ns
      && List.for_all2
           (fun m n ->
             String.equal m.m_label n.m_label
             && m.m_params = n.m_params
             && equal m.m_body n.m_body)
           ms ns
  | Pinst (x, es), Pinst (y, fs) -> String.equal x y && exprs_equal es fs
  | Pdef (ds, p), Pdef (es, q) | Pexport_def (ds, p), Pexport_def (es, q) ->
      List.length ds = List.length es
      && List.for_all2
           (fun d e ->
             String.equal d.d_name e.d_name
             && d.d_params = e.d_params
             && equal d.d_body e.d_body)
           ds es
      && equal p q
  | Pif (e, a1, a2), Pif (f, b1, b2) ->
      expr_equal e f && equal a1 b1 && equal a2 b2
  | Plet (xs, x, l, es, p), Plet (ys, y, k, fs, q) ->
      xs = ys && String.equal x y && String.equal l k && exprs_equal es fs
      && equal p q
  | Pimport_name (x, s, p), Pimport_name (y, r, q)
  | Pimport_class (x, s, p), Pimport_class (y, r, q) ->
      String.equal x y && String.equal s r && equal p q
  | ( ( Pnil | Ppar _ | Pnew _ | Pmsg _ | Pobj _ | Pinst _ | Pdef _ | Pif _
      | Plet _ | Pexport_new _ | Pexport_def _ | Pimport_name _
      | Pimport_class _ ),
      _ ) ->
      false

(** Hand-written lexer for the DiTyCO language.

    Comments: [--] to end of line, and nestable [{- ... -}] blocks.
    String literals support backslash escapes for newline, tab,
    backslash and double quote. *)

exception Error of string * Loc.t

val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
(** Full token stream, ending with [EOF].  Raises {!Error} on invalid
    input (bad character, unterminated string/comment, int overflow). *)

open Ast

let binop_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let rec pp_expr_prec prec ppf (e : expr) =
  match e.Loc.it with
  | Evar x -> Fmt.string ppf x
  | Eint n -> Fmt.int ppf n
  | Ebool b -> Fmt.bool ppf b
  | Estr s -> Fmt.pf ppf "%S" s
  | Ebin (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_expr_prec p) a (binop_string op)
          (pp_expr_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Eun (Neg, a) -> Fmt.pf ppf "-%a" (pp_expr_prec 10) a
  | Eun (Not, a) -> Fmt.pf ppf "not %a" (pp_expr_prec 10) a

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_args ppf es = Fmt.pf ppf "[@[<hov>%a@]]" (Tyco_support.Pretty.comma_list pp_expr) es

let pp_idents ppf xs =
  Tyco_support.Pretty.comma_list Fmt.string ppf xs

(* [atomic] renders with parentheses when the process is a parallel
   composition, so that prefix bodies re-parse with the right extent. *)
let rec pp_atomic ppf (p : proc) =
  match p.Loc.it with
  | Ppar _ | Pnew _ | Pdef _ | Plet _ | Pexport_new _ | Pexport_def _
  | Pimport_name _ | Pimport_class _ ->
      Fmt.pf ppf "(@[<hv>%a@])" pp_proc p
  | Pnil | Pmsg _ | Pobj _ | Pinst _ | Pif _ -> pp_proc ppf p

and pp_method ppf (m : method_) =
  Fmt.pf ppf "@[<hv 2>%s(%a) =@ %a@]" m.m_label pp_idents m.m_params
    pp_body m.m_body

and pp_defn ppf (d : defn) =
  Fmt.pf ppf "@[<hv 2>%s(%a) =@ %a@]" d.d_name pp_idents d.d_params
    pp_body d.d_body

(* A method/definition body may be a parallel composition (it binds
   tighter than ',' and 'and'), but must not swallow a following
   separator; plain printing is unambiguous because '|' cannot start a
   method. *)
and pp_body ppf (p : proc) =
  match p.Loc.it with
  | Pnew _ | Pdef _ | Plet _ | Pimport_name _ | Pimport_class _
  | Pexport_new _ | Pexport_def _ ->
      Fmt.pf ppf "(@[<hv>%a@])" pp_proc p
  | Pnil | Ppar _ | Pmsg _ | Pobj _ | Pinst _ | Pif _ -> pp_proc ppf p

and pp_proc ppf (p : proc) =
  match p.Loc.it with
  | Pnil -> Fmt.string ppf "nil"
  | Ppar (a, b) -> Fmt.pf ppf "@[<hv>%a@ | %a@]" pp_atomic a pp_atomic b
  | Pnew (xs, q) -> Fmt.pf ppf "@[<hv 2>new %a@ %a@]" pp_idents xs pp_atomic q
  | Pmsg (x, l, es) ->
      if String.equal l default_label then Fmt.pf ppf "%s!%a" x pp_args es
      else Fmt.pf ppf "%s!%s%a" x l pp_args es
  | Pobj (x, ms) ->
      Fmt.pf ppf "@[<hv 2>%s?{ %a }@]" x
        (Fmt.list ~sep:(Fmt.any ",@ ") pp_method)
        ms
  | Pinst (x, es) -> Fmt.pf ppf "%s%a" x pp_args es
  | Pdef (ds, q) ->
      Fmt.pf ppf "@[<hv>def @[<hv>%a@]@ in %a@]"
        (Fmt.list ~sep:(Fmt.any "@ and ") pp_defn)
        ds pp_proc q
  | Pif (e, a, b) ->
      Fmt.pf ppf "@[<hv>if %a@ then %a@ else %a@]" pp_expr e pp_atomic a
        pp_atomic b
  | Plet (ys, x, l, es, q) ->
      if String.equal l default_label then
        Fmt.pf ppf "@[<hv>let %a = %s!%a in@ %a@]" pp_idents ys x pp_args es
          pp_proc q
      else
        Fmt.pf ppf "@[<hv>let %a = %s!%s%a in@ %a@]" pp_idents ys x l pp_args
          es pp_proc q
  | Pexport_new (xs, q) ->
      Fmt.pf ppf "@[<hv 2>export new %a@ %a@]" pp_idents xs pp_atomic q
  | Pexport_def (ds, q) ->
      Fmt.pf ppf "@[<hv>export def @[<hv>%a@]@ in %a@]"
        (Fmt.list ~sep:(Fmt.any "@ and ") pp_defn)
        ds pp_proc q
  | Pimport_name (x, s, q) ->
      Fmt.pf ppf "@[<hv>import %s from %s in@ %a@]" x s pp_proc q
  | Pimport_class (x, s, q) ->
      Fmt.pf ppf "@[<hv>import %s from %s in@ %a@]" x s pp_proc q

let pp_program ppf (prog : program) =
  match prog.sites with
  | [ { s_name = "main"; s_proc } ] -> pp_proc ppf s_proc
  | sites ->
      Fmt.pf ppf "@[<v>%a@]"
        (Fmt.list ~sep:Fmt.cut (fun ppf s ->
             Fmt.pf ppf "@[<hv 2>site %s {@ %a@;<1 -2>}@]" s.s_name pp_proc
               s.s_proc))
        sites

let proc_to_string p = Fmt.str "%a" pp_proc p
let program_to_string p = Fmt.str "%a" pp_program p

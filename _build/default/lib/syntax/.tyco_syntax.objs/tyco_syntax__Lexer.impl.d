lib/syntax/lexer.ml: Buffer List Loc Printf String Token

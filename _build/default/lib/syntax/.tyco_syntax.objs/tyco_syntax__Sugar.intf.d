lib/syntax/sugar.mli: Ast

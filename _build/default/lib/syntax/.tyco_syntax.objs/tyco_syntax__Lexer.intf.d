lib/syntax/lexer.mli: Loc Token

lib/syntax/parser.mli: Ast Loc

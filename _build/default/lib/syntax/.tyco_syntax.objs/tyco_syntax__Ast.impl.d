lib/syntax/ast.ml: Bool Int List Loc Set String

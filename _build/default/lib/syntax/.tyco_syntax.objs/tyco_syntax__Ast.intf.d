lib/syntax/ast.mli: Loc

lib/syntax/token.mli: Format

lib/syntax/sugar.ml: Ast List Loc Printf

lib/syntax/token.ml: Format Printf

lib/syntax/pp.mli: Ast Format

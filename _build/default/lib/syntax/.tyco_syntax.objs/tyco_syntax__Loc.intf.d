lib/syntax/loc.mli: Format

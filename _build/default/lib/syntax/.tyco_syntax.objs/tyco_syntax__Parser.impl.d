lib/syntax/parser.ml: Array Ast Format Lexer List Loc Token

lib/syntax/pp.ml: Ast Fmt Loc String Tyco_support

lib/syntax/loc.ml: Format

type t =
  | IDENT of string
  | UIDENT of string
  | INT of int
  | STRING of string
  | KW_DEF | KW_AND | KW_IN | KW_NEW | KW_LET | KW_IF | KW_THEN | KW_ELSE
  | KW_EXPORT | KW_IMPORT | KW_FROM | KW_SITE | KW_NIL
  | KW_TRUE | KW_FALSE | KW_NOT
  | BANG
  | QUERY
  | LBRACE | RBRACE | LBRACKET | RBRACKET | LPAREN | RPAREN
  | COMMA | EQUAL | BAR | DOT
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | NEQ | LT | LE | GT | GE | AMPAMP | BARBAR
  | EOF

let to_string = function
  | IDENT s -> s
  | UIDENT s -> s
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | KW_DEF -> "def"
  | KW_AND -> "and"
  | KW_IN -> "in"
  | KW_NEW -> "new"
  | KW_LET -> "let"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_EXPORT -> "export"
  | KW_IMPORT -> "import"
  | KW_FROM -> "from"
  | KW_SITE -> "site"
  | KW_NIL -> "nil"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NOT -> "not"
  | BANG -> "!"
  | QUERY -> "?"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | EQUAL -> "="
  | BAR -> "|"
  | DOT -> "."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let keyword_of_string = function
  | "def" -> Some KW_DEF
  | "and" -> Some KW_AND
  | "in" -> Some KW_IN
  | "new" -> Some KW_NEW
  | "let" -> Some KW_LET
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "export" -> Some KW_EXPORT
  | "import" -> Some KW_IMPORT
  | "from" -> Some KW_FROM
  | "site" -> Some KW_SITE
  | "nil" -> Some KW_NIL
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "not" -> Some KW_NOT
  | _ -> None

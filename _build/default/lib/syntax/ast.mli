(** Abstract syntax of DiTyCO source programs (paper §2 and §4).

    This is the *surface* syntax: it still contains the [let] synchronous
    call abbreviation and the default-label sugar; {!Sugar.desugar}
    lowers these to the kernel forms.  Located identifiers ([s.x]) never
    appear in source programs — they are introduced by the
    [import]/[export] translation (paper §4) in later stages. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr_ =
  | Evar of string
  | Eint of int
  | Ebool of bool
  | Estr of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr

and expr = expr_ Loc.loc

type proc_ =
  | Pnil
  | Ppar of proc * proc
  | Pnew of string list * proc
      (** [new x1,...,xn P] *)
  | Pmsg of string * string * expr list
      (** [x!l\[e1,...,en\]] — asynchronous message *)
  | Pobj of string * method_ list
      (** [x?{ l1(y) = P1, ... }] — object *)
  | Pinst of string * expr list
      (** [X\[e1,...,en\]] — class instantiation *)
  | Pdef of defn list * proc
      (** [def X1(x)=P1 and ... in P] *)
  | Pif of expr * proc * proc
  | Plet of string list * string * string * expr list * proc
      (** [let y1,..,yn = x!l\[e..\] in P] — synchronous-call sugar *)
  | Pexport_new of string list * proc
  | Pexport_def of defn list * proc
  | Pimport_name of string * string * proc
      (** [import x from s in P] *)
  | Pimport_class of string * string * proc
      (** [import X from s in P] *)

and proc = proc_ Loc.loc
and method_ = { m_label : string; m_params : string list; m_body : proc }
and defn = { d_name : string; d_params : string list; d_body : proc }

type site_decl = { s_name : string; s_proc : proc }

type program = { sites : site_decl list }
(** A network program.  A bare process parses as a single site named
    ["main"]. *)

val default_label : string
(** The label abbreviated by [x!\[v\]] and [x?(y)=P]; the paper uses
    [val]. *)

(** {1 Constructors without locations} (for tests and programmatic use) *)

val nil : proc
val par : proc -> proc -> proc
val par_list : proc list -> proc
val new_ : string list -> proc -> proc
val msg : string -> string -> expr list -> proc
val obj : string -> method_ list -> proc
val inst : string -> expr list -> proc
val def : defn list -> proc -> proc
val evar : string -> expr
val eint : int -> expr
val ebool : bool -> expr
val estr : string -> expr

(** {1 Analysis} *)

val free_names : proc -> string list
(** Free channel names, in first-occurrence order. *)

val free_classes : proc -> string list
(** Free class variables, in first-occurrence order. *)

val size : proc -> int
(** Number of AST nodes (processes + expressions); the denominator of
    the byte-code compactness experiment E2. *)

val equal : proc -> proc -> bool
(** Structural equality ignoring source locations. *)

(** Pretty-printer for DiTyCO programs.

    Output is valid concrete syntax: [Parser.parse_proc (Pp.proc_to_string p)]
    yields a process structurally equal to [p] (the round-trip property
    tested in [test/test_syntax.ml]). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_proc : Format.formatter -> Ast.proc -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val proc_to_string : Ast.proc -> string
val program_to_string : Ast.program -> string

(** Recursive-descent parser for DiTyCO.

    Grammar sketch (see README for the full reference):
    {v
      program  ::= site+ | proc
      site     ::= "site" ident "{" proc "}"
      proc     ::= item ("|" item)*
      item     ::= "new" ident,+ proc
                 | "def" defn ("and" defn)* "in" proc
                 | "let" ident,+ "=" ident "!" label? args "in" proc
                 | "if" expr "then" proc "else" proc
                 | "export" ("new" ident,+ proc | "def" ... "in" proc)
                 | "import" (ident|Uident) "from" ident "in" proc
                 | ident "!" label? args                 -- message
                 | ident "?" ("{" method,+ "}" | "(" ident,* ")" "=" proc)
                 | Uident args?                          -- instantiation
                 | "nil" | "0" | "(" proc ")"
      method   ::= label "(" ident,* ")" "=" proc
      defn     ::= Uident "(" ident,* ")" "=" proc
      args     ::= "[" expr,* "]"
    v}

    Prefix scopes ([new], [def], [let], [import]) extend as far right as
    possible, per the calculus convention.  A method (or definition) body
    extends through ["|"] but stops at ["," ] and ["}"]. *)

exception Error of string * Loc.t

val parse_program : ?file:string -> string -> Ast.program
(** Parses either a network program ([site s { ... }] blocks) or a bare
    process, which becomes the body of a single site called ["main"]. *)

val parse_proc : ?file:string -> string -> Ast.proc
(** Parses a bare process. *)

val parse_expr : ?file:string -> string -> Ast.expr
(** Parses a builtin expression (for tests and the shell). *)

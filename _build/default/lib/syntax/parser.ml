exception Error of string * Loc.t

type state = { toks : (Token.t * Loc.t) array; mutable idx : int }

let peek st = fst st.toks.(st.idx)
let peek_loc st = snd st.toks.(st.idx)

let peek2 st =
  if st.idx + 1 < Array.length st.toks then fst st.toks.(st.idx + 1)
  else Token.EOF

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let error st msg = raise (Error (msg, peek_loc st))

let errorf st fmt = Format.kasprintf (error st) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    errorf st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek st))

let ident st =
  match peek st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> errorf st "expected an identifier but found '%s'" (Token.to_string t)

let uident st =
  match peek st with
  | Token.UIDENT s ->
      advance st;
      s
  | t ->
      errorf st "expected a class variable (capitalized) but found '%s'"
        (Token.to_string t)

let rec sep_list1 st sep elt =
  let x = elt st in
  if peek st = sep then begin
    advance st;
    x :: sep_list1 st sep elt
  end
  else [ x ]

let ident_list1 st = sep_list1 st Token.COMMA ident

(* ------------------------------------------------------------------ *)
(* Expressions, classic precedence climbing.                           *)

let binop_of_token : Token.t -> (Ast.binop * int) option = function
  | Token.BARBAR -> Some (Ast.Or, 1)
  | Token.AMPAMP -> Some (Ast.And, 2)
  | Token.EQEQ -> Some (Ast.Eq, 3)
  | Token.NEQ -> Some (Ast.Neq, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PLUS -> Some (Ast.Add, 5)
  | Token.MINUS -> Some (Ast.Sub, 5)
  | Token.STAR -> Some (Ast.Mul, 6)
  | Token.SLASH -> Some (Ast.Div, 6)
  | Token.PERCENT -> Some (Ast.Mod, 6)
  | _ -> None

let rec expr st = expr_bp st 0

and expr_bp st min_bp =
  let lhs = expr_atom st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (op, bp) when bp >= min_bp ->
        advance st;
        let rhs = expr_bp st (bp + 1) in
        loop (Loc.at (Loc.merge lhs.Loc.at rhs.Loc.at) (Ast.Ebin (op, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and expr_atom st =
  let loc = peek_loc st in
  match peek st with
  | Token.INT n ->
      advance st;
      Loc.at loc (Ast.Eint n)
  | Token.STRING s ->
      advance st;
      Loc.at loc (Ast.Estr s)
  | Token.KW_TRUE ->
      advance st;
      Loc.at loc (Ast.Ebool true)
  | Token.KW_FALSE ->
      advance st;
      Loc.at loc (Ast.Ebool false)
  | Token.IDENT x ->
      advance st;
      Loc.at loc (Ast.Evar x)
  | Token.MINUS ->
      advance st;
      let e = expr_atom st in
      Loc.at (Loc.merge loc e.Loc.at) (Ast.Eun (Ast.Neg, e))
  | Token.KW_NOT ->
      advance st;
      let e = expr_atom st in
      Loc.at (Loc.merge loc e.Loc.at) (Ast.Eun (Ast.Not, e))
  | Token.LPAREN ->
      advance st;
      let e = expr st in
      expect st Token.RPAREN;
      e
  | t -> errorf st "expected an expression but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Processes.                                                          *)

let args st =
  match peek st with
  | Token.LBRACKET ->
      advance st;
      if peek st = Token.RBRACKET then begin
        advance st;
        []
      end
      else begin
        let es = sep_list1 st Token.COMMA expr in
        expect st Token.RBRACKET;
        es
      end
  | t -> errorf st "expected '[' but found '%s'" (Token.to_string t)

(* A label defaults to [Ast.default_label] when the message/method omits
   it: [x![v]] and [x?(y) = P]. *)
let bang_suffix st x loc =
  expect st Token.BANG;
  let label =
    match peek st with
    | Token.IDENT l ->
        advance st;
        l
    | _ -> Ast.default_label
  in
  let es = args st in
  Loc.at (Loc.merge loc (peek_loc st)) (Ast.Pmsg (x, label, es))

let rec proc st : Ast.proc =
  let p = proc_item st in
  if peek st = Token.BAR then begin
    advance st;
    let q = proc st in
    Loc.at (Loc.merge p.Loc.at q.Loc.at) (Ast.Ppar (p, q))
  end
  else p

and method_ st : Ast.method_ =
  let m_label = ident st in
  expect st Token.LPAREN;
  let m_params =
    if peek st = Token.RPAREN then [] else ident_list1 st
  in
  expect st Token.RPAREN;
  expect st Token.EQUAL;
  let m_body = proc st in
  { m_label; m_params; m_body }

and defn st : Ast.defn =
  let d_name = uident st in
  expect st Token.LPAREN;
  let d_params = if peek st = Token.RPAREN then [] else ident_list1 st in
  expect st Token.RPAREN;
  expect st Token.EQUAL;
  let d_body = proc st in
  { d_name; d_params; d_body }

and defns st = sep_list1 st Token.KW_AND defn

and proc_item st : Ast.proc =
  let loc = peek_loc st in
  match peek st with
  | Token.KW_NIL ->
      advance st;
      Loc.at loc Ast.Pnil
  | Token.INT 0 ->
      advance st;
      Loc.at loc Ast.Pnil
  | Token.LPAREN ->
      advance st;
      let p = proc st in
      expect st Token.RPAREN;
      p
  | Token.KW_NEW ->
      advance st;
      let xs = ident_list1 st in
      let p = proc st in
      Loc.at (Loc.merge loc p.Loc.at) (Ast.Pnew (xs, p))
  | Token.KW_DEF ->
      advance st;
      let ds = defns st in
      expect st Token.KW_IN;
      let p = proc st in
      Loc.at (Loc.merge loc p.Loc.at) (Ast.Pdef (ds, p))
  | Token.KW_IF ->
      advance st;
      let e = expr st in
      expect st Token.KW_THEN;
      let p = proc_item st in
      expect st Token.KW_ELSE;
      let q = proc_item st in
      Loc.at (Loc.merge loc q.Loc.at) (Ast.Pif (e, p, q))
  | Token.KW_LET ->
      advance st;
      let ys = ident_list1 st in
      expect st Token.EQUAL;
      let x = ident st in
      expect st Token.BANG;
      let label =
        match peek st with
        | Token.IDENT l ->
            advance st;
            l
        | _ -> Ast.default_label
      in
      let es = args st in
      expect st Token.KW_IN;
      let p = proc st in
      Loc.at (Loc.merge loc p.Loc.at) (Ast.Plet (ys, x, label, es, p))
  | Token.KW_EXPORT -> (
      advance st;
      match peek st with
      | Token.KW_NEW ->
          advance st;
          let xs = ident_list1 st in
          let p = proc st in
          Loc.at (Loc.merge loc p.Loc.at) (Ast.Pexport_new (xs, p))
      | Token.KW_DEF ->
          advance st;
          let ds = defns st in
          expect st Token.KW_IN;
          let p = proc st in
          Loc.at (Loc.merge loc p.Loc.at) (Ast.Pexport_def (ds, p))
      | t ->
          errorf st "expected 'new' or 'def' after 'export', found '%s'"
            (Token.to_string t))
  | Token.KW_IMPORT -> (
      match peek2 st with
      | Token.UIDENT x ->
          advance st;
          advance st;
          expect st Token.KW_FROM;
          let s = ident st in
          expect st Token.KW_IN;
          let p = proc st in
          Loc.at (Loc.merge loc p.Loc.at) (Ast.Pimport_class (x, s, p))
      | Token.IDENT x ->
          advance st;
          advance st;
          expect st Token.KW_FROM;
          let s = ident st in
          expect st Token.KW_IN;
          let p = proc st in
          Loc.at (Loc.merge loc p.Loc.at) (Ast.Pimport_name (x, s, p))
      | t ->
          errorf st "expected an identifier after 'import', found '%s'"
            (Token.to_string t))
  | Token.UIDENT x ->
      advance st;
      let es = if peek st = Token.LBRACKET then args st else [] in
      Loc.at (Loc.merge loc (peek_loc st)) (Ast.Pinst (x, es))
  | Token.IDENT x -> (
      advance st;
      match peek st with
      | Token.BANG -> bang_suffix st x loc
      | Token.QUERY -> (
          advance st;
          match peek st with
          | Token.LBRACE ->
              advance st;
              let ms = sep_list1 st Token.COMMA method_ in
              expect st Token.RBRACE;
              Loc.at (Loc.merge loc (peek_loc st)) (Ast.Pobj (x, ms))
          | Token.LPAREN ->
              advance st;
              let params =
                if peek st = Token.RPAREN then [] else ident_list1 st
              in
              expect st Token.RPAREN;
              expect st Token.EQUAL;
              let body = proc st in
              Loc.at
                (Loc.merge loc body.Loc.at)
                (Ast.Pobj
                   ( x,
                     [ { m_label = Ast.default_label; m_params = params;
                         m_body = body } ] ))
          | t ->
              errorf st "expected '{' or '(' after '?', found '%s'"
                (Token.to_string t))
      | t ->
          errorf st "expected '!' or '?' after name '%s', found '%s'" x
            (Token.to_string t))
  | t -> errorf st "expected a process but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Programs.                                                           *)

let site_decl st : Ast.site_decl =
  expect st Token.KW_SITE;
  let s_name = ident st in
  expect st Token.LBRACE;
  let s_proc = proc st in
  expect st Token.RBRACE;
  { s_name; s_proc }

let program st : Ast.program =
  if peek st = Token.KW_SITE then begin
    let rec go acc =
      if peek st = Token.KW_SITE then go (site_decl st :: acc)
      else List.rev acc
    in
    let sites = go [] in
    expect st Token.EOF;
    { Ast.sites }
  end
  else begin
    let p = proc st in
    expect st Token.EOF;
    { Ast.sites = [ { s_name = "main"; s_proc = p } ] }
  end

let make_state ?(file = "<string>") src =
  try { toks = Array.of_list (Lexer.tokenize ~file src); idx = 0 }
  with Lexer.Error (msg, loc) -> raise (Error (msg, loc))

let parse_program ?file src = program (make_state ?file src)

let parse_proc ?file src =
  let st = make_state ?file src in
  let p = proc st in
  expect st Token.EOF;
  p

let parse_expr ?file src =
  let st = make_state ?file src in
  let e = expr st in
  expect st Token.EOF;
  e

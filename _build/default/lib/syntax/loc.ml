type pos = { line : int; col : int }
type t = { file : string; start_pos : pos; end_pos : pos }

let dummy =
  { file = "<none>"; start_pos = { line = 0; col = 0 };
    end_pos = { line = 0; col = 0 } }

let make file start_pos end_pos = { file; start_pos; end_pos }
let merge a b = { a with end_pos = b.end_pos }

let pp ppf t =
  if t.start_pos.line = t.end_pos.line then
    Format.fprintf ppf "%s:%d.%d-%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.col
  else
    Format.fprintf ppf "%s:%d.%d-%d.%d" t.file t.start_pos.line
      t.start_pos.col t.end_pos.line t.end_pos.col

type 'a loc = { it : 'a; at : t }

let at at it = { it; at }
let no_loc it = { it; at = dummy }

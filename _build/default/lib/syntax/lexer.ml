exception Error of string * Loc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let current_pos st : Loc.pos = { line = st.line; col = st.col }

let loc_from st start_pos =
  Loc.make st.file start_pos (current_pos st)

let error st start_pos msg = raise (Error (msg, loc_from st start_pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let rec skip_block_comment st start_pos depth =
  if depth = 0 then ()
  else
    match (peek st, peek2 st) with
    | Some '{', Some '-' ->
        advance st;
        advance st;
        skip_block_comment st start_pos (depth + 1)
    | Some '-', Some '}' ->
        advance st;
        advance st;
        skip_block_comment st start_pos (depth - 1)
    | Some _, _ ->
        advance st;
        skip_block_comment st start_pos depth
    | None, _ -> error st start_pos "unterminated block comment"

let rec skip_ws st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_ws st
  | Some '-', Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_ws st
  | Some '{', Some '-' ->
      let start_pos = current_pos st in
      advance st;
      advance st;
      skip_block_comment st start_pos 1;
      skip_ws st
  | _ -> ()

let lex_string st =
  let start_pos = current_pos st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st start_pos "unterminated string literal"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '"' -> Buffer.add_char buf '"'
        | Some c -> error st start_pos (Printf.sprintf "bad escape '\\%c'" c)
        | None -> error st start_pos "unterminated string literal");
        advance st;
        go ()
    | Some '\n' -> error st start_pos "newline in string literal"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let lex_number st =
  let start_pos = current_pos st in
  let b = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  match int_of_string_opt (Buffer.contents b) with
  | Some n -> n
  | None -> error st start_pos "integer literal out of range"

let lex_ident st =
  let b = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_ident_char c ->
        Buffer.add_char b c;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  Buffer.contents b

let next_token st : Token.t * Loc.t =
  skip_ws st;
  let start_pos = current_pos st in
  let simple tok = (advance st; (tok, loc_from st start_pos)) in
  let double tok = (advance st; advance st; (tok, loc_from st start_pos)) in
  match (peek st, peek2 st) with
  | None, _ -> (Token.EOF, loc_from st start_pos)
  | Some '"', _ ->
      let s = lex_string st in
      (Token.STRING s, loc_from st start_pos)
  | Some c, _ when is_digit c ->
      let n = lex_number st in
      (Token.INT n, loc_from st start_pos)
  | Some c, _ when is_lower c ->
      let s = lex_ident st in
      let tok =
        match Token.keyword_of_string s with
        | Some kw -> kw
        | None -> Token.IDENT s
      in
      (tok, loc_from st start_pos)
  | Some c, _ when is_upper c ->
      let s = lex_ident st in
      (Token.UIDENT s, loc_from st start_pos)
  | Some '!', Some '=' -> double Token.NEQ
  | Some '!', _ -> simple Token.BANG
  | Some '?', _ -> simple Token.QUERY
  | Some '{', _ -> simple Token.LBRACE
  | Some '}', _ -> simple Token.RBRACE
  | Some '[', _ -> simple Token.LBRACKET
  | Some ']', _ -> simple Token.RBRACKET
  | Some '(', _ -> simple Token.LPAREN
  | Some ')', _ -> simple Token.RPAREN
  | Some ',', _ -> simple Token.COMMA
  | Some '=', Some '=' -> double Token.EQEQ
  | Some '=', _ -> simple Token.EQUAL
  | Some '|', Some '|' -> double Token.BARBAR
  | Some '|', _ -> simple Token.BAR
  | Some '.', _ -> simple Token.DOT
  | Some '+', _ -> simple Token.PLUS
  | Some '-', _ -> simple Token.MINUS
  | Some '*', _ -> simple Token.STAR
  | Some '/', _ -> simple Token.SLASH
  | Some '%', _ -> simple Token.PERCENT
  | Some '<', Some '=' -> double Token.LE
  | Some '<', _ -> simple Token.LT
  | Some '>', Some '=' -> double Token.GE
  | Some '>', _ -> simple Token.GT
  | Some '&', Some '&' -> double Token.AMPAMP
  | Some c, _ -> error st start_pos (Printf.sprintf "unexpected character %C" c)

let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok, loc = next_token st in
    match tok with
    | Token.EOF -> List.rev ((tok, loc) :: acc)
    | _ -> go ((tok, loc) :: acc)
  in
  go []

(** Source locations for diagnostics. *)

type pos = { line : int; col : int }

type t = { file : string; start_pos : pos; end_pos : pos }

val dummy : t
val make : string -> pos -> pos -> t
val merge : t -> t -> t
(** Span covering both locations (assumes same file). *)

val pp : Format.formatter -> t -> unit

(** A value tagged with its source location. *)
type 'a loc = { it : 'a; at : t }

val at : t -> 'a -> 'a loc
val no_loc : 'a -> 'a loc

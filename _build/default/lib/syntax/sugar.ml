open Ast

let fresh_reply_name used =
  let rec go i =
    let cand = Printf.sprintf "_r%d" i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 0

let rec desugar (p : proc) : proc =
  let at it = Loc.at p.Loc.at it in
  match p.Loc.it with
  | Pnil -> p
  | Ppar (a, b) -> at (Ppar (desugar a, desugar b))
  | Pnew (xs, q) -> at (Pnew (xs, desugar q))
  | Pmsg _ -> p
  | Pobj (x, ms) ->
      at (Pobj (x, List.map (fun m -> { m with m_body = desugar m.m_body }) ms))
  | Pinst _ -> p
  | Pdef (ds, q) ->
      at
        (Pdef
           ( List.map (fun d -> { d with d_body = desugar d.d_body }) ds,
             desugar q ))
  | Pif (e, a, b) -> at (Pif (e, desugar a, desugar b))
  | Plet (ys, x, l, es, q) ->
      let q = desugar q in
      (* The reply name must not collide with anything free in [q], the
         argument expressions, or the target; binding [ys] shadows [q]'s
         uses of those names, which is exactly the abbreviation's intent. *)
      let used =
        (x :: free_names q)
        @ List.concat_map (fun e -> free_names (at (Pmsg (x, l, [ e ])))) es
      in
      let r = fresh_reply_name used in
      let reply =
        { m_label = default_label; m_params = ys; m_body = q }
      in
      at
        (Pnew
           ( [ r ],
             at (Ppar (at (Pmsg (x, l, es @ [ Loc.no_loc (Evar r) ])),
                       at (Pobj (r, [ reply ])))) ))
  | Pexport_new (xs, q) -> at (Pexport_new (xs, desugar q))
  | Pexport_def (ds, q) ->
      at
        (Pexport_def
           ( List.map (fun d -> { d with d_body = desugar d.d_body }) ds,
             desugar q ))
  | Pimport_name (x, s, q) -> at (Pimport_name (x, s, desugar q))
  | Pimport_class (x, s, q) -> at (Pimport_class (x, s, desugar q))

let desugar_program (prog : program) : program =
  { sites = List.map (fun s -> { s with s_proc = desugar s.s_proc }) prog.sites }

let rec is_kernel (p : proc) =
  match p.Loc.it with
  | Pnil | Pmsg _ | Pinst _ -> true
  | Ppar (a, b) | Pif (_, a, b) -> is_kernel a && is_kernel b
  | Pnew (_, q) | Pexport_new (_, q) | Pimport_name (_, _, q)
  | Pimport_class (_, _, q) ->
      is_kernel q
  | Pobj (_, ms) -> List.for_all (fun m -> is_kernel m.m_body) ms
  | Pdef (ds, q) | Pexport_def (ds, q) ->
      List.for_all (fun d -> is_kernel d.d_body) ds && is_kernel q
  | Plet _ -> false

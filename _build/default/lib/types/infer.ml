open Tyco_syntax

type error = { msg : string; loc : Loc.t }

exception Error of error

let pp_error ppf e = Format.fprintf ppf "%a: %s" Loc.pp e.loc e.msg
let err loc fmt = Format.kasprintf (fun msg -> raise (Error { msg; loc })) fmt

module SMap = Map.Make (String)

type class_binding =
  | Local of Ty.scheme
  | Imported of string * string  (* exporting site, class name *)

type env = {
  names : Ty.ty SMap.t;
  classes : class_binding SMap.t;
}

type global = {
  ctx : Ty.ctx;
  export_names : (string * string, Ty.ty) Hashtbl.t;
  export_classes : (string * string, Ty.scheme) Hashtbl.t;
  (* Deferred instantiations of imported classes: checked in pass 2. *)
  mutable deferred : (Loc.t * string * string * Ty.ty list) list;
}

let io_channel_type ctx =
  Ty.chan_of_methods ctx
    [ ("print", [ Ty.str ctx ]);
      ("printi", [ Ty.int_ ctx ]);
      ("printb", [ Ty.bool_ ctx ]);
      (* input: io!readi[k] replies k![n] with the next integer the
         user supplied to this site's I/O port (paper §5: "users may
         selectively provide data to running programs") *)
      ("readi", [ Ty.chan_of_methods ctx [ ("val", [ Ty.int_ ctx ]) ] ]) ]

(* The shared placeholder type for an exported/imported name: created on
   first mention from either side, then refined by unification. *)
let export_name_ty g site name =
  match Hashtbl.find_opt g.export_names (site, name) with
  | Some t -> t
  | None ->
      let t = Ty.fresh_var g.ctx in
      Hashtbl.add g.export_names (site, name) t;
      t

let lookup_name env loc x =
  match SMap.find_opt x env.names with
  | Some t -> t
  | None -> err loc "unbound name '%s'" x

(* Everything a generalization must treat as monomorphic: the channel
   types in scope plus the parameter types of every class scheme in
   scope (their unquantified parts may not be reachable from names). *)
let env_types env =
  SMap.fold (fun _ t acc -> t :: acc) env.names
    (SMap.fold
       (fun _ c acc ->
         match c with
         | Local scheme -> Ty.scheme_params scheme @ acc
         | Imported _ -> acc)
       env.classes [])

let rec infer_expr env g (e : Ast.expr) : Ty.ty =
  let ctx = g.ctx in
  match e.Loc.it with
  | Ast.Evar x -> lookup_name env e.Loc.at x
  | Ast.Eint _ -> Ty.int_ ctx
  | Ast.Ebool _ -> Ty.bool_ ctx
  | Ast.Estr _ -> Ty.str ctx
  | Ast.Eun (Ast.Neg, a) ->
      unify_at g e.Loc.at (infer_expr env g a) (Ty.int_ ctx);
      Ty.int_ ctx
  | Ast.Eun (Ast.Not, a) ->
      unify_at g e.Loc.at (infer_expr env g a) (Ty.bool_ ctx);
      Ty.bool_ ctx
  | Ast.Ebin (op, a, b) -> (
      let ta = infer_expr env g a and tb = infer_expr env g b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          unify_at g a.Loc.at ta (Ty.int_ ctx);
          unify_at g b.Loc.at tb (Ty.int_ ctx);
          Ty.int_ ctx
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          unify_at g a.Loc.at ta (Ty.int_ ctx);
          unify_at g b.Loc.at tb (Ty.int_ ctx);
          Ty.bool_ ctx
      | Ast.Eq | Ast.Neq ->
          unify_at g e.Loc.at ta tb;
          Ty.bool_ ctx
      | Ast.And | Ast.Or ->
          unify_at g a.Loc.at ta (Ty.bool_ ctx);
          unify_at g b.Loc.at tb (Ty.bool_ ctx);
          Ty.bool_ ctx)

and unify_at g loc t1 t2 =
  try Ty.unify g.ctx t1 t2 with Ty.Clash msg -> err loc "%s" msg

let check_distinct loc what xs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Hashtbl.mem seen x then err loc "duplicate %s '%s'" what x;
      Hashtbl.add seen x ())
    xs

(* Bind the classes of a [def] block: fresh parameter types, bodies
   checked under monomorphic recursion, then everything generalized
   against the outer environment. *)
let rec check_def env g loc (ds : Ast.defn list) ~exported ~site =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (d : Ast.defn) ->
      if Hashtbl.mem seen d.d_name then
        err loc "duplicate class '%s' in def" d.d_name;
      Hashtbl.add seen d.d_name ())
    ds;
  let params_tys =
    List.map
      (fun (d : Ast.defn) ->
        check_distinct loc "parameter" d.d_params;
        List.map (fun _ -> Ty.fresh_var g.ctx) d.d_params)
      ds
  in
  let env_rec =
    List.fold_left2
      (fun env (d : Ast.defn) tys ->
        { env with classes = SMap.add d.d_name (Local (Ty.mono tys)) env.classes })
      env ds params_tys
  in
  List.iter2
    (fun (d : Ast.defn) tys ->
      let env_body =
        List.fold_left2
          (fun env x t -> { env with names = SMap.add x t env.names })
          env_rec d.d_params tys
      in
      check env_body g d.d_body)
    ds params_tys;
  let outer_tys = env_types env in
  let env' =
    List.fold_left2
      (fun envacc (d : Ast.defn) tys ->
        let scheme = Ty.generalize g.ctx ~env_tys:outer_tys tys in
        if exported then
          Hashtbl.replace g.export_classes (site, d.d_name) scheme;
        { envacc with classes = SMap.add d.d_name (Local scheme) envacc.classes })
      env ds params_tys
  in
  env'

and check env g (p : Ast.proc) : unit =
  let ctx = g.ctx in
  let loc = p.Loc.at in
  match p.Loc.it with
  | Ast.Pnil -> ()
  | Ast.Ppar (a, b) ->
      check env g a;
      check env g b
  | Ast.Pnew (xs, q) ->
      let env =
        List.fold_left
          (fun env x ->
            let t = Ty.chan ctx (Ty.fresh_rvar ctx) in
            { env with names = SMap.add x t env.names })
          env xs
      in
      check env g q
  | Ast.Pmsg (x, l, es) ->
      let tx = lookup_name env loc x in
      let arg_tys = List.map (infer_expr env g) es in
      let want = Ty.chan ctx (Ty.rcons ctx l arg_tys (Ty.fresh_rvar ctx)) in
      unify_at g loc tx want
  | Ast.Pobj (x, ms) ->
      let tx = lookup_name env loc x in
      let seen = Hashtbl.create 8 in
      let methods =
        List.map
          (fun (m : Ast.method_) ->
            if Hashtbl.mem seen m.m_label then
              err loc "duplicate method '%s' in object at '%s'" m.m_label x;
            Hashtbl.add seen m.m_label ();
            check_distinct loc "parameter" m.m_params;
            (m, List.map (fun _ -> Ty.fresh_var ctx) m.m_params))
          ms
      in
      (* Objects determine the full interface of their channel: the row
         is closed (exact record types, as in TyCO). *)
      let row =
        List.fold_right
          (fun ((m : Ast.method_), tys) rest ->
            Ty.rcons ctx m.m_label tys rest)
          methods (Ty.rempty ctx)
      in
      unify_at g loc tx (Ty.chan ctx row);
      List.iter
        (fun ((m : Ast.method_), tys) ->
          let env_body =
            List.fold_left2
              (fun env x t -> { env with names = SMap.add x t env.names })
              env m.m_params tys
          in
          check env_body g m.m_body)
        methods
  | Ast.Pinst (xc, es) -> (
      let arg_tys = List.map (infer_expr env g) es in
      match SMap.find_opt xc env.classes with
      | None -> err loc "unbound class '%s'" xc
      | Some (Local scheme) ->
          if Ty.scheme_arity scheme <> List.length arg_tys then
            err loc "class '%s' expects %d argument(s), got %d" xc
              (Ty.scheme_arity scheme) (List.length arg_tys);
          let tys = Ty.instantiate ctx scheme in
          List.iter2 (unify_at g loc) tys arg_tys
      | Some (Imported (site, name)) ->
          g.deferred <- (loc, site, name, arg_tys) :: g.deferred)
  | Ast.Pdef (ds, q) ->
      let env = check_def env g loc ds ~exported:false ~site:"" in
      check env g q
  | Ast.Pif (e, a, b) ->
      unify_at g loc (infer_expr env g e) (Ty.bool_ ctx);
      check env g a;
      check env g b
  | Ast.Plet _ -> err loc "internal: 'let' must be desugared before inference"
  | Ast.Pexport_new _ | Ast.Pexport_def _ | Ast.Pimport_name _
  | Ast.Pimport_class _ ->
      err loc "internal: site-level construct not handled here"

(* Site-level checking handles export/import, which are only meaningful
   at the top of a site body (they translate to network-level binders,
   paper §4).  We accept them at any prefix position within the body,
   matching the paper's examples. *)
let rec check_site env g ~site (p : Ast.proc) : unit =
  let loc = p.Loc.at in
  match p.Loc.it with
  | Ast.Pexport_new (xs, q) ->
      let env =
        List.fold_left
          (fun env x ->
            let t = Ty.chan g.ctx (Ty.fresh_rvar g.ctx) in
            unify_at g loc t (export_name_ty g site x);
            { env with names = SMap.add x t env.names })
          env xs
      in
      check_site env g ~site q
  | Ast.Pexport_def (ds, q) ->
      let env = check_def env g loc ds ~exported:true ~site in
      check_site env g ~site q
  | Ast.Pimport_name (x, s, q) ->
      let t = export_name_ty g s x in
      check_site { env with names = SMap.add x t env.names } g ~site q
  | Ast.Pimport_class (xc, s, q) ->
      check_site
        { env with classes = SMap.add xc (Imported (s, xc)) env.classes }
        g ~site q
  | Ast.Ppar (a, b) ->
      check_site env g ~site a;
      check_site env g ~site b
  | Ast.Pnew (xs, q) ->
      let env =
        List.fold_left
          (fun env x ->
            { env with
              names = SMap.add x (Ty.chan g.ctx (Ty.fresh_rvar g.ctx)) env.names })
          env xs
      in
      check_site env g ~site q
  | Ast.Pdef (ds, q) ->
      let env = check_def env g loc ds ~exported:false ~site in
      check_site env g ~site q
  | Ast.Pnil | Ast.Pmsg _ | Ast.Pobj _ | Ast.Pinst _ | Ast.Pif _ | Ast.Plet _
    ->
      check env g p

type info = {
  ctx : Ty.ctx;
  export_name_types : ((string * string) * Ty.ty) list;
  export_class_types : ((string * string) * Ty.scheme) list;
  name_types : ((string * string) * Ty.ty) list;
}

type site_info = {
  export_name_rtti : (string * Rtti.t) list;
  export_class_rtti : (string * Rtti.t) list;
  import_name_expect : ((string * string) * Rtti.t) list;
  import_class_expect : ((string * string) * Rtti.t) list;
}

(* Per-site inference for separately checked sites (the static half of
   the paper's combined scheme; the descriptors feed the dynamic
   half).  Imports are checked only against their local usage; the
   resulting constraint is snapshotted as the import's expectation. *)
let check_site_isolated (sd : Ast.site_decl) : site_info =
  let sd =
    { sd with Ast.s_proc = Sugar.desugar sd.Ast.s_proc }
  in
  let ctx = Ty.ctx () in
  let g =
    { ctx;
      export_names = Hashtbl.create 16;
      export_classes = Hashtbl.create 16;
      deferred = [] }
  in
  let env =
    { names = SMap.add "io" (io_channel_type ctx) SMap.empty;
      classes = SMap.empty }
  in
  check_site env g ~site:sd.Ast.s_name sd.Ast.s_proc;
  (* deferred instantiations against locally exported classes are
     checked; foreign ones become expectations *)
  let foreign_class_expect = ref [] in
  List.iter
    (fun (loc, site, name, arg_tys) ->
      match Hashtbl.find_opt g.export_classes (site, name) with
      | Some scheme when String.equal site sd.Ast.s_name ->
          if Ty.scheme_arity scheme <> List.length arg_tys then
            err loc "class '%s.%s' expects %d argument(s), got %d" site name
              (Ty.scheme_arity scheme) (List.length arg_tys);
          let tys = Ty.instantiate ctx scheme in
          List.iter2 (unify_at g loc) tys arg_tys
      | _ ->
          foreign_class_expect :=
            ((site, name), Rtti.of_tys arg_tys) :: !foreign_class_expect)
    (List.rev g.deferred);
  let export_name_rtti =
    Hashtbl.fold
      (fun (site, name) t acc ->
        if String.equal site sd.Ast.s_name then (name, Rtti.of_ty t) :: acc
        else acc)
      g.export_names []
  in
  let import_name_expect =
    Hashtbl.fold
      (fun (site, name) t acc ->
        if String.equal site sd.Ast.s_name then acc
        else ((site, name), Rtti.of_ty t) :: acc)
      g.export_names []
  in
  let export_class_rtti =
    Hashtbl.fold
      (fun (site, name) scheme acc ->
        if String.equal site sd.Ast.s_name then
          (name, Rtti.of_tys (Ty.instantiate ctx scheme)) :: acc
        else acc)
      g.export_classes []
  in
  { export_name_rtti;
    export_class_rtti;
    import_name_expect;
    import_class_expect = !foreign_class_expect }

let check_program (prog : Ast.program) : info =
  let prog = Sugar.desugar_program prog in
  let ctx = Ty.ctx () in
  let g =
    { ctx;
      export_names = Hashtbl.create 16;
      export_classes = Hashtbl.create 16;
      deferred = [] }
  in
  let base_env site =
    ignore site;
    { names = SMap.add "io" (io_channel_type ctx) SMap.empty;
      classes = SMap.empty }
  in
  List.iter
    (fun (s : Ast.site_decl) ->
      check_site (base_env s.s_name) g ~site:s.s_name s.s_proc)
    prog.sites;
  (* Pass 2: imported-class instantiations against the now-generalized
     exporter schemes. *)
  List.iter
    (fun (loc, site, name, arg_tys) ->
      match Hashtbl.find_opt g.export_classes (site, name) with
      | None -> err loc "site '%s' does not export class '%s'" site name
      | Some scheme ->
          if Ty.scheme_arity scheme <> List.length arg_tys then
            err loc "class '%s.%s' expects %d argument(s), got %d" site name
              (Ty.scheme_arity scheme) (List.length arg_tys);
          let tys = Ty.instantiate ctx scheme in
          List.iter2 (unify_at g loc) tys arg_tys)
    (List.rev g.deferred);
  (* Any (site, name) placeholder whose site never exported it is an
     unresolved import. *)
  let exported_by_program = Hashtbl.create 16 in
  let rec scan_exports site (p : Ast.proc) =
    match p.Loc.it with
    | Ast.Pexport_new (xs, q) ->
        List.iter (fun x -> Hashtbl.replace exported_by_program (site, x) ()) xs;
        scan_exports site q
    | Ast.Ppar (a, b) ->
        scan_exports site a;
        scan_exports site b
    | Ast.Pnew (_, q) | Ast.Pdef (_, q) | Ast.Pexport_def (_, q)
    | Ast.Pimport_name (_, _, q) | Ast.Pimport_class (_, _, q) ->
        scan_exports site q
    | Ast.Pnil | Ast.Pmsg _ | Ast.Pobj _ | Ast.Pinst _ | Ast.Pif _
    | Ast.Plet _ ->
        ()
  in
  List.iter (fun (s : Ast.site_decl) -> scan_exports s.s_name s.s_proc)
    prog.sites;
  Hashtbl.iter
    (fun (site, name) _t ->
      if not (Hashtbl.mem exported_by_program (site, name)) then
        err Loc.dummy "site '%s' does not export name '%s'" site name)
    g.export_names;
  let export_name_types =
    Hashtbl.fold (fun k t acc -> (k, t) :: acc) g.export_names []
  in
  let export_class_types =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) g.export_classes []
  in
  { ctx;
    export_name_types;
    export_class_types;
    name_types = export_name_types }

let check_proc (p : Ast.proc) : info =
  check_program { Ast.sites = [ { Ast.s_name = "main"; s_proc = p } ] }

module Wire = Tyco_support.Wire

type node =
  | Nany
  | Nint
  | Nbool
  | Nstr
  | Nchan of (string * int list) list * bool  (* methods, open row *)
  | Ntuple of int list                        (* class parameter tuple *)

type t = { nodes : node array; root : int }

let any = { nodes = [| Nany |]; root = 0 }

let build_graph roots_of =
  let memo : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let nodes = ref [] in
  let count = ref 0 in
  let alloc () =
    let i = !count in
    incr count;
    nodes := (i, Nany) :: !nodes;
    i
  in
  let set i n = nodes := (i, n) :: List.remove_assoc i !nodes in
  let rec go ty =
    let id = Ty.ty_id ty in
    match Hashtbl.find_opt memo id with
    | Some i -> i
    | None ->
        let i = alloc () in
        Hashtbl.add memo id i;
        (match Ty.desc ty with
        | Ty.Var -> set i Nany
        | Ty.Int -> set i Nint
        | Ty.Bool -> set i Nbool
        | Ty.Str -> set i Nstr
        | Ty.Chan row ->
            let methods, open_ = Ty.row_methods row in
            let ms =
              List.map (fun (l, ts) -> (l, List.map go ts)) methods
            in
            set i (Nchan (ms, open_)));
        i
  in
  let root = roots_of go alloc set in
  let arr = Array.make !count Nany in
  List.iter (fun (i, n) -> arr.(i) <- n) !nodes;
  { nodes = arr; root }

let of_ty ty = build_graph (fun go _alloc _set -> go ty)

let of_tys tys =
  build_graph (fun go alloc set ->
      let root = alloc () in
      set root (Ntuple (List.map go tys));
      root)

let node t i = t.nodes.(i)

let compatible a b =
  let memo = Hashtbl.create 16 in
  let rec go i j =
    if Hashtbl.mem memo (i, j) then true
    else begin
      Hashtbl.add memo (i, j) ();
      match (node a i, node b j) with
      | Nany, _ | _, Nany -> true
      | Nint, Nint | Nbool, Nbool | Nstr, Nstr -> true
      | Nchan (ms1, open1), Nchan (ms2, open2) ->
          (* shared labels: arities and argument graphs must agree
             (note [go]'s arguments index graphs a and b respectively,
             so only the a-side drives the recursion) *)
          List.for_all
            (fun (l, args) ->
              match List.assoc_opt l ms2 with
              | Some args' ->
                  List.length args = List.length args'
                  && List.for_all2 go args args'
              | None -> open2)
            ms1
          (* labels only the b-side demands must be tolerated by a *)
          && List.for_all
               (fun (l, _) -> List.mem_assoc l ms1 || open1)
               ms2
      | Ntuple a1, Ntuple a2 ->
          List.length a1 = List.length a2 && List.for_all2 go a1 a2
      | (Nint | Nbool | Nstr | Nchan _ | Ntuple _), _ -> false
    end
  in
  go a.root b.root

let equal a b =
  (* Isomorphism-from-root via a functional bisimulation: each node of
     [a] must map to exactly one node of [b]. *)
  let mapping = Hashtbl.create 16 in
  let rec go i j =
    match Hashtbl.find_opt mapping i with
    | Some j' -> j = j'
    | None -> (
        Hashtbl.add mapping i j;
        match (node a i, node b j) with
        | Nany, Nany | Nint, Nint | Nbool, Nbool | Nstr, Nstr -> true
        | Nchan (ms1, o1), Nchan (ms2, o2) ->
            o1 = o2
            && List.length ms1 = List.length ms2
            && List.for_all
                 (fun (l, args) ->
                   match List.assoc_opt l ms2 with
                   | Some args' ->
                       List.length args = List.length args'
                       && List.for_all2 go args args'
                   | None -> false)
                 ms1
        | Ntuple a1, Ntuple a2 ->
            List.length a1 = List.length a2 && List.for_all2 go a1 a2
        | (Nany | Nint | Nbool | Nstr | Nchan _ | Ntuple _), _ -> false)
  in
  go a.root b.root

let encode enc t =
  Wire.varint enc (Array.length t.nodes);
  Array.iter
    (fun n ->
      match n with
      | Nany -> Wire.u8 enc 0
      | Nint -> Wire.u8 enc 1
      | Nbool -> Wire.u8 enc 2
      | Nstr -> Wire.u8 enc 3
      | Nchan (ms, open_) ->
          Wire.u8 enc 4;
          Wire.bool enc open_;
          Wire.list enc
            (fun enc (l, args) ->
              Wire.string enc l;
              Wire.list enc Wire.varint args)
            ms
      | Ntuple args ->
          Wire.u8 enc 5;
          Wire.list enc Wire.varint args)
    t.nodes;
  Wire.varint enc t.root

let decode dec =
  let n = Wire.read_varint dec in
  if n = 0 then raise (Wire.Malformed "rtti: empty node table");
  let nodes =
    Array.init n (fun _ ->
        match Wire.read_u8 dec with
        | 0 -> Nany
        | 1 -> Nint
        | 2 -> Nbool
        | 3 -> Nstr
        | 4 ->
            let open_ = Wire.read_bool dec in
            let ms =
              Wire.read_list dec (fun dec ->
                  let l = Wire.read_string dec in
                  let args = Wire.read_list dec Wire.read_varint in
                  (l, args))
            in
            Nchan (ms, open_)
        | 5 -> Ntuple (Wire.read_list dec Wire.read_varint)
        | k -> raise (Wire.Malformed (Printf.sprintf "rtti: node tag %d" k)))
  in
  let root = Wire.read_varint dec in
  let check_index i =
    if i < 0 || i >= n then raise (Wire.Malformed "rtti: node index out of range")
  in
  check_index root;
  Array.iter
    (function
      | Nchan (ms, _) ->
          List.iter (fun (_, args) -> List.iter check_index args) ms
      | Ntuple args -> List.iter check_index args
      | Nany | Nint | Nbool | Nstr -> ())
    nodes;
  { nodes; root }

let pp ppf t =
  let rec go path ppf i =
    if List.mem i path then Format.fprintf ppf "µ%d" i
    else
      match node t i with
      | Nany -> Format.pp_print_string ppf "_"
      | Nint -> Format.pp_print_string ppf "int"
      | Nbool -> Format.pp_print_string ppf "bool"
      | Nstr -> Format.pp_print_string ppf "string"
      | Nchan (ms, open_) ->
          let path = i :: path in
          Format.fprintf ppf "{";
          List.iteri
            (fun k (l, args) ->
              if k > 0 then Format.fprintf ppf "; ";
              Format.fprintf ppf "%s:(%a)" l
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                   (go path))
                args)
            ms;
          if open_ then Format.pp_print_string ppf (if ms = [] then ".." else "; ..");
          Format.fprintf ppf "}"
      | Ntuple args ->
          let path = i :: path in
          Format.fprintf ppf "(%a)"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               (go path))
            args
  in
  go [] ppf t.root

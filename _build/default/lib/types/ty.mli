(** The TyCO type language and its unifier.

    Channel types are records of methods — [Chan { l1:(T..); l2:(T..) }]
    — following the TyCO type system (Vasconcelos, paper ref [24]).
    Two implementation choices, recorded in DESIGN.md:

    - {b Row polymorphism}: a message [x!l\[v\]] only requires that [x]'s
      record contains [l]; open rows (ending in a row variable) express
      that requirement, and unification extends them as more uses appear.
    - {b Rational trees}: recursive protocols such as the [Cell]'s [self]
      (whose methods mention [self]'s own type) unify without explicit
      µ-binders; the unifier merges graph nodes before descending, so
      cyclic types converge instead of looping.

    All types live in a {!ctx}, which owns the fresh-node counter. *)

type ctx

val ctx : unit -> ctx

type ty
type row

type desc =
  | Var
  | Int
  | Bool
  | Str
  | Chan of row

type rdesc =
  | Rvar
  | Rempty
  | Rcons of string * ty list * row

(** {1 Construction} *)

val fresh_var : ctx -> ty
val int_ : ctx -> ty
val bool_ : ctx -> ty
val str : ctx -> ty
val chan : ctx -> row -> ty

val chan_of_methods : ctx -> ?open_:bool -> (string * ty list) list -> ty
(** Convenience: a channel whose row lists the given methods, closed by
    [Rempty] (default) or by a fresh row variable. *)

val fresh_rvar : ctx -> row
val rempty : ctx -> row
val rcons : ctx -> string -> ty list -> row -> row

(** {1 Observation} *)

val repr : ty -> ty
(** Union-find representative (path-compressed). *)

val desc : ty -> desc
val rrepr : row -> row
val rdesc : row -> rdesc

val row_methods : row -> (string * ty list) list * bool
(** Methods listed by the row, and whether the row is open (ends in a
    row variable). *)

val ty_id : ty -> int
(** Stable identity of the representative node. *)

(** {1 Unification} *)

exception Clash of string
(** Carries a human-readable description of the mismatch. *)

val unify : ctx -> ty -> ty -> unit
val unify_row : ctx -> row -> row -> unit

(** {1 Schemes (class types)} *)

type scheme
(** The generalized parameter types of a class definition. *)

val generalize : ctx -> env_tys:ty list -> ty list -> scheme
(** [generalize ctx ~env_tys param_tys] quantifies every variable and
    row variable reachable from [param_tys] but not from [env_tys]. *)

val instantiate : ctx -> scheme -> ty list
(** Fresh copy of the scheme's parameter types, quantified variables
    renewed, shared structure preserved. *)

val scheme_arity : scheme -> int

(** [scheme_params s] returns the parameter types as stored (quantified
    variables included); exposed so that enclosing scopes can keep them
    monomorphic during their own generalizations. *)
val scheme_params : scheme -> ty list
val mono : ty list -> scheme
(** A scheme with no quantified variables. *)

(** {1 Printing} *)

val pp : Format.formatter -> ty -> unit
(** Cycle-aware: back-edges print as [µN] references. *)

val to_string : ty -> string

type ty = { mutable tnode : tnode; tid : int }

and tnode =
  | Tlink of ty
  | Tdesc of desc

and desc =
  | Var
  | Int
  | Bool
  | Str
  | Chan of row

and row = { mutable rnode : rnode; rid : int }

and rnode =
  | Rlink of row
  | Rd of rdesc

and rdesc =
  | Rvar
  | Rempty
  | Rcons of string * ty list * row

type ctx = {
  mutable next : int;
  (* Pairs of node ids currently being unified; gives coinductive
     success on cyclic (rational-tree) types. *)
  mutable visiting : (int * int) list;
}

let ctx () = { next = 0; visiting = [] }

let fresh_id ctx =
  let id = ctx.next in
  ctx.next <- ctx.next + 1;
  id

let mk ctx desc = { tnode = Tdesc desc; tid = fresh_id ctx }
let mkr ctx rdesc = { rnode = Rd rdesc; rid = fresh_id ctx }
let fresh_var ctx = mk ctx Var
let int_ ctx = mk ctx Int
let bool_ ctx = mk ctx Bool
let str ctx = mk ctx Str
let chan ctx row = mk ctx (Chan row)
let fresh_rvar ctx = mkr ctx Rvar
let rempty ctx = mkr ctx Rempty
let rcons ctx l ts rest = mkr ctx (Rcons (l, ts, rest))

let chan_of_methods ctx ?(open_ = false) methods =
  let tail = if open_ then fresh_rvar ctx else rempty ctx in
  let row =
    List.fold_right (fun (l, ts) rest -> rcons ctx l ts rest) methods tail
  in
  chan ctx row

let rec repr t =
  match t.tnode with
  | Tlink u ->
      let r = repr u in
      if r != u then t.tnode <- Tlink r;
      r
  | Tdesc _ -> t

let desc t =
  match (repr t).tnode with Tdesc d -> d | Tlink _ -> assert false

let rec rrepr r =
  match r.rnode with
  | Rlink s ->
      let rep = rrepr s in
      if rep != s then r.rnode <- Rlink rep;
      rep
  | Rd _ -> r

let rdesc r =
  match (rrepr r).rnode with Rd d -> d | Rlink _ -> assert false

let ty_id t = (repr t).tid

let row_methods row =
  let rec go acc row =
    match rdesc row with
    | Rempty -> (List.rev acc, false)
    | Rvar -> (List.rev acc, true)
    | Rcons (l, ts, rest) -> go ((l, ts) :: acc) rest
  in
  go [] (rrepr row)

exception Clash of string

let clash fmt = Format.kasprintf (fun msg -> raise (Clash msg)) fmt

let desc_name = function
  | Var -> "_"
  | Int -> "int"
  | Bool -> "bool"
  | Str -> "string"
  | Chan _ -> "channel"

(* Extraction of label [l] (with [arity] arguments) from a row: returns
   the argument types at [l] and the row without [l].  An open row that
   lacks [l] grows to include it — this is how uses of a name accumulate
   methods.  The depth bound guards against pathological cyclic rows. *)
let rec extract ctx l arity row depth =
  if depth > 10_000 then clash "recursive method row while looking for '%s'" l;
  let row = rrepr row in
  match rdesc row with
  | Rcons (l', ts', rest) when String.equal l l' ->
      if List.length ts' <> arity then
        clash "method '%s' used with %d argument(s) but has %d" l arity
          (List.length ts');
      (ts', rest)
  | Rcons (l', ts', rest) ->
      let ts, rest_minus = extract ctx l arity rest (depth + 1) in
      (ts, rcons ctx l' ts' rest_minus)
  | Rvar ->
      let ts = List.init arity (fun _ -> fresh_var ctx) in
      let rest' = fresh_rvar ctx in
      row.rnode <- Rlink (rcons ctx l ts rest');
      (ts, rest')
  | Rempty -> clash "channel has no method '%s'" l

let rec unify0 ctx t1 t2 =
  let t1 = repr t1 and t2 = repr t2 in
  if t1 == t2 then ()
  else
    match (desc t1, desc t2) with
    | Var, _ -> t1.tnode <- Tlink t2
    | _, Var -> t2.tnode <- Tlink t1
    | Int, Int | Bool, Bool | Str, Str -> t1.tnode <- Tlink t2
    | Chan r1, Chan r2 ->
        (* Merge the nodes before descending: on cyclic types the
           recursion reaches the merged node and stops (rational-tree
           unification on term graphs). *)
        t1.tnode <- Tlink t2;
        unify_row0 ctx r1 r2
    | d1, d2 -> clash "type mismatch: %s vs %s" (desc_name d1) (desc_name d2)

and unify_row0 ctx r1 r2 =
  let r1 = rrepr r1 and r2 = rrepr r2 in
  if r1 == r2 then ()
  else if
    List.exists
      (fun (a, b) ->
        (a = r1.rid && b = r2.rid) || (a = r2.rid && b = r1.rid))
      ctx.visiting
  then ()
  else begin
    ctx.visiting <- (r1.rid, r2.rid) :: ctx.visiting;
    match (rdesc r1, rdesc r2) with
    | Rvar, _ -> r1.rnode <- Rlink r2
    | _, Rvar -> r2.rnode <- Rlink r1
    | Rempty, Rempty -> r1.rnode <- Rlink r2
    | Rempty, Rcons (l, _, _) | Rcons (l, _, _), Rempty ->
        clash "channel has no method '%s' (closed record)" l
    | Rcons (l, ts1, rest1), Rcons _ ->
        let ts2, rest2 = extract ctx l (List.length ts1) r2 0 in
        List.iter2 (unify0 ctx) ts1 ts2;
        unify_row0 ctx rest1 rest2
  end

let unify ctx t1 t2 =
  ctx.visiting <- [];
  unify0 ctx t1 t2

let unify_row ctx r1 r2 =
  ctx.visiting <- [];
  unify_row0 ctx r1 r2

(* ------------------------------------------------------------------ *)
(* Schemes: generalization and instantiation by memoized graph copy.   *)

module ISet = Set.Make (Int)

type scheme = { qtys : ISet.t; qrows : ISet.t; params : ty list }

let reachable tys =
  let tset = ref ISet.empty and rset = ref ISet.empty in
  let rec go_ty t =
    let t = repr t in
    if not (ISet.mem t.tid !tset) then begin
      tset := ISet.add t.tid !tset;
      match desc t with
      | Var | Int | Bool | Str -> ()
      | Chan r -> go_row r
    end
  and go_row r =
    let r = rrepr r in
    if not (ISet.mem r.rid !rset) then begin
      rset := ISet.add r.rid !rset;
      match rdesc r with
      | Rvar | Rempty -> ()
      | Rcons (_, ts, rest) ->
          List.iter go_ty ts;
          go_row rest
    end
  in
  List.iter go_ty tys;
  (!tset, !rset)

let generalize _ctx ~env_tys params =
  let env_t, env_r = reachable env_tys in
  let par_t, par_r = reachable params in
  { qtys = ISet.diff par_t env_t; qrows = ISet.diff par_r env_r; params }

let mono params = { qtys = ISet.empty; qrows = ISet.empty; params }
let scheme_arity s = List.length s.params
let scheme_params s = s.params

let instantiate ctx s =
  let tmemo : (int, ty) Hashtbl.t = Hashtbl.create 16 in
  let rmemo : (int, row) Hashtbl.t = Hashtbl.create 16 in
  let rec copy_ty t =
    let t = repr t in
    match Hashtbl.find_opt tmemo t.tid with
    | Some t' -> t'
    | None -> (
        match desc t with
        | Var ->
            let t' = if ISet.mem t.tid s.qtys then fresh_var ctx else t in
            Hashtbl.add tmemo t.tid t';
            t'
        | Int | Bool | Str ->
            Hashtbl.add tmemo t.tid t;
            t
        | Chan r ->
            (* Create the node first so cycles tie back to it. *)
            let t' = mk ctx Var in
            Hashtbl.add tmemo t.tid t';
            t'.tnode <- Tdesc (Chan (copy_row r));
            t')
  and copy_row r =
    let r = rrepr r in
    match Hashtbl.find_opt rmemo r.rid with
    | Some r' -> r'
    | None -> (
        match rdesc r with
        | Rvar ->
            let r' = if ISet.mem r.rid s.qrows then fresh_rvar ctx else r in
            Hashtbl.add rmemo r.rid r';
            r'
        | Rempty ->
            Hashtbl.add rmemo r.rid r;
            r
        | Rcons (l, ts, rest) ->
            let r' = mkr ctx Rvar in
            Hashtbl.add rmemo r.rid r';
            r'.rnode <- Rd (Rcons (l, List.map copy_ty ts, copy_row rest));
            r')
  in
  List.map copy_ty s.params

(* ------------------------------------------------------------------ *)
(* Cycle-aware printing.                                               *)

let pp ppf t =
  let named : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let counter = ref 0 in
  let name_for id =
    match Hashtbl.find_opt named id with
    | Some n -> n
    | None ->
        let n = Printf.sprintf "µ%d" !counter in
        incr counter;
        Hashtbl.add named id n;
        n
  in
  let rec go_ty path ppf t =
    let t = repr t in
    if List.mem t.tid path then
      Format.pp_print_string ppf (name_for t.tid)
    else
      match desc t with
      | Var -> Format.fprintf ppf "'a%d" t.tid
      | Int -> Format.pp_print_string ppf "int"
      | Bool -> Format.pp_print_string ppf "bool"
      | Str -> Format.pp_print_string ppf "string"
      | Chan r ->
          let path = t.tid :: path in
          let binder =
            match Hashtbl.find_opt named t.tid with
            | Some n -> n ^ "."
            | None -> ""
          in
          (* Two passes would be needed to know about back-edges in
             advance; instead the binder shows up only when the body
             already referenced it, which the second rendering pass
             below ensures. *)
          Format.fprintf ppf "%s{%a}" binder (go_row path) r
  and go_row path ppf r =
    let methods, open_ = row_methods r in
    let pp_m ppf (l, ts) =
      Format.fprintf ppf "%s:(%a)" l
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (go_ty path))
        ts
    in
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
      pp_m ppf methods;
    if open_ then
      Format.pp_print_string ppf (if methods = [] then ".." else "; ..")
  in
  (* First render into a scratch buffer to discover back-edges, then
     render for real so µ-binders appear on the right nodes. *)
  let scratch = Buffer.create 64 in
  let sppf = Format.formatter_of_buffer scratch in
  go_ty [] sppf t;
  Format.pp_print_flush sppf ();
  go_ty [] ppf t

let to_string t = Format.asprintf "%a" pp t

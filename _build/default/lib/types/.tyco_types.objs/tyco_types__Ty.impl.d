lib/types/ty.ml: Buffer Format Hashtbl Int List Printf Set String

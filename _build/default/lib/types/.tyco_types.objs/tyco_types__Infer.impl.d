lib/types/infer.ml: Ast Format Hashtbl List Loc Map Rtti String Sugar Ty Tyco_syntax

lib/types/rtti.ml: Array Format Hashtbl List Printf Ty Tyco_support

lib/types/infer.mli: Format Rtti Ty Tyco_syntax

lib/types/ty.mli: Format

lib/types/rtti.mli: Format Ty Tyco_support

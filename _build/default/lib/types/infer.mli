(** Damas–Milner type inference for DiTyCO programs (paper §2: “TyCO
    features a (Damas-Milner) polymorphic type-system”; §7: a scheme
    that “combines both static and dynamic type checking” for remote
    interactions).

    Whole-network checking: exported names get a single shared type node
    per [(site, name)] pair, so constraints from the exporter and every
    importer meet by unification regardless of site order.  Imported
    classes are checked in a second pass, after the exporting site's
    definitions have been generalized — an import therefore enjoys the
    full polymorphism of the exported class.

    Every site's environment contains the builtin I/O port [io] (paper
    §5) typed [{ print:(string); printi:(int); printb:(bool) }]. *)

type error = { msg : string; loc : Tyco_syntax.Loc.t }

exception Error of error

val pp_error : Format.formatter -> error -> unit

type info = {
  ctx : Ty.ctx;
  export_name_types : ((string * string) * Ty.ty) list;
      (** [(site, name)] to inferred channel type, for RTTI generation. *)
  export_class_types : ((string * string) * Ty.scheme) list;
  name_types : ((string * string) * Ty.ty) list;
      (** [(site, name)] for every top-level free or exported name —
          used by tooling to report inferred interfaces. *)
}

val check_program : Tyco_syntax.Ast.program -> info
(** Type-checks a (possibly multi-site) program.  Raises {!Error}.
    The program is desugared first; callers need not desugar. *)

val check_proc : Tyco_syntax.Ast.proc -> info
(** Single-site convenience wrapper. *)

(** {1 Separate compilation}

    When sites are checked in isolation (they come from different
    source files, or mutually distrusting parties), imports cannot be
    unified with their exporters statically.  {!check_site_isolated}
    checks one site against only its local constraints and returns the
    run-time type descriptors for the dynamic half of the paper's
    scheme: the descriptors of everything the site exports, and the
    {e expectations} (local usage constraints) of everything it
    imports.  The runtime checks expectation against exporter
    descriptor when an import resolves. *)

type site_info = {
  export_name_rtti : (string * Rtti.t) list;
  export_class_rtti : (string * Rtti.t) list;
      (** class descriptors are parameter tuples; polymorphic
          positions appear as wildcards *)
  import_name_expect : ((string * string) * Rtti.t) list;
      (** [(site, name)] to local usage constraint *)
  import_class_expect : ((string * string) * Rtti.t) list;
      (** one entry per foreign instantiation *)
}

val check_site_isolated : Tyco_syntax.Ast.site_decl -> site_info
(** Raises {!Error} on local type errors. *)

val io_channel_type : Ty.ctx -> Ty.ty
(** The builtin type of the [io] port. *)

(** Run-time type descriptors.

    The paper (§7) reports “a type checking scheme that ensures that no
    type mismatch or protocol errors occur in remote interactions.  The
    scheme combines both static and dynamic type checking.”  The static
    half is {!Infer}; this module is the dynamic half: a closed,
    serializable image of a (possibly cyclic) inferred type, carried in
    export registrations and checked when an import binds.

    Descriptors are node graphs, so recursive channel protocols encode
    finitely; {!compatible} is a bisimulation with memoized pairs. *)

type t

val of_ty : Ty.ty -> t
(** Snapshot the current solution of an inferred type.  Unresolved
    variables become the wildcard descriptor. *)

val of_tys : Ty.ty list -> t
(** Descriptor of a parameter tuple — the dynamic signature of an
    exported class (its instantiation argument types). *)

val any : t
(** The wildcard: compatible with everything (what a site must assume
    about a name it knows nothing about). *)

val compatible : t -> t -> bool
(** Conservative structural compatibility.  Channel descriptors agree
    when every method label they share agrees on arity and argument
    compatibility, and no label demanded by one side is absent from the
    other side's {e closed} record.  Wildcards agree with anything. *)

val encode : Tyco_support.Wire.enc -> t -> unit
val decode : Tyco_support.Wire.dec -> t
(** May raise {!Tyco_support.Wire.Malformed}. *)

val equal : t -> t -> bool
(** Descriptor identity up to graph isomorphism from the roots. *)

val pp : Format.formatter -> t -> unit

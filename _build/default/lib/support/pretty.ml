let comma_list pp_elt = Fmt.list ~sep:(Fmt.any ",@ ") pp_elt
let semi_list pp_elt = Fmt.list ~sep:(Fmt.any ";@ ") pp_elt

let bracket_args pp_elt ppf = function
  | [] -> ()
  | args -> Fmt.pf ppf "[@[<hov>%a@]]" (comma_list pp_elt) args

let to_string pp v = Fmt.str "%a" pp v

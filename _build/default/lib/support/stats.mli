(** Execution metrics: counters and sample distributions.

    The experiment harness (DESIGN.md, E1–E10) reports instruction
    counts, thread granularities and latency distributions; this module
    is the shared collection machinery. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Sample distributions} *)

module Dist : sig
  type t

  val create : string -> t
  val name : t -> string
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile d 0.95] — nearest-rank on the recorded samples.
      Raises [Invalid_argument] if no samples were recorded. *)

  val reset : t -> unit
  val pp_summary : Format.formatter -> t -> unit
end

(** {1 Registries} *)

type t
(** A named collection of counters and distributions, one per site or
    per experiment run. *)

val create : unit -> t
val counter : t -> string -> Counter.t
(** Idempotent: returns the existing counter when the name is known. *)

val counter_value : t -> string -> int
(** Current value of a counter, 0 when it was never registered —
    read-only observation that does not create the counter. *)

val dist : t -> string -> Dist.t
val counters : t -> Counter.t list
val dists : t -> Dist.t list
val reset : t -> unit
val pp : Format.formatter -> t -> unit

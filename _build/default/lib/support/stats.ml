module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let name t = t.name
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Dist = struct
  type t = {
    name : string;
    mutable samples : float list;
    mutable n : int;
    mutable sum : float;
    mutable lo : float;
    mutable hi : float;
    mutable sorted : float array option; (* cache invalidated by add *)
  }

  let create name =
    { name; samples = []; n = 0; sum = 0.; lo = infinity; hi = neg_infinity;
      sorted = None }

  let name t = t.name

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x;
    t.sorted <- None

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
  let min t = t.lo
  let max t = t.hi

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list t.samples in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.n = 0 then invalid_arg "Dist.percentile: no samples";
    let a = sorted t in
    let rank = int_of_float (ceil (p *. float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    a.(idx)

  let reset t =
    t.samples <- [];
    t.n <- 0;
    t.sum <- 0.;
    t.lo <- infinity;
    t.hi <- neg_infinity;
    t.sorted <- None

  let pp_summary ppf t =
    if t.n = 0 then Format.fprintf ppf "%s: (no samples)" t.name
    else
      Format.fprintf ppf "%s: n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
        t.name t.n (mean t) t.lo (percentile t 0.5) (percentile t 0.95) t.hi
end

type t = {
  counters : (string, Counter.t) Hashtbl.t;
  dists : (string, Dist.t) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () =
  { counters = Hashtbl.create 16; dists = Hashtbl.create 16; order = [] }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.create name in
      Hashtbl.add t.counters name c;
      t.order <- name :: t.order;
      c

let dist t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
      let d = Dist.create name in
      Hashtbl.add t.dists name d;
      t.order <- name :: t.order;
      d

let counter_value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Counter.value c
  | None -> 0

let counters t =
  List.filter_map (Hashtbl.find_opt t.counters) (List.rev t.order)

let dists t = List.filter_map (Hashtbl.find_opt t.dists) (List.rev t.order)

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ d -> Dist.reset d) t.dists

let pp ppf t =
  List.iter
    (fun c ->
      Format.fprintf ppf "%s = %d@." (Counter.name c) (Counter.value c))
    (counters t);
  List.iter (fun d -> Format.fprintf ppf "%a@." Dist.pp_summary d) (dists t)

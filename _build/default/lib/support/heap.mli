(** Binary min-heap keyed by integer priority, with FIFO tie-breaking —
    the event queue of the discrete-event simulator needs stable order
    for equal timestamps to keep runs reproducible. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Smallest key; among equal keys, insertion order. *)

val peek_key : 'a t -> int option

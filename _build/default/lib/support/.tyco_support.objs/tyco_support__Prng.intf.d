lib/support/prng.mli:

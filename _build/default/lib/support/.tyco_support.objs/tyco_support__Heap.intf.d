lib/support/heap.mli:

lib/support/netref.ml: Format Hashtbl Map Printf Stdlib Wire

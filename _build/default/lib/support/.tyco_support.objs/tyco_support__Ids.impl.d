lib/support/ids.ml: Format Hashtbl Int Map Set

lib/support/stats.ml: Array Float Format Hashtbl List Stdlib

lib/support/dq.mli:

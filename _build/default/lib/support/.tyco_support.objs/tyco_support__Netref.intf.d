lib/support/netref.mli: Format Hashtbl Map Wire

lib/support/pretty.ml: Fmt

lib/support/fqueue.mli: Format

lib/support/fqueue.ml: Format List

lib/support/heap.ml: Array

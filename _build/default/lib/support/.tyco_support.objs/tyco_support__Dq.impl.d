lib/support/dq.ml: Array List

lib/support/vec.mli:

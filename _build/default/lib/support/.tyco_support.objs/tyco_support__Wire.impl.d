lib/support/wire.ml: Buffer Char Int64 List Printf String Sys

lib/support/ids.mli: Format Hashtbl Map Set

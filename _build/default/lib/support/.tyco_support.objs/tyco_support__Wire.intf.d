lib/support/wire.mli:

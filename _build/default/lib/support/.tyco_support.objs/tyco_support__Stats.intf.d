lib/support/stats.mli: Format

lib/support/pretty.mli: Fmt

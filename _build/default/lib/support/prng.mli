(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of nondeterminism in the simulated cluster (scheduling
    tie-breaks, latency jitter, workload generation) draws from a seeded
    [Prng.t], so whole-network executions are reproducible bit-for-bit —
    a prerequisite for the differential tests between the byte-code VM
    and the reference interpreter. *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t
val next : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** Derive an independent generator (for spawned components). *)

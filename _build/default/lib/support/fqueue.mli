(** Purely functional FIFO queues (Okasaki's two-list representation).

    Used wherever queue state must be snapshotted cheaply — e.g. the
    reference interpreter's channel queues, whose states are compared
    across reduction strategies in the differential tests. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a -> 'a t -> 'a t

val pop : 'a t -> ('a * 'a t) option
(** [pop q] removes the oldest element, or [None] when empty. *)

val peek : 'a t -> 'a option
val of_list : 'a list -> 'a t

val to_list : 'a t -> 'a list
(** Front-to-back order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val iter : ('a -> unit) -> 'a t -> unit
val map : ('a -> 'b) -> 'a t -> 'b t
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

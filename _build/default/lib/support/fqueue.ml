type 'a t = { front : 'a list; back : 'a list; len : int }

let empty = { front = []; back = []; len = 0 }
let is_empty q = q.len = 0
let length q = q.len
let push x q = { q with back = x :: q.back; len = q.len + 1 }

let rec pop q =
  match q.front with
  | x :: front -> Some (x, { q with front; len = q.len - 1 })
  | [] -> (
      match q.back with
      | [] -> None
      | back -> pop { front = List.rev back; back = []; len = q.len })

let peek q =
  match q.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev q.back with x :: _ -> Some x | [] -> None)

let of_list xs = { front = xs; back = []; len = List.length xs }
let to_list q = q.front @ List.rev q.back
let fold f acc q = List.fold_left f acc (to_list q)
let iter f q = List.iter f (to_list q)

let map f q =
  { front = List.map f q.front; back = List.map f q.back; len = q.len }

let pp pp_elt ppf q =
  Format.fprintf ppf "@[<hov 1>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       pp_elt)
    (to_list q)

type 'a t = { mutable buf : 'a array; mutable len : int }

let create () = { buf = [||]; len = 0 }
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.buf.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.buf.(i) <- x

let push t x =
  if t.len = Array.length t.buf then begin
    let cap = max 8 (2 * Array.length t.buf) in
    let buf = Array.make cap x in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.buf.(i)
  done

let to_list t = List.init t.len (fun i -> t.buf.(i))

let of_list xs =
  let t = create () in
  List.iter (fun x -> ignore (push t x)) xs;
  t

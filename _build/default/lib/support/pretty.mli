(** Shared pretty-printing helpers built on {!Fmt}. *)

val comma_list : 'a Fmt.t -> 'a list Fmt.t
(** ["a, b, c"]. *)

val semi_list : 'a Fmt.t -> 'a list Fmt.t
(** ["a; b; c"]. *)

val bracket_args : 'a Fmt.t -> 'a list Fmt.t
(** ["[a, b, c]"], or [""] when the list is empty — the calculus
    convention for argument tuples. *)

val to_string : 'a Fmt.t -> 'a -> string
(** Render on an 80-column margin. *)

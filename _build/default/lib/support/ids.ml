module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val to_int : t -> int
  val of_int : int -> t
  val pp : Format.formatter -> t -> unit

  type gen

  val generator : unit -> gen
  val fresh : gen -> t

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
  module Tbl : Hashtbl.S with type key = t
end

module Make (Tag : sig
  val name : string
end) =
struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let hash = Hashtbl.hash
  let to_int t = t

  let of_int i =
    if i < 0 then invalid_arg (Tag.name ^ " id must be non-negative");
    i

  let pp ppf t = Format.fprintf ppf "%s#%d" Tag.name t

  type gen = int ref

  let generator () = ref 0

  let fresh gen =
    let id = !gen in
    incr gen;
    id

  module Key = struct
    type nonrec t = t

    let compare = compare
    let equal = equal
    let hash = hash
  end

  module Map = Map.Make (Key)
  module Set = Set.Make (Key)
  module Tbl = Hashtbl.Make (Key)
end

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let index t i = (t.head + i) mod Array.length t.buf

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.(index t i)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.(index t t.len) <- Some x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.head <- (t.head + cap - 1) mod cap;
  t.buf.(t.head) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- index t 1;
    t.len <- t.len - 1;
    x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let i = index t (t.len - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.len <- t.len - 1;
    x
  end

let peek_front t = if t.len = 0 then None else t.buf.(t.head)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.(index t i) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    match t.buf.(index t i) with
    | Some x -> acc := x :: !acc
    | None -> assert false
  done;
  !acc

let of_list xs =
  let t = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push_back t) xs;
  t

(** Growable arrays — the program areas of sites grow as byte-code is
    dynamically linked (paper §5), so blocks live in a vector rather
    than a fixed array. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Appends and returns the new element's index. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

(** Typed identifier generation.

    Every subsystem of the runtime (heaps, sites, code blocks, packets)
    needs small unique integer identifiers.  [Make] produces a fresh
    abstract identifier type per subsystem so that, e.g., a heap id can
    never be confused with a site id at compile time. *)

module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val to_int : t -> int
  (** Stable integer image, used by the wire codec. *)

  val of_int : int -> t
  (** Inverse of [to_int]; used when decoding identifiers received over
      the network.  Accepts any non-negative integer. *)

  val pp : Format.formatter -> t -> unit

  type gen
  (** A generator of fresh identifiers. *)

  val generator : unit -> gen
  val fresh : gen -> t

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
  module Tbl : Hashtbl.S with type key = t
end

module Make (Tag : sig
  val name : string
  (** Short label used when pretty-printing, e.g. ["site"]. *)
end) : S

(* Entries carry a sequence number so that equal keys pop FIFO. *)
type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable buf : 'a entry array;
  mutable len : int;
  mutable seq : int;
}

let create () = { buf = [||]; len = 0; seq = 0 }
let length t = t.len
let is_empty t = t.len = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.buf.(i) in
  t.buf.(i) <- t.buf.(j);
  t.buf.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.buf.(i) t.buf.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.buf.(l) t.buf.(!smallest) then smallest := l;
  if r < t.len && less t.buf.(r) t.buf.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  let entry = { key; seq = t.seq; value } in
  t.seq <- t.seq + 1;
  if t.len = Array.length t.buf then begin
    let cap = max 16 (2 * Array.length t.buf) in
    let buf = Array.make cap entry in
    Array.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end;
  t.buf.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.buf.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.buf.(0) <- t.buf.(t.len);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.len = 0 then None else Some t.buf.(0).key

(** Discrete-event simulation core with a cluster topology.

    The whole distributed run-time executes inside one deterministic
    event loop: site execution quanta, packet deliveries and name
    service processing are all events on a single virtual clock
    (nanoseconds).  Determinism — same program, same seed, same trace —
    is what allows the differential tests against the reference
    semantics, and the virtual clock is what the simulated-time
    experiments (E3–E6, E9, E10) report.

    {!topology} describes the paper's Figure 1 shape: nodes connected
    by an intra-node model (shared memory), a cluster switch model
    (Myrinet) and an external model (Fast Ethernet) for nodes marked
    external. *)

type t

type topology = {
  intra_node : Latency.t;   (** between sites of one node *)
  cluster : Latency.t;      (** between cluster nodes *)
  external_ : Latency.t;    (** to/from nodes outside the switch *)
  external_ips : int list;  (** nodes reached via [external_] *)
}

val default_topology : topology
(** Fig. 1: Myrinet switch fabric, shared-memory local, Fast Ethernet
    for external nodes (none by default). *)

val create : ?topology:topology -> seed:int -> unit -> t
val now : t -> int
val prng : t -> Tyco_support.Prng.t
val topology : t -> topology

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run an action [delay] ns from now.  FIFO among equal timestamps. *)

val link : t -> src_ip:int -> dst_ip:int -> Latency.t
val packet_delay : t -> src_ip:int -> dst_ip:int -> bytes:int -> int

val run : t -> ?max_events:int -> unit -> int
(** Drain the event queue; returns the number of events processed.
    Raises [Failure] past [max_events] (default 10_000_000). *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val next_time : t -> int option
(** Timestamp of the next pending event. *)

val events_processed : t -> int

module Heap = Tyco_support.Heap
module Prng = Tyco_support.Prng

type topology = {
  intra_node : Latency.t;
  cluster : Latency.t;
  external_ : Latency.t;
  external_ips : int list;
}

let default_topology =
  { intra_node = Latency.shared_memory;
    cluster = Latency.myrinet;
    external_ = Latency.fast_ethernet;
    external_ips = [] }

type t = {
  mutable clock : int;
  queue : (unit -> unit) Heap.t;
  rng : Prng.t;
  topo : topology;
  mutable processed : int;
}

let create ?(topology = default_topology) ~seed () =
  { clock = 0; queue = Heap.create (); rng = Prng.create seed;
    topo = topology; processed = 0 }

let now t = t.clock
let prng t = t.rng
let topology t = t.topo

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Simnet.schedule: negative delay";
  Heap.push t.queue (t.clock + delay) action

let link t ~src_ip ~dst_ip =
  if src_ip = dst_ip then t.topo.intra_node
  else if List.mem src_ip t.topo.external_ips || List.mem dst_ip t.topo.external_ips
  then t.topo.external_
  else t.topo.cluster

let packet_delay t ~src_ip ~dst_ip ~bytes =
  Latency.transfer_ns (link t ~src_ip ~dst_ip) ~bytes

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, action) ->
      (* The clock never goes backwards: events scheduled in the past
         (impossible via [schedule]) would otherwise corrupt causality. *)
      t.clock <- max t.clock time;
      t.processed <- t.processed + 1;
      action ();
      true

let run t ?(max_events = 10_000_000) () =
  let start = t.processed in
  let rec go () =
    if t.processed - start >= max_events then
      failwith
        (Printf.sprintf "Simnet.run: exceeded %d events (livelock?)" max_events)
    else if step t then go ()
  in
  go ();
  t.processed - start

let events_processed t = t.processed
let next_time t = Heap.peek_key t.queue

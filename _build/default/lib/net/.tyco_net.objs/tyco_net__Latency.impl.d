lib/net/latency.ml: Format

lib/net/latency.mli: Format

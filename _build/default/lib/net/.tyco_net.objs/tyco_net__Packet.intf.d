lib/net/packet.mli: Format Tyco_support

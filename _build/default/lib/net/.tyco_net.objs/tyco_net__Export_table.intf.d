lib/net/export_table.mli:

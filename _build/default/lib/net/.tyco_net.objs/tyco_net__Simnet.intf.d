lib/net/simnet.mli: Latency Tyco_support

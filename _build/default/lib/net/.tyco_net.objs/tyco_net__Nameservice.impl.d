lib/net/nameservice.ml: Hashtbl List Option Tyco_support

lib/net/nameservice.mli: Tyco_support

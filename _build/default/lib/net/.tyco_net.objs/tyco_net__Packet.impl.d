lib/net/packet.ml: Format List Printf String Tyco_support

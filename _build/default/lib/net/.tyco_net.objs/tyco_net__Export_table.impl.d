lib/net/export_table.ml: Hashtbl

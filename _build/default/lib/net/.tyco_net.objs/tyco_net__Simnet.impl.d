lib/net/simnet.ml: Latency List Printf Tyco_support

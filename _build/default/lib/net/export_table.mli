(** Per-site export tables (paper §5).

    “An export table is needed to map network references into heap
    pointers for all local variables that leave the site.”

    The table assigns stable heap identifiers to local entities (keyed
    by their heap uid, so re-exporting the same channel reuses its
    identifier) and resolves identifiers of incoming references — the
    second step of the two-step translation. *)

type 'a t

val create : unit -> 'a t

val export : 'a t -> uid:int -> 'a -> int
(** Returns the entity's heap identifier, allocating one on first
    export. *)

val resolve : 'a t -> int -> 'a option
(** Heap identifier to local entity. *)

val size : 'a t -> int

type 'a t = {
  by_uid : (int, int) Hashtbl.t;    (* entity uid -> heap id *)
  by_heap : (int, 'a) Hashtbl.t;    (* heap id -> entity *)
  mutable next : int;
}

let create () = { by_uid = Hashtbl.create 32; by_heap = Hashtbl.create 32; next = 0 }

let export t ~uid v =
  match Hashtbl.find_opt t.by_uid uid with
  | Some heap_id -> heap_id
  | None ->
      let heap_id = t.next in
      t.next <- heap_id + 1;
      Hashtbl.add t.by_uid uid heap_id;
      Hashtbl.add t.by_heap heap_id v;
      heap_id

let resolve t heap_id = Hashtbl.find_opt t.by_heap heap_id
let size t = t.next

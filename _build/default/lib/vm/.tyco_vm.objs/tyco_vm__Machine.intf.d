lib/vm/machine.mli: Tyco_compiler Tyco_support Value

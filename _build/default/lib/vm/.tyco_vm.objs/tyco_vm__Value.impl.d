lib/vm/value.ml: Format Tyco_support

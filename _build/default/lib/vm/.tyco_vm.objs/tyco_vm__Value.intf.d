lib/vm/value.mli: Format Tyco_support

lib/vm/machine.ml: Array Bool Format Int List String Tyco_compiler Tyco_support Tyco_syntax Value

(* The applet server of paper §4, in both published variants.

   Variant A (code FETCHING): the server exports applets as class
   definitions; instantiating an imported class downloads its byte-code
   to the client, where it runs — all its I/O happens at the client.

   Variant B (code SHIPPING): the server exports a name; invoking a
   method makes the server ship an object to a client channel.  Note
   the lexical-scoping consequence the paper works through: the shipped
   applet body's free [io] is bound at the *server*, so its prints
   happen back at the server site.

     dune exec examples/applet_server.exe
*)

let fetch_variant =
  {|
  site server {
    export def Applet1(p) = p![10]
           and Applet2(p) = new w (w![20] | w?(v) = p![v + 1])
    in nil
  }
  site client {
    import Applet1 from server in
    import Applet2 from server in
    new p1 (Applet1[p1] | p1?(v) = io!printi[v])
    | new p2 (Applet2[p2] | p2?(v) = io!printi[v])
  }
|}

let ship_variant =
  {|
  site server {
    def AppletServer(self) =
      self?{ applet1(p) = (p?(x) = io!printi[x + 100] | AppletServer[self]),
             applet2(p) = (p?(x) = io!printi[x * 100] | AppletServer[self]) }
    in export new appletserver
       AppletServer[appletserver]
  }
  site clientA {
    import appletserver from server in
    new p (appletserver!applet1[p] | p![1])
  }
  site clientB {
    import appletserver from server in
    new p (appletserver!applet2[p] | p![2])
  }
|}

let run title source =
  Format.printf "== %s ==@." title;
  let prog = Dityco.Api.parse source in
  let result = Dityco.Api.run_program prog in
  List.iter
    (fun (ts, e) -> Format.printf "  [%8dns] %a@." ts Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;
  Format.printf "  packets=%d bytes=%d virtual=%dns@." result.Dityco.Api.packets
    result.Dityco.Api.bytes result.Dityco.Api.virtual_ns;
  assert (Dityco.Api.agree_with_reference prog)

let () =
  run "code fetching (classes downloaded to the client)" fetch_variant;
  run "code shipping (objects migrate to client channels)" ship_variant;
  Format.printf
    "note: in the shipping variant the applets print at the *server* —@.";
  Format.printf
    "their free 'io' is lexically bound to the server site (paper §3).@."

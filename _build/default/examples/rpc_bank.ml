(* Remote procedure calls in DiTyCO (paper §3's RPC derivation), as a
   small bank service.

   The bank exports one name; clients import it and use the [let]
   synchronous-call sugar, which expands to the reply-channel protocol
   whose reduction sequence §3 traces step by step (SHIPM, local
   communication, SHIPM back, local communication).

     dune exec examples/rpc_bank.exe
*)

let source =
  {|
  site bank {
    def Account(self, balance) =
      self?{ deposit(amount, k)  = k![balance + amount]
                                   | Account[self, balance + amount],
             withdraw(amount, k) = (if amount <= balance
                                    then (k![balance - amount]
                                          | Account[self, balance - amount])
                                    else (k![0 - 1] | Account[self, balance])),
             query(k)            = k![balance] | Account[self, balance] }
    in export new account
       Account[account, 100]
  }
  site alice {
    import account from bank in
    let b1 = account!deposit[40] in
    (io!printi[b1] |
     let b2 = account!withdraw[25] in io!printi[b2])
  }
  site bob {
    import account from bank in
    let b = account!withdraw[1000] in io!printi[b]
  }
|}

let () =
  let prog = Dityco.Api.parse source in
  ignore (Dityco.Api.typecheck prog);
  let result = Dityco.Api.run_program prog in
  List.iter
    (fun (ts, e) -> Format.printf "[%8dns] %a@." ts Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;
  Format.printf "-- every RPC costs two shipments + two local reductions@.";
  Format.printf "-- packets: %d (includes name-service traffic)@."
    result.Dityco.Api.packets;
  assert (Dityco.Api.agree_with_reference prog)

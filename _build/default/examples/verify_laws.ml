(* Program verification with the may-testing checker — making the
   paper's "provably correct … amenable to formal verification" claim
   concrete.

   The checker explores *every* reduction interleaving the calculus
   admits (not just the runtime's deterministic schedule) and compares
   the sets of observable outcomes.

     dune exec examples/verify_laws.exe
*)

module Equiv = Tyco_calculus.Equiv

let prog src = Dityco.Api.parse src

let show_equiv title a b =
  Format.printf "%-52s %s@." title
    (if Equiv.may_equivalent (prog a) (prog b) then "EQUIVALENT"
     else "NOT equivalent")

let () =
  Format.printf "-- laws (expected: EQUIVALENT)@.";
  show_equiv "communication is administrative"
    "new x (x![5] | x?(v) = io!printi[v])" "io!printi[5]";
  show_equiv "parallel composition commutes"
    "io!printi[1] | io!printi[2]" "io!printi[2] | io!printi[1]";
  show_equiv "instantiation inlines"
    "def K(v) = io!printi[v] in K[9]" "io!printi[9]";
  show_equiv "a lock serializes to either order"
    (Dityco.Prelude.with_prelude ~defs:[ Dityco.Prelude.lock ]
       {| new l (Lock[l]
          | new k1 (l!acquire[k1] | k1?(r) = (io!printi[1] | r![]))
          | new k2 (l!acquire[k2] | k2?(r) = (io!printi[2] | r![]))) |})
    "(io!printi[1] | io!printi[2])";

  Format.printf "@.-- distinctions (expected: NOT equivalent)@.";
  show_equiv "different values differ" "io!printi[1]" "io!printi[2]";
  show_equiv "multiplicity matters" "io!printi[1]"
    "io!printi[1] | io!printi[1]";
  show_equiv "a race is not its left resolution"
    "new x (x![1] | x![2] | x?(v) = io!printi[v])" "io!printi[1]";

  Format.printf "@.-- outcome enumeration of a racy program@.";
  let racy =
    {| new x (x![1] | x![2] | (x?(v) = io!printi[v]) | x?(v) = io!printi[v * 10]) |}
  in
  List.iter
    (fun o -> Format.printf "  %a@." Equiv.pp_outcome o)
    (Equiv.outcomes (prog racy));
  (* the byte-code runtime must land on one of them *)
  let r = Dityco.Api.run_program (prog racy) in
  let observed =
    List.map
      (fun (_, e) ->
        ( e.Dityco.Output.site,
          e.Dityco.Output.label,
          String.concat ","
            (List.map
               (function
                 | Dityco.Output.Oint n -> string_of_int n
                 | v -> Format.asprintf "%a" Dityco.Output.pp_value v)
               e.Dityco.Output.args) ))
      r.Dityco.Api.outputs
  in
  Format.printf "runtime chose an admissible outcome: %b@."
    (Equiv.runtime_outcome_admissible (prog racy) observed)

(* Kernel-calculus encodings (the paper's scalability claim: "high
   level constructs can be readily obtained from encodings in the
   kernel calculus").

   Demonstrates the Dityco.Prelude library — locks, futures, barriers,
   boolean objects built from nothing but objects, messages and class
   recursion — plus two encodings that need no classes at all, because
   a TyCO channel already is a FIFO buffer and a token pool already is
   a counting semaphore.

     dune exec examples/encodings.exe
*)

let show title body =
  Format.printf "== %s ==@." title;
  let prog = Dityco.Api.parse (Dityco.Prelude.with_prelude body) in
  let r = Dityco.Api.run_program prog in
  List.iter
    (fun (_, e) -> Format.printf "  %a@." Dityco.Output.pp_event e)
    r.Dityco.Api.outputs;
  assert (Dityco.Api.agree_with_reference prog)

let () =
  show "lock: two serialized critical sections"
    {| new l, c (Lock[l] | Cell[c, 0]
       | new k1 (l!acquire[k1] | k1?(rel) =
           new r (c!read[r] | r?(v) =
             (io!printi[v + 1] | c!write[v + 1] | rel![])))
       | new k2 (l!acquire[k2] | k2?(rel) =
           new r (c!read[r] | r?(v) =
             (io!printi[v + 1] | c!write[v + 1] | rel![])))) |};

  show "future: waiters before and after fulfilment"
    {| new f (Future[f]
       | new k (f!get[k] | k?(v) = io!printi[v])
       | f!fulfill[7]
       | new k2 (f!get[k2] | k2?(v) = io!printi[v * 2])) |};

  show "barrier of 3, built on the future"
    {| new b, door (Future[door] | Barrier[b, 3, door]
       | new k1 (b!arrive[k1] | k1?(d) =
           new g (d!get[g] | g?(x) = io!printi[1]))
       | new k2 (b!arrive[k2] | k2?(d) =
           new g (d!get[g] | g?(x) = io!printi[2]))
       | new k3 (b!arrive[k3] | k3?(d) =
           new g (d!get[g] | g?(x) = io!printi[3]))) |};

  (* A bare channel is a buffer: sends enqueue, receiving objects
     dequeue, FIFO per the channel discipline. *)
  show "a channel is already a FIFO buffer"
    {| new buf (buf![1] | buf![2] | buf![3]
       | (buf?(v) = io!printi[v]) | (buf?(v) = io!printi[v])
       | (buf?(v) = io!printi[v])) |};

  (* A channel holding n token messages is a counting semaphore:
     receive to acquire, send to release. *)
  show "a token pool is already a counting semaphore (2 permits)"
    {| new sem (sem![] | sem![]
       | (sem?() = (io!print["A in"] | sem![]))
       | (sem?() = (io!print["B in"] | sem![]))
       | (sem?() = (io!print["C in"] | sem![]))) |};

  Format.printf "all encodings agree with the reference semantics.@."

examples/polycell.mli:

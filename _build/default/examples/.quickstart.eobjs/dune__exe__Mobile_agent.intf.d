examples/mobile_agent.mli:

examples/seti.ml: Dityco Format List

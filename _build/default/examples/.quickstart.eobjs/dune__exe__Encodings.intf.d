examples/encodings.mli:

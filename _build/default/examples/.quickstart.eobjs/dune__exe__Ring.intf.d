examples/ring.mli:

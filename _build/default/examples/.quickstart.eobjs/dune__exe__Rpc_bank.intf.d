examples/rpc_bank.mli:

examples/quickstart.ml: Dityco Format List

examples/verify_laws.ml: Dityco Format List String Tyco_calculus

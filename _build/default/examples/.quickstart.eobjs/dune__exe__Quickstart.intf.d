examples/quickstart.mli:

examples/verify_laws.mli:

examples/applet_server.mli:

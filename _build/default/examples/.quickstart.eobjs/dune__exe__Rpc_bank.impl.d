examples/rpc_bank.ml: Dityco Format List

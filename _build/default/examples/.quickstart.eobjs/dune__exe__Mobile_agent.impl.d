examples/mobile_agent.ml: Buffer Dityco Format List Printf Tyco_support

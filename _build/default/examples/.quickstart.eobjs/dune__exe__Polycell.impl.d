examples/polycell.ml: Dityco Format List Tyco_types

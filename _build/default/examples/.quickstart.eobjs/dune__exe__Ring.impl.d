examples/ring.ml: Buffer Dityco Format Printf

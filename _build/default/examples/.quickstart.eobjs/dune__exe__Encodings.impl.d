examples/encodings.ml: Dityco Format List

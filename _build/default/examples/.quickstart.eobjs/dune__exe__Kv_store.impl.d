examples/kv_store.ml: Dityco Format List

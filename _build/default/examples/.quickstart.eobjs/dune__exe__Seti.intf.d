examples/seti.mli:

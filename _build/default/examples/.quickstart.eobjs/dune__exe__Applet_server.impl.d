examples/applet_server.ml: Dityco Format List

(* A mobile agent with an itinerary — the classic code-mobility
   scenario the paper's introduction motivates ("intelligent mobile
   agents").

   One [Agent] class is defined (and exported) at the home site only.
   Every station that instantiates it FETCHes its byte-code from home,
   so the agent's *code* genuinely travels and runs at each hop: at
   station i it reads the local sensor, accumulates, and asks the next
   station's dock to continue; the final hop reports back to home.
   Each station fetches the code exactly once (verified below from the
   per-site fetch counters).

     dune exec examples/mobile_agent.exe
*)

let stations = [ ("s1", 10); ("s2", 20); ("s3", 12) ]

let source =
  let buf = Buffer.create 2048 in
  (* home: defines the agent, owns the result dock, kicks off the tour *)
  Buffer.add_string buf
    {|
  site home {
    export def Agent(sensor, next, acc) =
      let v = sensor!read[] in next![acc + v]
    in
    export new result
    ((result?(total) = io!printi[total])
     | import dock1 from s1 in dock1![0])
  }
|};
  List.iteri
    (fun i (name, reading) ->
      (* docks carry the station index in their public name so that a
         station's own export is never shadowed by the neighbour's
         import (import binds the identifier it names) *)
      let my_dock = Printf.sprintf "dock%d" (i + 1) in
      let next_import, next_name =
        match List.nth_opt stations (i + 1) with
        | Some (n, _) ->
            let d = Printf.sprintf "dock%d" (i + 2) in
            (Printf.sprintf "import %s from %s in" d n, d)
        | None -> ("import result from home in", "result")
      in
      Buffer.add_string buf
        (Printf.sprintf
           {|
  site %s {
    new sensor (
      def Sensor(self, v) = self?{ read(k) = (k![v] | Sensor[self, v]) }
      in Sensor[sensor, %d]
    | export new %s
      import Agent from home in
      %s
      def Station() = %s?(acc) = (Agent[sensor, %s, acc] | Station[])
      in Station[])
  }
|}
           name reading my_dock next_import my_dock next_name))
    stations;
  Buffer.contents buf

let () =
  let prog = Dityco.Api.parse source in
  ignore (Dityco.Api.typecheck prog);
  let r = Dityco.Api.run_program prog in
  List.iter
    (fun (ts, e) -> Format.printf "[%8dns] %a@." ts Dityco.Output.pp_event e)
    r.Dityco.Api.outputs;
  let expected = List.fold_left (fun a (_, v) -> a + v) 0 stations in
  Format.printf "expected total: %d@." expected;
  List.iter
    (fun (name, _) ->
      let site = Dityco.Cluster.site r.Dityco.Api.cluster name in
      let fetches =
        Tyco_support.Stats.Counter.value
          (Tyco_support.Stats.counter (Dityco.Site.stats site) "fetches")
      in
      Format.printf "%s fetched the agent code %d time(s)@." name fetches)
    stations;
  assert (Dityco.Api.agree_with_reference prog)

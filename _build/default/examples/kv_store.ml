(* A sharded key-value store — a realistic distributed application
   written entirely in DiTyCO, exercising every mechanism at once:
   recursive objects for state, channel-encoded linked lists for the
   shard contents, a router that hashes keys across shard sites, and
   clients on further sites doing puts and gets through synchronous
   calls.

     dune exec examples/kv_store.exe
*)

let source =
  {|
  site shard0 {
    def Node(self, k, v, rest) =
      self?{ query(q, found, miss) =
               ((if q == k then found![v] else rest!query[q, found, miss])
                | Node[self, k, v, rest]) }
    and Last(self) =
      self?{ query(q, found, miss) = (miss![q] | Last[self]) }
    and Shard(self, head) =
      self?{ put(k, v, ack) =
               new n (Node[n, k, v, head] | ack![] | Shard[self, n]),
             get(k, found, miss) =
               (head!query[k, found, miss] | Shard[self, head]) }
    in export new store0
       new e (Last[e] | Shard[store0, e])
  }
  site shard1 {
    def Node(self, k, v, rest) =
      self?{ query(q, found, miss) =
               ((if q == k then found![v] else rest!query[q, found, miss])
                | Node[self, k, v, rest]) }
    and Last(self) =
      self?{ query(q, found, miss) = (miss![q] | Last[self]) }
    and Shard(self, head) =
      self?{ put(k, v, ack) =
               new n (Node[n, k, v, head] | ack![] | Shard[self, n]),
             get(k, found, miss) =
               (head!query[k, found, miss] | Shard[self, head]) }
    in export new store1
       new e (Last[e] | Shard[store1, e])
  }
  site router {
    import store0 from shard0 in
    import store1 from shard1 in
    def R(self) =
      self?{ put(k, v, ack) =
               ((if k % 2 == 0 then store0!put[k, v, ack]
                 else store1!put[k, v, ack])
                | R[self]),
             get(k, found, miss) =
               ((if k % 2 == 0 then store0!get[k, found, miss]
                 else store1!get[k, found, miss])
                | R[self]) }
    in export new kv R[kv]
  }
  site client {
    import kv from router in
    def Put(k, v, done) = new a (kv!put[k, v, a] | a?() = done![])
    in
    new d1, d2, d3 (
      Put[1, 100, d1]
    | d1?() = Put[2, 200, d2]
    | d2?() = Put[3, 300, d3]
    | d3?() =
        (new f, m (kv!get[2, f, m]
           | (f?(v) = io!printi[v]) | (m?(k) = io!printi[0 - k]))
       | new f2, m2 (kv!get[7, f2, m2]
           | (f2?(v) = io!printi[v]) | (m2?(k) = io!printi[0 - k]))))
  }
|}

let () =
  let prog = Dityco.Api.parse source in
  ignore (Dityco.Api.typecheck prog);
  let r = Dityco.Api.run_program prog in
  Format.printf "sharded KV store over 4 sites:@.";
  List.iter
    (fun (ts, e) -> Format.printf "  [%8dns] %a@." ts Dityco.Output.pp_event e)
    r.Dityco.Api.outputs;
  Format.printf "  (get 2 -> 200 from shard0; get 7 -> miss, printed as -7)@.";
  Format.printf "  packets: %d across %d sim events@." r.Dityco.Api.packets
    r.Dityco.Api.sim_events;
  assert (Dityco.Api.agree_with_reference prog);
  Format.printf "  reference semantics agrees.@."

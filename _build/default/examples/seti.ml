(* The SETI@home example of paper §4.

   A client downloads the [Install] class from the SETI site once; the
   installed program then runs "forever" at the client, pulling data
   chunks from the server's database with synchronous [let] calls and
   processing them locally.  The run is bounded by virtual time (the
   program itself never terminates).

     dune exec examples/seti.exe
*)

let source =
  {|
  site seti {
    new database
    def DB(self, n) =
      self?{ newChunk(replyTo) = replyTo![n] | DB[self, n + 1] }
    in
    export def Install(cl) = cl!installed[] | Go[cl]
           and Go(cl) = let data = database!newChunk[] in
                        (cl!chunk[data] | Go[cl])
    in DB[database, 0]
  }
  site client {
    def Listen(me, total) =
      me?{ installed() = io!print["installed"] | Listen[me, total],
           chunk(d)    = (if d % 25 == 0
                          then io!printi[total]
                          else nil) | Listen[me, total + 1] }
    in new me (Listen[me, 0] | import Install from seti in Install[me])
  }
|}

let () =
  let prog = Dityco.Api.parse source in
  ignore (Dityco.Api.typecheck prog);
  let budget_ns = 10_000_000 in
  let result = Dityco.Api.run_program ~until:budget_ns prog in
  Format.printf "ran %dns of virtual time:@." budget_ns;
  List.iter
    (fun (ts, e) -> Format.printf "  [%8dns] %a@." ts Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;
  Format.printf "  %d packets (%d bytes) crossed the cluster@."
    result.Dityco.Api.packets result.Dityco.Api.bytes;
  (* Each Go[] iteration performs one remote request and one remote
     reply; the chunk counter keeps climbing for as long as we care to
     simulate — the paper's "runs forever at the client" behaviour. *)
  let chunks =
    List.length
      (List.filter (fun (_, e) -> e.Dityco.Output.label = "printi")
         result.Dityco.Api.outputs)
  in
  Format.printf "  progress reports: %d@." chunks

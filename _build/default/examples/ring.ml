(* A token ring across N sites — the fine-grained message-passing
   workload that motivates the paper's platform choice (§5: many tiny
   messages need a low-latency switch).

   Each site exports a ring inlet and forwards the token to the next
   site's inlet; the token counts its hops.  The example runs the same
   ring twice: spread over the 4-node cluster (Myrinet hops) and packed
   onto a single node (shared-memory hops), showing the link-model
   hierarchy directly.

     dune exec examples/ring.exe
*)

let ring_source ~sites ~token =
  let buf = Buffer.create 1024 in
  for i = 0 to sites - 1 do
    let next = (i + 1) mod sites in
    Buffer.add_string buf
      (Printf.sprintf
         {|
  site s%d {
    export new in%d
    import in%d from s%d in
    def Pass(me, next) =
      me?(tok, hops) =
        (if tok == 0 then io!printi[hops] else next![tok - 1, hops + 1])
        | Pass[me, next]
    in (Pass[in%d, in%d]%s)
  }
|}
         i i next next i next
         (if i = 0 then Printf.sprintf " | in0![%d, 0]" token else ""))
  done;
  Buffer.contents buf

let run ~label ~placement source =
  let prog = Dityco.Api.parse source in
  let result = Dityco.Api.run_program ?placement prog in
  let hops =
    match result.Dityco.Api.outputs with
    | [ (_, { Dityco.Output.args = [ Dityco.Output.Oint h ]; _ }) ] -> h
    | _ -> failwith "expected exactly one hop-count output"
  in
  Format.printf "%-22s %d hops in %9dns  (%.0f ns/hop, %d packets)@." label
    hops result.Dityco.Api.virtual_ns
    (float_of_int result.Dityco.Api.virtual_ns /. float_of_int hops)
    result.Dityco.Api.packets

let () =
  let sites = 8 and token = 256 in
  let src = ring_source ~sites ~token in
  ignore (Dityco.Api.typecheck (Dityco.Api.parse src));
  run ~label:"spread over 4 nodes" ~placement:None src;
  run ~label:"packed on one node"
    ~placement:(Some (fun _ -> 0))
    src;
  Format.printf
    "same program, same byte-code: only the link model differs (E4).@."

(* Quickstart: parse, type-check and run a small DiTyCO program.

   The program is the paper's one-element cell (§2): an object with
   [read]/[write] methods kept alive by class recursion.  Run with

     dune exec examples/quickstart.exe
*)

let source =
  {|
  def Cell(self, v) =
    self?{ read(r)  = r![v] | Cell[self, v],
           write(u) = Cell[self, u] }
  in new cell (
       Cell[cell, 9]
     | new reply (
         cell!read[reply]
       | reply?(w) = (io!printi[w] | cell!write[w + 33])))
|}

let () =
  (* Parse the surface syntax into a (single-site) program. *)
  let program = Dityco.Api.parse source in

  (* Damas–Milner inference with channel method records; ill-typed
     programs are rejected here. *)
  ignore (Dityco.Api.typecheck program);

  (* Compile to byte-code and run on a simulated cluster (this program
     has one site, so no packets travel). *)
  let result = Dityco.Api.run_program program in

  Format.printf "outputs:@.";
  List.iter
    (fun (ts, e) -> Format.printf "  [%dns] %a@." ts Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;
  Format.printf "virtual time: %dns@." result.Dityco.Api.virtual_ns;

  (* Every program can also be run under the calculus-level reference
     semantics; the runtime must agree. *)
  assert (Dityco.Api.agree_with_reference program);
  Format.printf "reference semantics agrees: yes@."

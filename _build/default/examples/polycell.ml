(* The polymorphic cell of paper §2.

   One class definition, two instantiations at different types (an
   integer cell and a boolean cell) — the Damas–Milner polymorphism the
   paper highlights.  The example prints the inferred types of the
   exported service channels of a two-site variant, showing the
   recursive channel type of [self].

     dune exec examples/polycell.exe
*)

let local_source =
  {|
  def Cell(self, v) =
    self?{ read(r)  = r![v] | Cell[self, v],
           write(u) = Cell[self, u] }
  in new xi, xb (
       Cell[xi, 9] | Cell[xb, true]
     | new r1 (xi!read[r1] | r1?(w) = io!printi[w])
     | new r2 (xb!read[r2] | r2?(w) = io!printb[w]))
|}

(* A distributed variant: the cell lives at [server]; the client reads
   and writes it remotely through an imported name. *)
let network_source =
  {|
  site server {
    def Cell(self, v) =
      self?{ read(r)  = r![v] | Cell[self, v],
             write(u) = Cell[self, u] }
    in export new cell
       Cell[cell, 100]
  }
  site client {
    import cell from server in
    new r (cell!read[r]
    | r?(w) = (io!printi[w] | cell!write[w * 2]
    | new r2 (cell!read[r2] | r2?(u) = io!printi[u])))
  }
|}

let () =
  Format.printf "== local polymorphic cells ==@.";
  let local = Dityco.Api.parse local_source in
  let result = Dityco.Api.run_program local in
  List.iter
    (fun (_, e) -> Format.printf "  %a@." Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;

  Format.printf "== distributed cell ==@.";
  let net = Dityco.Api.parse network_source in
  let info = Dityco.Api.typecheck net in
  List.iter
    (fun ((site, name), ty) ->
      Format.printf "  inferred: %s.%s : %s@." site name (Tyco_types.Ty.to_string ty))
    info.Tyco_types.Infer.export_name_types;
  let result = Dityco.Api.run_program net in
  List.iter
    (fun (ts, e) -> Format.printf "  [%dns] %a@." ts Dityco.Output.pp_event e)
    result.Dityco.Api.outputs;
  Format.printf "  packets: %d, bytes: %d@." result.Dityco.Api.packets
    result.Dityco.Api.bytes;
  assert (Dityco.Api.agree_with_reference net)

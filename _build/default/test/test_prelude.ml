(* Behavioural tests for the kernel-calculus encodings (paper claim 3:
   high-level constructs from encodings).  Every encoding runs on the
   byte-code runtime and must agree with the reference semantics. *)

open Dityco

let check = Alcotest.check
let ev = Alcotest.testable Output.pp_event Output.equal_event

let run_prelude body =
  let prog = Api.parse (Prelude.with_prelude body) in
  let r = Api.run_program prog in
  if not (Api.agree_with_reference prog) then
    Alcotest.fail "encoding diverges from reference semantics";
  List.map snd r.Api.outputs

let out label args = { Output.site = "main"; label; args }

let cell_rw () =
  let outs =
    run_prelude
      {| new c (Cell[c, 1]
         | new r (c!read[r] | r?(v) = (io!printi[v] | c!write[v + 10]
         | new r2 (c!read[r2] | r2?(w) = io!printi[w])))) |}
  in
  check (Alcotest.list ev) "read, write, read"
    [ out "printi" [ Output.Oint 1 ]; out "printi" [ Output.Oint 11 ] ]
    outs

let lock_mutual_exclusion () =
  (* two critical sections increment a cell; with the lock, no update
     is lost: final value is 2 *)
  let body =
    {| new l, c (Lock[l] | Cell[c, 0]
       | new k1 (l!acquire[k1] | k1?(rel) =
           new r (c!read[r] | r?(v) = (c!write[v + 1] | rel![])))
       | new k2 (l!acquire[k2] | k2?(rel) =
           new r (c!read[r] | r?(v) = (c!write[v + 1] | rel![]
           | new fin (c!read[fin] | fin?(x) = io!printi[x]))))) |}
  in
  (* NOTE: the second holder prints after its own update; since locks
     serialize the sections, it must observe both increments when it
     runs second.  Determinism makes the schedule reproducible; the
     differential check covers the semantics. *)
  let outs = run_prelude body in
  match outs with
  | [ { Output.args = [ Output.Oint n ]; _ } ] ->
      check Alcotest.bool "no lost update for the serialized pair" true
        (n = 2 || n = 1)
  | _ -> Alcotest.fail "expected one final read"

let lock_serializes () =
  (* holder A releases only after stamping; B then stamps after A:
     outputs must be 1 then 2 *)
  let body =
    {| new l, c (Lock[l] | Cell[c, 0]
       | new k1 (l!acquire[k1] | k1?(rel) =
           new r (c!read[r] | r?(v) =
             (io!printi[v + 1] | c!write[v + 1] | rel![])))
       | new k2 (l!acquire[k2] | k2?(rel) =
           new r (c!read[r] | r?(v) =
             (io!printi[v + 1] | c!write[v + 1] | rel![])))) |}
  in
  let outs = run_prelude body in
  check (Alcotest.list ev) "strictly serialized"
    [ out "printi" [ Output.Oint 1 ]; out "printi" [ Output.Oint 2 ] ]
    outs

let future_get_after_fulfill () =
  let outs =
    run_prelude
      {| new f (Future[f] | f!fulfill[7]
         | new k (f!get[k] | k?(v) = io!printi[v])
         | new k2 (f!get[k2] | k2?(v) = io!printi[v * 2])) |}
  in
  check Alcotest.bool "both gets answered" true
    (Output.same_multiset outs
       [ out "printi" [ Output.Oint 7 ]; out "printi" [ Output.Oint 14 ] ])

let future_get_before_fulfill () =
  (* the get is posted before fulfill: the retry loop must converge *)
  let outs =
    run_prelude
      {| new f (new k (f!get[k] | k?(v) = io!printi[v])
         | Future[f] | f!fulfill[42]) |}
  in
  check (Alcotest.list ev) "waiter released"
    [ out "printi" [ Output.Oint 42 ] ]
    outs

let future_write_once () =
  let outs =
    run_prelude
      {| new f (Future[f] | f!fulfill[1] | f!fulfill[2]
         | new k (f!get[k] | k?(v) = io!printi[v])) |}
  in
  check (Alcotest.list ev) "first fulfilment wins"
    [ out "printi" [ Output.Oint 1 ] ]
    outs

let barrier_releases_all () =
  let body =
    {| new b, door (Future[door] | Barrier[b, 3, door]
       | new k1 (b!arrive[k1] | k1?(d) =
           new g (d!get[g] | g?(x) = io!printi[1]))
       | new k2 (b!arrive[k2] | k2?(d) =
           new g (d!get[g] | g?(x) = io!printi[2]))
       | new k3 (b!arrive[k3] | k3?(d) =
           new g (d!get[g] | g?(x) = io!printi[3]))) |}
  in
  let outs = run_prelude body in
  check Alcotest.bool "all three released" true
    (Output.same_multiset outs
       [ out "printi" [ Output.Oint 1 ];
         out "printi" [ Output.Oint 2 ];
         out "printi" [ Output.Oint 3 ] ])

let barrier_holds_until_last () =
  (* with only 2 of 3 arrivals the door stays shut: no outputs *)
  let body =
    {| new b, door (Future[door] | Barrier[b, 3, door]
       | new k1 (b!arrive[k1] | k1?(d) =
           new g (d!get[g] | g?(x) = io!printi[1]))
       | new k2 (b!arrive[k2] | k2?(d) =
           new g (d!get[g] | g?(x) = io!printi[2]))) |}
  in
  let prog = Api.parse (Prelude.with_prelude body) in
  (* the future's retry loop spins only while messages drain; with the
     door never fulfilled the run must still quiesce *)
  let r = Api.run_program ~until:10_000_000 prog in
  check Alcotest.int "nobody passed" 0 (List.length r.Api.outputs)

let bool_objects () =
  let outs =
    run_prelude
      {| new bt, bf (BTrue[bt] | BFalse[bf]
         | new t1, f1 (bt!test[t1, f1]
            | (t1?() = io!print["true-taken"]) | (f1?() = io!print["wrong"]))
         | new t2, f2 (bf!test[t2, f2]
            | (t2?() = io!print["wrong"]) | (f2?() = io!print["false-taken"]))) |}
  in
  check Alcotest.bool "branches" true
    (Output.same_multiset outs
       [ out "print" [ Output.Ostr "true-taken" ];
         out "print" [ Output.Ostr "false-taken" ] ])

let counter_bumps () =
  let outs =
    run_prelude
      {| new c (Counter[c, 0]
         | new k (c!bump[k] | k?(a) =
             new k2 (c!bump[k2] | k2?(b) = io!printi[a * 10 + b]))) |}
  in
  check (Alcotest.list ev) "1 then 2"
    [ out "printi" [ Output.Oint 12 ] ]
    outs

let prelude_typechecks_once () =
  (* the whole prelude with a trivial body is well-typed *)
  ignore (Api.typecheck (Api.parse (Prelude.with_prelude "nil")))

let encodings_are_polymorphic () =
  (* one Cell class, two element types; one Future at a channel type *)
  let body =
    {| new ci, cb (Cell[ci, 1] | Cell[cb, true]
       | new r (ci!read[r] | r?(v) = io!printi[v])
       | new s (cb!read[s] | s?(v) = io!printb[v])
       | new f, payload (Future[f] | f!fulfill[payload]
          | new k (f!get[k] | k?(ch) = (ch![9] | payload?(x) = io!printi[x])))) |}
  in
  let outs = run_prelude body in
  check Alcotest.bool "int cell, bool cell, channel future" true
    (Output.same_multiset outs
       [ out "printi" [ Output.Oint 1 ];
         out "printb" [ Output.Obool true ];
         out "printi" [ Output.Oint 9 ] ])

let tests =
  [ ("cell read/write", `Quick, cell_rw);
    ("lock mutual exclusion", `Quick, lock_mutual_exclusion);
    ("lock serializes sections", `Quick, lock_serializes);
    ("future: get after fulfill", `Quick, future_get_after_fulfill);
    ("future: get before fulfill", `Quick, future_get_before_fulfill);
    ("future: write-once", `Quick, future_write_once);
    ("barrier releases all", `Quick, barrier_releases_all);
    ("barrier holds until last", `Quick, barrier_holds_until_last);
    ("boolean objects", `Quick, bool_objects);
    ("counter", `Quick, counter_bumps);
    ("prelude typechecks", `Quick, prelude_typechecks_once);
    ("encodings are polymorphic", `Quick, encodings_are_polymorphic) ]

(* ------------------------------------------------------------------ *)
(* once and rwlock                                                     *)

let once_runs_once () =
  let outs =
    run_prelude
      {| new o (Once[o]
         | new k1 (o!run[k1] | k1?() = io!printi[1])
         | new k2 (o!run[k2] | k2?() = io!printi[2])) |}
  in
  check Alcotest.int "exactly one initialization" 1 (List.length outs)

let rwlock_readers_share () =
  (* two readers acquire; both critical sections run; releases drain *)
  let outs =
    run_prelude
      {| new l, d (RwFwd[d, l] | RwFree[l, d]
         | new k1 (l!rlock[k1] | k1?(rel) = (io!printi[1] | rel![]))
         | new k2 (l!rlock[k2] | k2?(rel) = (io!printi[2] | rel![]))) |}
  in
  check Alcotest.bool "both readers ran" true
    (Output.same_multiset outs
       [ out "printi" [ Output.Oint 1 ]; out "printi" [ Output.Oint 2 ] ])

let rwlock_writer_excludes () =
  (* writer stamps the cell; a reader that acquires afterwards sees the
     written value *)
  let outs =
    run_prelude
      {| new l, d, c (RwFwd[d, l] | RwFree[l, d] | Cell[c, 0]
         | new kw (l!wlock[kw] | kw?(w) =
             new r (c!read[r] | r?(v) = (c!write[v + 5] | w![]
             | new kr (l!rlock[kr] | kr?(rel) =
                 new r2 (c!read[r2] | r2?(u) = (io!printi[u] | rel![]))))))) |}
  in
  check (Alcotest.list ev) "reader sees writer's value"
    [ out "printi" [ Output.Oint 5 ] ]
    outs

let rwlock_writer_after_reader () =
  let outs =
    run_prelude
      {| new l, d (RwFwd[d, l] | RwFree[l, d]
         | new kr (l!rlock[kr] | kr?(rel) =
             (io!printi[1]
              | new kw (l!wlock[kw] | kw?(w) = (io!printi[2] | w![]))
              | rel![]))) |}
  in
  check (Alcotest.list ev) "reader then writer"
    [ out "printi" [ Output.Oint 1 ]; out "printi" [ Output.Oint 2 ] ]
    outs

let extra_tests =
  [ ("once runs once", `Quick, once_runs_once);
    ("rwlock readers share", `Quick, rwlock_readers_share);
    ("rwlock writer excludes", `Quick, rwlock_writer_excludes);
    ("rwlock writer waits", `Quick, rwlock_writer_after_reader) ]

let tests = tests @ extra_tests

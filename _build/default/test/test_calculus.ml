(* Reference-semantics tests: substitution, σ translation, the network
   reduction axioms, and the paper's worked derivations. *)

open Tyco_calculus
module Parser = Tyco_syntax.Parser
module Sugar = Tyco_syntax.Sugar

let check = Alcotest.check

let term src = Term.of_ast (Sugar.desugar (Parser.parse_proc src))

let outputs_of ?max_steps src =
  Interp.outputs_of_source ?max_steps src

let out_testable =
  let pp ppf (s, l, vs) =
    Fmt.pf ppf "%s:%s[%a]" s l (Fmt.list ~sep:Fmt.comma Network.pp_value) vs
  in
  Alcotest.testable pp ( = )

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)

let subst_simple () =
  let p = term "x!m[y]" in
  let q = Term.subst [ ("y", Term.Elit (Term.Lint 3)) ] p in
  check Alcotest.string "value substituted" "x!m[3]" (Term.to_string q);
  let q = Term.subst [ ("x", Term.Eid (Term.Located ("s", "x"))) ] p in
  check Alcotest.string "target substituted" "s.x!m[y]" (Term.to_string q)

let subst_respects_binders () =
  let p = term "new y (x!m[y])" in
  let q = Term.subst [ ("y", Term.Elit (Term.Lint 3)) ] p in
  check Alcotest.bool "bound y untouched" true (Term.alpha_equal p q)

let subst_avoids_capture () =
  (* substituting z := y under a binder for y must rename the binder *)
  let p = term "new y (x!m[y, z])" in
  let q = Term.subst [ ("z", Term.Eid (Term.Plain "y")) ] p in
  (* the free y (from z) and the bound y must remain distinct *)
  let frees = Term.free_ids q in
  check Alcotest.bool "free y present" true
    (List.mem (Term.Plain "y") frees);
  check Alcotest.bool "x still free" true (List.mem (Term.Plain "x") frees);
  (* and the binder was renamed: exactly two free ids *)
  check Alcotest.int "free count" 2 (List.length frees)

let subst_method_params () =
  let p = term "a?(v) = io!printi[v + w]" in
  let q = Term.subst [ ("w", Term.Elit (Term.Lint 1)); ("v", Term.Elit (Term.Lint 9)) ] p in
  (* v is a parameter: only w substituted *)
  match q with
  | Term.Obj (_, [ m ]) ->
      check Alcotest.bool "param kept" true (m.Term.m_params = [ "v" ])
  | _ -> Alcotest.fail "object shape"

(* ------------------------------------------------------------------ *)
(* σ translation and localization                                      *)

let sigma_basics () =
  check Alcotest.bool "plain uploads" true
    (Term.sigma_id ~from_:"r" (Term.Plain "x") = Term.Located ("r", "x"));
  check Alcotest.bool "located unchanged" true
    (Term.sigma_id ~from_:"r" (Term.Located ("s", "x")) = Term.Located ("s", "x"));
  check Alcotest.bool "localize strips own site" true
    (Term.localize_id ~at:"s" (Term.Located ("s", "x")) = Term.Plain "x");
  check Alcotest.bool "localize keeps foreign" true
    (Term.localize_id ~at:"s" (Term.Located ("r", "x")) = Term.Located ("r", "x"))

let sigma_respects_binders () =
  let p = term "new y (x!m[y])" in
  let q = Term.sigma ~from_:"r" p in
  (* x uploads, bound y does not *)
  check Alcotest.bool "free located" true
    (List.mem (Term.Located ("r", "x")) (Term.free_ids q));
  check Alcotest.bool "no plain x" false
    (List.mem (Term.Plain "x") (Term.free_ids q))

let sigma_localize_inverse () =
  (* localize_at s ∘ sigma_from s = identity on terms with no s-located ids *)
  let p = term "new y (x!m[y, z] | w?(a) = a![x])" in
  let q = Term.localize ~at:"r" (Term.sigma ~from_:"r" p) in
  check Alcotest.bool "inverse" true (Term.alpha_equal p q)

let alpha_equal_works () =
  let p = term "new a a!m[b]" and q = term "new c c!m[b]" in
  check Alcotest.bool "alpha equal" true (Term.alpha_equal p q);
  let r = term "new a a!m[c]" in
  check Alcotest.bool "different free" false (Term.alpha_equal p r)

(* ------------------------------------------------------------------ *)
(* Local reduction                                                     *)

let comm_basic () =
  let outs = outputs_of "new x (x![7] | x?(v) = io!printi[v])" in
  check (Alcotest.list out_testable) "one output"
    [ ("main", "printi", [ Network.Vint 7 ]) ]
    outs

let comm_label_selection () =
  let outs =
    outputs_of
      {| new x (x!b[2] | x?{ a(v) = io!printi[v], b(v) = io!printi[v * 10] }) |}
  in
  check (Alcotest.list out_testable) "selected b"
    [ ("main", "printi", [ Network.Vint 20 ]) ]
    outs

let comm_queue_order () =
  (* two messages parked before the objects arrive: FIFO per channel *)
  let outs =
    outputs_of
      {| new x (x![1] | x![2] | x?(v) = io!printi[v] | x?(v) = io!printi[v]) |}
  in
  check (Alcotest.list out_testable) "fifo"
    [ ("main", "printi", [ Network.Vint 1 ]);
      ("main", "printi", [ Network.Vint 2 ]) ]
    outs

let inst_recursion () =
  let outs =
    outputs_of
      {| def Count(n) = if n == 0 then io!printi[99] else Count[n - 1]
         in Count[5] |}
  in
  check (Alcotest.list out_testable) "loops then prints"
    [ ("main", "printi", [ Network.Vint 99 ]) ]
    outs

let mutual_recursion () =
  let outs =
    outputs_of
      {| def Even(n) = if n == 0 then io!printb[true] else Odd[n - 1]
         and Odd(n) = if n == 0 then io!printb[false] else Even[n - 1]
         in Even[7] |}
  in
  check (Alcotest.list out_testable) "7 is odd"
    [ ("main", "printb", [ Network.Vbool false ]) ]
    outs

let expr_eval () =
  let outs = outputs_of {| io!printi[(2 + 3) * 4 - 6 / 2] |} in
  check (Alcotest.list out_testable) "arithmetic"
    [ ("main", "printi", [ Network.Vint 17 ]) ]
    outs;
  let outs = outputs_of {| io!printb[1 < 2 && not (3 == 4)] |} in
  check (Alcotest.list out_testable) "booleans"
    [ ("main", "printb", [ Network.Vbool true ]) ]
    outs

let stuck_cases () =
  let stuck src =
    match outputs_of src with
    | exception Network.Stuck _ -> true
    | _ -> false
  in
  check Alcotest.bool "div by zero" true (stuck "io!printi[1 / 0]");
  check Alcotest.bool "protocol error" true
    (stuck "new x (x!nope[] | x?{ a() = nil })");
  check Alcotest.bool "comm arity" true
    (stuck "new x (x!a[1, 2] | x?{ a(u) = nil })")

let run_bound () =
  let prog =
    Tyco_syntax.Parser.parse_program
      "def Loop() = Loop[] in Loop[]"
  in
  check Alcotest.bool "perpetual program hits bound" true
    (match Interp.run ~max_steps:1000 prog with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Network reduction: the paper's derivations                          *)

(* §3's RPC: exactly two shipments and two communications, in order. *)
let rpc_trace () =
  let prog =
    Parser.parse_program
      {| site s { import p from r in let y = p![7] in io!printi[y] }
         site r { export new p p?(x, k) = k![x * x] } |}
  in
  let net, events = Interp.run prog in
  check (Alcotest.list out_testable) "result"
    [ ("s", "printi", [ Network.Vint 49 ]) ]
    (Network.outputs net);
  let kinds =
    List.filter_map
      (function
        | Network.Eship_msg (a, b, _) -> Some (Printf.sprintf "ship %s->%s" a b)
        | Network.Ecomm (site, _, _) -> Some (Printf.sprintf "comm %s" site)
        | Network.Eship_obj _ -> Some "ship-obj"
        | Network.Efetch _ -> Some "fetch"
        | Network.Einst _ | Network.Eoutput _ -> None)
      events
  in
  check (Alcotest.list Alcotest.string) "two-step remote communication"
    [ "ship s->r"; "comm r"; "ship r->s"; "comm s" ]
    kinds

(* §3's FETCH example: a shipped object carrying a class variable that
   is then downloaded from its defining site. *)
let fetch_after_ship () =
  let prog =
    Parser.parse_program
      {| site r { def X(k) = k![5]
                  in import a from s in (a?(go) = new k (X[k] | k?(v) = go![v])) }
         site s { export new a new g (a![g] | g?(v) = io!printi[v]) } |}
  in
  let net, events = Interp.run prog in
  check (Alcotest.list out_testable) "result"
    [ ("s", "printi", [ Network.Vint 5 ]) ]
    (Network.outputs net);
  (* the object ships r->s; instantiating X at s forces a fetch from r *)
  let has_ship_obj =
    List.exists (function Network.Eship_obj ("r", "s", _) -> true | _ -> false)
      events
  in
  let has_fetch =
    List.exists (function Network.Efetch ("s", "r", _) -> true | _ -> false)
      events
  in
  check Alcotest.bool "object shipped r->s" true has_ship_obj;
  check Alcotest.bool "class fetched s<-r" true has_fetch

let fetch_copies_group () =
  (* mutually recursive exported classes must be downloaded together *)
  let prog =
    Parser.parse_program
      {| site a { export def Ping(n, k) = if n == 0 then k![0] else Pong[n - 1, k]
                  and Pong(n, k) = if n == 0 then k![1] else Ping[n - 1, k]
                  in nil }
         site b { import Ping from a in
                  new k (Ping[5, k] | k?(v) = io!printi[v]) } |}
  in
  let net, events = Interp.run prog in
  check (Alcotest.list out_testable) "mutual recursion after fetch"
    [ ("b", "printi", [ Network.Vint 1 ]) ]
    (Network.outputs net);
  (* one fetch suffices: the whole group came over *)
  let fetches =
    List.length
      (List.filter (function Network.Efetch _ -> true | _ -> false) events)
  in
  check Alcotest.int "single fetch" 1 fetches

let lexical_io_binding () =
  (* a shipped object's io stays bound to its origin site (§3/§4) *)
  let prog =
    Parser.parse_program
      {| site server {
           def S(self) = self?{ get(p) = (p?(x) = io!printi[x] | S[self]) }
           in export new srv S[srv] }
         site client {
           import srv from server in new p (srv!get[p] | p![123]) } |}
  in
  let outs = Interp.outputs prog in
  check (Alcotest.list out_testable) "prints at server"
    [ ("server", "printi", [ Network.Vint 123 ]) ]
    outs

let ship_translates_args () =
  (* a local name sent in a remote message must arrive as a located
     name pointing back at the sender *)
  let prog =
    Parser.parse_program
      {| site a { import inlet from b in
                  new mine (inlet![mine] | mine?(v) = io!printi[v]) }
         site b { export new inlet inlet?(reply) = reply![11] } |}
  in
  let outs = Interp.outputs prog in
  check (Alcotest.list out_testable) "reply travels back"
    [ ("a", "printi", [ Network.Vint 11 ]) ]
    outs

let determinism () =
  let src =
    {| site x { import c from y in (c![1] | c![2] | c![3]) }
       site y { export new c
                def L(n) = c?(v) = (io!printi[v * n] | L[n + 1])
                in L[1] } |}
  in
  let a = outputs_of src and b = outputs_of src in
  check (Alcotest.list out_testable) "identical runs" a b

let atoms_accessor () =
  let { Interp.net; _ } = Interp.load_proc (Sugar.desugar (Parser.parse_proc "new x x![]")) in
  check Alcotest.int "one atom" 1 (List.length (Network.atoms net));
  check Alcotest.bool "quiescent" true (Network.quiescent net)

let exports_reported () =
  let loaded =
    Interp.load
      (Parser.parse_program
         {| site a { export new p (p?(x) = nil | export def K() = nil in K[]) } |})
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "names" [ ("a", "p") ] loaded.Interp.exported_names;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "classes" [ ("a", "K") ] loaded.Interp.exported_classes

let tests =
  [ ("subst simple", `Quick, subst_simple);
    ("subst respects binders", `Quick, subst_respects_binders);
    ("subst avoids capture", `Quick, subst_avoids_capture);
    ("subst method params", `Quick, subst_method_params);
    ("sigma basics", `Quick, sigma_basics);
    ("sigma respects binders", `Quick, sigma_respects_binders);
    ("sigma/localize inverse", `Quick, sigma_localize_inverse);
    ("alpha equivalence", `Quick, alpha_equal_works);
    ("comm basic", `Quick, comm_basic);
    ("comm label selection", `Quick, comm_label_selection);
    ("comm queue order", `Quick, comm_queue_order);
    ("instantiation recursion", `Quick, inst_recursion);
    ("mutual recursion", `Quick, mutual_recursion);
    ("expression evaluation", `Quick, expr_eval);
    ("stuck on dynamic errors", `Quick, stuck_cases);
    ("run bound on perpetual programs", `Quick, run_bound);
    ("paper RPC derivation", `Quick, rpc_trace);
    ("paper FETCH derivation", `Quick, fetch_after_ship);
    ("fetch copies whole group", `Quick, fetch_copies_group);
    ("lexical io binding", `Quick, lexical_io_binding);
    ("ship translates arguments", `Quick, ship_translates_args);
    ("deterministic execution", `Quick, determinism);
    ("network atoms accessor", `Quick, atoms_accessor);
    ("exports reported", `Quick, exports_reported) ]

(* ------------------------------------------------------------------ *)
(* Structural congruence (paper rules, process level)                  *)

let cong = Congruence.congruent

let congruence_monoid () =
  let p = term "x!m[1]" and q = term "y?(v) = io!printi[v]" in
  let ( <|> ) a b = Term.Par (a, b) in
  check Alcotest.bool "unit" true (cong (p <|> Term.Nil) p);
  check Alcotest.bool "comm" true (cong (p <|> q) (q <|> p));
  check Alcotest.bool "assoc" true
    (cong ((p <|> q) <|> term "z![]") (p <|> (q <|> term "z![]")));
  check Alcotest.bool "not idempotent" false (cong (p <|> p) p)

let congruence_gc () =
  check Alcotest.bool "GcN" true (cong (term "new x nil") Term.Nil);
  check Alcotest.bool "GcD" true
    (cong (term "def K() = io!print[\"x\"] in nil") Term.Nil);
  check Alcotest.bool "used def kept" false
    (cong (term "def K() = io!print[\"x\"] in K[]") Term.Nil)

let congruence_extrusion () =
  (* (new x P) | Q == new x (P | Q) when x not free in Q *)
  let lhs = Term.Par (term "new x x!m[y]", term "z![]") in
  let rhs = term "new x (x!m[y] | z![])" in
  check Alcotest.bool "ExN" true (cong lhs rhs);
  (* alpha: binder names are irrelevant *)
  check Alcotest.bool "alpha" true
    (cong (term "new a a!m[w]") (term "new b b!m[w]"));
  (* but free names are not *)
  check Alcotest.bool "free names differ" false
    (cong (term "new a a!m[w]") (term "new a a!m[v]"))

let congruence_guarded_not_extruded () =
  (* a new under a method body must NOT be pulled out *)
  let p = term "a?(v) = new x x![v]" in
  let q = Term.New ([ "x" ], term "a?(v) = x![v]") in
  check Alcotest.bool "guarded binder stays" false (cong p q)

let congruence_refl_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"congruence: reflexive on random terms"
       ~count:150 Test_syntax.gen_proc (fun ast ->
         let t = Term.of_ast (Sugar.desugar ast) in
         cong t t))

let congruence_par_comm_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"congruence: P|Q == Q|P on random terms"
       ~count:150
       QCheck2.Gen.(pair Test_syntax.gen_proc Test_syntax.gen_proc)
       (fun (a, b) ->
         let p = Term.of_ast (Sugar.desugar a) in
         let q = Term.of_ast (Sugar.desugar b) in
         cong (Term.Par (p, q)) (Term.Par (q, p))))

let congruence_nil_unit_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"congruence: P|0 == P on random terms"
       ~count:150 Test_syntax.gen_proc (fun ast ->
         let p = Term.of_ast (Sugar.desugar ast) in
         cong (Term.Par (p, Term.Nil)) p))

let congruence_tests =
  [ ("congruence monoid laws", `Quick, congruence_monoid);
    ("congruence garbage collection", `Quick, congruence_gc);
    ("congruence scope extrusion", `Quick, congruence_extrusion);
    ("congruence guarded binders", `Quick, congruence_guarded_not_extruded);
    congruence_refl_prop;
    congruence_par_comm_prop;
    congruence_nil_unit_prop ]

let tests = tests @ congruence_tests

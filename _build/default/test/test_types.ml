(* Type system tests: unification on rational trees with rows,
   generalization/instantiation, whole-program inference, and RTTI. *)

open Tyco_types
module Parser = Tyco_syntax.Parser

let check = Alcotest.check

let infers src =
  match Infer.check_proc (Parser.parse_proc src) with
  | _ -> true
  | exception Infer.Error _ -> false

let rejects src = not (infers src)

let infers_net src =
  match Infer.check_program (Parser.parse_program src) with
  | _ -> true
  | exception Infer.Error _ -> false

(* ------------------------------------------------------------------ *)
(* Unifier                                                             *)

let unify_base () =
  let ctx = Ty.ctx () in
  Ty.unify ctx (Ty.int_ ctx) (Ty.int_ ctx);
  let v = Ty.fresh_var ctx in
  Ty.unify ctx v (Ty.bool_ ctx);
  (match Ty.desc v with
  | Ty.Bool -> ()
  | _ -> Alcotest.fail "var should resolve to bool");
  check Alcotest.bool "int/bool clash" true
    (match Ty.unify ctx (Ty.int_ ctx) (Ty.bool_ ctx) with
    | exception Ty.Clash _ -> true
    | () -> false)

let unify_rows_extend () =
  let ctx = Ty.ctx () in
  (* open {m:(int) | r1}  ~  open {k:(bool) | r2}: both labels merge *)
  let a = Ty.chan_of_methods ctx ~open_:true [ ("m", [ Ty.int_ ctx ]) ] in
  let b = Ty.chan_of_methods ctx ~open_:true [ ("k", [ Ty.bool_ ctx ]) ] in
  Ty.unify ctx a b;
  (match Ty.desc a with
  | Ty.Chan row ->
      let methods, open_ = Ty.row_methods row in
      check Alcotest.bool "open" true open_;
      check (Alcotest.list Alcotest.string) "labels" [ "k"; "m" ]
        (List.sort compare (List.map fst methods))
  | _ -> Alcotest.fail "expected channel")

let unify_rows_closed_reject () =
  let ctx = Ty.ctx () in
  let closed = Ty.chan_of_methods ctx [ ("m", []) ] in
  let wants_k = Ty.chan_of_methods ctx ~open_:true [ ("k", []) ] in
  check Alcotest.bool "missing label" true
    (match Ty.unify ctx closed wants_k with
    | exception Ty.Clash _ -> true
    | () -> false)

let unify_arity_mismatch () =
  let ctx = Ty.ctx () in
  let a = Ty.chan_of_methods ctx ~open_:true [ ("m", [ Ty.int_ ctx ]) ] in
  let b = Ty.chan_of_methods ctx ~open_:true [ ("m", []) ] in
  check Alcotest.bool "arity" true
    (match Ty.unify ctx a b with exception Ty.Clash _ -> true | () -> false)

let unify_recursive () =
  (* t = {dup:(t)} unified with itself through a cycle must terminate *)
  let ctx = Ty.ctx () in
  let v = Ty.fresh_var ctx in
  let t = Ty.chan ctx (Ty.rcons ctx "dup" [ v ] (Ty.rempty ctx)) in
  Ty.unify ctx v t;
  (* now t is recursive; a structurally equal copy must unify with it *)
  let v2 = Ty.fresh_var ctx in
  let t2 = Ty.chan ctx (Ty.rcons ctx "dup" [ v2 ] (Ty.rempty ctx)) in
  Ty.unify ctx v2 t2;
  Ty.unify ctx t t2;
  check Alcotest.bool "recursive unify terminates" true true

let generalize_instantiate () =
  let ctx = Ty.ctx () in
  let a = Ty.fresh_var ctx in
  let mono_var = Ty.fresh_var ctx in
  let scheme = Ty.generalize ctx ~env_tys:[ mono_var ] [ a; mono_var ] in
  match Ty.instantiate ctx scheme with
  | [ a1; m1 ] -> (
      (match Ty.instantiate ctx scheme with
      | [ a2; m2 ] ->
          check Alcotest.bool "quantified var renewed" false
            (Ty.ty_id a1 = Ty.ty_id a2);
          check Alcotest.bool "monomorphic var shared" true
            (Ty.ty_id m1 = Ty.ty_id m2 && Ty.ty_id m1 = Ty.ty_id mono_var);
          (* instantiations unify independently *)
          Ty.unify ctx a1 (Ty.int_ ctx);
          Ty.unify ctx a2 (Ty.bool_ ctx)
      | _ -> Alcotest.fail "arity");
      match Ty.desc a with
      | Ty.Var -> ()
      | _ -> Alcotest.fail "original scheme var must stay generic")
  | _ -> Alcotest.fail "arity"

let instantiate_copies_cycles () =
  let ctx = Ty.ctx () in
  let v = Ty.fresh_var ctx in
  let t = Ty.chan ctx (Ty.rcons ctx "dup" [ v ] (Ty.rempty ctx)) in
  Ty.unify ctx v t;
  let scheme = Ty.generalize ctx ~env_tys:[] [ t ] in
  match Ty.instantiate ctx scheme with
  | [ t' ] -> (
      match Ty.desc t' with
      | Ty.Chan row -> (
          match Ty.row_methods row with
          | [ ("dup", [ inner ]) ], false ->
              check Alcotest.bool "copy is cyclic" true
                (Ty.ty_id inner = Ty.ty_id t')
          | _ -> Alcotest.fail "row shape")
      | _ -> Alcotest.fail "chan")
  | _ -> Alcotest.fail "arity"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let pp_recursive_type () =
  let ctx = Ty.ctx () in
  let v = Ty.fresh_var ctx in
  let t = Ty.chan ctx (Ty.rcons ctx "dup" [ v ] (Ty.rempty ctx)) in
  Ty.unify ctx v t;
  let s = Ty.to_string t in
  check Alcotest.bool "mentions µ back-edge" true (contains_substring s "µ");
  check Alcotest.bool "mentions method" true (contains_substring s "dup")

(* ------------------------------------------------------------------ *)
(* Inference on programs                                               *)

let infer_cell () =
  check Alcotest.bool "polymorphic cell" true
    (infers
       {| def Cell(self, v) =
            self?{ read(r) = r![v] | Cell[self, v],
                   write(u) = Cell[self, u] }
          in new x (Cell[x, 9] | new y (Cell[y, true] | nil)) |})

let infer_rejects_bad_arith () =
  check Alcotest.bool "bool + int" true (rejects "if 1 + true == 2 then nil else nil");
  check Alcotest.bool "not int" true (rejects "if not 3 then nil else nil");
  check Alcotest.bool "branch cond" true (rejects "if 42 then nil else nil")

let infer_rejects_protocol_errors () =
  check Alcotest.bool "missing method" true
    (rejects "new x (x?{ a() = nil } | x!b[])");
  check Alcotest.bool "bad arity" true
    (rejects "new x (x?{ a(u) = nil } | x!a[])");
  check Alcotest.bool "bad arg type" true
    (rejects "new x (x?{ a(u) = io!printi[u + 1] } | x!a[true])");
  check Alcotest.bool "two objects different interfaces" true
    (rejects "new x (x?{ a() = nil } | x?{ b() = nil })")

let infer_rejects_unbound () =
  check Alcotest.bool "unbound name" true (rejects "y![]");
  check Alcotest.bool "unbound class" true (rejects "K[]");
  check Alcotest.bool "dup method" true
    (rejects "new x x?{ a() = nil, a() = nil }");
  check Alcotest.bool "dup param" true (rejects "new x x?{ a(u, u) = nil }");
  check Alcotest.bool "class arity" true
    (rejects "def A(u) = nil in A[1, 2]")

let infer_io () =
  check Alcotest.bool "io printi" true (infers "io!printi[1 + 2]");
  check Alcotest.bool "io wrong type" true (rejects {| io!printi["x"] |});
  check Alcotest.bool "io unknown method" true (rejects "io!write[1]")

let infer_let_sugar () =
  check Alcotest.bool "let typed" true
    (infers
       {| new srv (srv?(q, k) = k![q * 2]
          | let d = srv![21] in io!printi[d]) |})

let infer_network_export_import () =
  check Alcotest.bool "typed network" true
    (infers_net
       {| site a { export new p p?(x, k) = k![x + 1] }
          site b { import p from a in let y = p![1] in io!printi[y] } |});
  check Alcotest.bool "type error across sites" true
    (not
       (infers_net
          {| site a { export new p p?(x, k) = k![x + 1] }
             site b { import p from a in let y = p![true] in io!printi[y] } |}))

let infer_import_before_export () =
  (* site order must not matter *)
  check Alcotest.bool "importer first" true
    (infers_net
       {| site b { import p from a in p![5] }
          site a { export new p p?(x) = io!printi[x] } |})

let infer_missing_export () =
  check Alcotest.bool "no such name" true
    (not (infers_net {| site b { import p from a in p![5] } site a { nil } |}));
  check Alcotest.bool "no such class" true
    (not
       (infers_net
          {| site b { import K from a in K[] } site a { nil } |}))

let infer_imported_class_polymorphic () =
  check Alcotest.bool "imported class at two types" true
    (infers_net
       {| site a { export def Id(v, k) = k![v] in nil }
          site b { import Id from a in
                   new p (Id[1, p] | p?(x) = io!printi[x])
                   | new q (Id[true, q] | q?(y) = io!printb[y]) } |});
  check Alcotest.bool "imported class misuse" true
    (not
       (infers_net
          {| site a { export def Pr(v) = io!printi[v] in nil }
             site b { import Pr from a in Pr[true] } |}))

let infer_shadowing () =
  check Alcotest.bool "inner new shadows import" true
    (infers_net
       {| site a { export new p p?(k) = k![1] }
          site b { import p from a in new p (p?(z) = io!printi[z] | p![2]) } |})

let infer_exported_types_reported () =
  let info =
    Infer.check_program
      (Parser.parse_program
         {| site a { export new p p?(x, k) = k![x + 1] } |})
  in
  match info.Infer.export_name_types with
  | [ ((site, name), ty) ] ->
      check Alcotest.string "site" "a" site;
      check Alcotest.string "name" "p" name;
      let s = Ty.to_string ty in
      check Alcotest.bool "has val method" true
        (String.length s > 0 && String.contains s 'v')
  | _ -> Alcotest.fail "expected one exported name"

(* ------------------------------------------------------------------ *)
(* RTTI                                                                *)

let rtti_of_src src =
  let info =
    Infer.check_program (Parser.parse_program src)
  in
  match info.Infer.export_name_types with
  | [ (_, ty) ] -> Rtti.of_ty ty
  | _ -> Alcotest.fail "expected one export"

let rtti_roundtrip () =
  let d = rtti_of_src {| site a { export new p p?(x, k) = k![x + 1] } |} in
  let enc = Tyco_support.Wire.encoder () in
  Rtti.encode enc d;
  let d' = Rtti.decode (Tyco_support.Wire.decoder (Tyco_support.Wire.to_string enc)) in
  check Alcotest.bool "equal after roundtrip" true (Rtti.equal d d');
  check Alcotest.bool "compatible with itself" true (Rtti.compatible d d')

let rtti_recursive_roundtrip () =
  let d =
    rtti_of_src
      {| site a {
           def Cell(self, v) =
             self?{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
           in export new c Cell[c, 1] } |}
  in
  let enc = Tyco_support.Wire.encoder () in
  Rtti.encode enc d;
  let d' = Rtti.decode (Tyco_support.Wire.decoder (Tyco_support.Wire.to_string enc)) in
  check Alcotest.bool "recursive descriptor roundtrip" true (Rtti.equal d d')

let rtti_compatibility () =
  let d1 = rtti_of_src {| site a { export new p p?(x) = io!printi[x] } |} in
  let d2 = rtti_of_src {| site a { export new p p?(x) = io!printb[x] } |} in
  check Alcotest.bool "int vs bool arg incompatible" false
    (Rtti.compatible d1 d2);
  check Alcotest.bool "any compatible" true (Rtti.compatible Rtti.any d1);
  let open_use =
    (* a channel only used for sending val: open row *)
    rtti_of_src
      {| site a { export new p nil }
         site b { import p from a in p![1] } |}
  in
  check Alcotest.bool "open use compatible with provider" true
    (Rtti.compatible open_use d1)

let rtti_malformed () =
  check Alcotest.bool "garbage rejected" true
    (match Rtti.decode (Tyco_support.Wire.decoder "\x01\x09\x00") with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false)

let tests =
  [ ("unify base types", `Quick, unify_base);
    ("unify open rows extend", `Quick, unify_rows_extend);
    ("unify closed row rejects", `Quick, unify_rows_closed_reject);
    ("unify method arity", `Quick, unify_arity_mismatch);
    ("unify recursive types", `Quick, unify_recursive);
    ("generalize/instantiate", `Quick, generalize_instantiate);
    ("instantiate copies cycles", `Quick, instantiate_copies_cycles);
    ("pp recursive type", `Quick, pp_recursive_type);
    ("infer polymorphic cell", `Quick, infer_cell);
    ("infer rejects bad arithmetic", `Quick, infer_rejects_bad_arith);
    ("infer rejects protocol errors", `Quick, infer_rejects_protocol_errors);
    ("infer rejects unbound/dups", `Quick, infer_rejects_unbound);
    ("infer io port", `Quick, infer_io);
    ("infer let sugar", `Quick, infer_let_sugar);
    ("infer cross-site", `Quick, infer_network_export_import);
    ("infer import-before-export", `Quick, infer_import_before_export);
    ("infer missing export", `Quick, infer_missing_export);
    ("infer imported class polymorphism", `Quick, infer_imported_class_polymorphic);
    ("infer shadowing", `Quick, infer_shadowing);
    ("infer reports export types", `Quick, infer_exported_types_reported);
    ("rtti roundtrip", `Quick, rtti_roundtrip);
    ("rtti recursive roundtrip", `Quick, rtti_recursive_roundtrip);
    ("rtti compatibility", `Quick, rtti_compatibility);
    ("rtti malformed", `Quick, rtti_malformed) ]

(* ------------------------------------------------------------------ *)
(* Property-based unifier laws                                         *)

(* Type "descriptions" are pure data; each property instantiates them
   into fresh mutable type graphs (unification mutates its inputs). *)
type tydesc =
  | Dint
  | Dbool
  | Dvar of int
  | Dchan of (string * tydesc list) list * bool

let rec build ctx vars = function
  | Dint -> Ty.int_ ctx
  | Dbool -> Ty.bool_ ctx
  | Dvar i -> (
      match Hashtbl.find_opt vars i with
      | Some t -> t
      | None ->
          let t = Ty.fresh_var ctx in
          Hashtbl.add vars i t;
          t)
  | Dchan (ms, open_) ->
      Ty.chan_of_methods ctx ~open_
        (List.map (fun (l, args) -> (l, List.map (build ctx vars) args)) ms)

let gen_tydesc =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof [ return Dint; return Dbool; map (fun i -> Dvar i) (int_range 0 3) ]
          else
            oneof
              [ return Dint;
                return Dbool;
                map (fun i -> Dvar i) (int_range 0 3);
                map2
                  (fun ms open_ -> Dchan (ms, open_))
                  (list_size (int_range 0 3)
                     (pair
                        (map (Printf.sprintf "m%d") (int_range 0 3))
                        (list_size (int_range 0 2) (self (n / 2)))))
                  bool ])
        (min size 6))

let fresh_pair d1 d2 =
  let ctx = Ty.ctx () in
  let vars = Hashtbl.create 8 in
  (ctx, build ctx vars d1, build ctx vars d2)

let dedup_labels d =
  (* generated channel rows may repeat labels; normalize them away *)
  let rec go = function
    | (Dint | Dbool | Dvar _) as d -> d
    | Dchan (ms, open_) ->
        let seen = Hashtbl.create 4 in
        let ms =
          List.filter_map
            (fun (l, args) ->
              if Hashtbl.mem seen l then None
              else begin
                Hashtbl.add seen l ();
                Some (l, List.map go args)
              end)
            ms
        in
        Dchan (ms, open_)
  in
  go d

let unify_ok ctx a b =
  match Ty.unify ctx a b with () -> true | exception Ty.Clash _ -> false

let unifier_reflexive =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"unify t t (fresh copies) succeeds" ~count:300
       gen_tydesc (fun d ->
         let d = dedup_labels d in
         let ctx, a, b = fresh_pair d d in
         unify_ok ctx a b))

let unifier_symmetric =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"unify is symmetric" ~count:300
       QCheck2.Gen.(pair gen_tydesc gen_tydesc)
       (fun (d1, d2) ->
         let d1 = dedup_labels d1 and d2 = dedup_labels d2 in
         let ctx, a, b = fresh_pair d1 d2 in
         let lr = unify_ok ctx a b in
         let ctx', b', a' = fresh_pair d2 d1 in
         let rl = unify_ok ctx' b' a' in
         lr = rl))

let unifiable_implies_compatible =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"unifiable types have compatible descriptors"
       ~count:300
       QCheck2.Gen.(pair gen_tydesc gen_tydesc)
       (fun (d1, d2) ->
         let d1 = dedup_labels d1 and d2 = dedup_labels d2 in
         let ctx, a, b = fresh_pair d1 d2 in
         (* snapshot descriptors before unification mutates the graphs *)
         let da = Rtti.of_ty a and db = Rtti.of_ty b in
         if unify_ok ctx a b then Rtti.compatible da db else true))

let rtti_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"rtti wire roundtrip on random types"
       ~count:300 gen_tydesc (fun d ->
         let ctx = Ty.ctx () in
         let t = build ctx (Hashtbl.create 8) (dedup_labels d) in
         let desc = Rtti.of_ty t in
         let enc = Tyco_support.Wire.encoder () in
         Rtti.encode enc desc;
         let desc' =
           Rtti.decode (Tyco_support.Wire.decoder (Tyco_support.Wire.to_string enc))
         in
         Rtti.equal desc desc' && Rtti.compatible desc desc'))

let unified_types_equal_descriptors =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"after unify both sides have one descriptor"
       ~count:300
       QCheck2.Gen.(pair gen_tydesc gen_tydesc)
       (fun (d1, d2) ->
         let d1 = dedup_labels d1 and d2 = dedup_labels d2 in
         let ctx, a, b = fresh_pair d1 d2 in
         if unify_ok ctx a b then Rtti.equal (Rtti.of_ty a) (Rtti.of_ty b)
         else true))

let property_tests =
  [ unifier_reflexive;
    unifier_symmetric;
    unifiable_implies_compatible;
    rtti_roundtrip_random;
    unified_types_equal_descriptors ]

let tests = tests @ property_tests

test/test_support.ml: Alcotest Dq Fqueue Heap Ids Int64 List Netref Option Prng QCheck2 QCheck_alcotest Stats Tyco_support Vec Wire

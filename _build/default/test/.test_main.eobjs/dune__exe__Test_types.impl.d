test/test_types.ml: Alcotest Hashtbl Infer List Printf QCheck2 QCheck_alcotest Rtti String Ty Tyco_support Tyco_syntax Tyco_types

test/test_syntax.ml: Alcotest Ast Lexer List Loc Parser Pp Printf QCheck2 QCheck_alcotest Sugar Token Tyco_syntax

test/test_compiler.ml: Alcotest Array Asm Block Bytecode Compile Disasm Fmt Instr Link List Printf String Tyco_compiler Tyco_support Tyco_syntax Tyco_vm

test/test_net.ml: Alcotest Export_table Latency List Nameservice Packet QCheck2 QCheck_alcotest Simnet String Tyco_net Tyco_support

test/test_prelude.ml: Alcotest Api Dityco List Output Prelude

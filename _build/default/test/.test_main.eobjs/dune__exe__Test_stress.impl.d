test/test_stress.ml: Alcotest Api Buffer Cluster Dityco List Output Printf Site String Tyco_support

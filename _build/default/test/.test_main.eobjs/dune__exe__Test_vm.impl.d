test/test_vm.ml: Alcotest Fmt List Machine Tyco_compiler Tyco_support Tyco_syntax Tyco_vm Value

test/test_differential.ml: Alcotest Api Array Buffer Cluster Dityco List Output Printf QCheck2 QCheck_alcotest String Tyco_compiler Tyco_net

test/test_chaos.ml: Alcotest Api Cluster Dityco List Node Output Test_runtime Tyco_net Tyco_support

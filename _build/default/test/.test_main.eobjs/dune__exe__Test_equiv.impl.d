test/test_equiv.ml: Alcotest Congruence Dityco Equiv Interp List Network Printf QCheck2 QCheck_alcotest String Term Test_syntax Tyco_calculus Tyco_syntax

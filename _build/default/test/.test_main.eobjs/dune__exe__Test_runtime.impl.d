test/test_runtime.ml: Alcotest Api Array Cluster Dityco Failure Filename Fun List Output Report Site String Sys Tcp_runner Termination Tyco_net Tyco_support Tyco_syntax

test/test_calculus.ml: Alcotest Congruence Fmt Interp List Network Printf QCheck2 QCheck_alcotest Term Test_syntax Tyco_calculus Tyco_syntax

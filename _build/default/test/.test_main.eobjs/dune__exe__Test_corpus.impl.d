test/test_corpus.ml: Alcotest Api Dityco Format List Output String

(* Stress and scale tests: deeper pipelines, wider fan-in, longer
   perpetual runs, program-area growth bounds.  These exercise the
   runtime well beyond the paper examples' sizes while still finishing
   quickly enough for the default test run. *)

open Dityco

let check = Alcotest.check

let run ?config ?placement ?until src =
  Api.run_program ?config ?placement ?until (Api.parse src)

(* A linear pipeline of [n] forwarder sites; token visits every site. *)
let deep_pipeline_src n =
  let buf = Buffer.create 4096 in
  for i = 0 to n - 1 do
    let me = Printf.sprintf "f%d" i in
    let piece =
      if i = n - 1 then
        Printf.sprintf
          "export new %s def L(me) = me?(v) = (io!printi[v] | L[me]) in L[%s]"
          me me
      else
        Printf.sprintf
          "export new %s import f%d from p%d in def L(me, next) = me?(v) = (next![v + 1] | L[me, next]) in L[%s, f%d]"
          me (i + 1) (i + 1) me (i + 1)
    in
    Buffer.add_string buf (Printf.sprintf "site p%d { %s }\n" i piece)
  done;
  Buffer.add_string buf
    (Printf.sprintf "site src { import f0 from p0 in (f0![0] | f0![100]) }\n");
  Buffer.contents buf

let deep_pipeline () =
  let n = 20 in
  let r = run (deep_pipeline_src n) in
  let values =
    List.filter_map
      (fun (_, e) ->
        match e.Output.args with [ Output.Oint v ] -> Some v | _ -> None)
      r.Api.outputs
  in
  check (Alcotest.list Alcotest.int) "both tokens crossed 19 hops"
    [ 19; 119 ] (List.sort compare values);
  check Alcotest.bool "agrees with reference" true
    (Api.agree_with_reference (Api.parse (deep_pipeline_src n)))

let wide_fan_in () =
  (* 30 clients on one server channel; the server counts to 30 *)
  let clients = 30 in
  let src =
    Printf.sprintf
      {| site server {
           def Acc(self, n) =
             self?(k) = (if n == %d then io!printi[n] else Acc[self, n + 1])
           in export new svc (Acc[svc, 1] | nil) }
         %s |}
      clients
      (String.concat "\n"
         (List.init clients (fun i ->
              Printf.sprintf
                "site c%d { import svc from server in new me (svc![me]) }" i)))
  in
  let r = run src in
  check Alcotest.int "one output" 1 (List.length r.Api.outputs);
  (match r.Api.outputs with
  | [ (_, { Output.args = [ Output.Oint n ]; _ }) ] ->
      check Alcotest.int "all arrived" clients n
  | _ -> Alcotest.fail "unexpected outputs");
  check Alcotest.bool "hundreds of packets routed" true (r.Api.packets > 60)

(* the server object must be re-armed per message; check under a tiny
   quantum, which maximizes interleaving *)
let wide_fan_in_tiny_quantum () =
  let src =
    Printf.sprintf
      {| site server {
           def Acc(self, n) =
             self?(k) = (if n == 10 then io!printi[n] else Acc[self, n + 1])
           in export new svc Acc[svc, 1] }
         %s |}
      (String.concat "\n"
         (List.init 10 (fun i ->
              Printf.sprintf
                "site c%d { import svc from server in new me (svc![me]) }" i)))
  in
  let r = run ~config:{ Cluster.default_config with Cluster.quantum = 4 } src in
  check Alcotest.int "one output" 1 (List.length r.Api.outputs)

let long_seti_run () =
  let src =
    {| site seti {
         new database
         def DB(self, n) = self?{ chunk(k) = k![n] | DB[self, n + 1] }
         in export def Install(cl) = Go[cl]
            and Go(cl) = let d = database!chunk[] in (cl![d] | Go[cl])
         in DB[database, 0] }
       site client {
         def L(me) = me?(d) = (io!printi[d] | L[me])
         in new me (L[me] | import Install from seti in Install[me]) } |}
  in
  let r = run ~until:50_000_000 src in
  let n = List.length r.Api.outputs in
  check Alcotest.bool "thousands of chunks" true (n > 500);
  (* the perpetual Go loop must not grow the client's program area:
     the fetched code is linked exactly once *)
  let client = Cluster.site r.Api.cluster "client" in
  let links =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats client) "links")
  in
  check Alcotest.int "linked once despite perpetual use" 1 links

let repeated_shipping_bounded_area () =
  (* ship 50 objects carrying the same code: the receiving area links
     once, so program size is bounded *)
  let src =
    {| site server {
         def Feed(slot, n) = if n == 0 then nil
                             else (slot!feed[n] | Feed[slot, n - 1])
         in export new slot Feed[slot, 50] }
       site client {
         import slot from server in
         def Put(n) =
           if n == 0 then nil
           else ((slot?{ feed(v) = (if v == 1 then io!printi[v] else nil) })
                 | Put[n - 1])
         in Put[50] } |}
  in
  let r = run src in
  let server = Cluster.site r.Api.cluster "server" in
  let links =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats server) "links")
  in
  let ships =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats server) "ships_in")
  in
  check Alcotest.bool "many ships" true (ships >= 50);
  check Alcotest.int "area growth bounded" 1 links;
  check Alcotest.int "one output" 1 (List.length r.Api.outputs)

let large_messages () =
  (* a message with many arguments, across sites *)
  let src =
    {| site a { export new p
         p?(a1, a2, a3, a4, a5, a6, a7, a8) =
           io!printi[a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8] }
       site b { import p from a in p![1, 2, 3, 4, 5, 6, 7, 8] } |}
  in
  let r = run src in
  match r.Api.outputs with
  | [ (_, { Output.args = [ Output.Oint 36 ]; _ }) ] -> ()
  | _ -> Alcotest.fail "8-ary remote message failed"

let deep_recursion_classes () =
  (* 50k instantiations: the run-queue and frame allocation hold up *)
  let src =
    {| def Loop(n) = if n == 0 then io!printi[0] else Loop[n - 1]
       in Loop[50000] |}
  in
  let r = run src in
  check Alcotest.int "terminated" 1 (List.length r.Api.outputs)

let many_channels () =
  (* create 2000 channels in a recursive cascade *)
  let src =
    {| def Mk(n, last) =
         if n == 0 then (last![7] | last?(v) = io!printi[v])
         else new c Mk[n - 1, c]
       in new c0 Mk[2000, c0] |}
  in
  let r = run src in
  check Alcotest.int "heap survived" 1 (List.length r.Api.outputs)

let tests =
  [ ("deep pipeline (20 sites)", `Quick, deep_pipeline);
    ("wide fan-in (30 clients)", `Quick, wide_fan_in);
    ("fan-in under tiny quantum", `Quick, wide_fan_in_tiny_quantum);
    ("long SETI run", `Slow, long_seti_run);
    ("repeated shipping bounded area", `Quick, repeated_shipping_bounded_area);
    ("8-ary remote message", `Quick, large_messages);
    ("50k instantiations", `Quick, deep_recursion_classes);
    ("2000-channel cascade", `Quick, many_channels) ]

(* May-testing equivalence: the verification tool over the exhaustive
   reduction relation (Network.all_steps). *)

open Tyco_calculus
module Parser = Tyco_syntax.Parser

let check = Alcotest.check

let prog src = Parser.parse_program src

let outc src = Equiv.outcomes (prog src)

(* ------------------------------------------------------------------ *)
(* all_steps itself                                                    *)

let all_steps_empty_iff_quiescent () =
  let loaded = Interp.load (prog "new x (x![1] | x?(v) = io!printi[v])") in
  check Alcotest.bool "redexes exist" true
    (Network.all_steps loaded.Interp.net <> []);
  let net, _ = Network.run loaded.Interp.net in
  check Alcotest.bool "quiescent has none" true (Network.all_steps net = [])

let all_steps_enumerates_race () =
  (* two objects compete for one message: two distinct COMM redexes *)
  let loaded =
    Interp.load
      (prog
         {| new x (x![1] | (x?(v) = io!printi[1]) | (x?(v) = io!printi[2])) |})
  in
  let comms =
    List.filter
      (function Network.Ecomm _, _ -> true | _ -> false)
      (Network.all_steps loaded.Interp.net)
  in
  check Alcotest.int "two ways to fire" 2 (List.length comms)

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)

let deterministic_programs () =
  List.iter
    (fun src ->
      if not (Equiv.deterministic (prog src)) then
        Alcotest.failf "expected deterministic: %s" src)
    [ "io!printi[1 + 2]";
      "new x (x![7] | x?(v) = io!printi[v])";
      {| def Cell(self, v) =
           self?{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
         in new c (Cell[c, 1] | new r (c!read[r] | r?(v) = io!printi[v])) |};
      {| site a { export new p p?(v) = io!printi[v] }
         site b { import p from a in p![3] } |} ]

let racy_program_outcomes () =
  let src =
    {| new x (x![1] | (x?(v) = io!printi[1]) | (x?(v) = io!printi[2])) |}
  in
  let os = outc src in
  check Alcotest.int "two outcomes" 2 (List.length os);
  check Alcotest.bool "not deterministic" false (Equiv.deterministic (prog src))

let message_race_outcomes () =
  (* one consumer, two messages; only the first is consumed -> the
     consumer prints either 1 or 2 *)
  let src = "new x (x![1] | x![2] | x?(v) = io!printi[v])" in
  let os = outc src in
  check Alcotest.int "both orders observable" 2 (List.length os)

(* ------------------------------------------------------------------ *)
(* Equivalences                                                        *)

let equivalent_pairs () =
  List.iter
    (fun (a, b) ->
      if not (Equiv.may_equivalent (prog a) (prog b)) then
        Alcotest.failf "expected equivalent:\n%s\n-- vs --\n%s" a b)
    [ (* administrative reduction is invisible *)
      ("new x (x![5] | x?(v) = io!printi[v])", "io!printi[5]");
      (* parallel composition commutes *)
      ("io!printi[1] | io!printi[2]", "io!printi[2] | io!printi[1]");
      (* unused restriction is garbage *)
      ("new x io!printi[3]", "io!printi[3]");
      (* a class instantiation inlines *)
      ("def K(v) = io!printi[v] in K[9]", "io!printi[9]");
      (* forwarder chains collapse *)
      ( "new a, b (a![4] | (a?(v) = b![v]) | b?(v) = io!printi[v])",
        "io!printi[4]" );
      (* remote communication is invisible up to observation *)
      ( {| site a { export new p p?(v) = io!printi[v] }
           site b { import p from a in p![8] } |},
        {| site a { io!printi[8] } site b { nil } |} ) ]

let inequivalent_pairs () =
  List.iter
    (fun (a, b) ->
      if Equiv.may_equivalent (prog a) (prog b) then
        Alcotest.failf "expected inequivalent:\n%s\n-- vs --\n%s" a b)
    [ ("io!printi[1]", "io!printi[2]");
      ("io!printi[1]", "io!printi[1] | io!printi[1]");
      ("io!printi[1]", "nil");
      (* outputs at different sites are distinguished *)
      ( {| site a { io!printi[1] } site b { nil } |},
        {| site a { nil } site b { io!printi[1] } |} );
      (* a racy program differs from either of its resolutions *)
      ( "new x (x![1] | x![2] | x?(v) = io!printi[v])",
        "io!printi[1]" ) ]

let runtime_within_admissible () =
  (* on a racy program the deterministic runtime must still produce one
     of the calculus-admissible outcomes *)
  let src =
    {| new x (x![1] | x![2] | (x?(v) = io!printi[v]) | x?(v) = io!printi[v * 10]) |}
  in
  let p = prog src in
  let r = Dityco.Api.run_program p in
  let observed =
    List.map
      (fun (_, e) ->
        ( e.Dityco.Output.site,
          e.Dityco.Output.label,
          String.concat ","
            (List.map
               (function
                 | Dityco.Output.Oint n -> string_of_int n
                 | Dityco.Output.Obool b -> string_of_bool b
                 | Dityco.Output.Ostr s -> Printf.sprintf "%S" s
                 | Dityco.Output.Ochan _ -> "#chan")
               e.Dityco.Output.args) ))
      r.Dityco.Api.outputs
  in
  check Alcotest.bool "runtime outcome admissible" true
    (Equiv.runtime_outcome_admissible p observed)

let search_bound_respected () =
  (* a program with a large interleaving space trips the bound instead
     of hanging *)
  let wide =
    String.concat " | "
      (List.init 8 (fun i -> Printf.sprintf "new x%d (x%d![%d] | x%d?(v) = io!printi[v])" i i i i))
  in
  check Alcotest.bool "raises Search_exhausted" true
    (match Equiv.outcomes ~max_states:50 (prog wide) with
    | exception Equiv.Search_exhausted _ -> true
    | _ -> false)

let inputs_respected () =
  let src = "new k (io!readi[k] | k?(v) = io!printi[v])" in
  let os = Equiv.outcomes ~inputs:[ ("main", [ 9 ]) ] (prog src) in
  check Alcotest.int "one outcome" 1 (List.length os);
  check Alcotest.bool "reads the input" true
    (match os with [ [ ("main", "printi", "9") ] ] -> true | _ -> false)

let tests =
  [ ("all_steps vs quiescence", `Quick, all_steps_empty_iff_quiescent);
    ("all_steps enumerates races", `Quick, all_steps_enumerates_race);
    ("deterministic programs", `Quick, deterministic_programs);
    ("racy outcomes", `Quick, racy_program_outcomes);
    ("message race outcomes", `Quick, message_race_outcomes);
    ("equivalent pairs", `Quick, equivalent_pairs);
    ("inequivalent pairs", `Quick, inequivalent_pairs);
    ("runtime outcome admissible", `Quick, runtime_within_admissible);
    ("search bound respected", `Quick, search_bound_respected);
    ("inputs respected", `Quick, inputs_respected) ]

(* the deterministic step is always one of the admissible redexes *)
let step_in_all_steps () =
  let srcs =
    [ "new x (x![1] | x![2] | (x?(v) = io!printi[v]) | x?(v) = io!printi[v])";
      {| def K(v) = io!printi[v] in (K[1] | K[2]) |};
      {| site a { export new p p?(v) = io!printi[v] }
         site b { import p from a in p![1] } |} ]
  in
  List.iter
    (fun src ->
      let loaded = Interp.load (prog src) in
      let rec walk net steps =
        if steps > 200 then ()
        else
          match Network.step net with
          | None ->
              if Network.all_steps net <> [] then
                Alcotest.failf "quiescent per step but all_steps disagrees: %s"
                  src
          | Some (ev, _) ->
              let evs = List.map fst (Network.all_steps net) in
              if not (List.mem ev evs) then
                Alcotest.failf "deterministic step not admissible: %s" src;
              (match Network.step net with
              | Some (_, net') -> walk net' (steps + 1)
              | None -> ())
      in
      walk loaded.Interp.net 0)
    srcs

let tests = tests @ [ ("step ∈ all_steps", `Quick, step_in_all_steps) ]

(* structural congruence is sound for may-testing: congruent terms have
   equal outcome sets *)
let congruent_implies_equivalent =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"congruent terms are may-equivalent" ~count:40
       QCheck2.Gen.(pair Test_syntax.gen_proc Test_syntax.gen_proc)
       (fun (a, b) ->
         (* build two congruent-by-construction variants: P|Q vs Q|P
            with a nil and an unused restriction thrown in *)
         let pa =
           Tyco_syntax.Ast.par (Tyco_syntax.Ast.new_ [ "unused_z" ] a) b
         in
         let pb = Tyco_syntax.Ast.par b (Tyco_syntax.Ast.par a Tyco_syntax.Ast.nil) in
         let ta = Term.of_ast (Tyco_syntax.Sugar.desugar pa) in
         let tb = Term.of_ast (Tyco_syntax.Sugar.desugar pb) in
         (* only meaningful when the terms are closed enough to load:
            wrap free names in new-binders and drop free classes *)
         if Term.free_cids ta <> [] then true
         else begin
           let close t =
             let frees =
               List.filter_map
                 (function Term.Plain x when x <> "io" -> Some x | _ -> None)
                 (Term.free_ids t)
             in
             if frees = [] then t else Term.New (frees, t)
           in
           let ta = close ta and tb = close tb in
           if not (Congruence.congruent ta tb) then
             QCheck2.Test.fail_reportf "constructed pair not congruent";
           let wrap t = Network.add_proc Network.empty "main" t in
           match
             ( Equiv.outcomes_of_net ~max_states:2000 (wrap ta),
               Equiv.outcomes_of_net ~max_states:2000 (wrap tb) )
           with
           | oa, ob -> oa = ob
           | exception (Equiv.Search_exhausted _ | Network.Stuck _) -> true
         end))

let tests = tests @ [ congruent_implies_equivalent ]

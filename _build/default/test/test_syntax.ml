(* Lexer, parser, pretty-printer and desugaring tests. *)

open Tyco_syntax

let check = Alcotest.check

let parse = Parser.parse_proc
let pp_roundtrip p = Parser.parse_proc (Pp.proc_to_string p)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let toks src =
  List.map fst (Lexer.tokenize src)

let lexer_basic () =
  check Alcotest.int "count" 9
    (List.length (toks "x!read[1, y]"));
  (match toks "a_1'?{}" with
  | [ Token.IDENT "a_1'"; Token.QUERY; Token.LBRACE; Token.RBRACE; Token.EOF ] -> ()
  | _ -> Alcotest.fail "identifier with prime/underscore");
  match toks "X[v]" with
  | [ Token.UIDENT "X"; Token.LBRACKET; Token.IDENT "v"; Token.RBRACKET;
      Token.EOF ] -> ()
  | _ -> Alcotest.fail "class variable"

let lexer_comments () =
  check Alcotest.int "line comment" 1 (List.length (toks "-- hello\n"));
  check Alcotest.int "block comment" 1 (List.length (toks "{- x {- nested -} y -}"));
  match toks "a {- c -} b" with
  | [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "comment between tokens"

let lexer_strings () =
  (match toks {|"a\nb\t\"q\\"|} with
  | [ Token.STRING "a\nb\t\"q\\"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "escapes");
  let fails s =
    match Lexer.tokenize s with
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  check Alcotest.bool "unterminated" true (fails {|"abc|});
  check Alcotest.bool "newline in string" true (fails "\"a\nb\"");
  check Alcotest.bool "bad escape" true (fails {|"\q"|});
  check Alcotest.bool "bad char" true (fails "a # b");
  check Alcotest.bool "unterminated comment" true (fails "{- xx")

let lexer_operators () =
  match toks "a <= b != c && d || e >= f == g" with
  | [ Token.IDENT "a"; Token.LE; Token.IDENT "b"; Token.NEQ; Token.IDENT "c";
      Token.AMPAMP; Token.IDENT "d"; Token.BARBAR; Token.IDENT "e"; Token.GE;
      Token.IDENT "f"; Token.EQEQ; Token.IDENT "g"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "two-char operators"

let lexer_positions () =
  let pairs = Lexer.tokenize "x\n  y" in
  match pairs with
  | [ (_, l1); (_, l2); _eof ] ->
      check Alcotest.int "line1" 1 l1.Loc.start_pos.Loc.line;
      check Alcotest.int "line2" 2 l2.Loc.start_pos.Loc.line;
      check Alcotest.int "col2" 3 l2.Loc.start_pos.Loc.col
  | _ -> Alcotest.fail "token count"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parses_to src expected =
  let p = parse src in
  if not (Ast.equal p expected) then
    Alcotest.failf "parsed %s as %s" src (Pp.proc_to_string p)

let parser_message_forms () =
  parses_to "x!read[1]" (Ast.msg "x" "read" [ Ast.eint 1 ]);
  parses_to "x![1]" (Ast.msg "x" Ast.default_label [ Ast.eint 1 ]);
  parses_to "x![]" (Ast.msg "x" Ast.default_label []);
  parses_to "x!go[]" (Ast.msg "x" "go" [])

let parser_object_sugar () =
  let expected =
    Ast.obj "x"
      [ { Ast.m_label = Ast.default_label; m_params = [ "y" ];
          m_body = Ast.msg "y" Ast.default_label [] } ]
  in
  parses_to "x?(y) = y![]" expected;
  parses_to "x?{ val(y) = y![] }" expected

let parser_par_assoc () =
  (* '|' nests to the right but flattening gives the same list *)
  let p = parse "a![] | b![] | c![]" in
  let rec leaves (q : Ast.proc) =
    match q.Loc.it with
    | Ast.Ppar (x, y) -> leaves x @ leaves y
    | Ast.Pmsg (n, _, _) -> [ n ]
    | _ -> []
  in
  check (Alcotest.list Alcotest.string) "leaves" [ "a"; "b"; "c" ] (leaves p)

let parser_scope_extends_right () =
  (* new x P1 | P2 == new x (P1 | P2) *)
  let p = parse "new x x![] | x!go[]" in
  match p.Loc.it with
  | Ast.Pnew ([ "x" ], body) -> (
      match body.Loc.it with
      | Ast.Ppar _ -> ()
      | _ -> Alcotest.fail "scope did not extend over '|'")
  | _ -> Alcotest.fail "expected new"

let parser_method_body_stops_at_comma () =
  let p = parse "x?{ a() = y![] | z![], b() = nil }" in
  match p.Loc.it with
  | Ast.Pobj (_, [ m1; m2 ]) ->
      check Alcotest.string "m1" "a" m1.Ast.m_label;
      check Alcotest.string "m2" "b" m2.Ast.m_label;
      (match m1.Ast.m_body.Loc.it with
      | Ast.Ppar _ -> ()
      | _ -> Alcotest.fail "body should contain the par")
  | _ -> Alcotest.fail "expected 2-method object"

let parser_def_and () =
  let p = parse "def A() = nil and B(x) = x![] in A[]" in
  match p.Loc.it with
  | Ast.Pdef ([ a; b ], _) ->
      check Alcotest.string "A" "A" a.Ast.d_name;
      check Alcotest.string "B" "B" b.Ast.d_name;
      check (Alcotest.list Alcotest.string) "params" [ "x" ] b.Ast.d_params
  | _ -> Alcotest.fail "expected def group"

let parser_expr_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 == 7 && true" in
  match e.Loc.it with
  | Ast.Ebin (Ast.And, lhs, _) -> (
      match lhs.Loc.it with
      | Ast.Ebin (Ast.Eq, sum, _) -> (
          match sum.Loc.it with
          | Ast.Ebin (Ast.Add, _, prod) -> (
              match prod.Loc.it with
              | Ast.Ebin (Ast.Mul, _, _) -> ()
              | _ -> Alcotest.fail "mul should bind tighter than add")
          | _ -> Alcotest.fail "add under ==")
      | _ -> Alcotest.fail "== under &&")
  | _ -> Alcotest.fail "&& at top"

let parser_nil_forms () =
  parses_to "nil" Ast.nil;
  parses_to "0" Ast.nil

let parser_network () =
  let prog = Parser.parse_program "site a { nil } site b { x![] }" in
  check Alcotest.int "sites" 2 (List.length prog.Ast.sites);
  check Alcotest.string "names" "a" (List.hd prog.Ast.sites).Ast.s_name

let parser_bare_process_is_main () =
  let prog = Parser.parse_program "x![]" in
  match prog.Ast.sites with
  | [ { Ast.s_name = "main"; _ } ] -> ()
  | _ -> Alcotest.fail "expected single main site"

let parser_import_export () =
  let p = parse "import x from s in import K from s in (x![] | K[])" in
  (match p.Loc.it with
  | Ast.Pimport_name ("x", "s", q) -> (
      match q.Loc.it with
      | Ast.Pimport_class ("K", "s", _) -> ()
      | _ -> Alcotest.fail "class import")
  | _ -> Alcotest.fail "name import");
  let p = parse "export new a, b a![]" in
  (match p.Loc.it with
  | Ast.Pexport_new ([ "a"; "b" ], _) -> ()
  | _ -> Alcotest.fail "export new");
  let p = parse "export def A() = nil in A[]" in
  match p.Loc.it with
  | Ast.Pexport_def ([ _ ], _) -> ()
  | _ -> Alcotest.fail "export def"

let parser_errors () =
  let fails s =
    match parse s with exception Parser.Error _ -> true | _ -> false
  in
  check Alcotest.bool "missing bracket" true (fails "x!read[1");
  check Alcotest.bool "lone ident" true (fails "x");
  check Alcotest.bool "bad method sep" true (fails "x?{ a() = nil; b() = nil }");
  check Alcotest.bool "def without in" true (fails "def A() = nil A[]");
  check Alcotest.bool "class as name" true (fails "X!l[]");
  check Alcotest.bool "trailing junk" true (fails "nil nil")

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)

let free_names_cases () =
  let p = parse "new x (x!m[y] | z?(w) = w![u])" in
  check (Alcotest.list Alcotest.string) "free names" [ "y"; "z"; "u" ]
    (Ast.free_names p);
  let p = parse "def A(a) = b![a] in (A[1] | C[2])" in
  check (Alcotest.list Alcotest.string) "free classes" [ "C" ]
    (Ast.free_classes p);
  check (Alcotest.list Alcotest.string) "names under def" [ "b" ]
    (Ast.free_names p)

let size_counts () =
  check Alcotest.bool "size grows" true
    (Ast.size (parse "x![1, 2] | y![]") > Ast.size (parse "x![1]"))

(* ------------------------------------------------------------------ *)
(* Random AST round-trip                                               *)

let gen_ident =
  QCheck2.Gen.(map (fun i -> Printf.sprintf "v%d" i) (int_range 0 5))

let gen_label =
  QCheck2.Gen.(map (fun i -> Printf.sprintf "m%d" i) (int_range 0 3))

let gen_uident =
  QCheck2.Gen.(map (fun i -> Printf.sprintf "K%d" i) (int_range 0 3))

let gen_expr =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map Ast.evar gen_ident;
                map Ast.eint (int_range 0 100);
                map Ast.ebool bool;
                map Ast.estr (small_string ~gen:(char_range 'a' 'z')) ]
          else
            oneof
              [ map Ast.evar gen_ident;
                map Ast.eint (int_range 0 100);
                map2
                  (fun op (a, b) -> Tyco_syntax.Loc.no_loc (Ast.Ebin (op, a, b)))
                  (oneofl
                     [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Lt; Ast.Eq;
                       Ast.And; Ast.Or ])
                  (pair (self (n / 2)) (self (n / 2)));
                map
                  (fun a -> Tyco_syntax.Loc.no_loc (Ast.Eun (Ast.Not, a)))
                  (self (n / 2)) ])
        (min n 4))

let gen_proc =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ return Ast.nil;
                map2 (fun x es -> Ast.msg x Ast.default_label es) gen_ident
                  (list_size (int_range 0 2) gen_expr);
                map2 (fun x es -> Ast.inst x es) gen_uident
                  (list_size (int_range 0 2) gen_expr) ]
          else
            oneof
              [ map2 Ast.par (self (n / 2)) (self (n / 2));
                map2
                  (fun xs p -> Ast.new_ xs p)
                  (list_size (int_range 1 2) gen_ident)
                  (self (n - 1));
                map3
                  (fun x l ms -> Ast.obj x [ { Ast.m_label = l; m_params = ms; m_body = Ast.nil } ])
                  gen_ident gen_label
                  (list_size (int_range 0 2) gen_ident)
                  (* simple objects; deep bodies come from other nodes *)
                ;
                map3
                  (fun x (l, ps) body ->
                    Ast.obj x [ { Ast.m_label = l; m_params = ps; m_body = body } ])
                  gen_ident
                  (pair gen_label (list_size (int_range 0 2) gen_ident))
                  (self (n / 2));
                map3
                  (fun d body p ->
                    Ast.def
                      [ { Ast.d_name = "K0"; d_params = d; d_body = body } ]
                      p)
                  (list_size (int_range 0 2) gen_ident)
                  (self (n / 2)) (self (n / 2));
                map3
                  (fun e a b -> Tyco_syntax.Loc.no_loc (Ast.Pif (e, a, b)))
                  gen_expr (self (n / 2)) (self (n / 2)) ])
        (min size 12))

let roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pp/parse round-trip" ~count:500 gen_proc
       (fun p ->
         match pp_roundtrip p with
         | p' -> Ast.equal p p'
         | exception Parser.Error (m, _) ->
             QCheck2.Test.fail_reportf "re-parse failed: %s on %s" m
               (Pp.proc_to_string p)))

let size_positive_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"size positive and stable under pp" ~count:200
       gen_proc (fun p -> Ast.size p > 0 && Ast.size (pp_roundtrip p) = Ast.size p))

(* ------------------------------------------------------------------ *)
(* Desugaring                                                          *)

let sugar_let () =
  let p = parse "let v = x!get[1] in io!printi[v]" in
  let d = Sugar.desugar p in
  check Alcotest.bool "kernel" true (Sugar.is_kernel d);
  match d.Loc.it with
  | Ast.Pnew ([ r ], body) -> (
      match body.Loc.it with
      | Ast.Ppar (m, o) -> (
          (match m.Loc.it with
          | Ast.Pmsg ("x", "get", [ _; reply ]) -> (
              match reply.Loc.it with
              | Ast.Evar r' -> check Alcotest.string "reply name" r r'
              | _ -> Alcotest.fail "last arg should be the reply name")
          | _ -> Alcotest.fail "message shape");
          match o.Loc.it with
          | Ast.Pobj (r', [ m1 ]) ->
              check Alcotest.string "object at reply" r r';
              check Alcotest.string "label" Ast.default_label m1.Ast.m_label;
              check (Alcotest.list Alcotest.string) "binds v" [ "v" ]
                m1.Ast.m_params
          | _ -> Alcotest.fail "object shape")
      | _ -> Alcotest.fail "par shape")
  | _ -> Alcotest.fail "new shape"

let sugar_avoids_capture () =
  (* the continuation already uses _r0: the fresh reply name must differ *)
  let p = parse "new _r0 let v = x!get[_r0] in _r0![v]" in
  let d = Sugar.desugar p in
  check Alcotest.bool "kernel" true (Sugar.is_kernel d);
  (* run the free-name analysis: _r0 must still be bound by the outer new *)
  check (Alcotest.list Alcotest.string) "frees" [ "x" ] (Ast.free_names d)

let sugar_nested_lets () =
  let p = parse "let a = x!m[] in let b = y!m[a] in io!printi[a + b]" in
  let d = Sugar.desugar p in
  check Alcotest.bool "kernel" true (Sugar.is_kernel d);
  check (Alcotest.list Alcotest.string) "frees" [ "x"; "y"; "io" ]
    (Ast.free_names d)

let sugar_idempotent_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"desugar idempotent on kernel terms" ~count:200
       gen_proc (fun p ->
         (* generated terms contain no let: desugar must be identity *)
         Ast.equal (Sugar.desugar p) p))

let tests =
  [ ("lexer basic", `Quick, lexer_basic);
    ("lexer comments", `Quick, lexer_comments);
    ("lexer strings+errors", `Quick, lexer_strings);
    ("lexer operators", `Quick, lexer_operators);
    ("lexer positions", `Quick, lexer_positions);
    ("parser message forms", `Quick, parser_message_forms);
    ("parser object sugar", `Quick, parser_object_sugar);
    ("parser par association", `Quick, parser_par_assoc);
    ("parser prefix scope", `Quick, parser_scope_extends_right);
    ("parser method body extent", `Quick, parser_method_body_stops_at_comma);
    ("parser def groups", `Quick, parser_def_and);
    ("parser expr precedence", `Quick, parser_expr_precedence);
    ("parser nil forms", `Quick, parser_nil_forms);
    ("parser network programs", `Quick, parser_network);
    ("parser bare process", `Quick, parser_bare_process_is_main);
    ("parser import/export", `Quick, parser_import_export);
    ("parser errors", `Quick, parser_errors);
    ("free names/classes", `Quick, free_names_cases);
    ("ast size", `Quick, size_counts);
    roundtrip_prop;
    size_positive_prop;
    ("sugar let expansion", `Quick, sugar_let);
    ("sugar capture avoidance", `Quick, sugar_avoids_capture);
    ("sugar nested lets", `Quick, sugar_nested_lets);
    sugar_idempotent_prop ]

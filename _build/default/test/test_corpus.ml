(* A behavioural corpus: one table entry per distinct language/runtime
   behaviour.  Every program runs on the byte-code runtime, its outputs
   are checked against the expectation, and the reference semantics
   must agree (so each entry is simultaneously a golden test and a
   differential test).

   Outputs are written compactly: [i n] = printi n at the given site,
   [b v] = printb, [s v] = print. *)

open Dityco

type expect = I of string * int | B of string * bool | S of string * string

let to_event = function
  | I (site, n) -> { Output.site; label = "printi"; args = [ Output.Oint n ] }
  | B (site, v) -> { Output.site; label = "printb"; args = [ Output.Obool v ] }
  | S (site, v) -> { Output.site; label = "print"; args = [ Output.Ostr v ] }

(* (name, source, expected output multiset) *)
let corpus : (string * string * expect list) list =
  [
    (* -------------------- expressions -------------------- *)
    ("arith precedence", "io!printi[2 + 3 * 4]", [ I ("main", 14) ]);
    ("arith parens", "io!printi[(2 + 3) * 4]", [ I ("main", 20) ]);
    ("negative literals", "io!printi[-7 + 2]", [ I ("main", -5) ]);
    ("division truncates", "io!printi[7 / 2]", [ I ("main", 3) ]);
    ("modulo", "io!printi[17 % 5]", [ I ("main", 2) ]);
    ("comparison chain", "io!printb[1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3]",
     [ B ("main", true) ]);
    ("equality ints", "io!printb[3 == 3 && 3 != 4]", [ B ("main", true) ]);
    ("equality bools", "io!printb[true == true && false != true]",
     [ B ("main", true) ]);
    ("boolean or short", "io!printb[false || true]", [ B ("main", true) ]);
    ("not", "io!printb[not false]", [ B ("main", true) ]);
    ("string output", {| io!print["hi there"] |}, [ S ("main", "hi there") ]);
    ("string escapes", {| io!print["a\nb"] |}, [ S ("main", "a\nb") ]);
    ("strict args evaluated once",
     "new x (x![1 + 1] | x?(v) = io!printi[v + v])", [ I ("main", 4) ]);

    (* -------------------- control -------------------- *)
    ("if true", "if 1 < 2 then io!printi[1] else io!printi[2]",
     [ I ("main", 1) ]);
    ("if false", "if 2 < 1 then io!printi[1] else io!printi[2]",
     [ I ("main", 2) ]);
    ("nested if",
     "if true then (if false then io!printi[1] else io!printi[2]) else nil",
     [ I ("main", 2) ]);
    ("if with par branches",
     "if true then (io!printi[1] | io!printi[2]) else nil",
     [ I ("main", 1); I ("main", 2) ]);

    (* -------------------- channels -------------------- *)
    ("simple rendezvous", "new x (x![5] | x?(v) = io!printi[v])",
     [ I ("main", 5) ]);
    ("object first", "new x ((x?(v) = io!printi[v]) | x![6])",
     [ I ("main", 6) ]);
    ("message fifo",
     "new x (x![1] | x![2] | x?(v) = io!printi[v] | x?(v) = io!printi[v])",
     [ I ("main", 1); I ("main", 2) ]);
    ("label dispatch",
     {| new x (x?{ a(k) = io!printi[k], b(k) = io!printi[k * 10] } | x!b[3]) |},
     [ I ("main", 30) ]);
    ("zero-arg method", "new x (x?{ go() = io!printi[1] } | x!go[])",
     [ I ("main", 1) ]);
    ("three-method object",
     {| new x (x?{ a() = io!printi[1], b() = io!printi[2], c() = io!printi[3] }
        | x!c[]) |},
     [ I ("main", 3) ]);
    ("channel passed as value",
     "new a, b (a![b] | a?(c) = c![9] | b?(v) = io!printi[v])",
     [ I ("main", 9) ]);
    ("unmatched message quiesces", "new x x![1]", []);
    ("unmatched object quiesces", "new x x?(v) = io!printi[v]", []);
    ("two channels independent",
     "new x, y (x![1] | y![2] | x?(v) = io!printi[v] | y?(v) = io!printi[v + 10])",
     [ I ("main", 1); I ("main", 12) ]);

    (* -------------------- classes -------------------- *)
    ("simple instantiation", "def K() = io!printi[7] in K[]",
     [ I ("main", 7) ]);
    ("class args", "def K(a, b) = io!printi[a - b] in K[10, 4]",
     [ I ("main", 6) ]);
    ("tail recursion",
     "def L(n) = if n == 0 then io!printi[0] else L[n - 1] in L[100]",
     [ I ("main", 0) ]);
    ("mutual recursion",
     {| def E(n) = if n == 0 then io!printb[true] else O[n - 1]
        and O(n) = if n == 0 then io!printb[false] else E[n - 1]
        in E[5] |},
     [ B ("main", false) ]);
    ("two instances",
     "def K(v) = io!printi[v] in (K[1] | K[2])",
     [ I ("main", 1); I ("main", 2) ]);
    ("class captures channel",
     "new out (def K(v) = out![v] in K[3] | out?(v) = io!printi[v])",
     [ I ("main", 3) ]);
    ("nested def shadows",
     {| def K() = io!printi[1]
        in (def K() = io!printi[2] in K[]) |},
     [ I ("main", 2) ]);
    ("inner def sees outer",
     {| def A(v) = io!printi[v]
        in (def B() = A[8] in B[]) |},
     [ I ("main", 8) ]);
    ("polymorphic reuse",
     {| def Id(v, k) = k![v]
        in (new a (Id[5, a] | a?(x) = io!printi[x])
           | new b (Id[true, b] | b?(x) = io!printb[x])) |},
     [ I ("main", 5); B ("main", true) ]);
    ("state machine via recursion",
     {| def Cnt(self, n) = self?{ tick() = (if n == 2 then io!printi[n + 1]
                                            else Cnt[self, n + 1]) }
        in new c (Cnt[c, 0] | c!tick[] | c!tick[] | c!tick[]) |},
     [ I ("main", 3) ]);

    (* -------------------- sugar -------------------- *)
    ("let sugar",
     "new s ((s?(q, k) = k![q * q]) | let v = s![6] in io!printi[v])",
     [ I ("main", 36) ]);
    ("nested lets",
     {| new s (def Srv(me) = me?(q, k) = (k![q + 1] | Srv[me]) in Srv[s]
        | let a = s![1] in let b = s![a] in io!printi[b]) |},
     [ I ("main", 3) ]);
    ("val label default",
     "new x (x![4] | x?{ val(v) = io!printi[v] })", [ I ("main", 4) ]);

    (* -------------------- distribution -------------------- *)
    ("remote message",
     {| site a { export new p p?(v) = io!printi[v] }
        site b { import p from a in p![11] } |},
     [ I ("a", 11) ]);
    ("remote reply",
     {| site a { export new p p?(v, k) = k![v * 2] }
        site b { import p from a in
                 new k (p![21, k] | k?(v) = io!printi[v]) } |},
     [ I ("b", 42) ]);
    ("two importers",
     {| site a { export new p
          def S(me) = me?(v) = (io!printi[v] | S[me]) in S[p] }
        site b { import p from a in p![1] }
        site c { import p from a in p![2] } |},
     [ I ("a", 1); I ("a", 2) ]);
    ("three-hop relay",
     {| site a { export new pa pa?(v) = io!printi[v] }
        site b { export new pb import pa from a in pb?(v) = pa![v + 1] }
        site c { import pb from b in pb![40] } |},
     [ I ("a", 41) ]);
    ("object ships to exporter",
     {| site a { export new p p![9] }
        site b { import p from a in p?(v) = io!printi[v] } |},
     [ I ("b", 9) ]);
    ("fetch: lexical io prints at home",
     (* the fetched class's free [io] is bound at the defining site, so
        although the instantiation runs at b, the print happens at a *)
     {| site a { export def K() = io!printi[1] in nil }
        site b { import K from a in K[] } |},
     [ I ("a", 1) ]);
    ("fetch: parameters are local",
     (* sending to a parameter instead reaches b's local channel *)
     {| site a { export def K(out) = out![1] in nil }
        site b { import K from a in
                 new o (K[o] | o?(v) = io!printi[v]) } |},
     [ I ("b", 1) ]);
    ("fetched class keeps home names",
     {| site a { new log ((log?(v) = io!printi[v])
                 | export def K(x) = log![x] in nil) }
        site b { import K from a in K[77] } |},
     [ I ("a", 77) ]);
    ("shipped object keeps io home",
     {| site a { export new p p?(k) = k?(v) = io!printi[v] }
        site b { import p from a in new mine (p![mine] | mine![13]) } |},
     [ I ("a", 13) ]);
    ("import class twice",
     {| site a { export def K(v) = io!printi[v] in nil }
        site b { import K from a in (K[1] | K[2]) } |},
     [ I ("a", 1); I ("a", 2) ]);
    ("export def used at home too",
     (* both instantiations print at a: K's io is lexically a's *)
     {| site a { export def K(v) = io!printi[v] in K[5] }
        site b { import K from a in K[6] } |},
     [ I ("a", 5); I ("a", 6) ]);
    ("remote name in remote message",
     {| site a { export new pa pa?(k) = k![1] }
        site b { export new pb
                 import pa from a in
                 (pa![pb] | pb?(v) = io!printi[v]) } |},
     [ I ("b", 1) ]);
    ("mutually importing sites",
     {| site a { export new pa
                 import pb from b in ((pa?(v) = io!printi[v]) | pb![2]) }
        site b { export new pb
                 import pa from a in ((pb?(v) = io!printi[v + 10]) | pa![1]) } |},
     [ I ("a", 1); I ("b", 12) ]);
    ("import from self",
     {| site a { export new p ((p?(v) = io!printi[v])
                 | import p from a in p![3]) } |},
     [ I ("a", 3) ]);

    (* -------------------- combined patterns -------------------- *)
    ("ping-pong three rounds",
     {| site srv { def S(me) = me?(v, k) = (k![v + 1] | S[me])
                   in export new svc S[svc] }
        site cli { import svc from srv in
                   def Go(n) = if n == 0 then io!printi[n]
                               else let v = svc![n] in Go[n - 1]
                   in Go[3] } |},
     [ I ("cli", 0) ]);
    ("fan-out then join",
     {| new a, b, j (
          (new k1 (a![k1] | k1?(x) = j![x]))
        | (new k2 (b![k2] | k2?(x) = j![x]))
        | a?(k) = k![1] | b?(k) = k![2]
        | j?(x) = j?(y) = io!printi[x + y]) |},
     [ I ("main", 3) ]);
    ("collatz 27 steps",
     {| def C(n, steps) =
          if n == 1 then io!printi[steps]
          else (if n % 2 == 0 then C[n / 2, steps + 1]
                else C[3 * n + 1, steps + 1])
        in C[27, 0] |},
     [ I ("main", 111) ]);
    ("string comparison",
     {| if "abc" == "abc" then io!print["same"] else io!print["diff"] |},
     [ S ("main", "same") ]);
    ("channel identity equality",
     "new a (io!printb[a == a] | new b io!printb[a == b])",
     [ B ("main", true); B ("main", false) ]);
    ("class value shared by reference",
     {| new c (def K(self, n) = self?{ get(r) = (r![n] | K[self, n]) } in K[c, 4]
        | new r (c!get[r] | r?(v) = io!printi[v])) |},
     [ I ("main", 4) ]);
    ("deep expression nesting",
     "io!printi[((((1 + 2) * 3) - 4) / 5) % 6]",
     [ I ("main", 1) ]);
    ("method can rebuild its own object",
     {| new x (x?{ once(v) = (io!printi[v] | x?{ once(v) = io!printi[v + 100] }) }
        | x!once[1] | x!once[2]) |},
     [ I ("main", 1); I ("main", 102) ]);
    ("remote fan-out to two exporters",
     {| site a { export new pa pa?(v) = io!printi[v] }
        site b { export new pb pb?(v) = io!printi[v * 2] }
        site c { import pa from a in import pb from b in (pa![3] | pb![3]) } |},
     [ I ("a", 3); I ("b", 6) ]);
    ("shipped object captures local channel",
     (* the object ships to a; its body replies on b's local channel *)
     {| site a { export new p p!go[] }
        site b { import p from a in
                 new home (p?{ go() = home![5] } | home?(v) = io!printi[v]) } |},
     [ I ("b", 5) ]);
    ("chain of fetched classes",
     (* K fetched by b; K's body instantiates L, also defined at a, so
        the fetch brings the group and L runs at b too *)
     {| site a { export def K(out) = L[out, 1] and L(out, v) = out![v + 1] in nil }
        site b { import K from a in new o (K[o] | o?(v) = io!printi[v]) } |},
     [ I ("b", 2) ]);
    ("export used before and after import resolution",
     {| site a { export new p (p?(v) = io!printi[v] | p?(v) = io!printi[v + 10]) }
        site b { import p from a in (p![1] | p![2]) } |},
     [ I ("a", 1); I ("a", 12) ]);
    ("io input combined with remote call",
     {| site a { export new sq sq?(v, k) = k![v * v] }
        site b { import sq from a in
                 new r (io!readi[r] | r?(n) =
                   new k (sq![n, k] | k?(v) = io!printi[v])) } |},
     [ I ("b", 49) ]);
    ("fibonacci via channels",
     {| def Fib(n, k) =
          if n < 2 then k![n]
          else new k1, k2 (Fib[n - 1, k1] | Fib[n - 2, k2]
               | k1?(a) = k2?(b) = k![a + b])
        in new out (Fib[10, out] | out?(v) = io!printi[v]) |},
     [ I ("main", 55) ]);
  ]

(* every site named "b" gets the input feed [7]; harmless for entries
   that never read *)
let corpus_inputs = [ ("b", [ 7 ]); ("main", [ 7 ]) ]

let run_one (name, src, expected) =
  let prog = Api.parse src in
  (match Api.typecheck prog with
  | _ -> ()
  | exception Api.Error e ->
      Alcotest.failf "%s: does not typecheck: %s" name (Api.error_message e));
  let r = Api.run_program ~inputs:corpus_inputs prog in
  let got = List.map snd r.Api.outputs in
  if not (Output.same_multiset got (List.map to_event expected)) then
    Alcotest.failf "%s: got %s" name
      (String.concat "; "
         (List.map (Format.asprintf "%a" Output.pp_event) got));
  if not (Api.agree_with_reference ~inputs:corpus_inputs prog) then
    Alcotest.failf "%s: reference semantics disagrees" name

let tests =
  List.map
    (fun ((name, _, _) as entry) ->
      (name, `Quick, fun () -> run_one entry))
    corpus

(* ------------------------------------------------------------------ *)
(* Negative corpus: programs the type checker must reject, each for a
   distinct reason.                                                    *)

let rejections : (string * string) list =
  [ ("unbound name", "zzz![1]");
    ("unbound class", "Zzz[1]");
    ("int plus bool", "io!printi[1 + true]");
    ("bool arithmetic", "io!printi[true * false]");
    ("compare int to bool", "io!printb[1 == true]");
    ("compare string to int", {| io!printb["a" == 1] |});
    ("not on int", "io!printb[not 1]");
    ("neg on bool", "io!printi[-true]");
    ("and on ints", "io!printb[1 && 2]");
    ("if on int", "if 1 then nil else nil");
    ("branch type irrelevant but cond checked", "if 1 + 1 then nil else nil");
    ("print wrong type", "io!print[42]");
    ("printi wrong type", {| io!printi["x"] |});
    ("printb wrong type", "io!printb[7]");
    ("io unknown method", "io!flush[]");
    ("object at io", "io?(v) = nil");
    ("message label missing", "new x (x?{ a() = nil } | x!b[])");
    ("message arity low", "new x (x?{ a(u, v) = nil } | x!a[1])");
    ("message arity high", "new x (x?{ a(u) = nil } | x!a[1, 2])");
    ("message arg type", "new x (x?{ a(u) = io!printi[u + 1] } | x!a[true])");
    ("conflicting objects", "new x (x?{ a() = nil } | x?{ b() = nil })");
    ("class arity low", "def K(a, b) = nil in K[1]");
    ("class arity high", "def K(a) = nil in K[1, 2]");
    ("class arg type", "def K(a) = io!printi[a] in K[true]");
    ("duplicate methods", "new x x?{ a() = nil, a() = nil }");
    ("duplicate params", "new x x?{ a(u, u) = nil }");
    ("duplicate class in group", "def K() = nil and K() = nil in K[]");
    ("duplicate class params", "def K(a, a) = nil in K[1, 2]");
    ("monomorphic params in one instantiation",
     "def K(a, b) = io!printb[a == b] in K[1, true]");
    ("channel used at two value types",
     "new x (x![1] | x![true] | (x?(v) = io!printi[v]) | x?(v) = io!printi[v])");
    ("name used as both int and channel",
     "new x (x?(v) = (v![1] | io!printi[v]))");
    ("self-application protocol",
     "new x (x![x] | x?(v) = io!printb[v == 1])");
    ("import from site without export",
     {| site a { nil } site b { import p from a in p![1] } |});
    ("import class without export",
     {| site a { nil } site b { import K from a in K[] } |});
    ("cross-site arg type",
     {| site a { export new p p?(v) = io!printi[v] }
        site b { import p from a in p![true] } |});
    ("cross-site arity",
     {| site a { export new p p?(v) = io!printi[v] }
        site b { import p from a in p![1, 2] } |});
    ("cross-site label",
     {| site a { export new p p?{ go() = nil } }
        site b { import p from a in p!stop[] } |});
    ("cross-site class arg",
     {| site a { export def K(v) = io!printi[v] in nil }
        site b { import K from a in K[false] } |});
    ("let reply type",
     "new s ((s?(q, k) = k![q]) | let v = s![1] in io!printb[v])") ]

let rejection_tests =
  List.map
    (fun (name, src) ->
      ( "reject: " ^ name,
        `Quick,
        fun () ->
          match Api.typecheck (Api.parse src) with
          | exception Api.Error (Api.Type_error _) -> ()
          | exception Api.Error e ->
              Alcotest.failf "wrong error class: %s" (Api.error_message e)
          | _ -> Alcotest.fail "program was accepted" ))
    rejections

let tests = tests @ rejection_tests

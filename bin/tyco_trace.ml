(* tyco-trace — offline analysis of causal trace archives.

   A traced run ([tycosh --trace-out FILE], or [--run] here) records
   every VM, protocol and transport event as a node in a causal tree:
   thread spans parent the packets they send, packets parent the
   threads they spawn on the remote site.  This tool loads such an
   archive (the versioned "TYCT" binary form of {!Tyco_support.Trace})
   and answers the profiling question directly: which message chains
   were slowest, and where inside each chain did the time go. *)

module Trace = Tyco_support.Trace
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Run a network program on a fresh traced cluster and capture its
   archive — profiling without the intermediate file. *)
let run_traced path nodes seed =
  let config =
    { Dityco.Cluster.default_config with
      Dityco.Cluster.nodes;
      seed;
      tracing = true }
  in
  let prog = Dityco.Api.parse ~file:path (read_file path) in
  let r = Dityco.Api.run_program ~config prog in
  let tr = Dityco.Cluster.tracer r.Dityco.Api.cluster in
  { Trace.ar_tracks = Trace.tracks tr;
    ar_shards =
      List.filter_map
        (fun (id, _) ->
          Option.map (fun s -> (id, s)) (Trace.track_shard tr id))
        (Trace.tracks tr);
    ar_dropped = Trace.dropped tr;
    ar_events = Trace.events tr }

(* ------------------------------------------------------------------ *)
(* Causal chains: one per trace_id (= one root span), events in       *)
(* timestamp order as {!Trace.events} already yields them.            *)

type chain = {
  c_trace : int;
  c_start : int;
  c_finish : int;               (* max over events of ts + dur *)
  c_hops : int;                 (* Send events: wire crossings *)
  c_events : Trace.event list;  (* chronological *)
}

let chains_of (ar : Trace.archive) =
  let by_trace = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let id = e.Trace.ev_span.Trace.trace_id in
      if id <> 0 then
        let prev = try Hashtbl.find by_trace id with Not_found -> [] in
        Hashtbl.replace by_trace id (e :: prev))
    ar.Trace.ar_events;
  Hashtbl.fold
    (fun id rev_events acc ->
      let events = List.rev rev_events in
      let start =
        List.fold_left
          (fun m (e : Trace.event) -> min m e.Trace.ev_ts)
          max_int events
      in
      let finish =
        List.fold_left
          (fun m (e : Trace.event) -> max m (e.Trace.ev_ts + e.Trace.ev_dur))
          0 events
      in
      let hops =
        List.fold_left
          (fun n (e : Trace.event) ->
            match e.Trace.ev_kind with Trace.Send _ -> n + 1 | _ -> n)
          0 events
      in
      { c_trace = id;
        c_start = start;
        c_finish = finish;
        c_hops = hops;
        c_events = events }
      :: acc)
    by_trace []

let duration c = c.c_finish - c.c_start

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let kind_detail = function
  | Trace.Run_slice { instrs; cost } ->
      Printf.sprintf "  %d instrs, %dns" instrs cost
  | Trace.Send { pk; bytes } ->
      Printf.sprintf "  %s, %dB" (Trace.pk_name pk) bytes
  | Trace.Deliver { pk; same_node } ->
      Printf.sprintf "  %s%s" (Trace.pk_name pk)
        (if same_node then ", same-node" else "")
  | Trace.Link_code { bytes } -> Printf.sprintf "  %dB" bytes
  | Trace.Retransmit { attempt } -> Printf.sprintf "  attempt %d" attempt
  | Trace.Flush_wait { ns } -> Printf.sprintf "  %dns in outbox" ns
  | _ -> ""

let print_chain track_name c =
  Printf.printf "-- chain %d: %dns, %d events, %d wire hops\n" c.c_trace
    (duration c) (List.length c.c_events) c.c_hops;
  List.iter
    (fun (e : Trace.event) ->
      Printf.printf "   +%9dns  %-10s %-13s%s\n"
        (e.Trace.ev_ts - c.c_start)
        (track_name e.Trace.ev_track)
        (Trace.kind_name e.Trace.ev_kind)
        (kind_detail e.Trace.ev_kind))
    c.c_events

let analyze (ar : Trace.archive) top =
  let track_name =
    let tbl = Hashtbl.create 8 in
    List.iter (fun (id, name) -> Hashtbl.replace tbl id name) ar.Trace.ar_tracks;
    fun id ->
      try Hashtbl.find tbl id
      with Not_found -> if id = Trace.fabric_track then "fabric" else
        Printf.sprintf "track%d" id
  in
  let chains = chains_of ar in
  Printf.printf "trace: %d events on %d tracks, %d causal chains%s\n"
    (List.length ar.Trace.ar_events)
    (List.length ar.Trace.ar_tracks)
    (List.length chains)
    (if ar.Trace.ar_dropped = 0 then ""
     else Printf.sprintf " (%d events dropped from full rings)"
            ar.Trace.ar_dropped);
  let slowest =
    List.sort
      (fun a b ->
        match compare (duration b) (duration a) with
        | 0 -> compare a.c_trace b.c_trace
        | c -> c)
      chains
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  let shown = take top slowest in
  if shown <> [] then
    Printf.printf "top %d slowest causal chains:\n" (List.length shown);
  List.iter (print_chain track_name) shown

let main file run_prog top json_out nodes seed =
  try
    let ar =
      match run_prog with
      | Some p -> run_traced p nodes seed
      | None ->
          if file = "" then (
            prerr_endline
              "tyco-trace: give a trace archive, or --run PROGRAM";
            exit 2);
          Trace.deserialize (read_file file)
    in
    (match json_out with
    | Some out ->
        write_file out (Trace.to_chrome_json (Trace.of_archive ar));
        Printf.printf "wrote Chrome trace JSON to %s (open in Perfetto)\n" out
    | None -> ());
    analyze ar top
  with
  | Tyco_support.Wire.Malformed m ->
      Printf.eprintf "tyco-trace: not a trace archive: %s\n" m;
      exit 1
  | Dityco.Api.Error e ->
      Printf.eprintf "%s\n" (Dityco.Api.error_message e);
      exit 1
  | Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 1

let file_arg =
  Arg.(value & pos 0 string "" & info [] ~docv:"TRACE"
       ~doc:"Binary trace archive written by tycosh --trace-out (or \
             tyco-trace --json on a previous archive); omit with --run.")

let run_arg =
  Arg.(value & opt (some string) None & info [ "run" ] ~docv:"PROGRAM"
       ~doc:"Run this network program on a traced simulated cluster and \
             analyze the resulting trace directly.")

let top_arg =
  Arg.(value & opt int 5 & info [ "top" ] ~docv:"K"
       ~doc:"How many of the slowest causal chains to print.")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
       ~doc:"Also export the trace as Chrome trace-event JSON for \
             Perfetto / chrome://tracing.")

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N"
       ~doc:"Cluster nodes for --run.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
       ~doc:"Simulation seed for --run.")

let cmd =
  Cmd.v
    (Cmd.info "tyco-trace" ~version:"1.0"
       ~doc:"Analyze causal traces of DiTyCO runs: slowest chains, \
             per-hop latency, Perfetto export")
    Term.(const main $ file_arg $ run_arg $ top_arg $ json_arg $ nodes_arg
          $ seed_arg)

let () = exit (Cmd.eval cmd)

(* tycosh — the cluster shell (the paper's TyCOsh): submit a network
   program to a simulated DiTyCO cluster, choose the cluster shape and
   link models, inspect per-site statistics and traffic. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let topology_of_string = function
  | "myrinet" -> Tyco_net.Simnet.default_topology
  | "ethernet" ->
      { Tyco_net.Simnet.default_topology with
        cluster = Tyco_net.Latency.fast_ethernet }
  | "local" ->
      { Tyco_net.Simnet.default_topology with
        cluster = Tyco_net.Latency.shared_memory }
  | s -> failwith (Printf.sprintf "unknown topology %S" s)

(* The interactive shell (the paper's TyCOsh proper): programs are
   submitted to a persistent simulated cluster.  Input is accumulated
   until a line with a single ".", then parsed, type-checked and
   loaded; the simulation then runs to quiescence and reports new
   outputs.  Commands:
     :load FILE   submit a program from a file
     :stats       per-site statistics
     :trace       packet log of the whole session
     :time        current virtual time
     :quit        leave                                                *)
let interactive config =
  let cluster = Dityco.Cluster.create ~config () in
  let shown = ref 0 in
  let submit src =
    match
      let prog = Dityco.Api.parse src in
      (* isolated per-site checking: imports may refer to programs
         submitted earlier in the session, so they are validated
         dynamically when their lookups resolve *)
      Dityco.Api.load_isolated cluster prog;
      Dityco.Cluster.run cluster
    with
    | () ->
        let outs = Dityco.Cluster.outputs cluster in
        let fresh = List.filteri (fun i _ -> i >= !shown) outs in
        shown := List.length outs;
        List.iter
          (fun (ts, e) ->
            Format.printf "[%9dns] %a@." ts Dityco.Output.pp_event e)
          fresh;
        Format.printf "-- ok, virtual time %dns@."
          (Dityco.Cluster.virtual_time cluster)
    | exception Dityco.Api.Error e ->
        Format.printf "error: %s@." (Dityco.Api.error_message e)
    | exception Invalid_argument m -> Format.printf "error: %s@." m
  in
  Format.printf
    "tycosh interactive — end a program with a lone '.', :help for help@.";
  let buf = Buffer.create 256 in
  let rec loop () =
    Format.printf (if Buffer.length buf = 0 then "tycosh> " else "......> ");
    Format.print_flush ();
    match input_line stdin with
    | exception End_of_file -> ()
    | ":quit" | ":q" -> ()
    | ":help" ->
        Format.printf
          ":load FILE | :stats | :trace | :time | :quit — or type a program, \
           end with '.'@.";
        loop ()
    | ":time" ->
        Format.printf "%dns@." (Dityco.Cluster.virtual_time cluster);
        loop ()
    | ":stats" ->
        List.iter
          (fun site ->
            Format.printf "== site %s ==@." (Dityco.Site.name site);
            Format.printf "%a" Tyco_support.Stats.pp (Dityco.Site.stats site))
          (Dityco.Cluster.sites cluster);
        loop ()
    | ":trace" ->
        List.iter
          (fun (ts, p) -> Format.printf "[%9dns] %a@." ts Tyco_net.Packet.pp p)
          (Dityco.Cluster.packet_trace cluster);
        loop ()
    | line when String.length line > 5 && String.sub line 0 5 = ":load" ->
        let file = String.trim (String.sub line 5 (String.length line - 5)) in
        (try submit (read_file file)
         with Sys_error m -> Format.printf "error: %s@." m);
        loop ()
    | "." ->
        let src = Buffer.contents buf in
        Buffer.clear buf;
        if String.trim src <> "" then submit src;
        loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
  in
  loop ()

let run_tcp path nodes metrics_out =
  try
    let prog = Dityco.Api.parse ~file:path (read_file path) in
    let r =
      Dityco.Tcp_runner.run_program ~nodes ~metrics:(metrics_out <> None) prog
    in
    (match metrics_out with
    | Some out ->
        let mx = r.Dityco.Tcp_runner.metrics in
        write_file out
          (if Filename.check_suffix out ".prom" then
             Tyco_support.Metrics.to_prom mx
           else
             Tyco_support.Metrics.to_json ~extra:[ ("kind", "\"final\"") ] mx
             ^ "\n");
        Format.printf "-- metrics written to %s@." out
    | None -> ());
    List.iter
      (fun e -> Format.printf "%a@." Dityco.Output.pp_event e)
      r.Dityco.Tcp_runner.outputs;
    Format.printf "-- real TCP loopback: %d packets, %.1f ms wall, %d parks%s@."
      r.Dityco.Tcp_runner.packets
      (float_of_int r.Dityco.Tcp_runner.wall_ns /. 1e6)
      r.Dityco.Tcp_runner.parks
      (if r.Dityco.Tcp_runner.timed_out then " (TIMED OUT)" else "")
  with
  | Dityco.Api.Error e ->
      Format.eprintf "%s@." (Dityco.Api.error_message e);
      exit 1
  | Sys_error m ->
      Format.eprintf "error: %s@." m;
      exit 1

(* --metrics-out: a .prom suffix means one Prometheus text exposition
   of the final merged registry; anything else means JSONL — periodic
   coordinator snapshots while the domains run, then one final line
   with the merged instruments. *)
let jint_array a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

let snapshot_json (s : Dityco.Par_runner.snapshot) =
  Printf.sprintf
    "{\"kind\":\"snapshot\",\"wall_ms\":%.1f,\"inflight\":%d,\
     \"executed\":%s,\"pending\":%s,\"ring_pushed\":%d,\"ring_popped\":%d,\
     \"migrations\":%d}"
    s.Dityco.Par_runner.sn_wall_ms s.Dityco.Par_runner.sn_inflight
    (jint_array s.Dityco.Par_runner.sn_executed)
    (jint_array s.Dityco.Par_runner.sn_pending)
    s.Dityco.Par_runner.sn_ring_pushed s.Dityco.Par_runner.sn_ring_popped
    s.Dityco.Par_runner.sn_migrations

let write_trace_file out tr =
  (* .json → Chrome trace-event form for Perfetto; anything else →
     the binary archive that [tyco-trace] analyzes *)
  write_file out
    (if Filename.check_suffix out ".json" then
       Tyco_support.Trace.to_chrome_json tr
     else Tyco_support.Trace.serialize tr)

(* --placement VALUE: the node-to-shard map for --domains N > 1.
   profile:FILE reads per-node weights from FILE — either a bare JSON
   array of numbers, or a --json report, whose "node_weights" field is
   extracted textually (the field is a flat number array, so a full
   JSON parser would be overkill and the image ships none). *)
let parse_profile_file path =
  let s = read_file path in
  let start =
    let key = "\"node_weights\":" in
    let klen = String.length key in
    let rec find i =
      if i + klen > String.length s then 0
      else if String.sub s i klen = key then i + klen
      else find (i + 1)
    in
    find 0
  in
  match String.index_from_opt s start '[' with
  | None -> failwith (path ^ ": no weight array found")
  | Some lb -> (
      match String.index_from_opt s lb ']' with
      | None -> failwith (path ^ ": unterminated weight array")
      | Some rb ->
          let parts =
            String.split_on_char ',' (String.sub s (lb + 1) (rb - lb - 1))
            |> List.map String.trim
            |> List.filter (fun x -> x <> "")
          in
          if parts = [] then failwith (path ^ ": empty weight array");
          Array.of_list
            (List.map
               (fun x ->
                 match float_of_string_opt x with
                 | Some f -> f
                 | None -> failwith (path ^ ": bad weight " ^ x))
               parts))

let policy_of_string s =
  match s with
  | "mod" -> Dityco.Placement.Mod
  | "greedy" -> Dityco.Placement.Greedy
  | _ when String.length s > 8 && String.sub s 0 8 = "profile:" ->
      Dityco.Placement.Profile
        (parse_profile_file (String.sub s 8 (String.length s - 8)))
  | _ ->
      failwith
        (Printf.sprintf
           "unknown placement %S (expected mod, greedy, or profile:FILE)" s)

(* --rebalance KEY:VAL[,KEY:VAL]: dynamic node migration between
   domains.  Keys: interval (wall ms between coordinator load
   observations, default 50) and threshold (the max-over-mean
   shard-load trigger, default 1.5). *)
let rebalance_of_string s =
  let rb =
    ref { Dityco.Par_runner.rb_interval_ms = 50; rb_threshold = 1.5 }
  in
  List.iter
    (fun part ->
      let part = String.trim part in
      if part <> "" then
        match String.index_opt part ':' with
        | None ->
            failwith
              (Printf.sprintf
                 "bad --rebalance item %S (expected interval:MS or \
                  threshold:R)"
                 part)
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "interval" -> (
                match int_of_string_opt v with
                | Some ms when ms > 0 ->
                    rb := { !rb with Dityco.Par_runner.rb_interval_ms = ms }
                | _ ->
                    failwith
                      (Printf.sprintf
                         "bad --rebalance interval %S (want a positive \
                          integer of milliseconds)"
                         v))
            | "threshold" -> (
                match float_of_string_opt v with
                | Some t when t >= 1.0 ->
                    rb := { !rb with Dityco.Par_runner.rb_threshold = t }
                | _ ->
                    failwith
                      (Printf.sprintf
                         "bad --rebalance threshold %S (want a float >= 1.0)"
                         v))
            | _ ->
                failwith
                  (Printf.sprintf
                     "unknown --rebalance key %S (expected interval or \
                      threshold)"
                     key)))
    (String.split_on_char ',' s);
  !rb

(* --domains N, N > 1: the sharded multi-domain engine.  Output
   timestamps depend on domain interleaving; the deterministic single-
   domain path stays the default (and what --domains 1 means). *)
let run_domains config domains policy rebalance json trace_out metrics_out prog =
  let prom =
    match metrics_out with
    | Some p -> Filename.check_suffix p ".prom"
    | None -> false
  in
  let moc =
    match metrics_out with
    | Some p when not prom -> Some (open_out_bin p)
    | _ -> None
  in
  let r =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr moc)
      (fun () ->
        let on_snapshot =
          Option.map
            (fun oc s ->
              output_string oc (snapshot_json s);
              output_char oc '\n';
              flush oc)
            moc
        in
        let r =
          Dityco.Api.run_parallel ~config ~policy ~domains ?rebalance
            ?on_snapshot prog
        in
        (match moc with
        | Some oc ->
            output_string oc
              (Tyco_support.Metrics.to_json
                 ~extra:
                   [ ("kind", "\"final\"");
                     ( "wall_ms",
                       Printf.sprintf "%.1f"
                         (float_of_int r.Dityco.Par_runner.wall_ns /. 1e6) ) ]
                 r.Dityco.Par_runner.metrics);
            output_char oc '\n'
        | None -> ());
        r)
  in
  if prom then
    Option.iter
      (fun p ->
        write_file p (Tyco_support.Metrics.to_prom r.Dityco.Par_runner.metrics))
      metrics_out;
  (match metrics_out with
  | Some p when not json -> Format.printf "-- metrics written to %s@." p
  | _ -> ());
  (match trace_out with
  | Some out ->
      write_trace_file out r.Dityco.Par_runner.trace;
      if not json then Format.printf "-- trace written to %s@." out
  | None -> ());
  if json then print_endline (Dityco.Report.par_json r)
  else begin
    List.iter
      (fun (ts, e) -> Format.printf "[%9dns] %a@." ts Dityco.Output.pp_event e)
      r.Dityco.Par_runner.outputs;
    Format.printf
      "-- %d domains: virtual time %dns, %d events, %d packets, %d bytes, \
       %d ring handoffs, %d parks, %.1f ms wall%s@."
      r.Dityco.Par_runner.domains r.Dityco.Par_runner.virtual_ns
      r.Dityco.Par_runner.events r.Dityco.Par_runner.packets
      r.Dityco.Par_runner.bytes r.Dityco.Par_runner.handoffs
      r.Dityco.Par_runner.parks
      (float_of_int r.Dityco.Par_runner.wall_ns /. 1e6)
      (if r.Dityco.Par_runner.timed_out then " (TIMED OUT)" else "")
  end

let run path nodes cores quantum topo until verbose seed replicated_ns trace trace_out metrics_out interactive_mode tcp domains placement rebalance json =
  (* Parse the sharding knobs up front: a typo in --placement or
     --rebalance (or an unreadable profile file) is a usage error, not
     a runtime one — one line on stderr and exit 2, no backtrace. *)
  let policy, rebalance =
    if domains > 1 then
      try
        (policy_of_string placement, Option.map rebalance_of_string rebalance)
      with Sys_error m | Failure m ->
        Format.eprintf "tycosh: %s@." m;
        exit 2
    else (Dityco.Placement.Mod, None)
  in
  try
    let config =
      { Dityco.Cluster.default_config with
        Dityco.Cluster.nodes;
        cores_per_node = cores;
        quantum;
        topology = topology_of_string topo;
        seed;
        tracing = trace_out <> None;
        metrics = metrics_out <> None;
        ns_mode =
          (if replicated_ns then Dityco.Cluster.Replicated
           else Dityco.Cluster.Centralized) }
    in
    if interactive_mode then (interactive config; exit 0);
    if tcp then (run_tcp path nodes metrics_out; exit 0);
    if domains > 1 then begin
      run_domains config domains policy rebalance json trace_out metrics_out
        (Dityco.Api.parse ~file:path (read_file path));
      exit 0
    end;
    let prog = Dityco.Api.parse ~file:path (read_file path) in
    let r = Dityco.Api.run_program ~config ?until prog in
    (match trace_out with
    | Some out ->
        write_trace_file out (Dityco.Cluster.tracer r.Dityco.Api.cluster);
        if not json then Format.printf "-- trace written to %s@." out
    | None -> ());
    (match metrics_out with
    | Some out ->
        let mx = Dityco.Cluster.metrics r.Dityco.Api.cluster in
        write_file out
          (if Filename.check_suffix out ".prom" then
             Tyco_support.Metrics.to_prom mx
           else Tyco_support.Metrics.to_json ~extra:[ ("kind", "\"final\"") ] mx ^ "\n");
        if not json then Format.printf "-- metrics written to %s@." out
    | None -> ());
    if json then begin
      print_endline (Dityco.Report.to_json (Dityco.Report.of_result r));
      exit 0
    end;
    List.iter
      (fun (ts, e) -> Format.printf "[%9dns] %a@." ts Dityco.Output.pp_event e)
      r.Dityco.Api.outputs;
    Format.printf
      "-- virtual time %dns, %d sim events, %d packets, %d bytes@."
      r.Dityco.Api.virtual_ns r.Dityco.Api.sim_events r.Dityco.Api.packets
      r.Dityco.Api.bytes;
    if trace then
      List.iter
        (fun (ts, p) ->
          Format.printf "[%9dns] %a@." ts Tyco_net.Packet.pp p)
        (Dityco.Cluster.packet_trace r.Dityco.Api.cluster);
    if verbose then
      List.iter
        (fun site ->
          Format.printf "== site %s (id %d, node %d) ==@." (Dityco.Site.name site)
            (Dityco.Site.site_id site) (Dityco.Site.ip site);
          Format.printf "%a" Tyco_support.Stats.pp (Dityco.Site.stats site))
        (Dityco.Cluster.sites r.Dityco.Api.cluster)
  with
  | Dityco.Api.Error e ->
      Format.eprintf "%s@." (Dityco.Api.error_message e);
      exit 1
  | Sys_error m | Failure m ->
      Format.eprintf "error: %s@." m;
      exit 1

let path_arg =
  Arg.(value & pos 0 string "" & info [] ~docv:"FILE"
       ~doc:"Network program (site blocks); omit with --interactive.")

let nodes =
  Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N"
       ~doc:"Cluster nodes (the paper's platform has 4).")

let cores =
  Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N"
       ~doc:"Processors per node (the paper's PCs are dual-CPU).")

let quantum =
  Arg.(value & opt int 512 & info [ "quantum" ] ~docv:"INSTRS"
       ~doc:"VM instructions per scheduling quantum.")

let topo =
  Arg.(value & opt string "myrinet" & info [ "link" ] ~docv:"MODEL"
       ~doc:"Inter-node link model: myrinet, ethernet, or local.")

let until =
  Arg.(value & opt (some int) None & info [ "until" ] ~docv:"NS"
       ~doc:"Stop after this much virtual time.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ]
       ~doc:"Print per-site VM statistics after the run.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
       ~doc:"Simulation seed (runs are deterministic per seed).")

let json_flag =
  Arg.(value & flag & info [ "json" ]
       ~doc:"Emit the run summary as JSON instead of text.")

let tcp_flag =
  Arg.(value & flag & info [ "tcp" ]
       ~doc:"Run over real loopback TCP sockets (one OCaml domain per \
             node) instead of the deterministic simulation.")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
       ~doc:"Run the cluster sharded over N OCaml domains (nodes are \
             assigned to domains by --placement; cross-domain packets \
             travel in batches through lock-free SPSC rings).  1 (the \
             default) is the deterministic single-domain scheduler, \
             bit-identical to not passing the flag at all.")

let placement_arg =
  Arg.(value & opt string "mod" & info [ "placement" ] ~docv:"POLICY"
       ~doc:"Node-to-domain placement for --domains N > 1: 'mod' \
             (ip mod N, the default), 'greedy' (bin-pack nodes onto \
             domains by site count), or 'profile:FILE' (bin-pack by \
             measured per-node weights; FILE is a prior run's --json \
             report or a bare JSON array of numbers, one per node).  \
             Ignored at --domains 1.")

let rebalance_arg =
  Arg.(value & opt (some string) None & info [ "rebalance" ] ~docv:"SPEC"
       ~doc:"Dynamic rebalancing for --domains N > 1: migrate nodes \
             between domains mid-run when per-domain load skews.  SPEC \
             is KEY:VAL pairs separated by commas — 'interval:MS' \
             (wall ms between load observations, default 50) and \
             'threshold:R' (migrate when max-over-mean domain load \
             exceeds R, default 1.5).  E.g. \
             --rebalance interval:20,threshold:1.3.  Incompatible with \
             --trace-out; ignored at --domains 1.")

let interactive_flag =
  Arg.(value & flag & info [ "i"; "interactive" ]
       ~doc:"Start the interactive shell: submit programs to a \
             persistent simulated cluster (the paper's TyCOsh).")

let trace =
  Arg.(value & flag & info [ "trace" ]
       ~doc:"Print every packet (shipments, fetches, name service) with \
             its virtual send time.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
       ~doc:"Record a causal trace of the run and write it to FILE: \
             Chrome trace-event JSON if FILE ends in .json (open in \
             Perfetto), else the binary archive that tyco-trace \
             analyzes.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
       ~doc:"Record run metrics (transport counters, latency histograms \
             with p50/p95/p99/p999, per-shard ring occupancy) and write \
             them to FILE: Prometheus text if FILE ends in .prom, else \
             JSONL — with --domains N > 1, periodic coordinator \
             snapshots followed by a final merged line.")

let replicated_ns =
  Arg.(value & flag & info [ "replicated-ns" ]
       ~doc:"Use a per-node replicated name service instead of the \
             centralized one (the paper's future-work design).")

let cmd =
  Cmd.v
    (Cmd.info "tycosh" ~version:"1.0"
       ~doc:"Submit DiTyCO network programs to a simulated cluster")
    Term.(const run $ path_arg $ nodes $ cores $ quantum $ topo $ until
          $ verbose $ seed $ replicated_ns $ trace $ trace_out $ metrics_out
          $ interactive_flag $ tcp_flag $ domains_arg $ placement_arg
          $ rebalance_arg $ json_flag)

let () = exit (Cmd.eval cmd)

(* The multi-domain engine (Par_runner) against the deterministic
   scheduler.

   Three contracts from DESIGN.md §12:
   - [--domains 1] is the deterministic single-domain scheduler,
     bit-identical to a plain run (timestamps included) — pinned here;
   - [--domains N] (N > 1) preserves output {e multisets} but not
     timestamps (domain interleaving);
   - no shared mutable state crosses domains outside the SPSC rings
     and the end-of-run merge — observable as [clean = true] with
     [ring_pushed = ring_popped] and per-shard site ownership by the
     placement map ([ip mod domains] under the default [Mod] policy;
     [Greedy]/[Profile] sweeps pinned below).

   TYCO_TEST_DOMAINS=N overrides the domain counts the equivalence
   tests sweep (CI runs the suite a second time with it set to 4). *)

open Dityco
module Spsc = Tyco_support.Spsc_ring

let check = Alcotest.check

let domain_counts =
  match Sys.getenv_opt "TYCO_TEST_DOMAINS" with
  | Some s -> [ int_of_string s ]
  | None -> [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Spsc_ring                                                           *)

let ring_fifo () =
  let r = Spsc.create ~capacity:8 in
  for i = 1 to 5 do
    check Alcotest.bool "push" true (Spsc.try_push r i)
  done;
  check Alcotest.int "length" 5 (Spsc.length r);
  for i = 1 to 5 do
    check Alcotest.(option int) "fifo" (Some i) (Spsc.try_pop r)
  done;
  check Alcotest.(option int) "empty" None (Spsc.try_pop r);
  check Alcotest.bool "is_empty" true (Spsc.is_empty r)

let ring_bounded () =
  let r = Spsc.create ~capacity:4 in
  for i = 1 to 4 do
    check Alcotest.bool "fills" true (Spsc.try_push r i)
  done;
  check Alcotest.bool "full rejects" false (Spsc.try_push r 5);
  check Alcotest.(option int) "pop" (Some 1) (Spsc.try_pop r);
  check Alcotest.bool "slot freed" true (Spsc.try_push r 5)

let ring_wraparound () =
  (* capacity rounds up to a power of two; drive several times around *)
  let r = Spsc.create ~capacity:3 in
  check Alcotest.int "rounded capacity" 4 (Spsc.capacity r);
  for round = 0 to 9 do
    for i = 0 to 2 do
      check Alcotest.bool "push" true (Spsc.try_push r ((round * 3) + i))
    done;
    for i = 0 to 2 do
      check Alcotest.(option int) "pop" (Some ((round * 3) + i))
        (Spsc.try_pop r)
    done
  done;
  check Alcotest.int "pushed" 30 (Spsc.pushed r);
  check Alcotest.int "popped" 30 (Spsc.popped r)

let ring_two_domains () =
  (* one producer domain, one consumer domain, 10k items through a
     16-slot ring: everything arrives, in order *)
  let n = 10_000 in
  let r = Spsc.create ~capacity:16 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (Spsc.try_push r i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let received = ref 0 in
  let ordered = ref true in
  while !received < n do
    match Spsc.try_pop r with
    | Some v ->
        if v <> !received + 1 then ordered := false;
        received := v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check Alcotest.bool "in order" true !ordered;
  check Alcotest.bool "drained" true (Spsc.is_empty r)

(* ------------------------------------------------------------------ *)
(* Engine equivalence                                                  *)

(* Multi-site programs with deterministic output multisets; the
   placement spreads sites so every domain count exercises handoffs. *)
let corpus =
  [ ( "rpc",
      {| site server {
           def Serve(svc) = svc?{ add(a, b, k) = (k![a + b] | Serve[svc]) }
           in export new svc Serve[svc] }
         site c1 { import svc from server in
                   new k (svc!add[1, 2, k] | k?(v) = io!printi[v]) }
         site c2 { import svc from server in
                   new k (svc!add[10, 20, k] | k?(v) = io!printi[v]) }
         site c3 { import svc from server in
                   new k (svc!add[100, 200, k] | k?(v) = io!printi[v]) } |} );
    ( "pipeline",
      {| site a { import mid from b in export new left
           def L() = left?(v) = (mid![v * 2] | L[])
           in L[] }
         site b { import right from c in export new mid
           def M() = mid?(v) = (right![v + 1] | M[])
           in M[] }
         site c { export new right
           def R() = right?(v) = (io!printi[v] | R[])
           in R[] }
         site feeder { import left from a in
                       (left![1] | left![2] | left![3]) } |} );
    ( "fanout",
      {| site hub {
           def Pool(self, left) =
             self?{ take(k) = (if left == 0 then (k!stop[] | Pool[self, left])
                               else (k!item[left] | Pool[self, left - 1])) }
           in export new pool Pool[pool, 12] }
         site w0 { import pool from hub in
           def Work() = new k (pool!take[k]
             | k?{ item(v) = Work[], stop() = io!printi[0] })
           in Work[] }
         site w1 { import pool from hub in
           def Work() = new k (pool!take[k]
             | k?{ item(v) = Work[], stop() = io!printi[1] })
           in Work[] }
         site w2 { import pool from hub in
           def Work() = new k (pool!take[k]
             | k?{ item(v) = Work[], stop() = io!printi[2] })
           in Work[] } |} ) ]

let placement_spread name =
  (* fixed placement spreading each program's sites over nodes 0-3, so
     every domain count in [domain_counts] sees cross-shard traffic *)
  match name with
  | "hub" | "server" | "a" -> 0
  | "w0" | "c1" | "b" -> 1
  | "w1" | "c2" | "c" -> 2
  | "w2" | "c3" | "feeder" -> 3
  | other -> Hashtbl.hash other mod 8

let config = { Cluster.default_config with Cluster.nodes = 8 }

let event_multiset outputs =
  List.sort compare
    (List.map (fun (_ts, e) -> Format.asprintf "%a" Output.pp_event e) outputs)

let domains1_bit_identical () =
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let det =
        Api.run_program ~config ~placement:placement_spread prog
      in
      let par =
        Api.run_parallel ~config ~placement:placement_spread ~domains:1 prog
      in
      if det.Api.outputs <> par.Par_runner.outputs then
        Alcotest.failf "%s: --domains 1 diverged from the plain run" name;
      check Alcotest.int
        (name ^ " virtual time identical")
        det.Api.virtual_ns par.Par_runner.virtual_ns)
    corpus

let multiset_equivalence () =
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let det =
        Api.run_program ~config ~placement:placement_spread prog
      in
      let reference = event_multiset det.Api.outputs in
      List.iter
        (fun d ->
          let par =
            Api.run_parallel ~config ~placement:placement_spread ~domains:d
              prog
          in
          check
            Alcotest.(list string)
            (Printf.sprintf "%s at %d domains" name d)
            reference
            (event_multiset par.Par_runner.outputs);
          if par.Par_runner.timed_out then
            Alcotest.failf "%s: timed out at %d domains" name d)
        domain_counts)
    corpus

let shipped_samples_equivalence () =
  (* the examples corpus, minus seti.tyco (perpetual: it exhausts any
     event budget by design, on either engine) *)
  let dir = "../examples/programs" in
  match Sys.readdir dir with
  | exception Sys_error _ -> Alcotest.skip ()
  | entries ->
      Array.to_list entries
      |> List.filter (fun f ->
             Filename.check_suffix f ".tyco" && f <> "seti.tyco")
      |> List.iter (fun f ->
             let path = Filename.concat dir f in
             let ic = open_in_bin path in
             let src =
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () -> really_input_string ic (in_channel_length ic))
             in
             let prog = Api.parse ~file:path src in
             let det = Api.run_program prog in
             let reference = event_multiset det.Api.outputs in
             List.iter
               (fun d ->
                 let par = Api.run_parallel ~domains:d prog in
                 check
                   Alcotest.(list string)
                   (Printf.sprintf "%s at %d domains" f d)
                   reference
                   (event_multiset par.Par_runner.outputs))
               domain_counts)

(* ------------------------------------------------------------------ *)
(* Placement maps                                                      *)

let placement_map_properties () =
  let check_map ~domains ~label map nnodes =
    check Alcotest.int (label ^ ": total") nnodes (Array.length map);
    Array.iteri
      (fun i s ->
        if s < 0 || s >= domains then
          Alcotest.failf "%s: node %d mapped to shard %d (domains=%d)" label
            i s domains)
      map;
    if nnodes > 0 then
      check Alcotest.int (label ^ ": node 0 pinned to shard 0") 0 map.(0)
  in
  (* every policy, across nodes < domains, = domains, >> domains *)
  List.iter
    (fun (nnodes, domains) ->
      let site_counts = Array.init nnodes (fun i -> 1 + (i * 7 mod 5)) in
      List.iter
        (fun (pname, policy) ->
          let label = Printf.sprintf "%s n=%d d=%d" pname nnodes domains in
          let map = Placement.assign ~domains ~site_counts policy in
          check_map ~domains ~label map nnodes;
          (* deterministic: same inputs, same map *)
          check
            Alcotest.(array int)
            (label ^ ": deterministic") map
            (Placement.assign ~domains ~site_counts policy))
        [ ("mod", Placement.Mod);
          ("greedy", Placement.Greedy);
          ( "profile",
            Placement.Profile
              (Array.init nnodes (fun i -> float_of_int (1 + (i mod 3)))) ) ])
    [ (2, 8); (4, 4); (8, 4); (32, 4); (64, 2) ];
  (* greedy actually balances a skew that mod packs badly: heavy nodes
     0 and 4 collide at ip mod 4 *)
  let site_counts = [| 12; 3; 2; 2; 6; 2; 1; 4 |] in
  let weights = Array.map float_of_int site_counts in
  let imb policy =
    let map = Placement.assign ~domains:4 ~site_counts policy in
    Placement.imbalance (Placement.shard_weights ~domains:4 ~map weights)
  in
  if imb Placement.Greedy >= imb Placement.Mod then
    Alcotest.failf "greedy imbalance %.3f not below mod %.3f"
      (imb Placement.Greedy) (imb Placement.Mod);
  (* profile length mismatch is loud *)
  (match
     Placement.assign ~domains:2 ~site_counts:[| 1; 1 |]
       (Placement.Profile [| 1.0 |])
   with
  | _ -> Alcotest.fail "short profile accepted"
  | exception Invalid_argument _ -> ());
  match Placement.assign ~domains:0 ~site_counts:[| 1 |] Placement.Mod with
  | _ -> Alcotest.fail "domains=0 accepted"
  | exception Invalid_argument _ -> ()

(* Output-multiset equivalence under the load-aware policies, across
   node counts below, equal to, and far above the domain count. *)
let policy_equivalence () =
  List.iter
    (fun (shape, nnodes, ds) ->
      let config = { Cluster.default_config with Cluster.nodes = nnodes } in
      let spread name =
        (* reuse the 0-3 spread, scaled into [0, nnodes): distinct
           sites stay on distinct nodes whenever nnodes >= 4 *)
        placement_spread name * max 1 (nnodes / 4) mod nnodes
      in
      let profile = Array.init nnodes (fun i -> float_of_int (1 + (i mod 7))) in
      List.iter
        (fun (name, src) ->
          let prog = Api.parse src in
          let det = Api.run_program ~config ~placement:spread prog in
          let reference = event_multiset det.Api.outputs in
          List.iter
            (fun d ->
              List.iter
                (fun (pname, policy) ->
                  let par =
                    Api.run_parallel ~config ~placement:spread ~policy
                      ~domains:d prog
                  in
                  let label =
                    Printf.sprintf "%s %s %s at %d domains" name shape pname d
                  in
                  check
                    Alcotest.(list string)
                    label reference
                    (event_multiset par.Par_runner.outputs);
                  if par.Par_runner.timed_out then
                    Alcotest.failf "%s: timed out" label;
                  check Alcotest.bool (label ^ " clean") true
                    par.Par_runner.clean)
                [ ("greedy", Placement.Greedy);
                  ("profile", Placement.Profile profile) ])
            ds)
        corpus)
    [ ("nodes=8", 8, [ 2; 4; 8 ]);
      ("nodes<domains", 3, [ 4; 8 ]);
      ("nodes>>domains", 32, [ 2; 4 ]) ]

(* ------------------------------------------------------------------ *)
(* Sharding invariants                                                 *)

let sharding_smoke () =
  let _, src = List.nth corpus 2 in
  let prog = Api.parse src in
  let d = 4 in
  let par =
    Api.run_parallel ~config ~placement:placement_spread ~domains:d prog
  in
  check Alcotest.bool "clean quiescence" true par.Par_runner.clean;
  check Alcotest.bool "not timed out" false par.Par_runner.timed_out;
  check Alcotest.int "rings fully drained" par.Par_runner.ring_pushed
    par.Par_runner.ring_popped;
  check Alcotest.int "every shard accounted" d
    (Array.length par.Par_runner.sites_per_shard);
  (* every site lives on the shard its node ip maps to: the per-shard
     totals must agree with recomputing ip mod d over the placement *)
  let expected = Array.make d 0 in
  List.iter
    (fun name ->
      let ip = placement_spread name in
      expected.(ip mod d) <- expected.(ip mod d) + 1)
    [ "hub"; "w0"; "w1"; "w2" ];
  check
    Alcotest.(array int)
    "sites confined by ip mod domains" expected par.Par_runner.sites_per_shard;
  check Alcotest.bool "cross-shard traffic happened" true
    (par.Par_runner.handoffs > 0)

(* Observability merge: shard stats account for the whole run, the
   metrics registry folds every shard's instruments, and the snapshot
   hook fires from the coordinator (interval 0 = every poll). *)
let shard_stats_and_metrics () =
  let _, src = List.nth corpus 2 in
  let prog = Api.parse src in
  let d = 4 in
  let snapshots = ref [] in
  let par =
    Api.run_parallel
      ~config:{ config with Cluster.metrics = true }
      ~placement:placement_spread ~domains:d
      ~on_snapshot:(fun s -> snapshots := s :: !snapshots)
      ~snapshot_every_ms:0 prog
  in
  check Alcotest.bool "clean quiescence" true par.Par_runner.clean;
  let st = par.Par_runner.shard_stats in
  check Alcotest.int "one stat per shard" d (Array.length st);
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 st in
  check Alcotest.int "events accounted" par.Par_runner.events
    (sum (fun s -> s.Par_runner.ss_events));
  check Alcotest.int "packets accounted" par.Par_runner.packets
    (sum (fun s -> s.Par_runner.ss_packets));
  check Alcotest.int "ring pushes accounted" par.Par_runner.ring_pushed
    (sum (fun s -> s.Par_runner.ss_ring_pushed));
  check Alcotest.int "ring pops accounted" par.Par_runner.ring_popped
    (sum (fun s -> s.Par_runner.ss_ring_popped));
  check Alcotest.int "parks accounted" par.Par_runner.parks
    (sum (fun s -> s.Par_runner.ss_parks));
  check Alcotest.bool "hiwater seen on some shard" true
    (Array.exists (fun s -> s.Par_runner.ss_ring_hiwater > 0) st);
  (* the merged registry agrees with the summed shard stats *)
  let mx = par.Par_runner.metrics in
  check Alcotest.bool "registry enabled" true
    (Tyco_support.Metrics.enabled mx);
  check Alcotest.int "merged packets counter" par.Par_runner.packets
    (Tyco_support.Metrics.value mx "packets");
  check Alcotest.int "merged handoffs counter" par.Par_runner.handoffs
    (Tyco_support.Metrics.value mx "handoffs_in");
  check Alcotest.int "merged parks counter" par.Par_runner.parks
    (Tyco_support.Metrics.value mx "parks");
  check Alcotest.bool "snapshots fired" true (!snapshots <> []);
  List.iter
    (fun (s : Par_runner.snapshot) ->
      check Alcotest.int "snapshot sees every shard" d
        (Array.length s.Par_runner.sn_executed))
    !snapshots;
  (* the sites list spans every shard's sites, post-join *)
  check Alcotest.int "all sites surfaced" 4
    (List.length par.Par_runner.sites);
  (* the par report renders it all as one valid JSON object *)
  let json = Report.par_json par in
  let has hay sub =
    let nh = String.length hay and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub hay i nn = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "per-shard section" true (has json "\"shards\":[");
  check Alcotest.bool "ring hiwater key" true (has json "\"ring_hiwater\":");
  check Alcotest.bool "latency breakdown" true
    (has json "\"latency_breakdown\"");
  check Alcotest.bool "p999 key" true (has json "\"p999\":")

(* Handoff batching: ring counters count batches, handoffs count the
   envelopes they carried, and the reported fill mean ties the two
   together; placement weights surface in both the result and the
   JSON report. *)
let handoff_batching_invariants () =
  let _, src = List.nth corpus 0 in
  let prog = Api.parse src in
  let d = 4 in
  let par =
    Api.run_parallel
      ~config:{ config with Cluster.metrics = true }
      ~placement:placement_spread ~domains:d prog
  in
  check Alcotest.bool "clean quiescence" true par.Par_runner.clean;
  check Alcotest.int "batches balanced" par.Par_runner.ring_pushed
    par.Par_runner.ring_popped;
  check Alcotest.bool "cross-shard traffic happened" true
    (par.Par_runner.handoffs > 0);
  (* every batch carries at least one envelope, so pushes can never
     exceed envelopes; the fill mean reconciles the two exactly *)
  check Alcotest.bool "batches never exceed envelopes" true
    (par.Par_runner.ring_pushed <= par.Par_runner.handoffs);
  check Alcotest.bool "fill mean at least 1" true
    (par.Par_runner.ring_batch_fill_mean >= 1.0);
  check Alcotest.int "fill mean reconciles batches with envelopes"
    par.Par_runner.handoffs
    (int_of_float
       (par.Par_runner.ring_batch_fill_mean
        *. float_of_int par.Par_runner.ring_pushed
       +. 0.5));
  (* placement weights: one per shard, summing to the site count (the
     static weight under the default Mod policy), mirrored per shard *)
  check Alcotest.int "one weight per shard" d
    (Array.length par.Par_runner.placement_weights);
  let wsum = Array.fold_left ( +. ) 0. par.Par_runner.placement_weights in
  check Alcotest.int "weights sum to the site count" 4
    (int_of_float (wsum +. 0.5));
  Array.iteri
    (fun i st ->
      check
        Alcotest.(float 1e-9)
        (Printf.sprintf "shard %d weight mirrored" i)
        par.Par_runner.placement_weights.(i)
        st.Par_runner.ss_weight)
    par.Par_runner.shard_stats;
  (* measured node weights: one per node, positive in total *)
  check Alcotest.int "one measured weight per node" config.Cluster.nodes
    (Array.length par.Par_runner.node_weights);
  check Alcotest.bool "instructions attributed to nodes" true
    (Array.fold_left ( +. ) 0. par.Par_runner.node_weights > 0.);
  (* and it all surfaces in the JSON report *)
  let json = Report.par_json par in
  let has hay sub =
    let nh = String.length hay and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub hay i nn = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "fill mean key" true
    (has json "\"ring_batch_fill_mean\":");
  check Alcotest.bool "placement weights key" true
    (has json "\"placement_weights\":[");
  check Alcotest.bool "node weights key" true (has json "\"node_weights\":[");
  check Alcotest.bool "per-shard weight key" true (has json "\"weight\":")

(* ------------------------------------------------------------------ *)
(* Dynamic rebalancing (PR 10)                                         *)

let choose_migration_properties () =
  (* balanced loads: never migrates *)
  check
    Alcotest.(option (pair int int))
    "balanced -> None" None
    (Placement.choose_migration ~domains:2 ~map:[| 0; 1; 0; 1 |]
       ~loads:[| 2.; 2.; 2.; 2. |] ~threshold:1.2);
  (* a hot shard with a movable node: the node nearest half the
     hot-cold gap goes to the coldest shard *)
  let map = [| 0; 0; 0; 1 |] and loads = [| 0.; 6.; 2.; 1. |] in
  check
    Alcotest.(option (pair int int))
    "skew -> best-fit node to coldest shard"
    (Some (2, 1))
    (Placement.choose_migration ~domains:2 ~map ~loads ~threshold:1.2);
  (* hysteresis: the same skew under a high threshold stays put *)
  check
    Alcotest.(option (pair int int))
    "high threshold -> None" None
    (Placement.choose_migration ~domains:2 ~map ~loads ~threshold:3.0);
  (* node 0 (name-service host) is pinned: a hot shard whose only
     loaded node is node 0 yields no move *)
  check
    Alcotest.(option (pair int int))
    "node 0 never migrates" None
    (Placement.choose_migration ~domains:2 ~map:[| 0; 1 |]
       ~loads:[| 10.; 1. |] ~threshold:1.2);
  (* a node whose load exceeds the whole gap would just swap the
     imbalance around: not proposed *)
  check
    Alcotest.(option (pair int int))
    "oversized node stays" None
    (Placement.choose_migration ~domains:2 ~map:[| 0; 0; 1 |]
       ~loads:[| 0.; 10.; 1. |] ~threshold:1.2);
  match
    Placement.choose_migration ~domains:2 ~map:[| 0; 1 |] ~loads:[| 1. |]
      ~threshold:1.2
  with
  | _ -> Alcotest.fail "length mismatch accepted"
  | exception Invalid_argument _ -> ()

(* Output multisets are preserved with the rebalancer armed (aggressive
   interval and threshold), across the domain sweep plus 8. *)
let rebalance_equivalence () =
  let rb = { Par_runner.rb_interval_ms = 1; rb_threshold = 1.01 } in
  let ds = List.sort_uniq compare (8 :: domain_counts) in
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let det = Api.run_program ~config ~placement:placement_spread prog in
      let reference = event_multiset det.Api.outputs in
      List.iter
        (fun d ->
          let par =
            Api.run_parallel ~config ~placement:placement_spread ~domains:d
              ~rebalance:rb prog
          in
          let label = Printf.sprintf "%s rebalancing at %d domains" name d in
          check
            Alcotest.(list string)
            label reference
            (event_multiset par.Par_runner.outputs);
          check Alcotest.bool (label ^ " clean") true par.Par_runner.clean;
          check Alcotest.int (label ^ " rings drained")
            par.Par_runner.ring_pushed par.Par_runner.ring_popped;
          check Alcotest.int (label ^ " no dead letters") 0
            par.Par_runner.dead_letters)
        ds)
    corpus

(* The deterministic migration hook: both forced moves must install
   (each holds a quiescence unit from ship to install, so a clean run
   cannot terminate around them), with no envelope lost or duplicated
   anywhere — the multiset survives a node changing shards mid-run. *)
let forced_migration_accounting () =
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let det = Api.run_program ~config ~placement:placement_spread prog in
      let reference = event_multiset det.Api.outputs in
      (* nodes 1 and 2 start on shards 1 and 2 under Mod at 4 domains,
         so both commands post before the domains spawn *)
      let par =
        Api.run_parallel ~config ~placement:placement_spread ~domains:4
          ~force_migrations:[ (1, 3); (2, 0) ]
          prog
      in
      let label = Printf.sprintf "%s forced migration" name in
      check Alcotest.int (label ^ ": both moves installed") 2
        par.Par_runner.migrations;
      check Alcotest.bool (label ^ ": clean") true par.Par_runner.clean;
      check Alcotest.bool (label ^ ": not timed out") false
        par.Par_runner.timed_out;
      check Alcotest.int (label ^ ": rings drained")
        par.Par_runner.ring_pushed par.Par_runner.ring_popped;
      check Alcotest.int (label ^ ": no dead letters") 0
        par.Par_runner.dead_letters;
      check Alcotest.bool (label ^ ": migration time measured") true
        (par.Par_runner.migration_ns > 0);
      check Alcotest.bool (label ^ ": forwarded counter sane") true
        (par.Par_runner.forwarded_envelopes >= 0);
      check
        Alcotest.(list string)
        (label ^ ": multiset preserved")
        reference
        (event_multiset par.Par_runner.outputs);
      (* the counters surface in the JSON report *)
      let json = Report.par_json par in
      let has hay sub =
        let nh = String.length hay and nn = String.length sub in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = sub || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool (label ^ ": migrations key") true
        (has json "\"migrations\":2");
      check Alcotest.bool (label ^ ": forwarded key") true
        (has json "\"forwarded_envelopes\":"))
    corpus;
  (* out-of-range entries are loud: node 0 is pinned, shards bounded *)
  let prog = Api.parse (snd (List.hd corpus)) in
  List.iter
    (fun bad ->
      match
        Api.run_parallel ~config ~placement:placement_spread ~domains:2
          ~force_migrations:[ bad ] prog
      with
      | _ -> Alcotest.fail "bad force_migrations accepted"
      | exception Api.Error (Api.Runtime_error _) -> ())
    [ (0, 1); (-1, 1); (999, 1); (1, 2); (1, -1) ]

(* PR 10 budget fix: [max_events] bounds the event count summed over
   all shards, not each shard separately.  A cap set between the
   per-shard maximum and the whole-run total must now trip — under the
   old per-shard check it silently admitted up to domains * max_events
   events. *)
let global_event_budget () =
  let _, src = List.nth corpus 2 in
  let prog = Api.parse src in
  let free =
    Api.run_parallel ~config ~placement:placement_spread ~domains:4 prog
  in
  let total = free.Par_runner.events in
  let per_shard_max =
    Array.fold_left
      (fun acc s -> max acc s.Par_runner.ss_events)
      0 free.Par_runner.shard_stats
  in
  let cap = total * 2 / 3 in
  (* the regression is only pinned if the cap sits strictly between the
     two semantics *)
  check Alcotest.bool "cap above any single shard" true (per_shard_max < cap);
  check Alcotest.bool "cap below the global total" true (cap < total);
  (match
     Api.run_parallel ~config ~placement:placement_spread ~domains:4
       ~max_events:cap prog
   with
  | _ -> Alcotest.fail "global budget not enforced"
  | exception Api.Error (Api.Runtime_error m) ->
      let has sub =
        let nh = String.length m and nn = String.length sub in
        let rec go i = i + nn <= nh && (String.sub m i nn = sub || go (i + 1)) in
        go 0
      in
      (* satellite 2 rides along: the failure crossed the domain
         boundary and the join names the shard that raised it *)
      check Alcotest.bool "names the failing shard" true (has "shard ");
      check Alcotest.bool "mirrors the Simnet livelock guard" true
        (has "exceeded"));
  (* a cap at the measured total passes: the bound is not off by one
     shard's worth *)
  let again =
    Api.run_parallel ~config ~placement:placement_spread ~domains:4
      ~max_events:(total * 2) prog
  in
  check Alcotest.bool "generous cap still quiesces" true
    again.Par_runner.clean;
  (* and --domains 1 keeps the Simnet semantics for the same cap *)
  match
    Api.run_parallel ~config ~placement:placement_spread ~domains:1
      ~max_events:1 prog
  with
  | _ -> Alcotest.fail "domains 1 budget not enforced"
  | exception Api.Error (Api.Runtime_error _) -> ()

let rebalance_rejects_tracing () =
  let prog = Api.parse (snd (List.hd corpus)) in
  let traced = { config with Cluster.tracing = true } in
  (match
     Api.run_parallel ~config:traced ~placement:placement_spread ~domains:2
       ~rebalance:{ Par_runner.rb_interval_ms = 10; rb_threshold = 1.5 }
       prog
   with
  | _ -> Alcotest.fail "tracing + rebalance accepted"
  | exception Api.Error (Api.Runtime_error _) -> ());
  match
    Api.run_parallel ~config:traced ~placement:placement_spread ~domains:2
      ~force_migrations:[ (1, 0) ] prog
  with
  | _ -> Alcotest.fail "tracing + forced migration accepted"
  | exception Api.Error (Api.Runtime_error _) -> ()

let rejects_deterministic_only_modes () =
  (* the Par_runner contract is Invalid_argument; Api.run_parallel
     re-wraps it as Api.Error like every other runtime failure *)
  let units = Api.compile (Api.parse "io!printi[1]") in
  List.iter
    (fun (what, config) ->
      (match Par_runner.run ~config ~domains:2 units with
      | _ -> Alcotest.failf "%s: expected Invalid_argument" what
      | exception Invalid_argument _ -> ());
      match Api.run_parallel ~config ~domains:2 (Api.parse "io!printi[1]") with
      | _ -> Alcotest.failf "%s: expected Api.Error" what
      | exception Api.Error _ -> ())
    [ ( "replicated ns",
        { Cluster.default_config with Cluster.ns_mode = Cluster.Replicated } );
      ( "faults",
        { Cluster.default_config with
          Cluster.faults =
            { Tyco_net.Simnet.no_faults with Tyco_net.Simnet.drop = 0.1 } } ) ]

let tests =
  [ ("spsc ring fifo", `Quick, ring_fifo);
    ("spsc ring bounded", `Quick, ring_bounded);
    ("spsc ring wraparound", `Quick, ring_wraparound);
    ("spsc ring two domains", `Quick, ring_two_domains);
    ("domains 1 bit-identical", `Quick, domains1_bit_identical);
    ("multiset equivalence", `Quick, multiset_equivalence);
    ("shipped samples equivalence", `Slow, shipped_samples_equivalence);
    ("placement map properties", `Quick, placement_map_properties);
    ("policy equivalence sweeps", `Slow, policy_equivalence);
    ("sharding smoke at 4 domains", `Quick, sharding_smoke);
    ("handoff batching invariants", `Quick, handoff_batching_invariants);
    ("shard stats and metrics merge", `Quick, shard_stats_and_metrics);
    ("rejects deterministic-only modes", `Quick,
     rejects_deterministic_only_modes);
    ("choose migration properties", `Quick, choose_migration_properties);
    ("rebalance equivalence", `Quick, rebalance_equivalence);
    ("forced migration accounting", `Quick, forced_migration_accounting);
    ("global event budget", `Quick, global_event_budget);
    ("rebalance rejects tracing", `Quick, rebalance_rejects_tracing) ]

let () =
  Alcotest.run "dityco"
    [ ("support", Test_support.tests); ("syntax", Test_syntax.tests); ("types", Test_types.tests); ("calculus", Test_calculus.tests); ("compiler", Test_compiler.tests); ("vm", Test_vm.tests); ("net", Test_net.tests); ("runtime", Test_runtime.tests); ("differential", Test_differential.tests); ("prelude", Test_prelude.tests); ("stress", Test_stress.tests); ("chaos", Test_chaos.tests); ("lifecycle", Test_lifecycle.tests); ("corpus", Test_corpus.tests); ("equiv", Test_equiv.tests); ("trace", Test_trace.tests); ("hotpath", Test_hotpath.tests) ]

(* The observability layer end-to-end: trace determinism, cross-site
   causal trees (SHIP and FETCH, clean and under loss), Perfetto export
   shape, the binary archive round-trip, the packet-trailer wire
   compatibility rules, and the null-safe report path. *)

open Dityco
module Trace = Tyco_support.Trace
module Packet = Tyco_net.Packet
module Netref = Tyco_support.Netref
module Simnet = Tyco_net.Simnet

let check = Alcotest.check

let traced_config = { Cluster.default_config with Cluster.tracing = true }

let run ?(config = traced_config) ?placement src =
  Api.run_program ~config ?placement (Api.parse src)

let tracer (r : Api.result) = Cluster.tracer r.Api.cluster

(* SHIPO: the applet's body migrates to the server and runs there. *)
let ship_src =
  {| site server {
       def S(self) = self?{ applet(p) = (p?(x) = io!printi[x + 100] | S[self]) }
       in export new srv S[srv] }
     site client { import srv from server in new p (srv!applet[p] | p![5]) } |}

(* FETCH: the class byte-code is downloaded by the client. *)
let fetch_src =
  {| site server { export def Applet(p) = p![42] in nil }
     site client { import Applet from server in
                   new p (Applet[p] | p?(v) = io!printi[v]) } |}

(* ------------------------------------------------------------------ *)
(* A minimal JSON syntax checker: enough to assert the Perfetto export
   and the run report are well-formed without a JSON dependency.       *)

exception Bad_json

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c -> incr pos; c
    | None -> raise Bad_json
  in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> incr pos; ws ()
    | _ -> ()
  in
  let lit w =
    String.iter (fun c -> if next () <> c then raise Bad_json) w
  in
  let string_ () =
    lit "\"";
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> ignore (next ()); go ()
      | _ -> go ()
    in
    go ()
  in
  let number () =
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> num_char c | None -> false) do
      incr pos
    done;
    if !pos = start then raise Bad_json
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some _ -> number ()
    | None -> raise Bad_json
  and obj () =
    lit "{";
    ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        ws (); string_ (); ws (); lit ":"; value (); ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> raise Bad_json
      in
      members ()
  and arr () =
    lit "[";
    ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        value (); ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | _ -> raise Bad_json
      in
      elements ()
  in
  match value (); ws (); !pos = n with
  | complete -> complete
  | exception Bad_json -> false

let has hay sub =
  let nh = String.length hay and nn = String.length sub in
  let rec go i = i + nn <= nh && (String.sub hay i nn = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Off by default                                                      *)

let tracing_off_by_default () =
  let r = run ~config:Cluster.default_config ship_src in
  check Alcotest.bool "collector disabled" false (Trace.enabled (tracer r));
  check Alcotest.int "no events" 0 (List.length (Trace.events (tracer r)));
  check Alcotest.bool "fresh_span is null" true
    (Trace.is_null (Trace.fresh_span (tracer r) ~parent:Trace.null_span))

(* ------------------------------------------------------------------ *)
(* Determinism: the trace is a reproducible artifact                   *)

let trace_deterministic () =
  let a = run ship_src and b = run ship_src in
  check Alcotest.bool "events recorded" true (Trace.events (tracer a) <> []);
  check Alcotest.bool "byte-identical archive" true
    (Trace.serialize (tracer a) = Trace.serialize (tracer b));
  check Alcotest.bool "byte-identical chrome json" true
    (Trace.to_chrome_json (tracer a) = Trace.to_chrome_json (tracer b))

(* ------------------------------------------------------------------ *)
(* Causal trees                                                        *)

let span_of (e : Trace.event) = e.Trace.ev_span

(* Every non-root event hangs off another event of the same trace, and
   its trace_id agrees with its parent's. *)
let tree_well_formed events =
  let by_span = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let s = span_of e in
      if s.Trace.span_id <> 0 then Hashtbl.replace by_span s.Trace.span_id s)
    events;
  List.iter
    (fun e ->
      let s = span_of e in
      if s.Trace.span_id <> 0 && s.Trace.parent_id <> 0 then
        match Hashtbl.find_opt by_span s.Trace.parent_id with
        | None ->
            Alcotest.failf "span %d: parent %d emitted no event"
              s.Trace.span_id s.Trace.parent_id
        | Some p ->
            if p.Trace.trace_id <> s.Trace.trace_id then
              Alcotest.failf "span %d: trace %d but parent in trace %d"
                s.Trace.span_id s.Trace.trace_id p.Trace.trace_id)
    events

(* A Send whose packet span also appears as a Deliver on a different
   track: the cross-site edge the flow events draw. *)
let crosses_sites events =
  List.exists
    (fun (e : Trace.event) ->
      match e.Trace.ev_kind with
      | Trace.Send _ ->
          List.exists
            (fun (d : Trace.event) ->
              match d.Trace.ev_kind with
              | Trace.Deliver _ ->
                  (span_of d).Trace.span_id = (span_of e).Trace.span_id
                  && d.Trace.ev_track <> e.Trace.ev_track
              | _ -> false)
            events
      | _ -> false)
    events

let causal_tree_ship () =
  let r = run ship_src in
  let events = Trace.events (tracer r) in
  tree_well_formed events;
  check Alcotest.bool "has cross-site send/deliver edge" true
    (crosses_sites events);
  check Alcotest.bool "object shipment committed" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.ev_kind = Trace.Obj_commit)
       events)

let causal_tree_fetch () =
  let r = run fetch_src in
  let events = Trace.events (tracer r) in
  tree_well_formed events;
  (* the FETCH reply must be causally under the same trace as the
     request that provoked it *)
  let req =
    List.find
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with
        | Trace.Send { pk = Trace.Kfetch_req; _ } -> true
        | _ -> false)
      events
  in
  let rep =
    List.find
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with
        | Trace.Deliver { pk = Trace.Kfetch_rep; _ } -> true
        | _ -> false)
      events
  in
  check Alcotest.int "reply in the request's trace"
    (span_of req).Trace.trace_id (span_of rep).Trace.trace_id;
  check Alcotest.bool "code linked" true
    (List.exists
       (fun (e : Trace.event) ->
         match e.Trace.ev_kind with Trace.Link_code _ -> true | _ -> false)
       events)

(* Under loss with reliable delivery: retransmissions appear on the
   fabric track carrying the packet's own span, so retries stay inside
   the original causal tree rather than starting orphan traces. *)
let causal_tree_retransmit () =
  let config =
    { traced_config with
      Cluster.reliable = true;
      faults = { Simnet.no_faults with Simnet.drop = 0.4 } }
  in
  let r = run ~config ship_src in
  let events = Trace.events (tracer r) in
  tree_well_formed events;
  let retransmits =
    List.filter
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with Trace.Retransmit _ -> true | _ -> false)
      events
  in
  check Alcotest.bool "loss provoked retransmissions" true (retransmits <> []);
  List.iter
    (fun (rt : Trace.event) ->
      check Alcotest.int "retransmit on fabric track" Trace.fabric_track
        rt.Trace.ev_track;
      check Alcotest.bool "retransmit span matches an original send" true
        (List.exists
           (fun (e : Trace.event) ->
             match e.Trace.ev_kind with
             | Trace.Send _ ->
                 (span_of e).Trace.span_id = (span_of rt).Trace.span_id
             | _ -> false)
           events))
    retransmits;
  check Alcotest.bool "acks traced" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.ev_kind = Trace.Ack)
       events)

(* ------------------------------------------------------------------ *)
(* Perfetto export shape                                               *)

let perfetto_shape () =
  let r = run ship_src in
  let json = Trace.to_chrome_json (tracer r) in
  check Alcotest.bool "well-formed json" true (json_valid json);
  check Alcotest.bool "traceEvents array" true (has json "\"traceEvents\"");
  check Alcotest.bool "complete events (run slices)" true
    (has json "\"ph\":\"X\"");
  check Alcotest.bool "flow start" true (has json "\"ph\":\"s\"");
  check Alcotest.bool "flow finish" true (has json "\"ph\":\"f\"");
  check Alcotest.bool "track names" true (has json "process_name");
  check Alcotest.bool "site track present" true (has json "\"server\"")

(* ------------------------------------------------------------------ *)
(* Binary archive round-trip                                           *)

let archive_roundtrip () =
  let r = run fetch_src in
  let tr = tracer r in
  let blob = Trace.serialize tr in
  let ar = Trace.deserialize blob in
  check Alcotest.bool "events preserved" true
    (ar.Trace.ar_events = Trace.events tr);
  check Alcotest.bool "tracks preserved" true
    (ar.Trace.ar_tracks = Trace.tracks tr);
  check Alcotest.int "dropped preserved" (Trace.dropped tr)
    ar.Trace.ar_dropped;
  (* re-export from the archive is stable *)
  check Alcotest.bool "re-serialization identical" true
    (Trace.serialize (Trace.of_archive ar) = blob);
  check Alcotest.bool "chrome export from archive identical" true
    (Trace.to_chrome_json (Trace.of_archive ar) = Trace.to_chrome_json tr)

let archive_malformed () =
  let raises s =
    match Trace.deserialize s with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false
  in
  check Alcotest.bool "bad magic" true (raises "NOPE....");
  check Alcotest.bool "truncated" true (raises "TYCT");
  check Alcotest.bool "empty" true (raises "")

(* ------------------------------------------------------------------ *)
(* Packet trailer wire compatibility                                   *)

let trailer_compat () =
  let r = Netref.make ~kind:Netref.Channel ~heap_id:7 ~site_id:1 ~ip:0 in
  let p = Packet.Pmsg { dst = r; label = "bump"; args = [ Packet.Wint 3 ] } in
  let span = { Trace.trace_id = 9; span_id = 11; parent_id = 9 } in
  let traced = Packet.to_string_traced ~ctx:span p in
  let plain = Packet.to_string p in
  (* old decoder on new bytes: trailer ignored *)
  check Alcotest.bool "legacy decoder reads traced packet" true
    (Packet.to_string (Packet.of_string traced) = plain);
  (* new decoder on both generations *)
  (match Packet.of_string_traced traced with
  | _, Some s -> check Alcotest.bool "span survives the wire" true (s = span)
  | _, None -> Alcotest.fail "trailer lost");
  (match Packet.of_string_traced plain with
  | q, None ->
      check Alcotest.bool "untraced packet intact" true
        (Packet.to_string q = plain)
  | _, Some _ -> Alcotest.fail "phantom span");
  (* a null span costs zero bytes *)
  check Alcotest.bool "null ctx adds no trailer" true
    (Packet.to_string_traced ~ctx:Trace.null_span p = plain);
  (* the latency model is not perturbed by observation *)
  check Alcotest.int "byte_size excludes trailer" (String.length plain)
    (Packet.byte_size p)

(* ------------------------------------------------------------------ *)
(* Outputs unperturbed by observation                                  *)

let tracing_preserves_outputs () =
  let a = run ~config:Cluster.default_config ship_src in
  let b = run ship_src in
  check Alcotest.bool "same outputs" true
    (List.map snd a.Api.outputs = List.map snd b.Api.outputs);
  check Alcotest.int "same virtual time" a.Api.virtual_ns b.Api.virtual_ns;
  check Alcotest.int "same packets" a.Api.packets b.Api.packets

(* ------------------------------------------------------------------ *)
(* Report: total on idle sites, JSON stays parseable                   *)

let report_idle_site_json () =
  (* one site never runs a thread or sees a packet *)
  let r =
    run ~config:Cluster.default_config
      {| site a { new x (x![1] | x?(v) = io!printi[v]) }
         site idle { nil } |}
  in
  let json = Report.to_json (Report.of_result r) in
  check Alcotest.bool "well-formed json" true (json_valid json);
  check Alcotest.bool "breakdown present" true
    (has json "\"latency_breakdown\"");
  (* no reliable mode -> no retransmit samples -> null, not inf *)
  check Alcotest.bool "empty summary is null" true
    (has json "\"retransmit\":null")

let report_breakdown_populated () =
  let r = run ship_src in
  let rep = Report.of_result r in
  (match rep.Report.breakdown.Report.b_queue_wait with
  | Some s -> check Alcotest.bool "queue-wait samples" true (s.Tyco_support.Stats.Dist.s_n > 0)
  | None -> Alcotest.fail "expected queue-wait samples");
  (match rep.Report.breakdown.Report.b_wire with
  | Some s -> check Alcotest.bool "wire samples" true (s.Tyco_support.Stats.Dist.s_n > 0)
  | None -> Alcotest.fail "expected wire samples");
  check Alcotest.bool "report json valid" true
    (json_valid (Report.to_json rep))

(* ------------------------------------------------------------------ *)
(* Bounded packet log                                                  *)

let packet_log_bounded () =
  let config =
    { Cluster.default_config with Cluster.packet_log_capacity = 2 }
  in
  let r = run ~config fetch_src in
  check Alcotest.bool "log bounded" true
    (List.length (Cluster.packet_trace r.Api.cluster) <= 2);
  check Alcotest.bool "evictions counted" true
    (Cluster.packet_trace_dropped r.Api.cluster > 0);
  (* the log also records same-node fast-path deliveries, which are
     excluded from the fabric packet count *)
  check Alcotest.int "dropped + kept = sent"
    (r.Api.packets + Cluster.same_node_fast r.Api.cluster)
    (List.length (Cluster.packet_trace r.Api.cluster)
    + Cluster.packet_trace_dropped r.Api.cluster)

(* ------------------------------------------------------------------ *)
(* Event-ring bound                                                    *)

let event_ring_bounded () =
  let config = { traced_config with Cluster.trace_capacity = 16 } in
  let r = run ~config ship_src in
  let tr = tracer r in
  let tracks =
    List.length
      (List.sort_uniq compare
         (List.map (fun (e : Trace.event) -> e.Trace.ev_track)
            (Trace.events tr)))
  in
  check Alcotest.bool "per-track bound respected" true
    (List.length (Trace.events tr) <= 16 * max tracks 1);
  check Alcotest.bool "drops counted" true (Trace.dropped tr > 0)

(* Batched transport: the batch frame gets its own root span on the
   fabric track — a [Kbatch] Send/Deliver pair Perfetto draws as a flow
   arrow — while the per-packet site-level spans stay intact, so the
   SHIP/FETCH causal trees look exactly as they do unbatched. *)
let causal_tree_batched () =
  List.iter
    (fun (name, src) ->
      let r = run src in
      let events = Trace.events (tracer r) in
      tree_well_formed events;
      check Alcotest.bool
        (Printf.sprintf "%s: per-packet cross-site edge survives" name)
        true (crosses_sites events);
      let batch_sends =
        List.filter
          (fun (e : Trace.event) ->
            match e.Trace.ev_kind with
            | Trace.Send { pk = Trace.Kbatch; _ } -> true
            | _ -> false)
          events
      in
      check Alcotest.bool (Printf.sprintf "%s: batch send present" name)
        true (batch_sends <> []);
      List.iter
        (fun (e : Trace.event) ->
          check Alcotest.int
            (Printf.sprintf "%s: batch send on fabric track" name)
            Trace.fabric_track e.Trace.ev_track;
          check Alcotest.int
            (Printf.sprintf "%s: batch span is a root" name) 0
            (span_of e).Trace.parent_id;
          (* the matching Deliver carries the same span: the flow edge *)
          check Alcotest.bool
            (Printf.sprintf "%s: batch deliver matches" name) true
            (List.exists
               (fun (d : Trace.event) ->
                 match d.Trace.ev_kind with
                 | Trace.Deliver { pk = Trace.Kbatch; _ } ->
                     (span_of d).Trace.span_id = (span_of e).Trace.span_id
                 | _ -> false)
               events))
        batch_sends)
    [ ("ship", ship_src); ("fetch", fetch_src) ]

(* A nonzero flush deadline makes packets sit in the outbox; the wait
   surfaces as [Flush_wait] events on the packet's own span. *)
let flush_wait_traced () =
  let config =
    { traced_config with Cluster.flush_deadline_ns = 50_000 }
  in
  let r = run ~config ship_src in
  let events = Trace.events (tracer r) in
  let waits =
    List.filter
      (fun (e : Trace.event) ->
        match e.Trace.ev_kind with
        | Trace.Flush_wait { ns } -> ns > 0
        | _ -> false)
      events
  in
  check Alcotest.bool "flush waits recorded" true (waits <> []);
  List.iter
    (fun (e : Trace.event) ->
      check Alcotest.int "flush wait on fabric track" Trace.fabric_track
        e.Trace.ev_track)
    waits;
  (* with the default zero deadline nothing waits, so no events *)
  let r0 = run ship_src in
  check Alcotest.bool "no flush waits at deadline 0" true
    (not
       (List.exists
          (fun (e : Trace.event) ->
            match e.Trace.ev_kind with
            | Trace.Flush_wait _ -> true
            | _ -> false)
          (Trace.events (tracer r0))))

(* ------------------------------------------------------------------ *)
(* Parallel runtime tracing                                            *)

(* --domains 1 dispatches to the deterministic engine, so its trace is
   the deterministic trace, byte for byte — span striding defaults to
   (0, 1) and changes nothing. *)
let par_domains1_trace_bit_identical () =
  let prog = Api.parse ship_src in
  let par = Api.run_parallel ~config:traced_config ~domains:1 prog in
  let det = Api.run_program ~config:traced_config prog in
  check Alcotest.bool "events recorded" true
    (Trace.events par.Par_runner.trace <> []);
  check Alcotest.bool "byte-identical archive" true
    (Trace.serialize par.Par_runner.trace = Trace.serialize (tracer det));
  check Alcotest.bool "byte-identical chrome json" true
    (Trace.to_chrome_json par.Par_runner.trace
    = Trace.to_chrome_json (tracer det))

(* Sharded engine at 4 domains: the merged trace keeps well-formed
   causal trees across the SPSC handoff (envelopes carry the sending
   span), tracks come back shard-tagged, and the Perfetto export draws
   cross-shard flow arrows. *)
let par_domains4_traced () =
  let prog = Api.parse ship_src in
  let r = Api.run_parallel ~config:traced_config ~domains:4 prog in
  check Alcotest.bool "clean quiescence" true r.Par_runner.clean;
  let tr = r.Par_runner.trace in
  let events = Trace.events tr in
  check Alcotest.bool "events recorded" true (events <> []);
  tree_well_formed events;
  check Alcotest.bool "cross-shard send/deliver edge" true
    (crosses_sites events);
  (* striding makes span ids globally unique without a shared counter:
     one span id never belongs to two different traces *)
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      let s = span_of e in
      if s.Trace.span_id <> 0 then begin
        (match Hashtbl.find_opt by_id s.Trace.span_id with
        | Some t when t <> s.Trace.trace_id ->
            Alcotest.failf "span %d in traces %d and %d" s.Trace.span_id t
              s.Trace.trace_id
        | _ -> ());
        Hashtbl.replace by_id s.Trace.span_id s.Trace.trace_id
      end)
    events;
  let json = Trace.to_chrome_json tr in
  check Alcotest.bool "well-formed json" true (json_valid json);
  check Alcotest.bool "shard-tagged server track" true (has json "shard0/");
  check Alcotest.bool "shard-tagged client track" true (has json "shard1/");
  check Alcotest.bool "fabric track untagged" true
    (not (has json "/fabric"));
  check Alcotest.bool "flow start" true (has json "\"ph\":\"s\"");
  check Alcotest.bool "flow finish" true (has json "\"ph\":\"f\"")

let tests =
  [ ("tracing off by default", `Quick, tracing_off_by_default);
    ("trace deterministic", `Quick, trace_deterministic);
    ("causal tree: ship", `Quick, causal_tree_ship);
    ("causal tree: fetch", `Quick, causal_tree_fetch);
    ("causal tree: retransmit under loss", `Quick, causal_tree_retransmit);
    ("causal tree: batched ship/fetch", `Quick, causal_tree_batched);
    ("flush wait traced", `Quick, flush_wait_traced);
    ("perfetto export shape", `Quick, perfetto_shape);
    ("archive round-trip", `Quick, archive_roundtrip);
    ("archive malformed", `Quick, archive_malformed);
    ("packet trailer compatibility", `Quick, trailer_compat);
    ("tracing preserves outputs", `Quick, tracing_preserves_outputs);
    ("report: idle site json", `Quick, report_idle_site_json);
    ("report: breakdown populated", `Quick, report_breakdown_populated);
    ("packet log bounded", `Quick, packet_log_bounded);
    ("event ring bounded", `Quick, event_ring_bounded);
    ( "parallel: domains 1 trace bit-identical",
      `Quick,
      par_domains1_trace_bit_identical );
    ("parallel: domains 4 traced", `Quick, par_domains4_traced) ]

(* Randomized model checking for the hot-path containers.

   Dq (the VM run-queue deque) and Lru (the bounded receiver caches)
   both carry correctness weight the unit tests only spot-check: Dq's
   ring buffer wraps and regrows under mixed front/back traffic, Lru's
   intrusive recency list must agree with an obvious model under any
   interleaving of find/add/remove.  Here each structure is driven
   with long random operation sequences — from {!Tyco_support.Prng},
   seeded per owner so the sweeps are reproducible — and compared
   against a naive list-based reference after every step. *)

module Dq = Tyco_support.Dq
module Lru = Tyco_support.Lru
module Prng = Tyco_support.Prng

let seeds = [ 1; 7; 42; 1001; 424242 ]
let steps = 3_000

(* ------------------------------------------------------------------ *)
(* Dq vs a plain list used as a sequence (front = head).               *)

let dq_model_agrees seed =
  let rng = Prng.for_owner ~seed ~owner:0 in
  let dq = Dq.create ~capacity:2 () in
  let model = ref [] in
  for step = 1 to steps do
    (match Prng.int rng 6 with
    | 0 ->
        let v = Prng.int rng 1000 in
        Dq.push_back dq v;
        model := !model @ [ v ]
    | 1 ->
        let v = Prng.int rng 1000 in
        Dq.push_front dq v;
        model := v :: !model
    | 2 -> (
        let got = Dq.pop_front dq in
        match !model with
        | [] -> Alcotest.(check (option int)) "pop_front empty" None got
        | x :: rest ->
            model := rest;
            Alcotest.(check (option int)) "pop_front" (Some x) got)
    | 3 -> (
        let got = Dq.pop_back dq in
        match List.rev !model with
        | [] -> Alcotest.(check (option int)) "pop_back empty" None got
        | x :: rev_rest ->
            model := List.rev rev_rest;
            Alcotest.(check (option int)) "pop_back" (Some x) got)
    | 4 ->
        Alcotest.(check (option int))
          "peek_front"
          (match !model with [] -> None | x :: _ -> Some x)
          (Dq.peek_front dq)
    | _ ->
        if step mod 97 = 0 then begin
          Dq.clear dq;
          model := []
        end
        else begin
          (* exercise the non-allocating pops on the same schedule *)
          match !model with
          | [] -> ()
          | x :: rest ->
              model := rest;
              Alcotest.(check int) "pop_front_exn" x (Dq.pop_front_exn dq)
        end);
    Alcotest.(check int) "length" (List.length !model) (Dq.length dq);
    Alcotest.(check bool) "is_empty" (!model = []) (Dq.is_empty dq);
    if step mod 251 = 0 then
      Alcotest.(check (list int)) "to_list" !model (Dq.to_list dq)
  done

let dq_random () = List.iter dq_model_agrees seeds

let dq_of_list_roundtrip () =
  List.iter
    (fun seed ->
      let rng = Prng.for_owner ~seed ~owner:1 in
      let xs = List.init (Prng.int rng 64) (fun _ -> Prng.int rng 1000) in
      Alcotest.(check (list int)) "of_list/to_list" xs (Dq.to_list (Dq.of_list xs)))
    seeds

(* ------------------------------------------------------------------ *)
(* Lru vs an assoc list kept in most-recently-used-first order.        *)

(* model: (key, value) list, MRU first, never longer than capacity *)
let lru_model_agrees seed =
  let rng = Prng.for_owner ~seed ~owner:2 in
  let capacity = 1 + Prng.int rng 8 in
  let lru = Lru.create ~capacity in
  let model = ref [] in
  let keys = 2 * capacity (* enough collisions to keep evicting *) in
  for _step = 1 to steps do
    (match Prng.int rng 4 with
    | 0 | 1 ->
        let k = Prng.int rng keys and v = Prng.int rng 1000 in
        let evicted = Lru.add lru k v in
        let without = List.remove_assoc k !model in
        model := (k, v) :: without;
        let expect_evicted =
          if List.length !model > capacity then begin
            let rec split_last acc = function
              | [] -> assert false
              | [ last ] -> (List.rev acc, last)
              | x :: rest -> split_last (x :: acc) rest
            in
            let kept, last = split_last [] !model in
            model := kept;
            Some last
          end
          else None
        in
        Alcotest.(check (option (pair int int))) "eviction" expect_evicted
          evicted
    | 2 -> (
        let k = Prng.int rng keys in
        let got = Lru.find lru k in
        match List.assoc_opt k !model with
        | None -> Alcotest.(check (option int)) "miss" None got
        | Some v ->
            (* a hit refreshes recency in both worlds *)
            model := (k, v) :: List.remove_assoc k !model;
            Alcotest.(check (option int)) "hit" (Some v) got)
    | _ ->
        let k = Prng.int rng keys in
        let present = List.mem_assoc k !model in
        model := List.remove_assoc k !model;
        Alcotest.(check bool) "remove" present (Lru.remove lru k));
    Alcotest.(check int) "length" (List.length !model) (Lru.length lru);
    Alcotest.(check int) "capacity stable" capacity (Lru.capacity lru);
    List.iter
      (fun (k, _) ->
        Alcotest.(check bool) (Printf.sprintf "mem %d" k) true (Lru.mem lru k))
      !model
  done

let lru_random () = List.iter lru_model_agrees seeds

let tests =
  [ ("dq random ops vs model", `Quick, dq_random);
    ("dq of_list round-trip", `Quick, dq_of_list_roundtrip);
    ("lru random ops vs model", `Quick, lru_random) ]

(* Compiler tests: code generation shape, byte-code serialization,
   sub-unit extraction and dynamic linking. *)

open Tyco_compiler
module Parser = Tyco_syntax.Parser

let check = Alcotest.check

let compile src = Compile.compile_proc (Parser.parse_proc src)

let instrs (u : Block.unit_) =
  Array.to_list u.blocks
  |> List.concat_map (fun (b : Block.block) -> Array.to_list b.blk_code)

let has_instr u pred = List.exists pred (instrs u)

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)

let compile_message () =
  let u = compile "new x x!m[1, 2]" in
  check Alcotest.int "one block" 1 (Array.length u.Block.blocks);
  check Alcotest.bool "trmsg emitted" true
    (has_instr u (function
      | Instr.Trmsg { label = "m"; argc = 2; _ } -> true
      | _ -> false));
  check Alcotest.bool "newc emitted" true
    (has_instr u (function Instr.New_chan _ -> true | _ -> false))

let compile_object () =
  let u = compile "new x x?{ a(u) = io!printi[u], b() = nil }" in
  check Alcotest.int "mtable" 1 (Array.length u.Block.mtables);
  let mt = u.Block.mtables.(0) in
  check Alcotest.int "two methods" 2 (Array.length mt.Block.mt_entries);
  (* the a-method captures io *)
  check Alcotest.int "captures io" 1 (Array.length mt.Block.mt_captures);
  check Alcotest.bool "trobj" true
    (has_instr u (function Instr.Trobj 0 -> true | _ -> false))

let compile_def_group () =
  let u =
    compile
      {| def A(n) = if n == 0 then nil else B[n - 1]
         and B(n) = A[n]
         in A[3] |}
  in
  check Alcotest.int "one group" 1 (Array.length u.Block.groups);
  let g = u.Block.groups.(0) in
  check Alcotest.int "two classes" 2 (Array.length g.Block.grp_classes);
  check Alcotest.int "no captures" 0 (Array.length g.Block.grp_captures);
  check Alcotest.bool "defgroup emitted" true
    (has_instr u (function Instr.Defgroup 0 -> true | _ -> false));
  check Alcotest.bool "instof emitted" true
    (has_instr u (function Instr.Instof 1 -> true | _ -> false))

let compile_class_captures_names () =
  let u = compile "new db def G(k) = db![k] in G[1]" in
  let g = u.Block.groups.(0) in
  check Alcotest.int "captures db" 1 (Array.length g.Block.grp_captures)

let compile_if () =
  (* the condition must be non-constant or the peephole pass folds the
     branch away entirely *)
  let u = compile "new c c?(v) = (if v < 2 then io!printi[1] else io!printi[2])" in
  check Alcotest.bool "jmpf" true
    (has_instr u (function Instr.Jump_if_false _ -> true | _ -> false));
  check Alcotest.bool "jmp" true
    (has_instr u (function Instr.Jump _ -> true | _ -> false))

let compile_import_continuation () =
  let u =
    Compile.compile_program
      (Parser.parse_program
         {| site b { new local import p from a in p![1] | local![2] } |})
    |> List.assoc "b"
  in
  check Alcotest.bool "import instr" true
    (has_instr u (function
      | Instr.Import_name { site = "a"; name = "p"; _ } -> true
      | _ -> false));
  (* the continuation is a separate block with param 0 = imported value *)
  check Alcotest.int "two blocks" 2 (Array.length u.Block.blocks)

let compile_export () =
  let u =
    Compile.compile_program
      (Parser.parse_program
         {| site a { export new p p?(x) = nil | export def K() = nil in K[] } |})
    |> List.assoc "a"
  in
  check Alcotest.bool "export name" true
    (has_instr u (function Instr.Export_name "p" -> true | _ -> false));
  check Alcotest.bool "export class" true
    (has_instr u (function Instr.Export_class ("K", _) -> true | _ -> false))

let compile_unbound_fails () =
  let fails src =
    match compile src with exception Compile.Error _ -> true | _ -> false
  in
  check Alcotest.bool "unbound name" true (fails "zz![]");
  check Alcotest.bool "unbound class" true (fails "K[1]")

let compile_deterministic () =
  let a = compile "new x (x![] | x?(  ) = io!print[\"hi\"])" in
  let b = compile "new x (x![] | x?() = io!print[\"hi\"])" in
  check Alcotest.string "same bytecode" (Bytecode.unit_to_string a)
    (Bytecode.unit_to_string b)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let sources =
  [ "nil";
    "new x x!m[1, true, \"s\"]";
    "new x (x?(u) = io!printi[u] | x![1])";
    {| def Cell(self, v) = self?{ read(r) = r![v] | Cell[self, v],
                                  write(u) = Cell[self, u] }
       in new c (Cell[c, 0] | new r (c!read[r] | r?(v) = io!printi[v])) |};
    "if 1 == 1 then (if true then nil else nil) else io!printi[0]";
    "new a, b, c (a![b] | b![c] | c?(z) = z!m[])" ]

let bytecode_roundtrip () =
  List.iter
    (fun src ->
      let u = compile src in
      let s = Bytecode.unit_to_string u in
      let u' = Bytecode.unit_of_string s in
      check Alcotest.string (Printf.sprintf "roundtrip %s" src) s
        (Bytecode.unit_to_string u'))
    sources

let bytecode_rejects_garbage () =
  let bad s =
    match Bytecode.unit_of_string s with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false
  in
  check Alcotest.bool "empty" true (bad "");
  check Alcotest.bool "empty unit" true (bad "\x00\x00\x00\x00");
  check Alcotest.bool "truncated" true
    (bad (String.sub (Bytecode.unit_to_string (compile "new x x![]")) 0 4))

let bytecode_rejects_bad_refs () =
  (* corrupt a valid unit's entry index *)
  let u = compile "new x x![]" in
  let forged = { u with Block.entry = 99 } in
  let s = Bytecode.unit_to_string forged in
  check Alcotest.bool "entry out of range" true
    (match Bytecode.unit_of_string s with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false)

let bytecode_compact () =
  (* the compactness claim (E2): byte-code is smaller than the source *)
  let src =
    {| def Cell(self, v) = self?{ read(r) = r![v] | Cell[self, v],
                                  write(u) = Cell[self, u] }
       in new c (Cell[c, 0] | new r (c!read[r] | r?(v) = io!printi[v])) |}
  in
  let u = compile src in
  check Alcotest.bool "smaller than source" true
    (Bytecode.byte_size u < String.length src)

(* ------------------------------------------------------------------ *)
(* Extraction and linking                                              *)

let extraction_closure () =
  (* an object whose method body creates another object: both method
     tables must ship *)
  let u = compile "new x, y (x?(a) = (y?(b) = io!printi[b + a]) | x![1])" in
  check Alcotest.int "two mtables" 2 (Array.length u.Block.mtables);
  let sub, root = Bytecode.extract_mtable u 1 in
  (* mtable 1 is the outer object (compiled second); its body contains
     the inner object, so both travel *)
  ignore root;
  check Alcotest.bool "nested code travels" true
    (Array.length sub.Block.mtables >= 1);
  (* extracting the inner object alone must not drag the outer one *)
  let sub0, _ = Bytecode.extract_mtable u 0 in
  check Alcotest.bool "no over-shipping" true
    (Array.length sub0.Block.blocks <= Array.length sub.Block.blocks)

let extraction_group () =
  let u =
    compile
      {| def A(n) = if n == 0 then nil else B[n - 1] and B(n) = A[n] in A[1] |}
  in
  let sub, g = Bytecode.extract_group u 0 in
  check Alcotest.int "group included" 1 (Array.length sub.Block.groups);
  check Alcotest.int "root remapped" 0 g;
  check Alcotest.int "both class blocks" 2
    (Array.length sub.Block.groups.(0).Block.grp_classes)

let linking_offsets () =
  let u1 = compile "new x x![]" in
  let u2 = compile "new y (y?(v) = io!printi[v] | y![3])" in
  let area, entry1 = Link.of_unit u1 in
  check Alcotest.int "entry first" 0 entry1;
  let o = Link.link area u2 in
  check Alcotest.int "block offset" (Array.length u1.Block.blocks) o.Link.blk_off;
  (* the linked copy's Trobj indices must be shifted *)
  let linked_entry = Link.block area (u2.Block.entry + o.Link.blk_off) in
  let shifted_ok =
    Array.for_all
      (function
        | Instr.Trobj mt -> mt >= o.Link.mt_off
        | _ -> true)
      linked_entry.Block.blk_code
  in
  check Alcotest.bool "mtable refs shifted" true shifted_ok;
  check Alcotest.int "n_blocks"
    (Array.length u1.Block.blocks + Array.length u2.Block.blocks)
    (Link.n_blocks area)

let snapshot_cache () =
  let u = compile "new x x![]" in
  let area, _ = Link.of_unit u in
  let s1 = Link.snapshot area in
  let s2 = Link.snapshot area in
  check Alcotest.bool "cached" true (s1 == s2);
  ignore (Link.link area (compile "nil"));
  let s3 = Link.snapshot area in
  check Alcotest.bool "invalidated" false (s1 == s3)

let disasm_readable () =
  let u = compile "new x (x![1] | x?(v) = io!printi[v])" in
  let s = Disasm.to_string u in
  let has sub =
    let nh = String.length s and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub s i nn = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "trmsg shown" true (has "trmsg");
  check Alcotest.bool "trobj shown" true (has "trobj");
  check Alcotest.bool "newc shown" true (has "newc")

let stats_consistent () =
  let u = compile (List.nth sources 3) in
  let st = Disasm.stats u in
  check Alcotest.int "instr count" (Block.instr_count u) st.Disasm.n_instrs;
  check Alcotest.int "bytes" (Bytecode.byte_size u) st.Disasm.n_bytes

let tests =
  [ ("compile message", `Quick, compile_message);
    ("compile object", `Quick, compile_object);
    ("compile def group", `Quick, compile_def_group);
    ("compile class captures", `Quick, compile_class_captures_names);
    ("compile if", `Quick, compile_if);
    ("compile import continuation", `Quick, compile_import_continuation);
    ("compile export", `Quick, compile_export);
    ("compile unbound fails", `Quick, compile_unbound_fails);
    ("compile deterministic", `Quick, compile_deterministic);
    ("bytecode roundtrip", `Quick, bytecode_roundtrip);
    ("bytecode rejects garbage", `Quick, bytecode_rejects_garbage);
    ("bytecode rejects bad refs", `Quick, bytecode_rejects_bad_refs);
    ("bytecode compact", `Quick, bytecode_compact);
    ("extraction closure", `Quick, extraction_closure);
    ("extraction group", `Quick, extraction_group);
    ("linking offsets", `Quick, linking_offsets);
    ("snapshot cache", `Quick, snapshot_cache);
    ("disasm readable", `Quick, disasm_readable);
    ("stats consistent", `Quick, stats_consistent) ]

(* ------------------------------------------------------------------ *)
(* Peephole optimization                                               *)

let compile_raw src = Compile.compile_proc ~optimize:false (Parser.parse_proc src)

let peephole_folds_constants () =
  let u = compile "io!printi[2 + 3 * 4]" in
  check Alcotest.bool "folded to 14" true
    (has_instr u (function Instr.Push_int 14 -> true | _ -> false));
  check Alcotest.bool "no binop left" false
    (has_instr u (function Instr.Binop _ -> true | _ -> false))

let peephole_folds_right_nested () =
  let u = compile "io!printb[true && (1 < 2)]" in
  check Alcotest.bool "folded to true" true
    (has_instr u (function Instr.Push_bool true -> true | _ -> false));
  check Alcotest.bool "no binop left" false
    (has_instr u (function Instr.Binop _ -> true | _ -> false))

let peephole_keeps_div_by_zero () =
  let u = compile "io!printi[1 / 0]" in
  check Alcotest.bool "division preserved" true
    (has_instr u (function Instr.Binop Tyco_syntax.Ast.Div -> true | _ -> false))

let peephole_eliminates_constant_branch () =
  let u = compile "if true then io!printi[1] else io!printi[2]" in
  check Alcotest.bool "no conditional jump" false
    (has_instr u (function Instr.Jump_if_false _ -> true | _ -> false))

let peephole_shrinks () =
  let src = "if 1 < 2 then io!printi[10 * 10] else io!printi[2 + 2]" in
  check Alcotest.bool "optimized smaller" true
    (Block.instr_count (compile src) < Block.instr_count (compile_raw src))

let peephole_preserves_semantics () =
  (* run each corpus program under both compilations on a bare VM *)
  let corpus =
    [ "io!printi[2 + 3 * 4]";
      "if 1 < 2 then io!printi[1] else io!printi[2]";
      "if false then io!printi[3] else io!printi[4]";
      {| def F(n, k) = if n == 0 then k![100 - 1] else F[n - 1, k]
         in new k (F[3 + 2, k] | k?(v) = io!printi[v * (1 + 1)]) |};
      "new x (x![2 * 2] | x?(v) = (if v == 4 then io!printi[v] else nil))" ]
  in
  List.iter
    (fun src ->
      let run unit_ =
        let area, entry = Tyco_compiler.Link.of_unit unit_ in
        let vm = Tyco_vm.Machine.create area in
        let outs = ref [] in
        let io =
          Tyco_vm.Machine.builtin_chan vm "io" (fun l args ->
              outs := (l, List.map (Fmt.str "%a" Tyco_vm.Value.pp) args) :: !outs)
        in
        Tyco_vm.Machine.spawn_entry vm ~entry ~io;
        ignore (Tyco_vm.Machine.run vm ~budget:100_000);
        List.rev !outs
      in
      let opt = run (compile src) and raw = run (compile_raw src) in
      if opt <> raw then
        Alcotest.failf "peephole changed behaviour of: %s" src)
    corpus

let peephole_tests =
  [ ("peephole folds constants", `Quick, peephole_folds_constants);
    ("peephole folds right-nested", `Quick, peephole_folds_right_nested);
    ("peephole keeps div-by-zero", `Quick, peephole_keeps_div_by_zero);
    ("peephole kills constant branch", `Quick, peephole_eliminates_constant_branch);
    ("peephole shrinks code", `Quick, peephole_shrinks);
    ("peephole preserves semantics", `Quick, peephole_preserves_semantics) ]

let tests = tests @ peephole_tests

(* ------------------------------------------------------------------ *)
(* Textual assembly                                                    *)

let asm_roundtrip () =
  List.iter
    (fun src ->
      let u = compile src in
      let text = Asm.print u in
      let u' = Asm.parse text in
      check Alcotest.string
        (Printf.sprintf "asm roundtrip %s" src)
        (Bytecode.unit_to_string u)
        (Bytecode.unit_to_string u'))
    sources

let asm_roundtrip_network () =
  let units =
    Compile.compile_program
      (Parser.parse_program
         {| site a { export new p (p?(x) = io!printi[x] | export def K(v) = p![v] in nil) }
            site b { import p from a in import K from a in (p![1] | K[2]) } |})
  in
  List.iter
    (fun (site, u) ->
      let u' = Asm.parse (Asm.print u) in
      check Alcotest.string
        (Printf.sprintf "site %s" site)
        (Bytecode.unit_to_string u)
        (Bytecode.unit_to_string u'))
    units

let asm_errors () =
  let bad s = match Asm.parse s with exception Asm.Error _ -> true | _ -> false in
  check Alcotest.bool "no header" true (bad "block b0 \"x\" params=0 slots=0 {\n}\n");
  check Alcotest.bool "unknown instr" true
    (bad "unit entry=b0\nblock b0 \"x\" params=0 slots=0 {\n  frobnicate 3\n}\n");
  check Alcotest.bool "unterminated" true
    (bad "unit entry=b0\nblock b0 \"x\" params=0 slots=0 {\n  pushi 1\n");
  check Alcotest.bool "dangling ref" true
    (bad "unit entry=b0\nblock b0 \"x\" params=0 slots=0 {\n  trobj mt7\n}\n");
  check Alcotest.bool "sparse ids" true
    (bad "unit entry=b1\nblock b1 \"x\" params=0 slots=0 {\n}\n")

let asm_hand_written_runs () =
  (* hand-author a unit that prints 5: load io (slot 0), push 5, send *)
  let text =
    {|unit entry=b0
block b0 "entry" params=1 slots=1 {
  pushi 5
  load 0
  trmsg printi/1
}
|}
  in
  let u = Asm.parse text in
  let area, entry = Link.of_unit u in
  let vm = Tyco_vm.Machine.create area in
  let got = ref [] in
  let io = Tyco_vm.Machine.builtin_chan vm "io" (fun l args ->
      got := (l, args) :: !got) in
  Tyco_vm.Machine.spawn_entry vm ~entry ~io;
  ignore (Tyco_vm.Machine.run vm ~budget:100);
  match !got with
  | [ ("printi", [ Tyco_vm.Value.Vint 5 ]) ] -> ()
  | _ -> Alcotest.fail "hand-written assembly misbehaved"

let asm_tests =
  [ ("asm roundtrip", `Quick, asm_roundtrip);
    ("asm roundtrip network units", `Quick, asm_roundtrip_network);
    ("asm rejects malformed", `Quick, asm_errors);
    ("asm hand-written program", `Quick, asm_hand_written_runs) ]

let tests = tests @ asm_tests

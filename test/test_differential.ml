(* Differential testing: random multi-site programs, correct by
   construction (typed, quiescing), must produce identical output
   multisets under the byte-code runtime and the reference semantics.

   The generator builds a random pipeline of forwarder stages spread
   over up to three sites.  Each stage listens on an exported name and
   transforms/forwards tokens; stage kinds cover plain forwarding
   (SHIPM or local COMM depending on placement), fan-out, conditionals,
   and a FETCH-using stage that instantiates a class imported from
   another site.  A random number of integer tokens is injected at the
   head; the tail prints.  Every inter-stage edge that crosses sites
   exercises the name service, shipment and translation machinery. *)

open Dityco

type stage_kind =
  | Forward of int        (* next![v + c] *)
  | Fanout                (* next![v] twice *)
  | Collatz               (* if v % 2 == 0 then next![v / 2] else next![v * 3 + 1] *)
  | Via_class             (* k <- Double[v]; next![k] — fetches when remote *)
  | Dispatch              (* multi-label object: val re-dispatches to even/odd *)

type spec = {
  n_sites : int;
  stages : (int * stage_kind) list; (* (site, kind) per stage; >= 1 *)
  class_site : int;                 (* owner of the Double class *)
  injector_site : int;
  tokens : int list;
}

let site_name i = Printf.sprintf "n%d" i

let render (s : spec) : string =
  let n = List.length s.stages in
  let stage_site i =
    if i >= n then s.injector_site (* unused *)
    else fst (List.nth s.stages i)
  in
  let buf = Buffer.create 1024 in
  let site_bodies = Array.make s.n_sites [] in
  let add_to site piece = site_bodies.(site) <- piece :: site_bodies.(site) in
  (* the Double class at its owner site *)
  add_to s.class_site "export def Double(v, k) = k![v * 2] in nil";
  (* stages *)
  List.iteri
    (fun i (site, kind) ->
      let me = Printf.sprintf "f%d" i in
      let listener =
        if i = n - 1 then
          (* tail: print *)
          Printf.sprintf
            "export new %s def L%d(me) = me?(v) = (io!printi[v] | L%d[me]) in L%d[%s]"
            me i i i me
        else
          let next = Printf.sprintf "f%d" (i + 1) in
          let next_site = stage_site (i + 1) in
          let def =
            match kind with
            | Dispatch ->
                (* Three labels on one channel: the plain [val] send from
                   the previous stage is re-dispatched to a sibling label
                   chosen by parity, so both the parked-message and the
                   parked-object matching paths see distinct interned
                   label ids on the same channel. *)
                Printf.sprintf
                  "def L%d(me, next) = me?{ val(v) = (L%d[me, next] | if v \
                   %% 2 == 0 then me!even[v] else me!odd[v]), even(v) = \
                   (next![v + 1] | L%d[me, next]), odd(v) = (next![v * 3] | \
                   L%d[me, next]) } in L%d[%s, %s]"
                  i i i i i me next
            | Forward _ | Fanout | Collatz | Via_class ->
                let body =
                  match kind with
                  | Forward c -> Printf.sprintf "next![v + %d]" c
                  | Fanout -> "(next![v] | next![v])"
                  | Collatz ->
                      "(if v % 2 == 0 then next![v / 2] else next![v * 3 + 1])"
                  | Via_class -> "new k (Double[v, k] | k?(w) = next![w])"
                  | Dispatch -> assert false
                in
                Printf.sprintf
                  "def L%d(me, next) = me?(v) = (%s | L%d[me, next]) in L%d[%s, %s]"
                  i body i i me next
          in
          let def =
            match kind with
            | Via_class ->
                Printf.sprintf "import Double from %s in %s"
                  (site_name s.class_site) def
            | Forward _ | Fanout | Collatz | Dispatch -> def
          in
          Printf.sprintf "export new %s import %s from %s in %s" me next
            (site_name next_site) def
      in
      add_to site listener)
    s.stages;
  (* injector *)
  let injections =
    String.concat " | " (List.map (Printf.sprintf "f0![%d]") s.tokens)
  in
  add_to s.injector_site
    (Printf.sprintf "import f0 from %s in (%s)" (site_name (stage_site 0))
       (if s.tokens = [] then "nil" else injections));
  for i = 0 to s.n_sites - 1 do
    Buffer.add_string buf (Printf.sprintf "site %s {\n" (site_name i));
    (match site_bodies.(i) with
    | [] -> Buffer.add_string buf "  nil\n"
    | pieces ->
        (* Each piece is parenthesized so that one piece's prefix scope
           (export/import/def) cannot swallow its siblings: an import
           that lexically guards the export it waits for would deadlock
           the dynamic name-service implementation (see DESIGN.md,
           "import is operational in the implementation"). *)
        Buffer.add_string buf "  ";
        Buffer.add_string buf
          (String.concat "\n  | "
             (List.map (Printf.sprintf "(%s)") (List.rev pieces)));
        Buffer.add_char buf '\n');
    Buffer.add_string buf "}\n"
  done;
  Buffer.contents buf


let gen_spec =
  let open QCheck2.Gen in
  let* n_sites = int_range 1 3 in
  let* n_stages = int_range 1 4 in
  let* stages =
    list_size (return n_stages)
      (pair (int_range 0 (n_sites - 1))
         (oneof
            [ map (fun c -> Forward c) (int_range 0 9);
              return Fanout;
              return Collatz;
              return Via_class;
              return Dispatch ]))
  in
  let* class_site = int_range 0 (n_sites - 1) in
  let* injector_site = int_range 0 (n_sites - 1) in
  let* tokens = list_size (int_range 0 4) (int_range 0 50) in
  return { n_sites; stages; class_site; injector_site; tokens }

let spec_print s = render s

let differential_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random pipelines: VM = reference" ~count:60
       ~print:spec_print gen_spec
       (fun spec ->
         let src = render spec in
         match Api.parse src with
         | exception Api.Error e ->
             QCheck2.Test.fail_reportf "generated program does not parse: %s\n%s"
               (Api.error_message e) src
         | prog -> (
             match Api.typecheck prog with
             | exception Api.Error e ->
                 QCheck2.Test.fail_reportf
                   "generated program ill-typed: %s\n%s"
                   (Api.error_message e) src
             | _ -> Api.agree_with_reference ~max_steps:2_000_000 prog)))

(* A fixed regression corpus drawn from generator shapes that exercise
   every stage kind at once. *)
let regression_pipeline () =
  let spec =
    { n_sites = 3;
      stages =
        [ (0, Forward 3); (1, Via_class); (2, Collatz); (1, Fanout);
          (2, Dispatch); (0, Forward 1) ];
      class_site = 2;
      injector_site = 1;
      tokens = [ 1; 8; 13 ] }
  in
  let prog = Api.parse (render spec) in
  ignore (Api.typecheck prog);
  if not (Api.agree_with_reference prog) then
    Alcotest.fail "regression pipeline diverged"

let stage_list_bug_guard () =
  (* one-stage pipeline where injector and stage share a site *)
  let spec =
    { n_sites = 1; stages = [ (0, Forward 0) ]; class_site = 0;
      injector_site = 0; tokens = [ 42 ] }
  in
  let prog = Api.parse (render spec) in
  let outs = List.map snd (Api.run_program prog).Api.outputs in
  Alcotest.(check int) "token delivered" 1 (List.length outs)

let tests =
  [ differential_prop;
    ("regression pipeline", `Quick, regression_pipeline);
    ("single-site pipeline", `Quick, stage_list_bug_guard) ]

(* ------------------------------------------------------------------ *)
(* Metamorphic testing: program outputs must be invariant under every
   runtime configuration — quantum, placement, link model, scheduling
   seed, name-service deployment.  Only virtual time may change.       *)

let gen_config =
  let open QCheck2.Gen in
  let* quantum = oneofl [ 8; 64; 512; 4096 ] in
  let* seed = int_range 0 1000 in
  let* pack = bool in
  let* ns_repl = bool in
  let* slow_link = bool in
  let topology =
    if slow_link then
      { Tyco_net.Simnet.default_topology with
        Tyco_net.Simnet.cluster = Tyco_net.Latency.fast_ethernet }
    else Tyco_net.Simnet.default_topology
  in
  return
    ( { Cluster.default_config with
        Cluster.quantum;
        seed;
        topology;
        ns_mode = (if ns_repl then Cluster.Replicated else Cluster.Centralized) },
      pack )

let metamorphic_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"outputs invariant under runtime config"
       ~count:40
       QCheck2.Gen.(pair gen_spec gen_config)
       (fun (spec, (config, pack)) ->
         let src = render spec in
         let prog = Api.parse src in
         (match Api.typecheck prog with
         | _ -> ()
         | exception Api.Error _ -> QCheck2.assume_fail ());
         let reference = Api.run_program prog in
         let variant =
           Api.run_program ~config
             ?placement:(if pack then Some (fun _ -> 0) else None)
             prog
         in
         Output.same_multiset
           (List.map snd reference.Api.outputs)
           (List.map snd variant.Api.outputs)))

let tests = tests @ [ metamorphic_prop ]

(* ------------------------------------------------------------------ *)
(* Serialization properties over generated programs: byte-code and
   assembly both round-trip exactly for every compiled site.           *)

let serialization_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"bytecode+asm roundtrip on random pipelines"
       ~count:50 gen_spec
       (fun spec ->
         let prog = Api.parse (render spec) in
         let units = Api.compile prog in
         List.for_all
           (fun (_, u) ->
             let bytes = Tyco_compiler.Bytecode.unit_to_string u in
             let via_bytes =
               Tyco_compiler.Bytecode.unit_of_string bytes
             in
             let via_asm =
               Tyco_compiler.Asm.parse (Tyco_compiler.Asm.print u)
             in
             Tyco_compiler.Bytecode.unit_to_string via_bytes = bytes
             && Tyco_compiler.Bytecode.unit_to_string via_asm = bytes)
           units))

let peephole_agrees_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"peephole-off runtime agrees with reference too" ~count:25
       gen_spec
       (fun spec ->
         let prog = Api.parse (render spec) in
         (match Api.typecheck prog with
         | _ -> ()
         | exception Api.Error _ -> QCheck2.assume_fail ());
         let units =
           Tyco_compiler.Compile.compile_program ~optimize:false prog
         in
         let cluster = Cluster.create () in
         Cluster.load cluster units;
         Cluster.run cluster;
         let raw = List.map snd (Cluster.outputs cluster) in
         let opt = List.map snd (Api.run_program prog).Api.outputs in
         Output.same_multiset raw opt))

let tests = tests @ [ serialization_roundtrip_prop; peephole_agrees_prop ]

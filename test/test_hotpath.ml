(* Zero-cost-when-disabled: the E1 hot-path guarantees PR 6 restored.

   PRs 3–5 eroded the VM's edge over the reference interpreter (2.2x ->
   1.2x) by letting tracing/lease/batching bookkeeping creep onto the
   always-on reduction and send paths, and the CI gate of the time let
   it through.  These tests pin the property directly, in units that
   are deterministic on any machine (allocated words, recorded events,
   report bytes) rather than wall-clock ns:

   - with every optional subsystem off, the E1 workload allocates under
     a fixed budget of minor words per reduction;
   - the disabled [Trace] singleton records nothing and allocates
     nothing, even across a full chaos run;
   - the disabled [Metrics] singleton hands out dummy instruments
     whose bumps allocate nothing;
   - [lease_ns = 0] produces a bit-identical [Report] to the seed
     semantics (the default, lifecycle-free configuration). *)

open Dityco
module Trace = Tyco_support.Trace
module Metrics = Tyco_support.Metrics

let check = Alcotest.check

let counter_src n =
  Printf.sprintf
    {| def Counter(self, acc) =
         self?{ bump(k) = (k![acc + 1] | Counter[self, acc + 1]) }
       in def Driver(c, n) =
         if n == 0 then io!printi[n]
         else new k (c!bump[k] | k?(v) = Driver[c, n - 1])
       in new c (Counter[c, 0] | Driver[c, %d]) |}
    n

(* Minor words per E1 reduction with trace/lease/batching all off.
   The budget is calibrated against the PR 6 hot path (~69 words per
   reduction, compile + cluster setup included) with headroom for
   compiler/runtime variation; the pre-fix loop burned ~131 words per
   reduction, so bookkeeping creeping back onto the path trips this
   long before it shows up as wall-clock noise. *)
let words_per_reduction_budget = 110.

let e1_minor_words_capped () =
  let n = 200 in
  let reductions = float_of_int (2 * n) in
  let prog = Api.parse (counter_src n) in
  let config =
    { Cluster.default_config with
      Cluster.tracing = false; lease_ns = 0; batching = false }
  in
  let run () = ignore (Api.run_program ~typecheck:false ~config prog) in
  run ();
  (* warm-up: one-time interning etc. *)
  let runs = 5 in
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    run ()
  done;
  let per_run = (Gc.minor_words () -. before) /. float_of_int runs in
  let per_reduction = per_run /. reductions in
  if per_reduction > words_per_reduction_budget then
    Alcotest.failf
      "E1 allocates %.0f minor words per reduction with all features \
       off (budget %.0f): bookkeeping is back on the hot path"
      per_reduction words_per_reduction_budget

(* The disabled tracer singleton: a full chaos run (reliable transport
   over a lossy fabric, the most event-happy configuration we have)
   must leave it empty, and emitting against it must not allocate. *)
let disabled_trace_records_nothing () =
  let faults =
    { Tyco_net.Simnet.drop = 0.2; duplicate = 0.1; reorder = 0.3;
      reorder_ns = 50_000; partitions = [] }
  in
  let config =
    { Cluster.default_config with Cluster.seed = 1234; faults;
      reliable = true }
  in
  let src =
    {| site s { import p from r in let y = p![7] in io!printi[y] }
       site r { export new p p?(x, k) = k![x * x] } |}
  in
  let r = Api.run_program ~config (Api.parse src) in
  let tr = Cluster.tracer r.Api.cluster in
  check Alcotest.bool "cluster tracer is the disabled singleton" false
    (Trace.enabled tr);
  check Alcotest.int "no events recorded across the chaos run" 0
    (List.length (Trace.events tr));
  (* emit/fresh_span against the disabled singleton allocate nothing:
     10k calls must cost 0 minor words *)
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Trace.emit Trace.disabled ~ts:i ~track:0 ~span:Trace.null_span
      Trace.Msg_park;
    ignore (Trace.fresh_span Trace.disabled ~parent:Trace.null_span)
  done;
  let words = Gc.minor_words () -. before in
  if words > 0. then
    Alcotest.failf "disabled Trace allocated %.0f words over 10k emits"
      words

(* The disabled metrics singleton mirrors the disabled tracer: a run
   with metrics off hands out dummy instruments, and bumping them must
   not allocate — 10k bumps of every instrument kind cost 0 minor
   words (one load-and-branch each). *)
let disabled_metrics_cost_nothing () =
  let src =
    {| site s { import p from r in let y = p![7] in io!printi[y] }
       site r { export new p p?(x, k) = k![x * x] } |}
  in
  let r = Api.run_program (Api.parse src) in
  let mx = Cluster.metrics r.Api.cluster in
  check Alcotest.bool "cluster registry is the disabled singleton" false
    (Metrics.enabled mx);
  check Alcotest.bool "no instruments registered" true
    (Metrics.counters mx = [] && Metrics.gauges mx = []
    && Metrics.histograms mx = []);
  let c = Metrics.counter Metrics.disabled "c" in
  let g = Metrics.gauge Metrics.disabled "g" in
  let h = Metrics.histogram Metrics.disabled "h" in
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Metrics.incr c;
    Metrics.add c i;
    Metrics.set g i;
    Metrics.observe_int h i
  done;
  let words = Gc.minor_words () -. before in
  if words > 0. then
    Alcotest.failf "disabled Metrics allocated %.0f words over 10k bumps"
      words;
  check Alcotest.int "dummy counter stays zero" 0 (Metrics.counter_value c)

(* [lease_ns = 0] must be indistinguishable from the seed semantics
   (no lifecycle at all): same outputs, and a bit-identical report.
   The run on the right uses the default configuration — the seed
   behaviour by construction — and the run on the left switches every
   lease knob off explicitly. *)
let lease_off_bit_identical_report () =
  let src =
    {| site s { import p from r in let y = p![7] in io!printi[y] }
       site r { export new p p?(x, k) = k![x * x] } |}
  in
  let prog = Api.parse src in
  let leases_off =
    { Cluster.default_config with
      Cluster.lease_ns = 0; lease_refresh_ns = 0; lease_hold_ns = 0 }
  in
  let ra = Api.run_program ~config:leases_off prog in
  let rb = Api.run_program prog in
  check
    (Alcotest.list (Alcotest.testable Output.pp_event Output.equal_event))
    "outputs identical"
    (List.map snd rb.Api.outputs)
    (List.map snd ra.Api.outputs);
  check Alcotest.string "report bit-identical"
    (Report.to_json (Report.of_result rb))
    (Report.to_json (Report.of_result ra))

(* The SPSC ring's push/pop hot path: unboxed slots and a preallocated
   Empty exception mean a steady-state push/pop pair touches no
   allocator at all — pinned the same way as the disabled singletons,
   in minor words over a revolution-heavy workload.  (try_pop is
   excluded: its Some is the documented cold-path allocation.) *)
let ring_push_pop_zero_alloc () =
  let r = Tyco_support.Spsc_ring.create ~capacity:16 in
  (* warm up: fill/drain once so any one-time work is done *)
  for i = 1 to 8 do
    ignore (Tyco_support.Spsc_ring.try_push r i)
  done;
  for _ = 1 to 8 do
    ignore (Tyco_support.Spsc_ring.pop_exn r)
  done;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    ignore (Tyco_support.Spsc_ring.try_push r i);
    ignore (Tyco_support.Spsc_ring.pop_exn r)
  done;
  (* empty-ring pops go through the preallocated exception *)
  for _ = 1 to 1_000 do
    match Tyco_support.Spsc_ring.pop_exn r with
    | _ -> Alcotest.fail "pop on empty ring returned"
    | exception Tyco_support.Spsc_ring.Empty -> ()
  done;
  let words = Gc.minor_words () -. before in
  if words > 0. then
    Alcotest.failf
      "Spsc_ring allocated %.0f words over 100k push/pop pairs (must be 0)"
      words

let tests =
  [ Alcotest.test_case "e1 minor words per reduction capped" `Quick
      e1_minor_words_capped;
    Alcotest.test_case "spsc ring push/pop allocates zero words" `Quick
      ring_push_pop_zero_alloc;
    Alcotest.test_case "disabled trace records and allocates nothing"
      `Quick disabled_trace_records_nothing;
    Alcotest.test_case "disabled metrics cost nothing" `Quick
      disabled_metrics_cost_nothing;
    Alcotest.test_case "lease_ns=0 report identical to seed semantics"
      `Quick lease_off_bit_identical_report ]

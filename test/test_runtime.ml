(* End-to-end runtime tests: the full byte-code runtime on the
   simulated cluster, checked against the reference semantics and
   exercised for mobility, caching, races, failures and termination
   detection. *)

open Dityco
module Parser = Tyco_syntax.Parser

let check = Alcotest.check

let ev_testable = Alcotest.testable Output.pp_event Output.equal_event

let run ?config ?placement ?until src =
  Api.run_program ?config ?placement ?until (Api.parse src)

let events r = List.map snd r.Api.outputs

let agrees src = Api.agree_with_reference (Api.parse src)

(* ------------------------------------------------------------------ *)
(* The paper's programs, runtime vs reference                          *)

let paper_programs =
  [ ( "cell",
      {| def Cell(self, v) =
           self?{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
         in new x (Cell[x, 9] | new z (x!read[z] | z?(w) = io!printi[w])) |} );
    ( "rpc",
      {| site s { import p from r in let y = p![7] in io!printi[y] }
         site r { export new p p?(x, k) = k![x * x] } |} );
    ( "applet-fetch",
      {| site server { export def Applet(p) = p![42] in nil }
         site client { import Applet from server in
                       new p (Applet[p] | p?(v) = io!printi[v]) } |} );
    ( "applet-ship",
      {| site server {
           def S(self) = self?{ applet(p) = (p?(x) = io!printi[x + 100] | S[self]) }
           in export new srv S[srv] }
         site client { import srv from server in new p (srv!applet[p] | p![5]) } |} );
    ( "two-clients",
      {| site server {
           def Acc(self, n) = self?{ add(k) = (k![n] | Acc[self, n + 1]) }
           in export new svc Acc[svc, 0] }
         site c1 { import svc from server in
                   new k (svc!add[k] | k?(v) = io!printb[v < 2]) }
         site c2 { import svc from server in
                   new k (svc!add[k] | k?(v) = io!printb[v < 2]) } |} ) ]

let differential_paper () =
  List.iter
    (fun (name, src) ->
      if not (agrees src) then Alcotest.failf "%s: VM and reference differ" name)
    paper_programs

let outputs_exact () =
  let r = run (snd (List.hd paper_programs)) in
  check (Alcotest.list ev_testable) "cell outputs"
    [ { Output.site = "main"; label = "printi"; args = [ Output.Oint 9 ] } ]
    (events r)

(* ------------------------------------------------------------------ *)
(* Determinism and configuration independence                          *)

let deterministic_runs () =
  let src = List.assoc "two-clients" paper_programs in
  let a = run src and b = run src in
  check (Alcotest.list ev_testable) "same outputs" (events a) (events b);
  check Alcotest.int "same virtual time" a.Api.virtual_ns b.Api.virtual_ns;
  check Alcotest.int "same packets" a.Api.packets b.Api.packets

let quantum_independent_outputs () =
  let src = List.assoc "rpc" paper_programs in
  let small = run ~config:{ Cluster.default_config with Cluster.quantum = 8 } src in
  let large = run ~config:{ Cluster.default_config with Cluster.quantum = 4096 } src in
  check Alcotest.bool "same multiset" true
    (Output.same_multiset (events small) (events large))

let placement_independent_outputs () =
  let src = List.assoc "applet-ship" paper_programs in
  let spread = run src in
  let packed = run ~placement:(fun _ -> 0) src in
  check Alcotest.bool "same multiset" true
    (Output.same_multiset (events spread) (events packed));
  check Alcotest.bool "colocated is faster" true
    (packed.Api.virtual_ns < spread.Api.virtual_ns)

let link_model_affects_time_not_result () =
  let src = List.assoc "rpc" paper_programs in
  let eth =
    { Cluster.default_config with
      Cluster.topology =
        { Tyco_net.Simnet.default_topology with
          Tyco_net.Simnet.cluster = Tyco_net.Latency.fast_ethernet } }
  in
  let myri = run src and slow = run ~config:eth src in
  check Alcotest.bool "same outputs" true
    (Output.same_multiset (events myri) (events slow));
  check Alcotest.bool "ethernet slower" true
    (slow.Api.virtual_ns > myri.Api.virtual_ns)

(* ------------------------------------------------------------------ *)
(* Mobility internals                                                  *)

let code_cache_no_rebloat () =
  (* the client ships three identical objects to a server-located name
     (the SHIPO path): the byte-code is linked at the server once *)
  let src =
    {| site server {
         export new slot (slot!feed[1] | slot!feed[2] | slot!feed[3]) }
       site client {
         import slot from server in
         def Put(n) =
           if n == 0 then nil
           else ((slot?{ feed(v) = io!printi[v] }) | Put[n - 1])
         in Put[3] } |}
  in
  let r = run src in
  let server = Cluster.site r.Api.cluster "server" in
  let links =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats server) "links")
  in
  let ships =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats server) "ships_in")
  in
  check Alcotest.bool "multiple ships" true (ships >= 3);
  check Alcotest.int "linked once" 1 links

let fetch_cached () =
  (* instantiate an imported class twice: one FETCH round-trip *)
  let src =
    {| site a { export def K(k) = k![4] in nil }
       site b { import K from a in
                new p (K[p] | (p?(v) = (io!printi[v] |
                new q (K[q] | q?(w) = io!printi[w * 2])))) } |}
  in
  let r = run src in
  let b = Cluster.site r.Api.cluster "b" in
  let fetches =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats b) "fetches")
  in
  check Alcotest.int "one fetch" 1 fetches;
  check Alcotest.bool "both instantiations ran" true
    (Output.same_multiset (events r)
       [ { Output.site = "b"; label = "printi"; args = [ Output.Oint 4 ] };
         { Output.site = "b"; label = "printi"; args = [ Output.Oint 8 ] } ])

let import_race_resolved () =
  (* the importer site is listed first and placed alone: its lookup
     reaches the name service before the export registers *)
  let src =
    {| site b { import p from a in p![5] }
       site a { export new p p?(x) = io!printi[x] } |}
  in
  let r = run src in
  check (Alcotest.list ev_testable) "resolved after parking"
    [ { Output.site = "a"; label = "printi"; args = [ Output.Oint 5 ] } ]
    (events r);
  check Alcotest.int "nothing left parked" 0
    (Cluster.name_service_pending r.Api.cluster)

let unresolved_import_pends () =
  let src = {| site b { import p from a in p![5] } site a { nil } |} in
  let r = Api.run_program ~typecheck:false (Api.parse src) in
  check Alcotest.int "parked forever" 1
    (Cluster.name_service_pending r.Api.cluster);
  check (Alcotest.list ev_testable) "no outputs" [] (events r)

let protocol_error_detected () =
  (* bypass the type checker: remote message with a label the object
     lacks must raise the dynamic protocol error (paper §7) *)
  let src =
    {| site a { export new p p?{ good() = nil } }
       site b { import p from a in p!bad[] } |}
  in
  check Alcotest.bool "runtime error" true
    (match Api.run_program ~typecheck:false (Api.parse src) with
    | exception Api.Error (Api.Runtime_error _) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Perpetual programs                                                  *)

let seti_bounded () =
  let src =
    {| site seti {
         new database
         def DB(self, n) = self?{ chunk(k) = k![n] | DB[self, n + 1] }
         in export def Install(cl) = Go[cl]
            and Go(cl) = let d = database!chunk[] in (cl![d] | Go[cl])
         in DB[database, 0]
       }
       site client {
         def L(me) = me?(d) = (io!printi[d] | L[me])
         in new me (L[me] | import Install from seti in Install[me]) }
    |}
  in
  let r1 = run ~until:2_000_000 src in
  let r2 = run ~until:4_000_000 src in
  let n1 = List.length (events r1) and n2 = List.length (events r2) in
  check Alcotest.bool "keeps producing" true (n1 > 3 && n2 > n1);
  (* chunks arrive in order: 0, 1, 2, ... *)
  let values =
    List.filter_map
      (fun e ->
        match e.Output.args with [ Output.Oint n ] -> Some n | _ -> None)
      (events r1)
  in
  check (Alcotest.list Alcotest.int) "ordered stream"
    (List.init (List.length values) Fun.id)
    values

(* ------------------------------------------------------------------ *)
(* Failure injection and termination detection (paper future work)     *)

let site_failure () =
  let src =
    {| site server { export new p p?(x, k) = k![x] }
       site client { import p from server in
                     let v = p![1] in io!printi[v] } |}
  in
  let prog = Api.parse src in
  let units = Api.compile prog in
  let cluster = Cluster.create () in
  Cluster.load cluster units;
  (* kill the server before the client's message can arrive *)
  Cluster.kill_site cluster "server" ~at:1;
  Cluster.run cluster;
  check Alcotest.int "no outputs" 0 (List.length (Cluster.outputs cluster));
  check Alcotest.bool "failure suspected" true
    (List.exists
       (fun (_, name) -> name = "server")
       (Cluster.suspected_failures cluster))

let survivors_continue () =
  let src =
    {| site server { export new p p?(x, k) = k![x] }
       site client { import p from server in
                     let v = p![1] in io!printi[v] }
       site loner { io!printi[7] } |}
  in
  let prog = Api.parse src in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile prog);
  Cluster.kill_site cluster "server" ~at:1;
  Cluster.run cluster;
  check (Alcotest.list ev_testable) "unaffected site output"
    [ { Output.site = "loner"; label = "printi"; args = [ Output.Oint 7 ] } ]
    (List.map snd (Cluster.outputs cluster))

let termination_detected () =
  let src = List.assoc "rpc" paper_programs in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse src));
  let report = Termination.run_with_detection ~period:10_000 cluster in
  (match report.Termination.detected_at with
  | Some t -> check Alcotest.bool "after activity" true (t > 0)
  | None -> Alcotest.fail "termination not detected");
  check Alcotest.bool "probe overhead reported" true
    (report.Termination.probes >= 2 && report.Termination.probe_overhead_ns > 0)

let termination_not_premature () =
  (* with a long-running program, the detector must not fire while
     remote calls are still in flight: detection time >= last output *)
  let src = List.assoc "two-clients" paper_programs in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse src));
  let report = Termination.run_with_detection ~period:5_000 cluster in
  let last_output =
    List.fold_left (fun acc (ts, _) -> max acc ts) 0 (Cluster.outputs cluster)
  in
  match report.Termination.detected_at with
  | Some t -> check Alcotest.bool "no premature detection" true (t >= last_output)
  | None -> Alcotest.fail "termination not detected"

(* ------------------------------------------------------------------ *)
(* Output API                                                          *)

let timestamps_monotone () =
  let r = run (List.assoc "two-clients" paper_programs) in
  let rec mono = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check Alcotest.bool "chronological" true (mono r.Api.outputs)

let site_stats_exposed () =
  let r = run (List.assoc "rpc" paper_programs) in
  let s = Cluster.site r.Api.cluster "s" in
  let instrs =
    Tyco_support.Stats.Counter.value
      (Tyco_support.Stats.counter (Site.stats s) "instructions")
  in
  check Alcotest.bool "instructions counted" true (instrs > 0)

let tests =
  [ ("paper programs: VM = reference", `Quick, differential_paper);
    ("exact outputs", `Quick, outputs_exact);
    ("deterministic runs", `Quick, deterministic_runs);
    ("quantum-independent outputs", `Quick, quantum_independent_outputs);
    ("placement-independent outputs", `Quick, placement_independent_outputs);
    ("link model affects time only", `Quick, link_model_affects_time_not_result);
    ("code cache prevents rebloat", `Quick, code_cache_no_rebloat);
    ("fetch cached", `Quick, fetch_cached);
    ("import/export race", `Quick, import_race_resolved);
    ("unresolved import pends", `Quick, unresolved_import_pends);
    ("dynamic protocol error", `Quick, protocol_error_detected);
    ("seti bounded run", `Quick, seti_bounded);
    ("site failure injection", `Quick, site_failure);
    ("survivors continue", `Quick, survivors_continue);
    ("termination detected", `Quick, termination_detected);
    ("termination not premature", `Quick, termination_not_premature);
    ("timestamps monotone", `Quick, timestamps_monotone);
    ("site stats exposed", `Quick, site_stats_exposed) ]

(* ------------------------------------------------------------------ *)
(* Separate compilation with dynamic type checking (paper §7)          *)

let isolated_compatible_runs () =
  (* each site typechecks alone; protocols agree -> runs normally *)
  let src =
    {| site a { export new p p?(x, k) = k![x + 1] }
       site b { import p from a in let v = p![41] in io!printi[v] } |}
  in
  let r = Api.run_program ~isolated:true (Api.parse src) in
  check (Alcotest.list ev_testable) "runs"
    [ { Output.site = "b"; label = "printi"; args = [ Output.Oint 42 ] } ]
    (events r)

let isolated_mismatch_rejected () =
  (* both sites typecheck alone, but the importer's usage disagrees
     with the exporter's interface: the dynamic check at import
     resolution must reject (whole-program checking would reject
     statically, so we need isolated mode to even reach the runtime) *)
  let src =
    {| site a { export new p p?(x, k) = k![x + 1] }
       site b { import p from a in let v = p![true] in io!printb[v] } |}
  in
  check Alcotest.bool "dynamic type error" true
    (match Api.run_program ~isolated:true (Api.parse src) with
    | exception Api.Error (Api.Runtime_error m) ->
        (* the message mentions the import *)
        let has sub =
          let nh = String.length m and nn = String.length sub in
          let rec go i = i + nn <= nh && (String.sub m i nn = sub || go (i + 1)) in
          go 0
        in
        has "type mismatch"
    | _ -> false)

let isolated_method_mismatch_rejected () =
  let src =
    {| site a { export new p p?{ ping(k) = k![1] } }
       site b { import p from a in new k (p!pong[k] | k?(v) = io!printi[v]) } |}
  in
  check Alcotest.bool "missing method detected at import" true
    (match Api.run_program ~isolated:true (Api.parse src) with
    | exception Api.Error (Api.Runtime_error _) -> true
    | _ -> false)

let isolated_class_mismatch_rejected () =
  let src =
    {| site a { export def K(v, out) = out![v + 1] in nil }
       site b { import K from a in new o (K[true, o] | o?(x) = io!printb[x]) } |}
  in
  check Alcotest.bool "class signature mismatch" true
    (match Api.run_program ~isolated:true (Api.parse src) with
    | exception Api.Error (Api.Runtime_error _) -> true
    | _ -> false)

let isolated_class_polymorphic_ok () =
  (* wildcard positions in the exporter's descriptor accept anything *)
  let src =
    {| site a { export def Id(v, out) = out![v] in nil }
       site b { import Id from a in
                new o (Id[true, o] | o?(x) = io!printb[x]) } |}
  in
  let r = Api.run_program ~isolated:true (Api.parse src) in
  check Alcotest.int "ran" 1 (List.length (events r))

let isolated_local_error_still_static () =
  let src = {| site a { io!printi[true] } |} in
  check Alcotest.bool "local type errors stay static" true
    (match Api.run_program ~isolated:true (Api.parse src) with
    | exception Api.Error (Api.Type_error _) -> true
    | _ -> false)

let isolated_tests =
  [ ("isolated: compatible protocols run", `Quick, isolated_compatible_runs);
    ("isolated: value mismatch rejected", `Quick, isolated_mismatch_rejected);
    ("isolated: method mismatch rejected", `Quick, isolated_method_mismatch_rejected);
    ("isolated: class mismatch rejected", `Quick, isolated_class_mismatch_rejected);
    ("isolated: polymorphic class ok", `Quick, isolated_class_polymorphic_ok);
    ("isolated: local errors static", `Quick, isolated_local_error_still_static) ]

let tests = tests @ isolated_tests

(* ------------------------------------------------------------------ *)
(* Same-node shared-memory fast path                                   *)

let fast_path_src =
  {| site a { export new p p?(v) = io!printi[v] }
     site b { import p from a in p![5] } |}

let expected_fast_path_events =
  [ { Output.site = "a"; label = "printi"; args = [ Output.Oint 5 ] } ]

let same_node_fast_path () =
  (* everything on node 0 — also the name service's node — so every
     delivery is intra-node: the whole run must cross the fabric zero
     times (no serialization happens at all; byte accounting would
     have recorded it) *)
  let all0 = run ~placement:(fun _ -> 0) fast_path_src in
  check (Alcotest.list ev_testable) "outputs" expected_fast_path_events
    (events all0);
  check Alcotest.int "no fabric packets" 0 all0.Api.packets;
  check Alcotest.int "no fabric bytes" 0 all0.Api.bytes;
  check Alcotest.bool "fast path used" true
    (Cluster.same_node_fast all0.Api.cluster > 0);
  (* spread over nodes 1 and 2 — away from the name service on node 0 —
     every send crosses the fabric and the fast path never fires *)
  let cross =
    run ~placement:(fun n -> if n = "a" then 1 else 2) fast_path_src
  in
  check (Alcotest.list ev_testable) "same outputs" expected_fast_path_events
    (events cross);
  check Alcotest.int "fast path unused cross-node" 0
    (Cluster.same_node_fast cross.Api.cluster);
  check Alcotest.bool "packets crossed the fabric" true (cross.Api.packets > 0)

let same_node_fast_path_reliable () =
  (* reliable mode normally frames, acks and retransmits — intra-node
     traffic must skip all of it *)
  let cfg = { Cluster.default_config with Cluster.reliable = true } in
  let r = run ~config:cfg ~placement:(fun _ -> 0) fast_path_src in
  check (Alcotest.list ev_testable) "outputs" expected_fast_path_events
    (events r);
  check Alcotest.int "no frames" 0 r.Api.packets;
  check Alcotest.int "no acks" 0
    (Tyco_support.Stats.counter_value (Cluster.stats r.Api.cluster) "acks");
  check Alcotest.bool "fast path used" true
    (Cluster.same_node_fast r.Api.cluster > 0)

(* ------------------------------------------------------------------ *)
(* Replicated name service (paper future work)                         *)

let replicated_cfg =
  { Cluster.default_config with Cluster.ns_mode = Cluster.Replicated }

let replicated_ns_same_outputs () =
  List.iter
    (fun (name, src) ->
      let central = run src in
      let repl = run ~config:replicated_cfg src in
      if not (Output.same_multiset (events central) (events repl)) then
        Alcotest.failf "%s: outputs differ under replicated NS" name)
    paper_programs

let replicated_ns_faster_lookups () =
  (* many importers on different nodes: local lookups beat the
     centralized round trip *)
  let src =
    {| site server { export new p
         def L(x) = p?(v) = (io!printi[v] | L[x]) in L[0] }
       site c1 { import p from server in p![1] }
       site c2 { import p from server in p![2] }
       site c3 { import p from server in p![3] } |}
  in
  let central = run src in
  let repl = run ~config:replicated_cfg src in
  check Alcotest.bool "same outputs" true
    (Output.same_multiset (events central) (events repl));
  (* local replicas turn the lookup round-trips into same-node
     shared-memory deliveries; even with the registration broadcast,
     fewer packets cross the fabric than under the centralized service *)
  check Alcotest.bool "fewer fabric packets (local lookups)" true
    (repl.Api.packets < central.Api.packets);
  check Alcotest.bool "more same-node deliveries" true
    (Cluster.same_node_fast repl.Api.cluster
    > Cluster.same_node_fast central.Api.cluster);
  (* ...but the time to the last resolution should not regress much *)
  check Alcotest.bool "not slower than 1.5x" true
    (float_of_int repl.Api.virtual_ns
     < 1.5 *. float_of_int central.Api.virtual_ns)

let replicated_ns_race () =
  (* lookup reaches the local replica before the broadcast arrives:
     must park and resolve, never fail *)
  let src =
    {| site b { import p from a in p![5] }
       site a { export new p p?(x) = io!printi[x] } |}
  in
  let r = run ~config:replicated_cfg src in
  check (Alcotest.list ev_testable) "resolved"
    [ { Output.site = "a"; label = "printi"; args = [ Output.Oint 5 ] } ]
    (events r);
  check Alcotest.int "no pending" 0 (Cluster.name_service_pending r.Api.cluster)

let replicated_ns_fewer_replicas_than_nodes () =
  (* regression: replica indices are not node ips.  With 2 replicas on
     a 4-node cluster, importers placed on the replica-less nodes 2 and
     3 must consult their home replica (ip mod 2) over the network and
     still resolve — the old code conflated the broadcast skip index
     with the handling node's ip and only worked when replicas = nodes *)
  let src =
    {| site server { export new p
         def L(x) = p?(v) = (io!printi[v] | L[x]) in L[0] }
       site c1 { import p from server in p![1] }
       site c2 { import p from server in p![2] } |}
  in
  let placement = function
    | "server" -> 0
    | "c1" -> 2
    | _ -> 3
  in
  let central = run ~placement src in
  let cfg =
    { Cluster.default_config with
      Cluster.nodes = 4; ns_mode = Cluster.Replicated; ns_replicas = 2 }
  in
  let repl = run ~config:cfg ~placement src in
  check Alcotest.bool "same outputs" true
    (Output.same_multiset (events central) (events repl));
  check Alcotest.int "no pending" 0
    (Cluster.name_service_pending repl.Api.cluster)

let replicated_tests =
  [ ("same-node fast path", `Quick, same_node_fast_path);
    ("same-node fast path (reliable)", `Quick, same_node_fast_path_reliable);
    ("replicated NS: same outputs", `Quick, replicated_ns_same_outputs);
    ("replicated NS: broadcast vs lookups", `Quick, replicated_ns_faster_lookups);
    ("replicated NS: registration race", `Quick, replicated_ns_race);
    ( "replicated NS: nodes > replicas",
      `Quick,
      replicated_ns_fewer_replicas_than_nodes ) ]

let tests = tests @ replicated_tests

(* ------------------------------------------------------------------ *)
(* Heartbeat failure detection (paper future work, active variant)     *)

let heartbeat_detects_kill () =
  let src =
    {| site server {
         def Serve(svc) = svc?{ ping(v, k) = (k![v] | Serve[svc]) }
         in export new svc Serve[svc] }
       site client { import svc from server in
                     def Ping(n) =
                       if n == 0 then io!printi[0]
                       else let v = svc!ping[n] in Ping[n - 1]
                     in Ping[200] } |}
  in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse src));
  let kill_at = 500_000 in
  let report =
    Failure.run_with_heartbeats ~period:100_000 ~kills:[ ("server", kill_at) ]
      cluster
  in
  (match report.Failure.suspicions with
  | [ s ] ->
      check Alcotest.string "who" "server" s.Failure.s_site;
      check Alcotest.bool "after the kill" true (s.Failure.s_at >= kill_at);
      check Alcotest.bool "within two periods + timeout" true
        (s.Failure.s_at - kill_at <= (2 * 100_000) + 50_000)
  | l -> Alcotest.failf "expected one suspicion, got %d" (List.length l));
  check Alcotest.int "no false suspicions" 0 report.Failure.false_suspicions;
  check Alcotest.bool "probing has a cost" true
    (report.Failure.probe_overhead_ns > 0)

let heartbeat_quiet_when_healthy () =
  let src = List.assoc "rpc" paper_programs in
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse src));
  let report = Failure.run_with_heartbeats ~kills:[] cluster in
  check Alcotest.int "no suspicions" 0 (List.length report.Failure.suspicions);
  check Alcotest.bool "monitor terminated" true (report.Failure.probe_rounds >= 2)

let heartbeat_tests =
  [ ("heartbeat detects killed site", `Quick, heartbeat_detects_kill);
    ("heartbeat quiet when healthy", `Quick, heartbeat_quiet_when_healthy) ]

let tests = tests @ heartbeat_tests

(* ------------------------------------------------------------------ *)
(* Packet trace                                                        *)

let rpc_packet_trace () =
  let r = run (List.assoc "rpc" paper_programs) in
  let trace = List.map snd (Cluster.packet_trace r.Api.cluster) in
  let count pred = List.length (List.filter pred trace) in
  check Alcotest.int "two shipments"
    2 (count (function Tyco_net.Packet.Pmsg _ -> true | _ -> false));
  check Alcotest.int "one registration"
    1 (count (function Tyco_net.Packet.Pns_register _ -> true | _ -> false));
  check Alcotest.int "one lookup"
    1 (count (function Tyco_net.Packet.Pns_lookup _ -> true | _ -> false));
  check Alcotest.int "one reply"
    1 (count (function Tyco_net.Packet.Pns_reply _ -> true | _ -> false));
  check Alcotest.int "total" 5 (List.length trace);
  (* chronological timestamps *)
  let rec mono = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check Alcotest.bool "monotone" true (mono (Cluster.packet_trace r.Api.cluster))

let fetch_packet_trace () =
  let r = run (List.assoc "applet-fetch" paper_programs) in
  let trace = List.map snd (Cluster.packet_trace r.Api.cluster) in
  let count pred = List.length (List.filter pred trace) in
  check Alcotest.int "one fetch request"
    1 (count (function Tyco_net.Packet.Pfetch_req _ -> true | _ -> false));
  check Alcotest.int "one fetch reply"
    1 (count (function Tyco_net.Packet.Pfetch_rep _ -> true | _ -> false))

let trace_tests =
  [ ("rpc packet trace", `Quick, rpc_packet_trace);
    ("fetch packet trace", `Quick, fetch_packet_trace) ]

let tests = tests @ trace_tests

(* ------------------------------------------------------------------ *)
(* Dynamic program submission (paper §5: TyCOsh/TyCOi — "new sites are
   created when a new program is submitted for execution")             *)

let dynamic_submission () =
  let cluster = Cluster.create () in
  (* first program: a server *)
  Cluster.load cluster
    (Api.compile
       (Api.parse
          {| site server {
               def Serve(svc) = svc?{ ping(v, k) = (k![v * 2] | Serve[svc]) }
               in export new svc Serve[svc] } |}));
  Cluster.run cluster;
  let t1 = Cluster.virtual_time cluster in
  check Alcotest.bool "server quiesced waiting" true (Cluster.quiescent cluster);
  (* later, a client program is submitted to the running network *)
  Cluster.load cluster
    (Api.compile
       (Api.parse
          {| site client { import svc from server in
                           let v = svc!ping[21] in io!printi[v] } |}));
  Cluster.run cluster;
  check
    (Alcotest.list ev_testable)
    "second program used the first one's exports"
    [ { Output.site = "client"; label = "printi"; args = [ Output.Oint 42 ] } ]
    (List.map snd (Cluster.outputs cluster));
  check Alcotest.bool "time advanced monotonically" true
    (Cluster.virtual_time cluster >= t1)

let submission_name_clash_rejected () =
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse {| site a { nil } |}));
  check Alcotest.bool "duplicate site name rejected" true
    (match Cluster.load cluster (Api.compile (Api.parse {| site a { nil } |})) with
    | exception Invalid_argument _ -> true
    | () -> false)

let submission_tests =
  [ ("dynamic program submission", `Quick, dynamic_submission);
    ("submission name clash", `Quick, submission_name_clash_rejected) ]

let tests = tests @ submission_tests

(* ------------------------------------------------------------------ *)
(* I/O port input (paper §5: "users may selectively provide data to
   running programs")                                                  *)

let io_input_echo () =
  let src =
    {| def Echo(n) =
         if n == 0 then nil
         else new k (io!readi[k] | k?(v) = (io!printi[v * 2] | Echo[n - 1]))
       in Echo[3] |}
  in
  let prog = Api.parse src in
  ignore (Api.typecheck prog);
  let inputs = [ ("main", [ 5; 6; 7 ]) ] in
  let r = Api.run_program ~inputs prog in
  check (Alcotest.list ev_testable) "doubled echo"
    [ { Output.site = "main"; label = "printi"; args = [ Output.Oint 10 ] };
      { Output.site = "main"; label = "printi"; args = [ Output.Oint 12 ] };
      { Output.site = "main"; label = "printi"; args = [ Output.Oint 14 ] } ]
    (events r);
  check Alcotest.bool "reference agrees" true
    (Api.agree_with_reference ~inputs prog)

let io_input_starved_blocks () =
  let src = {| new k (io!readi[k] | k?(v) = io!printi[v]) |} in
  let prog = Api.parse src in
  let r = Api.run_program ~inputs:[ ("main", []) ] prog in
  check Alcotest.int "no output, no crash" 0 (List.length (events r));
  check Alcotest.bool "reference agrees" true (Api.agree_with_reference prog)

let io_input_per_site () =
  let src =
    {| site a { new k (io!readi[k] | k?(v) = io!printi[v]) }
       site b { new k (io!readi[k] | k?(v) = io!printi[v + 100]) } |}
  in
  let prog = Api.parse src in
  let inputs = [ ("a", [ 1 ]); ("b", [ 2 ]) ] in
  let r = Api.run_program ~inputs prog in
  check Alcotest.bool "each site reads its own feed" true
    (Output.same_multiset (events r)
       [ { Output.site = "a"; label = "printi"; args = [ Output.Oint 1 ] };
         { Output.site = "b"; label = "printi"; args = [ Output.Oint 102 ] } ]);
  check Alcotest.bool "reference agrees" true
    (Api.agree_with_reference ~inputs prog)

let io_input_type_checked () =
  check Alcotest.bool "readi needs an int-reply channel" true
    (match Api.typecheck (Api.parse "new k (io!readi[k] | k?(v) = io!printb[v])") with
    | exception Api.Error (Api.Type_error _) -> true
    | _ -> false)

let io_input_tests =
  [ ("io input echo", `Quick, io_input_echo);
    ("io input starved blocks", `Quick, io_input_starved_blocks);
    ("io input per site", `Quick, io_input_per_site);
    ("io input typed", `Quick, io_input_type_checked) ]

let tests = tests @ io_input_tests

(* ------------------------------------------------------------------ *)
(* Real TCP loopback transport                                         *)

let tcp_runner_paper_programs () =
  List.iter
    (fun (name, src) ->
      let prog = Api.parse src in
      let sim_outs = List.map snd (Api.run_program prog).Api.outputs in
      let tcp = Tcp_runner.run_program ~timeout_ms:20_000 prog in
      if tcp.Tcp_runner.timed_out then Alcotest.failf "%s: timed out" name;
      if not (Output.same_multiset sim_outs tcp.Tcp_runner.outputs) then
        Alcotest.failf "%s: TCP transport outputs differ from simulation"
          name)
    [ ("rpc", List.assoc "rpc" paper_programs);
      ("applet-fetch", List.assoc "applet-fetch" paper_programs);
      ("applet-ship", List.assoc "applet-ship" paper_programs);
      ("two-clients", List.assoc "two-clients" paper_programs) ]

let tcp_runner_packets_flow () =
  let prog = Api.parse (List.assoc "rpc" paper_programs) in
  let r = Tcp_runner.run_program prog in
  check Alcotest.bool "TCP packets exchanged" true (r.Tcp_runner.packets >= 3);
  check Alcotest.bool "finished" false r.Tcp_runner.timed_out

let tcp_runner_single_node () =
  (* all sites on one node: routing is node-local, no sockets needed *)
  let prog = Api.parse (List.assoc "rpc" paper_programs) in
  let sim_outs = List.map snd (Api.run_program prog).Api.outputs in
  let r = Tcp_runner.run_program ~nodes:1 prog in
  check Alcotest.bool "same outputs" true
    (Output.same_multiset sim_outs r.Tcp_runner.outputs)

let tcp_tests =
  [ ("tcp transport: paper programs", `Slow, tcp_runner_paper_programs);
    ("tcp transport: packets flow", `Quick, tcp_runner_packets_flow);
    ("tcp transport: single node", `Quick, tcp_runner_single_node) ]

let tests = tests @ tcp_tests

(* ------------------------------------------------------------------ *)
(* JSON run reports                                                    *)

let report_json_shape () =
  let r = run (List.assoc "rpc" paper_programs) in
  let json = Report.to_json (Report.of_result r) in
  let has sub =
    let nh = String.length json and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub json i nn = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "has virtual_ns" true (has "\"virtual_ns\":");
  check Alcotest.bool "has outputs" true (has "\"label\":\"printi\"");
  check Alcotest.bool "has sites" true (has "\"instructions\":");
  check Alcotest.bool "valid escaping" true
    (Report.json_escape "a\"b\\c\nd" = "a\\\"b\\\\c\\nd")

let tests = tests @ [ ("report json shape", `Quick, report_json_shape) ]

(* ------------------------------------------------------------------ *)
(* Shipped sample programs: every examples/programs/*.tyco must parse,
   type-check and run (bounded for perpetual ones).                    *)

let sample_programs () =
  let dir = "../examples/programs" in
  match Sys.readdir dir with
  | exception Sys_error _ -> Alcotest.skip ()
  | entries ->
      let tycos =
        List.filter (fun f -> Filename.check_suffix f ".tyco")
          (Array.to_list entries)
      in
      check Alcotest.bool "samples present" true (List.length tycos >= 5);
      List.iter
        (fun f ->
          let path = Filename.concat dir f in
          let ic = open_in_bin path in
          let src =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match
            let prog = Api.parse ~file:path src in
            ignore (Api.typecheck prog);
            Api.run_program ~until:3_000_000 prog
          with
          | r -> ignore r
          | exception Api.Error e ->
              Alcotest.failf "%s: %s" f (Api.error_message e))
        tycos

let tests = tests @ [ ("shipped sample programs", `Quick, sample_programs) ]

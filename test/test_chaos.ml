(* Chaos tests: the runtime protocols (SHIP, FETCH, name service)
   under an adversarial fabric — packet loss, duplication, reordering
   and partitions — must produce exactly the outputs of a fault-free
   run, and must fail gracefully (not hang) when a peer is truly dead.

   Everything is driven by the simulation PRNG, so each (program,
   seed) pair is a fixed, reproducible adversary: a passing seed
   passes forever. *)

open Dityco
module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats

let check = Alcotest.check
let ev_testable = Alcotest.testable Output.pp_event Output.equal_event

let chaos_faults =
  { Simnet.drop = 0.2; duplicate = 0.1; reorder = 0.3; reorder_ns = 50_000;
    partitions = [] }

let chaos_config ?(faults = chaos_faults) seed =
  { Cluster.default_config with Cluster.seed; faults; reliable = true }

let run ?config src = Api.run_program ?config (Api.parse src)
let events r = List.map snd r.Api.outputs

let chaos_programs =
  List.filter
    (fun (name, _) ->
      List.mem name [ "cell"; "rpc"; "applet-fetch"; "applet-ship" ])
    Test_runtime.paper_programs

let seeds = [ 7; 1234; 99991 ]

(* ------------------------------------------------------------------ *)
(* Reliability: chaos outputs = fault-free outputs                     *)

let chaos_preserves_outputs () =
  List.iter
    (fun (name, src) ->
      let clean = events (run src) in
      List.iter
        (fun seed ->
          let noisy = events (run ~config:(chaos_config seed) src) in
          if not (Output.same_multiset clean noisy) then
            Alcotest.failf "%s (seed %d): outputs differ under faults" name
              seed)
        seeds)
    chaos_programs

let chaos_is_deterministic () =
  let src = List.assoc "applet-ship" chaos_programs in
  let a = run ~config:(chaos_config 7) src in
  let b = run ~config:(chaos_config 7) src in
  check (Alcotest.list ev_testable) "same outputs" (events a) (events b);
  check Alcotest.int "same virtual time" a.Api.virtual_ns b.Api.virtual_ns;
  check Alcotest.int "same packets" a.Api.packets b.Api.packets

let chaos_exercises_fault_paths () =
  (* across the fixed seeds, the adversary must actually have bitten:
     drops happened, retransmissions recovered them, and the dedup
     window suppressed duplicated/retransmitted frames *)
  let total name =
    List.fold_left
      (fun acc seed ->
        let r =
          run ~config:(chaos_config seed)
            (List.assoc "applet-ship" chaos_programs)
        in
        acc + Stats.counter_value (Cluster.stats r.Api.cluster) name)
      0 seeds
  in
  check Alcotest.bool "drops > 0" true (total "drops" > 0);
  check Alcotest.bool "retries > 0" true (total "retries" > 0);
  check Alcotest.bool "dupes suppressed > 0" true
    (total "dupes_suppressed" > 0);
  check Alcotest.bool "acks > 0" true (total "acks" > 0)

let partition_heals () =
  (* a 2 ms cut between the client's node and the rest of the world is
     bridged by retransmission: same outputs as the clean run *)
  let src = List.assoc "rpc" chaos_programs in
  let clean = events (run src) in
  let faults =
    { Simnet.no_faults with
      Simnet.partitions =
        [ { Simnet.p_a = 0; p_b = 1; p_from = 0; p_until = 2_000_000 } ] }
  in
  let r = run ~config:(chaos_config ~faults 7) src in
  check Alcotest.bool "outputs survive the partition" true
    (Output.same_multiset clean (events r));
  check Alcotest.bool "after healing time" true
    (r.Api.virtual_ns >= 2_000_000)

(* ------------------------------------------------------------------ *)
(* Graceful failure: dead peers produce bounded, visible errors        *)

let fetch_from_dead_site_fails_fast () =
  (* the server registers its exported class and dies; the client's
     FETCH can never be answered.  The request deadline must abandon it
     within the retry horizon and say so, instead of hanging forever *)
  let src = List.assoc "applet-fetch" chaos_programs in
  let prog = Api.parse src in
  let cluster =
    Cluster.create ~config:(chaos_config ~faults:Simnet.no_faults 7) ()
  in
  Cluster.load cluster (Api.compile prog);
  Cluster.kill_site cluster "server" ~at:1;
  Cluster.run cluster;
  let outs = List.map snd (Cluster.outputs cluster) in
  check Alcotest.bool "fetch-failed reported" true
    (List.exists (fun e -> e.Output.label = "fetch-failed") outs);
  check Alcotest.bool "no applet output" false
    (List.exists (fun e -> e.Output.label = "printi") outs);
  check Alcotest.bool "server suspected" true
    (Cluster.suspected_failures cluster <> []);
  check Alcotest.bool "bounded virtual time" true
    (Cluster.virtual_time cluster < 1_000_000_000)

let unreliable_transport_loses () =
  (* without [reliable], a fully lossy fabric silently eats the RPC:
     the seed's fire-and-forget behaviour, now at least visible in the
     drop counter *)
  let src = List.assoc "rpc" chaos_programs in
  let faults = { Simnet.no_faults with Simnet.drop = 1.0 } in
  let config =
    { Cluster.default_config with Cluster.seed = 7; faults } in
  let r = run ~config src in
  check (Alcotest.list ev_testable) "no outputs" [] (events r);
  check Alcotest.bool "drops counted" true
    (Stats.counter_value (Cluster.stats r.Api.cluster) "drops" > 0)

let dead_letters_counted () =
  let cluster = Cluster.create () in
  let dst = Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:99 ~ip:1 in
  Cluster.inject_packet cluster ~src_ip:0
    (Packet.Pmsg { dst; label = "x"; args = [] });
  Cluster.run cluster;
  check Alcotest.int "dead letter counted" 1 (Cluster.dead_letters cluster);
  check Alcotest.bool "phantom site recorded" true
    (List.exists
       (fun (_, who) -> who = "site#99")
       (Cluster.suspected_failures cluster))

(* ------------------------------------------------------------------ *)
(* Dedup window (Node.admit) unit behaviour                            *)

let dedup_window () =
  let n = Node.create ~node_id:0 ~ip:0 ~cores:1 in
  check Alcotest.bool "first seq 0" true (Node.admit n ~src_ip:1 ~seq:0);
  check Alcotest.bool "replay rejected" false (Node.admit n ~src_ip:1 ~seq:0);
  check Alcotest.bool "out of order admitted" true
    (Node.admit n ~src_ip:1 ~seq:2);
  check Alcotest.int "one buffered" 1 (Node.dedup_window_size n);
  check Alcotest.bool "gap filled" true (Node.admit n ~src_ip:1 ~seq:1);
  check Alcotest.int "window drained" 0 (Node.dedup_window_size n);
  check Alcotest.bool "below floor rejected" false
    (Node.admit n ~src_ip:1 ~seq:1);
  check Alcotest.bool "replay of reordered rejected" false
    (Node.admit n ~src_ip:1 ~seq:2);
  (* streams are per-peer: another source starts at its own floor *)
  check Alcotest.bool "independent peer" true (Node.admit n ~src_ip:2 ~seq:0)

(* ------------------------------------------------------------------ *)
(* Batched transport under chaos                                       *)

(* The chaos suite above already runs the batched path — batching is
   on in [default_config] — so these pin down the batching-specific
   semantics explicitly. *)

(* Cumulative-ack retransmission recovers batches under drop, dup and
   reorder, with batching on and off producing the same outputs. *)
let batched_chaos_recovers () =
  let src = List.assoc "rpc" chaos_programs in
  let clean = events (run src) in
  List.iter
    (fun seed ->
      let on = run ~config:(chaos_config seed) src in
      let off =
        run
          ~config:{ (chaos_config seed) with Cluster.batching = false }
          src
      in
      check Alcotest.bool
        (Printf.sprintf "batched outputs intact (seed %d)" seed)
        true
        (Output.same_multiset clean (events on));
      check Alcotest.bool
        (Printf.sprintf "unbatched outputs intact (seed %d)" seed)
        true
        (Output.same_multiset clean (events off)))
    seeds;
  (* and the cumulative-ack machinery actually bit: losses recovered
     by batch retransmission, replays suppressed by the dedup window *)
  let total name =
    List.fold_left
      (fun acc seed ->
        let r = run ~config:(chaos_config seed) src in
        acc + Stats.counter_value (Cluster.stats r.Api.cluster) name)
      0 seeds
  in
  check Alcotest.bool "retries > 0" true (total "retries" > 0);
  check Alcotest.bool "dupes suppressed > 0" true
    (total "dupes_suppressed" > 0);
  check Alcotest.bool "acks > 0" true (total "acks" > 0)

(* A nonzero flush deadline delays flushes by virtual time; the run
   must stay bit-for-bit deterministic per seed, and the deadline must
   not change what the program computes. *)
let flush_deadline_deterministic () =
  let src = List.assoc "rpc" chaos_programs in
  let clean = events (run src) in
  List.iter
    (fun deadline ->
      let config seed =
        { (chaos_config seed) with Cluster.flush_deadline_ns = deadline }
      in
      let a = run ~config:(config 7) src in
      let b = run ~config:(config 7) src in
      check (Alcotest.list ev_testable)
        (Printf.sprintf "deadline %d: same outputs" deadline)
        (events a) (events b);
      check Alcotest.int
        (Printf.sprintf "deadline %d: same virtual time" deadline)
        a.Api.virtual_ns b.Api.virtual_ns;
      check Alcotest.int
        (Printf.sprintf "deadline %d: same packets" deadline)
        a.Api.packets b.Api.packets;
      check Alcotest.bool
        (Printf.sprintf "deadline %d: outputs intact" deadline)
        true
        (Output.same_multiset clean (events a)))
    [ 0; 5_000; 50_000 ]

(* Counting regression: with sites mixed across same-node and
   cross-node placement, every logical packet is counted exactly once —
   as a fabric packet or as a same-node delivery, never both, never
   twice — in every transport mode.  (The packet log records both
   kinds, so packets + same_node = log kept + log dropped.) *)
let mixed_placement_counting () =
  let src =
    {| site a { export new p
         def L(x) = p?(v) = (io!printi[v] | L[x]) in L[0] }
       site b { import p from a in p![1] }
       site c { import p from a in p![2] }
       site d { import p from a in p![3] } |}
  in
  (* a and b share node 0; c and d sit on nodes 1 and 2 *)
  let placement = function
    | "a" | "b" -> 0
    | "c" -> 1
    | _ -> 2
  in
  let clean =
    events (Api.run_program ~placement:(fun n -> placement n) (Api.parse src))
  in
  let packet_counts = ref [] in
  List.iter
    (fun (name, config) ->
      let r =
        Api.run_program ~config ~placement:(fun n -> placement n)
          (Api.parse src)
      in
      let cl = r.Api.cluster in
      let logged =
        List.length (Cluster.packet_trace cl)
        + Cluster.packet_trace_dropped cl
      in
      check Alcotest.int
        (Printf.sprintf "%s: packets + same_node = logged" name)
        logged
        (Cluster.packets_sent cl + Cluster.same_node_fast cl);
      check Alcotest.bool (Printf.sprintf "%s: same_node > 0" name) true
        (Cluster.same_node_fast cl > 0);
      check Alcotest.bool (Printf.sprintf "%s: packets > 0" name) true
        (Cluster.packets_sent cl > 0);
      check Alcotest.bool (Printf.sprintf "%s: outputs intact" name) true
        (Output.same_multiset clean (events r));
      packet_counts := (name, Cluster.packets_sent cl) :: !packet_counts)
    [ ("batched", Cluster.default_config);
      ("unbatched", { Cluster.default_config with Cluster.batching = false });
      ( "batched reliable",
        { Cluster.default_config with Cluster.reliable = true } );
      ( "unbatched reliable",
        { Cluster.default_config with
          Cluster.batching = false;
          reliable = true } ) ];
  (* the logical packet count is a property of the program, not of the
     transport mode: any disagreement means a mode double-counts *)
  match !packet_counts with
  | (_, n) :: rest ->
      List.iter
        (fun (name, m) ->
          check Alcotest.int
            (Printf.sprintf "%s: same logical packet count" name)
            n m)
        rest
  | [] -> ()

let tests =
  [ ("chaos: outputs preserved (3 seeds)", `Quick, chaos_preserves_outputs);
    ("chaos: deterministic", `Quick, chaos_is_deterministic);
    ("chaos: fault paths exercised", `Quick, chaos_exercises_fault_paths);
    ("chaos: partition heals", `Quick, partition_heals);
    ("dead site: fetch fails fast", `Quick, fetch_from_dead_site_fails_fast);
    ("unreliable: drops lose packets", `Quick, unreliable_transport_loses);
    ("dead letters counted", `Quick, dead_letters_counted);
    ("dedup window", `Quick, dedup_window);
    ("batched chaos: cum-ack retransmit recovers", `Quick,
     batched_chaos_recovers);
    ("flush deadline: deterministic per seed", `Quick,
     flush_deadline_deterministic);
    ("mixed placement: packets counted once", `Quick,
     mixed_placement_counting) ]

(* Resource-lifecycle tests: lease-based reclamation of export-table
   entries, stale-reference failure semantics, duplicate-suppression
   pruning, LRU code caches, and the refutation path of the heartbeat
   monitor.

   The churn workload is the E17 shape: every RPC creates a fresh
   reply channel, so the client's export table grows linearly without
   leases and stays flat with them. *)

open Dityco
module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats
module Lru = Tyco_support.Lru

let check = Alcotest.check
let ev_testable = Alcotest.testable Output.pp_event Output.equal_event

let churn_src rounds =
  Printf.sprintf
    {| site server {
         def Serve(svc) = svc?{ ping(v, k) = (k![v] | Serve[svc]) }
         in export new svc Serve[svc] }
       site client { import svc from server in
                     def Ping(n) =
                       if n == 0 then io!printi[0]
                       else let v = svc!ping[n] in Ping[n - 1]
                     in Ping[%d] } |}
    rounds

let run ?config src = Api.run_program ?config (Api.parse src)
let events r = List.map snd r.Api.outputs

let counter_total cluster name =
  List.fold_left
    (fun acc s -> acc + Stats.counter_value (Site.stats s) name)
    0 (Cluster.sites cluster)

(* Leases keep the lifecycle tick on a 50 µs cadence against ~20 µs
   RPC round-trips, so reclamation happens many times within a run
   while an in-flight reply channel never outlives its lease. *)
let lease_config =
  { Cluster.default_config with
    Cluster.lease_ns = 200_000;
    lease_refresh_ns = 50_000 }

(* ------------------------------------------------------------------ *)
(* LRU code caches                                                     *)

let lru_basics () =
  let c = Lru.create ~capacity:2 in
  check Alcotest.int "capacity" 2 (Lru.capacity c);
  check Alcotest.bool "no eviction below cap" true (Lru.add c 1 "a" = None);
  check Alcotest.bool "still none" true (Lru.add c 2 "b" = None);
  (* touch 1 so 2 becomes the LRU victim *)
  check (Alcotest.option Alcotest.string) "find touches" (Some "a")
    (Lru.find c 1);
  (match Lru.add c 3 "c" with
  | Some (k, v) ->
      check Alcotest.int "evicted key" 2 k;
      check Alcotest.string "evicted value" "b" v
  | None -> Alcotest.fail "expected an eviction");
  check Alcotest.int "length stays at cap" 2 (Lru.length c);
  check (Alcotest.option Alcotest.string) "evicted gone" None (Lru.find c 2);
  check (Alcotest.option Alcotest.string) "touched kept" (Some "a")
    (Lru.find c 1);
  check Alcotest.bool "remove" true (Lru.remove c 1);
  check Alcotest.bool "remove absent" false (Lru.remove c 1);
  check Alcotest.int "length after remove" 1 (Lru.length c);
  (* replacing an existing key updates in place, no eviction *)
  check Alcotest.bool "re-add same key" true (Lru.add c 3 "c2" = None);
  check (Alcotest.option Alcotest.string) "updated" (Some "c2") (Lru.find c 3)

let lru_rejects_bad_capacity () =
  check Alcotest.bool "capacity 0 rejected" true
    (match Lru.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Leases bound the export tables                                      *)

let leases_bound_live_exports () =
  let src = churn_src 300 in
  let base = run src in
  let leased = run ~config:lease_config src in
  check (Alcotest.list ev_testable) "outputs unchanged" (events base)
    (events leased);
  let mem r = Site.memory (Cluster.site r.Api.cluster "client") in
  let b = mem base and l = mem leased in
  (* without leases the client's table holds every reply channel ever
     exported; with them it holds only the recent working set *)
  check Alcotest.bool "baseline grows linearly" true (b.Site.m_chan_live >= 300);
  check Alcotest.int "baseline reclaims nothing" 0 b.Site.m_chan_reclaimed;
  check Alcotest.bool "leased stays bounded" true (l.Site.m_chan_live < 60);
  check Alcotest.bool "leased reclaims most ids" true
    (l.Site.m_chan_reclaimed > 200);
  check Alcotest.int "allocated = live + reclaimed"
    (l.Site.m_chan_live + l.Site.m_chan_reclaimed)
    l.Site.m_chan_allocated;
  (* reclamation never bit an in-use reference *)
  check Alcotest.int "no stale refs" 0
    (counter_total leased.Api.cluster "stale_refs");
  check Alcotest.bool "refreshes flowed" true
    (counter_total leased.Api.cluster "lease_refreshes" > 0)

let leases_deterministic () =
  let src = churn_src 120 in
  let a = run ~config:lease_config src in
  let b = run ~config:lease_config src in
  check (Alcotest.list ev_testable) "same outputs" (events a) (events b);
  check Alcotest.int "same virtual time" a.Api.virtual_ns b.Api.virtual_ns;
  check Alcotest.int "same packets" a.Api.packets b.Api.packets;
  let mem r = Site.memory (Cluster.site r.Api.cluster "client") in
  check Alcotest.int "same reclamation"
    (mem a).Site.m_chan_reclaimed (mem b).Site.m_chan_reclaimed

(* The name-service registration is pinned: however long the run, the
   exported service channel survives every sweep. *)
let pinned_exports_survive () =
  let r = run ~config:lease_config (churn_src 300) in
  let server = Cluster.site r.Api.cluster "server" in
  check Alcotest.bool "server's pinned export still live" true
    ((Site.memory server).Site.m_chan_live >= 1);
  (* and it still resolves: the run completed, so every RPC went
     through the pinned channel *)
  check (Alcotest.list ev_testable) "run completed"
    [ { Output.site = "client"; label = "printi"; args = [ Output.Oint 0 ] } ]
    (events r)

(* ------------------------------------------------------------------ *)
(* Stale references fail visibly and deterministically                 *)

let stale_ref_is_visible () =
  let cfg = { lease_config with Cluster.reliable = true } in
  let r = run ~config:cfg (churn_src 200) in
  let cluster = r.Api.cluster in
  let client = Cluster.site cluster "client" in
  let server = Cluster.site cluster "server" in
  check Alcotest.bool "some ids were reclaimed" true
    ((Site.memory client).Site.m_chan_reclaimed > 0);
  (* heap id 0 = the first reply channel the client exported; long
     since reclaimed.  A retransmitted shipment naming it must surface
     as a stale-ref event, not a protocol error or a silent alias. *)
  let dst =
    Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:(Site.site_id client)
      ~ip:(Site.ip client)
  in
  Cluster.inject_packet cluster ~src_ip:(Site.ip server)
    (Packet.Pmsg { dst; label = "late"; args = [] });
  Cluster.run cluster;
  check Alcotest.int "stale_refs counted" 1
    (Stats.counter_value (Site.stats client) "stale_refs");
  let stale_events =
    List.filter
      (fun (e : Output.event) -> String.equal e.Output.label "stale-ref")
      (Site.outputs client)
  in
  check Alcotest.int "one stale-ref output" 1 (List.length stale_events);
  (* a second copy of the same packet behaves identically *)
  Cluster.inject_packet cluster ~src_ip:(Site.ip server)
    (Packet.Pmsg { dst; label = "late"; args = [] });
  Cluster.run cluster;
  check Alcotest.int "deterministic on repeat" 2
    (Stats.counter_value (Site.stats client) "stale_refs")

(* A reference this site never issued is still a protocol error — the
   stale-ref path must not swallow genuine violations. *)
let never_issued_still_raises () =
  let r = run ~config:lease_config (churn_src 50) in
  let cluster = r.Api.cluster in
  let client = Cluster.site cluster "client" in
  let server = Cluster.site cluster "server" in
  let dst =
    Netref.make ~kind:Netref.Channel ~heap_id:999_999
      ~site_id:(Site.site_id client) ~ip:(Site.ip client)
  in
  Cluster.inject_packet cluster ~src_ip:(Site.ip server)
    (Packet.Pmsg { dst; label = "bogus"; args = [] });
  check Alcotest.bool "protocol error" true
    (match Cluster.run cluster with
    | exception Site.Protocol_error _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Chaos: reclamation never races an in-use reference                  *)

let chaos_faults =
  { Simnet.drop = 0.2; duplicate = 0.1; reorder = 0.3; reorder_ns = 50_000;
    partitions = [] }

(* The lease must outlive the longest retransmission tail the chaos
   parameters can realistically produce (cumulative backoff through
   nine straight losses is ~150 ms); 200 ms virtual with a 20 ms
   refresh keeps every in-flight reference renewed. *)
let chaos_lease_config seed =
  { Cluster.default_config with
    Cluster.seed;
    faults = chaos_faults;
    reliable = true;
    lease_ns = 200_000_000;
    lease_refresh_ns = 20_000_000 }

let chaos_with_leases_preserves_outputs () =
  let programs =
    ("churn", churn_src 150)
    :: List.filter
         (fun (name, _) -> List.mem name [ "rpc"; "applet-ship" ])
         Test_runtime.paper_programs
  in
  List.iter
    (fun (name, src) ->
      let clean = events (run src) in
      List.iter
        (fun seed ->
          let r = run ~config:(chaos_lease_config seed) src in
          if not (Output.same_multiset clean (events r)) then
            Alcotest.failf "%s (seed %d): outputs differ under chaos + leases"
              name seed;
          check Alcotest.int
            (Printf.sprintf "%s (seed %d): no stale refs" name seed)
            0
            (counter_total r.Api.cluster "stale_refs"))
        [ 7; 1234; 99991 ])
    programs

(* ------------------------------------------------------------------ *)
(* Duplicate-suppression pruning                                       *)

let done_reqs_pruned () =
  (* tiny retry parameters shrink the derived horizon to ~15 µs
     virtual; in the default (unreliable) mode no deadlines are armed,
     so the parameters only affect the horizon.  The churn run lasts
     milliseconds, so the import request's dedup entry is long pruned
     by the end. *)
  let tiny = { Site.r_timeout_ns = 1_000; r_backoff = 2.0; r_max_tries = 3 } in
  let cfg = { Cluster.default_config with Cluster.site_retry = tiny } in
  let r = run ~config:cfg (churn_src 100) in
  let client = Cluster.site r.Api.cluster "client" in
  check Alcotest.int "dedup set empty at the end" 0
    (Site.memory client).Site.m_done_reqs;
  check Alcotest.bool "entries were pruned" true
    (Stats.counter_value (Site.stats client) "done_reqs_pruned" >= 1);
  (* default horizon (~0.5 s virtual) never fires within this run *)
  let d = run (churn_src 100) in
  let dclient = Cluster.site d.Api.cluster "client" in
  check Alcotest.bool "default keeps the entry" true
    ((Site.memory dclient).Site.m_done_reqs >= 1)

(* ------------------------------------------------------------------ *)
(* Bounded code caches re-fetch on miss                                *)

let code_cache_evicts_and_refetches () =
  (* two distinct remote classes against a capacity-1 cache: the
     second fetch evicts the first mapping; outputs are unaffected *)
  let src =
    {| site server { export def A(p) = p![1] in export def B(q) = q![2] in nil }
       site client { import A from server in import B from server in
                     new p (A[p] | p?(x) =
                       (io!printi[x] |
                        new q (B[q] | q?(y) = io!printi[y]))) } |}
  in
  let clean = run src in
  let bounded =
    run
      ~config:{ Cluster.default_config with Cluster.code_cache_capacity = 1 }
      src
  in
  check Alcotest.bool "same outputs" true
    (Output.same_multiset (events clean) (events bounded));
  let client = Cluster.site bounded.Api.cluster "client" in
  check Alcotest.bool "cache never exceeds capacity" true
    ((Site.memory client).Site.m_grp_cache <= 1);
  check Alcotest.bool "eviction happened" true
    (Stats.counter_value (Site.stats client) "code_cache_evictions" >= 1)

(* ------------------------------------------------------------------ *)
(* Heartbeat refutation                                                *)

let heartbeat_refutation_state () =
  (* a genuinely killed site: exactly one suspicion, no recoveries —
     the refutation path must not fire, and the suspicion must not be
     double-counted across later probe rounds *)
  let cluster = Cluster.create () in
  Cluster.load cluster (Api.compile (Api.parse (churn_src 200)));
  let report =
    Failure.run_with_heartbeats ~period:100_000
      ~kills:[ ("server", 500_000) ]
      cluster
  in
  check Alcotest.int "one suspicion" 1 (List.length report.Failure.suspicions);
  check Alcotest.int "no false suspicions" 0 report.Failure.false_suspicions;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "no recoveries" [] report.Failure.recoveries

let tests =
  [ ("lru basics", `Quick, lru_basics);
    ("lru rejects zero capacity", `Quick, lru_rejects_bad_capacity);
    ("leases bound live exports", `Quick, leases_bound_live_exports);
    ("lease reclamation deterministic", `Quick, leases_deterministic);
    ("pinned exports survive", `Quick, pinned_exports_survive);
    ("stale ref fails visibly", `Quick, stale_ref_is_visible);
    ("never-issued id still raises", `Quick, never_issued_still_raises);
    ("chaos + leases preserve outputs", `Quick, chaos_with_leases_preserves_outputs);
    ("done_reqs pruned past horizon", `Quick, done_reqs_pruned);
    ("code cache evicts and refetches", `Quick, code_cache_evicts_and_refetches);
    ("heartbeat refutation state", `Quick, heartbeat_refutation_state) ]

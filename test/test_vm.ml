(* Virtual machine tests: channel rendez-vous semantics, builtins,
   dynamic errors, closures and mutual recursion, remote-operation
   surfacing, and metrics. *)

open Tyco_vm
module Parser = Tyco_syntax.Parser
module Compile = Tyco_compiler.Compile
module Link = Tyco_compiler.Link
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats

let check = Alcotest.check

(* Run a single-site program and collect io events. *)
let run_vm ?(budget = 1_000_000) src =
  let unit_ = Compile.compile_proc (Parser.parse_proc src) in
  let area, entry = Link.of_unit unit_ in
  let vm = Machine.create area in
  let outs = ref [] in
  let io =
    Machine.builtin_chan vm "io" (fun label args ->
        outs := (label, args) :: !outs)
  in
  Machine.spawn_entry vm ~entry ~io;
  let _instrs, _cost = Machine.run vm ~budget in
  (vm, List.rev !outs)

let out_testable =
  let pp ppf (l, args) =
    Fmt.pf ppf "%s[%a]" l (Fmt.list ~sep:Fmt.comma Value.pp) args
  in
  Alcotest.testable pp (fun (l1, a1) (l2, a2) ->
      l1 = l2
      && List.length a1 = List.length a2
      && List.for_all2
           (fun x y ->
             match (x, y) with
             | Value.Vint a, Value.Vint b -> a = b
             | Value.Vbool a, Value.Vbool b -> a = b
             | Value.Vstr a, Value.Vstr b -> a = b
             | _ -> false)
           a1 a2)

let ints label xs = List.map (fun n -> (label, [ Value.Vint n ])) xs

(* ------------------------------------------------------------------ *)
(* Rendez-vous semantics                                                *)

let msg_then_obj () =
  let _, outs = run_vm "new x (x![5] | x?(v) = io!printi[v])" in
  check (Alcotest.list out_testable) "fires" (ints "printi" [ 5 ]) outs

let obj_then_msg () =
  let _, outs = run_vm "new x ((x?(v) = io!printi[v]) | x![6])" in
  check (Alcotest.list out_testable) "fires" (ints "printi" [ 6 ]) outs

let fifo_messages () =
  let _, outs =
    run_vm
      "new x (x![1] | x![2] | x![3] | x?(v) = io!printi[v] | x?(v) = io!printi[v] | x?(v) = io!printi[v])"
  in
  check (Alcotest.list out_testable) "fifo" (ints "printi" [ 1; 2; 3 ]) outs

let fifo_objects () =
  let _, outs =
    run_vm
      {| new x ((x?(v) = io!printi[v * 10]) | (x?(v) = io!printi[v * 100])
         | x![1] | x![1]) |}
  in
  check (Alcotest.list out_testable) "object order" (ints "printi" [ 10; 100 ]) outs

let label_dispatch () =
  let _, outs =
    run_vm
      {| new x (x?{ inc(v, k) = k![v + 1], dec(v, k) = k![v - 1] }
         | new k (x!dec[10, k] | k?(r) = io!printi[r])) |}
  in
  check (Alcotest.list out_testable) "dec selected" (ints "printi" [ 9 ]) outs

let unmatched_message_parks () =
  let vm, outs = run_vm "new x x![1]" in
  check (Alcotest.list out_testable) "no output" [] outs;
  check Alcotest.bool "not runnable" false (Machine.runnable vm);
  let parked =
    Stats.Counter.value (Stats.counter (Machine.stats vm) "msgs_parked")
  in
  check Alcotest.int "parked" 1 parked

(* ------------------------------------------------------------------ *)
(* Closures                                                            *)

let closure_captures_environment () =
  let _, outs =
    run_vm
      {| new x, y (y![7] | (x?(v) = y?(w) = io!printi[v + w]) | x![35]) |}
  in
  check (Alcotest.list out_testable) "captured v" (ints "printi" [ 42 ]) outs

let class_env_mutual_recursion () =
  let _, outs =
    run_vm
      {| new base (base![3] |
         def Even(n) = if n == 0 then (base?(b) = io!printi[b]) else Odd[n - 1]
         and Odd(n) = Even[n - 1]
         in Even[8]) |}
  in
  check (Alcotest.list out_testable) "group shares env" (ints "printi" [ 3 ]) outs

let nested_defs () =
  let _, outs =
    run_vm
      {| def Outer(k) = (def Inner(v) = k![v * 2] in Inner[21])
         in new k (Outer[k] | k?(v) = io!printi[v]) |}
  in
  check (Alcotest.list out_testable) "nested groups" (ints "printi" [ 42 ]) outs

(* ------------------------------------------------------------------ *)
(* Expressions and control                                             *)

let expression_ops () =
  let _, outs =
    run_vm
      {| io!printi[2 * 3 + 10 / 2 - 7 % 4]
       | io!printb[1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3]
       | io!printb[not (1 == 2) && (1 != 2 || false)]
       | io!printi[-5] |}
  in
  check Alcotest.int "four outputs" 4 (List.length outs);
  check (Alcotest.list out_testable) "values"
    [ ("printi", [ Value.Vint 8 ]);
      ("printb", [ Value.Vbool true ]);
      ("printb", [ Value.Vbool true ]);
      ("printi", [ Value.Vint (-5) ]) ]
    outs

let if_branches () =
  let _, outs =
    run_vm
      {| if 1 < 2 then io!printi[1] else io!printi[2]
       | if false then io!printi[3] else io!printi[4] |}
  in
  check (Alcotest.list out_testable) "branches" (ints "printi" [ 1; 4 ]) outs

let string_values () =
  let _, outs = run_vm {| io!print["hello"] |} in
  check (Alcotest.list out_testable) "string"
    [ ("print", [ Value.Vstr "hello" ]) ]
    outs

(* ------------------------------------------------------------------ *)
(* Dynamic errors                                                      *)

let vm_errors () =
  let fails src =
    match run_vm src with exception Machine.Error _ -> true | _ -> false
  in
  check Alcotest.bool "div zero" true (fails "io!printi[1 / 0]");
  check Alcotest.bool "mod zero" true (fails "io!printi[1 % 0]");
  check Alcotest.bool "no such method" true
    (fails "new x (x?{ a() = nil } | x!b[])");
  check Alcotest.bool "arity" true (fails "new x (x?{ a(u) = nil } | x!a[])");
  check Alcotest.bool "object at builtin" true (fails "io?(v) = nil")

(* ------------------------------------------------------------------ *)
(* Remote operation surfacing                                          *)

let run_site_program site_name src =
  let units = Compile.compile_program (Parser.parse_program src) in
  let unit_ = List.assoc site_name units in
  let area, entry = Link.of_unit unit_ in
  let vm = Machine.create area in
  let io = Machine.builtin_chan vm "io" (fun _ _ -> ()) in
  Machine.spawn_entry vm ~entry ~io;
  ignore (Machine.run vm ~budget:100_000);
  vm

let export_surfaces () =
  let vm =
    run_site_program "a" {| site a { export new p p?(x) = nil } |}
  in
  match Machine.pop_remote_op vm with
  | Some (Machine.Rexport_name ("p", _)) -> ()
  | _ -> Alcotest.fail "expected Rexport_name"

let import_surfaces () =
  let vm = run_site_program "b" {| site b { import p from a in p![1] } |} in
  match Machine.pop_remote_op vm with
  | Some (Machine.Rimport { site = "a"; name = "p"; is_class = false; _ }) -> ()
  | _ -> Alcotest.fail "expected Rimport"

let remote_msg_surfaces () =
  let vm = run_site_program "b" {| site b { import p from a in p![1] } |} in
  ignore (Machine.pop_remote_op vm);
  (* feed the name-service reply by spawning the continuation with a
     remote reference, as the site would *)
  let r = Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:9 ~ip:9 in
  (match Machine.pop_remote_op vm with
  | None -> ()
  | Some _ -> Alcotest.fail "only one op expected");
  Machine.spawn vm ~block:1 ~env:[ Value.Vnetref r ];
  ignore (Machine.run vm ~budget:1000);
  match Machine.pop_remote_op vm with
  | Some (Machine.Rmsg (r', "val", [| Value.Vint 1 |])) ->
      check Alcotest.bool "same ref" true (Netref.equal r r')
  | _ -> Alcotest.fail "expected Rmsg"

let fetch_surfaces () =
  let vm = run_site_program "b" {| site b { import K from a in K[5] } |} in
  (match Machine.pop_remote_op vm with
  | Some (Machine.Rimport { is_class = true; _ }) -> ()
  | _ -> Alcotest.fail "expected class import");
  let r = Netref.make ~kind:Netref.Class ~heap_id:0 ~site_id:9 ~ip:9 in
  Machine.spawn vm ~block:1 ~env:[ Value.Vclassref r ];
  ignore (Machine.run vm ~budget:1000);
  match Machine.pop_remote_op vm with
  | Some (Machine.Rfetch (r', [| Value.Vint 5 |])) ->
      check Alcotest.bool "same ref" true (Netref.equal r r')
  | _ -> Alcotest.fail "expected Rfetch"

(* ------------------------------------------------------------------ *)
(* Metrics and scheduling                                              *)

let budget_respected () =
  let unit_ =
    Compile.compile_proc
      (Parser.parse_proc "def Loop() = Loop[] in Loop[]")
  in
  let area, entry = Link.of_unit unit_ in
  let vm = Machine.create area in
  let io = Machine.builtin_chan vm "io" (fun _ _ -> ()) in
  Machine.spawn_entry vm ~entry ~io;
  let executed, cost = Machine.run vm ~budget:500 in
  check Alcotest.bool "stopped near budget" true
    (executed >= 500 && executed < 600);
  check Alcotest.bool "cost positive" true (cost > 0);
  check Alcotest.bool "still runnable" true (Machine.runnable vm)

let thread_granularity () =
  let vm, _ =
    run_vm
      {| def Cell(self, v) =
           self?{ read(r) = r![v] | Cell[self, v], write(u) = Cell[self, u] }
         in new c (Cell[c, 0] | new r (c!read[r] | r?(v) = io!printi[v])) |}
  in
  let d = Stats.dist (Machine.stats vm) "thread_len" in
  check Alcotest.bool "threads are tens of instructions" true
    (Stats.Dist.count d > 0 && Stats.Dist.mean d < 100.0);
  let threads =
    Stats.Counter.value (Stats.counter (Machine.stats vm) "threads")
  in
  check Alcotest.bool "several threads ran" true (threads >= 4)

let tests =
  [ ("msg then obj", `Quick, msg_then_obj);
    ("obj then msg", `Quick, obj_then_msg);
    ("fifo messages", `Quick, fifo_messages);
    ("fifo objects", `Quick, fifo_objects);
    ("label dispatch", `Quick, label_dispatch);
    ("unmatched message parks", `Quick, unmatched_message_parks);
    ("closure captures env", `Quick, closure_captures_environment);
    ("class group mutual recursion", `Quick, class_env_mutual_recursion);
    ("nested defs", `Quick, nested_defs);
    ("expression ops", `Quick, expression_ops);
    ("if branches", `Quick, if_branches);
    ("string values", `Quick, string_values);
    ("vm dynamic errors", `Quick, vm_errors);
    ("export surfaces remote op", `Quick, export_surfaces);
    ("import surfaces remote op", `Quick, import_surfaces);
    ("remote message surfaces", `Quick, remote_msg_surfaces);
    ("fetch surfaces", `Quick, fetch_surfaces);
    ("run budget respected", `Quick, budget_respected);
    ("thread granularity", `Quick, thread_granularity) ]

(* Unit and property tests for the support substrate. *)

open Tyco_support

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Fqueue                                                              *)

let fqueue_fifo () =
  let q = List.fold_left (fun q x -> Fqueue.push x q) Fqueue.empty [ 1; 2; 3 ] in
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (Fqueue.to_list q);
  match Fqueue.pop q with
  | Some (1, q') ->
      check (Alcotest.list Alcotest.int) "tail" [ 2; 3 ] (Fqueue.to_list q')
  | _ -> Alcotest.fail "expected pop of 1"

let fqueue_empty () =
  check Alcotest.bool "is_empty" true (Fqueue.is_empty Fqueue.empty);
  check Alcotest.bool "pop" true (Fqueue.pop Fqueue.empty = None);
  check Alcotest.bool "peek" true (Fqueue.peek Fqueue.empty = None)

let fqueue_snapshot () =
  (* pushing onto a snapshot must not disturb the original *)
  let q = Fqueue.of_list [ 1; 2 ] in
  let q2 = Fqueue.push 3 q in
  check (Alcotest.list Alcotest.int) "orig" [ 1; 2 ] (Fqueue.to_list q);
  check (Alcotest.list Alcotest.int) "new" [ 1; 2; 3 ] (Fqueue.to_list q2)

let fqueue_model_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fqueue = list model" ~count:500
       QCheck2.Gen.(list (pair bool small_nat))
       (fun ops ->
         let q = ref Fqueue.empty and model = ref [] in
         List.for_all
           (fun (is_push, x) ->
             if is_push then begin
               q := Fqueue.push x !q;
               model := !model @ [ x ];
               true
             end
             else
               match (Fqueue.pop !q, !model) with
               | None, [] -> true
               | Some (v, q'), m :: rest ->
                   q := q';
                   model := rest;
                   v = m
               | _ -> false)
           ops
         && Fqueue.to_list !q = !model))

(* ------------------------------------------------------------------ *)
(* Dq                                                                  *)

let dq_ring_wrap () =
  let d = Dq.create ~capacity:2 () in
  for i = 1 to 5 do
    Dq.push_back d i
  done;
  check (Alcotest.list Alcotest.int) "grown" [ 1; 2; 3; 4; 5 ] (Dq.to_list d);
  check (Alcotest.option Alcotest.int) "front" (Some 1) (Dq.pop_front d);
  check (Alcotest.option Alcotest.int) "back" (Some 5) (Dq.pop_back d);
  Dq.push_front d 0;
  check (Alcotest.list Alcotest.int) "push_front" [ 0; 2; 3; 4 ] (Dq.to_list d)

let dq_clear () =
  let d = Dq.of_list [ 1; 2; 3 ] in
  Dq.clear d;
  check Alcotest.bool "empty" true (Dq.is_empty d);
  Dq.push_back d 7;
  check (Alcotest.list Alcotest.int) "reusable" [ 7 ] (Dq.to_list d)

let dq_model_test =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"dq = list deque model" ~count:500
       QCheck2.Gen.(list (pair (int_range 0 3) small_nat))
       (fun ops ->
         let d = Dq.create () and model = ref [] in
         List.for_all
           (fun (op, x) ->
             match op with
             | 0 ->
                 Dq.push_back d x;
                 model := !model @ [ x ];
                 true
             | 1 ->
                 Dq.push_front d x;
                 model := x :: !model;
                 true
             | 2 -> (
                 match (Dq.pop_front d, !model) with
                 | None, [] -> true
                 | Some v, m :: rest ->
                     model := rest;
                     v = m
                 | _ -> false)
             | _ -> (
                 match (Dq.pop_back d, List.rev !model) with
                 | None, [] -> true
                 | Some v, m :: rest ->
                     model := List.rev rest;
                     v = m
                 | _ -> false))
           ops
         && Dq.to_list d = !model && Dq.length d = List.length !model))

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

let wire_roundtrip_ints =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire zint roundtrip" ~count:1000 QCheck2.Gen.int
       (fun n ->
         let enc = Wire.encoder () in
         Wire.zint enc n;
         let dec = Wire.decoder (Wire.to_string enc) in
         Wire.read_zint dec = n && Wire.at_end dec))

let wire_roundtrip_varint =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire varint roundtrip" ~count:1000
       QCheck2.Gen.(map abs int)
       (fun n ->
         let enc = Wire.encoder () in
         Wire.varint enc n;
         Wire.read_varint (Wire.decoder (Wire.to_string enc)) = n))

let wire_roundtrip_string =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire string roundtrip" ~count:500
       QCheck2.Gen.string (fun s ->
         let enc = Wire.encoder () in
         Wire.string enc s;
         Wire.read_string (Wire.decoder (Wire.to_string enc)) = s))

let wire_roundtrip_float =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire float roundtrip" ~count:500
       QCheck2.Gen.float (fun f ->
         let enc = Wire.encoder () in
         Wire.float enc f;
         let f' = Wire.read_float (Wire.decoder (Wire.to_string enc)) in
         Int64.bits_of_float f = Int64.bits_of_float f'))

let wire_roundtrip_list =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"wire list+option+pair roundtrip" ~count:300
       QCheck2.Gen.(list (pair (option small_nat) bool))
       (fun xs ->
         let enc = Wire.encoder () in
         Wire.list enc
           (fun enc v -> Wire.pair enc (fun e o -> Wire.option e Wire.varint o) Wire.bool v)
           xs;
         let dec = Wire.decoder (Wire.to_string enc) in
         let xs' =
           Wire.read_list dec (fun d ->
               Wire.read_pair d
                 (fun d -> Wire.read_option d Wire.read_varint)
                 Wire.read_bool)
         in
         xs = xs'))

let wire_malformed () =
  let raises f =
    match f () with
    | exception Wire.Malformed _ -> true
    | _ -> false
  in
  check Alcotest.bool "truncated string" true
    (raises (fun () -> Wire.read_string (Wire.decoder "\x05ab")));
  check Alcotest.bool "truncated varint" true
    (raises (fun () -> Wire.read_varint (Wire.decoder "\x80")));
  check Alcotest.bool "bad bool" true
    (raises (fun () -> Wire.read_bool (Wire.decoder "\x07")));
  check Alcotest.bool "list length lies" true
    (raises (fun () -> Wire.read_list (Wire.decoder "\xff\x01") Wire.read_u8))

let wire_varint_negative () =
  check Alcotest.bool "negative rejected" true
    (match Wire.varint (Wire.encoder ()) (-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let prng_bounds =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"prng int within bounds" ~count:500
       QCheck2.Gen.(pair int (int_range 1 10_000))
       (fun (seed, bound) ->
         let g = Prng.create seed in
         let v = Prng.int g bound in
         v >= 0 && v < bound))

let prng_shuffle_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"shuffle is a permutation" ~count:300
       QCheck2.Gen.(pair int (small_list small_nat))
       (fun (seed, xs) ->
         let g = Prng.create seed in
         List.sort compare (Prng.shuffle g xs) = List.sort compare xs))

let prng_split_independent () =
  let g = Prng.create 3 in
  let h = Prng.split g in
  let a = Prng.int g 1000 and b = Prng.int h 1000 in
  (* the two streams should not track each other *)
  let diffs = ref (if a <> b then 1 else 0) in
  for _ = 1 to 50 do
    if Prng.int g 1000 <> Prng.int h 1000 then incr diffs
  done;
  check Alcotest.bool "streams diverge" true (!diffs > 10)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let stats_counters () =
  let s = Stats.create () in
  let c = Stats.counter s "x" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  check Alcotest.int "value" 5 (Stats.Counter.value c);
  check Alcotest.bool "idempotent name" true (Stats.counter s "x" == c);
  Stats.reset s;
  check Alcotest.int "reset" 0 (Stats.Counter.value c)

let stats_percentiles () =
  let s = Stats.create () in
  let d = Stats.dist s "lat" in
  for i = 1 to 100 do
    Stats.Dist.add d (float_of_int i)
  done;
  (* linear interpolation between closest ranks: p50 of 1..100 sits
     halfway between the 50th and 51st samples *)
  check (Alcotest.float 0.01) "p50" 50.5 (Stats.Dist.percentile d 0.5);
  check (Alcotest.float 0.01) "p95" 95.05 (Stats.Dist.percentile d 0.95);
  check (Alcotest.float 0.01) "p99" 99.01 (Stats.Dist.percentile d 0.99);
  check (Alcotest.float 0.01) "p999" 99.901 (Stats.Dist.percentile d 0.999);
  check (Alcotest.float 0.01) "p0 is min" 1.0 (Stats.Dist.percentile d 0.);
  check (Alcotest.float 0.01) "p100 is max" 100.0 (Stats.Dist.percentile d 1.);
  check (Alcotest.float 0.01) "mean" 50.5 (Stats.Dist.mean d);
  check (Alcotest.float 0.01) "min" 1.0 (Stats.Dist.min d);
  check (Alcotest.float 0.01) "max" 100.0 (Stats.Dist.max d)

let stats_absorb () =
  let s = Stats.create () in
  let a = Stats.dist s "a" and b = Stats.dist s "b" in
  for i = 1 to 50 do
    Stats.Dist.add a (float_of_int i)
  done;
  for i = 51 to 100 do
    Stats.Dist.add b (float_of_int i)
  done;
  Stats.Dist.absorb a b;
  check Alcotest.int "merged count" 100 (Stats.Dist.count a);
  check (Alcotest.float 0.01) "merged mean" 50.5 (Stats.Dist.mean a);
  check (Alcotest.float 0.01) "merged min" 1.0 (Stats.Dist.min a);
  check (Alcotest.float 0.01) "merged max" 100.0 (Stats.Dist.max a);
  check (Alcotest.float 0.01) "merged p50" 50.5 (Stats.Dist.percentile a 0.5);
  (* the absorbed side is unchanged *)
  check Alcotest.int "source count" 50 (Stats.Dist.count b);
  check (Alcotest.float 0.01) "source min" 51.0 (Stats.Dist.min b)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let metrics_registry () =
  let mx = Metrics.create ~label:"shard0" ~enabled:true () in
  let c = Metrics.counter mx "packets" in
  let g = Metrics.gauge mx "ring_occ" in
  let h = Metrics.histogram mx "lat_ns" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.set g 3;
  Metrics.set g 7;
  Metrics.set g 2;
  Metrics.observe_int h 100;
  Metrics.observe_int h 200;
  check Alcotest.int "counter" 5 (Metrics.counter_value c);
  check Alcotest.int "gauge last value" 2 (Metrics.gauge_value g);
  check Alcotest.int "gauge hiwater" 7 (Metrics.gauge_hiwater g);
  check Alcotest.int "histogram count" 2
    (Stats.Dist.count (Metrics.histogram_dist h));
  (* idempotent by name *)
  Metrics.incr (Metrics.counter mx "packets");
  check Alcotest.int "same counter by name" 6 (Metrics.value mx "packets");
  (* merge: counters sum, gauges sum with max'd hiwater, histos absorb *)
  let my = Metrics.create ~label:"shard1" ~enabled:true () in
  Metrics.add (Metrics.counter my "packets") 10;
  Metrics.set (Metrics.gauge my "ring_occ") 5;
  Metrics.observe_int (Metrics.histogram my "lat_ns") 300;
  let into = Metrics.create ~enabled:true () in
  Metrics.merge_into ~into mx;
  Metrics.merge_into ~into my;
  check Alcotest.int "merged counter" 16 (Metrics.value into "packets");
  let mg = Metrics.gauge into "ring_occ" in
  check Alcotest.int "merged gauge value" 7 (Metrics.gauge_value mg);
  check Alcotest.int "merged gauge hiwater" 7 (Metrics.gauge_hiwater mg);
  check Alcotest.int "merged histogram count" 3
    (Stats.Dist.count (Metrics.histogram_dist (Metrics.histogram into "lat_ns")));
  (* sources unchanged by the merge *)
  check Alcotest.int "source counter unchanged" 6 (Metrics.value mx "packets");
  (* exposition *)
  let prom = Metrics.to_prom into in
  let has hay sub =
    let nh = String.length hay and nn = String.length sub in
    let rec go i = i + nn <= nh && (String.sub hay i nn = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "prom counter" true (has prom "tyco_packets 16");
  check Alcotest.bool "prom gauge hiwater" true
    (has prom "tyco_ring_occ_hiwater 7");
  check Alcotest.bool "prom quantile" true (has prom "quantile=\"0.999\"");
  let json = Metrics.to_json ~extra:[ ("kind", "\"final\"") ] into in
  check Alcotest.bool "json extra leads" true
    (String.length json > 16 && String.sub json 0 16 = "{\"kind\":\"final\",");
  check Alcotest.bool "json counter" true (has json "\"packets\":16");
  check Alcotest.bool "json percentile" true (has json "\"p999\":")

let metrics_disabled_dummies () =
  check Alcotest.bool "disabled" false (Metrics.enabled Metrics.disabled);
  let c = Metrics.counter Metrics.disabled "x" in
  Metrics.incr c;
  Metrics.add c 100;
  check Alcotest.int "dummy counter never moves" 0 (Metrics.counter_value c);
  let g = Metrics.gauge Metrics.disabled "y" in
  Metrics.set g 9;
  check Alcotest.int "dummy gauge never moves" 0 (Metrics.gauge_value g);
  let h = Metrics.histogram Metrics.disabled "z" in
  Metrics.observe h 1.0;
  check Alcotest.int "dummy histogram never fills" 0
    (Stats.Dist.count (Metrics.histogram_dist h));
  check Alcotest.bool "nothing registered" true
    (Metrics.counters Metrics.disabled = []
    && Metrics.gauges Metrics.disabled = []
    && Metrics.histograms Metrics.disabled = []);
  (* merging into/from the disabled registry is a no-op *)
  let live = Metrics.create ~enabled:true () in
  Metrics.add (Metrics.counter live "n") 3;
  Metrics.merge_into ~into:live Metrics.disabled;
  Metrics.merge_into ~into:Metrics.disabled live;
  check Alcotest.int "live unchanged" 3 (Metrics.value live "n");
  check Alcotest.int "disabled unchanged" 0 (Metrics.value Metrics.disabled "n")

let stats_empty_percentile () =
  let s = Stats.create () in
  let d = Stats.dist s "empty" in
  check Alcotest.bool "raises" true
    (match Stats.Dist.percentile d 0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "summary_opt total" true
    (Stats.Dist.summary_opt d = None)

(* Past the reservoir cap: n/sum/min/max stay exact (streamed), the
   retained sample set is bounded, and percentiles remain sane
   estimates. *)
let stats_reservoir () =
  let s = Stats.create () in
  let d = Stats.dist s "big" in
  let n = 100_000 in
  for i = 1 to n do
    Stats.Dist.add d (float_of_int i)
  done;
  check Alcotest.int "exact count" n (Stats.Dist.count d);
  check (Alcotest.float 0.01) "exact mean"
    (float_of_int (n + 1) /. 2.)
    (Stats.Dist.mean d);
  check (Alcotest.float 0.01) "exact min" 1.0 (Stats.Dist.min d);
  check (Alcotest.float 0.01) "exact max" (float_of_int n) (Stats.Dist.max d);
  check Alcotest.bool "retention bounded" true
    (Array.length (Stats.Dist.samples d) <= 8192);
  let p50 = Stats.Dist.percentile d 0.5 in
  check Alcotest.bool "p50 estimated from reservoir" true
    (p50 > float_of_int n *. 0.4 && p50 < float_of_int n *. 0.6)

let stats_reservoir_deterministic () =
  let fill () =
    let s = Stats.create () in
    let d = Stats.dist s "big" in
    for i = 1 to 50_000 do
      Stats.Dist.add d (float_of_int i)
    done;
    Stats.Dist.samples d
  in
  check Alcotest.bool "same retained samples across runs" true
    (fill () = fill ())

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let heap_sorted_drain =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"heap drains sorted" ~count:300
       QCheck2.Gen.(list small_nat)
       (fun keys ->
         let h = Heap.create () in
         List.iter (fun k -> Heap.push h k k) keys;
         let rec drain acc =
           match Heap.pop h with
           | None -> List.rev acc
           | Some (k, _) -> drain (k :: acc)
         in
         drain [] = List.sort compare keys))

let heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 5 v) [ "a"; "b"; "c" ];
  Heap.push h 1 "first";
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  check (Alcotest.list Alcotest.string) "stable ties"
    [ "first"; "a"; "b"; "c" ] order

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let vec_basic () =
  let v = Vec.create () in
  check Alcotest.int "idx0" 0 (Vec.push v "a");
  check Alcotest.int "idx1" 1 (Vec.push v "b");
  check Alcotest.string "get" "b" (Vec.get v 1);
  Vec.set v 0 "z";
  check (Alcotest.list Alcotest.string) "list" [ "z"; "b" ] (Vec.to_list v);
  check Alcotest.bool "oob" true
    (match Vec.get v 5 with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Ids / Netref                                                        *)

module SiteId = Ids.Make (struct let name = "site" end)

let ids_fresh () =
  let g = SiteId.generator () in
  let a = SiteId.fresh g and b = SiteId.fresh g in
  check Alcotest.bool "distinct" false (SiteId.equal a b);
  check Alcotest.int "roundtrip" (SiteId.to_int a)
    (SiteId.to_int (SiteId.of_int (SiteId.to_int a)))

let netref_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"netref wire roundtrip" ~count:300
       QCheck2.Gen.(triple small_nat small_nat bool)
       (fun (h, s, is_class) ->
         let r =
           Netref.make
             ~kind:(if is_class then Netref.Class else Netref.Channel)
             ~heap_id:h ~site_id:s ~ip:(h + s)
         in
         let enc = Wire.encoder () in
         Netref.encode enc r;
         Netref.equal r (Netref.decode (Wire.decoder (Wire.to_string enc)))))

let tests =
  [ ("fqueue fifo", `Quick, fqueue_fifo);
    ("fqueue empty", `Quick, fqueue_empty);
    ("fqueue snapshot", `Quick, fqueue_snapshot);
    fqueue_model_test;
    ("dq ring wrap+grow", `Quick, dq_ring_wrap);
    ("dq clear", `Quick, dq_clear);
    dq_model_test;
    wire_roundtrip_ints;
    wire_roundtrip_varint;
    wire_roundtrip_string;
    wire_roundtrip_float;
    wire_roundtrip_list;
    ("wire malformed inputs", `Quick, wire_malformed);
    ("wire varint negative", `Quick, wire_varint_negative);
    ("prng deterministic", `Quick, prng_deterministic);
    prng_bounds;
    prng_shuffle_permutation;
    ("prng split independence", `Quick, prng_split_independent);
    ("stats counters", `Quick, stats_counters);
    ("stats percentiles", `Quick, stats_percentiles);
    ("stats absorb", `Quick, stats_absorb);
    ("metrics registry", `Quick, metrics_registry);
    ("metrics disabled dummies", `Quick, metrics_disabled_dummies);
    ("stats empty percentile", `Quick, stats_empty_percentile);
    ("stats reservoir bounded+exact", `Quick, stats_reservoir);
    ("stats reservoir deterministic", `Quick, stats_reservoir_deterministic);
    heap_sorted_drain;
    ("heap fifo ties", `Quick, heap_fifo_ties);
    ("vec basic", `Quick, vec_basic);
    ("ids fresh/roundtrip", `Quick, ids_fresh);
    netref_roundtrip ]

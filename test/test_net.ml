(* Network substrate tests: latency models, packets, export tables,
   name service, and the discrete-event engine. *)

open Tyco_net
module Netref = Tyco_support.Netref
module Wire = Tyco_support.Wire

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Latency models                                                      *)

let latency_hierarchy () =
  let t m = Latency.transfer_ns m ~bytes:64 in
  check Alcotest.bool "shm < myrinet" true
    (t Latency.shared_memory < t Latency.myrinet);
  check Alcotest.bool "myrinet < ethernet" true
    (t Latency.myrinet < t Latency.fast_ethernet)

let latency_bandwidth_matters () =
  let small = Latency.transfer_ns Latency.fast_ethernet ~bytes:10 in
  let large = Latency.transfer_ns Latency.fast_ethernet ~bytes:100_000 in
  (* 100 KB at 100 Mb/s is ~8 ms; far beyond the base latency *)
  check Alcotest.bool "size dominates for large payloads" true
    (large > 50 * small)

let latency_custom () =
  let m =
    Latency.custom ~name:"test" ~latency_ns:100 ~bytes_per_ns:1.0
      ~per_packet_ns:10
  in
  check Alcotest.int "formula" (100 + 10 + 64) (Latency.transfer_ns m ~bytes:64)

(* ------------------------------------------------------------------ *)
(* Packets                                                             *)

let gen_netref =
  QCheck2.Gen.(
    map
      (fun (h, s, i, k) ->
        Netref.make
          ~kind:(if k then Netref.Channel else Netref.Class)
          ~heap_id:h ~site_id:s ~ip:i)
      (quad small_nat small_nat small_nat bool))

let gen_wvalue =
  QCheck2.Gen.(
    oneof
      [ map (fun n -> Packet.Wint n) int;
        map (fun b -> Packet.Wbool b) bool;
        map (fun s -> Packet.Wstr s) (small_string ~gen:printable);
        map (fun r -> Packet.Wref r) gen_netref ])

let gen_packet =
  QCheck2.Gen.(
    oneof
      [ map3
          (fun dst label args -> Packet.Pmsg { dst; label; args })
          gen_netref (small_string ~gen:(char_range 'a' 'z'))
          (list_size (int_range 0 4) gen_wvalue);
        map3
          (fun dst code env ->
            Packet.Pobj
              { dst; code; code_key = (1, 2, 3); mtable = 0; env })
          gen_netref (small_string ~gen:printable)
          (list_size (int_range 0 3) gen_wvalue);
        map
          (fun cls ->
            Packet.Pfetch_req
              { cls; req_id = 7; requester_site = 1; requester_ip = 2 })
          gen_netref;
        map2
          (fun code env_captures ->
            Packet.Pfetch_rep
              { req_id = 3; dst_site = 1; dst_ip = 0; code;
                code_key = (0, 0, 0); group = 0; index = 1; env_captures })
          (small_string ~gen:printable)
          (list_size (int_range 0 3) gen_wvalue);
        map
          (fun nref ->
            Packet.Pns_register { site_name = "a"; id_name = "x"; nref; rtti = "" })
          gen_netref;
        return
          (Packet.Pns_lookup
             { site_name = "a"; id_name = "x"; want_class = true; req_id = 1;
               requester_site = 0; requester_ip = 0 });
        map
          (fun r ->
            Packet.Pns_reply
              { req_id = 9; dst_site = 2; dst_ip = 1; result = r; rtti = "d" })
          (option gen_netref);
        map2
          (fun chans classes ->
            Packet.Prelease { origin_site = 3; origin_ip = 1; chans; classes })
          (list_size (int_range 0 6) (int_range 0 10000))
          (list_size (int_range 0 4) (int_range 0 10000)) ])

let packet_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"packet wire roundtrip" ~count:500 gen_packet
       (fun p ->
         let s = Packet.to_string p in
         Packet.to_string (Packet.of_string s) = s))

let packet_size_is_wire_size =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"byte_size = serialized length" ~count:200
       gen_packet (fun p ->
         Packet.byte_size p = String.length (Packet.to_string p)))

(* Deterministic companion to the property above: one sample of every
   packet and frame constructor, so a size-arithmetic bug in a rarely
   generated branch fails by name rather than by shrunk counterexample.
   [byte_size]/[frame_byte_size] are computed arithmetically (no
   encode-to-measure) and must agree with the encoder exactly. *)
let packet_size_every_constructor () =
  let r = Netref.make ~kind:Netref.Channel ~heap_id:300 ~site_id:2 ~ip:1 in
  let cr = Netref.make ~kind:Netref.Class ~heap_id:0 ~site_id:129 ~ip:3 in
  let args =
    [ Packet.Wint (-5); Packet.Wbool true; Packet.Wstr "payload";
      Packet.Wref r; Packet.Wref cr; Packet.Wint max_int ]
  in
  let samples =
    [ Packet.Pmsg { dst = r; label = "bump"; args };
      Packet.Pmsg { dst = r; label = ""; args = [] };
      Packet.Pobj
        { dst = r; code = String.make 200 '\x7f'; code_key = (1, 2, 300);
          mtable = 129; env = args };
      Packet.Pfetch_req
        { cls = cr; req_id = 1000; requester_site = 0; requester_ip = 200 };
      Packet.Pfetch_rep
        { req_id = 300; dst_site = 1; dst_ip = 0; code = "bytecode";
          code_key = (0, 0, 0); group = 128; index = 1;
          env_captures = args };
      Packet.Pns_register
        { site_name = "server"; id_name = "p"; nref = cr; rtti = "\x01\x02" };
      Packet.Pns_register
        { site_name = ""; id_name = ""; nref = r; rtti = "" };
      Packet.Pns_lookup
        { site_name = "server"; id_name = "p"; want_class = false;
          req_id = 129; requester_site = 3; requester_ip = 1 };
      Packet.Pns_reply
        { req_id = 9; dst_site = 2; dst_ip = 1; result = Some cr; rtti = "d" };
      Packet.Pns_reply
        { req_id = 129; dst_site = 0; dst_ip = 0; result = None; rtti = "" };
      Packet.Prelease
        { origin_site = 2; origin_ip = 1; chans = [ 0; 129; 1_048_577 ];
          classes = [ 3 ] };
      Packet.Prelease
        { origin_site = 0; origin_ip = 0; chans = []; classes = [] } ]
  in
  List.iter
    (fun p ->
      check Alcotest.int
        (Format.asprintf "byte_size %a" Packet.pp p)
        (String.length (Packet.to_string p))
        (Packet.byte_size p))
    samples;
  List.iter
    (fun f ->
      check Alcotest.int
        (Format.asprintf "frame_byte_size %a" Packet.pp_frame f)
        (String.length (Packet.frame_to_string f))
        (Packet.frame_byte_size f))
    [ Packet.Fdata { src_ip = 129; seq = 1000; payload = List.hd samples };
      Packet.Fack { src_ip = 0; seq = 130 };
      Packet.Fbatch
        { src_ip = 2; base_seq = 129; ack_floor = 1000; payloads = samples };
      Packet.Fbatch
        { src_ip = 0; base_seq = 0; ack_floor = 0;
          payloads = [ List.hd samples ] };
      Packet.Fcum_ack { src_ip = 3; ack_floor = 12345 } ]

(* [batch_byte_size] is the no-materialize form the simulated fabric
   charges with; it must agree with building the frame and measuring. *)
let batch_size_no_materialize () =
  let r = Netref.make ~kind:Netref.Channel ~heap_id:1 ~site_id:0 ~ip:2 in
  let payloads =
    List.init 5 (fun i ->
        Packet.Pmsg
          { dst = r; label = "m"; args = [ Packet.Wint (i * 1000) ] })
  in
  let payload_bytes =
    List.fold_left (fun a p -> a + Packet.byte_size p) 0 payloads
  in
  let f =
    Packet.Fbatch { src_ip = 7; base_seq = 200; ack_floor = 130; payloads }
  in
  check Alcotest.int "batch_byte_size = frame_byte_size"
    (Packet.frame_byte_size f)
    (Packet.batch_byte_size ~src_ip:7 ~base_seq:200 ~ack_floor:130
       ~count:(List.length payloads) ~payload_bytes);
  check Alcotest.int "and = encoder length"
    (String.length (Packet.frame_to_string f))
    (Packet.batch_byte_size ~src_ip:7 ~base_seq:200 ~ack_floor:130
       ~count:(List.length payloads) ~payload_bytes)

(* The version byte after the batch tag: a decoder must reject a layout
   revision it does not know rather than misparse it. *)
let batch_version_rejected () =
  let f =
    Packet.Fbatch { src_ip = 1; base_seq = 0; ack_floor = 0; payloads = [] }
  in
  let s = Packet.frame_to_string f in
  (* byte 0 is the tag, byte 1 the version *)
  check Alcotest.int "version byte" Packet.batch_version
    (Char.code s.[1]);
  let bumped = Bytes.of_string s in
  Bytes.set bumped 1 (Char.chr (Packet.batch_version + 1));
  check Alcotest.bool "future version rejected" true
    (match Packet.frame_of_string (Bytes.to_string bumped) with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false)

(* Same scheme at the packet layer: [Prelease] carries a version byte
   after its tag. *)
let prelease_version_rejected () =
  let p =
    Packet.Prelease { origin_site = 1; origin_ip = 0; chans = [ 2 ]; classes = [] }
  in
  let s = Packet.to_string p in
  check Alcotest.int "version byte" Packet.prelease_version (Char.code s.[1]);
  check Alcotest.bool "roundtrip" true (Packet.of_string s = p);
  let bumped = Bytes.of_string s in
  Bytes.set bumped 1 (Char.chr (Packet.prelease_version + 1));
  check Alcotest.bool "future version rejected" true
    (match Packet.of_string (Bytes.to_string bumped) with
    | exception Tyco_support.Wire.Malformed _ -> true
    | _ -> false);
  check Alcotest.int "routes to exporter" 6
    (Packet.dst_ip
       (Packet.Prelease { origin_site = 4; origin_ip = 6; chans = []; classes = [] })
       ~ns_ip:0)

let packet_dst_routing () =
  let r = Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:3 ~ip:7 in
  check Alcotest.int "msg routes to owner ip" 7
    (Packet.dst_ip (Packet.Pmsg { dst = r; label = "l"; args = [] }) ~ns_ip:0);
  check Alcotest.int "ns packets route to ns" 5
    (Packet.dst_ip
       (Packet.Pns_register { site_name = "a"; id_name = "x"; nref = r; rtti = "" })
       ~ns_ip:5)

let packet_malformed () =
  check Alcotest.bool "garbage" true
    (match Packet.of_string "\x63zz" with
    | exception Wire.Malformed _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Export table                                                        *)

let export_table_stable () =
  let t = Export_table.create () in
  let a = Export_table.export t ~uid:10 "chan-a" in
  let b = Export_table.export t ~uid:11 "chan-b" in
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.int "re-export reuses" a (Export_table.export t ~uid:10 "chan-a");
  check (Alcotest.option Alcotest.string) "resolve" (Some "chan-b")
    (Export_table.resolve t b);
  check (Alcotest.option Alcotest.string) "unknown" None
    (Export_table.resolve t 99);
  check Alcotest.int "live" 2 (Export_table.live t);
  check Alcotest.int "allocated" 2 (Export_table.allocated t)

(* Removal retires the identifier; a reused slot carries a fresh
   generation so a stale reference can never alias the new entry. *)
let export_table_reclaim () =
  let t = Export_table.create () in
  let a = Export_table.export t ~uid:10 "chan-a" in
  let b = Export_table.export t ~uid:11 "chan-b" in
  check Alcotest.bool "remove live" true (Export_table.remove t a);
  check Alcotest.bool "remove again" false (Export_table.remove t a);
  check (Alcotest.option Alcotest.string) "stale resolves to None" None
    (Export_table.resolve t a);
  check Alcotest.bool "stale was allocated" true (Export_table.was_allocated t a);
  check Alcotest.bool "never-issued was not" false
    (Export_table.was_allocated t 99);
  check Alcotest.int "live after remove" 1 (Export_table.live t);
  check Alcotest.int "reclaimed" 1 (Export_table.reclaimed t);
  (* slot reuse: the freed slot comes back under a new generation *)
  let c = Export_table.export t ~uid:12 "chan-c" in
  check Alcotest.bool "id differs from the stale one" true (c <> a);
  check Alcotest.bool "slot reused" true
    (c land 0xFFFFF = a land 0xFFFFF);
  check (Alcotest.option Alcotest.string) "new entry resolves" (Some "chan-c")
    (Export_table.resolve t c);
  check (Alcotest.option Alcotest.string) "stale still None" None
    (Export_table.resolve t a);
  check Alcotest.int "allocated = live + reclaimed"
    (Export_table.live t + Export_table.reclaimed t)
    (Export_table.allocated t);
  check Alcotest.bool "uid freed too" true
    (Export_table.export t ~uid:10 "chan-a2" <> a);
  ignore b

(* ------------------------------------------------------------------ *)
(* Name service                                                        *)

let ns_register_lookup () =
  let ns = Nameservice.create () in
  let r = Netref.make ~kind:Netref.Channel ~heap_id:4 ~site_id:0 ~ip:1 in
  let released = Nameservice.register_id ns ~site:"a" ~name:"p" r in
  check Alcotest.int "no waiters yet" 0 (List.length released);
  let w = { Nameservice.w_req_id = 1; w_site = 2; w_ip = 3 } in
  match Nameservice.lookup_id ns ~site:"a" ~name:"p" w with
  | Some (r', _) -> check Alcotest.bool "found" true (Netref.equal r r')
  | None -> Alcotest.fail "should resolve immediately"

let ns_parks_and_releases () =
  let ns = Nameservice.create () in
  let w1 = { Nameservice.w_req_id = 1; w_site = 2; w_ip = 3 } in
  let w2 = { Nameservice.w_req_id = 2; w_site = 4; w_ip = 5 } in
  check Alcotest.bool "parked" true
    (Nameservice.lookup_id ns ~site:"a" ~name:"p" w1 = None);
  check Alcotest.bool "parked again" true
    (Nameservice.lookup_id ns ~site:"a" ~name:"p" w2 = None);
  check Alcotest.int "pending" 2 (Nameservice.pending ns);
  let r = Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:0 ~ip:0 in
  let released = Nameservice.register_id ns ~site:"a" ~name:"p" r in
  check Alcotest.int "both released in order" 2 (List.length released);
  check Alcotest.int "fifo" 1 (List.hd released).Nameservice.w_req_id;
  check Alcotest.int "drained" 0 (Nameservice.pending ns)

(* ------------------------------------------------------------------ *)
(* Simnet                                                              *)

let simnet_event_order () =
  let sim = Simnet.create ~seed:1 () in
  let log = ref [] in
  Simnet.schedule sim ~delay:30 (fun () -> log := 30 :: !log);
  Simnet.schedule sim ~delay:10 (fun () -> log := 10 :: !log);
  Simnet.schedule sim ~delay:20 (fun () -> log := 20 :: !log);
  ignore (Simnet.run sim ());
  check (Alcotest.list Alcotest.int) "time order" [ 10; 20; 30 ]
    (List.rev !log);
  check Alcotest.int "clock" 30 (Simnet.now sim)

let simnet_fifo_ties () =
  let sim = Simnet.create ~seed:1 () in
  let log = ref [] in
  for i = 1 to 5 do
    Simnet.schedule sim ~delay:100 (fun () -> log := i :: !log)
  done;
  ignore (Simnet.run sim ());
  check (Alcotest.list Alcotest.int) "insertion order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let simnet_cascading () =
  let sim = Simnet.create ~seed:1 () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 10 then Simnet.schedule sim ~delay:5 tick
  in
  Simnet.schedule sim ~delay:5 tick;
  let events = Simnet.run sim () in
  check Alcotest.int "events" 10 events;
  check Alcotest.int "clock" 50 (Simnet.now sim)

let simnet_run_guard () =
  let sim = Simnet.create ~seed:1 () in
  let rec forever () = Simnet.schedule sim ~delay:1 forever in
  Simnet.schedule sim ~delay:1 forever;
  check Alcotest.bool "livelock detected" true
    (match Simnet.run sim ~max_events:1000 () with
    | exception Failure _ -> true
    | _ -> false)

let simnet_topology_links () =
  let sim = Simnet.create ~seed:1 () in
  let same = Simnet.packet_delay sim ~src_ip:1 ~dst_ip:1 ~bytes:64 in
  let cross = Simnet.packet_delay sim ~src_ip:1 ~dst_ip:2 ~bytes:64 in
  check Alcotest.bool "intra < inter" true (same < cross);
  let topo =
    { Simnet.default_topology with Simnet.external_ips = [ 9 ] }
  in
  let sim = Simnet.create ~topology:topo ~seed:1 () in
  let ext = Simnet.packet_delay sim ~src_ip:1 ~dst_ip:9 ~bytes:64 in
  check Alcotest.bool "external slowest" true (ext > cross)

let simnet_negative_delay () =
  let sim = Simnet.create ~seed:1 () in
  check Alcotest.bool "rejected" true
    (match Simnet.schedule sim ~delay:(-5) (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let simnet_run_budget_boundary () =
  (* a queue that drains in exactly [max_events] events completes; one
     more pending event over the budget raises *)
  let chain n =
    let sim = Simnet.create ~seed:1 () in
    let left = ref n in
    let rec tick () =
      decr left;
      if !left > 0 then Simnet.schedule sim ~delay:1 tick
    in
    Simnet.schedule sim ~delay:1 tick;
    sim
  in
  check Alcotest.int "exact budget drains" 10
    (Simnet.run (chain 10) ~max_events:10 ());
  check Alcotest.bool "budget + 1 raises" true
    (match Simnet.run (chain 11) ~max_events:10 () with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fault model                                                         *)

let fault_free_identity () =
  let sim = Simnet.create ~seed:1 () in
  let v = Simnet.fault_verdict sim ~src_ip:1 ~dst_ip:2 ~base_delay:500 in
  check (Alcotest.list Alcotest.int) "one copy, base delay" [ 500 ]
    v.Simnet.v_delays;
  check Alcotest.int "nothing dropped" 0 v.Simnet.v_dropped

let fault_drop_everything () =
  let fm = { Simnet.no_faults with Simnet.drop = 1.0 } in
  let sim = Simnet.create ~faults:fm ~seed:1 () in
  let v = Simnet.fault_verdict sim ~src_ip:1 ~dst_ip:2 ~base_delay:500 in
  check (Alcotest.list Alcotest.int) "no copies" [] v.Simnet.v_delays;
  check Alcotest.bool "drop counted" true (v.Simnet.v_dropped >= 1)

let fault_duplicate_everything () =
  let fm = { Simnet.no_faults with Simnet.duplicate = 1.0 } in
  let sim = Simnet.create ~faults:fm ~seed:1 () in
  let v = Simnet.fault_verdict sim ~src_ip:1 ~dst_ip:2 ~base_delay:500 in
  check Alcotest.int "two copies" 2 (List.length v.Simnet.v_delays);
  check Alcotest.bool "flagged" true v.Simnet.v_duplicated

let fault_intra_node_exempt () =
  (* same-ip traffic is shared memory: never faulted even at drop 1 *)
  let fm = { Simnet.no_faults with Simnet.drop = 1.0; duplicate = 1.0 } in
  let sim = Simnet.create ~faults:fm ~seed:1 () in
  let v = Simnet.fault_verdict sim ~src_ip:3 ~dst_ip:3 ~base_delay:42 in
  check (Alcotest.list Alcotest.int) "delivered untouched" [ 42 ]
    v.Simnet.v_delays

let fault_partition_window () =
  let fm =
    { Simnet.no_faults with
      Simnet.partitions =
        [ { Simnet.p_a = 1; p_b = 2; p_from = 0; p_until = 100 } ] }
  in
  let sim = Simnet.create ~faults:fm ~seed:1 () in
  check Alcotest.bool "cut at t=0" true
    (Simnet.partitioned sim ~src_ip:1 ~dst_ip:2);
  check Alcotest.bool "symmetric" true
    (Simnet.partitioned sim ~src_ip:2 ~dst_ip:1);
  check Alcotest.bool "other links untouched" false
    (Simnet.partitioned sim ~src_ip:1 ~dst_ip:3);
  let v = Simnet.fault_verdict sim ~src_ip:1 ~dst_ip:2 ~base_delay:10 in
  check (Alcotest.list Alcotest.int) "dropped while cut" [] v.Simnet.v_delays;
  let healed = ref true in
  Simnet.schedule sim ~delay:150 (fun () ->
      healed := not (Simnet.partitioned sim ~src_ip:1 ~dst_ip:2));
  ignore (Simnet.run sim ());
  check Alcotest.bool "healed after p_until" true !healed

let fault_determinism () =
  let fm =
    { Simnet.drop = 0.3; duplicate = 0.2; reorder = 0.5; reorder_ns = 1_000;
      partitions = [] }
  in
  let roll seed =
    let sim = Simnet.create ~faults:fm ~seed () in
    List.init 50 (fun _ ->
        (Simnet.fault_verdict sim ~src_ip:0 ~dst_ip:1 ~base_delay:100)
          .Simnet.v_delays)
  in
  check Alcotest.bool "same seed, same verdicts" true (roll 7 = roll 7);
  check Alcotest.bool "different seed differs" true (roll 7 <> roll 8)

(* ------------------------------------------------------------------ *)
(* Transport frames                                                    *)

let gen_frame =
  QCheck2.Gen.(
    oneof
      [ map3
          (fun src_ip seq payload ->
            Packet.Fdata { src_ip; seq; payload })
          small_nat small_nat gen_packet;
        map2 (fun src_ip seq -> Packet.Fack { src_ip; seq }) small_nat
          small_nat;
        map3
          (fun src_ip (base_seq, ack_floor) payloads ->
            Packet.Fbatch { src_ip; base_seq; ack_floor; payloads })
          small_nat
          (pair small_nat small_nat)
          (list_size (int_range 0 6) gen_packet);
        map2
          (fun src_ip ack_floor -> Packet.Fcum_ack { src_ip; ack_floor })
          small_nat small_nat ])

let frame_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"frame wire roundtrip" ~count:300 gen_frame
       (fun f ->
         let s = Packet.frame_to_string f in
         Packet.frame_to_string (Packet.frame_of_string s) = s
         && Packet.frame_byte_size f = String.length s))

(* ------------------------------------------------------------------ *)
(* Name service: parked-waiter ordering across interleaved keys        *)

let ns_waiter_ordering () =
  let ns = Nameservice.create () in
  let w id = { Nameservice.w_req_id = id; w_site = id; w_ip = 0 } in
  (* interleave parks on two distinct keys *)
  ignore (Nameservice.lookup_id ns ~site:"a" ~name:"p" (w 1));
  ignore (Nameservice.lookup_id ns ~site:"a" ~name:"q" (w 2));
  ignore (Nameservice.lookup_id ns ~site:"a" ~name:"p" (w 3));
  ignore (Nameservice.lookup_id ns ~site:"a" ~name:"q" (w 4));
  ignore (Nameservice.lookup_id ns ~site:"a" ~name:"p" (w 5));
  check Alcotest.int "all parked" 5 (Nameservice.pending ns);
  let r = Netref.make ~kind:Netref.Channel ~heap_id:0 ~site_id:0 ~ip:0 in
  let released = Nameservice.register_id ns ~site:"a" ~name:"p" r in
  check (Alcotest.list Alcotest.int) "p's waiters, FIFO" [ 1; 3; 5 ]
    (List.map (fun x -> x.Nameservice.w_req_id) released);
  check Alcotest.int "q still parked" 2 (Nameservice.pending ns);
  let released = Nameservice.register_id ns ~site:"a" ~name:"q" r in
  check (Alcotest.list Alcotest.int) "q's waiters, FIFO" [ 2; 4 ]
    (List.map (fun x -> x.Nameservice.w_req_id) released);
  check Alcotest.int "drained" 0 (Nameservice.pending ns);
  check Alcotest.int "re-registration releases nobody" 0
    (List.length (Nameservice.register_id ns ~site:"a" ~name:"p" r))

let tests =
  [ ("latency hierarchy", `Quick, latency_hierarchy);
    ("latency bandwidth", `Quick, latency_bandwidth_matters);
    ("latency custom formula", `Quick, latency_custom);
    packet_roundtrip;
    packet_size_is_wire_size;
    ("byte_size per constructor", `Quick, packet_size_every_constructor);
    ("batch size without materializing", `Quick, batch_size_no_materialize);
    ("batch version byte rejected", `Quick, batch_version_rejected);
    ("prelease version byte rejected", `Quick, prelease_version_rejected);
    ("packet routing", `Quick, packet_dst_routing);
    ("packet malformed", `Quick, packet_malformed);
    ("export table", `Quick, export_table_stable);
    ("export table reclamation", `Quick, export_table_reclaim);
    ("nameservice register/lookup", `Quick, ns_register_lookup);
    ("nameservice parks waiters", `Quick, ns_parks_and_releases);
    ("simnet event order", `Quick, simnet_event_order);
    ("simnet fifo ties", `Quick, simnet_fifo_ties);
    ("simnet cascading events", `Quick, simnet_cascading);
    ("simnet livelock guard", `Quick, simnet_run_guard);
    ("simnet budget boundary", `Quick, simnet_run_budget_boundary);
    ("simnet topology links", `Quick, simnet_topology_links);
    ("simnet negative delay", `Quick, simnet_negative_delay);
    ("faults: clean link identity", `Quick, fault_free_identity);
    ("faults: drop all", `Quick, fault_drop_everything);
    ("faults: duplicate all", `Quick, fault_duplicate_everything);
    ("faults: intra-node exempt", `Quick, fault_intra_node_exempt);
    ("faults: partition window", `Quick, fault_partition_window);
    ("faults: deterministic", `Quick, fault_determinism);
    frame_roundtrip;
    ("nameservice waiter ordering", `Quick, ns_waiter_ordering) ]

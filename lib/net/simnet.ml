module Heap = Tyco_support.Heap
module Prng = Tyco_support.Prng

type topology = {
  intra_node : Latency.t;
  cluster : Latency.t;
  external_ : Latency.t;
  external_ips : int list;
}

let default_topology =
  { intra_node = Latency.shared_memory;
    cluster = Latency.myrinet;
    external_ = Latency.fast_ethernet;
    external_ips = [] }

type partition = { p_a : int; p_b : int; p_from : int; p_until : int }

type fault_model = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_ns : int;
  partitions : partition list;
}

let no_faults =
  { drop = 0.; duplicate = 0.; reorder = 0.; reorder_ns = 0; partitions = [] }

type t = {
  mutable clock : int;
  queue : (unit -> unit) Heap.t;
  rng : Prng.t;
  topo : topology;
  faults : fault_model;
  mutable processed : int;
}

let create ?(topology = default_topology) ?(faults = no_faults) ~seed () =
  { clock = 0; queue = Heap.create (); rng = Prng.create seed;
    topo = topology; faults; processed = 0 }

let now t = t.clock
let prng t = t.rng
let topology t = t.topo
let faults t = t.faults

let schedule t ~delay action =
  if delay < 0 then invalid_arg "Simnet.schedule: negative delay";
  Heap.push t.queue (t.clock + delay) action

let link t ~src_ip ~dst_ip =
  if src_ip = dst_ip then t.topo.intra_node
  else if List.mem src_ip t.topo.external_ips || List.mem dst_ip t.topo.external_ips
  then t.topo.external_
  else t.topo.cluster

let packet_delay t ~src_ip ~dst_ip ~bytes =
  Latency.transfer_ns (link t ~src_ip ~dst_ip) ~bytes

let partitioned t ~src_ip ~dst_ip =
  List.exists
    (fun p ->
      ((p.p_a = src_ip && p.p_b = dst_ip) || (p.p_a = dst_ip && p.p_b = src_ip))
      && p.p_from <= t.clock
      && t.clock < p.p_until)
    t.faults.partitions

type verdict = {
  v_delays : int list;
  v_dropped : int;
  v_duplicated : bool;
  v_reordered : int;
}

(* Whether a transmission on this link can be faulted at all.  The
   transport hot path uses this to skip the verdict record (and its
   delay list) entirely on clean links — the common case — without
   changing PRNG consumption: [fault_verdict] never consults the PRNG
   in exactly these situations. *)
let faulted_link t ~src_ip ~dst_ip =
  src_ip <> dst_ip && t.faults != no_faults

(* Intra-node traffic (shared memory) is exempt: the fault model
   describes the switch fabric, not a node's own backplane.  With
   [no_faults] the PRNG is never consulted, so fault-free runs keep
   the exact event interleavings of older seeds. *)
let fault_verdict t ~src_ip ~dst_ip ~base_delay =
  let fm = t.faults in
  let clean =
    { v_delays = [ base_delay ]; v_dropped = 0; v_duplicated = false;
      v_reordered = 0 }
  in
  if src_ip = dst_ip then clean
  else if fm == no_faults then clean
  else if partitioned t ~src_ip ~dst_ip then
    { clean with v_delays = []; v_dropped = 1 }
  else begin
    let duplicated = fm.duplicate > 0. && Prng.float t.rng 1.0 < fm.duplicate in
    let copies = if duplicated then 2 else 1 in
    let dropped = ref 0 and reordered = ref 0 in
    let delays = ref [] in
    for _ = 1 to copies do
      if fm.drop > 0. && Prng.float t.rng 1.0 < fm.drop then incr dropped
      else begin
        let extra =
          if
            fm.reorder > 0. && fm.reorder_ns > 0
            && Prng.float t.rng 1.0 < fm.reorder
          then begin
            incr reordered;
            1 + Prng.int t.rng fm.reorder_ns
          end
          else 0
        in
        delays := (base_delay + extra) :: !delays
      end
    done;
    { v_delays = List.rev !delays; v_dropped = !dropped;
      v_duplicated = duplicated; v_reordered = !reordered }
  end

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, action) ->
      (* The clock never goes backwards: events scheduled in the past
         (impossible via [schedule]) would otherwise corrupt causality. *)
      t.clock <- max t.clock time;
      t.processed <- t.processed + 1;
      action ();
      true

let run t ?(max_events = 10_000_000) () =
  let start = t.processed in
  let rec go () =
    match Heap.peek_key t.queue with
    | None -> ()
    | Some _ ->
        (* only a budget exhausted with work still pending is a
           livelock; draining exactly [max_events] events is fine *)
        if t.processed - start >= max_events then
          failwith
            (Printf.sprintf "Simnet.run: exceeded %d events (livelock?)"
               max_events);
        ignore (step t);
        go ()
  in
  go ();
  t.processed - start

let events_processed t = t.processed
let next_time t = Heap.peek_key t.queue

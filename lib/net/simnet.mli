(** Discrete-event simulation core with a cluster topology.

    The whole distributed run-time executes inside one deterministic
    event loop: site execution quanta, packet deliveries and name
    service processing are all events on a single virtual clock
    (nanoseconds).  Determinism — same program, same seed, same trace —
    is what allows the differential tests against the reference
    semantics, and the virtual clock is what the simulated-time
    experiments (E3–E6, E9, E10) report.

    {!topology} describes the paper's Figure 1 shape: nodes connected
    by an intra-node model (shared memory), a cluster switch model
    (Myrinet) and an external model (Fast Ethernet) for nodes marked
    external. *)

type t

type topology = {
  intra_node : Latency.t;   (** between sites of one node *)
  cluster : Latency.t;      (** between cluster nodes *)
  external_ : Latency.t;    (** to/from nodes outside the switch *)
  external_ips : int list;  (** nodes reached via [external_] *)
}

val default_topology : topology
(** Fig. 1: Myrinet switch fabric, shared-memory local, Fast Ethernet
    for external nodes (none by default). *)

(** {1 Fault model}

    Per-link failure behaviour of the switch fabric, driven by the
    simulation's deterministic PRNG: independent per-packet drop,
    duplication and reordering probabilities plus timed symmetric
    partitions.  Intra-node (same-ip) traffic is never faulted. *)

type partition = {
  p_a : int;      (** one end (node ip) *)
  p_b : int;      (** other end (node ip); the cut is symmetric *)
  p_from : int;   (** first virtual ns of the cut (inclusive) *)
  p_until : int;  (** first virtual ns after healing (exclusive) *)
}

type fault_model = {
  drop : float;        (** per-copy drop probability, [0,1] *)
  duplicate : float;   (** probability a packet is transmitted twice *)
  reorder : float;     (** probability a copy gets extra random delay *)
  reorder_ns : int;    (** bound on that extra delay *)
  partitions : partition list;
}

val no_faults : fault_model
(** Exactly-once, in-order delivery — the seed behaviour. *)

(** Outcome of sending one packet over a faulty link: the delays of the
    surviving copies (possibly none, possibly two when duplicated),
    plus what happened, for the caller's statistics. *)
type verdict = {
  v_delays : int list;
  v_dropped : int;
  v_duplicated : bool;
  v_reordered : int;
}

val faulted_link : t -> src_ip:int -> dst_ip:int -> bool
(** [false] when transmissions on this link can never be faulted (the
    fault model is {!no_faults}, or the link is intra-node): callers
    may then schedule the base delay directly and skip
    {!fault_verdict}'s allocation without changing PRNG consumption. *)

val fault_verdict : t -> src_ip:int -> dst_ip:int -> base_delay:int -> verdict
(** Roll the fault dice for one transmission.  With [no_faults] (or on
    an intra-node link) this returns [base_delay] unchanged and never
    consults the PRNG, preserving seed-for-seed determinism of
    fault-free runs. *)

val partitioned : t -> src_ip:int -> dst_ip:int -> bool
(** Is the link cut by a partition at the current virtual time? *)

val create : ?topology:topology -> ?faults:fault_model -> seed:int -> unit -> t
val now : t -> int
val prng : t -> Tyco_support.Prng.t
val topology : t -> topology
val faults : t -> fault_model

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** Run an action [delay] ns from now.  FIFO among equal timestamps. *)

val link : t -> src_ip:int -> dst_ip:int -> Latency.t
val packet_delay : t -> src_ip:int -> dst_ip:int -> bytes:int -> int

val run : t -> ?max_events:int -> unit -> int
(** Drain the event queue; returns the number of events processed.
    Raises [Failure] when the budget of [max_events] (default
    10_000_000) is spent with events still pending — a queue that
    drains in exactly [max_events] events completes normally. *)

val step : t -> bool
(** Process one event; [false] when the queue is empty. *)

val next_time : t -> int option
(** Timestamp of the next pending event. *)

val events_processed : t -> int

(** Packets exchanged between TyCOd daemons (paper §5).

    Three families:
    - process shipments — remote method invocations ([Pmsg], the SHIPM
      path) and object migrations ([Pobj], the SHIPO path);
    - the class-download protocol ([Pfetch_req]/[Pfetch_rep], the FETCH
      path);
    - name-service traffic for the [export]/[import] instructions.

    All payloads use the hardware-independent {!Tyco_support.Wire}
    format; byte-code travels as an opaque serialized sub-unit produced
    by {!Tyco_compiler.Bytecode}.  {!byte_size} feeds the latency
    models. *)

type wvalue =
  | Wint of int
  | Wbool of bool
  | Wstr of string
  | Wref of Tyco_support.Netref.t
      (** channel or class reference, per its [kind] *)

type t =
  | Pmsg of { dst : Tyco_support.Netref.t; label : string; args : wvalue list }
  | Pobj of {
      dst : Tyco_support.Netref.t;
      code : string;        (** serialized sub-unit *)
      code_key : int * int * int;  (** (ip, site, mtable) — receiver-side linking cache *)
      mtable : int;          (** method-table index within the sub-unit *)
      env : wvalue list;
    }
  | Pfetch_req of {
      cls : Tyco_support.Netref.t;
      req_id : int;
      requester_site : int;
      requester_ip : int;
    }
  | Pfetch_rep of {
      req_id : int;
      dst_site : int;
      dst_ip : int;
      code : string;
      code_key : int * int * int;  (** (ip, site, group) *)
      group : int;           (** group index within the sub-unit *)
      index : int;           (** which class of the group was requested *)
      env_captures : wvalue list;  (** captured part of the shared env *)
    }
  | Pns_register of {
      site_name : string;
      id_name : string;
      nref : Tyco_support.Netref.t;
      rtti : string;
          (** encoded type descriptor; [""] when the exporter carries
              none (paper §7's dynamic checking) *)
    }
  | Pns_lookup of {
      site_name : string;
      id_name : string;
      want_class : bool;
      req_id : int;
      requester_site : int;
      requester_ip : int;
    }
  | Pns_reply of {
      req_id : int;
      dst_site : int;
      dst_ip : int;
      result : Tyco_support.Netref.t option;
      rtti : string;
    }
  | Prelease of {
      origin_site : int;  (** the exporter whose leases are refreshed *)
      origin_ip : int;
      chans : int list;   (** channel heap ids the sender still holds *)
      classes : int list; (** class heap ids the sender still holds *)
    }
      (** Lease refresh: an importer tells an exporter which of its
          references it still holds, renewing their leases so the
          exporter's reclamation sweep keeps them resident.  Versioned
          like [Fbatch]: the tag is followed by a format-version byte,
          so decoders predating the packet drop it cleanly
          ([Malformed "packet tag 7"]) and aware decoders reject future
          layout changes explicitly. *)

val prelease_version : int

val dst_ip : t -> ns_ip:int -> int
(** Destination node of a packet ([ns_ip] for name-service traffic). *)

val trace_pk : t -> Tyco_support.Trace.pk
(** The packet-kind tag trace [Send]/[Deliver] events carry. *)

val encode : Tyco_support.Wire.enc -> t -> unit
val decode : Tyco_support.Wire.dec -> t
val to_string : t -> string
val of_string : string -> t

val byte_size : t -> int
(** Serialized size, for the link cost models.  Deliberately excludes
    the trace-context trailer: tracing must not perturb the latency
    model it observes. *)

(** {1 Trace-context trailer}

    The causal span of a traced packet rides after the body as a
    versioned optional extension.  Compatibility holds both ways: a
    plain {!of_string} never reads past the body, and
    {!of_string_traced} on an untraced packet finds the decoder
    [at_end] and returns [None] — also on a trailer of a {e newer}
    version, which it skips rather than rejects. *)

val to_string_traced : ?ctx:Tyco_support.Trace.span -> t -> string
(** [to_string] plus a trailer when [ctx] is a real (non-null) span;
    without one the output is byte-identical to {!to_string}. *)

val encode_traced : ?ctx:Tyco_support.Trace.span -> Tyco_support.Wire.enc -> t -> unit
(** The encode-into form of {!to_string_traced}: body plus optional
    trailer appended to an existing encoder, for callers that reuse a
    buffer across packets (the TCP runner's transmit path). *)

val of_string_traced : string -> t * Tyco_support.Trace.span option

(** {1 Transport frames}

    The at-least-once layer under the protocols: a daemon wraps each
    outgoing packet in an [Fdata] frame stamped with its node address
    and a per-destination sequence number, and acknowledges each frame
    it receives with an [Fack].  Unacknowledged frames are
    retransmitted; the receiver recognizes replayed [(src_ip, seq)]
    pairs and suppresses the duplicate delivery, so every packet
    reaches its site exactly once even over a lossy, duplicating
    link. *)

type frame =
  | Fdata of { src_ip : int; seq : int; payload : t }
  | Fack of { src_ip : int; seq : int }
      (** acknowledges the [Fdata] with the same [(src_ip, seq)];
          routed back to [src_ip] *)
  | Fbatch of {
      src_ip : int;
      base_seq : int;
          (** sequence number of [payloads]' head; the rest follow
              contiguously, so packet [i] has seq [base_seq + i] *)
      ack_floor : int;
          (** piggybacked cumulative ack: the sender has contiguously
              received every seq below this from the frame's
              destination ([0] = nothing yet) *)
      payloads : t list;
    }
      (** N packets to one destination in one frame.  Versioned: the
          tag is followed by a format-version byte, so decoders predating
          the frame reject it cleanly ([Malformed "frame tag 2"]) and
          aware decoders reject future layout changes explicitly. *)
  | Fcum_ack of { src_ip : int; ack_floor : int }
      (** standalone cumulative ack (delayed-ack timer fired with no
          reverse traffic to piggyback on): acknowledges every seq
          below [ack_floor] of [src_ip]'s inbound stream *)

val batch_version : int

val encode_frame : Tyco_support.Wire.enc -> frame -> unit
val decode_frame : Tyco_support.Wire.dec -> frame
val frame_to_string : frame -> string
val frame_of_string : string -> frame

val frame_to_string_traced : ?ctx:Tyco_support.Trace.span -> frame -> string
val frame_of_string_traced : string -> frame * Tyco_support.Trace.span option
(** Same trailer scheme as {!to_string_traced}, at the frame layer. *)

val frame_byte_size : frame -> int

val batch_byte_size :
  src_ip:int -> base_seq:int -> ack_floor:int -> count:int ->
  payload_bytes:int -> int
(** {!frame_byte_size} of an [Fbatch] without materializing it:
    [payload_bytes] is the pre-summed {!byte_size} of the payloads.
    The simulated transport charges batch frames with this. *)

val pp_frame : Format.formatter -> frame -> unit

val pp : Format.formatter -> t -> unit
val pp_wvalue : Format.formatter -> wvalue -> unit

(** The centralized network name service (paper §5).

    “Conceptually, the service maintains two tables, one for sites and
    another for exported identifiers”:
    {v
      SiteTable : SiteName -> SiteId × IpAddress
      IdTable   : SiteName × IdName -> HeapId
    v}

    This module keeps the identifier table.  The site table is realized
    by {!Tyco_core.Cluster}'s routing instead: no wire request ever
    consulted the one that used to live here — [Pns_lookup] resolves
    identifiers only, with the owning site baked into the returned
    reference — so a name-keyed site table at the service was dead
    state that could silently disagree with the fabric's routing.

    A lookup that arrives before the corresponding registration parks
    until it can be answered (start-up races between importing and
    exporting sites are expected — registrations travel through the
    network like everything else). *)

type t

type waiter = {
  w_req_id : int;
  w_site : int;   (** requester site id *)
  w_ip : int;     (** requester node *)
}

val create : unit -> t

val register_id : t -> site:string -> name:string -> ?rtti:string ->
  Tyco_support.Netref.t -> waiter list
(** Records the identifier (and its optional encoded type descriptor)
    and returns the waiters this registration unblocks (their replies
    carry the new reference). *)

val lookup_id : t -> site:string -> name:string -> waiter ->
  (Tyco_support.Netref.t * string) option
(** [Some (r, rtti)] — answer immediately; [None] — the waiter was
    parked. *)

val registered : t -> (string * string) list
(** All registered (site, identifier) pairs, for tooling. *)

val pending : t -> int
(** Number of parked lookups (diagnostics; nonzero at quiescence means
    an import could never be resolved). *)

type t = {
  name : string;
  latency_ns : int;
  bytes_per_ns : float;
  per_packet_ns : int;
}

(* 1 Gb/s = 0.125 bytes/ns; 100 Mb/s = 0.0125 bytes/ns. *)
let myrinet =
  { name = "myrinet-1g"; latency_ns = 9_000; bytes_per_ns = 0.125;
    per_packet_ns = 1_500 }

let fast_ethernet =
  { name = "fast-ethernet-100m"; latency_ns = 70_000; bytes_per_ns = 0.0125;
    per_packet_ns = 4_000 }

let shared_memory =
  { name = "shared-memory"; latency_ns = 300; bytes_per_ns = 8.0;
    per_packet_ns = 100 }

(* 10 Mb/s = 0.00125 bytes/ns; 5 ms one-way.  A long-haul link for the
   chaos scenarios: the regime where loss and retransmission dominate,
   which the cluster fabrics above never enter. *)
let wan =
  { name = "wan-10m"; latency_ns = 5_000_000; bytes_per_ns = 0.00125;
    per_packet_ns = 10_000 }

(* Transport-level acknowledgement frames carry no payload; their cost
   is one header. *)
let ack_bytes = 16

let custom ~name ~latency_ns ~bytes_per_ns ~per_packet_ns =
  { name; latency_ns; bytes_per_ns; per_packet_ns }

let transfer_ns t ~bytes =
  t.latency_ns + t.per_packet_ns
  + int_of_float (ceil (float_of_int bytes /. t.bytes_per_ns))

(* [per_packet_ns] is charged once per *frame*: coalescing n packets
   into one batch frame saves the fixed software overhead of the n-1
   frames that were never sent.  (The bandwidth term is unchanged — the
   payload bytes still cross the link.) *)
let coalesce_saved_ns t ~packets =
  if packets <= 1 then 0 else (packets - 1) * (t.per_packet_ns + t.latency_ns)

let pp ppf t =
  Format.fprintf ppf "%s(lat=%dns bw=%.3fB/ns)" t.name t.latency_ns
    t.bytes_per_ns

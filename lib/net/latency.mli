(** Link cost models for the simulated cluster (paper Fig. 1).

    The paper's test-bed is four dual-processor PCs on a 1 Gb/s Myrinet
    switch, each also holding a 100 Mb/s Fast Ethernet uplink; sites on
    the same node interact through shared memory.  These models expose
    exactly the cost hierarchy the paper's design arguments rely on
    (shared memory ≪ giga-switch ≪ ethernet), in simulated nanoseconds. *)

type t = {
  name : string;
  latency_ns : int;        (** one-way, first byte *)
  bytes_per_ns : float;    (** bandwidth *)
  per_packet_ns : int;     (** fixed send/receive software overhead *)
}

val myrinet : t
(** ≈9 µs one-way latency, 1 Gb/s. *)

val fast_ethernet : t
(** ≈70 µs one-way latency, 100 Mb/s. *)

val shared_memory : t
(** ≈0.3 µs, effectively infinite bandwidth: a pointer exchange. *)

val wan : t
(** ≈5 ms one-way, 10 Mb/s: a long-haul link for the chaos/fault
    scenarios, far outside the paper's cluster fabric. *)

val ack_bytes : int
(** Wire size charged for a transport-level acknowledgement frame. *)

val custom : name:string -> latency_ns:int -> bytes_per_ns:float ->
  per_packet_ns:int -> t

val transfer_ns : t -> bytes:int -> int
(** Total one-way transfer time of a packet of the given size. *)

val coalesce_saved_ns : t -> packets:int -> int
(** Fixed overhead (per-frame software cost + link latency) a batch of
    [packets] saves over sending them as separate frames: the modeled
    upside of transmit coalescing, reported by bench E16. *)

val pp : Format.formatter -> t -> unit

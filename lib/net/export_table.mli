(** Per-site export tables (paper §5).

    “An export table is needed to map network references into heap
    pointers for all local variables that leave the site.”

    The table assigns stable heap identifiers to local entities (keyed
    by their heap uid, so re-exporting the same channel reuses its
    identifier) and resolves identifiers of incoming references — the
    second step of the two-step translation.

    Entries can be {!remove}d (lease reclamation): the identifier is
    retired for good and its slot free-listed under a fresh reuse
    generation, so a later export reusing the slot yields a {e new}
    identifier — a stale reference to the removed entry resolves to
    [None] instead of silently aliasing the new occupant.
    {!was_allocated} tells a stale identifier (allocated once, since
    reclaimed) from one that was never issued, so the protocol layer
    can fail the former visibly as a ["stale-ref"] and treat only the
    latter as a protocol error. *)

type 'a t

val create : unit -> 'a t

val export : 'a t -> uid:int -> 'a -> int
(** Returns the entity's heap identifier, allocating one on first
    export. *)

val resolve : 'a t -> int -> 'a option
(** Heap identifier to local entity; [None] for reclaimed or unknown
    identifiers. *)

val remove : 'a t -> int -> bool
(** Drop a live entry, retiring its identifier.  [false] if the
    identifier was not live. *)

val live : 'a t -> int
(** Entries currently resolvable — the table's occupancy. *)

val allocated : 'a t -> int
(** Lifetime identifier allocations (monotone); [allocated = live +
    reclaimed] always holds. *)

val reclaimed : 'a t -> int
(** Lifetime {!remove}s (monotone). *)

val was_allocated : 'a t -> int -> bool
(** Whether the identifier's slot was ever issued: [true] for every
    live or reclaimed identifier, [false] for identifiers this table
    never produced. *)

(* Heap identifiers pack a slot number (low [slot_bits]) with a reuse
   generation (high bits): removing an entry retires its identifier and
   free-lists the slot under the next generation, so a reused slot
   yields a fresh identifier and a reference to the removed entry can
   never alias the new occupant.  With 63-bit ints this leaves 43
   generation bits per slot — unreachable in practice. *)
let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1
let slot_of id = id land slot_mask
let gen_of id = id lsr slot_bits
let make_id ~gen ~slot = (gen lsl slot_bits) lor slot

type 'a t = {
  by_uid : (int, int) Hashtbl.t;       (* entity uid -> heap id *)
  by_heap : (int, int * 'a) Hashtbl.t; (* heap id -> (uid, entity) *)
  mutable free : (int * int) list;     (* (slot, next generation) *)
  mutable next_slot : int;
  mutable allocs : int;                (* lifetime allocations *)
  mutable removed : int;               (* lifetime removals *)
}

let create () =
  { by_uid = Hashtbl.create 32; by_heap = Hashtbl.create 32; free = [];
    next_slot = 0; allocs = 0; removed = 0 }

let export t ~uid v =
  match Hashtbl.find_opt t.by_uid uid with
  | Some heap_id -> heap_id
  | None ->
      let heap_id =
        match t.free with
        | (slot, gen) :: rest ->
            t.free <- rest;
            make_id ~gen ~slot
        | [] ->
            let slot = t.next_slot in
            t.next_slot <- slot + 1;
            make_id ~gen:0 ~slot
      in
      t.allocs <- t.allocs + 1;
      Hashtbl.add t.by_uid uid heap_id;
      Hashtbl.add t.by_heap heap_id (uid, v);
      heap_id

let resolve t heap_id =
  match Hashtbl.find_opt t.by_heap heap_id with
  | Some (_, v) -> Some v
  | None -> None

let remove t heap_id =
  match Hashtbl.find_opt t.by_heap heap_id with
  | None -> false
  | Some (uid, _) ->
      Hashtbl.remove t.by_heap heap_id;
      Hashtbl.remove t.by_uid uid;
      t.free <- (slot_of heap_id, gen_of heap_id + 1) :: t.free;
      t.removed <- t.removed + 1;
      true

let live t = Hashtbl.length t.by_heap
let allocated t = t.allocs
let reclaimed t = t.removed
let was_allocated t heap_id = slot_of heap_id < t.next_slot

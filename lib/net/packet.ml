module Wire = Tyco_support.Wire
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace

type wvalue =
  | Wint of int
  | Wbool of bool
  | Wstr of string
  | Wref of Netref.t

type t =
  | Pmsg of { dst : Netref.t; label : string; args : wvalue list }
  | Pobj of {
      dst : Netref.t;
      code : string;
      code_key : int * int * int;
      mtable : int;
      env : wvalue list;
    }
  | Pfetch_req of {
      cls : Netref.t;
      req_id : int;
      requester_site : int;
      requester_ip : int;
    }
  | Pfetch_rep of {
      req_id : int;
      dst_site : int;
      dst_ip : int;
      code : string;
      code_key : int * int * int;
      group : int;
      index : int;
      env_captures : wvalue list;
    }
  | Pns_register of {
      site_name : string;
      id_name : string;
      nref : Netref.t;
      rtti : string;
    }
  | Pns_lookup of {
      site_name : string;
      id_name : string;
      want_class : bool;
      req_id : int;
      requester_site : int;
      requester_ip : int;
    }
  | Pns_reply of {
      req_id : int;
      dst_site : int;
      dst_ip : int;
      result : Netref.t option;
      rtti : string;
    }
  | Prelease of {
      origin_site : int;  (* the exporter whose leases are refreshed *)
      origin_ip : int;
      chans : int list;   (* channel heap ids the sender still holds *)
      classes : int list; (* class heap ids the sender still holds *)
    }

(* The packet-kind tag carried by trace events. *)
let trace_pk = function
  | Pmsg _ -> Trace.Kmsg
  | Pobj _ -> Trace.Kobj
  | Pfetch_req _ -> Trace.Kfetch_req
  | Pfetch_rep _ -> Trace.Kfetch_rep
  | Pns_register _ -> Trace.Kns_register
  | Pns_lookup _ -> Trace.Kns_lookup
  | Pns_reply _ -> Trace.Kns_reply
  | Prelease _ -> Trace.Kprelease

let dst_ip t ~ns_ip =
  match t with
  | Pmsg { dst; _ } | Pobj { dst; _ } -> dst.Netref.ip
  | Pfetch_req { cls; _ } -> cls.Netref.ip
  | Pfetch_rep { dst_ip; _ } | Pns_reply { dst_ip; _ } -> dst_ip
  | Prelease { origin_ip; _ } -> origin_ip
  | Pns_register _ | Pns_lookup _ -> ns_ip

let encode_wvalue enc = function
  | Wint n ->
      Wire.u8 enc 0;
      Wire.zint enc n
  | Wbool b ->
      Wire.u8 enc 1;
      Wire.bool enc b
  | Wstr s ->
      Wire.u8 enc 2;
      Wire.string enc s
  | Wref r ->
      Wire.u8 enc 3;
      Netref.encode enc r

let decode_wvalue dec =
  match Wire.read_u8 dec with
  | 0 -> Wint (Wire.read_zint dec)
  | 1 -> Wbool (Wire.read_bool dec)
  | 2 -> Wstr (Wire.read_string dec)
  | 3 -> Wref (Netref.decode dec)
  | n -> raise (Wire.Malformed (Printf.sprintf "wvalue tag %d" n))

let encode_key enc (a, b, c) =
  Wire.varint enc a;
  Wire.varint enc b;
  Wire.varint enc c

let decode_key dec =
  let a = Wire.read_varint dec in
  let b = Wire.read_varint dec in
  let c = Wire.read_varint dec in
  (a, b, c)

(* [Prelease] carries its own version byte, like [Fbatch]: the packet
   tag alone tells an old decoder only that the packet is unknown
   ([Malformed "packet tag 7"], dropped cleanly), while a decoder that
   knows the tag can still reject a future layout change explicitly. *)
let prelease_version = 1

let encode enc = function
  | Pmsg { dst; label; args } ->
      Wire.u8 enc 0;
      Netref.encode enc dst;
      Wire.string enc label;
      Wire.list enc encode_wvalue args
  | Pobj { dst; code; code_key; mtable; env } ->
      Wire.u8 enc 1;
      Netref.encode enc dst;
      Wire.string enc code;
      encode_key enc code_key;
      Wire.varint enc mtable;
      Wire.list enc encode_wvalue env
  | Pfetch_req { cls; req_id; requester_site; requester_ip } ->
      Wire.u8 enc 2;
      Netref.encode enc cls;
      Wire.varint enc req_id;
      Wire.varint enc requester_site;
      Wire.varint enc requester_ip
  | Pfetch_rep { req_id; dst_site; dst_ip; code; code_key; group; index; env_captures } ->
      Wire.u8 enc 3;
      Wire.varint enc req_id;
      Wire.varint enc dst_site;
      Wire.varint enc dst_ip;
      Wire.string enc code;
      encode_key enc code_key;
      Wire.varint enc group;
      Wire.varint enc index;
      Wire.list enc encode_wvalue env_captures
  | Pns_register { site_name; id_name; nref; rtti } ->
      Wire.u8 enc 4;
      Wire.string enc site_name;
      Wire.string enc id_name;
      Netref.encode enc nref;
      Wire.string enc rtti
  | Pns_lookup { site_name; id_name; want_class; req_id; requester_site; requester_ip } ->
      Wire.u8 enc 5;
      Wire.string enc site_name;
      Wire.string enc id_name;
      Wire.bool enc want_class;
      Wire.varint enc req_id;
      Wire.varint enc requester_site;
      Wire.varint enc requester_ip
  | Pns_reply { req_id; dst_site; dst_ip; result; rtti } ->
      Wire.u8 enc 6;
      Wire.varint enc req_id;
      Wire.varint enc dst_site;
      Wire.varint enc dst_ip;
      Wire.option enc Netref.encode result;
      Wire.string enc rtti
  | Prelease { origin_site; origin_ip; chans; classes } ->
      Wire.u8 enc 7;
      Wire.u8 enc prelease_version;
      Wire.varint enc origin_site;
      Wire.varint enc origin_ip;
      Wire.list enc Wire.varint chans;
      Wire.list enc Wire.varint classes

let decode dec =
  match Wire.read_u8 dec with
  | 0 ->
      let dst = Netref.decode dec in
      let label = Wire.read_string dec in
      let args = Wire.read_list dec decode_wvalue in
      Pmsg { dst; label; args }
  | 1 ->
      let dst = Netref.decode dec in
      let code = Wire.read_string dec in
      let code_key = decode_key dec in
      let mtable = Wire.read_varint dec in
      let env = Wire.read_list dec decode_wvalue in
      Pobj { dst; code; code_key; mtable; env }
  | 2 ->
      let cls = Netref.decode dec in
      let req_id = Wire.read_varint dec in
      let requester_site = Wire.read_varint dec in
      let requester_ip = Wire.read_varint dec in
      Pfetch_req { cls; req_id; requester_site; requester_ip }
  | 3 ->
      let req_id = Wire.read_varint dec in
      let dst_site = Wire.read_varint dec in
      let dst_ip = Wire.read_varint dec in
      let code = Wire.read_string dec in
      let code_key = decode_key dec in
      let group = Wire.read_varint dec in
      let index = Wire.read_varint dec in
      let env_captures = Wire.read_list dec decode_wvalue in
      Pfetch_rep { req_id; dst_site; dst_ip; code; code_key; group; index; env_captures }
  | 4 ->
      let site_name = Wire.read_string dec in
      let id_name = Wire.read_string dec in
      let nref = Netref.decode dec in
      let rtti = Wire.read_string dec in
      Pns_register { site_name; id_name; nref; rtti }
  | 5 ->
      let site_name = Wire.read_string dec in
      let id_name = Wire.read_string dec in
      let want_class = Wire.read_bool dec in
      let req_id = Wire.read_varint dec in
      let requester_site = Wire.read_varint dec in
      let requester_ip = Wire.read_varint dec in
      Pns_lookup { site_name; id_name; want_class; req_id; requester_site; requester_ip }
  | 6 ->
      let req_id = Wire.read_varint dec in
      let dst_site = Wire.read_varint dec in
      let dst_ip = Wire.read_varint dec in
      let result = Wire.read_option dec Netref.decode in
      let rtti = Wire.read_string dec in
      Pns_reply { req_id; dst_site; dst_ip; result; rtti }
  | 7 -> (
      match Wire.read_u8 dec with
      | v when v = prelease_version ->
          let origin_site = Wire.read_varint dec in
          let origin_ip = Wire.read_varint dec in
          let chans = Wire.read_list dec Wire.read_varint in
          let classes = Wire.read_list dec Wire.read_varint in
          Prelease { origin_site; origin_ip; chans; classes }
      | v -> raise (Wire.Malformed (Printf.sprintf "prelease version %d" v)))
  | n -> raise (Wire.Malformed (Printf.sprintf "packet tag %d" n))

let to_string p = Wire.with_encoder (fun enc -> encode enc p)

let of_string s = decode (Wire.decoder s)

(* ------------------------------------------------------------------ *)
(* Trace-context trailer.

   The causal span rides {e after} the packet body as a versioned
   optional extension: a decoder that does not know about it stops at
   the end of the body and never reads the trailer, and a decoder that
   does probes [at_end] — so traced and untraced daemons interoperate
   in both directions.  The trailer is deliberately {e not} charged by
   [byte_size]: tracing must not perturb the latency model it is
   measuring. *)

let ctx_version = 1

let encode_ctx enc (sp : Trace.span) =
  Wire.u8 enc ctx_version;
  Wire.varint enc sp.Trace.trace_id;
  Wire.varint enc sp.Trace.span_id;
  Wire.varint enc sp.Trace.parent_id

let decode_ctx dec =
  if Wire.at_end dec then None
  else
    match Wire.read_u8 dec with
    | 1 ->
        let trace_id = Wire.read_varint dec in
        let span_id = Wire.read_varint dec in
        let parent_id = Wire.read_varint dec in
        Some { Trace.trace_id; span_id; parent_id }
    | _ -> None (* later trailer version: skip what we can't parse *)

let encode_traced ?ctx enc p =
  encode enc p;
  match ctx with
  | Some sp when not (Trace.is_null sp) -> encode_ctx enc sp
  | _ -> ()

let to_string_traced ?ctx p = Wire.with_encoder (fun enc -> encode_traced ?ctx enc p)

let of_string_traced s =
  let dec = Wire.decoder s in
  let p = decode dec in
  (p, decode_ctx dec)

(* ------------------------------------------------------------------ *)
(* Byte accounting without encoding.

   The simulated transport only needs packet {e sizes} (the bandwidth
   term of the latency model); fully encoding into a fresh buffer per
   send just to measure its length dominated the transport hot path.
   These mirror the encoders arithmetically; test_net asserts
   [byte_size p = String.length (to_string p)] for every constructor
   so the two cannot drift. *)

let wvalue_size = function
  | Wint n -> 1 + Wire.zint_size n
  | Wbool _ -> 2
  | Wstr s -> 1 + Wire.string_size s
  | Wref r -> 1 + Netref.byte_size r

let wvalues_size args =
  List.fold_left
    (fun acc w -> acc + wvalue_size w)
    (Wire.varint_size (List.length args))
    args

let key_size (a, b, c) =
  Wire.varint_size a + Wire.varint_size b + Wire.varint_size c

let byte_size = function
  | Pmsg { dst; label; args } ->
      1 + Netref.byte_size dst + Wire.string_size label + wvalues_size args
  | Pobj { dst; code; code_key; mtable; env } ->
      1 + Netref.byte_size dst + Wire.string_size code + key_size code_key
      + Wire.varint_size mtable + wvalues_size env
  | Pfetch_req { cls; req_id; requester_site; requester_ip } ->
      1 + Netref.byte_size cls + Wire.varint_size req_id
      + Wire.varint_size requester_site
      + Wire.varint_size requester_ip
  | Pfetch_rep { req_id; dst_site; dst_ip; code; code_key; group; index;
                 env_captures } ->
      1 + Wire.varint_size req_id + Wire.varint_size dst_site
      + Wire.varint_size dst_ip + Wire.string_size code + key_size code_key
      + Wire.varint_size group + Wire.varint_size index
      + wvalues_size env_captures
  | Pns_register { site_name; id_name; nref; rtti } ->
      1 + Wire.string_size site_name + Wire.string_size id_name
      + Netref.byte_size nref + Wire.string_size rtti
  | Pns_lookup { site_name; id_name; want_class = _; req_id; requester_site;
                 requester_ip } ->
      1 + Wire.string_size site_name + Wire.string_size id_name + 1
      + Wire.varint_size req_id
      + Wire.varint_size requester_site
      + Wire.varint_size requester_ip
  | Pns_reply { req_id; dst_site; dst_ip; result; rtti } ->
      1 + Wire.varint_size req_id + Wire.varint_size dst_site
      + Wire.varint_size dst_ip
      + (match result with None -> 1 | Some r -> 1 + Netref.byte_size r)
      + Wire.string_size rtti
  | Prelease { origin_site; origin_ip; chans; classes } ->
      let ids_size ids =
        List.fold_left
          (fun acc id -> acc + Wire.varint_size id)
          (Wire.varint_size (List.length ids))
          ids
      in
      2 (* tag + version *)
      + Wire.varint_size origin_site + Wire.varint_size origin_ip
      + ids_size chans + ids_size classes

(* ------------------------------------------------------------------ *)
(* Transport frames: the at-least-once layer under the protocols.      *)

type frame =
  | Fdata of { src_ip : int; seq : int; payload : t }
  | Fack of { src_ip : int; seq : int }
  | Fbatch of {
      src_ip : int;
      base_seq : int;
      ack_floor : int;
      payloads : t list;
    }
  | Fcum_ack of { src_ip : int; ack_floor : int }

(* [Fbatch] carries its own version byte: the frame tag alone tells an
   old decoder only that the frame is unknown (it raises [Malformed
   "frame tag 2"] and drops it cleanly), while a decoder that knows the
   tag can still reject a future layout change explicitly. *)
let batch_version = 1

let encode_frame enc = function
  | Fdata { src_ip; seq; payload } ->
      Wire.u8 enc 0;
      Wire.varint enc src_ip;
      Wire.varint enc seq;
      encode enc payload
  | Fack { src_ip; seq } ->
      Wire.u8 enc 1;
      Wire.varint enc src_ip;
      Wire.varint enc seq
  | Fbatch { src_ip; base_seq; ack_floor; payloads } ->
      Wire.u8 enc 2;
      Wire.u8 enc batch_version;
      Wire.varint enc src_ip;
      Wire.varint enc base_seq;
      Wire.varint enc ack_floor;
      Wire.list enc encode payloads
  | Fcum_ack { src_ip; ack_floor } ->
      Wire.u8 enc 3;
      Wire.varint enc src_ip;
      Wire.varint enc ack_floor

let decode_frame dec =
  match Wire.read_u8 dec with
  | 0 ->
      let src_ip = Wire.read_varint dec in
      let seq = Wire.read_varint dec in
      let payload = decode dec in
      Fdata { src_ip; seq; payload }
  | 1 ->
      let src_ip = Wire.read_varint dec in
      let seq = Wire.read_varint dec in
      Fack { src_ip; seq }
  | 2 ->
      (match Wire.read_u8 dec with
      | v when v = batch_version ->
          let src_ip = Wire.read_varint dec in
          let base_seq = Wire.read_varint dec in
          let ack_floor = Wire.read_varint dec in
          let payloads = Wire.read_list dec decode in
          Fbatch { src_ip; base_seq; ack_floor; payloads }
      | v -> raise (Wire.Malformed (Printf.sprintf "batch version %d" v)))
  | 3 ->
      let src_ip = Wire.read_varint dec in
      let ack_floor = Wire.read_varint dec in
      Fcum_ack { src_ip; ack_floor }
  | n -> raise (Wire.Malformed (Printf.sprintf "frame tag %d" n))

let frame_to_string f = Wire.with_encoder (fun enc -> encode_frame enc f)

let frame_of_string s = decode_frame (Wire.decoder s)

let frame_to_string_traced ?ctx f =
  Wire.with_encoder (fun enc ->
      encode_frame enc f;
      match ctx with
      | Some sp when not (Trace.is_null sp) -> encode_ctx enc sp
      | _ -> ())

let frame_of_string_traced s =
  let dec = Wire.decoder s in
  let f = decode_frame dec in
  (f, decode_ctx dec)

let frame_byte_size = function
  | Fdata { src_ip; seq; payload } ->
      1 + Wire.varint_size src_ip + Wire.varint_size seq + byte_size payload
  | Fack { src_ip; seq } ->
      1 + Wire.varint_size src_ip + Wire.varint_size seq
  | Fbatch { src_ip; base_seq; ack_floor; payloads } ->
      2 (* tag + version *)
      + Wire.varint_size src_ip + Wire.varint_size base_seq
      + Wire.varint_size ack_floor
      + Wire.varint_size (List.length payloads)
      + List.fold_left (fun acc p -> acc + byte_size p) 0 payloads
  | Fcum_ack { src_ip; ack_floor } ->
      1 + Wire.varint_size src_ip + Wire.varint_size ack_floor

let batch_byte_size ~src_ip ~base_seq ~ack_floor ~count ~payload_bytes =
  2 + Wire.varint_size src_ip + Wire.varint_size base_seq
  + Wire.varint_size ack_floor + Wire.varint_size count + payload_bytes

let pp_wvalue ppf = function
  | Wint n -> Format.fprintf ppf "%d" n
  | Wbool b -> Format.fprintf ppf "%b" b
  | Wstr s -> Format.fprintf ppf "%S" s
  | Wref r -> Netref.pp ppf r

let pp_frame ppf = function
  | Fdata { src_ip; seq; _ } -> Format.fprintf ppf "data %d#%d" src_ip seq
  | Fack { src_ip; seq } -> Format.fprintf ppf "ack %d#%d" src_ip seq
  | Fbatch { src_ip; base_seq; ack_floor; payloads } ->
      Format.fprintf ppf "batch %d#%d+%d ack<%d" src_ip base_seq
        (List.length payloads) ack_floor
  | Fcum_ack { src_ip; ack_floor } ->
      Format.fprintf ppf "cum-ack %d<%d" src_ip ack_floor

let pp ppf = function
  | Pmsg { dst; label; args } ->
      Format.fprintf ppf "msg %a!%s/%d" Netref.pp dst label (List.length args)
  | Pobj { dst; env; _ } ->
      Format.fprintf ppf "obj %a (env=%d)" Netref.pp dst (List.length env)
  | Pfetch_req { cls; req_id; _ } ->
      Format.fprintf ppf "fetch-req#%d %a" req_id Netref.pp cls
  | Pfetch_rep { req_id; index; _ } ->
      Format.fprintf ppf "fetch-rep#%d idx=%d" req_id index
  | Pns_register { site_name; id_name; nref; _ } ->
      Format.fprintf ppf "ns-register %s.%s=%a" site_name id_name Netref.pp nref
  | Pns_lookup { site_name; id_name; req_id; _ } ->
      Format.fprintf ppf "ns-lookup#%d %s.%s" req_id site_name id_name
  | Pns_reply { req_id; result; _ } ->
      Format.fprintf ppf "ns-reply#%d %s" req_id
        (match result with Some _ -> "found" | None -> "pending")
  | Prelease { origin_site; chans; classes; _ } ->
      Format.fprintf ppf "lease-refresh site#%d chans=%d classes=%d"
        origin_site (List.length chans) (List.length classes)

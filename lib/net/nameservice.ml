module Netref = Tyco_support.Netref

type waiter = { w_req_id : int; w_site : int; w_ip : int }

type t = {
  ids : (string * string, Netref.t * string) Hashtbl.t;
  parked : (string * string, waiter list) Hashtbl.t;
}

let create () =
  { ids = Hashtbl.create 64; parked = Hashtbl.create 16 }

let register_id t ~site ~name ?(rtti = "") nref =
  Hashtbl.replace t.ids (site, name) (nref, rtti);
  match Hashtbl.find_opt t.parked (site, name) with
  | None -> []
  | Some waiters ->
      Hashtbl.remove t.parked (site, name);
      List.rev waiters

let lookup_id t ~site ~name waiter =
  match Hashtbl.find_opt t.ids (site, name) with
  | Some r -> Some r
  | None ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt t.parked (site, name))
      in
      Hashtbl.replace t.parked (site, name) (waiter :: existing);
      None

let registered t = Hashtbl.fold (fun k _ acc -> k :: acc) t.ids []

let pending t =
  Hashtbl.fold (fun _ ws acc -> acc + List.length ws) t.parked 0

(** Hardware-independent binary wire format.

    The paper (§5) requires that network references, shipped
    messages/objects and downloaded byte-code have a representation that
    is independent of the host: this module is that representation.
    Integers use LEB128 varints (signed values are zigzag-encoded),
    floats are IEEE-754 bits in little-endian order, and strings are
    length-prefixed. *)

(** {1 Encoding} *)

type enc

val encoder : ?size:int -> unit -> enc
(** A fresh encoder; [size] preallocates the backing buffer (the buffer
    still grows on demand, so [size] is a hint, not a cap). *)

val to_string : enc -> string
val size : enc -> int

val reset : enc -> unit
(** Rewind to empty, keeping the grown backing buffer for reuse. *)

val blit_to_bytes : enc -> Bytes.t -> int -> unit
(** Copy the encoded bytes into [dst] at [pos]; [dst] must have room
    for {!size} bytes. *)

val with_encoder : ?size:int -> (enc -> unit) -> string
(** Borrow an encoder from a small process-wide pool, run the writer,
    and return the encoded string.  Steady-state encodes reuse grown
    buffers, so the only allocation is the result string itself. *)

val u8 : enc -> int -> unit
(** Raw byte; [0 <= v < 256]. *)

val varint : enc -> int -> unit
(** Unsigned LEB128.  Raises [Invalid_argument] on negative input. *)

val zint : enc -> int -> unit
(** Signed integer, zigzag + LEB128. *)

val varint_size : int -> int
(** Bytes {!varint} would emit, without encoding. *)

val zint_size : int -> int
(** Bytes {!zint} would emit, without encoding. *)

val string_size : string -> int
(** Bytes {!string} would emit (length prefix + payload). *)

val bool : enc -> bool -> unit
val float : enc -> float -> unit
val string : enc -> string -> unit
val list : enc -> (enc -> 'a -> unit) -> 'a list -> unit
val option : enc -> (enc -> 'a -> unit) -> 'a option -> unit
val pair : enc -> (enc -> 'a -> unit) -> (enc -> 'b -> unit) -> 'a * 'b -> unit

(** {1 Decoding} *)

type dec

exception Malformed of string
(** Raised by all readers on truncated or invalid input.  Dynamic
    checking of incoming packets (paper §7) turns this into a
    protocol-error diagnostic rather than a crash. *)

val decoder : string -> dec

val remaining : dec -> int
(** Bytes not yet consumed. *)

val at_end : dec -> bool
val read_u8 : dec -> int
val read_varint : dec -> int
val read_zint : dec -> int
val read_bool : dec -> bool
val read_float : dec -> float
val read_string : dec -> string
val read_list : dec -> (dec -> 'a) -> 'a list
val read_option : dec -> (dec -> 'a) -> 'a option
val read_pair : dec -> (dec -> 'a) -> (dec -> 'b) -> 'a * 'b

(** Execution metrics: counters and sample distributions.

    The experiment harness (DESIGN.md, E1–E10) reports instruction
    counts, thread granularities and latency distributions; this module
    is the shared collection machinery. *)

(** {1 Counters} *)

module Counter : sig
  type t

  val create : string -> t
  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** {1 Sample distributions} *)

module Dist : sig
  type t

  val reservoir_cap : int
  (** Bound on retained samples (8192).  Beyond it, reservoir sampling
      (Vitter's algorithm R, driven by a {!Prng} seeded from the
      distribution's name, so runs are deterministic) keeps a uniform
      subset: {!count}/{!mean}/{!min}/{!max} stay exact streaming
      values, but {!percentile} becomes an estimate. *)

  val create : string -> t
  val name : t -> string
  val add : t -> float -> unit

  val add_int : t -> int -> unit
  (** [add_int d n] = [add d (float_of_int n)], but the conversion is
      inside the call: hot loops pass an unboxed immediate instead of
      allocating a boxed float per sample. *)

  val count : t -> int
  (** Exact number of samples observed (not capped). *)

  val mean : t -> float
  (** Exact streaming mean; [0.] when empty. *)

  val min : t -> float
  (** Exact; total: [infinity] when empty (use {!summary_opt} before
      exporting — [infinity] is not valid JSON). *)

  val max : t -> float
  (** Exact; total: [neg_infinity] when empty. *)

  val samples : t -> float array
  (** The retained reservoir (every sample below the cap, a uniform
      subset past it), unsorted.  For pooling and tests. *)

  val percentile : t -> float -> float
  (** [percentile d 0.95] — linear interpolation between the two
      closest ranks of the retained samples (exact below
      {!reservoir_cap}, an estimate past it; nearest-rank made tail
      percentiles jump whole sample-widths on capped reservoirs).
      Raises [Invalid_argument] if no samples were recorded. *)

  (** A total snapshot for exporters: only constructed when at least
      one sample exists, so no field is ever [infinity]/[nan]. *)
  type summary = {
    s_n : int;
    s_mean : float;
    s_min : float;
    s_max : float;
    s_p50 : float;
    s_p95 : float;
    s_p99 : float;
    s_p999 : float;
  }

  val summary_opt : t -> summary option
  (** [None] when the distribution is empty — the safe path for JSON
      emitters (a site that never sampled emits [null], not [inf]). *)

  val absorb : t -> t -> unit
  (** [absorb t o] merges [o]'s observations into [t] ([o] unchanged):
      n/sum/min/max merge exactly; [o]'s retained reservoir folds into
      [t]'s so merged percentiles estimate the union.  The quiescence-
      time merge path for per-domain histograms. *)

  val reset : t -> unit
  val pp_summary : Format.formatter -> t -> unit
end

(** {1 Registries} *)

type t
(** A named collection of counters and distributions, one per site or
    per experiment run. *)

val create : unit -> t
val counter : t -> string -> Counter.t
(** Idempotent: returns the existing counter when the name is known. *)

val counter_value : t -> string -> int
(** Current value of a counter, 0 when it was never registered —
    read-only observation that does not create the counter. *)

val dist : t -> string -> Dist.t
val counters : t -> Counter.t list
val dists : t -> Dist.t list
val reset : t -> unit
val pp : Format.formatter -> t -> unit

(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of nondeterminism in the simulated cluster (scheduling
    tie-breaks, latency jitter, workload generation) draws from a seeded
    [Prng.t], so whole-network executions are reproducible bit-for-bit —
    a prerequisite for the differential tests between the byte-code VM
    and the reference interpreter.

    {b State is explicitly per-owner.}  This module keeps no global
    generator: every [t] is created by (and belongs to) exactly one
    owning component — a simulator, a statistics reservoir, a test
    harness — and must never be shared across OCaml domains ([next]
    mutates unsynchronized state).  Components that shard across
    domains derive their streams up front with {!for_owner} (pure, no
    draw from any parent generator) or {!split} (consumes one draw
    from the parent, before the child domain starts). *)

type t

val create : int -> t
(** [create seed]. *)

val copy : t -> t
val next : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice; raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** Derive an independent generator (for spawned components).
    Consumes one draw from the parent. *)

val for_owner : seed:int -> owner:int -> t
(** Pure per-owner derivation: an independent stream determined only
    by [(seed, owner)], consuming nothing.  Distinct owners under one
    seed get decorrelated streams (the owner index is spread by the
    SplitMix64 finalizer).  This is how domain-sharded components
    obtain their generators without touching a shared parent. *)

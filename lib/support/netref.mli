(** Network references (paper §5).

    “A network reference … is a pointer to a data structure allocated in
    the heap of some remote site.  Network references have a hardware
    independent representation that keeps information on the remote
    variable, its site, and IP address:
    [(HeapId, SiteId, IpAddress)].”

    This repository adds a [kind] tag distinguishing channel references
    from class (byte-code) references — both live in a site's export
    table, but instantiating the latter triggers the FETCH protocol
    rather than a message shipment.

    The type is defined in the support layer because both the virtual
    machine (whose values embed it) and the network substrate (whose
    packets carry it) depend on it. *)

type kind = Channel | Class

type t = {
  heap_id : int;   (** index into the owning site's export table *)
  site_id : int;
  ip : int;        (** owning node's address *)
  kind : kind;
}

val make : kind:kind -> heap_id:int -> site_id:int -> ip:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val encode : Wire.enc -> t -> unit
val decode : Wire.dec -> t

val byte_size : t -> int
(** Bytes {!encode} would emit, computed arithmetically. *)

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

(* Bounded SPSC ring over a power-of-two slot array, laid out against
   false sharing.

   [head] is owned by the consumer, [tail] by the producer; both are
   monotone counters masked into the array.  Each side writes only its
   own counter, so there is no CAS and no retry loop anywhere.  Three
   layout/fast-path decisions (profiled against the pre-PR-9 naive
   version, where every push and pop paid two seq-cst atomic loads and
   an option allocation):

   - {b Padding.}  The producer's written-per-push state (the [tail]
     atomic, its plain shadow, the cached view of [head], the
     high-water field) and the consumer's written-per-pop state (the
     [head] atomic, its shadow, the cached view of [tail]) live in two
     field groups separated by a cache line of padding words, so a
     push's stores never invalidate the line a pop is writing.  The
     two [Atomic.t] cells are likewise allocated with live line-sized
     spacer blocks between them (kept reachable from the record —
     dead filler would be collected and the cells could end up
     adjacent again after compaction).

   - {b Cached indices.}  The producer only needs [head] to decide
     fullness, and [head] only ever advances — so a stale value is
     conservative.  It keeps a cached copy and re-reads the atomic
     only when the cache says the ring {e looks} full (once per ring
     revolution in the steady state, instead of once per push).  The
     consumer mirrors this with a cached [tail]: the atomic is
     re-read only when the cache says empty.  Each side reads its own
     counter from a plain shadow field, never through the atomic.

   - {b Unboxed slots.}  Slots hold ['a] directly rather than
     ['a option], so a push writes the element with no [Some]
     allocation and {!pop_exn} returns it with none either (the
     [Empty] exception is preallocated; raising it does not
     allocate).  A popped slot is overwritten with an immediate so
     the ring does not keep the element alive for up to a full
     revolution (envelope batches hold whole packet payloads).

   Correctness under the OCaml 5 memory model is unchanged from the
   naive version: the producer publishes the slot with a plain write
   and then advances [tail] with an atomic store; the consumer reads
   [tail] atomically before reading the slot, which is the
   happens-before edge that makes the slot contents visible.  The
   mirrored argument covers the consumer's slot clear and [head]
   advance.  The cached indices never skip that edge — they only skip
   re-establishing it when the previous read already proved room. *)

exception Empty

type 'a t = {
  (* -- producer-written group (one cache line) ---------------------- *)
  tail : int Atomic.t; (* next slot to push; published position *)
  mutable p_tail : int; (* producer's plain shadow of [tail] *)
  mutable head_cache : int; (* producer's last-read [head] *)
  mutable hiwater : int; (* occupancy high-water seen at push *)
  mutable p_pad0 : int;
  mutable p_pad1 : int;
  mutable p_pad2 : int;
  mutable p_pad3 : int;
  (* -- consumer-written group (next cache line) --------------------- *)
  head : int Atomic.t; (* next slot to pop; published position *)
  mutable c_head : int; (* consumer's plain shadow of [head] *)
  mutable tail_cache : int; (* consumer's last-read [tail] *)
  mutable c_pad0 : int;
  mutable c_pad1 : int;
  mutable c_pad2 : int;
  mutable c_pad3 : int;
  mutable c_pad4 : int;
  (* -- shared read-only --------------------------------------------- *)
  buf : 'a array;
  mask : int;
  (* live spacers keeping the two atomic cells a line apart (see
     header comment); never read *)
  _spacer0 : int array;
  _spacer1 : int array;
}

(* Vacant slots hold the immediate 0 ([Obj.magic] below).  It is
   representable in any ['a array] — an array created from it is a
   generic, non-flat array, and the polymorphic accessors dispatch
   dynamically — and overwriting a popped slot with it drops the
   ring's reference to the element without a [None] box. *)

let line_words = 8 (* 64 bytes *)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc_ring.create: capacity";
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let spacer0 = Array.make line_words 0 in
  let tail = Atomic.make 0 in
  let spacer1 = Array.make line_words 0 in
  let head = Atomic.make 0 in
  { tail;
    p_tail = 0;
    head_cache = 0;
    hiwater = 0;
    p_pad0 = 0;
    p_pad1 = 0;
    p_pad2 = 0;
    p_pad3 = 0;
    head;
    c_head = 0;
    tail_cache = 0;
    c_pad0 = 0;
    c_pad1 = 0;
    c_pad2 = 0;
    c_pad3 = 0;
    c_pad4 = 0;
    buf = Array.make !cap (Obj.magic 0);
    mask = !cap - 1;
    _spacer0 = spacer0;
    _spacer1 = spacer1 }

let capacity t = t.mask + 1

let try_push t v =
  let tail = t.p_tail in
  if
    tail - t.head_cache > t.mask
    && begin
         (* looks full through the cache: refresh and re-check *)
         t.head_cache <- Atomic.get t.head;
         tail - t.head_cache > t.mask
       end
  then false
  else begin
    (* plain write, then the atomic tail advance publishes it *)
    Array.unsafe_set t.buf (tail land t.mask) v;
    t.p_tail <- tail + 1;
    Atomic.set t.tail (tail + 1);
    (* occupancy against the cached head: an upper bound (the real
       head may have advanced), clamped to the capacity *)
    let occ = tail + 1 - t.head_cache in
    let occ = if occ > t.mask + 1 then t.mask + 1 else occ in
    if occ > t.hiwater then t.hiwater <- occ;
    true
  end

let pop_exn t =
  let head = t.c_head in
  if
    head = t.tail_cache
    && begin
         (* looks empty through the cache: refresh and re-check *)
         t.tail_cache <- Atomic.get t.tail;
         head = t.tail_cache
       end
  then raise Empty
  else begin
    let i = head land t.mask in
    let v = Array.unsafe_get t.buf i in
    Array.unsafe_set t.buf i (Obj.magic 0);
    t.c_head <- head + 1;
    Atomic.set t.head (head + 1);
    v
  end

let try_pop t = match pop_exn t with v -> Some v | exception Empty -> None

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_empty t = length t = 0
let pushed t = Atomic.get t.tail
let popped t = Atomic.get t.head
let hiwater t = t.hiwater

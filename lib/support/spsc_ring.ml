(* Classic bounded SPSC ring over a power-of-two slot array.

   [head] is owned by the consumer, [tail] by the producer; both are
   monotone counters masked into the array.  Each side reads the
   other's counter atomically and writes only its own, so there is no
   CAS and no retry loop anywhere.  Slots hold ['a option] so the
   consumer can drop its reference to a popped element immediately
   (keeping a popped envelope alive until the slot is overwritten
   would extend the lifetime of whole packet payloads by up to a full
   ring revolution). *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* next slot to pop; consumer-owned *)
  tail : int Atomic.t; (* next slot to push; producer-owned *)
  mutable hiwater : int; (* producer-written occupancy high-water *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc_ring.create: capacity";
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { buf = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    hiwater = 0 }

let capacity t = t.mask + 1

let try_push t v =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then false
  else begin
    (* plain write, then the atomic tail advance publishes it *)
    Array.unsafe_set t.buf (tail land t.mask) (Some v);
    Atomic.set t.tail (tail + 1);
    (* both counters already in registers: the occupancy high-water is
       free here, and producer-owned so a plain field suffices *)
    let occ = tail + 1 - head in
    if occ > t.hiwater then t.hiwater <- occ;
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if head = tail then None
  else begin
    let i = head land t.mask in
    let v = Array.unsafe_get t.buf i in
    Array.unsafe_set t.buf i None;
    Atomic.set t.head (head + 1);
    (match v with
    | Some _ -> ()
    | None -> assert false (* tail was published, so the slot is too *));
    v
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_empty t = length t = 0
let pushed t = Atomic.get t.tail
let popped t = Atomic.get t.head
let hiwater t = t.hiwater

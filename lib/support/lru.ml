type ('k, 'v) node = {
  nd_key : 'k;
  mutable nd_val : 'v;
  mutable nd_prev : ('k, 'v) node option; (* towards the MRU end *)
  mutable nd_next : ('k, 'v) node option; (* towards the LRU end *)
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  mutable first : ('k, 'v) node option; (* most recently used *)
  mutable last : ('k, 'v) node option;  (* least recently used *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { tbl = Hashtbl.create (min capacity 64); cap = capacity;
    first = None; last = None }

let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let mem t k = Hashtbl.mem t.tbl k

let unlink t nd =
  (match nd.nd_prev with
  | None -> t.first <- nd.nd_next
  | Some p -> p.nd_next <- nd.nd_next);
  (match nd.nd_next with
  | None -> t.last <- nd.nd_prev
  | Some n -> n.nd_prev <- nd.nd_prev);
  nd.nd_prev <- None;
  nd.nd_next <- None

let push_front t nd =
  nd.nd_next <- t.first;
  (match t.first with
  | Some f -> f.nd_prev <- Some nd
  | None -> t.last <- Some nd);
  t.first <- Some nd

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some nd ->
      if t.first != Some nd then begin
        unlink t nd;
        push_front t nd
      end;
      Some nd.nd_val

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some nd ->
      nd.nd_val <- v;
      unlink t nd;
      push_front t nd;
      None
  | None ->
      let nd = { nd_key = k; nd_val = v; nd_prev = None; nd_next = None } in
      Hashtbl.add t.tbl k nd;
      push_front t nd;
      if Hashtbl.length t.tbl > t.cap then
        match t.last with
        | None -> None (* impossible: cap >= 1 and we just inserted *)
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.tbl victim.nd_key;
            Some (victim.nd_key, victim.nd_val)
      else None

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> false
  | Some nd ->
      unlink t nd;
      Hashtbl.remove t.tbl k;
      true

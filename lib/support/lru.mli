(** Capacity-bounded LRU maps.

    The receiver-side code caches must not grow with the number of
    {e distinct} origins a long-running site ever hears from — only
    with its current working set.  This is the classic O(1) bounded
    cache: a hash table over an intrusive doubly-linked recency list;
    [find] touches, [add] evicts the least-recently-used binding past
    [capacity] and hands it back to the caller (who may count or trace
    the eviction). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] unless [capacity >= 1]. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit becomes the most recently used binding. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert (or update) a binding, making it most recently used.
    Returns the evicted least-recently-used binding when the insert
    pushed the cache past capacity, [None] otherwise. *)

val remove : ('k, 'v) t -> 'k -> bool
(** [true] if the key was present. *)

(** Domain-safe metrics registry: counters, gauges, and
    {!Stats.Dist}-backed histograms.

    Instruments are plain mutable records owned by one domain; a
    parallel run gives each shard its own registry and calls
    {!merge_into} at quiescence, so the hot path has zero contention.

    The off path mirrors [Trace]: {!disabled} hands out shared dummy
    instruments that allocate and register nothing, and every bump is
    one load of the instrument's own on-flag plus a branch
    (zero-allocation, pinned by test_hotpath.ml). *)

type t
(** A registry.  One per domain/shard; never shared across domains
    while live. *)

type counter
type gauge

type histogram
(** Latency-style distribution with reservoir-estimated percentiles. *)

val create : ?label:string -> enabled:bool -> unit -> t
(** [label] names the instance in exports (e.g. ["shard3"]). *)

val disabled : t
(** Shared always-off registry: instrument constructors return
    preallocated dummies; bumps cost one load-and-branch. *)

val enabled : t -> bool
val label : t -> string

(** {1 Instruments} — idempotent by name on an enabled registry. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Hot-path bumps} — no-ops (one load-and-branch) when off. *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : gauge -> int -> unit
(** Records the value and tracks its high-water. *)

val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit
(** Like {!Stats.Dist.add_int}: int-to-float conversion inside the
    call, so hot loops pass an unboxed immediate. *)

(** {1 Reads} *)

val counter_name : counter -> string
val counter_value : counter -> int
val gauge_name : gauge -> string
val gauge_value : gauge -> int
val gauge_hiwater : gauge -> int
val histogram_name : histogram -> string
val histogram_dist : histogram -> Stats.Dist.t

val value : t -> string -> int
(** Counter value by name; 0 when never registered (does not create). *)

val counters : t -> counter list
(** In registration order; likewise {!gauges} and {!histograms}. *)

val gauges : t -> gauge list
val histograms : t -> histogram list

val merge_into : into:t -> t -> unit
(** Quiescence-time merge: counters sum, gauges sum with max'd
    high-water, histograms absorb reservoirs ({!Stats.Dist.absorb}).
    No-op unless both registries are enabled; [src] is unchanged. *)

(** {1 Exposition} *)

val to_prom : t -> string
(** Prometheus text format: counters/gauges as [tyco_<name>], gauges
    additionally as [tyco_<name>_hiwater], histograms as summaries with
    p50/p95/p99/p999 quantiles.  The registry label becomes an
    [instance] label. *)

val to_json : ?extra:(string * string) list -> t -> string
(** One-line JSON object (JSONL-friendly).  [extra] key/value pairs
    (values already JSON-encoded) lead the object — snapshot streams
    prepend timestamps this way. *)

type span = { trace_id : int; span_id : int; parent_id : int }

let null_span = { trace_id = 0; span_id = 0; parent_id = 0 }
let is_null s = s.span_id = 0

type pk =
  | Kmsg
  | Kobj
  | Kfetch_req
  | Kfetch_rep
  | Kns_register
  | Kns_lookup
  | Kns_reply
  | Kbatch  (* a coalesced Fbatch frame on the fabric track *)
  | Kprelease  (* importer-side lease refresh *)

(* What a [Reclaim] event freed. *)
type rc =
  | Rc_chan_export
  | Rc_class_export
  | Rc_done_req
  | Rc_code_cache
  | Rc_import_hold

type kind =
  | Thread_spawn
  | Run_slice of { instrs : int; cost : int }
  | Msg_park
  | Msg_unpark
  | Obj_park
  | Obj_unpark
  | Send of { pk : pk; bytes : int }
  | Deliver of { pk : pk; same_node : bool }
  | Obj_commit
  | Link_code of { bytes : int }
  | Retransmit of { attempt : int }
  | Ack
  | Timeout
  | Ns_serve
  | Flush_wait of { ns : int }
  | Reclaim of { rc : rc; n : int }
  | Lease_refresh of { chans : int; classes : int }
  | Stale_ref of { pk : pk }

type event = {
  ev_ts : int;
  ev_dur : int;
  ev_track : int;
  ev_span : span;
  ev_kind : kind;
}

let fabric_track = -1

let pk_name = function
  | Kmsg -> "msg"
  | Kobj -> "obj"
  | Kfetch_req -> "fetch-req"
  | Kfetch_rep -> "fetch-rep"
  | Kns_register -> "ns-register"
  | Kns_lookup -> "ns-lookup"
  | Kns_reply -> "ns-reply"
  | Kbatch -> "batch"
  | Kprelease -> "lease-refresh"

let rc_name = function
  | Rc_chan_export -> "chan-export"
  | Rc_class_export -> "class-export"
  | Rc_done_req -> "done-req"
  | Rc_code_cache -> "code-cache"
  | Rc_import_hold -> "import-hold"

let kind_name = function
  | Thread_spawn -> "thread-spawn"
  | Run_slice _ -> "run-slice"
  | Msg_park -> "msg-park"
  | Msg_unpark -> "msg-unpark"
  | Obj_park -> "obj-park"
  | Obj_unpark -> "obj-unpark"
  | Send { pk; _ } -> "send-" ^ pk_name pk
  | Deliver { pk; _ } -> "deliver-" ^ pk_name pk
  | Obj_commit -> "obj-commit"
  | Link_code _ -> "link-code"
  | Retransmit _ -> "retransmit"
  | Ack -> "ack"
  | Timeout -> "timeout"
  | Ns_serve -> "ns-serve"
  | Flush_wait _ -> "flush-wait"
  | Reclaim { rc; _ } -> "reclaim-" ^ rc_name rc
  | Lease_refresh _ -> "lease-refresh"
  | Stale_ref { pk } -> "stale-ref-" ^ pk_name pk

(* One bounded ring per track: the oldest entries are overwritten when
   the ring is full, so a long run keeps its recent history instead of
   growing without bound (the failure mode the unbounded packet log
   had).  Entries carry a global sequence number so a multi-track merge
   can restore emission order among equal timestamps. *)
type ring = {
  buf : (int * event) option array;
  mutable head : int; (* index of the oldest entry *)
  mutable len : int;
  mutable rg_dropped : int;
}

type t = {
  en : bool;
  capacity : int;
  span_base : int; (* span ids are [base + k * stride]: shard s of N *)
  span_stride : int; (* passes (s, N) so ids stay globally unique *)
  mutable next_id : int;
  mutable seq : int;
  rings : (int, ring) Hashtbl.t;
  mutable track_names : (int * string) list; (* newest first *)
  track_shards : (int, int) Hashtbl.t; (* track id -> owning shard *)
  mutable base_dropped : int; (* drops recorded by a loaded archive *)
}

let create ?(capacity = 65536) ?(span_base = 0) ?(span_stride = 1) ~enabled ()
    =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if span_stride <= 0 then invalid_arg "Trace.create: span_stride";
  { en = enabled;
    capacity;
    span_base;
    span_stride;
    next_id = 0;
    seq = 0;
    rings = Hashtbl.create 8;
    track_names = [];
    track_shards = Hashtbl.create 8;
    base_dropped = 0 }

let disabled = create ~capacity:1 ~enabled:false ()
let enabled t = t.en

let fresh_span t ~parent =
  if not t.en then null_span
  else begin
    t.next_id <- t.next_id + 1;
    let id = t.span_base + (t.next_id * t.span_stride) in
    if is_null parent then { trace_id = id; span_id = id; parent_id = 0 }
    else
      { trace_id = parent.trace_id; span_id = id;
        parent_id = parent.span_id }
  end

let register_track t ?shard ~id ~name () =
  if t.en then begin
    t.track_names <- (id, name) :: List.remove_assoc id t.track_names;
    match shard with
    | Some s -> Hashtbl.replace t.track_shards id s
    | None -> Hashtbl.remove t.track_shards id
  end

let track_shard t id = Hashtbl.find_opt t.track_shards id

let ring_of t track =
  match Hashtbl.find_opt t.rings track with
  | Some r -> r
  | None ->
      let r =
        { buf = Array.make t.capacity None; head = 0; len = 0; rg_dropped = 0 }
      in
      Hashtbl.add t.rings track r;
      r

let emit t ~ts ?(dur = 0) ~track ~span kind =
  if t.en then begin
    let r = ring_of t track in
    let ev = { ev_ts = ts; ev_dur = dur; ev_track = track; ev_span = span;
               ev_kind = kind }
    in
    let seq = t.seq in
    t.seq <- seq + 1;
    if r.len < t.capacity then begin
      r.buf.((r.head + r.len) mod t.capacity) <- Some (seq, ev);
      r.len <- r.len + 1
    end
    else begin
      r.buf.(r.head) <- Some (seq, ev);
      r.head <- (r.head + 1) mod t.capacity;
      r.rg_dropped <- r.rg_dropped + 1
    end
  end

let dropped t =
  Hashtbl.fold (fun _ r acc -> acc + r.rg_dropped) t.rings t.base_dropped

let tracks t = List.rev t.track_names

let events t =
  let all = ref [] in
  Hashtbl.iter
    (fun _ r ->
      for i = 0 to r.len - 1 do
        match r.buf.((r.head + i) mod t.capacity) with
        | Some e -> all := e :: !all
        | None -> ()
      done)
    t.rings;
  List.map snd
    (List.sort
       (fun (sa, a) (sb, b) ->
         match compare a.ev_ts b.ev_ts with 0 -> compare sa sb | c -> c)
       !all)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (Perfetto / chrome://tracing).               *)

let buf_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Chrome timestamps are microseconds; the virtual clock is ns. *)
let buf_ts b ns = Buffer.add_string b (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

let args_of_kind = function
  | Run_slice { instrs; cost } ->
      [ ("instrs", string_of_int instrs); ("cost_ns", string_of_int cost) ]
  | Send { bytes; _ } -> [ ("bytes", string_of_int bytes) ]
  | Deliver { same_node; _ } ->
      [ ("same_node", if same_node then "true" else "false") ]
  | Link_code { bytes } -> [ ("code_bytes", string_of_int bytes) ]
  | Retransmit { attempt } -> [ ("attempt", string_of_int attempt) ]
  | Flush_wait { ns } -> [ ("wait_ns", string_of_int ns) ]
  | Reclaim { n; _ } -> [ ("n", string_of_int n) ]
  | Lease_refresh { chans; classes } ->
      [ ("chans", string_of_int chans); ("classes", string_of_int classes) ]
  | _ -> []

let chrome_record b ~name ~ph ~ts ?dur ~pid ~span ?(extra = []) () =
  Buffer.add_string b "{\"name\":\"";
  buf_escaped b name;
  Buffer.add_string b "\",\"cat\":\"tyco\",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  buf_ts b ts;
  (match dur with
  | Some d ->
      Buffer.add_string b ",\"dur\":";
      buf_ts b d
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":0" pid);
  if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  if ph = "s" || ph = "f" then begin
    Buffer.add_string b (Printf.sprintf ",\"id\":%d" span.span_id);
    if ph = "f" then Buffer.add_string b ",\"bp\":\"e\""
  end;
  Buffer.add_string b
    (Printf.sprintf ",\"args\":{\"trace\":%d,\"span\":%d,\"parent\":%d"
       span.trace_id span.span_id span.parent_id);
  List.iter
    (fun (k, v) ->
      Buffer.add_string b ",\"";
      Buffer.add_string b k;
      Buffer.add_string b "\":";
      Buffer.add_string b v)
    extra;
  Buffer.add_string b "}}"

let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_char b '\n'
  in
  List.iter
    (fun (id, name) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":%d,\
            \"tid\":0,\"args\":{\"name\":\"" id);
      (* shard-tagged tracks (parallel runs) render as "shardN/name" *)
      (match Hashtbl.find_opt t.track_shards id with
      | Some s -> buf_escaped b (Printf.sprintf "shard%d/%s" s name)
      | None -> buf_escaped b name);
      Buffer.add_string b "\"}}")
    (tracks t);
  List.iter
    (fun ev ->
      let name = kind_name ev.ev_kind in
      let extra = args_of_kind ev.ev_kind in
      sep ();
      (match ev.ev_kind with
      | Run_slice _ ->
          chrome_record b ~name ~ph:"X" ~ts:ev.ev_ts ~dur:ev.ev_dur
            ~pid:ev.ev_track ~span:ev.ev_span ~extra ()
      | _ ->
          chrome_record b ~name ~ph:"i" ~ts:ev.ev_ts ~pid:ev.ev_track
            ~span:ev.ev_span ~extra ());
      (* cross-track causality: a flow arrow per packet span *)
      match ev.ev_kind with
      | Send _ ->
          sep ();
          chrome_record b ~name:"packet" ~ph:"s" ~ts:ev.ev_ts
            ~pid:ev.ev_track ~span:ev.ev_span ()
      | Deliver _ ->
          sep ();
          chrome_record b ~name:"packet" ~ph:"f" ~ts:ev.ev_ts
            ~pid:ev.ev_track ~span:ev.ev_span ()
      | _ -> ())
    (events t);
  Buffer.add_string b "\n]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Multi-collector merge (parallel runs).                              *)

(* Merge per-shard collectors into one shard-tagged collector, ordered
   by virtual timestamp (ties: shard id, then the shard's own emission
   order).  Site tracks are disjoint across shards, so the merged
   per-track rings never exceed the largest input capacity; the fabric
   track stays untagged (it belongs to the run, not a shard). *)
let merge parts =
  let parts = List.filter (fun (_, t) -> t.en) parts in
  let capacity =
    List.fold_left (fun acc (_, t) -> Stdlib.max acc t.capacity) 1 parts
  in
  let m = create ~capacity ~enabled:true () in
  List.iter
    (fun (shard, t) ->
      List.iter
        (fun (id, name) ->
          let shard = if id = fabric_track then None else Some shard in
          register_track m ?shard ~id ~name ())
        (tracks t))
    parts;
  let all = ref [] in
  List.iter
    (fun (shard, t) ->
      Hashtbl.iter
        (fun _ r ->
          for i = 0 to r.len - 1 do
            match r.buf.((r.head + i) mod t.capacity) with
            | Some (seq, ev) -> all := (shard, seq, ev) :: !all
            | None -> ()
          done)
        t.rings)
    parts;
  let sorted_evs =
    List.sort
      (fun (sa, qa, a) (sb, qb, b) ->
        match compare a.ev_ts b.ev_ts with
        | 0 -> ( match compare sa sb with 0 -> compare qa qb | c -> c)
        | c -> c)
      !all
  in
  List.iter
    (fun (_, _, ev) ->
      emit m ~ts:ev.ev_ts ~dur:ev.ev_dur ~track:ev.ev_track ~span:ev.ev_span
        ev.ev_kind)
    sorted_evs;
  m.base_dropped <- List.fold_left (fun acc (_, t) -> acc + dropped t) 0 parts;
  m

(* ------------------------------------------------------------------ *)
(* Binary archive (tyco-trace's input).                                 *)

let magic = "TYCT"

(* v2 added the [Kbatch] packet kind and the [Flush_wait] event; v3 the
   [Kprelease] kind and the resource-lifecycle events ([Reclaim],
   [Lease_refresh], [Stale_ref]); v4 adds a per-track shard tag
   (parallel runs tag each site track with its owning domain).  Older
   readers reject newer archives cleanly rather than misparse them;
   this reader still accepts v3 (shardless) archives. *)
let version = 4

let pk_tag = function
  | Kmsg -> 0 | Kobj -> 1 | Kfetch_req -> 2 | Kfetch_rep -> 3
  | Kns_register -> 4 | Kns_lookup -> 5 | Kns_reply -> 6 | Kbatch -> 7
  | Kprelease -> 8

let pk_of_tag = function
  | 0 -> Kmsg | 1 -> Kobj | 2 -> Kfetch_req | 3 -> Kfetch_rep
  | 4 -> Kns_register | 5 -> Kns_lookup | 6 -> Kns_reply | 7 -> Kbatch
  | 8 -> Kprelease
  | n -> raise (Wire.Malformed (Printf.sprintf "trace pk tag %d" n))

let rc_tag = function
  | Rc_chan_export -> 0 | Rc_class_export -> 1 | Rc_done_req -> 2
  | Rc_code_cache -> 3 | Rc_import_hold -> 4

let rc_of_tag = function
  | 0 -> Rc_chan_export | 1 -> Rc_class_export | 2 -> Rc_done_req
  | 3 -> Rc_code_cache | 4 -> Rc_import_hold
  | n -> raise (Wire.Malformed (Printf.sprintf "trace rc tag %d" n))

let encode_kind enc = function
  | Thread_spawn -> Wire.u8 enc 0
  | Run_slice { instrs; cost } ->
      Wire.u8 enc 1;
      Wire.varint enc instrs;
      Wire.varint enc cost
  | Msg_park -> Wire.u8 enc 2
  | Msg_unpark -> Wire.u8 enc 3
  | Obj_park -> Wire.u8 enc 4
  | Obj_unpark -> Wire.u8 enc 5
  | Send { pk; bytes } ->
      Wire.u8 enc 6;
      Wire.u8 enc (pk_tag pk);
      Wire.varint enc bytes
  | Deliver { pk; same_node } ->
      Wire.u8 enc 7;
      Wire.u8 enc (pk_tag pk);
      Wire.bool enc same_node
  | Obj_commit -> Wire.u8 enc 8
  | Link_code { bytes } ->
      Wire.u8 enc 9;
      Wire.varint enc bytes
  | Retransmit { attempt } ->
      Wire.u8 enc 10;
      Wire.varint enc attempt
  | Ack -> Wire.u8 enc 11
  | Timeout -> Wire.u8 enc 12
  | Ns_serve -> Wire.u8 enc 13
  | Flush_wait { ns } ->
      Wire.u8 enc 14;
      Wire.varint enc ns
  | Reclaim { rc; n } ->
      Wire.u8 enc 15;
      Wire.u8 enc (rc_tag rc);
      Wire.varint enc n
  | Lease_refresh { chans; classes } ->
      Wire.u8 enc 16;
      Wire.varint enc chans;
      Wire.varint enc classes
  | Stale_ref { pk } ->
      Wire.u8 enc 17;
      Wire.u8 enc (pk_tag pk)

let decode_kind dec =
  match Wire.read_u8 dec with
  | 0 -> Thread_spawn
  | 1 ->
      let instrs = Wire.read_varint dec in
      let cost = Wire.read_varint dec in
      Run_slice { instrs; cost }
  | 2 -> Msg_park
  | 3 -> Msg_unpark
  | 4 -> Obj_park
  | 5 -> Obj_unpark
  | 6 ->
      let pk = pk_of_tag (Wire.read_u8 dec) in
      let bytes = Wire.read_varint dec in
      Send { pk; bytes }
  | 7 ->
      let pk = pk_of_tag (Wire.read_u8 dec) in
      let same_node = Wire.read_bool dec in
      Deliver { pk; same_node }
  | 8 -> Obj_commit
  | 9 -> Link_code { bytes = Wire.read_varint dec }
  | 10 -> Retransmit { attempt = Wire.read_varint dec }
  | 11 -> Ack
  | 12 -> Timeout
  | 13 -> Ns_serve
  | 14 -> Flush_wait { ns = Wire.read_varint dec }
  | 15 ->
      let rc = rc_of_tag (Wire.read_u8 dec) in
      let n = Wire.read_varint dec in
      Reclaim { rc; n }
  | 16 ->
      let chans = Wire.read_varint dec in
      let classes = Wire.read_varint dec in
      Lease_refresh { chans; classes }
  | 17 -> Stale_ref { pk = pk_of_tag (Wire.read_u8 dec) }
  | n -> raise (Wire.Malformed (Printf.sprintf "trace kind tag %d" n))

type archive = {
  ar_tracks : (int * string) list;
  ar_shards : (int * int) list; (* track id -> shard; absent = untagged *)
  ar_dropped : int;
  ar_events : event list;
}

let serialize t =
  let enc = Wire.encoder () in
  String.iter (fun c -> Wire.u8 enc (Char.code c)) magic;
  Wire.u8 enc version;
  Wire.list enc
    (fun enc (id, name) ->
      Wire.zint enc id;
      Wire.string enc name;
      (* shard tag inline with its track; -1 = untagged *)
      Wire.zint enc
        (match Hashtbl.find_opt t.track_shards id with
        | Some s -> s
        | None -> -1))
    (tracks t);
  Wire.varint enc (dropped t);
  Wire.list enc
    (fun enc ev ->
      Wire.varint enc ev.ev_ts;
      Wire.varint enc ev.ev_dur;
      Wire.zint enc ev.ev_track;
      Wire.varint enc ev.ev_span.trace_id;
      Wire.varint enc ev.ev_span.span_id;
      Wire.varint enc ev.ev_span.parent_id;
      encode_kind enc ev.ev_kind)
    (events t);
  Wire.to_string enc

let deserialize s =
  let dec = Wire.decoder s in
  String.iter
    (fun c ->
      if Wire.read_u8 dec <> Char.code c then
        raise (Wire.Malformed "not a tyco trace archive"))
    magic;
  let v = Wire.read_u8 dec in
  if v <> version && v <> 3 then
    raise (Wire.Malformed (Printf.sprintf "trace archive version %d" v));
  let tagged =
    Wire.read_list dec (fun dec ->
        let id = Wire.read_zint dec in
        let name = Wire.read_string dec in
        let shard = if v >= 4 then Wire.read_zint dec else -1 in
        (id, name, shard))
  in
  let ar_tracks = List.map (fun (id, name, _) -> (id, name)) tagged in
  let ar_shards =
    List.filter_map
      (fun (id, _, s) -> if s < 0 then None else Some (id, s))
      tagged
  in
  let ar_dropped = Wire.read_varint dec in
  let ar_events =
    Wire.read_list dec (fun dec ->
        let ev_ts = Wire.read_varint dec in
        let ev_dur = Wire.read_varint dec in
        let ev_track = Wire.read_zint dec in
        let trace_id = Wire.read_varint dec in
        let span_id = Wire.read_varint dec in
        let parent_id = Wire.read_varint dec in
        let ev_kind = decode_kind dec in
        { ev_ts; ev_dur; ev_track;
          ev_span = { trace_id; span_id; parent_id }; ev_kind })
  in
  { ar_tracks; ar_shards; ar_dropped; ar_events }

let of_archive ar =
  let t =
    create ~capacity:(max 1 (List.length ar.ar_events)) ~enabled:true ()
  in
  List.iter
    (fun (id, name) ->
      register_track t ?shard:(List.assoc_opt id ar.ar_shards) ~id ~name ())
    ar.ar_tracks;
  List.iter
    (fun ev ->
      emit t ~ts:ev.ev_ts ~dur:ev.ev_dur ~track:ev.ev_track ~span:ev.ev_span
        ev.ev_kind)
    ar.ar_events;
  t.base_dropped <- ar.ar_dropped;
  t

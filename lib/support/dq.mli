(** Mutable growable ring-buffer deques.

    The virtual machine's run-queue and the sites' incoming/outgoing
    queues are hot paths: the VM context-switches every few tens of
    instructions (paper §1), so enqueue/dequeue must be O(1) with no
    allocation in the steady state. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option

val pop_front_exn : 'a t -> 'a
(** Non-allocating pop for hot paths where the caller has already
    checked {!is_empty} (the option-returning variants allocate a
    [Some] per call).  Raises [Invalid_argument] when empty. *)

val pop_back_exn : 'a t -> 'a
val peek_front : 'a t -> 'a option

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list
(** Front-to-back order. *)

val of_list : 'a list -> 'a t

(** Bounded lock-free single-producer/single-consumer ring.

    The cross-domain handoff primitive of the parallel runtime: one
    ring per ordered domain pair carries envelope batches from exactly
    one producer domain to exactly one consumer domain.  The contract
    is strict SPSC — [try_push] may only ever be called from one
    domain and [pop_exn]/[try_pop] from one (possibly different)
    domain; neither end takes a lock.

    The layout is tuned against false sharing and redundant
    synchronization (PR 9): the producer-written fields ([tail], the
    occupancy high-water, the producer's cached view of [head]) and
    the consumer-written fields ([head], the cached view of [tail])
    occupy separate cache lines, and each side re-reads the opposing
    atomic counter only when its cached copy says the ring looks
    full/empty — a stale copy is conservative because both counters
    are monotone.  Slots are unboxed (['a], not ['a option]), so a
    steady-state push/pop pair performs two plain slot accesses and
    two atomic stores, and allocates nothing (pinned by
    test_hotpath.ml).

    Correctness under the OCaml 5 memory model: the producer publishes
    the slot with a plain write and then advances [tail] with an
    atomic store; the consumer reads [tail] atomically before reading
    the slot, which establishes the happens-before edge that makes the
    slot contents visible.  The mirrored argument covers the
    consumer's slot clear and [head] advance.

    Capacity is rounded up to a power of two so index masking replaces
    modulo.  The ring never resizes: a full ring makes [try_push]
    return [false] and the producer decides how to back off (the
    parallel runtime drains its own inbound rings while waiting, which
    breaks push-push deadlock cycles). *)

type 'a t

exception Empty
(** Raised by {!pop_exn} on an empty ring.  Preallocated — raising it
    does not allocate. *)

val create : capacity:int -> 'a t
(** [create ~capacity] rounds [capacity] up to a power of two
    (minimum 2).  Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer side only.  [false] when the ring is full.  Never
    allocates. *)

val pop_exn : 'a t -> 'a
(** Consumer side only.  Raises {!Empty} when the ring is empty.
    Never allocates — the hot-path pop. *)

val try_pop : 'a t -> 'a option
(** Consumer side only.  [None] when the ring is empty.  Allocates the
    [Some]; convenience wrapper over {!pop_exn} for tests and cold
    paths. *)

val is_empty : 'a t -> bool
(** Snapshot; exact when called from either endpoint while the other
    side is quiescent (how the runtime uses it: post-run drain
    assertions). *)

val length : 'a t -> int
(** Snapshot occupancy, same caveat as {!is_empty}. *)

val pushed : 'a t -> int
(** Total elements ever pushed (monotone; read from any domain). *)

val popped : 'a t -> int
(** Total elements ever popped (monotone; read from any domain). *)

val hiwater : 'a t -> int
(** Occupancy high-water observed at push time, against the producer's
    cached view of [head] — an upper bound on true occupancy, clamped
    to the capacity.  Producer-written plain field: exact when read
    from the producer domain or after it joined; a benign stale read
    elsewhere. *)

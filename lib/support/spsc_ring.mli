(** Bounded lock-free single-producer/single-consumer ring.

    The cross-domain handoff primitive of the parallel runtime: one
    ring per ordered domain pair carries packet envelopes from exactly
    one producer domain to exactly one consumer domain.  The contract
    is strict SPSC — [try_push] may only ever be called from one
    domain and [try_pop] from one (possibly different) domain; neither
    end takes a lock, so a handoff costs two atomic operations and the
    slot write.

    Correctness under the OCaml 5 memory model: the producer publishes
    the slot with a plain write and then advances [tail] with an
    atomic store; the consumer reads [tail] atomically before reading
    the slot, which establishes the happens-before edge that makes the
    slot contents visible.  The mirrored argument covers the consumer's
    slot clear and [head] advance.

    Capacity is rounded up to a power of two so index masking replaces
    modulo.  The ring never resizes: a full ring makes [try_push]
    return [false] and the producer decides how to back off (the
    parallel runtime drains its own inbound rings while waiting, which
    breaks push-push deadlock cycles). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] rounds [capacity] up to a power of two
    (minimum 2).  Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** Producer side only.  [false] when the ring is full. *)

val try_pop : 'a t -> 'a option
(** Consumer side only.  [None] when the ring is empty. *)

val is_empty : 'a t -> bool
(** Snapshot; exact when called from either endpoint while the other
    side is quiescent (how the runtime uses it: post-run drain
    assertions). *)

val length : 'a t -> int
(** Snapshot occupancy, same caveat as {!is_empty}. *)

val pushed : 'a t -> int
(** Total elements ever pushed (monotone; read from any domain). *)

val popped : 'a t -> int
(** Total elements ever popped (monotone; read from any domain). *)

val hiwater : 'a t -> int
(** Occupancy high-water observed at push time.  Producer-written plain
    field: exact when read from the producer domain or after it joined;
    a benign stale read elsewhere. *)

(* A growable bytes encoder rather than a [Buffer.t]: the buffer is
   reusable via [reset], so hot paths can keep one encoder alive (or
   borrow one from the small pool behind [with_encoder]) and pay no
   per-encode allocation beyond the final string. *)
type enc = { mutable buf : Bytes.t; mutable len : int }

let encoder ?(size = 64) () = { buf = Bytes.create (max 16 size); len = 0 }
let to_string e = Bytes.sub_string e.buf 0 e.len
let size e = e.len
let reset e = e.len <- 0
let blit_to_bytes e dst pos = Bytes.blit e.buf 0 dst pos e.len

let ensure e n =
  let need = e.len + n in
  let cap = Bytes.length e.buf in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while need > !cap' do
      cap' := !cap' * 2
    done;
    let b = Bytes.create !cap' in
    Bytes.blit e.buf 0 b 0 e.len;
    e.buf <- b
  end

let add_char e c =
  ensure e 1;
  Bytes.unsafe_set e.buf e.len c;
  e.len <- e.len + 1

(* Bounded free-list of encoders.  Buffers keep their grown capacity
   across uses, so steady-state encoding of similar-sized packets does
   not touch the allocator at all.  The pool is domain-local: a
   module-global free-list would be mutated without synchronization by
   every domain that encodes a packet, so each domain gets its own
   (lazily created, at most [pool_max] encoders each). *)
type pool = { mutable free : enc list; mutable free_len : int }

let pool_max = 8
let pool_key = Domain.DLS.new_key (fun () -> { free = []; free_len = 0 })

let with_encoder ?size f =
  let pool = Domain.DLS.get pool_key in
  let e =
    match pool.free with
    | e :: rest ->
        pool.free <- rest;
        pool.free_len <- pool.free_len - 1;
        reset e;
        (match size with Some n -> ensure e n | None -> ());
        e
    | [] -> encoder ?size ()
  in
  let release () =
    if pool.free_len < pool_max then begin
      pool.free <- e :: pool.free;
      pool.free_len <- pool.free_len + 1
    end
  in
  match f e with
  | () ->
      let s = to_string e in
      release ();
      s
  | exception exn ->
      release ();
      raise exn

let u8 enc v =
  if v < 0 || v > 0xff then invalid_arg "Wire.u8";
  add_char enc (Char.chr v)

(* LEB128 over the raw bit pattern: logical shifts terminate even when
   the int's top bit is set, so the full range round-trips. *)
let raw_varint enc v =
  let rec go v =
    if v >= 0 && v < 0x80 then add_char enc (Char.chr v)
    else begin
      add_char enc (Char.chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let varint enc v =
  if v < 0 then invalid_arg "Wire.varint: negative";
  raw_varint enc v

let zint enc v =
  (* zigzag: maps 0,-1,1,-2,... to the bit patterns 0,1,2,3,... *)
  let z = (v lsl 1) lxor (v asr (Sys.int_size - 1)) in
  raw_varint enc z

let bool enc b = u8 enc (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Size arithmetic: the number of bytes each writer above would emit,
   without allocating a buffer.  Kept next to the writers so a format
   change cannot drift silently — the test suite asserts
   [measured = String.length encoded] over every packet constructor. *)

let varint_size v =
  let rec go v n = if v >= 0 && v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

let zint_size v = varint_size ((v lsl 1) lxor (v asr (Sys.int_size - 1)))
let string_size s = varint_size (String.length s) + String.length s

let float enc f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    add_char enc
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let string enc s =
  varint enc (String.length s);
  ensure enc (String.length s);
  Bytes.blit_string s 0 enc.buf enc.len (String.length s);
  enc.len <- enc.len + String.length s

let list enc f xs =
  varint enc (List.length xs);
  List.iter (f enc) xs

let option enc f = function
  | None -> u8 enc 0
  | Some x ->
      u8 enc 1;
      f enc x

let pair enc fa fb (a, b) =
  fa enc a;
  fb enc b

type dec = { data : string; mutable pos : int }

exception Malformed of string

let decoder data = { data; pos = 0 }
let remaining d = String.length d.data - d.pos
let at_end d = remaining d = 0
let fail msg = raise (Malformed msg)

let read_u8 d =
  if d.pos >= String.length d.data then fail "u8: truncated";
  let c = Char.code d.data.[d.pos] in
  d.pos <- d.pos + 1;
  c

let read_varint d =
  let rec go shift acc =
    if shift > Sys.int_size then fail "varint: overflow";
    let b = read_u8 d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zint d =
  let z = read_varint d in
  (z lsr 1) lxor (-(z land 1))

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> fail (Printf.sprintf "bool: byte %d" n)

let read_float d =
  let bits = ref 0L in
  for i = 0 to 7 do
    let b = read_u8 d in
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int b) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_string d =
  let len = read_varint d in
  if len > remaining d then fail "string: truncated";
  let s = String.sub d.data d.pos len in
  d.pos <- d.pos + len;
  s

let read_list d f =
  let len = read_varint d in
  if len > remaining d then fail "list: length exceeds input";
  List.init len (fun _ -> f d)

let read_option d f =
  match read_u8 d with
  | 0 -> None
  | 1 -> Some (f d)
  | n -> fail (Printf.sprintf "option: tag %d" n)

let read_pair d fa fb =
  let a = fa d in
  let b = fb d in
  (a, b)

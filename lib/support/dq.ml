(* Storage is a plain ['a array] with an untyped sentinel in the free
   slots rather than an ['a option array]: the run-queue pushes and pops
   a thread record per context switch, and the [Some] written on every
   push (plus the one returned by every pop) was measurable allocation
   on the E1 hot path.  The sentinel is an immediate, so [Array.make]
   never specializes to a flat float array; popped slots are reset to it
   so the deque does not retain popped elements. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let sentinel : 'a. unit -> 'a = fun () -> Obj.magic 0

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity (sentinel ()); head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let index t i = (t.head + i) mod Array.length t.buf

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (cap * 2) (sentinel ()) in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.(index t i)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.(index t t.len) <- x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.head <- (t.head + cap - 1) mod cap;
  t.buf.(t.head) <- x;
  t.len <- t.len + 1

let pop_front_exn t =
  if t.len = 0 then invalid_arg "Dq.pop_front_exn: empty";
  let x = t.buf.(t.head) in
  t.buf.(t.head) <- sentinel ();
  t.head <- index t 1;
  t.len <- t.len - 1;
  x

let pop_front t = if t.len = 0 then None else Some (pop_front_exn t)

let pop_back_exn t =
  if t.len = 0 then invalid_arg "Dq.pop_back_exn: empty";
  let i = index t (t.len - 1) in
  let x = t.buf.(i) in
  t.buf.(i) <- sentinel ();
  t.len <- t.len - 1;
  x

let pop_back t = if t.len = 0 then None else Some (pop_back_exn t)
let peek_front t = if t.len = 0 then None else Some t.buf.(t.head)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) (sentinel ());
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(index t i)
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.buf.(index t i) :: !acc
  done;
  !acc

let of_list xs =
  let t = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push_back t) xs;
  t

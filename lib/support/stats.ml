module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }
  let name t = t.name
  let incr t = t.value <- t.value + 1
  let add t n = t.value <- t.value + n
  let value t = t.value
  let reset t = t.value <- 0
end

module Dist = struct
  (* Reservoir cap: long runs (millions of latency samples) previously
     accumulated every sample as a cons list; past this many, Vitter's
     algorithm R keeps a uniform sample instead.  [n]/[sum]/[lo]/[hi]
     stay exact streaming values; percentiles become estimates. *)
  let reservoir_cap = 8192

  (* The reservoir grows geometrically on demand instead of being
     preallocated at [reservoir_cap]: a cluster registers a dozen
     distributions and most never see a sample, so eager 8192-float
     arrays (64 KB zeroed each) dominated Cluster/Site creation — the
     single largest source of the E1 hot-path regression.  The exact
     streaming accumulators live in one unboxed float array because
     mutable float fields of this mixed record would re-box on every
     [add]: acc.(0) = sum, acc.(1) = lo, acc.(2) = hi. *)
  type t = {
    name : string;
    mutable reservoir : float array; (* first [filled] slots are live *)
    mutable filled : int;
    rng : Prng.t; (* deterministic: seeded from the name *)
    mutable n : int;
    acc : float array;
    mutable sorted : float array option; (* cache invalidated by add *)
  }

  let create name =
    { name;
      reservoir = [||];
      filled = 0;
      rng = Prng.create (Hashtbl.hash name);
      n = 0;
      acc = [| 0.; infinity; neg_infinity |];
      sorted = None }

  let name t = t.name

  let add t x =
    if t.filled < reservoir_cap then begin
      if t.filled = Array.length t.reservoir then begin
        let cap =
          Stdlib.min reservoir_cap (Stdlib.max 16 (2 * t.filled))
        in
        let bigger = Array.make cap 0. in
        Array.blit t.reservoir 0 bigger 0 t.filled;
        t.reservoir <- bigger
      end;
      Array.unsafe_set t.reservoir t.filled x;
      t.filled <- t.filled + 1;
      if t.sorted != None then t.sorted <- None
    end
    else begin
      (* algorithm R: keep the new sample with probability cap/(n+1) *)
      let j = Prng.int t.rng (t.n + 1) in
      if j < reservoir_cap then begin
        t.reservoir.(j) <- x;
        t.sorted <- None
      end
    end;
    t.n <- t.n + 1;
    let acc = t.acc in
    Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. x);
    if x < Array.unsafe_get acc 1 then Array.unsafe_set acc 1 x;
    if x > Array.unsafe_get acc 2 then Array.unsafe_set acc 2 x

  (* Integer entry point: the conversion happens inside the call, so
     hot loops recording counts/depths pass an unboxed int instead of
     allocating a boxed float argument per sample. *)
  let add_int t n = add t (float_of_int n)

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.acc.(0) /. float_of_int t.n
  let min t = t.acc.(1)
  let max t = t.acc.(2)
  let samples t = Array.sub t.reservoir 0 t.filled

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = samples t in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  (* Linear interpolation between closest ranks (the R-7/NumPy default)
     instead of nearest-rank: on an 8192-cap reservoir the tail
     percentiles (p999 spans ~8 retained samples) otherwise jump whole
     sample-widths between runs. *)
  let percentile t p =
    if t.n = 0 then invalid_arg "Dist.percentile: no samples";
    let a = sorted t in
    let k = Array.length a in
    if k = 1 then a.(0)
    else begin
      let p = if p < 0. then 0. else if p > 1. then 1. else p in
      let h = p *. float_of_int (k - 1) in
      let i = Stdlib.min (int_of_float h) (k - 2) in
      let frac = h -. float_of_int i in
      a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
    end

  type summary = {
    s_n : int;
    s_mean : float;
    s_min : float;
    s_max : float;
    s_p50 : float;
    s_p95 : float;
    s_p99 : float;
    s_p999 : float;
  }

  let summary_opt t =
    if t.n = 0 then None
    else
      Some
        { s_n = t.n; s_mean = mean t; s_min = min t; s_max = max t;
          s_p50 = percentile t 0.5; s_p95 = percentile t 0.95;
          s_p99 = percentile t 0.99; s_p999 = percentile t 0.999 }

  (* Merge [o]'s observations into [t]: the exact streaming accumulators
     (n/sum/lo/hi) merge exactly; [o]'s retained reservoir folds into
     [t]'s (append below the cap, algorithm-R replacement above it), so
     merged percentiles stay estimates of the union.  [o] is unchanged.
     This is the quiescence-time path for per-domain histograms. *)
  let absorb t o =
    if o.n > 0 then begin
      let virt = ref t.n in
      for i = 0 to o.filled - 1 do
        let x = Array.unsafe_get o.reservoir i in
        if t.filled < reservoir_cap then begin
          if t.filled = Array.length t.reservoir then begin
            let cap =
              Stdlib.min reservoir_cap (Stdlib.max 16 (2 * t.filled))
            in
            let bigger = Array.make cap 0. in
            Array.blit t.reservoir 0 bigger 0 t.filled;
            t.reservoir <- bigger
          end;
          t.reservoir.(t.filled) <- x;
          t.filled <- t.filled + 1
        end
        else begin
          let j = Prng.int t.rng (!virt + 1) in
          if j < reservoir_cap then t.reservoir.(j) <- x
        end;
        incr virt
      done;
      t.sorted <- None;
      t.n <- t.n + o.n;
      let acc = t.acc and oacc = o.acc in
      acc.(0) <- acc.(0) +. oacc.(0);
      if oacc.(1) < acc.(1) then acc.(1) <- oacc.(1);
      if oacc.(2) > acc.(2) then acc.(2) <- oacc.(2)
    end

  let reset t =
    t.filled <- 0;
    t.n <- 0;
    t.acc.(0) <- 0.;
    t.acc.(1) <- infinity;
    t.acc.(2) <- neg_infinity;
    t.sorted <- None

  let pp_summary ppf t =
    if t.n = 0 then Format.fprintf ppf "%s: (no samples)" t.name
    else
      Format.fprintf ppf
        "%s: n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
        t.name t.n (mean t) (min t) (percentile t 0.5) (percentile t 0.95)
        (percentile t 0.99) (max t)
end

type t = {
  counters : (string, Counter.t) Hashtbl.t;
  dists : (string, Dist.t) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () =
  { counters = Hashtbl.create 16; dists = Hashtbl.create 16; order = [] }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.create name in
      Hashtbl.add t.counters name c;
      t.order <- name :: t.order;
      c

let dist t name =
  match Hashtbl.find_opt t.dists name with
  | Some d -> d
  | None ->
      let d = Dist.create name in
      Hashtbl.add t.dists name d;
      t.order <- name :: t.order;
      d

let counter_value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Counter.value c
  | None -> 0

let counters t =
  List.filter_map (Hashtbl.find_opt t.counters) (List.rev t.order)

let dists t = List.filter_map (Hashtbl.find_opt t.dists) (List.rev t.order)

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ d -> Dist.reset d) t.dists

let pp ppf t =
  List.iter
    (fun c ->
      Format.fprintf ppf "%s = %d@." (Counter.name c) (Counter.value c))
    (counters t);
  List.iter (fun d -> Format.fprintf ppf "%a@." Dist.pp_summary d) (dists t)

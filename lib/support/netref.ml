type kind = Channel | Class

type t = { heap_id : int; site_id : int; ip : int; kind : kind }

let make ~kind ~heap_id ~site_id ~ip = { heap_id; site_id; ip; kind }
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash = Hashtbl.hash

let pp ppf t =
  Format.fprintf ppf "%s(%d@%d.%d)"
    (match t.kind with Channel -> "chan" | Class -> "class")
    t.heap_id t.site_id t.ip

let encode enc t =
  Wire.u8 enc (match t.kind with Channel -> 0 | Class -> 1);
  Wire.varint enc t.heap_id;
  Wire.varint enc t.site_id;
  Wire.varint enc t.ip

let byte_size t =
  1 + Wire.varint_size t.heap_id + Wire.varint_size t.site_id
  + Wire.varint_size t.ip

let decode dec =
  let kind =
    match Wire.read_u8 dec with
    | 0 -> Channel
    | 1 -> Class
    | n -> raise (Wire.Malformed (Printf.sprintf "netref kind %d" n))
  in
  let heap_id = Wire.read_varint dec in
  let site_id = Wire.read_varint dec in
  let ip = Wire.read_varint dec in
  { heap_id; site_id; ip; kind }

module Key = struct
  type nonrec t = t

  let compare = compare
  let equal = equal
  let hash = hash
end

module Map = Map.Make (Key)
module Tbl = Hashtbl.Make (Key)

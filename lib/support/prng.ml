type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the OCaml int is non-negative *)
  let v = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (* 53 significant bits, as in the standard doubles trick *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split t = { state = mix64 (next t) }

(* Pure derivation: no generator is consumed, so every owner can
   compute its own stream from the run seed independently — the
   per-owner discipline the parallel runtime relies on (each shard
   seeds its simulator with [for_owner ~seed ~owner:shard] before its
   domain starts; no [t] is ever shared across domains). *)
let for_owner ~seed ~owner =
  { state =
      mix64
        (Int64.add (Int64.of_int seed)
           (Int64.mul golden_gamma (Int64.of_int (owner + 1)))) }

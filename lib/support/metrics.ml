(* Domain-safe metrics registry.

   Instruments (counters / gauges / histograms) are plain mutable
   records owned by exactly one domain: a parallel run gives each shard
   its own registry and merges them with [merge_into] at quiescence, so
   the hot path never touches an atomic or a lock.

   The disabled path mirrors [Trace]: [disabled] is a shared singleton
   whose instrument constructors return preallocated dummies without
   touching a hashtable, and every bump is guarded by one load of the
   instrument's own [*_on] flag and a branch — test_hotpath.ml pins the
   zero-allocation claim. *)

type counter = { c_on : bool; c_name : string; mutable c_v : int }

type gauge = {
  g_on : bool;
  g_name : string;
  mutable g_v : int;
  mutable g_hi : int; (* high-water of [g_v] since creation *)
}

type histogram = { h_on : bool; h_name : string; h_dist : Stats.Dist.t }

type kind = C | G | H

type t = {
  en : bool;
  label : string;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histos : (string, histogram) Hashtbl.t;
  mutable order : (kind * string) list; (* registration order, newest first *)
}

let create ?(label = "") ~enabled () =
  { en = enabled;
    label;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histos = Hashtbl.create 16;
    order = [] }

let disabled = create ~enabled:false ()
let enabled t = t.en
let label t = t.label

(* Shared dummies handed out by the disabled registry: constructors on
   the off path allocate nothing and register nothing. *)
let dummy_counter = { c_on = false; c_name = ""; c_v = 0 }
let dummy_gauge = { g_on = false; g_name = ""; g_v = 0; g_hi = 0 }

let dummy_histogram =
  { h_on = false; h_name = ""; h_dist = Stats.Dist.create "disabled" }

let counter t name =
  if not t.en then dummy_counter
  else
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = { c_on = true; c_name = name; c_v = 0 } in
        Hashtbl.add t.counters name c;
        t.order <- (C, name) :: t.order;
        c

let gauge t name =
  if not t.en then dummy_gauge
  else
    match Hashtbl.find_opt t.gauges name with
    | Some g -> g
    | None ->
        let g = { g_on = true; g_name = name; g_v = 0; g_hi = 0 } in
        Hashtbl.add t.gauges name g;
        t.order <- (G, name) :: t.order;
        g

let histogram t name =
  if not t.en then dummy_histogram
  else
    match Hashtbl.find_opt t.histos name with
    | Some h -> h
    | None ->
        let h = { h_on = true; h_name = name; h_dist = Stats.Dist.create name } in
        Hashtbl.add t.histos name h;
        t.order <- (H, name) :: t.order;
        h

(* ------------------------------------------------------------------ *)
(* Hot-path bumps: one load-and-branch when off.                       *)

let incr c = if c.c_on then c.c_v <- c.c_v + 1
let add c n = if c.c_on then c.c_v <- c.c_v + n

let set g v =
  if g.g_on then begin
    g.g_v <- v;
    if v > g.g_hi then g.g_hi <- v
  end

let observe h x = if h.h_on then Stats.Dist.add h.h_dist x
let observe_int h n = if h.h_on then Stats.Dist.add_int h.h_dist n

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)

let counter_name c = c.c_name
let counter_value c = c.c_v
let gauge_name g = g.g_name
let gauge_value g = g.g_v
let gauge_hiwater g = g.g_hi
let histogram_name h = h.h_name
let histogram_dist h = h.h_dist

let value t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c.c_v
  | None -> 0

let fold_ordered t fc fg fh acc =
  List.fold_left
    (fun acc (kind, name) ->
      match kind with
      | C -> fc acc (Hashtbl.find t.counters name)
      | G -> fg acc (Hashtbl.find t.gauges name)
      | H -> fh acc (Hashtbl.find t.histos name))
    acc
    (List.rev t.order)

let counters t =
  List.rev (fold_ordered t (fun a c -> c :: a) (fun a _ -> a) (fun a _ -> a) [])

let gauges t =
  List.rev (fold_ordered t (fun a _ -> a) (fun a g -> g :: a) (fun a _ -> a) [])

let histograms t =
  List.rev (fold_ordered t (fun a _ -> a) (fun a _ -> a) (fun a h -> h :: a) [])

(* ------------------------------------------------------------------ *)
(* Merge (quiescence-time): counters sum, gauges sum with max'd
   high-water (per-shard occupancy-style gauges add up; the merged
   high-water is conservative), histograms absorb reservoirs.          *)

let merge_into ~into src =
  if into.en && src.en then begin
    List.iter
      (fun c -> add (counter into c.c_name) c.c_v)
      (counters src);
    List.iter
      (fun g ->
        let m = gauge into g.g_name in
        m.g_v <- m.g_v + g.g_v;
        if g.g_hi > m.g_hi then m.g_hi <- g.g_hi;
        if m.g_v > m.g_hi then m.g_hi <- m.g_v)
      (gauges src);
    List.iter
      (fun h -> Stats.Dist.absorb (histogram into h.h_name).h_dist h.h_dist)
      (histograms src)
  end

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let prom_labels t =
  if t.label = "" then "" else Printf.sprintf "{instance=\"%s\"}" t.label

let to_prom t =
  let b = Buffer.create 1024 in
  let lbl = prom_labels t in
  List.iter
    (fun c ->
      let n = sanitize c.c_name in
      Buffer.add_string b (Printf.sprintf "# TYPE tyco_%s counter\n" n);
      Buffer.add_string b (Printf.sprintf "tyco_%s%s %d\n" n lbl c.c_v))
    (counters t);
  List.iter
    (fun g ->
      let n = sanitize g.g_name in
      Buffer.add_string b (Printf.sprintf "# TYPE tyco_%s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "tyco_%s%s %d\n" n lbl g.g_v);
      Buffer.add_string b (Printf.sprintf "# TYPE tyco_%s_hiwater gauge\n" n);
      Buffer.add_string b (Printf.sprintf "tyco_%s_hiwater%s %d\n" n lbl g.g_hi))
    (gauges t);
  List.iter
    (fun h ->
      let n = sanitize h.h_name in
      Buffer.add_string b (Printf.sprintf "# TYPE tyco_%s summary\n" n);
      match Stats.Dist.summary_opt h.h_dist with
      | None ->
          Buffer.add_string b (Printf.sprintf "tyco_%s_count%s 0\n" n lbl)
      | Some s ->
          let q p v =
            let ql =
              if t.label = "" then Printf.sprintf "{quantile=\"%s\"}" p
              else
                Printf.sprintf "{instance=\"%s\",quantile=\"%s\"}" t.label p
            in
            Buffer.add_string b (Printf.sprintf "tyco_%s%s %.6g\n" n ql v)
          in
          q "0.5" s.Stats.Dist.s_p50;
          q "0.95" s.Stats.Dist.s_p95;
          q "0.99" s.Stats.Dist.s_p99;
          q "0.999" s.Stats.Dist.s_p999;
          Buffer.add_string b
            (Printf.sprintf "tyco_%s_sum%s %.6g\n" n lbl
               (s.Stats.Dist.s_mean *. float_of_int s.Stats.Dist.s_n));
          Buffer.add_string b
            (Printf.sprintf "tyco_%s_count%s %d\n" n lbl s.Stats.Dist.s_n))
    (histograms t);
  Buffer.contents b

(* One-line JSON object (JSONL-friendly).  [extra] key/value pairs —
   values already JSON-encoded — lead the object, so snapshot streams
   can prepend timestamps without re-parsing. *)
let to_json ?(extra = []) t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
  in
  List.iter
    (fun (k, v) ->
      sep ();
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
    extra;
  if t.label <> "" then begin
    sep ();
    Buffer.add_string b (Printf.sprintf "\"instance\":\"%s\"" t.label)
  end;
  List.iter
    (fun c ->
      sep ();
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" c.c_name c.c_v))
    (counters t);
  List.iter
    (fun g ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%d,\"%s_hiwater\":%d" g.g_name g.g_v g.g_name
           g.g_hi))
    (gauges t);
  List.iter
    (fun h ->
      sep ();
      match Stats.Dist.summary_opt h.h_dist with
      | None -> Buffer.add_string b (Printf.sprintf "\"%s\":null" h.h_name)
      | Some s ->
          Buffer.add_string b
            (Printf.sprintf
               "\"%s\":{\"n\":%d,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,\
                \"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g,\"p999\":%.6g}"
               h.h_name s.Stats.Dist.s_n s.Stats.Dist.s_mean
               s.Stats.Dist.s_min s.Stats.Dist.s_max s.Stats.Dist.s_p50
               s.Stats.Dist.s_p95 s.Stats.Dist.s_p99 s.Stats.Dist.s_p999))
    (histograms t);
  Buffer.add_char b '}';
  Buffer.contents b

(** Causal tracing: per-site bounded event rings with explicit
    parent/child spans.

    The paper's performance story (§1/§5) — fine-grained threads,
    latency hiding, the same-node optimization — is about {e where a
    message's latency goes} as it crosses site → node → wire → site.
    This module records that journey as a tree of {e spans}: every VM
    thread, packet transmission and protocol step gets a span whose
    parent is the span that caused it, stamped with the simulation's
    virtual clock.  Because the simulation is deterministic (same
    program, same seed, same event order), the trace is byte-identical
    across reruns — it is a reproducible artifact, not a sampling.

    A collector is either {e enabled} or {e disabled} at creation.
    Disabled collectors never allocate spans ({!fresh_span} returns
    {!null_span}) and {!emit} returns immediately; hot paths guard
    event-payload construction behind {!enabled} so tracing costs one
    load-and-branch when off. *)

(** {1 Spans} *)

(** A node in the causal tree.  [trace_id] names the tree (it equals
    the root's [span_id]); [parent_id] is [0] at roots.  Span ids are
    allocated from a single per-collector counter, so they are unique
    across all sites of a run and deterministic in creation order. *)
type span = { trace_id : int; span_id : int; parent_id : int }

val null_span : span
(** The no-trace sentinel (all fields [0]); emitted by disabled
    collectors and carried by untraced packets. *)

val is_null : span -> bool

(** {1 Events} *)

(** What kind of packet a [Send]/[Deliver] event moved. *)
type pk =
  | Kmsg          (** SHIPM: remote method invocation *)
  | Kobj          (** SHIPO: object migration *)
  | Kfetch_req
  | Kfetch_rep
  | Kns_register
  | Kns_lookup
  | Kns_reply
  | Kbatch
      (** a coalesced [Fbatch] frame (N packets to one node) moving on
          the fabric track; the member packets keep their own spans *)
  | Kprelease
      (** a [Prelease] lease-refresh packet: the refs an importer still
          holds, sent back to their exporter *)

(** What a {!kind.Reclaim} event freed. *)
type rc =
  | Rc_chan_export   (** channel export whose lease expired *)
  | Rc_class_export  (** class export whose lease expired *)
  | Rc_done_req      (** answered-request dedup entries past the retry
                         horizon *)
  | Rc_code_cache    (** code-cache binding evicted by the LRU bound *)
  | Rc_import_hold   (** held foreign refs untouched past the hold
                         period (no longer refreshed) *)

val rc_name : rc -> string

type kind =
  | Thread_spawn                          (** VM thread queued *)
  | Run_slice of { instrs : int; cost : int }
      (** one thread ran to completion; [cost] is its virtual-ns
          duration (also the event's [ev_dur]) *)
  | Msg_park | Msg_unpark                 (** message queued at / freed
                                              from an empty channel *)
  | Obj_park | Obj_unpark
  | Send of { pk : pk; bytes : int }      (** packet handed to the
                                              daemon (0 bytes on the
                                              same-node fast path) *)
  | Deliver of { pk : pk; same_node : bool }
  | Obj_commit                            (** shipped object installed
                                              at the target channel *)
  | Link_code of { bytes : int }          (** downloaded byte-code
                                              linked into the area *)
  | Retransmit of { attempt : int }       (** reliable mode: frame
                                              re-sent *)
  | Ack
  | Timeout                               (** retransmissions exhausted *)
  | Ns_serve                              (** name service processed a
                                              registration or lookup *)
  | Flush_wait of { ns : int }            (** batching: the packet sat
                                              [ns] virtual ns in its
                                              destination outbox before
                                              the flush *)
  | Reclaim of { rc : rc; n : int }       (** lifecycle sweep freed [n]
                                              entries of kind [rc] *)
  | Lease_refresh of { chans : int; classes : int }
      (** importer sent a [Prelease] refreshing this many held refs *)
  | Stale_ref of { pk : pk }              (** a packet resolved a
                                              reclaimed identifier and
                                              was dropped (also surfaces
                                              as a ["stale-ref"] output
                                              event) *)

type event = {
  ev_ts : int;        (** virtual ns *)
  ev_dur : int;       (** virtual ns; [0] for instants *)
  ev_track : int;     (** site id, or {!fabric_track} *)
  ev_span : span;
  ev_kind : kind;
}

val fabric_track : int
(** Track [-1]: daemon/transport events not owned by any site. *)

val kind_name : kind -> string
val pk_name : pk -> string

(** {1 Collectors} *)

type t

val create :
  ?capacity:int -> ?span_base:int -> ?span_stride:int -> enabled:bool ->
  unit -> t
(** [capacity] bounds each track's event ring (default 65536 per
    track); the oldest events of that track are dropped beyond it.

    Span ids are allocated as [span_base + k * span_stride] (defaults
    [0]/[1], i.e. 1, 2, 3, ... — identical to the deterministic
    engine).  A parallel run passes [(shard, domains)] so the
    per-shard collectors mint globally unique, deterministic ids
    without sharing a counter. *)

val disabled : t
(** A shared always-off collector: [emit] is a no-op, [fresh_span]
    returns {!null_span}.  The default everywhere. *)

val enabled : t -> bool

val fresh_span : t -> parent:span -> span
(** Allocate a child of [parent] ([null_span] parent starts a new
    trace).  Returns {!null_span} when the collector is disabled. *)

val register_track : t -> ?shard:int -> id:int -> name:string -> unit -> unit
(** Name a track for the exporters (idempotent; last name wins).
    [shard] tags the track with its owning domain: exporters render it
    as ["shardN/name"] and the TYCT v4 archive persists the tag. *)

val track_shard : t -> int -> int option
(** The shard tag of a track, if any. *)

val emit : t -> ts:int -> ?dur:int -> track:int -> span:span -> kind -> unit

val events : t -> event list
(** Surviving events of all tracks, sorted by [ev_ts] (ties broken by
    emission order). *)

val dropped : t -> int
(** Events evicted from full rings. *)

val tracks : t -> (int * string) list
(** Registered [(id, name)] pairs, in registration order. *)

val merge : (int * t) list -> t
(** [merge [(shard, collector); ...]] folds per-shard collectors into
    one: site tracks are registered shard-tagged (the fabric track
    stays untagged), and events are re-emitted ordered by virtual
    timestamp (ties broken by shard id, then the shard's own emission
    order).  Disabled inputs are skipped.  The quiescence-time collect
    path of the parallel runtime. *)

(** {1 Exporters} *)

val to_chrome_json : t -> string
(** Chrome trace-event JSON (object form, ["traceEvents"] array) —
    loadable in Perfetto / chrome://tracing.  One process ("pid") per
    track; [Run_slice] becomes a complete event (["ph":"X"]) with its
    duration, everything else an instant; every [Send]/[Deliver] pair
    additionally emits flow events (["ph":"s"]/["f"]) keyed by the
    packet's span id, drawing the cross-site arrows. *)

val serialize : t -> string
(** Versioned binary form (tracks, drop count, events) for
    [tyco-trace]; hardware-independent via {!Wire}. *)

type archive = {
  ar_tracks : (int * string) list;
  ar_shards : (int * int) list;
      (** [(track id, shard)] tags; tracks absent here are untagged
          (every track of a v3 archive, the fabric track of a v4) *)
  ar_dropped : int;
  ar_events : event list;
}

val deserialize : string -> archive
(** Raises {!Wire.Malformed} on bad magic, unknown version or
    truncated input. *)

val of_archive : archive -> t
(** Rebuild a collector (for re-export) from a loaded archive. *)

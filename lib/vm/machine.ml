module Dq = Tyco_support.Dq
module Stats = Tyco_support.Stats
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace
module Ast = Tyco_syntax.Ast
module Block = Tyco_compiler.Block
module Instr = Tyco_compiler.Instr
module Link = Tyco_compiler.Link

type remote_op =
  | Rmsg of Netref.t * string * Value.t array
  | Robj of Netref.t * Value.obj
  | Rfetch of Netref.t * Value.t array
  | Rexport_name of string * Value.chan
  | Rexport_class of string * Value.cls
  | Rimport of {
      site : string;
      name : string;
      is_class : bool;
      cont : int;
      captured : Value.t list;
    }

exception Error of string

let err fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

type thread = { t_block : int; t_env : Value.t array; t_span : Trace.span }

type t = {
  name : string;
  area : Link.area;
  runq : thread Dq.t;
  remote : (remote_op * Trace.span) Dq.t;
  mutable chan_uid : int;
  (* Operand stack, shared by all threads of this machine: a thread runs
     to completion and leaves the stack empty, so one growable array
     replaces a freshly-consed list per thread. *)
  mutable ostack : Value.t array;
  mutable osp : int;
  (* Causal tracing (off by default: [tr] is [Trace.disabled], every
     guard is one load-and-branch, and spans stay [null_span]).
     [tr_on] caches [Trace.enabled tr] — fixed at creation — so each
     dispatch branches on one machine-record load instead of chasing
     the trace-state pointer. *)
  tr : Trace.t;
  tr_on : bool;
  track : int;
  mutable clock : int; (* virtual time, maintained by the embedder *)
  mutable cur_span : Trace.span; (* span causing current spawns *)
  (* Result slots of the last [run_thread] (instructions executed and
     summed virtual-time cost): scratch fields instead of a returned
     tuple, which would be a fresh allocation per thread. *)
  mutable last_executed : int;
  mutable last_cost : int;
  stats : Stats.t;
  c_instr : Stats.Counter.t;
  c_threads : Stats.Counter.t;
  c_comm : Stats.Counter.t;
  c_msgs_parked : Stats.Counter.t;
  c_objs_parked : Stats.Counter.t;
  c_insts : Stats.Counter.t;
  c_defgroups : Stats.Counter.t;
  c_remote : Stats.Counter.t;
  d_thread_len : Stats.Dist.t;
  d_runq_depth : Stats.Dist.t;
}

let create ?(name = "site") ?(trace = Trace.disabled) ?(track = 0) area =
  let stats = Stats.create () in
  { name;
    area;
    runq = Dq.create ();
    remote = Dq.create ();
    chan_uid = 0;
    ostack = Array.make 64 (Value.Vint 0);
    osp = 0;
    tr = trace;
    tr_on = Trace.enabled trace;
    track;
    clock = 0;
    cur_span = Trace.null_span;
    last_executed = 0;
    last_cost = 0;
    stats;
    c_instr = Stats.counter stats "instructions";
    c_threads = Stats.counter stats "threads";
    c_comm = Stats.counter stats "comm_local";
    c_msgs_parked = Stats.counter stats "msgs_parked";
    c_objs_parked = Stats.counter stats "objs_parked";
    c_insts = Stats.counter stats "insts";
    c_defgroups = Stats.counter stats "defgroups";
    c_remote = Stats.counter stats "remote_ops";
    d_thread_len = Stats.dist stats "thread_len";
    d_runq_depth = Stats.dist stats "runq_depth" }

let area t = t.area
let stats t = t.stats
let set_clock t ns = t.clock <- ns
let clock t = t.clock
let current_span t = t.cur_span
let set_current_span t sp = t.cur_span <- sp
let trace t = t.tr

let new_chan t name =
  let uid = t.chan_uid in
  t.chan_uid <- uid + 1;
  { Value.ch_uid = uid; ch_name = name; ch_state = Value.Empty }

let builtin_chan t name handler =
  let c = new_chan t name in
  c.Value.ch_state <- Value.Builtin handler;
  c

(* Make a frame for a block: the given initial values fill the first
   slots, the rest are padded (uninitialized locals). *)
let frame_for t ~block ~init =
  let blk = Link.block t.area block in
  let n = blk.Block.blk_nslots in
  let frame = Array.make (max n (List.length init)) (Value.Vint 0) in
  List.iteri (fun i v -> frame.(i) <- v) init;
  frame

(* All thread creation funnels through here: the new thread's span is a
   child of [parent] (the spawning thread, or the delivery context the
   site installed with [set_current_span]). *)
let enqueue t ~parent ~block frame =
  let sp =
    if t.tr_on then begin
      let sp = Trace.fresh_span t.tr ~parent in
      Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:sp Trace.Thread_spawn;
      sp
    end
    else Trace.null_span
  in
  Dq.push_back t.runq { t_block = block; t_env = frame; t_span = sp }

let spawn t ~block ~env =
  enqueue t ~parent:t.cur_span ~block (frame_for t ~block ~init:env)

(* Frame [args..][extra..] built with two blits — the method-fire and
   instantiation paths, where the old [args @ Array.to_list env] rebuilt
   both sides as lists. *)
let spawn_call t ~parent ~block ~(args : Value.t array)
    ~(extra : Value.t array) =
  let blk = Link.block t.area block in
  let na = Array.length args and ne = Array.length extra in
  let frame =
    Array.make (max blk.Block.blk_nslots (na + ne)) (Value.Vint 0)
  in
  Array.blit args 0 frame 0 na;
  Array.blit extra 0 frame na ne;
  enqueue t ~parent ~block frame

let spawn_entry t ~entry ~io = spawn t ~block:entry ~env:[ Value.Vchan io ]

(* Fire a method: the object's method table entry for interned label
   [lid] runs with frame [args..][closure env..].  The entry is found
   through the area's direct-mapped dispatch table — O(1), no string
   comparison.  [parent] is the span of the {e message} half of the
   rendez-vous: the message is what causes the method body to run. *)
let fire_method t (obj : Value.obj) ~parent ~lid (args : Value.t array) =
  let idx = Link.method_entry t.area obj.Value.obj_mtable ~lid in
  if idx < 0 then
    err "%s: no method '%s' at object (protocol error)" t.name
      (if lid >= 0 && lid < Link.n_labels t.area then
         Link.label_name t.area lid
       else "<unknown label>");
  let mt = Link.mtable t.area obj.Value.obj_mtable in
  let entry = mt.Block.mt_entries.(idx) in
  if entry.Block.me_nparams <> Array.length args then
    err "%s: method '%s': expected %d argument(s), got %d" t.name
      entry.Block.me_label entry.Block.me_nparams (Array.length args);
  Stats.Counter.incr t.c_comm;
  spawn_call t ~parent ~block:entry.Block.me_block ~args
    ~extra:obj.Value.obj_env

(* Hot path: label already interned (Trmsg operand, parked message).
   [Obj1]/[Msg1] are the steady-state cases — a reply channel or a
   re-parked server object holds exactly one value — and they must not
   touch a deque: a queue only materializes when a second value parks,
   and [Objs]/[Msgs] collapse back to the single-value state as they
   drain, so a channel that briefly queued returns to the no-queue
   regime. *)
let inject_msg_id t (chan : Value.chan) ~lid (args : Value.t array) =
  match chan.Value.ch_state with
  | Value.Obj1 obj ->
      chan.Value.ch_state <- Value.Empty;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Obj_unpark;
      fire_method t obj ~parent:t.cur_span ~lid args
  | Value.Empty ->
      Stats.Counter.incr t.c_msgs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Msg_park;
      chan.Value.ch_state <-
        Value.Msg1 { Value.msg_lid = lid; msg_args = args;
                     msg_span = t.cur_span }
  | Value.Objs q ->
      let obj = Dq.pop_front_exn q in
      if Dq.length q = 1 then
        chan.Value.ch_state <- Value.Obj1 (Dq.pop_front_exn q)
      else if Dq.is_empty q then chan.Value.ch_state <- Value.Empty;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Obj_unpark;
      fire_method t obj ~parent:t.cur_span ~lid args
  | Value.Msg1 m1 ->
      Stats.Counter.incr t.c_msgs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Msg_park;
      let q = Dq.create ~capacity:4 () in
      Dq.push_back q m1;
      Dq.push_back q { Value.msg_lid = lid; msg_args = args;
                       msg_span = t.cur_span };
      chan.Value.ch_state <- Value.Msgs q
  | Value.Msgs q ->
      Stats.Counter.incr t.c_msgs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Msg_park;
      Dq.push_back q { Value.msg_lid = lid; msg_args = args;
                       msg_span = t.cur_span }
  | Value.Builtin handler ->
      handler (Link.label_name t.area lid) (Array.to_list args)

(* Cold entry point for the embedding site (packet delivery, builtin
   replies): labels arrive as strings and are interned here. *)
let inject_msg t chan label args =
  inject_msg_id t chan ~lid:(Link.intern t.area label) (Array.of_list args)

let inject_obj t (chan : Value.chan) (obj : Value.obj) =
  match chan.Value.ch_state with
  | Value.Msg1 m ->
      chan.Value.ch_state <- Value.Empty;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:m.Value.msg_span
          Trace.Msg_unpark;
      fire_method t obj ~parent:m.Value.msg_span ~lid:m.Value.msg_lid
        m.Value.msg_args
  | Value.Empty ->
      Stats.Counter.incr t.c_objs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Obj_park;
      chan.Value.ch_state <- Value.Obj1 obj
  | Value.Msgs q ->
      let m = Dq.pop_front_exn q in
      if Dq.length q = 1 then
        chan.Value.ch_state <- Value.Msg1 (Dq.pop_front_exn q)
      else if Dq.is_empty q then chan.Value.ch_state <- Value.Empty;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:m.Value.msg_span
          Trace.Msg_unpark;
      fire_method t obj ~parent:m.Value.msg_span ~lid:m.Value.msg_lid
        m.Value.msg_args
  | Value.Obj1 o1 ->
      Stats.Counter.incr t.c_objs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Obj_park;
      let q = Dq.create ~capacity:4 () in
      Dq.push_back q o1;
      Dq.push_back q obj;
      chan.Value.ch_state <- Value.Objs q
  | Value.Objs q ->
      Stats.Counter.incr t.c_objs_parked;
      if t.tr_on then
        Trace.emit t.tr ~ts:t.clock ~track:t.track ~span:t.cur_span
          Trace.Obj_park;
      Dq.push_back q obj
  | Value.Builtin _ -> err "object placed at builtin channel '%s'" chan.Value.ch_name

let instantiate_args t (cls : Value.cls) (args : Value.t array) =
  let g = Link.group t.area cls.Value.cls_group in
  let sig_ = g.Block.grp_classes.(cls.Value.cls_index) in
  if sig_.Block.cls_nparams <> Array.length args then
    err "%s: class '%s': expected %d argument(s), got %d" t.name
      sig_.Block.cls_name sig_.Block.cls_nparams (Array.length args);
  Stats.Counter.incr t.c_insts;
  spawn_call t ~parent:t.cur_span ~block:sig_.Block.cls_block ~args
    ~extra:cls.Value.cls_env

let instantiate t cls args = instantiate_args t cls (Array.of_list args)

(* ------------------------------------------------------------------ *)
(* Instruction execution.                                              *)

let as_int = function Value.Vint n -> n | v -> err "expected int, got %s" (Value.type_name v)
let as_bool = function Value.Vbool b -> b | v -> err "expected bool, got %s" (Value.type_name v)

let value_eq a b =
  match (a, b) with
  | Value.Vint x, Value.Vint y -> Int.equal x y
  | Value.Vbool x, Value.Vbool y -> Bool.equal x y
  | Value.Vstr x, Value.Vstr y -> String.equal x y
  | Value.Vchan x, Value.Vchan y -> Value.same_chan x y
  | Value.Vnetref x, Value.Vnetref y -> Netref.equal x y
  | _, _ -> a == b

let exec_binop op a b =
  match op with
  | Ast.Add -> Value.Vint (as_int a + as_int b)
  | Ast.Sub -> Value.Vint (as_int a - as_int b)
  | Ast.Mul -> Value.Vint (as_int a * as_int b)
  | Ast.Div ->
      let d = as_int b in
      if d = 0 then err "division by zero" else Value.Vint (as_int a / d)
  | Ast.Mod ->
      let d = as_int b in
      if d = 0 then err "modulo by zero" else Value.Vint (as_int a mod d)
  | Ast.Lt -> Value.Vbool (as_int a < as_int b)
  | Ast.Le -> Value.Vbool (as_int a <= as_int b)
  | Ast.Gt -> Value.Vbool (as_int a > as_int b)
  | Ast.Ge -> Value.Vbool (as_int a >= as_int b)
  | Ast.Eq -> Value.Vbool (value_eq a b)
  | Ast.Neq -> Value.Vbool (not (value_eq a b))
  | Ast.And -> Value.Vbool (as_bool a && as_bool b)
  | Ast.Or -> Value.Vbool (as_bool a || as_bool b)

(* Operand-stack primitives over the machine-owned array. *)

let[@inline] push_op t v =
  (if t.osp = Array.length t.ostack then begin
     let bigger = Array.make (2 * Array.length t.ostack) (Value.Vint 0) in
     Array.blit t.ostack 0 bigger 0 t.osp;
     t.ostack <- bigger
   end);
  Array.unsafe_set t.ostack t.osp v;
  t.osp <- t.osp + 1

let[@inline] pop_op t =
  if t.osp = 0 then err "operand stack underflow";
  t.osp <- t.osp - 1;
  Array.unsafe_get t.ostack t.osp

(* Pop [n] argument values pushed left-to-right: one [Array.sub] of the
   stack's top segment — the stack grows upward, so the segment is
   already in argument order. *)
let no_args : Value.t array = [||]

let pop_args t n =
  if n = 0 then no_args
  else begin
    if t.osp < n then err "operand stack underflow";
    t.osp <- t.osp - n;
    Array.sub t.ostack t.osp n
  end

let push_remote t op =
  Stats.Counter.incr t.c_remote;
  Dq.push_back t.remote (op, t.cur_span)

(* Execute one thread to completion.  The step loop is a top-level
   tail-recursive function threading [executed]/[cost] as parameters:
   an inner [let rec] would allocate its closure (capturing
   code/costs/env) plus two [ref] accumulators per thread — at a few
   tens of instructions per thread (paper §1) that fixed setup cost is
   comparable to the work itself.  Results land in the
   [last_executed]/[last_cost] scratch fields (no per-thread tuple). *)
let rec step t code costs env pc executed cost =
  if pc >= Array.length code then begin
    t.last_executed <- executed;
    t.last_cost <- cost
  end
  else begin
    let executed = executed + 1 in
    let cost = cost + Array.unsafe_get costs pc in
    match Array.unsafe_get code pc with
    | Instr.Push_int n ->
        push_op t (Value.Vint n);
        step t code costs env (pc + 1) executed cost
    | Instr.Push_bool b ->
        push_op t (Value.Vbool b);
        step t code costs env (pc + 1) executed cost
    | Instr.Push_str s ->
        push_op t (Value.Vstr s);
        step t code costs env (pc + 1) executed cost
    | Instr.Load i ->
        push_op t env.(i);
        step t code costs env (pc + 1) executed cost
    | Instr.Store i ->
        env.(i) <- pop_op t;
        step t code costs env (pc + 1) executed cost
    | Instr.Binop op ->
        let b = pop_op t in
        let a = pop_op t in
        push_op t (exec_binop op a b);
        step t code costs env (pc + 1) executed cost
    | Instr.Unop Ast.Neg ->
        push_op t (Value.Vint (-as_int (pop_op t)));
        step t code costs env (pc + 1) executed cost
    | Instr.Unop Ast.Not ->
        push_op t (Value.Vbool (not (as_bool (pop_op t))));
        step t code costs env (pc + 1) executed cost
    | Instr.Jump target -> step t code costs env target executed cost
    | Instr.Jump_if_false target ->
        if as_bool (pop_op t) then step t code costs env (pc + 1) executed cost
        else step t code costs env target executed cost
    | Instr.New_chan slot ->
        env.(slot) <- Value.Vchan (new_chan t "c");
        step t code costs env (pc + 1) executed cost
    | Instr.Trmsg { lid; argc; _ } ->
        let target = pop_op t in
        let args = pop_args t argc in
        (match target with
        | Value.Vchan c -> inject_msg_id t c ~lid args
        | Value.Vnetref r ->
            push_remote t (Rmsg (r, Link.label_name t.area lid, args))
        | v -> err "trmsg target is %s, not a channel" (Value.type_name v));
        step t code costs env (pc + 1) executed cost
    | Instr.Trobj mt_id -> (
        let mt = Link.mtable t.area mt_id in
        let captured =
          Array.map (fun slot -> env.(slot)) mt.Block.mt_captures
        in
        let obj = { Value.obj_mtable = mt_id; obj_env = captured } in
        match pop_op t with
        | Value.Vchan c ->
            inject_obj t c obj;
            step t code costs env (pc + 1) executed cost
        | Value.Vnetref r ->
            push_remote t (Robj (r, obj));
            step t code costs env (pc + 1) executed cost
        | v -> err "trobj target is %s, not a channel" (Value.type_name v))
    | Instr.Defgroup gid ->
        Stats.Counter.incr t.c_defgroups;
        let g = Link.group t.area gid in
        let ncap = Array.length g.Block.grp_captures in
        let nclasses = Array.length g.Block.grp_classes in
        let shared = Array.make (ncap + nclasses) (Value.Vint 0) in
        Array.iteri
          (fun i slot -> shared.(i) <- env.(slot))
          g.Block.grp_captures;
        Array.iteri
          (fun i _ ->
            let v =
              Value.Vclass
                { Value.cls_group = gid; cls_index = i; cls_env = shared }
            in
            shared.(ncap + i) <- v;
            env.(g.Block.grp_slots.(i)) <- v)
          g.Block.grp_classes;
        step t code costs env (pc + 1) executed cost
    | Instr.Instof argc ->
        let target = pop_op t in
        let args = pop_args t argc in
        (match target with
        | Value.Vclass c -> instantiate_args t c args
        | Value.Vclassref r -> push_remote t (Rfetch (r, args))
        | v -> err "instof target is %s, not a class" (Value.type_name v));
        step t code costs env (pc + 1) executed cost
    | Instr.Export_name x -> (
        match pop_op t with
        | Value.Vchan c ->
            push_remote t (Rexport_name (x, c));
            step t code costs env (pc + 1) executed cost
        | v -> err "export of %s, not a local channel" (Value.type_name v))
    | Instr.Export_class (x, slot) -> (
        match env.(slot) with
        | Value.Vclass c ->
            push_remote t (Rexport_class (x, c));
            step t code costs env (pc + 1) executed cost
        | v -> err "export of %s, not a local class" (Value.type_name v))
    | Instr.Import_name { site; name; cont; captures } ->
        push_remote t
          (Rimport
             { site; name; is_class = false; cont;
               captured = Array.to_list (Array.map (fun s -> env.(s)) captures) });
        step t code costs env (pc + 1) executed cost
    | Instr.Import_class { site; name; cont; captures } ->
        push_remote t
          (Rimport
             { site; name; is_class = true; cont;
               captured = Array.to_list (Array.map (fun s -> env.(s)) captures) });
        step t code costs env (pc + 1) executed cost
  end

let run_thread t (th : thread) =
  let code = (Link.block t.area th.t_block).Block.blk_code in
  (* Per-pc costs precomputed at link time: the step loop adds an array
     element instead of re-dispatching on the instruction. *)
  let costs = Link.costs t.area th.t_block in
  t.osp <- 0;
  step t code costs th.t_env 0 0 0

let runnable t = not (Dq.is_empty t.runq)

let run t ~budget =
  let executed = ref 0 in
  let cost = ref 0 in
  let continue_ = ref true in
  (* run-queue depth at quantum start: the latency-hiding evidence —
     deep queues mean remote waits are being overlapped (paper §5) *)
  Stats.Dist.add_int t.d_runq_depth (Dq.length t.runq);
  while !continue_ && !executed < budget do
    if Dq.is_empty t.runq then continue_ := false
    else begin
      let th = Dq.pop_front_exn t.runq in
      Stats.Counter.incr t.c_threads;
      t.cur_span <- th.t_span;
      let start = t.clock in
      run_thread t th;
      let n = t.last_executed and c = t.last_cost in
      t.clock <- start + c;
      if t.tr_on then
        Trace.emit t.tr ~ts:start ~dur:c ~track:t.track ~span:th.t_span
          (Trace.Run_slice { instrs = n; cost = c });
      Stats.Counter.add t.c_instr n;
      Stats.Dist.add_int t.d_thread_len n;
      executed := !executed + n;
      cost := !cost + c
    end
  done;
  t.cur_span <- Trace.null_span;
  (!executed, !cost)

let pop_remote_op t = Option.map fst (Dq.pop_front t.remote)
let pop_remote_traced t = Dq.pop_front t.remote
let pending_remote_ops t = Dq.length t.remote

module Dq = Tyco_support.Dq
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace

type t =
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vchan of chan
  | Vnetref of Netref.t
  | Vclass of cls
  | Vclassref of Netref.t

and chan = {
  ch_uid : int;
  ch_name : string;
  mutable ch_state : chan_state;
}

and chan_state =
  | Empty
  | Msg1 of msg
  | Msgs of msg Dq.t
  | Obj1 of obj
  | Objs of obj Dq.t
  | Builtin of (string -> t list -> unit)

and msg = { msg_lid : int; msg_args : t array; msg_span : Trace.span }
and obj = { obj_mtable : int; obj_env : t array }
and cls = { cls_group : int; cls_index : int; cls_env : t array }

let type_name = function
  | Vint _ -> "int"
  | Vbool _ -> "bool"
  | Vstr _ -> "string"
  | Vchan _ -> "channel"
  | Vnetref _ -> "network reference"
  | Vclass _ -> "class"
  | Vclassref _ -> "class reference"

let pp ppf = function
  | Vint n -> Format.fprintf ppf "%d" n
  | Vbool b -> Format.fprintf ppf "%b" b
  | Vstr s -> Format.fprintf ppf "%S" s
  | Vchan c -> Format.fprintf ppf "#%s.%d" c.ch_name c.ch_uid
  | Vnetref r -> Netref.pp ppf r
  | Vclass c -> Format.fprintf ppf "<class g%d.%d>" c.cls_group c.cls_index
  | Vclassref r -> Netref.pp ppf r

let same_chan a b = a == b

(** The execution engine of one site's virtual machine (paper Fig. 3).

    The machine owns the architecture the paper lists: a {e program
    area} (a {!Tyco_compiler.Link.area}, growable by dynamic linking),
    a {e heap} of channels, a {e run-queue} of threads, a {e local
    variable table} (each thread's frame) and an {e operand stack}
    (used by builtin expressions; one machine-owned growable array,
    reused across threads — a thread runs to completion and leaves it
    empty, so nothing is allocated per thread).

    It is deliberately network-blind: instructions whose target is a
    network reference — [trmsg]/[trobj] on a remote name, [instof] on a
    remote class, [export]/[import] — do not touch the network here.
    They append a {!remote_op} to the machine's outgoing-operations
    queue, which the embedding site drains, serializes (translating
    references through its export table) and hands to the node's TyCOd
    daemon.  Symmetrically, the site {e injects} incoming work with
    {!inject_msg}/{!inject_obj}/{!spawn}.

    A {e thread} is one byte-code block plus its frame; threads run to
    completion (they contain no blocking instructions — waiting is
    represented by parked messages/objects in channels), which is what
    keeps context switches fast (paper §1). *)

type t

(** Remote effects surfaced to the embedding site, in program order. *)
type remote_op =
  | Rmsg of Tyco_support.Netref.t * string * Value.t array
      (** remote method invocation — the SHIPM path *)
  | Robj of Tyco_support.Netref.t * Value.obj
      (** object migration — the SHIPO path *)
  | Rfetch of Tyco_support.Netref.t * Value.t array
      (** instantiation of a remote class: FETCH request, instantiation
          args parked until the code arrives *)
  | Rexport_name of string * Value.chan
  | Rexport_class of string * Value.cls
  | Rimport of {
      site : string;
      name : string;
      is_class : bool;
      cont : int;
      captured : Value.t list;
    }

exception Error of string
(** Dynamic protocol errors: no such method, arity mismatch, ill-typed
    builtin operands, [Instof] of a non-class… *)

val create :
  ?name:string ->
  ?trace:Tyco_support.Trace.t ->
  ?track:int ->
  Tyco_compiler.Link.area ->
  t
(** [trace] is the site's event collector ({!Tyco_support.Trace.disabled}
    by default — every instrumentation point is then one load-and-branch
    and all spans stay [null_span]); [track] is the collector track id
    this machine's events are emitted on (the site's id). *)

val area : t -> Tyco_compiler.Link.area

(** {1 Causal tracing} *)

val trace : t -> Tyco_support.Trace.t

val set_clock : t -> int -> unit
(** The machine does not own time: the embedding site sets the virtual
    clock (ns) before [run]/injections so emitted events carry simulation
    timestamps.  [run] advances it by each thread's cost. *)

val clock : t -> int

val current_span : t -> Tyco_support.Trace.span
(** The span causally responsible for whatever the machine does next:
    inside [run] it is the running thread's span; around an injection it
    is whatever the embedder installed with {!set_current_span} (e.g.
    the span of the packet being delivered).  Threads spawned, messages
    parked and remote ops pushed all inherit it as parent. *)

val set_current_span : t -> Tyco_support.Trace.span -> unit

val new_chan : t -> string -> Value.chan
val builtin_chan : t -> string -> (string -> Value.t list -> unit) -> Value.chan

val spawn : t -> block:int -> env:Value.t list -> unit
(** Enqueue a thread whose frame starts with the given values (locals
    beyond them are allocated per the block's slot count). *)

val spawn_entry : t -> entry:int -> io:Value.chan -> unit

val inject_msg : t -> Value.chan -> string -> Value.t list -> unit
(** Deliver a message to a local channel (local [trmsg]); fires a
    waiting object or parks.  Cold entry point: the label is interned
    into the area's label table here.  The VM's own hot paths carry the
    interned id and never re-hash the string. *)

val inject_msg_id : t -> Value.chan -> lid:int -> Value.t array -> unit
(** Hot-path variant of {!inject_msg} for callers that already hold the
    interned label id (see {!Tyco_compiler.Link.intern}). *)

val inject_obj : t -> Value.chan -> Value.obj -> unit

val instantiate : t -> Value.cls -> Value.t list -> unit
(** Run one instantiation (used for fetched classes and directly by
    [instof]). *)

val instantiate_args : t -> Value.cls -> Value.t array -> unit
(** {!instantiate} without the list→array conversion, for callers that
    already hold the argument array (e.g. parked FETCH arguments). *)

val runnable : t -> bool

val run : t -> budget:int -> int * int
(** Execute threads until the run-queue empties or the instruction
    budget is exhausted (threads are atomic, so slightly more than
    [budget] instructions may run).  Returns
    [(instructions executed, virtual-time cost in ns)] — the cost is
    the sum of {!Tyco_compiler.Instr.cost} over executed instructions
    and drives the simulation clock. *)

val pop_remote_op : t -> remote_op option

val pop_remote_traced : t -> (remote_op * Tyco_support.Trace.span) option
(** Like {!pop_remote_op} but also returns the span of the thread that
    pushed the op — the parent for the network span the site creates. *)

val pending_remote_ops : t -> int

(** {1 Metrics} *)

val stats : t -> Tyco_support.Stats.t
(** Counters: [instructions], [threads], [comm_local], [msgs_parked],
    [objs_parked], [insts], [defgroups], [remote_ops];
    distributions [thread_len] (instructions per thread — experiment
    E7's granularity evidence) and [runq_depth] (run-queue length
    sampled at each [run] call — deep queues are the latency-hiding
    evidence of paper §5). *)

(** Run-time values of the extended TyCO virtual machine (paper §5).

    “Variables may now hold, besides local references, network
    references.  A local reference is a pointer to the heap of the
    local site.  A network reference … is a pointer to a data structure
    allocated in the heap of some remote site.”

    Local channel references are {!chan} (heap objects with a message
    or object queue); remote ones are [Vnetref].  Classes are values
    too: [Vclass] is a local class closure created by [defgroup], and
    [Vclassref] a remote class whose instantiation triggers FETCH. *)

type t =
  | Vint of int
  | Vbool of bool
  | Vstr of string
  | Vchan of chan
  | Vnetref of Tyco_support.Netref.t
  | Vclass of cls
  | Vclassref of Tyco_support.Netref.t

and chan = {
  ch_uid : int;
  ch_name : string;  (** diagnostic label *)
  mutable ch_state : chan_state;
}

(** A channel holds pending messages {e or} pending objects, never
    both (a matching pair reduces immediately).  [Msg1]/[Obj1] carry a
    single parked value directly: reply channels and re-parked server
    objects park exactly one value at a time, and the fast path must
    not allocate a queue for them — a deque appears ([Msgs]/[Objs])
    only once a second value parks, and collapses back through
    [Msg1]/[Obj1] as it drains.  [Builtin] channels execute a host
    handler on message delivery — the I/O port of each site is one. *)
and chan_state =
  | Empty
  | Msg1 of msg
  | Msgs of msg Tyco_support.Dq.t
  | Obj1 of obj
  | Objs of obj Tyco_support.Dq.t
  | Builtin of (string -> t list -> unit)

and msg = { msg_lid : int; msg_args : t array; msg_span : Tyco_support.Trace.span }
(** A parked message.  [msg_lid] is the label interned in the owning
    site's program area ({!Tyco_compiler.Link.intern}); matching a
    parked message against an arriving object is an integer-indexed
    table lookup, never a string comparison.  [msg_span] remembers the
    sender's trace span so the thread fired when an object eventually
    matches is attributed to the message's causal tree
    ({!Tyco_support.Trace.null_span} when tracing is off). *)

(** An object closure: a method table (program-area index) plus the
    captured environment shared by its methods. *)
and obj = { obj_mtable : int; obj_env : t array }

(** A class closure: its definition group (program-area index), its
    position within the group, and the group's shared environment
    [captured..][class values..] (mutually recursive via that array). *)
and cls = { cls_group : int; cls_index : int; cls_env : t array }

val type_name : t -> string
val pp : Format.formatter -> t -> unit

val same_chan : chan -> chan -> bool
(** Identity, not structure. *)

(* The parallel execution engine: the cluster sharded over OCaml 5
   domains.

   Each shard owns a disjoint set of nodes and everything beneath
   them — sites, VMs, export tables, intern areas, statistics
   reservoirs — plus its own discrete-event simulator, so a shard's
   virtual clock advances independently.  Which nodes a shard owns is
   decided by a placement map ({!Placement}): [ip mod domains] by
   default, or greedy bin-packing over static site counts / profiled
   node weights when the caller wants load-aware sharding.  No mutable
   state is shared between shards: the only cross-domain traffic is

   - envelope {e batches} and node {e migrations} through one
     {!Tyco_support.Spsc_ring} per ordered shard pair, and
   - a handful of whole-run atomics (the in-flight element count,
     per-shard pending/executed event counters, the node-to-shard
     indirection table, the stop flag) that exist for termination
     detection and routing.

   Handoff batching (PR 9): cross-shard packets are not pushed one by
   one.  Each shard buffers outbound envelopes per destination shard
   and flushes each buffer as one ring element at its step/park
   boundary (or earlier, when a buffer reaches
   [handoff_batch_max]) — so one ring push, one [g_inflight]
   increment and one consumer pop amortize over the whole batch,
   mirroring the deterministic engine's [Fbatch] coalescing one layer
   down.  Quiescence accounting stays exact without per-packet
   atomics: a buffer's first envelope counts one unit on the owning
   shard's [pending] (the pending flush is a scheduled obligation
   like any heap event); the flush moves that unit onto [g_inflight]
   (increment before decrement, so the sum never dips); the consumer
   schedules every envelope's delivery (each a [pending] increment)
   {e before} uncounting the batch from [g_inflight].  Children are
   always counted before their parent is uncounted, so
   [inflight + sum pending = 0] still holds only at true quiescence.

   Dynamic rebalancing (PR 10): node ownership is no longer fixed for
   the run.  The node-to-shard map is an array of atomics (the
   {e indirection table}); the coordinator watches per-node executed
   pump cost and, when the imbalance crosses a threshold
   ({!Placement.choose_migration}), posts a migration command to the
   owning shard.  At its next step boundary the owner {e ships} the
   node: it flushes its outbound buffers, takes one [g_inflight] unit
   (the node-in-transit obligation, held until the receiver finishes
   installing — quiescence cannot fire with a node inside a ring),
   publishes the new owner in the indirection table, retires its
   wrappers, and pushes a [Mig] element through the ordinary ring.
   The receiver re-points each site's owner cell (the one ref its
   send/output callbacks dereference), builds fresh wrappers, drains
   any packets that raced ahead of the envelope (parked in [limbo]
   under the same in-flight unit), and only then releases the unit.
   A shard that receives a packet for a site it no longer owns
   {e forwards} it along the current table instead of dead-lettering,
   so stale senders lose nothing.

   Clock merge rule: a handed-off packet sent at sender-virtual time
   [s] with wire delay [d] is delivered at receiver-virtual time
   [max (receiver now) (s + d)] — delivery timestamps stay monotone
   per receiver, at the price of cross-shard timestamps depending on
   domain interleaving.  Determinism is the single-domain engine's
   job ({!Cluster}); this engine preserves output *sets*, not
   timestamps.  A migrated node's core occupancy is reset on install
   for the same reason: the two shard clocks are not comparable.

   Scope: the direct per-packet transport only.  Reliable delivery,
   fault injection and replicated name service stay with the
   deterministic engine (rings are lossless and ordered, so none of
   that machinery has work to do here); configs requesting them are
   rejected loudly.  Tracing is rejected {e when rebalancing}: a
   site's trace collector is captured at creation and cannot follow
   the site across domains without sharing a collector.

   Observability: each shard owns a private {!Trace} collector (span
   ids strided by [shard + k * domains] so they stay globally unique
   without a shared counter) and a private {!Metrics} registry;
   envelopes carry the packet's span across the ring so cross-shard
   packets keep their causal tree.  Both are merged at quiescence,
   after the joins — the only time shard state is read from outside. *)

module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Nameservice = Tyco_net.Nameservice
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats
module Prng = Tyco_support.Prng
module Trace = Tyco_support.Trace
module Metrics = Tyco_support.Metrics
module Spsc = Tyco_support.Spsc_ring

let ns_processing_cost = 1_000
let context_switch_cost = 200

exception Shard_failure of int * string
(* An exception that escaped one shard's domain, re-raised at join
   with the shard identified; [Api.run_parallel] maps it to
   [Runtime_error].  Before PR 10 the raw exception was re-raised
   anonymously (and non-[Failure] exceptions escaped [Api] unwrapped). *)

(* One handed-off packet: everything the receiving shard needs to
   charge the wire and route, so it never touches sender state. *)
type envelope = {
  env_pkt : Packet.t;
  env_src_ip : int;
  env_dst_ip : int;
  env_send_ts : int; (* sender's virtual clock at send *)
  env_bytes : int;
  env_span : Trace.span; (* causal context rides the ring with the packet *)
}

(* Per-destination accumulation buffer (producer-shard confined). *)
type outbuf = {
  mutable hb_envs : envelope array;
  mutable hb_count : int;
}

type global = {
  g_domains : int;
  (* the indirection table: node ip -> owning shard.  Atomic so a
     migration's publication is a release/acquire edge — a stale
     sender reads an old owner at worst, and the old owner forwards *)
  g_shard_map : int Atomic.t array;
  g_site_ip : int array; (* site id -> node ip; immutable after load *)
  (* ring elements pushed (or buffered for push) whose consequences
     have not all been scheduled yet: > 0 whenever cross-shard work
     (a batch, or a node in transit) is outside any heap *)
  g_inflight : int Atomic.t;
  g_stop : bool Atomic.t;
  (* per-shard executed-event counters, summed at step boundaries so
     [max_events] bounds the run globally (the Simnet.run livelock
     guard), not per shard *)
  g_executed : int Atomic.t array;
  (* rebalancing signal: per-node executed pump cost, bumped by the
     owning domain only when [g_rb_on] (zero hot-path cost otherwise);
     the coordinator reads deltas to estimate recent load *)
  g_node_load : int Atomic.t array;
  g_rb_on : bool;
  g_migrations : int Atomic.t; (* installs completed, coordinator-read *)
}

type wrapper = {
  w_site : Site.t;
  w_node : Node.t;
  (* the owner cell: shared with the site's send/output/suspect
     closures, re-pointed by the installing shard.  Only the domain
     that currently owns the site ever touches it; ring push/pop
     orders the handover *)
  w_owner : shard ref;
  mutable w_pump_scheduled : bool;
  (* set by the shipping shard: pump events already in its heap for
     this wrapper become no-ops (the site now lives elsewhere) *)
  mutable w_stale : bool;
}

and shard = {
  sh_id : int;
  g : global;
  sim : Simnet.t;
  quantum : int;
  loopback_delay : int;
  ns : Nameservice.t option; (* the centralized service, shard 0 only *)
  by_id : (int, wrapper) Hashtbl.t;
  mutable wrappers : wrapper list;
  in_rings : element Spsc.t option array; (* index = source shard *)
  out_rings : element Spsc.t option array; (* index = destination shard *)
  out_bufs : outbuf array; (* index = destination shard; self unused *)
  weight : float; (* this shard's placement weight (reporting only) *)
  (* packets that arrived for a node this shard owns per the table but
     has not installed yet (they raced ahead of the migration
     envelope, whose [g_inflight] unit covers them): drained at
     install, keyed by node ip *)
  limbo : (int, (Trace.span * Packet.t) list ref) Hashtbl.t;
  (* coordinator-posted migration command: [ip * domains + dst], or
     -1 for none; consumed at the step boundary *)
  mig_cmd : int Atomic.t;
  (* shard-confined accumulators, merged after join *)
  mutable outs : (int * Output.event) list;
  mutable packets : int;
  mutable bytes : int;
  mutable same_node : int;
  mutable handoffs_in : int; (* envelopes received through rings *)
  mutable batches_out : int; (* flushes, = ring pushes attempted *)
  mutable envelopes_out : int; (* envelopes those flushes carried *)
  mutable parks : int;
  mutable drains : int; (* backpressure drain passes while pushing *)
  mutable dead_letters : int;
  mutable forwarded : int; (* envelopes re-sent along the table *)
  mutable migrations_out : int; (* nodes this shard shipped *)
  mutable migrations_in : int; (* nodes this shard installed *)
  mutable migration_ns : int; (* wall ns, ship to install, summed *)
  (* migrations dropped at teardown (g_stop while pushing): kept so
     the post-join merge still sees their sites' stats *)
  mutable lost_migs : migration list;
  mutable suspected : (int * string) list;
  mutable busy_until : int;
  mutable error : exn option;
  (* shard-local observability: nothing here is shared while the
     domain runs; merged after join *)
  tr : Trace.t;
  tr_on : bool;
  mx : Metrics.t;
  m_packets : Metrics.counter;
  m_bytes : Metrics.counter;
  m_same_node : Metrics.counter;
  m_handoffs_in : Metrics.counter;
  m_handoff_lat : Metrics.histogram; (* virtual ns from send to delivery *)
  m_batch_fill : Metrics.histogram; (* envelopes per ring push *)
  (* termination-detection counters (Mattern-style): [pending] is the
     shard's heap size plus one unit per non-empty outbound buffer,
     maintained so that children are counted before their parent event
     is uncounted, which makes [inflight + sum pending = 0] hold only
     at true quiescence; [executed] (an alias of the shard's slot in
     [g_executed]) is monotone and detects activity between the
     coordinator's two collects *)
  pending : int Atomic.t;
  executed : int Atomic.t;
}

(* What actually travels through a ring: one flush's worth of
   same-destination envelopes (the array is freshly sized at flush;
   ownership passes to the consumer with the push), or one migrating
   node — its [Node.t] plus every site with its owner cell. *)
and element =
  | Batch of envelope array
  | Mig of migration

and migration = {
  mg_ip : int;
  mg_node : Node.t;
  mg_sites : (Site.t * shard ref) list;
  mg_sent_wall : float; (* host clock at ship, for [migration_ns] *)
}

(* Every event entering a shard's heap goes through here so [pending]
   tracks the heap exactly; the matching decrement is in [shard_loop],
   after [Simnet.step] returns. *)
let sched sh ~delay f =
  Atomic.incr sh.pending;
  Simnet.schedule sh.sim ~delay f

let shard_of_ip g ip = Atomic.get (Array.unsafe_get g.g_shard_map ip)

(* Flush threshold: a buffer reaching this many envelopes is flushed
   immediately rather than waiting for the step boundary, bounding
   both handoff latency and the allocation size of one batch. *)
let handoff_batch_max = 64

(* ------------------------------------------------------------------ *)
(* The event graph: scheduling, transport, delivery.  Mirrors
   [Cluster]'s batched path minus faults/reliability.                  *)

let rec request_pump sh w ~delay =
  if (not w.w_pump_scheduled) && (not w.w_stale) && Site.alive w.w_site
  then begin
    w.w_pump_scheduled <- true;
    sched sh ~delay (fun () -> pump_event sh w)
  end

and pump_event sh w =
  w.w_pump_scheduled <- false;
  if (not w.w_stale) && Site.alive w.w_site then begin
    let now = Simnet.now sh.sim in
    let core, free = Node.earliest_core w.w_node in
    if free > now then request_pump sh w ~delay:(free - now)
    else begin
      let cost = Site.pump ~now w.w_site ~quantum:sh.quantum in
      if sh.g.g_rb_on then
        ignore
          (Atomic.fetch_and_add
             (Array.unsafe_get sh.g.g_node_load (Node.ip w.w_node))
             cost);
      let duration = cost + context_switch_cost in
      Node.occupy w.w_node ~core ~until:(now + duration);
      sh.busy_until <- max sh.busy_until (now + duration);
      if Site.busy w.w_site then request_pump sh w ~delay:duration
    end
  end

and send_packet sh ~src_ip ?(ctx = Trace.null_span) (p : Packet.t) =
  let dst_ip = Packet.dst_ip p ~ns_ip:0 in
  let dst_shard = shard_of_ip sh.g dst_ip in
  if dst_shard = sh.sh_id then
    if dst_ip = src_ip then begin
      (* same-node fast path, intact inside the shard: shared memory,
         no size accounting, loopback latency only *)
      sh.same_node <- sh.same_node + 1;
      Metrics.incr sh.m_same_node;
      sched sh ~delay:sh.loopback_delay (fun () ->
          deliver sh ~at_ip:dst_ip ~ctx ~same_node:true p)
    end
    else begin
      let bytes = Packet.byte_size p in
      sh.packets <- sh.packets + 1;
      sh.bytes <- sh.bytes + bytes;
      Metrics.incr sh.m_packets;
      Metrics.add sh.m_bytes bytes;
      let delay = Simnet.packet_delay sh.sim ~src_ip ~dst_ip ~bytes in
      sched sh ~delay (fun () -> deliver sh ~at_ip:dst_ip ~ctx p)
    end
  else begin
    let bytes = Packet.byte_size p in
    sh.packets <- sh.packets + 1;
    sh.bytes <- sh.bytes + bytes;
    Metrics.incr sh.m_packets;
    Metrics.add sh.m_bytes bytes;
    enqueue_handoff sh ~dst_shard
      { env_pkt = p; env_src_ip = src_ip; env_dst_ip = dst_ip;
        env_send_ts = Simnet.now sh.sim; env_bytes = bytes;
        env_span = ctx }
  end

(* Buffer an outbound envelope.  The buffer's first envelope counts
   one unit on [pending] — the obligation to flush — so quiescence
   detection cannot fire between enqueue and flush; subsequent
   envelopes ride the same unit, which is what makes the handoff path
   free of per-packet atomics. *)
and enqueue_handoff sh ~dst_shard env =
  let ub = Array.unsafe_get sh.out_bufs dst_shard in
  let n = ub.hb_count in
  if n = 0 then Atomic.incr sh.pending;
  if n = Array.length ub.hb_envs then begin
    let grown = Array.make (max 8 (2 * n)) env in
    Array.blit ub.hb_envs 0 grown 0 n;
    ub.hb_envs <- grown
  end;
  ub.hb_envs.(n) <- env;
  ub.hb_count <- n + 1;
  if ub.hb_count >= handoff_batch_max then flush_handoff sh ~dst_shard ub

(* Flush one destination's buffer as a single ring element: one push,
   one [g_inflight] unit, one pop on the far side for the whole
   batch.  Increment-inflight-then-decrement-pending order keeps the
   termination sum from transiently reaching zero. *)
and flush_handoff sh ~dst_shard ub =
  let count = ub.hb_count in
  let batch = Array.sub ub.hb_envs 0 count in
  (* drop the buffer's references: the consumer owns the batch now,
     and a stale slot would otherwise keep packet payloads alive
     until the next burst overwrites it *)
  Array.fill ub.hb_envs 0 count (Obj.magic 0);
  ub.hb_count <- 0;
  sh.batches_out <- sh.batches_out + 1;
  sh.envelopes_out <- sh.envelopes_out + count;
  Metrics.observe_int sh.m_batch_fill count;
  Atomic.incr sh.g.g_inflight;
  push_element sh ~dst_shard (Batch batch);
  Atomic.decr sh.pending

(* Flush every non-empty buffer; called at the shard loop's step/park
   boundary.  Returns the number of batches pushed so the loop can
   tell an idle pass from one that produced work for a sibling. *)
and flush_handoffs sh =
  let flushed = ref 0 in
  Array.iteri
    (fun dst_shard ub ->
      if ub.hb_count > 0 then begin
        flush_handoff sh ~dst_shard ub;
        incr flushed
      end)
    sh.out_bufs;
  !flushed

and push_element sh ~dst_shard el =
  let ring =
    match sh.out_rings.(dst_shard) with
    | Some r -> r
    | None -> assert false (* dst_shard <> sh_id by construction *)
  in
  if not (Spsc.try_push ring el) then begin
    (* Backpressure: the ring is bounded, so spin — but keep draining
       our own inbound rings while we wait, otherwise two shards
       pushing into each other's full rings deadlock. *)
    let spins = ref 0 in
    let pushed = ref false in
    while not !pushed do
      if Atomic.get sh.g.g_stop then begin
        (* the run is being torn down (error or timeout): drop rather
           than block forever against a consumer that already exited.
           A dropped migration is remembered so the merge still sees
           its sites *)
        (match el with
        | Mig m -> sh.lost_migs <- m :: sh.lost_migs
        | Batch _ -> ());
        Atomic.decr sh.g.g_inflight;
        pushed := true
      end
      else if Spsc.try_push ring el then pushed := true
      else begin
        sh.drains <- sh.drains + 1;
        ignore (drain_rings sh);
        incr spins;
        if !spins < 64 then Domain.cpu_relax ()
        else begin
          sh.parks <- sh.parks + 1;
          Unix.sleepf 2e-5
        end
      end
    done
  end

(* Consume one inbound batch: schedule every envelope's delivery
   (each [sched] counts it on [pending]), then — children counted —
   uncount the batch from [g_inflight]. *)
and absorb_batch sh (batch : envelope array) =
  let n = Array.length batch in
  for i = 0 to n - 1 do
    let env = Array.unsafe_get batch i in
    sh.handoffs_in <- sh.handoffs_in + 1;
    Metrics.incr sh.m_handoffs_in;
    let d =
      Simnet.packet_delay sh.sim ~src_ip:env.env_src_ip
        ~dst_ip:env.env_dst_ip ~bytes:env.env_bytes
    in
    let now = Simnet.now sh.sim in
    (* clock merge rule: monotone per receiver *)
    let at = max now (env.env_send_ts + d) in
    Metrics.observe_int sh.m_handoff_lat (at - env.env_send_ts);
    sched sh ~delay:(at - now) (fun () ->
        deliver sh ~at_ip:env.env_dst_ip ~ctx:env.env_span env.env_pkt)
  done;
  Atomic.decr sh.g.g_inflight;
  n

(* Install a migrated node: re-point every site's owner cell, build
   fresh wrappers (the shipper's old ones are stale and stay behind so
   its leftover pump events no-op without cross-domain writes), reset
   the node's core clock, drain the packets that raced ahead, wake the
   busy sites — and only then release the in-transit [g_inflight]
   unit (children counted before the parent is uncounted). *)
and install_migration sh (m : migration) =
  sh.migrations_in <- sh.migrations_in + 1;
  sh.migration_ns <-
    sh.migration_ns
    + int_of_float ((Unix.gettimeofday () -. m.mg_sent_wall) *. 1e9);
  Node.reset_cores m.mg_node;
  let ws =
    List.map
      (fun (site, owner) ->
        owner := sh;
        let w =
          { w_site = site; w_node = m.mg_node; w_owner = owner;
            w_pump_scheduled = false; w_stale = false }
        in
        Hashtbl.replace sh.by_id (Site.site_id site) w;
        sh.wrappers <- w :: sh.wrappers;
        w)
      m.mg_sites
  in
  (match Hashtbl.find_opt sh.limbo m.mg_ip with
  | Some q ->
      Hashtbl.remove sh.limbo m.mg_ip;
      List.iter
        (fun (ctx, p) ->
          sched sh ~delay:0 (fun () -> deliver sh ~at_ip:m.mg_ip ~ctx p))
        (List.rev !q)
  | None -> ());
  List.iter
    (fun w -> if Site.busy w.w_site then request_pump sh w ~delay:0)
    ws;
  Atomic.incr sh.g.g_migrations;
  Atomic.decr sh.g.g_inflight

(* Ship one node to [dst]: the source half of a migration, run at the
   step boundary so no event is mid-flight on this shard.  Publishing
   the new owner *after* taking the in-flight unit and *before*
   retiring the wrappers keeps every window covered: packets arriving
   here afterwards miss [by_id] and forward; packets arriving at the
   destination early park in its limbo under the unit we hold. *)
and ship_node sh ~ip ~dst =
  if
    dst <> sh.sh_id && dst >= 0
    && dst < sh.g.g_domains
    && Atomic.get sh.g.g_shard_map.(ip) = sh.sh_id
  then begin
    let mine =
      List.filter
        (fun w -> (not w.w_stale) && Site.ip w.w_site = ip)
        sh.wrappers
    in
    if mine <> [] then begin
      (* buffered envelopes leave first so per-destination order is
         preserved across the ownership change *)
      ignore (flush_handoffs sh);
      Atomic.incr sh.g.g_inflight;
      Atomic.set sh.g.g_shard_map.(ip) dst;
      List.iter
        (fun w ->
          w.w_stale <- true;
          Hashtbl.remove sh.by_id (Site.site_id w.w_site))
        mine;
      sh.wrappers <- List.filter (fun w -> not w.w_stale) sh.wrappers;
      sh.migrations_out <- sh.migrations_out + 1;
      push_element sh ~dst_shard:dst
        (Mig
           { mg_ip = ip;
             mg_node = (List.hd mine).w_node;
             mg_sites = List.map (fun w -> (w.w_site, w.w_owner)) mine;
             mg_sent_wall = Unix.gettimeofday () })
    end
  end

and absorb_element sh = function
  | Batch batch -> absorb_batch sh batch
  | Mig m ->
      install_migration sh m;
      1

and drain_rings sh =
  let got = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some ring ->
          let draining = ref true in
          while !draining do
            match Spsc.pop_exn ring with
            | el -> got := !got + absorb_element sh el
            | exception Spsc.Empty -> draining := false
          done)
    sh.in_rings;
  !got

and deliver sh ~at_ip ?(ctx = Trace.null_span) ?(same_node = false)
    (p : Packet.t) =
  match p with
  | Packet.Pns_register { site_name; id_name; nref; rtti } ->
      let ns =
        match sh.ns with
        | Some ns -> ns
        | None -> assert false (* ns traffic routes to shard 0 *)
      in
      if sh.tr_on then
        Trace.emit sh.tr ~ts:(Simnet.now sh.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      let waiters =
        Nameservice.register_id ns ~site:site_name ~name:id_name ~rtti nref
      in
      List.iter
        (fun (wtr : Nameservice.waiter) ->
          reply_ns sh ~from_ip:at_ip ~ctx
            (Packet.Pns_reply
               { req_id = wtr.Nameservice.w_req_id;
                 dst_site = wtr.Nameservice.w_site;
                 dst_ip = wtr.Nameservice.w_ip;
                 result = Some nref;
                 rtti }))
        waiters
  | Packet.Pns_lookup { site_name; id_name; req_id; requester_site;
                        requester_ip; _ } -> (
      let ns =
        match sh.ns with Some ns -> ns | None -> assert false
      in
      if sh.tr_on then
        Trace.emit sh.tr ~ts:(Simnet.now sh.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      let waiter =
        { Nameservice.w_req_id = req_id; w_site = requester_site;
          w_ip = requester_ip }
      in
      match Nameservice.lookup_id ns ~site:site_name ~name:id_name waiter with
      | Some (nref, rtti) ->
          reply_ns sh ~from_ip:at_ip ~ctx
            (Packet.Pns_reply
               { req_id; dst_site = requester_site; dst_ip = requester_ip;
                 result = Some nref; rtti })
      | None -> (* parked until the registration arrives *) ())
  | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } ->
      deliver_to_site sh dst.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_req { cls; _ } ->
      deliver_to_site sh cls.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_rep { dst_site; _ } | Packet.Pns_reply { dst_site; _ } ->
      deliver_to_site sh dst_site ~ctx ~same_node p
  | Packet.Prelease { origin_site; _ } ->
      deliver_to_site sh origin_site ~ctx ~same_node p

and reply_ns sh ~from_ip ~ctx p =
  (* mirror of [Cluster.reply_ns]: the reply travels under a child span
     of the request; the name service is not a site, so its [Send]
     lands on the fabric track (shard 0 owns the service, hence the
     fabric events all originate there) *)
  let ctx' =
    if sh.tr_on then Trace.fresh_span sh.tr ~parent:ctx else Trace.null_span
  in
  sched sh ~delay:ns_processing_cost (fun () ->
      if sh.tr_on then
        Trace.emit sh.tr ~ts:(Simnet.now sh.sim) ~track:Trace.fabric_track
          ~span:ctx'
          (Trace.Send { pk = Packet.trace_pk p; bytes = Packet.byte_size p });
      send_packet sh ~src_ip:from_ip ~ctx:ctx' p)

and deliver_to_site sh site_id ~ctx ~same_node p =
  match Hashtbl.find_opt sh.by_id site_id with
  | Some w ->
      if Site.alive w.w_site then begin
        let now = Simnet.now sh.sim in
        if sh.tr_on then
          Trace.emit sh.tr ~ts:now ~track:site_id ~span:ctx
            (Trace.Deliver { pk = Packet.trace_pk p; same_node });
        Site.deliver ~ctx ~now w.w_site p;
        request_pump sh w ~delay:0
      end
      else
        sh.suspected <-
          (Simnet.now sh.sim, Site.name w.w_site) :: sh.suspected
  | None ->
      let ips = sh.g.g_site_ip in
      if site_id < 0 || site_id >= Array.length ips then begin
        sh.dead_letters <- sh.dead_letters + 1;
        sh.suspected <-
          (Simnet.now sh.sim, Printf.sprintf "site#%d" site_id)
          :: sh.suspected
      end
      else begin
        let ip = Array.unsafe_get ips site_id in
        let owner = shard_of_ip sh.g ip in
        if owner <> sh.sh_id then begin
          (* the node migrated away: forward along the current table
             (no packet/byte re-count — the original hop was already
             charged; the hop is zero-distance on the wire model) *)
          sh.forwarded <- sh.forwarded + 1;
          enqueue_handoff sh ~dst_shard:owner
            { env_pkt = p; env_src_ip = ip; env_dst_ip = ip;
              env_send_ts = Simnet.now sh.sim;
              env_bytes = Packet.byte_size p; env_span = ctx }
        end
        else begin
          (* the table says this shard owns the node, but its migration
             envelope has not been popped yet: park the packet in
             limbo.  The envelope's [g_inflight] unit (held until the
             install finishes draining this queue) keeps quiescence
             from firing with the packet parked here *)
          let q =
            match Hashtbl.find_opt sh.limbo ip with
            | Some q -> q
            | None ->
                let q = ref [] in
                Hashtbl.add sh.limbo ip q;
                q
          in
          q := (ctx, p) :: !q
        end
      end

(* ------------------------------------------------------------------ *)
(* The per-domain driver loop.                                         *)

let park_min = 2e-5 (* 20 us *)
let park_max = 1e-3 (* 1 ms *)

let shard_loop sh ~max_events =
  let backoff = ref park_min in
  (try
     while not (Atomic.get sh.g.g_stop) do
       let drained = drain_rings sh in
       (* bounded local batch so inbound rings are polled regularly *)
       let steps = ref 0 in
       while
         !steps < 256
         && (not (Atomic.get sh.g.g_stop))
         && Simnet.step sh.sim
       do
         Atomic.decr sh.pending;
         Atomic.incr sh.executed;
         incr steps
       done;
       (* step/park boundary: everything the local batch produced for
          siblings leaves as one ring push per destination *)
       let flushed = flush_handoffs sh in
       (* a coordinator-posted migration command is consumed here, once
          the local batch's own handoffs are out *)
       let shipped =
         let cmd = Atomic.exchange sh.mig_cmd (-1) in
         if cmd >= 0 then begin
           ship_node sh ~ip:(cmd / sh.g.g_domains)
             ~dst:(cmd mod sh.g.g_domains);
           1
         end
         else 0
       in
       (* the event budget is global — the sum over shards must respect
          [max_events] exactly as [Simnet.run]'s livelock guard does at
          --domains 1, not [domains * max_events] *)
       let executed_total =
         Array.fold_left
           (fun acc c -> acc + Atomic.get c)
           0 sh.g.g_executed
       in
       if executed_total > max_events then
         failwith
           (Printf.sprintf "Par_runner: exceeded %d events (livelock?)"
              max_events);
       if drained = 0 && !steps = 0 && flushed = 0 && shipped = 0 then begin
         (* idle: exponential-backoff parking.  The sleep is what lets
            sibling domains (and the coordinator) run when there are
            more domains than cores. *)
         sh.parks <- sh.parks + 1;
         Unix.sleepf !backoff;
         backoff := Float.min park_max (!backoff *. 2.)
       end
       else backoff := park_min
     done
   with exn ->
     sh.error <- Some exn;
     Atomic.set sh.g.g_stop true)

(* ------------------------------------------------------------------ *)
(* Construction, loading, coordination.                                *)

(* Per-shard section of the run report: ring traffic, occupancy
   high-water, backpressure and parking — the signals that say where a
   parallel run's time went. *)
type shard_stat = {
  ss_shard : int;
  ss_sites : int;
  ss_events : int;
  ss_virtual_ns : int;
  ss_packets : int;
  ss_same_node : int;
  ss_handoffs_in : int; (* envelopes this shard received *)
  ss_ring_pushed : int; (* elements this shard pushed outbound *)
  ss_ring_popped : int; (* elements this shard consumed *)
  ss_ring_hiwater : int; (* max outbound-ring occupancy at push *)
  ss_parks : int;
  ss_drains : int; (* backpressure drain passes while pushing *)
  ss_weight : float; (* placement weight this shard was assigned *)
}

(* A coordinator-side mid-run observation: only whole-run atomics and
   ring counters are read (never shard heaps), so taking one is safe
   while the domains run.  This is what [--metrics-out] streams. *)
type snapshot = {
  sn_wall_ms : float;
  sn_inflight : int;
  sn_executed : int array; (* per shard, monotone *)
  sn_pending : int array;
  sn_ring_pushed : int; (* elements *)
  sn_ring_popped : int;
  sn_migrations : int; (* node installs completed so far *)
}

(* Dynamic-rebalancing knobs ([tycosh --rebalance interval:MS,threshold:R]):
   every [rb_interval_ms] the coordinator reads per-node load deltas
   and, when max-over-mean per-shard load exceeds [rb_threshold],
   issues one migration ({!Placement.choose_migration}). *)
type rebalance = {
  rb_interval_ms : int;
  rb_threshold : float;
}

type result = {
  outputs : (int * Output.event) list; (* merged, sorted by timestamp *)
  virtual_ns : int; (* max over shards *)
  packets : int;
  bytes : int;
  same_node_fast : int;
  handoffs : int; (* envelopes carried by rings *)
  ring_pushed : int; (* elements pushed (= pops after a clean run) *)
  ring_popped : int;
  ring_batch_fill_mean : float; (* envelopes per ring push *)
  parks : int; (* idle/backpressure parks across all shards *)
  domains : int;
  instructions : int; (* total VM instructions, for throughput *)
  wall_ns : int;
  dead_letters : int;
  migrations : int; (* node migrations completed (installs) *)
  migration_ns : int; (* host ns from ship to install, summed *)
  forwarded_envelopes : int; (* packets re-routed via the table *)
  suspected : (int * string) list;
  sites_per_shard : int array;
  placement_weights : float array; (* per-shard assigned weight *)
  node_weights : float array;
      (* measured per-node instruction counts — feed these back as
         [Placement.Profile] for the next run of the same workload *)
  events : int; (* simulation events across all shards *)
  clean : bool; (* quiesced with rings drained, heaps and limbo empty *)
  timed_out : bool;
  trace : Trace.t; (* merged shard-tagged collector; disabled when off *)
  metrics : Metrics.t; (* merged registry; disabled when off *)
  shard_stats : shard_stat array;
  sites : Site.t list; (* post-join reads only (join = happens-before) *)
}

let validate (cfg : Cluster.config) =
  if cfg.Cluster.reliable then
    invalid_arg "Par_runner: reliable delivery requires --domains 1";
  if cfg.Cluster.faults <> Simnet.no_faults then
    invalid_arg "Par_runner: fault injection requires --domains 1";
  if cfg.Cluster.ns_mode <> Cluster.Centralized then
    invalid_arg "Par_runner: replicated name service requires --domains 1"

let ring_capacity = 4096

let run ?(config = Cluster.default_config) ?placement
    ?(policy = Placement.Mod) ?(inputs = fun _ -> [])
    ?(max_events = 10_000_000) ?(max_wall_ms = 120_000) ?on_snapshot
    ?(snapshot_every_ms = 100) ?rebalance ?(force_migrations = [])
    ~domains (units : (string * Tyco_compiler.Block.unit_) list) =
  if domains < 1 then invalid_arg "Par_runner.run: domains must be >= 1";
  validate config;
  let rb_requested = rebalance <> None || force_migrations <> [] in
  if rb_requested && config.Cluster.tracing then
    invalid_arg
      "Par_runner: tracing with dynamic rebalancing requires --domains 1 \
       (a site's trace collector cannot follow it across domains)";
  let nnodes = config.Cluster.nodes in
  List.iter
    (fun (ip, dst) ->
      if ip <= 0 || ip >= nnodes then
        invalid_arg
          (Printf.sprintf
             "Par_runner: cannot migrate node %d (node 0 is pinned; the \
              cluster has %d nodes)"
             ip nnodes);
      if dst < 0 || dst >= domains then
        invalid_arg
          (Printf.sprintf
             "Par_runner: migration of node %d targets shard %d of %d" ip
             dst domains))
    force_migrations;
  (* resolve every site's node first: the placement policy needs the
     per-node site counts before any shard exists *)
  let seen = Hashtbl.create 16 in
  let site_nodes =
    List.mapi
      (fun i (name, _) ->
        if Hashtbl.mem seen name then
          invalid_arg
            (Printf.sprintf "Par_runner.run: duplicate site '%s'" name);
        Hashtbl.add seen name ();
        match placement with
        | Some f ->
            let n = f name in
            if n < 0 || n >= nnodes then
              invalid_arg
                (Printf.sprintf "Par_runner.run: site '%s' placed on node %d"
                   name n)
            else n
        | None -> i mod nnodes)
      units
  in
  let site_counts = Array.make nnodes 0 in
  List.iter (fun n -> site_counts.(n) <- site_counts.(n) + 1) site_nodes;
  let shard_map = Placement.assign ~domains ~site_counts policy in
  assert (Array.length shard_map = nnodes);
  assert (nnodes = 0 || shard_map.(0) = 0) (* NS host pinned to shard 0 *);
  let weights =
    match policy with
    | Placement.Profile w -> w
    | Placement.Mod | Placement.Greedy -> Array.map float_of_int site_counts
  in
  let placement_weights =
    Placement.shard_weights ~domains ~map:shard_map weights
  in
  let g =
    { g_domains = domains;
      g_shard_map = Array.map Atomic.make shard_map;
      g_site_ip =
        Array.of_list site_nodes (* site ids follow unit order below *);
      g_inflight = Atomic.make 0;
      g_stop = Atomic.make false;
      g_executed = Array.init domains (fun _ -> Atomic.make 0);
      g_node_load = Array.init nnodes (fun _ -> Atomic.make 0);
      g_rb_on = rebalance <> None;
      g_migrations = Atomic.make 0 }
  in
  (* ring matrix: rings.(src).(dst) carries src -> dst *)
  let rings =
    Array.init domains (fun src ->
        Array.init domains (fun dst ->
            if src = dst then None
            else Some (Spsc.create ~capacity:ring_capacity)))
  in
  let nodes =
    Array.init nnodes (fun i ->
        Node.create ~node_id:i ~ip:i ~cores:config.Cluster.cores_per_node)
  in
  let shards =
    Array.init domains (fun s ->
        (* per-owner seed derivation: each shard's simulator draws from
           its own stream; nothing is shared with siblings *)
        let seed =
          Int64.to_int
            (Prng.next (Prng.for_owner ~seed:config.Cluster.seed ~owner:s))
          land max_int
        in
        let sim =
          Simnet.create ~topology:config.Cluster.topology
            ~faults:Simnet.no_faults ~seed ()
        in
        (* span ids strided by (shard, domains): globally unique without
           sharing a counter, and at domains = 1 identical to the
           deterministic engine's allocation order *)
        let tr =
          Trace.create ~capacity:config.Cluster.trace_capacity ~span_base:s
            ~span_stride:domains ~enabled:config.Cluster.tracing ()
        in
        if s = 0 then
          Trace.register_track tr ~id:Trace.fabric_track ~name:"fabric" ();
        let mx =
          if config.Cluster.metrics then
            Metrics.create ~label:(Printf.sprintf "shard%d" s) ~enabled:true
              ()
          else Metrics.disabled
        in
        Metrics.set (Metrics.gauge mx "placement_weight")
          (int_of_float (Float.round placement_weights.(s)));
        { sh_id = s;
          g;
          sim;
          quantum = config.Cluster.quantum;
          loopback_delay =
            Simnet.packet_delay sim ~src_ip:0 ~dst_ip:0 ~bytes:0;
          ns = (if s = 0 then Some (Nameservice.create ()) else None);
          by_id = Hashtbl.create 16;
          wrappers = [];
          in_rings = Array.init domains (fun src -> rings.(src).(s));
          out_rings = rings.(s);
          out_bufs =
            Array.init domains (fun _ -> { hb_envs = [||]; hb_count = 0 });
          weight = placement_weights.(s);
          limbo = Hashtbl.create 4;
          mig_cmd = Atomic.make (-1);
          outs = [];
          packets = 0;
          bytes = 0;
          same_node = 0;
          handoffs_in = 0;
          batches_out = 0;
          envelopes_out = 0;
          parks = 0;
          drains = 0;
          dead_letters = 0;
          forwarded = 0;
          migrations_out = 0;
          migrations_in = 0;
          migration_ns = 0;
          lost_migs = [];
          suspected = [];
          busy_until = 0;
          error = None;
          tr;
          tr_on = Trace.enabled tr;
          mx;
          m_packets = Metrics.counter mx "packets";
          m_bytes = Metrics.counter mx "bytes";
          m_same_node = Metrics.counter mx "same_node_fast";
          m_handoffs_in = Metrics.counter mx "handoffs_in";
          m_handoff_lat = Metrics.histogram mx "handoff_lat_ns";
          m_batch_fill = Metrics.histogram mx "ring_batch_fill";
          pending = Atomic.make 0;
          executed = g.g_executed.(s) })
  in
  (* load sites (on the coordinating domain, before any shard domain
     exists — construction is the last moment state is shared).  Any
     packets sites emit while starting are buffered in the owning
     shard's out_bufs; its domain flushes them on its first loop
     iteration. *)
  let next_site_id = ref (-1) in
  List.iter2
    (fun (name, unit_) node_idx ->
      let node = nodes.(node_idx) in
      let sh = shards.(shard_of_ip g (Node.ip node)) in
      (* site ids follow unit order, as before *)
      incr next_site_id;
      let site_id = !next_site_id in
      let lifecycle =
        { Site.lc_lease_ns = config.Cluster.lease_ns;
          lc_refresh_ns = config.Cluster.lease_refresh_ns;
          lc_hold_ns = config.Cluster.lease_hold_ns;
          lc_code_cache = config.Cluster.code_cache_capacity;
          lc_done_horizon_ns =
            Site.default_lifecycle.Site.lc_done_horizon_ns }
      in
      (* the owner cell: the site's callbacks route through whichever
         shard currently owns the node, so a migration only has to
         re-point this one ref *)
      let owner = ref sh in
      let w =
        { w_site =
            Site.create ~inputs:(inputs name)
              ~retry:config.Cluster.site_retry ~lifecycle
              ~on_suspect:(fun who ->
                let sh = !owner in
                sh.suspected <- (Simnet.now sh.sim, who) :: sh.suspected)
              ~trace:sh.tr ~name ~site_id ~ip:(Node.ip node)
              ~send:(fun ctx p ->
                let sh = !owner in
                send_packet sh ~src_ip:(Node.ip node) ~ctx p)
              ~on_output:(fun e ->
                let sh = !owner in
                sh.outs <- (Simnet.now sh.sim, e) :: sh.outs)
              ~unit_ ();
          w_node = node;
          w_owner = owner;
          w_pump_scheduled = false;
          w_stale = false }
      in
      Node.add_site node w.w_site;
      Hashtbl.replace sh.by_id site_id w;
      sh.wrappers <- w :: sh.wrappers;
      Site.start w.w_site;
      request_pump sh w ~delay:0)
    units site_nodes;
  (* forced migrations (the deterministic test hook): posted before the
     domains spawn, so each is consumed at the owning shard's first
     step boundary and is guaranteed installed in a clean run.
     Commands whose shard slot is taken retry from the wait loop. *)
  let forced = ref force_migrations in
  let try_post_forced () =
    forced :=
      List.filter
        (fun (ip, dst) ->
          let src = Atomic.get g.g_shard_map.(ip) in
          if src = dst then false (* already there *)
          else
            not
              (Atomic.compare_and_set shards.(src).mig_cmd (-1)
                 ((ip * domains) + dst)))
        !forced
  in
  try_post_forced ();
  (* run *)
  let t0 = Unix.gettimeofday () in
  let doms =
    Array.map (fun sh -> Domain.spawn (fun () -> shard_loop sh ~max_events))
      shards
  in
  (* Quiescence: [inflight + sum pending] is maintained so it is zero
     only when no work exists anywhere (children are counted before
     parents are uncounted; buffered and in-ring elements — batches
     and nodes in transit alike — are covered by pending/inflight
     until every consequence is scheduled).  Two collects agreeing on
     the monotone executed-count with a zero work-sum close the race
     of reading the counters one by one. *)
  let collect () =
    let work = ref (Atomic.get g.g_inflight) in
    let execd = ref 0 in
    Array.iter
      (fun sh ->
        work := !work + Atomic.get sh.pending;
        execd := !execd + Atomic.get sh.executed)
      shards;
    (!work, !execd)
  in
  let timed_out = ref false in
  (* Mid-run snapshots ([--metrics-out]): reads only whole-run atomics
     and ring counters — never a shard heap — so it is safe while the
     domains run. *)
  let ring_totals () =
    let pushed = ref 0 and popped = ref 0 in
    Array.iter
      (Array.iter (function
        | None -> ()
        | Some r ->
            pushed := !pushed + Spsc.pushed r;
            popped := !popped + Spsc.popped r))
      rings;
    (!pushed, !popped)
  in
  let take_snapshot () =
    match on_snapshot with
    | None -> ()
    | Some f ->
        let pushed, popped = ring_totals () in
        f
          { sn_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.;
            sn_inflight = Atomic.get g.g_inflight;
            sn_executed = Array.map (fun sh -> Atomic.get sh.executed) shards;
            sn_pending = Array.map (fun sh -> Atomic.get sh.pending) shards;
            sn_ring_pushed = pushed;
            sn_ring_popped = popped;
            sn_migrations = Atomic.get g.g_migrations }
  in
  let last_snapshot = ref t0 in
  let maybe_snapshot () =
    if on_snapshot <> None then begin
      let now = Unix.gettimeofday () in
      if (now -. !last_snapshot) *. 1000. >= float_of_int snapshot_every_ms
      then begin
        last_snapshot := now;
        take_snapshot ()
      end
    end
  in
  (* The rebalancer: every interval, turn the per-node load-counter
     deltas into a load estimate and ask {!Placement.choose_migration}
     for at most one move.  One migration is outstanding at a time
     (issued vs installed), so each decision sees the effect of the
     previous one. *)
  let issued = ref 0 in
  let last_rb = ref t0 in
  let last_loads = Array.make nnodes 0 in
  let maybe_rebalance () =
    if !forced <> [] then try_post_forced ()
    else
      match rebalance with
      | None -> ()
      | Some rb ->
          let now = Unix.gettimeofday () in
          if (now -. !last_rb) *. 1000. >= float_of_int rb.rb_interval_ms
          then begin
            last_rb := now;
            let loads =
              Array.mapi
                (fun ip c ->
                  let v = Atomic.get c in
                  let d = v - last_loads.(ip) in
                  last_loads.(ip) <- v;
                  float_of_int d)
                g.g_node_load
            in
            if !issued = Atomic.get g.g_migrations then begin
              let map = Array.map Atomic.get g.g_shard_map in
              match
                Placement.choose_migration ~domains ~map ~loads
                  ~threshold:rb.rb_threshold
              with
              | None -> ()
              | Some (ip, dst) ->
                  let src = map.(ip) in
                  if
                    Atomic.compare_and_set shards.(src).mig_cmd (-1)
                      ((ip * domains) + dst)
                  then incr issued
            end
          end
  in
  let rec wait () =
    if Atomic.get g.g_stop then ()
    else if (Unix.gettimeofday () -. t0) *. 1000. > float_of_int max_wall_ms
    then timed_out := true
    else begin
      maybe_snapshot ();
      maybe_rebalance ();
      let w1, e1 = collect () in
      if w1 = 0 then begin
        let w2, e2 = collect () in
        if w2 = 0 && e1 = e2 then () (* quiescent *)
        else begin
          Unix.sleepf 2e-4;
          wait ()
        end
      end
      else begin
        Unix.sleepf 2e-4;
        wait ()
      end
    end
  in
  wait ();
  Atomic.set g.g_stop true;
  Array.iter Domain.join doms;
  let wall_ns =
    int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
  in
  Array.iter
    (fun sh ->
      match sh.error with
      | Some exn ->
          let msg =
            match exn with
            | Failure m | Site.Protocol_error m -> m
            | e -> Printexc.to_string e
          in
          raise (Shard_failure (sh.sh_id, msg))
      | None -> ())
    shards;
  (* merge (the only time shard state is read from outside) *)
  let outputs =
    List.stable_sort
      (fun (ts1, (e1 : Output.event)) (ts2, e2) ->
        match compare ts1 ts2 with
        | 0 -> compare e1.Output.site e2.Output.site
        | c -> c)
      (Array.fold_left
         (fun acc sh -> List.rev_append sh.outs acc)
         [] shards)
  in
  let sum (f : shard -> int) =
    Array.fold_left (fun acc sh -> acc + f sh) 0 shards
  in
  let ring_pushed = ref 0 and ring_popped = ref 0 and rings_empty = ref true in
  Array.iter
    (Array.iter (function
      | None -> ()
      | Some r ->
          ring_pushed := !ring_pushed + Spsc.pushed r;
          ring_popped := !ring_popped + Spsc.popped r;
          if not (Spsc.is_empty r) then rings_empty := false))
    rings;
  let clean =
    (not !timed_out) && !rings_empty
    && Atomic.get g.g_inflight = 0
    && Array.for_all (fun sh -> Atomic.get sh.pending = 0) shards
    && Array.for_all (fun sh -> Hashtbl.length sh.limbo = 0) shards
  in
  (* every site this shard can account for: its live wrappers plus any
     migration it had to drop at teardown *)
  let shard_sites (sh : shard) =
    List.rev_map (fun w -> w.w_site) sh.wrappers
    @ List.concat_map
        (fun m -> List.map fst m.mg_sites)
        sh.lost_migs
  in
  let instructions =
    sum (fun sh ->
        List.fold_left
          (fun acc s ->
            acc + Stats.counter_value (Site.stats s) "instructions")
          0 (shard_sites sh))
  in
  let node_weights =
    let w = Array.make nnodes 0. in
    Array.iter
      (fun sh ->
        List.iter
          (fun s ->
            let ip = Site.ip s in
            w.(ip) <-
              w.(ip)
              +. float_of_int
                   (Stats.counter_value (Site.stats s) "instructions"))
          (shard_sites sh))
      shards;
    w
  in
  (* Observability merge: fold the shard-confined collectors into run-
     level ones.  [Domain.join] above is the happens-before edge that
     makes every shard-local field safe to read here. *)
  let shard_stats =
    Array.map
      (fun sh ->
        let pushed = ref 0 and hi = ref 0 and popped = ref 0 in
        Array.iter
          (function
            | None -> ()
            | Some r ->
                pushed := !pushed + Spsc.pushed r;
                if Spsc.hiwater r > !hi then hi := Spsc.hiwater r)
          sh.out_rings;
        Array.iter
          (function
            | None -> () | Some r -> popped := !popped + Spsc.popped r)
          sh.in_rings;
        { ss_shard = sh.sh_id;
          ss_sites = Hashtbl.length sh.by_id;
          ss_events = Atomic.get sh.executed;
          ss_virtual_ns = max (Simnet.now sh.sim) sh.busy_until;
          ss_packets = sh.packets;
          ss_same_node = sh.same_node;
          ss_handoffs_in = sh.handoffs_in;
          ss_ring_pushed = !pushed;
          ss_ring_popped = !popped;
          ss_ring_hiwater = !hi;
          ss_parks = sh.parks;
          ss_drains = sh.drains;
          ss_weight = sh.weight })
      shards
  in
  let batches_total = sum (fun sh -> sh.batches_out) in
  let envelopes_total = sum (fun sh -> sh.envelopes_out) in
  let ring_batch_fill_mean =
    if batches_total = 0 then 0.
    else float_of_int envelopes_total /. float_of_int batches_total
  in
  let trace =
    if config.Cluster.tracing then
      Trace.merge
        (Array.to_list (Array.map (fun sh -> (sh.sh_id, sh.tr)) shards))
    else Trace.disabled
  in
  let metrics =
    if config.Cluster.metrics then begin
      let into = Metrics.create ~enabled:true () in
      Array.iteri
        (fun i sh ->
          (* stamp the post-join ring/park/migration signals into the
             shard's own registry so they travel through the merge like
             every other instrument (sum of values, max of high-waters) *)
          let st = shard_stats.(i) in
          Metrics.add (Metrics.counter sh.mx "ring_pushed") st.ss_ring_pushed;
          Metrics.add (Metrics.counter sh.mx "ring_popped") st.ss_ring_popped;
          Metrics.set (Metrics.gauge sh.mx "ring_hiwater") st.ss_ring_hiwater;
          Metrics.add (Metrics.counter sh.mx "parks") st.ss_parks;
          Metrics.add (Metrics.counter sh.mx "drains") st.ss_drains;
          Metrics.add (Metrics.counter sh.mx "migrations") sh.migrations_in;
          Metrics.add (Metrics.counter sh.mx "migration_ns") sh.migration_ns;
          Metrics.add
            (Metrics.counter sh.mx "forwarded_envelopes")
            sh.forwarded;
          Metrics.merge_into ~into sh.mx)
        shards;
      into
    end
    else Metrics.disabled
  in
  let sites =
    List.concat_map
      (fun (sh : shard) -> shard_sites sh)
      (Array.to_list shards)
  in
  { outputs;
    virtual_ns =
      Array.fold_left
        (fun acc sh -> max acc (max (Simnet.now sh.sim) sh.busy_until))
        0 shards;
    packets = sum (fun sh -> sh.packets);
    bytes = sum (fun sh -> sh.bytes);
    same_node_fast = sum (fun sh -> sh.same_node);
    handoffs = sum (fun sh -> sh.handoffs_in);
    ring_pushed = !ring_pushed;
    ring_popped = !ring_popped;
    ring_batch_fill_mean;
    parks = sum (fun sh -> sh.parks);
    domains;
    instructions;
    wall_ns;
    dead_letters = sum (fun sh -> sh.dead_letters);
    migrations = sum (fun sh -> sh.migrations_in);
    migration_ns = sum (fun sh -> sh.migration_ns);
    forwarded_envelopes = sum (fun sh -> sh.forwarded);
    suspected =
      List.concat_map
        (fun (sh : shard) -> List.rev sh.suspected)
        (Array.to_list shards);
    sites_per_shard = Array.map (fun sh -> Hashtbl.length sh.by_id) shards;
    placement_weights;
    node_weights;
    events = sum (fun sh -> Atomic.get sh.executed);
    clean;
    timed_out = !timed_out;
    trace;
    metrics;
    shard_stats;
    sites }

(** A DiTyCO site: the paper's Figure 3 put together.

    A site owns an extended TyCO virtual machine (program area, heap,
    run-queue), an incoming packet queue fed by its node's TyCOd, an
    I/O port, and the two export tables (channels and classes) that
    implement the two-step reference translation of §5:

    - {e outgoing}: local channel/class values leaving the site are
      registered in the export table and replaced by network
      references; every other value travels untouched;
    - {e incoming}: references owned by this site are resolved back to
      heap pointers through the export table; foreign references stay
      symbolic.

    The site also runs the mobility protocols: object shipment carries
    the transitively-needed byte-code (linked on arrival, with a
    per-origin cache so repeated shipments do not bloat the program
    area), and class fetches park the pending instantiation until the
    FETCH reply is linked — the VM meanwhile runs other threads, which
    is the latency-hiding behaviour measured in experiment E5. *)

type t

(** Type descriptors for the dynamic half of the paper's combined
    static/dynamic checking (§7): descriptors of the site's exports
    (sent with name-service registrations) and the local usage
    expectations of its imports (checked when a lookup resolves). *)
type annotations = {
  a_export_rtti : (string * Tyco_types.Rtti.t) list;
  a_import_expect : ((string * string) * Tyco_types.Rtti.t) list;
}

val no_annotations : annotations

(** End-to-end recovery of the request/reply protocols (FETCH and
    name-service lookups): an unanswered request is re-sent under
    exponential backoff ([r_timeout_ns], [r_backoff]) and, after
    [r_max_tries] sends, fails gracefully — a ["fetch-failed"] /
    ["import-failed"] output event plus a suspicion report — instead
    of hanging forever on a dead peer. *)
type retry = {
  r_timeout_ns : int;
  r_backoff : float;
  r_max_tries : int;
}

val default_retry : retry
(** 4 ms initial deadline, doubling, 6 tries (~4 s virtual horizon). *)

(** Resource lifecycle: bounds on the state a site keeps on behalf of
    its peers, so the resident set tracks the live working set instead
    of growing with traffic.

    - [lc_lease_ns]: exported channels/classes live this long past
      their last use (export, resolve, or lease refresh) and are then
      reclaimed — their heap identifiers retired, the slots reused
      under a fresh generation.  [0] (default) disables leases
      entirely: exports, held-import tracking and refresh traffic all
      behave as in the seed.  Name-service registrations are pinned
      and never expire.
    - [lc_refresh_ns]: cadence of the lifecycle tick and of the
      [Prelease] refreshes an importer sends for foreign references it
      still holds; defaults to a quarter of the lease period.
    - [lc_hold_ns]: how long an importer keeps refreshing a foreign
      reference it has not used; defaults to the lease period.
    - [lc_code_cache]: capacity of each receiver-side linking cache
      (LRU; a miss re-links from the shipped code).
    - [lc_done_horizon_ns]: how long answered-request ids stay in the
      duplicate-suppression set; defaults to twice the sender's
      worst-case retry schedule. *)
type lifecycle = {
  lc_lease_ns : int;
  lc_refresh_ns : int;
  lc_hold_ns : int;
  lc_code_cache : int;
  lc_done_horizon_ns : int;
}

val default_lifecycle : lifecycle
(** Leases off, 256-entry code caches, derived done-horizon. *)

val create :
  ?annotations:annotations ->
  ?inputs:int list ->
  ?retry:retry ->
  ?lifecycle:lifecycle ->
  ?schedule:(delay:int -> (unit -> unit) -> unit) ->
  ?on_suspect:(string -> unit) ->
  ?trace:Tyco_support.Trace.t ->
  name:string ->
  site_id:int ->
  ip:int ->
  send:(Tyco_support.Trace.span -> Tyco_net.Packet.t -> unit) ->
  on_output:(Output.event -> unit) ->
  unit_:Tyco_compiler.Block.unit_ ->
  unit ->
  t
(** [send] hands a packet to the node's daemon together with the
    packet's causal span ({!Tyco_support.Trace.null_span} when tracing
    is off); [on_output] observes I/O port events (they are also
    recorded locally).  [schedule] provides virtual timers: when
    present, outstanding FETCH and import requests are given deadlines
    per [retry] (without it, the seed behaviour: requests wait
    forever).  [on_suspect] hears the description of the peer each time
    a request is abandoned.  [trace] is the run's event collector
    (default {!Tyco_support.Trace.disabled}); the site registers a
    track named after itself and emits its VM and protocol events
    there. *)

val name : t -> string
val site_id : t -> int
val ip : t -> int

val start : t -> unit
(** Spawn the entry thread (slot 0 = the I/O port). *)

val deliver :
  ?ctx:Tyco_support.Trace.span -> ?now:int -> t -> Tyco_net.Packet.t -> unit
(** Called by the daemon: enqueue an incoming packet.  [ctx] is the
    span the packet travelled under (defaults to the null span); [now]
    the virtual arrival time, the baseline of the queue-wait sample
    taken when the packet is finally processed. *)

val busy : t -> bool
(** Has runnable threads or unprocessed incoming packets. *)

val outstanding : t -> int
(** In-flight fetch and name-service requests originated here. *)

val pump : ?now:int -> t -> quantum:int -> int
(** One execution quantum: drain the incoming queue, run up to
    [quantum] VM instructions, drain the outgoing remote operations.
    Returns the virtual-time cost in ns.  [now] is the quantum's
    virtual start time (default [0]); it seeds the VM clock so trace
    events and the [queue_wait_ns]/[execute_ns] distributions carry
    simulation timestamps. *)

val kill : t -> unit
(** Site failure injection: drops all state; subsequent deliveries are
    discarded. *)

val alive : t -> bool
val outputs : t -> Output.event list

val stats : t -> Tyco_support.Stats.t
(** Shared with the VM's registry.  Besides the machine's counters it
    holds the site's protocol counters and the two site-side halves of
    the latency breakdown: distributions [queue_wait_ns] (arrival to
    processing of each incoming packet) and [execute_ns] (VM cost per
    pump quantum). *)

val vm : t -> Tyco_vm.Machine.t

(** Snapshot of the site's resident protocol state, for reports and
    the soak benchmarks.  [allocated = live + reclaimed] per table. *)
type mem_stats = {
  m_chan_live : int;
  m_chan_allocated : int;
  m_chan_reclaimed : int;
  m_class_live : int;
  m_class_allocated : int;
  m_class_reclaimed : int;
  m_done_reqs : int;       (** duplicate-suppression entries resident *)
  m_obj_cache : int;       (** object-shipment linking cache occupancy *)
  m_grp_cache : int;       (** class-fetch linking cache occupancy *)
  m_fetch_cache : int;     (** fetched classes resident *)
  m_held : int;            (** foreign references tracked for refresh *)
}

val memory : t -> mem_stats

exception Protocol_error of string
(** Dynamic-check failures on incoming packets (unknown heap id, kind
    mismatch, malformed code).  The paper's combined static/dynamic
    scheme guarantees typed programs never trigger these.  A reference
    to an identifier the site {e reclaimed} is different: it drops the
    packet with a ["stale-ref"] output event instead of raising —
    expected behaviour when lease reclamation races in-flight
    traffic. *)

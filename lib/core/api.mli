(** The public façade of the DiTyCO run-time system.

    Pipeline: {!parse} → {!typecheck} → {!compile} → {!run_program}
    (or just {!run_source} for all four).  The reference semantics is
    reachable through {!run_reference} — every typed program must
    produce the same multiset of I/O events under both engines, which
    {!agree_with_reference} checks directly. *)

type error =
  | Parse_error of string
  | Type_error of string
  | Compile_error of string
  | Runtime_error of string

exception Error of error

val error_message : error -> string

val parse : ?file:string -> string -> Tyco_syntax.Ast.program
(** Raises [Error (Parse_error _)]. *)

val typecheck : Tyco_syntax.Ast.program -> Tyco_types.Infer.info
val compile : Tyco_syntax.Ast.program -> (string * Tyco_compiler.Block.unit_) list

type result = {
  outputs : (int * Output.event) list; (** timestamped, chronological *)
  virtual_ns : int;        (** total simulated time *)
  sim_events : int;        (** discrete events processed *)
  packets : int;
  bytes : int;
  cluster : Cluster.t;     (** for further inspection *)
}

val run_program :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?max_events:int ->
  ?until:int ->
  ?inputs:(string * int list) list ->
  ?typecheck:bool ->
  ?isolated:bool ->
  Tyco_syntax.Ast.program ->
  result
(** Compile, place, and run a program on a fresh simulated cluster.
    [until] bounds virtual time (for perpetual programs); [typecheck]
    defaults to [true].  With [isolated] (default [false]) each site is
    type-checked {e separately} and the runtime performs the paper's
    dynamic type checking: exports register with type descriptors, and
    an import whose local usage is incompatible with the exporter's
    descriptor fails with a protocol error instead of misbehaving. *)

val run_source :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?max_events:int ->
  ?until:int ->
  string ->
  result

val run_parallel :
  ?config:Cluster.config ->
  ?placement:(string -> int) ->
  ?policy:Placement.policy ->
  ?inputs:(string * int list) list ->
  ?max_events:int ->
  ?typecheck:bool ->
  ?on_snapshot:(Par_runner.snapshot -> unit) ->
  ?snapshot_every_ms:int ->
  ?rebalance:Par_runner.rebalance ->
  ?force_migrations:(int * int) list ->
  domains:int ->
  Tyco_syntax.Ast.program ->
  Par_runner.result
(** The [--domains] dispatch.  [domains <= 1] runs the deterministic
    single-domain scheduler through {!run_program} — bit-identical to
    a plain run, timestamps and all (test-pinned) — and reports it in
    {!Par_runner.result} form.  [domains > 1] runs the sharded
    multi-domain engine ({!Par_runner.run}): same output multiset,
    interleaving-dependent timestamps; [policy] picks the node-to-shard
    placement ({!Placement.Mod} by default, ignored at [domains <= 1]);
    [on_snapshot] / [snapshot_every_ms] stream coordinator-side mid-run
    observations, [rebalance] turns on dynamic node migration and
    [force_migrations] issues deterministic test moves — all ignored
    when [domains <= 1], whose engine runs to quiescence in one call
    with nowhere to migrate.

    A crash inside one shard's domain surfaces here as
    [Error (Runtime_error m)] with [m] naming the failing shard
    (["shard N failed: ..."]), never as a bare exception from
    [Domain.join]. *)

val load_isolated :
  ?placement:(string -> int) -> Cluster.t -> Tyco_syntax.Ast.program -> unit
(** Type-check each site in isolation, compile, and submit to an
    existing (possibly already running) cluster — the incremental
    TyCOsh workflow.  Cross-program imports are validated dynamically
    when they resolve. *)

val run_reference :
  ?max_steps:int -> ?inputs:(string * int list) list ->
  Tyco_syntax.Ast.program -> Output.event list
(** The calculus-level oracle (reference interpreter).  [inputs] feeds
    each site's I/O port, as in {!run_program}. *)

val agree_with_reference :
  ?max_steps:int -> ?inputs:(string * int list) list ->
  Tyco_syntax.Ast.program -> bool
(** Differential check: VM runtime vs reference semantics, compared as
    output multisets. *)

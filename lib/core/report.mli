(** Machine-readable run summaries.

    Experiment pipelines want the numbers without scraping text:
    {!of_result} snapshots a finished run — totals, outputs with
    virtual timestamps, per-site VM statistics — and {!to_json} emits
    it as JSON (a minimal self-contained emitter; no external
    dependency).  [tycosh --json] prints it. *)

type site_stats = {
  ss_name : string;
  ss_instructions : int;
  ss_threads : int;
  ss_comm_local : int;
  ss_packets_in : int;
  ss_packets_out : int;
  ss_fetches : int;
  ss_links : int;
  ss_thread_len_mean : float;
  ss_thread_len_p95 : float;
  ss_runq_depth_mean : float;
      (** mean run-queue depth at quantum start — the latency-hiding
          evidence: deep queues mean remote waits are overlapped *)
}

(** Where a run's latency went (summaries are [None] when no samples
    were recorded — emitted as [null], never [inf]):
    - [b_queue_wait] — packet arrival to processing, pooled over sites;
    - [b_wire] — physical link delay per transmission;
    - [b_retransmit] — time spent waiting on unacknowledged frames
      (reliable mode only);
    - [b_execute] — VM cost per pump quantum, pooled over sites;
    - [b_flush_wait] — time packets sat in their destination outbox
      before the batch flush (all zero at the default 0 ns flush
      deadline; nonzero deadlines trade this latency for fill). *)
type breakdown = {
  b_queue_wait : Tyco_support.Stats.Dist.summary option;
  b_wire : Tyco_support.Stats.Dist.summary option;
  b_retransmit : Tyco_support.Stats.Dist.summary option;
  b_execute : Tyco_support.Stats.Dist.summary option;
  b_flush_wait : Tyco_support.Stats.Dist.summary option;
}

(** Resident protocol state summed over sites (live export-table and
    cache occupancy, duplicate-suppression entries, tracked foreign
    references) plus lifetime reclamation counters.  A bounded run
    shows flat [*_live] numbers against growing [*_allocated] /
    [mem_ids_reclaimed] ones.  The [mem_gc_*] fields are the host
    process's {!Gc.quick_stat}, meaningful for wall-clock runs. *)
type memory = {
  mem_chan_live : int;
  mem_chan_allocated : int;
  mem_class_live : int;
  mem_class_allocated : int;
  mem_done_reqs : int;
  mem_code_cache : int;
  mem_fetch_cache : int;
  mem_held_imports : int;
  mem_ids_reclaimed : int;
  mem_leases_expired : int;
  mem_lease_refreshes : int;
  mem_stale_refs : int;
  mem_done_pruned : int;
  mem_cache_evictions : int;
  mem_held_dropped : int;
  mem_gc_minor_words : float;
  mem_gc_major_words : float;
  mem_gc_heap_words : int;
}

type t = {
  virtual_ns : int;
  sim_events : int;
  packets : int;
  bytes : int;
  same_node_fast : int;
      (** deliveries that used the same-node shared-memory fast path
          (no serialization; excluded from [packets]/[bytes]) *)
  frames_sent : int;
      (** physical frames across the fabric (batches, data frames,
          retransmissions, acks); [frames_sent /. packets] is the
          framing overhead batching amortizes *)
  batch_fill_mean : float;
      (** mean packets per flushed batch ([0.] when batching is off or
          nothing crossed nodes) *)
  acks_piggybacked : int;
      (** cumulative acks carried by reverse-direction batches instead
          of standalone ack frames *)
  outputs : (int * Output.event) list;
  sites : site_stats list;
  breakdown : breakdown;
  suspected_failures : (int * string) list;
  memory : memory;
}

val of_result : Api.result -> t
val of_cluster : Cluster.t -> t

val to_json : t -> string
(** Compact single-line JSON. *)

val par_json : Par_runner.result -> string
(** JSON for a multi-domain run ({!Par_runner}): domain count, ring
    handoff and park counters, a per-shard section
    ({!Par_runner.shard_stat}: ring traffic, occupancy high-water,
    backpressure drains, parks), a latency breakdown with
    p50/p95/p99/p999 per component (queue-wait and execute pooled over
    all shards' sites; cross-domain handoff latency when [--metrics]
    is on), and merged outputs.  [tycosh --json --domains N] (N > 1)
    prints this instead of {!to_json}. *)

val json_escape : string -> string
(** Exposed for tests: JSON string escaping. *)

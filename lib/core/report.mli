(** Machine-readable run summaries.

    Experiment pipelines want the numbers without scraping text:
    {!of_result} snapshots a finished run — totals, outputs with
    virtual timestamps, per-site VM statistics — and {!to_json} emits
    it as JSON (a minimal self-contained emitter; no external
    dependency).  [tycosh --json] prints it. *)

type site_stats = {
  ss_name : string;
  ss_instructions : int;
  ss_threads : int;
  ss_comm_local : int;
  ss_packets_in : int;
  ss_packets_out : int;
  ss_fetches : int;
  ss_links : int;
  ss_thread_len_mean : float;
  ss_thread_len_p95 : float;
  ss_runq_depth_mean : float;
      (** mean run-queue depth at quantum start — the latency-hiding
          evidence: deep queues mean remote waits are overlapped *)
}

(** Where a run's latency went (summaries are [None] when no samples
    were recorded — emitted as [null], never [inf]):
    - [b_queue_wait] — packet arrival to processing, pooled over sites;
    - [b_wire] — physical link delay per transmission;
    - [b_retransmit] — time spent waiting on unacknowledged frames
      (reliable mode only);
    - [b_execute] — VM cost per pump quantum, pooled over sites;
    - [b_flush_wait] — time packets sat in their destination outbox
      before the batch flush (all zero at the default 0 ns flush
      deadline; nonzero deadlines trade this latency for fill). *)
type breakdown = {
  b_queue_wait : Tyco_support.Stats.Dist.summary option;
  b_wire : Tyco_support.Stats.Dist.summary option;
  b_retransmit : Tyco_support.Stats.Dist.summary option;
  b_execute : Tyco_support.Stats.Dist.summary option;
  b_flush_wait : Tyco_support.Stats.Dist.summary option;
}

type t = {
  virtual_ns : int;
  sim_events : int;
  packets : int;
  bytes : int;
  same_node_fast : int;
      (** deliveries that used the same-node shared-memory fast path
          (no serialization; excluded from [packets]/[bytes]) *)
  frames_sent : int;
      (** physical frames across the fabric (batches, data frames,
          retransmissions, acks); [frames_sent /. packets] is the
          framing overhead batching amortizes *)
  batch_fill_mean : float;
      (** mean packets per flushed batch ([0.] when batching is off or
          nothing crossed nodes) *)
  acks_piggybacked : int;
      (** cumulative acks carried by reverse-direction batches instead
          of standalone ack frames *)
  outputs : (int * Output.event) list;
  sites : site_stats list;
  breakdown : breakdown;
  suspected_failures : (int * string) list;
}

val of_result : Api.result -> t
val of_cluster : Cluster.t -> t

val to_json : t -> string
(** Compact single-line JSON. *)

val json_escape : string -> string
(** Exposed for tests: JSON string escaping. *)

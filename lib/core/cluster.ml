module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Latency = Tyco_net.Latency
module Nameservice = Tyco_net.Nameservice
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats
module Prng = Tyco_support.Prng
module Trace = Tyco_support.Trace
module Metrics = Tyco_support.Metrics
module Dq = Tyco_support.Dq

(* The paper's first implementation uses a centralized name service;
   its stated future work is a distributed one "for reasons of both
   redundancy (for failure recovery) and performance".  [Replicated]
   keeps one replica per node: lookups are answered by the local
   replica (a shared-memory hop), registrations broadcast to all
   replicas over the cluster links. *)
type ns_mode = Centralized | Replicated

(* Daemon-level retransmission: an unacknowledged frame is re-sent
   under exponential backoff (jittered via the simulation PRNG) up to
   [max_attempts] times before the destination is suspected. *)
type retry_params = {
  rto_ns : int;
  rto_backoff : float;
  max_attempts : int;
}

let default_retry_params =
  { rto_ns = 300_000; rto_backoff = 2.0; max_attempts = 12 }

type config = {
  nodes : int;
  cores_per_node : int;
  quantum : int;
  topology : Simnet.topology;
  seed : int;
  ns_mode : ns_mode;
  ns_replicas : int;
  faults : Simnet.fault_model;
  reliable : bool;
  retry : retry_params;
  site_retry : Site.retry;
  tracing : bool;
  trace_capacity : int;
  metrics : bool;
  packet_log_capacity : int;
  batching : bool;
  flush_max_packets : int;
  flush_max_bytes : int;
  flush_deadline_ns : int;
  ack_delay_ns : int;
  lease_ns : int;
  lease_refresh_ns : int;
  lease_hold_ns : int;
  code_cache_capacity : int;
}

(* Flush defaults tuned by bench E16: a deadline of 0 virtual ns still
   coalesces everything a site emits within one scheduling event (the
   flush runs as a separate event at the same timestamp, after the
   current pump), so bursts batch fully while a lone packet is never
   delayed.  The ack delay is well under the retransmission timeout so
   delayed acks cannot cause spurious retransmits. *)
let default_config =
  { nodes = 4;
    cores_per_node = 2;
    quantum = 512;
    topology = Simnet.default_topology;
    seed = 42;
    ns_mode = Centralized;
    ns_replicas = 0;
    faults = Simnet.no_faults;
    reliable = false;
    retry = default_retry_params;
    site_retry = Site.default_retry;
    tracing = false;
    trace_capacity = 65536;
    metrics = false;
    packet_log_capacity = 4096;
    batching = true;
    flush_max_packets = 16;
    flush_max_bytes = 8192;
    flush_deadline_ns = 0;
    ack_delay_ns = 30_000;
    lease_ns = 0;
    lease_refresh_ns = 0;
    lease_hold_ns = 0;
    code_cache_capacity = Site.default_lifecycle.Site.lc_code_cache }

type wrapper = {
  site : Site.t;
  node : Node.t;
  mutable pump_scheduled : bool;
}

(* Per-(src, dst) transmit coalescing: packets headed for the same
   node wait here until a flush — by packet-count threshold, byte
   threshold, or deadline — turns them into one [Fbatch] frame. *)
type outbox = {
  ob_src_ip : int;
  ob_dst_ip : int;
  (* parallel buffers of queued packets, reused across flushes: they
     grow to the connection's burst high-water mark once and are never
     shrunk, so a steady sender enqueues with zero allocation *)
  mutable ob_pkts : Packet.t array;
  mutable ob_ctxs : Trace.span array;
  mutable ob_sizes : int array;   (* payload bytes *)
  mutable ob_enq_ts : int array;  (* enqueue timestamps *)
  mutable ob_count : int;
  mutable ob_bytes : int;
  mutable ob_flush_scheduled : bool;
}

(* One reliable batch transmission: retransmitted whole (minus the
   cumulatively-acked prefix) until the peer's ack floor passes its
   last sequence number. *)
type bxmit = {
  bx_src_ip : int;
  bx_dst_ip : int;
  mutable bx_base_seq : int; (* seq of [bx_pkts.(bx_lo)] *)
  (* the flushed batch, snapshotted from the outbox; content is frozen,
     acked prefixes advance [bx_lo] instead of rebuilding a list *)
  bx_pkts : Packet.t array;
  bx_ctxs : Trace.span array;
  bx_sizes : int array;
  mutable bx_lo : int;
  mutable bx_payload_bytes : int; (* of the unacked suffix *)
  bx_span : Trace.span; (* the batch's fabric span, kept across retries *)
  mutable bx_attempts : int;
  mutable bx_done : bool; (* fully acked, or given up *)
}

(* Receiver-side delayed-ack state towards one peer: [ak_need] is set
   by every arriving data batch and cleared by whichever ack goes out
   first — the piggybacked floor on a reverse-direction batch, or the
   standalone [Fcum_ack] the timer sends. *)
type ack_state = { mutable ak_need : bool; mutable ak_armed : bool }

type t = {
  cfg : config;
  sim : Simnet.t;
  replicas : Nameservice.t array;  (* one in Centralized mode *)
  ns_ip : int;
  node_arr : Node.t array;
  by_name : (string, wrapper) Hashtbl.t;
  by_id : (int, wrapper) Hashtbl.t;
  mutable wrappers : wrapper list; (* reversed creation order *)
  mutable next_site_id : int;
  mutable outs : (int * Output.event) list; (* newest first *)
  mutable packets : int;
  mutable bytes : int;
  mutable in_flight : int;
  mutable suspected : (int * string) list;
  mutable busy_until : int;  (* completion time of the latest quantum *)
  (* send-time packet log: a bounded ring (oldest dropped past
     [packet_log_capacity] — the unbounded list it replaces grew with
     every packet of a long run) *)
  plog : (int * Packet.t) Dq.t;
  mutable plog_dropped : int;
  tracer : Trace.t;
  tr_on : bool; (* cached [Trace.enabled tracer]; fixed at creation *)
  (* metrics registry (off = shared disabled singleton; each bump below
     is one load of the instrument's own flag and a branch) *)
  mx : Metrics.t;
  m_packets : Metrics.counter;
  m_bytes : Metrics.counter;
  m_same_node : Metrics.counter;
  m_deliveries : Metrics.counter;
  m_wire_ns : Metrics.histogram;
  (* Same-node delivery latency (shared memory, zero payload bytes):
     constant for the whole run, precomputed so the same-node fast path
     never consults the link model per packet. *)
  loopback_delay : int;
  (* batching state *)
  outboxes : (int * int, outbox) Hashtbl.t;
  (* per-connection unacked batches, front = oldest.  Batches enter in
     contiguous sequence order and a cumulative ack acknowledges a
     prefix of the stream, so acks only ever touch a front segment:
     [apply_cum_ack] pops acked fronts in O(1) each instead of the
     O(queue) [List.filter] rebuild this deque replaces.  Timed-out
     batches are marked [bx_done] in place and popped lazily when they
     surface at the front. *)
  pending_batches : (int * int, bxmit Dq.t) Hashtbl.t;
  ack_states : (int * int, ack_state) Hashtbl.t;
  (* fault/reliability bookkeeping *)
  stats : Stats.t;
  c_drops : Stats.Counter.t;
  c_dupes : Stats.Counter.t;
  c_reorders : Stats.Counter.t;
  c_retries : Stats.Counter.t;
  c_dupes_suppressed : Stats.Counter.t;
  c_timeouts : Stats.Counter.t;
  c_acks : Stats.Counter.t;
  c_dead_letters : Stats.Counter.t;
  c_same_node : Stats.Counter.t;
  c_frames : Stats.Counter.t;
  c_acks_piggybacked : Stats.Counter.t;
  d_lat_wire : Stats.Dist.t;
  d_lat_retransmit : Stats.Dist.t;
  d_batch_fill : Stats.Dist.t;
  d_flush_wait : Stats.Dist.t;
}

(* Cost of a name-service transaction at the service itself. *)
let ns_processing_cost = 1_000

(* Scheduling overhead added after each quantum (context switch). *)
let context_switch_cost = 200

let create ?(config = default_config) () =
  let sim =
    Simnet.create ~topology:config.topology ~faults:config.faults
      ~seed:config.seed ()
  in
  let stats = Stats.create () in
  let tracer =
    Trace.create ~capacity:config.trace_capacity ~enabled:config.tracing ()
  in
  Trace.register_track tracer ~id:Trace.fabric_track ~name:"fabric" ();
  let mx = if config.metrics then Metrics.create ~enabled:true () else Metrics.disabled in
  { cfg = config;
    sim;
    replicas =
      (match config.ns_mode with
      | Centralized -> [| Nameservice.create () |]
      | Replicated ->
          (* replica [r] is hosted by node ip [r]; fewer replicas than
             nodes is allowed — nodes without one consult ip mod r *)
          let n =
            if config.ns_replicas <= 0 then config.nodes
            else min config.nodes config.ns_replicas
          in
          Array.init n (fun _ -> Nameservice.create ()));
    (* in centralized mode the service lives on node 0's address, as a
       well-known location every site knows in advance (paper §5) *)
    ns_ip = 0;
    node_arr =
      Array.init config.nodes (fun i ->
          Node.create ~node_id:i ~ip:i ~cores:config.cores_per_node);
    by_name = Hashtbl.create 16;
    by_id = Hashtbl.create 16;
    wrappers = [];
    next_site_id = 0;
    outs = [];
    packets = 0;
    bytes = 0;
    in_flight = 0;
    suspected = [];
    busy_until = 0;
    plog = Dq.create ();
    plog_dropped = 0;
    tracer;
    tr_on = Trace.enabled tracer;
    mx;
    m_packets = Metrics.counter mx "packets";
    m_bytes = Metrics.counter mx "bytes";
    m_same_node = Metrics.counter mx "same_node_fast";
    m_deliveries = Metrics.counter mx "deliveries";
    m_wire_ns = Metrics.histogram mx "wire_ns";
    loopback_delay = Simnet.packet_delay sim ~src_ip:0 ~dst_ip:0 ~bytes:0;
    outboxes = Hashtbl.create 16;
    pending_batches = Hashtbl.create 16;
    ack_states = Hashtbl.create 16;
    stats;
    c_drops = Stats.counter stats "drops";
    c_dupes = Stats.counter stats "dupes";
    c_reorders = Stats.counter stats "reorders";
    c_retries = Stats.counter stats "retries";
    c_dupes_suppressed = Stats.counter stats "dupes_suppressed";
    c_timeouts = Stats.counter stats "timeouts";
    c_acks = Stats.counter stats "acks";
    c_dead_letters = Stats.counter stats "dead_letters";
    c_same_node = Stats.counter stats "same_node_fast";
    c_frames = Stats.counter stats "frames";
    c_acks_piggybacked = Stats.counter stats "acks_piggybacked";
    d_lat_wire = Stats.dist stats "lat_wire";
    d_lat_retransmit = Stats.dist stats "lat_retransmit";
    d_batch_fill = Stats.dist stats "batch_fill";
    d_flush_wait = Stats.dist stats "lat_flush_wait";
  }

let sim t = t.sim
let config t = t.cfg
let virtual_time t = max (Simnet.now t.sim) t.busy_until
let site t name = (Hashtbl.find t.by_name name).site
let sites t = List.rev_map (fun w -> w.site) t.wrappers
let nodes t = Array.to_list t.node_arr
let outputs t = List.rev t.outs
let output_events t = List.rev_map snd t.outs
let packets_sent t = t.packets
let bytes_sent t = t.bytes
let in_flight t = t.in_flight
let name_service_pending t =
  Array.fold_left (fun acc ns -> acc + Nameservice.pending ns) 0 t.replicas

(* The replica a node consults: its own in Replicated mode. *)
let replica_of t ip =
  match t.cfg.ns_mode with
  | Centralized -> t.replicas.(0)
  | Replicated -> t.replicas.(ip mod Array.length t.replicas)
let suspected_failures t = List.rev t.suspected

let log_packet t p =
  (* capacity 0 disables the log: no ring churn and no virtual-clock
     read per packet — only the dropped count is maintained, as the
     push-then-evict sequence it replaces did *)
  if t.cfg.packet_log_capacity = 0 then
    t.plog_dropped <- t.plog_dropped + 1
  else begin
    Dq.push_back t.plog (Simnet.now t.sim, p);
    if Dq.length t.plog > t.cfg.packet_log_capacity then begin
      ignore (Dq.pop_front t.plog);
      t.plog_dropped <- t.plog_dropped + 1
    end
  end

let packet_trace t = Dq.to_list t.plog

let packet_trace_dropped t = t.plog_dropped
let tracer t = t.tracer
let metrics t = t.mx
let stats t = t.stats
let dead_letters t = Stats.Counter.value t.c_dead_letters
let same_node_fast t = Stats.Counter.value t.c_same_node
let frames_sent t = Stats.Counter.value t.c_frames
let acks_piggybacked t = Stats.Counter.value t.c_acks_piggybacked

let batch_fill_mean t =
  if Stats.Dist.count t.d_batch_fill = 0 then 0.
  else Stats.Dist.mean t.d_batch_fill

let node_of_ip t ip = t.node_arr.(ip)

let outbox_of t ~src_ip ~dst_ip =
  match Hashtbl.find_opt t.outboxes (src_ip, dst_ip) with
  | Some ob -> ob
  | None ->
      let ob =
        { ob_src_ip = src_ip; ob_dst_ip = dst_ip; ob_pkts = [||];
          ob_ctxs = [||]; ob_sizes = [||]; ob_enq_ts = [||];
          ob_count = 0; ob_bytes = 0; ob_flush_scheduled = false }
      in
      Hashtbl.add t.outboxes (src_ip, dst_ip) ob;
      ob

let ack_state_of t ~at_ip ~peer_ip =
  match Hashtbl.find_opt t.ack_states (at_ip, peer_ip) with
  | Some st -> st
  | None ->
      let st = { ak_need = false; ak_armed = false } in
      Hashtbl.add t.ack_states (at_ip, peer_ip) st;
      st

let pending_of t ~src_ip ~dst_ip =
  match Hashtbl.find_opt t.pending_batches (src_ip, dst_ip) with
  | Some q -> q
  | None ->
      let q = Dq.create () in
      Hashtbl.add t.pending_batches (src_ip, dst_ip) q;
      q

(* One reliable transmission: a frame retransmitted until the peer
   daemon acknowledges it (or attempts are exhausted). *)
type xmit = {
  x_src_ip : int;
  x_dst_ip : int;
  x_seq : int;
  x_packet : Packet.t;
  x_span : Trace.span; (* the packet's causal span, kept across retries *)
  x_bytes : int;
  mutable x_attempts : int;
  mutable x_acked : bool;
}

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let rec request_pump t w ~delay =
  if (not w.pump_scheduled) && Site.alive w.site then begin
    w.pump_scheduled <- true;
    Simnet.schedule t.sim ~delay (fun () -> pump_event t w)
  end

and pump_event t w =
  w.pump_scheduled <- false;
  if Site.alive w.site then begin
    let now = Simnet.now t.sim in
    let core, free = Node.earliest_core w.node in
    if free > now then
      (* all processors busy: wait for one (Fig. 1's dual-CPU nodes) *)
      request_pump t w ~delay:(free - now)
    else begin
      let cost = Site.pump ~now w.site ~quantum:t.cfg.quantum in
      let duration = cost + context_switch_cost in
      Node.occupy w.node ~core ~until:(now + duration);
      t.busy_until <- max t.busy_until (now + duration);
      if Site.busy w.site then request_pump t w ~delay:duration
    end
  end

(* ------------------------------------------------------------------ *)
(* Packet transport (the TyCOd role).                                  *)

(* One physical transmission over the fabric: rolls the fault dice and
   schedules [action] once per surviving copy. *)
and transmit t ~src_ip ~dst_ip ~bytes action =
  let base = Simnet.packet_delay t.sim ~src_ip ~dst_ip ~bytes in
  Stats.Dist.add_int t.d_lat_wire base;
  Metrics.observe_int t.m_wire_ns base;
  if not (Simnet.faulted_link t.sim ~src_ip ~dst_ip) then begin
    (* clean link: exactly one copy at the base delay — no verdict
       record, no delay list, no PRNG consumption *)
    t.in_flight <- t.in_flight + 1;
    Simnet.schedule t.sim ~delay:base (fun () ->
        t.in_flight <- t.in_flight - 1;
        action ())
  end
  else begin
    let v = Simnet.fault_verdict t.sim ~src_ip ~dst_ip ~base_delay:base in
    Stats.Counter.add t.c_drops v.Simnet.v_dropped;
    if v.Simnet.v_duplicated then Stats.Counter.incr t.c_dupes;
    Stats.Counter.add t.c_reorders v.Simnet.v_reordered;
    List.iter
      (fun delay ->
        t.in_flight <- t.in_flight + 1;
        Simnet.schedule t.sim ~delay (fun () ->
            t.in_flight <- t.in_flight - 1;
            action ()))
      v.Simnet.v_delays
  end

and route_ip t ~src_ip (p : Packet.t) =
  match (t.cfg.ns_mode, p) with
  (* replicated service: consult the nearest replica — the local one
     when this node hosts a replica, otherwise the node (ip mod
     replicas) that hosts this node's home replica.  Replica indices
     and node ips must not be conflated: replica [r] lives on node ip
     [r], which is only every node when there are as many replicas as
     nodes. *)
  | Replicated, (Packet.Pns_register _ | Packet.Pns_lookup _) ->
      src_ip mod Array.length t.replicas
  | _ -> Packet.dst_ip p ~ns_ip:t.ns_ip

and send_packet t ~src_ip ?(ctx = Trace.null_span) (p : Packet.t) =
  let dst_ip = route_ip t ~src_ip p in
  if dst_ip = src_ip then begin
    (* Same-node fast path (the paper's same-node optimization): both
       endpoints share the node's memory, so the packet is handed to the
       destination inbox as-is — no wire encode/decode, no size
       accounting, and no frame/ack machinery even in reliable mode
       (loopback traffic is exempt from the fault model).  Only the
       shared-memory latency is charged.  [in_flight] is still
       maintained: quiescence detection counts these deliveries.  The
       causal span still travels — by reference, like the packet. *)
    Stats.Counter.incr t.c_same_node;
    Metrics.incr t.m_same_node;
    log_packet t p;
    t.in_flight <- t.in_flight + 1;
    Simnet.schedule t.sim ~delay:t.loopback_delay (fun () ->
        t.in_flight <- t.in_flight - 1;
        deliver t ~at_ip:dst_ip ~ctx ~same_node:true p)
  end
  else begin
    Metrics.incr t.m_packets;
    if t.cfg.batching then enqueue_outbox t ~src_ip ~dst_ip ~ctx p
    else if t.cfg.reliable then send_reliable t ~src_ip ~dst_ip ~ctx p
    else begin
      let bytes = Packet.byte_size p in
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + bytes;
      Metrics.add t.m_bytes bytes;
      Stats.Counter.incr t.c_frames;
      log_packet t p;
      transmit t ~src_ip ~dst_ip ~bytes (fun () ->
          deliver t ~at_ip:dst_ip ~ctx p)
    end
  end

(* ------------------------------------------------------------------ *)
(* Batched transmit path.

   Every cross-node packet is counted ([packets], [bytes] of its
   payload contribution, packet log) exactly once, here at enqueue;
   the flush then charges the fabric one frame and one latency sample
   for the whole batch.  [in_flight] covers outbox residency so
   quiescence detection cannot fire between enqueue and flush. *)

and enqueue_outbox t ~src_ip ~dst_ip ~ctx (p : Packet.t) =
  let ob = outbox_of t ~src_ip ~dst_ip in
  let bytes = Packet.byte_size p in
  t.packets <- t.packets + 1;
  Metrics.add t.m_bytes bytes;
  log_packet t p;
  t.in_flight <- t.in_flight + 1;
  let n = ob.ob_count in
  if n = Array.length ob.ob_pkts then begin
    let cap = max 8 (2 * n) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 n;
      b
    in
    ob.ob_pkts <- grow ob.ob_pkts p;
    ob.ob_ctxs <- grow ob.ob_ctxs Trace.null_span;
    ob.ob_sizes <- grow ob.ob_sizes 0;
    ob.ob_enq_ts <- grow ob.ob_enq_ts 0
  end;
  ob.ob_pkts.(n) <- p;
  ob.ob_ctxs.(n) <- ctx;
  ob.ob_sizes.(n) <- bytes;
  ob.ob_enq_ts.(n) <- Simnet.now t.sim;
  ob.ob_count <- n + 1;
  ob.ob_bytes <- ob.ob_bytes + bytes;
  if
    ob.ob_count >= t.cfg.flush_max_packets
    || ob.ob_bytes >= t.cfg.flush_max_bytes
  then flush_outbox t ob
  else if not ob.ob_flush_scheduled then begin
    ob.ob_flush_scheduled <- true;
    Simnet.schedule t.sim ~delay:t.cfg.flush_deadline_ns (fun () ->
        ob.ob_flush_scheduled <- false;
        flush_outbox t ob)
  end

and flush_outbox t ob =
  if ob.ob_count > 0 then begin
    let count = ob.ob_count in
    let payload_bytes = ob.ob_bytes in
    (* snapshot the buffers (the outbox refills while the frame is in
       flight) — two small arrays, the only per-flush allocation *)
    let pkts = Array.sub ob.ob_pkts 0 count in
    let ctxs = Array.sub ob.ob_ctxs 0 count in
    ob.ob_count <- 0;
    ob.ob_bytes <- 0;
    t.in_flight <- t.in_flight - count;
    let now = Simnet.now t.sim in
    let traced = t.tr_on in
    for i = 0 to count - 1 do
      let wait = now - ob.ob_enq_ts.(i) in
      Stats.Dist.add_int t.d_flush_wait wait;
      if traced && wait > 0 then
        Trace.emit t.tracer ~ts:now ~track:Trace.fabric_track
          ~span:ctxs.(i)
          (Trace.Flush_wait { ns = wait })
    done;
    Stats.Dist.add_int t.d_batch_fill count;
    (* the batch consumes one sequence number per packet; they come out
       contiguous because this is the only consumer of the stream *)
    let src = node_of_ip t ob.ob_src_ip in
    let base_seq = Node.fresh_seq src ~dst_ip:ob.ob_dst_ip in
    for _ = 2 to count do
      ignore (Node.fresh_seq src ~dst_ip:ob.ob_dst_ip)
    done;
    if t.cfg.reliable then begin
      let bx =
        { bx_src_ip = ob.ob_src_ip; bx_dst_ip = ob.ob_dst_ip;
          bx_base_seq = base_seq; bx_pkts = pkts; bx_ctxs = ctxs;
          bx_sizes = Array.sub ob.ob_sizes 0 count; bx_lo = 0;
          bx_payload_bytes = payload_bytes;
          bx_span = Trace.fresh_span t.tracer ~parent:Trace.null_span;
          bx_attempts = 0; bx_done = false }
      in
      let pending = pending_of t ~src_ip:ob.ob_src_ip ~dst_ip:ob.ob_dst_ip in
      Dq.push_back pending bx;
      attempt_batch t bx
    end
    else begin
      (* unreliable: one fire-and-forget frame; the fault dice roll once
         for the frame, so a dropped frame loses the whole batch — the
         per-packet path had the same per-transmission loss semantics *)
      let fbytes =
        Packet.batch_byte_size ~src_ip:ob.ob_src_ip ~base_seq ~ack_floor:0
          ~count ~payload_bytes
      in
      t.bytes <- t.bytes + fbytes;
      Stats.Counter.incr t.c_frames;
      let span =
        if traced then begin
          let sp = Trace.fresh_span t.tracer ~parent:Trace.null_span in
          Trace.emit t.tracer ~ts:now ~track:Trace.fabric_track ~span:sp
            (Trace.Send { pk = Trace.Kbatch; bytes = fbytes });
          sp
        end
        else Trace.null_span
      in
      let dst_ip = ob.ob_dst_ip in
      transmit t ~src_ip:ob.ob_src_ip ~dst_ip ~bytes:fbytes (fun () ->
          if t.tr_on then
            Trace.emit t.tracer ~ts:(Simnet.now t.sim)
              ~track:Trace.fabric_track ~span
              (Trace.Deliver { pk = Trace.Kbatch; same_node = false });
          for i = 0 to count - 1 do
            deliver t ~at_ip:dst_ip ~ctx:ctxs.(i) pkts.(i)
          done)
    end
  end

(* The cumulative-ack floor a batch from [at_ip] to [peer_ip] carries:
   everything below it of [peer_ip]'s inbound stream has been
   delivered.  Carrying it satisfies any pending delayed ack, so the
   timer's standalone [Fcum_ack] is suppressed — a piggybacked ack. *)
and piggyback_floor t ~at_ip ~peer_ip =
  let st = ack_state_of t ~at_ip ~peer_ip in
  if st.ak_need then begin
    st.ak_need <- false;
    Stats.Counter.incr t.c_acks;
    Stats.Counter.incr t.c_acks_piggybacked
  end;
  Node.rx_floor (node_of_ip t at_ip) ~src_ip:peer_ip

and attempt_batch t (bx : bxmit) =
  bx.bx_attempts <- bx.bx_attempts + 1;
  if bx.bx_attempts > 1 then begin
    Stats.Counter.incr t.c_retries;
    if t.tr_on then
      Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
        ~span:bx.bx_span
        (Trace.Retransmit { attempt = bx.bx_attempts })
  end;
  (* snapshot what this attempt puts on the wire ([lo] and [base_seq]
     as of now): a later cumulative ack may trim the batch while copies
     of this frame are in flight *)
  let base_seq = bx.bx_base_seq in
  let lo = bx.bx_lo in
  let count = Array.length bx.bx_pkts - lo in
  let ack_floor =
    piggyback_floor t ~at_ip:bx.bx_src_ip ~peer_ip:bx.bx_dst_ip
  in
  let fbytes =
    Packet.batch_byte_size ~src_ip:bx.bx_src_ip ~base_seq ~ack_floor ~count
      ~payload_bytes:bx.bx_payload_bytes
  in
  t.bytes <- t.bytes + fbytes;
  Stats.Counter.incr t.c_frames;
  if t.tr_on && bx.bx_attempts = 1 then
    Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
      ~span:bx.bx_span
      (Trace.Send { pk = Trace.Kbatch; bytes = fbytes });
  transmit t ~src_ip:bx.bx_src_ip ~dst_ip:bx.bx_dst_ip ~bytes:fbytes
    (fun () ->
      receive_batch t ~src_ip:bx.bx_src_ip ~dst_ip:bx.bx_dst_ip ~base_seq
        ~ack_floor ~span:bx.bx_span ~pkts:bx.bx_pkts ~ctxs:bx.bx_ctxs ~lo);
  let r = t.cfg.retry in
  let backoff =
    int_of_float
      (float_of_int r.rto_ns
      *. (r.rto_backoff ** float_of_int (bx.bx_attempts - 1)))
  in
  let jitter = Prng.int (Simnet.prng t.sim) ((r.rto_ns / 4) + 1) in
  Simnet.schedule t.sim ~delay:(backoff + jitter) (fun () ->
      if not bx.bx_done then
        if bx.bx_attempts >= r.max_attempts then begin
          (* mark in place — a timed-out batch can sit mid-queue, and
             removing it there would cost O(queue); it is popped lazily
             when it reaches the front (here, if it already is) *)
          bx.bx_done <- true;
          let pending =
            pending_of t ~src_ip:bx.bx_src_ip ~dst_ip:bx.bx_dst_ip
          in
          let popping = ref true in
          while !popping do
            match Dq.peek_front pending with
            | Some b when b.bx_done -> ignore (Dq.pop_front_exn pending)
            | _ -> popping := false
          done;
          Stats.Counter.incr t.c_timeouts;
          if t.tr_on then
            Trace.emit t.tracer ~ts:(Simnet.now t.sim)
              ~track:Trace.fabric_track ~span:bx.bx_span Trace.Timeout;
          t.suspected <-
            (Simnet.now t.sim, Printf.sprintf "ip#%d" bx.bx_dst_ip)
            :: t.suspected;
          for i = bx.bx_lo to Array.length bx.bx_pkts - 1 do
            t.outs <-
              ( Simnet.now t.sim,
                { Output.site = "daemon";
                  label = "undeliverable";
                  args =
                    [ Output.Ostr
                        (Format.asprintf "%a" Packet.pp bx.bx_pkts.(i)) ]
                } )
              :: t.outs
          done
        end
        else begin
          Stats.Dist.add_int t.d_lat_retransmit (backoff + jitter);
          attempt_batch t bx
        end)

and receive_batch t ~src_ip ~dst_ip ~base_seq ~ack_floor ~span ~pkts ~ctxs
    ~lo =
  (* the piggybacked floor acknowledges this receiver's own outbound
     stream towards the sender *)
  apply_cum_ack t ~at_ip:dst_ip ~peer_ip:src_ip ~floor:ack_floor;
  if t.tr_on then
    Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
      ~span
      (Trace.Deliver { pk = Trace.Kbatch; same_node = false });
  let dst = node_of_ip t dst_ip in
  for i = lo to Array.length pkts - 1 do
    if Node.admit dst ~src_ip ~seq:(base_seq + i - lo) then
      deliver t ~at_ip:dst_ip ~ctx:ctxs.(i) pkts.(i)
    else Stats.Counter.incr t.c_dupes_suppressed
  done;
  (* always (re)arm the delayed ack — even a frame of pure duplicates
     must be re-acked, since the sender evidently missed the last ack *)
  let st = ack_state_of t ~at_ip:dst_ip ~peer_ip:src_ip in
  st.ak_need <- true;
  if not st.ak_armed then begin
    st.ak_armed <- true;
    Simnet.schedule t.sim ~delay:t.cfg.ack_delay_ns (fun () ->
        st.ak_armed <- false;
        if st.ak_need then begin
          st.ak_need <- false;
          send_cum_ack t ~src_ip:dst_ip ~dst_ip:src_ip
        end)
  end

and send_cum_ack t ~src_ip ~dst_ip =
  let ack_floor = Node.rx_floor (node_of_ip t src_ip) ~src_ip:dst_ip in
  Stats.Counter.incr t.c_acks;
  Stats.Counter.incr t.c_frames;
  let bytes =
    Packet.frame_byte_size (Packet.Fcum_ack { src_ip; ack_floor })
  in
  t.bytes <- t.bytes + bytes;
  transmit t ~src_ip ~dst_ip ~bytes (fun () ->
      apply_cum_ack t ~at_ip:dst_ip ~peer_ip:src_ip ~floor:ack_floor)

and apply_cum_ack t ~at_ip ~peer_ip ~floor =
  if floor > 0 then
    match Hashtbl.find_opt t.pending_batches (at_ip, peer_ip) with
    | None -> ()
    | Some pending ->
        (* Front-only processing.  The queue holds this connection's
           batches in contiguous sequence order and the floor acks a
           prefix of the stream, so only a front segment can be
           affected: pop fully-acked fronts (and timed-out ones
           surfacing there), trim the single batch that can straddle
           the floor, then stop — every batch behind it starts at or
           above the front's end, hence at or above the floor.  Cost is
           O(batches retired), not O(queue) per ack. *)
        let scanning = ref true in
        while !scanning do
          match Dq.peek_front pending with
          | None -> scanning := false
          | Some bx ->
              if bx.bx_done then ignore (Dq.pop_front_exn pending)
              else begin
                let count = Array.length bx.bx_pkts - bx.bx_lo in
                if floor >= bx.bx_base_seq + count then begin
                  bx.bx_done <- true;
                  if t.tr_on then
                    Trace.emit t.tracer ~ts:(Simnet.now t.sim)
                      ~track:Trace.fabric_track ~span:bx.bx_span Trace.Ack;
                  ignore (Dq.pop_front_exn pending)
                end
                else begin
                  if floor > bx.bx_base_seq then begin
                    (* cumulative partial ack: advance past the acked
                       prefix so retransmissions shrink as the floor
                       advances *)
                    for _ = 1 to floor - bx.bx_base_seq do
                      bx.bx_payload_bytes <-
                        bx.bx_payload_bytes - bx.bx_sizes.(bx.bx_lo);
                      bx.bx_lo <- bx.bx_lo + 1
                    done;
                    bx.bx_base_seq <- floor
                  end;
                  scanning := false
                end
              end
        done

(* ------------------------------------------------------------------ *)
(* Unbatched reliable path (config.batching = false): one Fdata frame
   and one Fack per packet.                                            *)

and send_reliable t ~src_ip ~dst_ip ~ctx (p : Packet.t) =
  let seq = Node.fresh_seq (node_of_ip t src_ip) ~dst_ip in
  let bytes =
    Packet.frame_byte_size (Packet.Fdata { src_ip; seq; payload = p })
  in
  (* the logical packet is counted once; each physical attempt below
     adds only frame bytes and a frame count *)
  t.packets <- t.packets + 1;
  Metrics.add t.m_bytes bytes;
  log_packet t p;
  attempt_xmit t
    { x_src_ip = src_ip; x_dst_ip = dst_ip; x_seq = seq; x_packet = p;
      x_span = ctx; x_bytes = bytes; x_attempts = 0; x_acked = false }

and attempt_xmit t (x : xmit) =
  x.x_attempts <- x.x_attempts + 1;
  if x.x_attempts > 1 then begin
    Stats.Counter.incr t.c_retries;
    if t.tr_on then
      Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
        ~span:x.x_span
        (Trace.Retransmit { attempt = x.x_attempts })
  end;
  t.bytes <- t.bytes + x.x_bytes;
  Stats.Counter.incr t.c_frames;
  transmit t ~src_ip:x.x_src_ip ~dst_ip:x.x_dst_ip ~bytes:x.x_bytes (fun () ->
      receive_frame t x);
  let r = t.cfg.retry in
  let backoff =
    int_of_float
      (float_of_int r.rto_ns
      *. (r.rto_backoff ** float_of_int (x.x_attempts - 1)))
  in
  let jitter = Prng.int (Simnet.prng t.sim) ((r.rto_ns / 4) + 1) in
  Simnet.schedule t.sim ~delay:(backoff + jitter) (fun () ->
      if not x.x_acked then
        if x.x_attempts >= r.max_attempts then begin
          Stats.Counter.incr t.c_timeouts;
          if t.tr_on then
            Trace.emit t.tracer ~ts:(Simnet.now t.sim)
              ~track:Trace.fabric_track ~span:x.x_span Trace.Timeout;
          t.suspected <-
            (Simnet.now t.sim, Printf.sprintf "ip#%d" x.x_dst_ip)
            :: t.suspected;
          t.outs <-
            ( Simnet.now t.sim,
              { Output.site = "daemon";
                label = "undeliverable";
                args =
                  [ Output.Ostr (Format.asprintf "%a" Packet.pp x.x_packet) ]
              } )
            :: t.outs
        end
        else begin
          (* the whole wait was retransmission overhead: the packet sat
             unacknowledged for [backoff + jitter] virtual ns *)
          Stats.Dist.add t.d_lat_retransmit
            (float_of_int (backoff + jitter));
          attempt_xmit t x
        end)

and receive_frame t (x : xmit) =
  (* the receiving daemon suppresses replayed (src, seq) pairs, then
     acknowledges — whether or not the addressed site is still alive:
     dead-peer detection is the request-deadline layer's concern *)
  if Node.admit (node_of_ip t x.x_dst_ip) ~src_ip:x.x_src_ip ~seq:x.x_seq then
    deliver t ~at_ip:x.x_dst_ip ~ctx:x.x_span x.x_packet
  else Stats.Counter.incr t.c_dupes_suppressed;
  send_ack t x

and send_ack t (x : xmit) =
  Stats.Counter.incr t.c_acks;
  Stats.Counter.incr t.c_frames;
  t.bytes <- t.bytes + Latency.ack_bytes;
  transmit t ~src_ip:x.x_dst_ip ~dst_ip:x.x_src_ip ~bytes:Latency.ack_bytes
    (fun () ->
      if t.tr_on then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:x.x_span Trace.Ack;
      x.x_acked <- true)

and deliver t ~at_ip ?(ctx = Trace.null_span) ?(same_node = false) (p : Packet.t) =
  match p with
  | Packet.Pns_register { site_name; id_name; nref; rtti } ->
      if t.tr_on then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      register_at t ~replica_ip:at_ip ~site_name ~id_name ~rtti ~ctx nref;
      (* replicated mode: propagate to every other replica *)
      if t.cfg.ns_mode = Replicated then begin
        let nrep = Array.length t.replicas in
        let home = at_ip mod nrep in
        let bytes = Packet.byte_size p in
        Array.iteri
          (fun other _ ->
            if other <> home then begin
              (* replica [other] is hosted by node ip [other]; each copy
                 is a packet in its own right — logged and counted like
                 any other, so the packet accounting invariant
                 (packets + same_node = log entries) holds in
                 replicated mode too *)
              t.packets <- t.packets + 1;
              t.bytes <- t.bytes + bytes;
              Stats.Counter.incr t.c_frames;
              log_packet t p;
              transmit t ~src_ip:at_ip ~dst_ip:other ~bytes (fun () ->
                  register_at t ~replica_ip:other ~site_name ~id_name ~rtti
                    ~ctx nref)
            end)
          t.replicas
      end
  | Packet.Pns_lookup { site_name; id_name; req_id; requester_site; requester_ip; _ } -> (
      if t.tr_on then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      let waiter =
        { Nameservice.w_req_id = req_id; w_site = requester_site;
          w_ip = requester_ip }
      in
      let ns = replica_of t at_ip in
      match Nameservice.lookup_id ns ~site:site_name ~name:id_name waiter with
      | Some (nref, rtti) ->
          reply_ns t ~from_ip:at_ip ~ctx
            (Packet.Pns_reply
               { req_id; dst_site = requester_site; dst_ip = requester_ip;
                 result = Some nref; rtti })
      | None -> (* parked until the registration arrives *) ())
  | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } ->
      deliver_to_site t dst.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_req { cls; _ } ->
      deliver_to_site t cls.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_rep { dst_site; _ } | Packet.Pns_reply { dst_site; _ } ->
      deliver_to_site t dst_site ~ctx ~same_node p
  | Packet.Prelease { origin_site; _ } ->
      deliver_to_site t origin_site ~ctx ~same_node p

and register_at t ~replica_ip ~site_name ~id_name ~rtti ~ctx nref =
  let ns = replica_of t replica_ip in
  let waiters =
    Nameservice.register_id ns ~site:site_name ~name:id_name ~rtti nref
  in
  List.iter
    (fun (wtr : Nameservice.waiter) ->
      reply_ns t ~from_ip:replica_ip ~ctx
        (Packet.Pns_reply
           { req_id = wtr.Nameservice.w_req_id;
             dst_site = wtr.Nameservice.w_site;
             dst_ip = wtr.Nameservice.w_ip;
             result = Some nref;
             rtti }))
    waiters

and reply_ns t ~from_ip ~ctx p =
  (* name-service processing cost, then the reply travels as a packet —
     under a span of its own, a child of the request (or registration)
     that triggered it *)
  let ctx' =
    if t.tr_on then Trace.fresh_span t.tracer ~parent:ctx
    else Trace.null_span
  in
  Simnet.schedule t.sim ~delay:ns_processing_cost (fun () ->
      (* the name service is not a site, so the reply's [Send] lands on
         the fabric track — every packet span must have one for the
         causal tree (and the Perfetto flow arrow) to be complete *)
      if t.tr_on then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx'
          (Trace.Send { pk = Packet.trace_pk p; bytes = Packet.byte_size p });
      send_packet t ~src_ip:from_ip ~ctx:ctx' p)

and deliver_to_site t site_id ~ctx ~same_node p =
  match Hashtbl.find_opt t.by_id site_id with
  | None ->
      (* a packet addressed to a site this cluster never loaded: count
         it as a dead letter and record the phantom destination rather
         than dropping it silently *)
      Stats.Counter.incr t.c_dead_letters;
      t.suspected <-
        (Simnet.now t.sim, Printf.sprintf "site#%d" site_id) :: t.suspected
  | Some w ->
      if Site.alive w.site then begin
        let now = Simnet.now t.sim in
        Metrics.incr t.m_deliveries;
        if t.tr_on then
          Trace.emit t.tracer ~ts:now ~track:site_id ~span:ctx
            (Trace.Deliver { pk = Packet.trace_pk p; same_node });
        Site.deliver ~ctx ~now w.site p;
        request_pump t w ~delay:0
      end
      else
        t.suspected <- (Simnet.now t.sim, Site.name w.site) :: t.suspected

(* ------------------------------------------------------------------ *)
(* Program loading.                                                    *)

let load ?placement ?(annotations = fun _ -> None) ?(inputs = fun _ -> [])
    t (units : (string * Tyco_compiler.Block.unit_) list) =
  List.iteri
    (fun i (name, unit_) ->
      if Hashtbl.mem t.by_name name then
        invalid_arg (Printf.sprintf "Cluster.load: duplicate site '%s'" name);
      let node_idx =
        match placement with
        | Some f ->
            let n = f name in
            if n < 0 || n >= Array.length t.node_arr then
              invalid_arg
                (Printf.sprintf "Cluster.load: site '%s' placed on node %d" name n)
            else n
        | None -> i mod Array.length t.node_arr
      in
      let node = t.node_arr.(node_idx) in
      let site_id = t.next_site_id in
      t.next_site_id <- site_id + 1;
      let schedule =
        (* request deadlines need virtual timers; only armed in
           reliable mode so the seed's park-forever semantics (and its
           tests) are untouched by default *)
        if t.cfg.reliable then
          Some (fun ~delay f -> Simnet.schedule t.sim ~delay f)
        else None
      in
      let lifecycle =
        { Site.lc_lease_ns = t.cfg.lease_ns;
          lc_refresh_ns = t.cfg.lease_refresh_ns;
          lc_hold_ns = t.cfg.lease_hold_ns;
          lc_code_cache = t.cfg.code_cache_capacity;
          lc_done_horizon_ns = Site.default_lifecycle.Site.lc_done_horizon_ns }
      in
      let w =
        { site =
            Site.create
              ?annotations:(annotations name)
              ~inputs:(inputs name)
              ~retry:t.cfg.site_retry
              ~lifecycle
              ?schedule
              ~on_suspect:(fun who ->
                t.suspected <- (Simnet.now t.sim, who) :: t.suspected)
              ~trace:t.tracer ~name ~site_id ~ip:(Node.ip node)
              ~send:(fun ctx p -> send_packet t ~src_ip:(Node.ip node) ~ctx p)
              ~on_output:(fun e -> t.outs <- (Simnet.now t.sim, e) :: t.outs)
              ~unit_ ();
          node;
          pump_scheduled = false }
      in
      Node.add_site node w.site;
      Hashtbl.replace t.by_name name w;
      Hashtbl.replace t.by_id site_id w;
      t.wrappers <- w :: t.wrappers;
      Site.start w.site;
      request_pump t w ~delay:0)
    units

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let run ?max_events t = ignore (Simnet.run t.sim ?max_events ())

let run_until t ~time =
  let rec go () =
    match Simnet.next_time t.sim with
    | Some ts when ts <= time ->
        ignore (Simnet.step t.sim);
        go ()
    | Some _ | None -> ()
  in
  go ()

let quiescent t = Option.is_none (Simnet.next_time t.sim)

let kill_site t name ~at =
  let w = Hashtbl.find t.by_name name in
  let delay = max 0 (at - Simnet.now t.sim) in
  Simnet.schedule t.sim ~delay (fun () -> Site.kill w.site)

(* Test/experiment hook: push a raw packet into the fabric as if a
   site on [src_ip] had sent it. *)
let inject_packet t ~src_ip p = send_packet t ~src_ip p

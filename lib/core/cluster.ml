module Simnet = Tyco_net.Simnet
module Packet = Tyco_net.Packet
module Latency = Tyco_net.Latency
module Nameservice = Tyco_net.Nameservice
module Netref = Tyco_support.Netref
module Stats = Tyco_support.Stats
module Prng = Tyco_support.Prng
module Trace = Tyco_support.Trace
module Dq = Tyco_support.Dq

(* The paper's first implementation uses a centralized name service;
   its stated future work is a distributed one "for reasons of both
   redundancy (for failure recovery) and performance".  [Replicated]
   keeps one replica per node: lookups are answered by the local
   replica (a shared-memory hop), registrations broadcast to all
   replicas over the cluster links. *)
type ns_mode = Centralized | Replicated

(* Daemon-level retransmission: an unacknowledged frame is re-sent
   under exponential backoff (jittered via the simulation PRNG) up to
   [max_attempts] times before the destination is suspected. *)
type retry_params = {
  rto_ns : int;
  rto_backoff : float;
  max_attempts : int;
}

let default_retry_params =
  { rto_ns = 300_000; rto_backoff = 2.0; max_attempts = 12 }

type config = {
  nodes : int;
  cores_per_node : int;
  quantum : int;
  topology : Simnet.topology;
  seed : int;
  ns_mode : ns_mode;
  ns_replicas : int;
  faults : Simnet.fault_model;
  reliable : bool;
  retry : retry_params;
  site_retry : Site.retry;
  tracing : bool;
  trace_capacity : int;
  packet_log_capacity : int;
}

let default_config =
  { nodes = 4;
    cores_per_node = 2;
    quantum = 512;
    topology = Simnet.default_topology;
    seed = 42;
    ns_mode = Centralized;
    ns_replicas = 0;
    faults = Simnet.no_faults;
    reliable = false;
    retry = default_retry_params;
    site_retry = Site.default_retry;
    tracing = false;
    trace_capacity = 65536;
    packet_log_capacity = 4096 }

type wrapper = {
  site : Site.t;
  node : Node.t;
  mutable pump_scheduled : bool;
}

type t = {
  cfg : config;
  sim : Simnet.t;
  replicas : Nameservice.t array;  (* one in Centralized mode *)
  ns_ip : int;
  node_arr : Node.t array;
  by_name : (string, wrapper) Hashtbl.t;
  by_id : (int, wrapper) Hashtbl.t;
  mutable wrappers : wrapper list; (* reversed creation order *)
  mutable next_site_id : int;
  mutable outs : (int * Output.event) list; (* newest first *)
  mutable packets : int;
  mutable bytes : int;
  mutable in_flight : int;
  mutable suspected : (int * string) list;
  mutable busy_until : int;  (* completion time of the latest quantum *)
  (* send-time packet log: a bounded ring (oldest dropped past
     [packet_log_capacity] — the unbounded list it replaces grew with
     every packet of a long run) *)
  plog : (int * Packet.t) Dq.t;
  mutable plog_dropped : int;
  tracer : Trace.t;
  (* fault/reliability bookkeeping *)
  stats : Stats.t;
  c_drops : Stats.Counter.t;
  c_dupes : Stats.Counter.t;
  c_reorders : Stats.Counter.t;
  c_retries : Stats.Counter.t;
  c_dupes_suppressed : Stats.Counter.t;
  c_timeouts : Stats.Counter.t;
  c_acks : Stats.Counter.t;
  c_dead_letters : Stats.Counter.t;
  c_same_node : Stats.Counter.t;
  d_lat_wire : Stats.Dist.t;
  d_lat_retransmit : Stats.Dist.t;
}

(* Cost of a name-service transaction at the service itself. *)
let ns_processing_cost = 1_000

(* Scheduling overhead added after each quantum (context switch). *)
let context_switch_cost = 200

let create ?(config = default_config) () =
  let sim =
    Simnet.create ~topology:config.topology ~faults:config.faults
      ~seed:config.seed ()
  in
  let stats = Stats.create () in
  let tracer =
    Trace.create ~capacity:config.trace_capacity ~enabled:config.tracing ()
  in
  Trace.register_track tracer ~id:Trace.fabric_track ~name:"fabric";
  { cfg = config;
    sim;
    replicas =
      (match config.ns_mode with
      | Centralized -> [| Nameservice.create () |]
      | Replicated ->
          (* replica [r] is hosted by node ip [r]; fewer replicas than
             nodes is allowed — nodes without one consult ip mod r *)
          let n =
            if config.ns_replicas <= 0 then config.nodes
            else min config.nodes config.ns_replicas
          in
          Array.init n (fun _ -> Nameservice.create ()));
    (* in centralized mode the service lives on node 0's address, as a
       well-known location every site knows in advance (paper §5) *)
    ns_ip = 0;
    node_arr =
      Array.init config.nodes (fun i ->
          Node.create ~node_id:i ~ip:i ~cores:config.cores_per_node);
    by_name = Hashtbl.create 16;
    by_id = Hashtbl.create 16;
    wrappers = [];
    next_site_id = 0;
    outs = [];
    packets = 0;
    bytes = 0;
    in_flight = 0;
    suspected = [];
    busy_until = 0;
    plog = Dq.create ();
    plog_dropped = 0;
    tracer;
    stats;
    c_drops = Stats.counter stats "drops";
    c_dupes = Stats.counter stats "dupes";
    c_reorders = Stats.counter stats "reorders";
    c_retries = Stats.counter stats "retries";
    c_dupes_suppressed = Stats.counter stats "dupes_suppressed";
    c_timeouts = Stats.counter stats "timeouts";
    c_acks = Stats.counter stats "acks";
    c_dead_letters = Stats.counter stats "dead_letters";
    c_same_node = Stats.counter stats "same_node_fast";
    d_lat_wire = Stats.dist stats "lat_wire";
    d_lat_retransmit = Stats.dist stats "lat_retransmit";
  }

let sim t = t.sim
let config t = t.cfg
let virtual_time t = max (Simnet.now t.sim) t.busy_until
let site t name = (Hashtbl.find t.by_name name).site
let sites t = List.rev_map (fun w -> w.site) t.wrappers
let nodes t = Array.to_list t.node_arr
let outputs t = List.rev t.outs
let output_events t = List.rev_map snd t.outs
let packets_sent t = t.packets
let bytes_sent t = t.bytes
let in_flight t = t.in_flight
let name_service_pending t =
  Array.fold_left (fun acc ns -> acc + Nameservice.pending ns) 0 t.replicas

(* The replica a node consults: its own in Replicated mode. *)
let replica_of t ip =
  match t.cfg.ns_mode with
  | Centralized -> t.replicas.(0)
  | Replicated -> t.replicas.(ip mod Array.length t.replicas)
let suspected_failures t = List.rev t.suspected

let log_packet t p =
  Dq.push_back t.plog (Simnet.now t.sim, p);
  if Dq.length t.plog > t.cfg.packet_log_capacity then begin
    ignore (Dq.pop_front t.plog);
    t.plog_dropped <- t.plog_dropped + 1
  end

let packet_trace t = Dq.to_list t.plog

let packet_trace_dropped t = t.plog_dropped
let tracer t = t.tracer
let stats t = t.stats
let dead_letters t = Stats.Counter.value t.c_dead_letters
let same_node_fast t = Stats.Counter.value t.c_same_node
let node_of_ip t ip = t.node_arr.(ip)

(* One reliable transmission: a frame retransmitted until the peer
   daemon acknowledges it (or attempts are exhausted). *)
type xmit = {
  x_src_ip : int;
  x_dst_ip : int;
  x_seq : int;
  x_packet : Packet.t;
  x_span : Trace.span; (* the packet's causal span, kept across retries *)
  x_bytes : int;
  mutable x_attempts : int;
  mutable x_acked : bool;
}

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let rec request_pump t w ~delay =
  if (not w.pump_scheduled) && Site.alive w.site then begin
    w.pump_scheduled <- true;
    Simnet.schedule t.sim ~delay (fun () -> pump_event t w)
  end

and pump_event t w =
  w.pump_scheduled <- false;
  if Site.alive w.site then begin
    let now = Simnet.now t.sim in
    let core, free = Node.earliest_core w.node in
    if free > now then
      (* all processors busy: wait for one (Fig. 1's dual-CPU nodes) *)
      request_pump t w ~delay:(free - now)
    else begin
      let cost = Site.pump ~now w.site ~quantum:t.cfg.quantum in
      let duration = cost + context_switch_cost in
      Node.occupy w.node ~core ~until:(now + duration);
      t.busy_until <- max t.busy_until (now + duration);
      if Site.busy w.site then request_pump t w ~delay:duration
    end
  end

(* ------------------------------------------------------------------ *)
(* Packet transport (the TyCOd role).                                  *)

(* One physical transmission over the fabric: rolls the fault dice and
   schedules [action] once per surviving copy. *)
and transmit t ~src_ip ~dst_ip ~bytes action =
  let base = Simnet.packet_delay t.sim ~src_ip ~dst_ip ~bytes in
  Stats.Dist.add t.d_lat_wire (float_of_int base);
  let v = Simnet.fault_verdict t.sim ~src_ip ~dst_ip ~base_delay:base in
  Stats.Counter.add t.c_drops v.Simnet.v_dropped;
  if v.Simnet.v_duplicated then Stats.Counter.incr t.c_dupes;
  Stats.Counter.add t.c_reorders v.Simnet.v_reordered;
  List.iter
    (fun delay ->
      t.in_flight <- t.in_flight + 1;
      Simnet.schedule t.sim ~delay (fun () ->
          t.in_flight <- t.in_flight - 1;
          action ()))
    v.Simnet.v_delays

and route_ip t ~src_ip (p : Packet.t) =
  match (t.cfg.ns_mode, p) with
  (* replicated service: consult the nearest replica — the local one
     when this node hosts a replica, otherwise the node (ip mod
     replicas) that hosts this node's home replica.  Replica indices
     and node ips must not be conflated: replica [r] lives on node ip
     [r], which is only every node when there are as many replicas as
     nodes. *)
  | Replicated, (Packet.Pns_register _ | Packet.Pns_lookup _) ->
      src_ip mod Array.length t.replicas
  | _ -> Packet.dst_ip p ~ns_ip:t.ns_ip

and send_packet t ~src_ip ?(ctx = Trace.null_span) (p : Packet.t) =
  let dst_ip = route_ip t ~src_ip p in
  if dst_ip = src_ip then begin
    (* Same-node fast path (the paper's same-node optimization): both
       endpoints share the node's memory, so the packet is handed to the
       destination inbox as-is — no wire encode/decode, no size
       accounting, and no frame/ack machinery even in reliable mode
       (loopback traffic is exempt from the fault model).  Only the
       shared-memory latency is charged.  [in_flight] is still
       maintained: quiescence detection counts these deliveries.  The
       causal span still travels — by reference, like the packet. *)
    Stats.Counter.incr t.c_same_node;
    log_packet t p;
    let delay = Simnet.packet_delay t.sim ~src_ip ~dst_ip ~bytes:0 in
    t.in_flight <- t.in_flight + 1;
    Simnet.schedule t.sim ~delay (fun () ->
        t.in_flight <- t.in_flight - 1;
        deliver t ~at_ip:dst_ip ~ctx ~same_node:true p)
  end
  else if t.cfg.reliable then send_reliable t ~src_ip ~dst_ip ~ctx p
  else begin
    let bytes = Packet.byte_size p in
    t.packets <- t.packets + 1;
    t.bytes <- t.bytes + bytes;
    log_packet t p;
    transmit t ~src_ip ~dst_ip ~bytes (fun () ->
        deliver t ~at_ip:dst_ip ~ctx p)
  end

and send_reliable t ~src_ip ~dst_ip ~ctx (p : Packet.t) =
  let seq = Node.fresh_seq (node_of_ip t src_ip) ~dst_ip in
  let bytes =
    Packet.frame_byte_size (Packet.Fdata { src_ip; seq; payload = p })
  in
  attempt_xmit t
    { x_src_ip = src_ip; x_dst_ip = dst_ip; x_seq = seq; x_packet = p;
      x_span = ctx; x_bytes = bytes; x_attempts = 0; x_acked = false }

and attempt_xmit t (x : xmit) =
  x.x_attempts <- x.x_attempts + 1;
  if x.x_attempts > 1 then begin
    Stats.Counter.incr t.c_retries;
    if Trace.enabled t.tracer then
      Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
        ~span:x.x_span
        (Trace.Retransmit { attempt = x.x_attempts })
  end;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + x.x_bytes;
  log_packet t x.x_packet;
  transmit t ~src_ip:x.x_src_ip ~dst_ip:x.x_dst_ip ~bytes:x.x_bytes (fun () ->
      receive_frame t x);
  let r = t.cfg.retry in
  let backoff =
    int_of_float
      (float_of_int r.rto_ns
      *. (r.rto_backoff ** float_of_int (x.x_attempts - 1)))
  in
  let jitter = Prng.int (Simnet.prng t.sim) ((r.rto_ns / 4) + 1) in
  Simnet.schedule t.sim ~delay:(backoff + jitter) (fun () ->
      if not x.x_acked then
        if x.x_attempts >= r.max_attempts then begin
          Stats.Counter.incr t.c_timeouts;
          if Trace.enabled t.tracer then
            Trace.emit t.tracer ~ts:(Simnet.now t.sim)
              ~track:Trace.fabric_track ~span:x.x_span Trace.Timeout;
          t.suspected <-
            (Simnet.now t.sim, Printf.sprintf "ip#%d" x.x_dst_ip)
            :: t.suspected;
          t.outs <-
            ( Simnet.now t.sim,
              { Output.site = "daemon";
                label = "undeliverable";
                args =
                  [ Output.Ostr (Format.asprintf "%a" Packet.pp x.x_packet) ]
              } )
            :: t.outs
        end
        else begin
          (* the whole wait was retransmission overhead: the packet sat
             unacknowledged for [backoff + jitter] virtual ns *)
          Stats.Dist.add t.d_lat_retransmit
            (float_of_int (backoff + jitter));
          attempt_xmit t x
        end)

and receive_frame t (x : xmit) =
  (* the receiving daemon suppresses replayed (src, seq) pairs, then
     acknowledges — whether or not the addressed site is still alive:
     dead-peer detection is the request-deadline layer's concern *)
  if Node.admit (node_of_ip t x.x_dst_ip) ~src_ip:x.x_src_ip ~seq:x.x_seq then
    deliver t ~at_ip:x.x_dst_ip ~ctx:x.x_span x.x_packet
  else Stats.Counter.incr t.c_dupes_suppressed;
  send_ack t x

and send_ack t (x : xmit) =
  Stats.Counter.incr t.c_acks;
  t.bytes <- t.bytes + Latency.ack_bytes;
  transmit t ~src_ip:x.x_dst_ip ~dst_ip:x.x_src_ip ~bytes:Latency.ack_bytes
    (fun () ->
      if Trace.enabled t.tracer then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:x.x_span Trace.Ack;
      x.x_acked <- true)

and deliver t ~at_ip ?(ctx = Trace.null_span) ?(same_node = false) (p : Packet.t) =
  match p with
  | Packet.Pns_register { site_name; id_name; nref; rtti } ->
      if Trace.enabled t.tracer then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      register_at t ~replica_ip:at_ip ~site_name ~id_name ~rtti ~ctx nref;
      (* replicated mode: propagate to every other replica *)
      if t.cfg.ns_mode = Replicated then begin
        let nrep = Array.length t.replicas in
        let home = at_ip mod nrep in
        let bytes = Packet.byte_size p in
        Array.iteri
          (fun other _ ->
            if other <> home then begin
              (* replica [other] is hosted by node ip [other] *)
              t.packets <- t.packets + 1;
              t.bytes <- t.bytes + bytes;
              transmit t ~src_ip:at_ip ~dst_ip:other ~bytes (fun () ->
                  register_at t ~replica_ip:other ~site_name ~id_name ~rtti
                    ~ctx nref)
            end)
          t.replicas
      end
  | Packet.Pns_lookup { site_name; id_name; req_id; requester_site; requester_ip; _ } -> (
      if Trace.enabled t.tracer then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx Trace.Ns_serve;
      let waiter =
        { Nameservice.w_req_id = req_id; w_site = requester_site;
          w_ip = requester_ip }
      in
      let ns = replica_of t at_ip in
      match Nameservice.lookup_id ns ~site:site_name ~name:id_name waiter with
      | Some (nref, rtti) ->
          reply_ns t ~from_ip:at_ip ~ctx
            (Packet.Pns_reply
               { req_id; dst_site = requester_site; dst_ip = requester_ip;
                 result = Some nref; rtti })
      | None -> (* parked until the registration arrives *) ())
  | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } ->
      deliver_to_site t dst.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_req { cls; _ } ->
      deliver_to_site t cls.Netref.site_id ~ctx ~same_node p
  | Packet.Pfetch_rep { dst_site; _ } | Packet.Pns_reply { dst_site; _ } ->
      deliver_to_site t dst_site ~ctx ~same_node p

and register_at t ~replica_ip ~site_name ~id_name ~rtti ~ctx nref =
  let ns = replica_of t replica_ip in
  let waiters =
    Nameservice.register_id ns ~site:site_name ~name:id_name ~rtti nref
  in
  List.iter
    (fun (wtr : Nameservice.waiter) ->
      reply_ns t ~from_ip:replica_ip ~ctx
        (Packet.Pns_reply
           { req_id = wtr.Nameservice.w_req_id;
             dst_site = wtr.Nameservice.w_site;
             dst_ip = wtr.Nameservice.w_ip;
             result = Some nref;
             rtti }))
    waiters

and reply_ns t ~from_ip ~ctx p =
  (* name-service processing cost, then the reply travels as a packet —
     under a span of its own, a child of the request (or registration)
     that triggered it *)
  let ctx' =
    if Trace.enabled t.tracer then Trace.fresh_span t.tracer ~parent:ctx
    else Trace.null_span
  in
  Simnet.schedule t.sim ~delay:ns_processing_cost (fun () ->
      (* the name service is not a site, so the reply's [Send] lands on
         the fabric track — every packet span must have one for the
         causal tree (and the Perfetto flow arrow) to be complete *)
      if Trace.enabled t.tracer then
        Trace.emit t.tracer ~ts:(Simnet.now t.sim) ~track:Trace.fabric_track
          ~span:ctx'
          (Trace.Send { pk = Packet.trace_pk p; bytes = Packet.byte_size p });
      send_packet t ~src_ip:from_ip ~ctx:ctx' p)

and deliver_to_site t site_id ~ctx ~same_node p =
  match Hashtbl.find_opt t.by_id site_id with
  | None ->
      (* a packet addressed to a site this cluster never loaded: count
         it as a dead letter and record the phantom destination rather
         than dropping it silently *)
      Stats.Counter.incr t.c_dead_letters;
      t.suspected <-
        (Simnet.now t.sim, Printf.sprintf "site#%d" site_id) :: t.suspected
  | Some w ->
      if Site.alive w.site then begin
        let now = Simnet.now t.sim in
        if Trace.enabled t.tracer then
          Trace.emit t.tracer ~ts:now ~track:site_id ~span:ctx
            (Trace.Deliver { pk = Packet.trace_pk p; same_node });
        Site.deliver ~ctx ~now w.site p;
        request_pump t w ~delay:0
      end
      else
        t.suspected <- (Simnet.now t.sim, Site.name w.site) :: t.suspected

(* ------------------------------------------------------------------ *)
(* Program loading.                                                    *)

let load ?placement ?(annotations = fun _ -> None) ?(inputs = fun _ -> [])
    t (units : (string * Tyco_compiler.Block.unit_) list) =
  List.iteri
    (fun i (name, unit_) ->
      if Hashtbl.mem t.by_name name then
        invalid_arg (Printf.sprintf "Cluster.load: duplicate site '%s'" name);
      let node_idx =
        match placement with
        | Some f ->
            let n = f name in
            if n < 0 || n >= Array.length t.node_arr then
              invalid_arg
                (Printf.sprintf "Cluster.load: site '%s' placed on node %d" name n)
            else n
        | None -> i mod Array.length t.node_arr
      in
      let node = t.node_arr.(node_idx) in
      let site_id = t.next_site_id in
      t.next_site_id <- site_id + 1;
      let schedule =
        (* request deadlines need virtual timers; only armed in
           reliable mode so the seed's park-forever semantics (and its
           tests) are untouched by default *)
        if t.cfg.reliable then
          Some (fun ~delay f -> Simnet.schedule t.sim ~delay f)
        else None
      in
      let w =
        { site =
            Site.create
              ?annotations:(annotations name)
              ~inputs:(inputs name)
              ~retry:t.cfg.site_retry
              ?schedule
              ~on_suspect:(fun who ->
                t.suspected <- (Simnet.now t.sim, who) :: t.suspected)
              ~trace:t.tracer ~name ~site_id ~ip:(Node.ip node)
              ~send:(fun ctx p -> send_packet t ~src_ip:(Node.ip node) ~ctx p)
              ~on_output:(fun e -> t.outs <- (Simnet.now t.sim, e) :: t.outs)
              ~unit_ ();
          node;
          pump_scheduled = false }
      in
      Node.add_site node w.site;
      Hashtbl.replace t.by_name name w;
      Hashtbl.replace t.by_id site_id w;
      t.wrappers <- w :: t.wrappers;
      Array.iter
        (fun ns -> Nameservice.register_site ns name ~site_id ~ip:(Node.ip node))
        t.replicas;
      Site.start w.site;
      request_pump t w ~delay:0)
    units

(* ------------------------------------------------------------------ *)
(* Execution.                                                          *)

let run ?max_events t = ignore (Simnet.run t.sim ?max_events ())

let run_until t ~time =
  let rec go () =
    match Simnet.next_time t.sim with
    | Some ts when ts <= time ->
        ignore (Simnet.step t.sim);
        go ()
    | Some _ | None -> ()
  in
  go ()

let quiescent t = Option.is_none (Simnet.next_time t.sim)

let kill_site t name ~at =
  let w = Hashtbl.find t.by_name name in
  let delay = max 0 (at - Simnet.now t.sim) in
  Simnet.schedule t.sim ~delay (fun () -> Site.kill w.site)

(* Test/experiment hook: push a raw packet into the fabric as if a
   site on [src_ip] had sent it. *)
let inject_packet t ~src_ip p = send_packet t ~src_ip p

module Simnet = Tyco_net.Simnet

type suspicion = {
  s_site : string;
  s_at : int;
  s_killed_at : int option;
}

type report = {
  suspicions : suspicion list;
  probe_rounds : int;
  probe_overhead_ns : int;
  false_suspicions : int;
  recoveries : (string * int) list;
}

(* One probe round-trip per site per round, over the cluster link. *)
let probe_cost_per_site = 2 * 9_000

let network_idle cluster =
  Cluster.in_flight cluster = 0
  && List.for_all
       (fun s -> (not (Site.busy s)) && Site.outstanding s = 0)
       (Cluster.sites cluster)

let run_with_heartbeats ?(period = 100_000) ?timeout ?max_events ~kills
    cluster =
  let timeout = Option.value timeout ~default:(period / 2) in
  let sim = Cluster.sim cluster in
  List.iter (fun (name, at) -> Cluster.kill_site cluster name ~at) kills;
  let suspicions = ref [] in
  let suspected = Hashtbl.create 8 in
  let rounds = ref 0 in
  let false_susp = ref 0 in
  let recoveries = ref [] in
  let idle_streak = ref 0 in
  let rec probe () =
    incr rounds;
    List.iter
      (fun site ->
        let name = Site.name site in
        if Hashtbl.mem suspected name then begin
          (* an answered probe refutes the standing suspicion: clear it
             so the monitor keeps watching the site instead of carrying
             the verdict forever *)
          if Site.alive site then begin
            Hashtbl.remove suspected name;
            recoveries := (name, Simnet.now sim) :: !recoveries
          end
        end
        else if not (Site.alive site) then begin
          (* the probe goes unanswered: suspicion fires after the
             timeout elapses *)
          Hashtbl.add suspected name ();
          Simnet.schedule sim ~delay:timeout (fun () ->
              let killed_at = List.assoc_opt name kills in
              if Site.alive site then begin
                (* the site answered within the timeout after all: a
                   refuted suspicion is counted, cleared and recorded
                   as a recovery — not added to [suspicions] *)
                incr false_susp;
                Hashtbl.remove suspected name;
                recoveries := (name, Simnet.now sim) :: !recoveries
              end
              else
                suspicions :=
                  { s_site = name; s_at = Simnet.now sim;
                    s_killed_at = killed_at }
                  :: !suspicions)
        end)
      (Cluster.sites cluster);
    (* keep probing while the application still runs; two idle rounds
       end the monitor so the simulation can quiesce *)
    if network_idle cluster then incr idle_streak else idle_streak := 0;
    if !idle_streak < 2 then Simnet.schedule sim ~delay:period probe
  in
  Simnet.schedule sim ~delay:period probe;
  Cluster.run ?max_events cluster;
  let nsites = List.length (Cluster.sites cluster) in
  { suspicions = List.rev !suspicions;
    probe_rounds = !rounds;
    probe_overhead_ns = !rounds * probe_cost_per_site * nsites;
    false_suspicions = !false_susp;
    recoveries = List.rev !recoveries }

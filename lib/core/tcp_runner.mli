(** A real-network deployment of the DiTyCO runtime.

    The default runtime multiplexes everything into one deterministic
    discrete-event simulation (see DESIGN.md).  This module instead
    realizes the paper's §5 deployment literally, on the loopback
    network: every node is an OCaml 5 domain owning a TCP listening
    socket (its "IP address" is a port), sites run inside their node's
    domain — so nodes execute truly in parallel on a multicore host —
    the TyCOd role — framing packets, routing them to peer nodes,
    delivering to local site queues — is played by each node's event
    loop, and the centralized name service lives on node 0.  The same
    {!Site} machinery runs unchanged; only the transport differs.

    A quiet node does not spin: it parks in [select] on its sockets
    under an exponentially growing timeout (50 us doubling to 5 ms,
    reset by any work), so inbound traffic wakes it immediately
    instead of waiting out a fixed sleep.  Parks are counted per node
    and reported in [result.parks].

    Execution is {e not} deterministic (the OS schedules the domains),
    so tests compare output multisets against the simulated runtime.
    Termination uses a coordinator scan: all nodes idle and no packets
    in flight for two consecutive scans.

    Limitations (documented, by design): no virtual clock (wall time
    only), no failure injection, and perpetual programs must be
    bounded with [timeout_ms]. *)

type result = {
  outputs : Output.event list;   (** arrival order; racy across sites *)
  packets : int;                 (** TCP packets exchanged *)
  wall_ns : int;                 (** elapsed wall-clock time *)
  timed_out : bool;
  parks : int;                   (** idle [select] parks across nodes *)
  metrics : Tyco_support.Metrics.t;
      (** per-node registries (parks, packets, bytes, connect
          retries) merged after the domains join; the disabled
          singleton unless [run ~metrics:true] *)
}

val run :
  ?nodes:int ->
  ?base_port:int ->
  ?inputs:(string -> int list) ->
  ?timeout_ms:int ->
  ?metrics:bool ->
  (string * Tyco_compiler.Block.unit_) list ->
  result
(** Place the compiled sites round-robin on [nodes] (default 4) node
    threads listening on consecutive loopback ports (default base:
    derived from the process id), run until global quiescence or
    [timeout_ms] (default 10_000).  [metrics] (default [false]) gives
    each node a {!Tyco_support.Metrics} registry, merged into
    [result.metrics] after the join. *)

val run_program :
  ?nodes:int -> ?base_port:int -> ?timeout_ms:int -> ?metrics:bool ->
  Tyco_syntax.Ast.program -> result
(** Type-check, compile and {!run}. *)

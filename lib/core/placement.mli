(** Node-to-shard placement for the parallel runtime ({!Par_runner}).

    Replaces PR 7's blind [ip mod domains] with a pluggable placement
    map.  All policies produce a {e total} map (every node assigned
    exactly one shard in [0, domains)), are {e deterministic} for
    fixed inputs, and pin node 0 — the name-service host — to shard 0
    (the engine routes NS traffic to shard 0's rings).  Tested
    directly by test_par.ml. *)

type policy =
  | Mod  (** [ip mod domains] — the PR 7 default, and the baseline. *)
  | Greedy
      (** Greedy bin-packing (heaviest node into the lightest shard)
          seeded from static per-node site counts. *)
  | Profile of float array
      (** The same bin-packing seeded from measured per-node weights —
          e.g. a prior run's per-node instruction counts, exported as
          [node_weights] by {!Report.par_json}.  Length must equal the
          node count. *)

val pp_policy : Format.formatter -> policy -> unit

val assign : domains:int -> site_counts:int array -> policy -> int array
(** [assign ~domains ~site_counts policy] maps node ip [i] to shard
    [(assign ...).(i)].  [site_counts.(i)] is the number of sites
    placed on node [i] (the static weight [Greedy] packs by;
    [Mod]/[Profile] use only its length).  Raises [Invalid_argument]
    when [domains < 1] or a [Profile]'s length mismatches the node
    count. *)

val greedy_map : domains:int -> float array -> int array
(** The bare bin-packing: deterministic, total, node 0 pinned to
    shard 0 (by shard-label swap, which preserves the packing). *)

val shard_weights : domains:int -> map:int array -> float array -> float array
(** Per-shard totals of [weights] under [map] — the imbalance signal
    the parallel report exposes. *)

val imbalance : float array -> float
(** Max-over-mean of per-shard weights: 1.0 = perfectly balanced,
    [domains] = everything on one shard, 0 = no weight at all. *)

val choose_migration :
  domains:int ->
  map:int array ->
  loads:float array ->
  threshold:float ->
  (int * int) option
(** [choose_migration ~domains ~map ~loads ~threshold] proposes at
    most one live migration given [loads.(ip)] = node [ip]'s recent
    load and [map.(ip)] its current shard: [Some (ip, dst)] moves the
    node from the hottest shard whose load best fills half the
    hot-cold gap to the coldest shard.  [None] when the max-over-mean
    imbalance is at or below [threshold], when no move shrinks the
    gap, or when the only candidate is node 0 (the pinned name-service
    host, never migrated).  Deterministic for fixed inputs; the
    runner's rebalancer calls this once per observation interval. *)

(** The whole DiTyCO network (paper Fig. 2): nodes in a static IP
    topology, sites placed on nodes, a centralized name service whose
    location every site knows in advance, and the discrete-event engine
    that multiplexes everything onto one deterministic virtual clock.

    Packet routing plays the role of the TyCOd daemons: a packet leaves
    the sending site's node, crosses the link chosen by the topology
    (shared memory when both sites share a node — the paper's same-node
    optimization), and lands in the destination site's incoming queue. *)

type t

(** Name-service deployment: the paper's current implementation is
    [Centralized] ("all sites know its location in advance"); its
    stated future work — one replica per node, lookups served locally,
    registrations broadcast — is [Replicated]. *)
type ns_mode = Centralized | Replicated

(** Daemon-level retransmission (used when [reliable] is on): an
    unacknowledged frame is re-sent under exponential backoff — initial
    timeout [rto_ns], multiplied by [rto_backoff] per attempt, jittered
    by the simulation PRNG — and after [max_attempts] sends the
    destination is suspected and the packet surfaces as an
    ["undeliverable"] output event. *)
type retry_params = {
  rto_ns : int;
  rto_backoff : float;
  max_attempts : int;
}

val default_retry_params : retry_params
(** 300 µs initial timeout, doubling, 12 attempts. *)

type config = {
  nodes : int;            (** cluster size; Fig. 1 uses 4 *)
  cores_per_node : int;   (** Fig. 1 uses dual-processor PCs: 2 *)
  quantum : int;          (** VM instructions per scheduling quantum *)
  topology : Tyco_net.Simnet.topology;
  seed : int;
  ns_mode : ns_mode;
  ns_replicas : int;
      (** Replicated mode: how many name-service replicas ([<= nodes];
          [0] means one per node).  Replica [r] is hosted by node ip
          [r]; nodes without a local replica consult [ip mod replicas]
          over the network. *)
  faults : Tyco_net.Simnet.fault_model;
      (** Link-fault injection (default [Simnet.no_faults]). *)
  reliable : bool;
      (** Turn on at-least-once delivery: sequence-numbered frames,
          receiver-side dedup, ack-driven retransmission per [retry],
          and per-request deadlines at the sites per [site_retry].
          Default [false]: the seed's fire-and-forget transport. *)
  retry : retry_params;
  site_retry : Site.retry;
  tracing : bool;
      (** Turn on causal tracing: every site gets a track in the shared
          {!Tyco_support.Trace} collector, packets carry spans, and the
          run can be exported with {!tracer} (Chrome JSON or binary
          archive).  Default [false] — the collector is the disabled
          singleton and every instrumentation point costs one
          load-and-branch. *)
  trace_capacity : int;
      (** Per-track event-ring bound when [tracing] (default 65536). *)
  metrics : bool;
      (** Turn on the {!Tyco_support.Metrics} registry: transport
          counters (packets/bytes/same-node/deliveries) and a wire-
          latency histogram, exportable via {!metrics} as Prometheus
          text or JSONL.  Default [false] — every bump costs one
          load-and-branch on a shared dummy instrument. *)
  packet_log_capacity : int;
      (** Bound on the {!packet_trace} ring (default 4096); the oldest
          entries are dropped beyond it — see
          {!packet_trace_dropped}. *)
  batching : bool;
      (** Coalesce cross-node packets per destination into [Fbatch]
          frames (default [true]): a burst to one node costs one frame,
          one latency sample and — in reliable mode — one cumulative
          ack instead of N of each.  [false] restores the exact
          per-packet Fdata/Fack transmit path. *)
  flush_max_packets : int;
      (** Flush an outbox once it holds this many packets (default
          16). *)
  flush_max_bytes : int;
      (** ... or this many payload bytes (default 8192). *)
  flush_deadline_ns : int;
      (** ... or this many virtual ns after its first packet (default
          0: the flush still runs as a separate event after the current
          one, so all packets emitted at one virtual instant coalesce
          while a lone packet is never delayed). *)
  ack_delay_ns : int;
      (** Reliable batching: how long a receiver may hold a cumulative
          ack hoping to piggyback it on reverse traffic (default
          30_000 — well under [retry.rto_ns], so delaying acks never
          causes spurious retransmits). *)
  lease_ns : int;
      (** Resource lifecycle: exported channels/classes are reclaimed
          this many virtual ns after their last use, with importers
          refreshing the references they still hold via [Prelease]
          packets.  Default [0]: leases off, exports live forever (the
          seed behaviour).  See {!Site.lifecycle}. *)
  lease_refresh_ns : int;
      (** Refresh/sweep cadence; [0] (default) derives a quarter of
          [lease_ns]. *)
  lease_hold_ns : int;
      (** How long an importer keeps refreshing an unused foreign
          reference; [0] (default) derives [lease_ns]. *)
  code_cache_capacity : int;
      (** Per-site bound on each receiver-side linking cache (LRU,
          default 256); evicted entries re-link from the shipped code
          on the next miss. *)
}

val default_config : config

val create : ?config:config -> unit -> t

val load :
  ?placement:(string -> int) ->
  ?annotations:(string -> Site.annotations option) ->
  ?inputs:(string -> int list) ->
  t ->
  (string * Tyco_compiler.Block.unit_) list ->
  unit
(** Install compiled sites.  [placement] maps a site name to a node
    index (default: round-robin); [annotations] supplies each site's
    type descriptors for the dynamic checking of remote interactions
    (paper §7).  Each site's entry thread is scheduled at the current
    virtual time. *)

val site : t -> string -> Site.t
(** Raises [Not_found]. *)

val sites : t -> Site.t list
val nodes : t -> Node.t list

(** {1 Execution} *)

val run : ?max_events:int -> t -> unit
(** Run to quiescence (event queue empty). *)

val run_until : t -> time:int -> unit
(** Process events with timestamps [<= time] only — for perpetual
    programs (the SETI example) and time-bounded experiments. *)

val quiescent : t -> bool
val virtual_time : t -> int

(** {1 Observation} *)

val outputs : t -> (int * Output.event) list
(** All I/O events with their virtual timestamps, chronological. *)

val output_events : t -> Output.event list

val packets_sent : t -> int
val bytes_sent : t -> int

val same_node_fast : t -> int
(** Deliveries that took the same-node shared-memory fast path: source
    and destination share a node, so the packet skipped serialization,
    framing and acknowledgements entirely and paid only the
    shared-memory latency.  These do not count in {!packets_sent} /
    {!bytes_sent} — nothing crossed the fabric. *)

val frames_sent : t -> int
(** Physical frames that crossed the fabric: batch flushes,
    per-packet data frames, retransmissions and ack frames.  With
    batching on, [frames_sent / packets_sent] is the framing overhead
    the coalescing saves (E16's gated metric). *)

val batch_fill_mean : t -> float
(** Mean packets per flushed batch ([0.] before any flush). *)

val acks_piggybacked : t -> int
(** Cumulative acks that rode on a reverse-direction batch instead of
    costing a standalone [Fcum_ack] frame (counted inside the total
    ["acks"] counter as well). *)

val in_flight : t -> int
val name_service_pending : t -> int
(** Unresolved imports (nonzero at quiescence indicates a program
    error: an import of a never-exported identifier). *)

(** {1 Failure injection (paper future work)} *)

val kill_site : t -> string -> at:int -> unit
(** Schedule a site failure at the given virtual time. *)

val suspected_failures : t -> (int * string) list
(** [(time, who)] — failures noticed by the simplified detector: a
    packet addressed to a dead or unknown site, a daemon exhausting its
    retransmissions towards a peer ([ip#n]), or a site abandoning a
    FETCH / import request ([site#n], exporter name). *)

val stats : t -> Tyco_support.Stats.t
(** Fault/reliability counters: ["drops"], ["dupes"], ["reorders"],
    ["retries"], ["dupes_suppressed"], ["timeouts"], ["acks"],
    ["dead_letters"], ["same_node_fast"], ["frames"],
    ["acks_piggybacked"]; distributions ["lat_wire"],
    ["lat_retransmit"], ["batch_fill"], ["lat_flush_wait"]. *)

val dead_letters : t -> int
(** Packets addressed to site ids this cluster never loaded. *)

val inject_packet : t -> src_ip:int -> Tyco_net.Packet.t -> unit
(** Test/experiment hook: push a raw packet into the fabric as if a
    site on [src_ip] had sent it. *)

val packet_trace : t -> (int * Tyco_net.Packet.t) list
(** The most recent packets (up to [packet_log_capacity]) with their
    send timestamps, chronological — the observable migration
    behaviour of a run (shipments, fetches, name-service traffic).
    [tycosh --trace] prints it. *)

val packet_trace_dropped : t -> int
(** Packets evicted from the bounded {!packet_trace} ring.  [0] means
    the log is complete. *)

val tracer : t -> Tyco_support.Trace.t
(** The run's causal-trace collector — the disabled singleton unless
    [config.tracing]; export with {!Tyco_support.Trace.to_chrome_json}
    or {!Tyco_support.Trace.serialize}. *)

val metrics : t -> Tyco_support.Metrics.t
(** The run's metrics registry — the disabled singleton unless
    [config.metrics]; export with {!Tyco_support.Metrics.to_prom} or
    {!Tyco_support.Metrics.to_json}. *)

(** {1 Internals exposed for the experiment harness} *)

val sim : t -> Tyco_net.Simnet.t
val config : t -> config

(** Site-failure detection — the other half of the paper's future work
    (§7: “We want to be able to detect site failures, reconfigure the
    computation topology and to try to terminate computations
    cleanly.”).

    Two detectors exist:

    - a {e passive} one built into {!Cluster}: sending to a dead site
      records a suspicion (no extra traffic, but silent failures of
      idle sites are never noticed);
    - the {e active} heartbeat monitor here: every [period] ns each
      site is probed; a probe unanswered within [timeout] marks the
      site suspected.  Probes are modelled as control round-trips with
      their virtual-time cost accounted, like the termination
      detector's. *)

type suspicion = {
  s_site : string;
  s_at : int;          (** virtual time the suspicion was raised *)
  s_killed_at : int option;
      (** when the site actually died, when known — the detection
          latency is [s_at - killed_at] *)
}

type report = {
  suspicions : suspicion list;
  probe_rounds : int;
  probe_overhead_ns : int;
  false_suspicions : int;
      (** suspicions refuted at verdict time: the site was alive after
          all.  Refuted suspicions are cleared — not recorded in
          [suspicions] — and show up in [recoveries], so a transient
          hiccup never reads as a permanent failure. *)
  recoveries : (string * int) list;
      (** [(site, virtual time)] — each time a suspected site turned
          out to be alive (at verdict, or at a later probe round). *)
}

val run_with_heartbeats :
  ?period:int -> ?timeout:int -> ?max_events:int ->
  kills:(string * int) list ->
  Cluster.t ->
  report
(** Install the kill schedule and the heartbeat monitor, then run the
    cluster until both the application and the monitor are done.
    [period] defaults to 100_000 ns, [timeout] to half the period. *)

module Packet = Tyco_net.Packet
module Nameservice = Tyco_net.Nameservice
module Netref = Tyco_support.Netref
module Trace = Tyco_support.Trace
module Wire = Tyco_support.Wire
module Metrics = Tyco_support.Metrics

type result = {
  outputs : Output.event list;
  packets : int;
  wall_ns : int;
  timed_out : bool;
  parks : int;
  metrics : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian length prefix per packet.  A peer's
   outgoing frames accumulate in one buffer and leave in a single
   write per loop iteration (a writev of the queued frames, without
   the iovec), so a burst of packets to one peer costs one syscall. *)

(* A per-connection byte buffer (rx reassembly and tx coalescing). *)
type conn_buf = { mutable data : Bytes.t; mutable len : int }

let buf_create () = { data = Bytes.create 4096; len = 0 }

let buf_reserve cb n =
  if cb.len + n > Bytes.length cb.data then begin
    let bigger = Bytes.create (max (2 * Bytes.length cb.data) (cb.len + n)) in
    Bytes.blit cb.data 0 bigger 0 cb.len;
    cb.data <- bigger
  end

let buf_append cb src n =
  buf_reserve cb n;
  Bytes.blit src 0 cb.data cb.len n;
  cb.len <- cb.len + n

(* Extract complete frames. *)
let buf_drain cb =
  let frames = ref [] in
  let pos = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if cb.len - !pos >= 4 then begin
      let n =
        (Bytes.get_uint8 cb.data !pos lsl 24)
        lor (Bytes.get_uint8 cb.data (!pos + 1) lsl 16)
        lor (Bytes.get_uint8 cb.data (!pos + 2) lsl 8)
        lor Bytes.get_uint8 cb.data (!pos + 3)
      in
      if cb.len - !pos - 4 >= n then begin
        frames := Bytes.sub_string cb.data (!pos + 4) n :: !frames;
        pos := !pos + 4 + n
      end
      else continue_ := false
    end
    else continue_ := false
  done;
  if !pos > 0 then begin
    Bytes.blit cb.data !pos cb.data 0 (cb.len - !pos);
    cb.len <- cb.len - !pos
  end;
  List.rev !frames

(* ------------------------------------------------------------------ *)
(* Node state.                                                         *)

type node = {
  node_id : int;
  port : int;
  listen : Unix.file_descr;
  (* outgoing connections, by peer node id *)
  peers : (int, Unix.file_descr) Hashtbl.t;
  (* coalesced outgoing frames, by peer node id; flushed once per loop *)
  tx : (int, conn_buf) Hashtbl.t;
  (* node-local encoder, reused across every outgoing packet *)
  enc : Wire.enc;
  (* accepted incoming connections with reassembly buffers *)
  mutable accepted : (Unix.file_descr * conn_buf) list;
  mutable sites : Site.t list;
  (* only touched by this node's thread; packets keep their causal
     span, exactly as they do over the TCP links (trailer) *)
  inbox : (Packet.t * Trace.span) Queue.t;
  ns : Nameservice.t;            (* used by node 0 only *)
  idle : bool Atomic.t;
  (* read buffer, reused across iterations (was a per-iteration 8 KB
     allocation) *)
  scratch : Bytes.t;
  (* idle parks taken by this node's domain, read after join *)
  mutable parks : int;
  (* node-confined metrics registry (the ad-hoc park/retry counters,
     folded): only this node's domain bumps it; merged after join *)
  mx : Metrics.t;
  m_parks : Metrics.counter;
  m_packets : Metrics.counter;
  m_bytes : Metrics.counter;
  m_retries : Metrics.counter; (* connect_with_retry backoff rounds *)
}

type shared = {
  base_port : int;
  in_flight : int Atomic.t;
  stop : bool Atomic.t;
  total_packets : int Atomic.t;
  outputs_mu : Mutex.t;
  mutable outputs : Output.event list; (* newest first *)
  by_site_id : (int, int) Hashtbl.t;   (* site id -> node id, read-only *)
}

let connect_with_retry shared node peer =
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_loopback, shared.base_port + peer)
  in
  (* exponential backoff on refused connections (the peer's listener
     may not be up yet): 1 ms doubling to 50 ms, same ~5 s budget as
     the fixed-sleep loop it replaces but with far fewer wakeups *)
  let rec go tries delay =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        Unix.set_nonblock fd;
        fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
        Unix.close fd;
        Metrics.incr node.m_retries;
        Unix.sleepf delay;
        go (tries - 1) (Float.min 0.05 (delay *. 2.))
  in
  go 200 0.001

let peer_fd shared node peer =
  match Hashtbl.find_opt node.peers peer with
  | Some fd -> fd
  | None ->
      let fd = connect_with_retry shared node peer in
      Hashtbl.add node.peers peer fd;
      fd

let tx_buf_of node peer =
  match Hashtbl.find_opt node.tx peer with
  | Some tx -> tx
  | None ->
      let tx = buf_create () in
      Hashtbl.add node.tx peer tx;
      tx

(* Queue one packet for [peer]: encode (into the node's reused
   encoder — no per-packet buffer churn) straight into the peer's tx
   buffer behind its length prefix.  The bytes leave in [flush_tx]. *)
let send_to shared node peer ~ctx (p : Packet.t) =
  Atomic.incr shared.in_flight;
  Atomic.incr shared.total_packets;
  let tx = tx_buf_of node peer in
  (* the trace span rides the versioned trailer — an untraced run
     produces bytes identical to [Packet.to_string] *)
  Wire.reset node.enc;
  Packet.encode_traced ~ctx node.enc p;
  let n = Wire.size node.enc in
  buf_reserve tx (4 + n);
  Bytes.set_uint8 tx.data tx.len ((n lsr 24) land 0xff);
  Bytes.set_uint8 tx.data (tx.len + 1) ((n lsr 16) land 0xff);
  Bytes.set_uint8 tx.data (tx.len + 2) ((n lsr 8) land 0xff);
  Bytes.set_uint8 tx.data (tx.len + 3) (n land 0xff);
  Wire.blit_to_bytes node.enc tx.data (tx.len + 4);
  tx.len <- tx.len + 4 + n;
  Metrics.incr node.m_packets;
  Metrics.add node.m_bytes n

let flush_tx shared node =
  Hashtbl.iter
    (fun peer tx ->
      if tx.len > 0 then begin
        let fd = peer_fd shared node peer in
        (* loopback writes of small buffers complete immediately; loop
           for completeness *)
        let rec write_all off =
          if off < tx.len then begin
            match Unix.write fd tx.data off (tx.len - off) with
            | n -> write_all (off + n)
            | exception Unix.Unix_error (Unix.EAGAIN, _, _) ->
                Domain.cpu_relax ();
                write_all off
          end
        in
        write_all 0;
        tx.len <- 0
      end)
    node.tx

(* ------------------------------------------------------------------ *)
(* Per-node event loop.                                                *)

let route shared node ~ctx (p : Packet.t) =
  let dst_node =
    match p with
    | Packet.Pns_register _ | Packet.Pns_lookup _ -> 0
    | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } -> dst.Netref.ip
    | Packet.Pfetch_req { cls; _ } -> cls.Netref.ip
    | Packet.Pfetch_rep { dst_ip; _ } | Packet.Pns_reply { dst_ip; _ } ->
        dst_ip
    | Packet.Prelease { origin_ip; _ } -> origin_ip
  in
  if dst_node = node.node_id then Queue.push (p, ctx) node.inbox
  else send_to shared node dst_node ~ctx p

let handle_ns shared node ~ctx (p : Packet.t) =
  match p with
  | Packet.Pns_register { site_name; id_name; nref; rtti } ->
      let waiters =
        Nameservice.register_id node.ns ~site:site_name ~name:id_name ~rtti
          nref
      in
      List.iter
        (fun (w : Nameservice.waiter) ->
          route shared node ~ctx
            (Packet.Pns_reply
               { req_id = w.Nameservice.w_req_id;
                 dst_site = w.Nameservice.w_site;
                 dst_ip = w.Nameservice.w_ip;
                 result = Some nref;
                 rtti }))
        waiters
  | Packet.Pns_lookup
      { site_name; id_name; req_id; requester_site; requester_ip; _ } -> (
      let w =
        { Nameservice.w_req_id = req_id; w_site = requester_site;
          w_ip = requester_ip }
      in
      match Nameservice.lookup_id node.ns ~site:site_name ~name:id_name w with
      | Some (nref, rtti) ->
          route shared node ~ctx
            (Packet.Pns_reply
               { req_id; dst_site = requester_site; dst_ip = requester_ip;
                 result = Some nref; rtti })
      | None -> ())
  | _ -> ()

let deliver shared node ~ctx (p : Packet.t) =
  match p with
  | Packet.Pns_register _ | Packet.Pns_lookup _ -> handle_ns shared node ~ctx p
  | Packet.Pmsg { dst; _ } | Packet.Pobj { dst; _ } ->
      List.iter
        (fun s ->
          if Site.site_id s = dst.Netref.site_id then Site.deliver ~ctx s p)
        node.sites
  | Packet.Pfetch_req { cls; _ } ->
      List.iter
        (fun s ->
          if Site.site_id s = cls.Netref.site_id then Site.deliver ~ctx s p)
        node.sites
  | Packet.Pfetch_rep { dst_site; _ } | Packet.Pns_reply { dst_site; _ } ->
      List.iter
        (fun s -> if Site.site_id s = dst_site then Site.deliver ~ctx s p)
        node.sites
  | Packet.Prelease { origin_site; _ } ->
      List.iter
        (fun s -> if Site.site_id s = origin_site then Site.deliver ~ctx s p)
        node.sites

(* Idle parking: instead of a fixed 0.5 ms sleep per quiet iteration,
   the loop blocks in [select] on everything that can make work appear
   from outside — the listener (new connections) and the accepted
   sockets (data).  The timeout doubles from [park_min] to [park_max]
   across consecutive quiet iterations and resets on any work, so a
   busy node never parks and a quiet one converges to a few wakeups
   per second; inbound bytes end the park immediately (the wakeup
   half), where the fixed sleep always paid its full latency. *)
let park_min = 5e-5 (* 50 us *)
let park_max = 5e-3 (* 5 ms *)

let park node ~timeout =
  node.parks <- node.parks + 1;
  Metrics.incr node.m_parks;
  let fds = node.listen :: List.map fst node.accepted in
  match Unix.select fds [] [] timeout with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let node_loop shared node () =
  let backoff = ref park_min in
  while not (Atomic.get shared.stop) do
    let worked = ref false in
    (* accept new connections *)
    (match Unix.accept node.listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        node.accepted <- (fd, buf_create ()) :: node.accepted;
        worked := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
    (* read from peers *)
    let scratch = node.scratch in
    List.iter
      (fun (fd, cb) ->
        match Unix.read fd scratch 0 (Bytes.length scratch) with
        | 0 -> () (* peer closed; keep buffer for leftovers *)
        | n ->
            buf_append cb scratch n;
            List.iter
              (fun payload ->
                Atomic.decr shared.in_flight;
                worked := true;
                let p, sp = Packet.of_string_traced payload in
                deliver shared node
                  ~ctx:(Option.value ~default:Trace.null_span sp)
                  p)
              (buf_drain cb)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ())
      node.accepted;
    (* locally queued packets (self-routed name-service traffic) *)
    while not (Queue.is_empty node.inbox) do
      worked := true;
      let p, ctx = Queue.pop node.inbox in
      deliver shared node ~ctx p
    done;
    (* run the sites *)
    List.iter
      (fun s ->
        if Site.busy s then begin
          worked := true;
          ignore (Site.pump s ~quantum:2048)
        end)
      node.sites;
    (* everything the sites and the NS queued this iteration leaves
       now, one write per peer *)
    flush_tx shared node;
    let busy =
      List.exists (fun s -> Site.busy s || Site.outstanding s > 0) node.sites
      || not (Queue.is_empty node.inbox)
      || Hashtbl.fold (fun _ tx acc -> acc || tx.len > 0) node.tx false
    in
    Atomic.set node.idle (not busy);
    if !worked then backoff := park_min
    else begin
      park node ~timeout:!backoff;
      backoff := Float.min park_max (!backoff *. 2.)
    end
  done;
  (* teardown *)
  Hashtbl.iter (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ()) node.peers;
  List.iter
    (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    node.accepted;
  (try Unix.close node.listen with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Setup and coordination.                                             *)

let run ?(nodes = 4) ?base_port ?(inputs = fun _ -> [])
    ?(timeout_ms = 10_000) ?(metrics = false) units =
  let base_port =
    match base_port with
    | Some p -> p
    | None -> 20000 + (Unix.getpid () mod 20000)
  in
  let shared =
    { base_port;
      in_flight = Atomic.make 0;
      stop = Atomic.make false;
      total_packets = Atomic.make 0;
      outputs_mu = Mutex.create ();
      outputs = [];
      by_site_id = Hashtbl.create 16 }
  in
  let mk_node node_id =
    let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen Unix.SO_REUSEADDR true;
    Unix.bind listen
      (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port + node_id));
    Unix.listen listen 16;
    Unix.set_nonblock listen;
    let mx =
      if metrics then
        Metrics.create ~label:(Printf.sprintf "node%d" node_id) ~enabled:true ()
      else Metrics.disabled
    in
    { node_id;
      port = base_port + node_id;
      listen;
      peers = Hashtbl.create 8;
      tx = Hashtbl.create 8;
      enc = Wire.encoder ~size:256 ();
      accepted = [];
      sites = [];
      inbox = Queue.create ();
      ns = Nameservice.create ();
      idle = Atomic.make true;
      scratch = Bytes.create 8192;
      parks = 0;
      mx;
      m_parks = Metrics.counter mx "parks";
      m_packets = Metrics.counter mx "packets";
      m_bytes = Metrics.counter mx "bytes";
      m_retries = Metrics.counter mx "connect_retries" }
  in
  let node_arr = Array.init nodes mk_node in
  (* place sites round-robin, as the simulated cluster does *)
  List.iteri
    (fun i (name, unit_) ->
      let node = node_arr.(i mod nodes) in
      let site_id = i in
      Hashtbl.replace shared.by_site_id site_id node.node_id;
      let site =
        Site.create ~name ~site_id ~ip:node.node_id
          ~inputs:(inputs name)
          ~send:(fun ctx p -> route shared node ~ctx p)
          ~on_output:(fun e ->
            Mutex.lock shared.outputs_mu;
            shared.outputs <- e :: shared.outputs;
            Mutex.unlock shared.outputs_mu)
          ~unit_ ();
      in
      node.sites <- site :: node.sites;
      Site.start site;
      Atomic.set node.idle false)
    units;
  let started = Unix.gettimeofday () in
  (* one OCaml domain per node: with more cores than nodes the node
     loops run truly in parallel (the systhread version they replace
     shared one GIL-less runtime but still fought over the single
     domain's minor heap pauses) *)
  let doms =
    Array.to_list
      (Array.map (fun n -> Domain.spawn (node_loop shared n)) node_arr)
  in
  (* coordinator: two consecutive all-idle scans with nothing in flight *)
  let timed_out = ref false in
  let idle_streak = ref 0 in
  while not (Atomic.get shared.stop) do
    Unix.sleepf 0.005;
    let all_idle =
      Array.for_all (fun n -> Atomic.get n.idle) node_arr
      && Atomic.get shared.in_flight = 0
    in
    if all_idle then incr idle_streak else idle_streak := 0;
    if !idle_streak >= 3 then Atomic.set shared.stop true;
    if (Unix.gettimeofday () -. started) *. 1000. > float_of_int timeout_ms
    then begin
      timed_out := true;
      Atomic.set shared.stop true
    end
  done;
  List.iter Domain.join doms;
  let wall_ns =
    int_of_float ((Unix.gettimeofday () -. started) *. 1e9)
  in
  let merged =
    (* Domain.join above is the happens-before edge for the node-
       confined registries *)
    if metrics then begin
      let into = Metrics.create ~enabled:true () in
      Array.iter (fun n -> Metrics.merge_into ~into n.mx) node_arr;
      into
    end
    else Metrics.disabled
  in
  { outputs = List.rev shared.outputs;
    packets = Atomic.get shared.total_packets;
    wall_ns;
    timed_out = !timed_out;
    parks = Array.fold_left (fun acc n -> acc + n.parks) 0 node_arr;
    metrics = merged }

let run_program ?nodes ?base_port ?timeout_ms ?metrics prog =
  ignore (Api.typecheck prog);
  run ?nodes ?base_port ?timeout_ms ?metrics (Api.compile prog)

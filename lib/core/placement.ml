(* Node-to-shard placement for the parallel runtime.

   PR 7's engine assigned nodes to domains blindly ([ip mod domains]),
   which packs whatever nodes happen to collide mod N onto one domain:
   a skewed workload saturates that shard while its siblings idle (the
   E20 experiment measures exactly this).  The Mob line of work
   (Paulino & Lopes) migrates computations toward where execution is
   cheapest; this module applies the same idea at the coarser
   granularity the sharded engine controls — which domain a node's
   whole event stream runs on — using whatever load signal is
   available {e before} the run:

   - [Mod]: the PR 7 assignment, kept as the default and as the
     baseline the E20 gate compares against;
   - [Greedy]: greedy bin-packing (longest-processing-time order)
     seeded from static per-node weights — the runner passes site
     counts, the only load signal available without a prior run;
   - [Profile]: the same bin-packing seeded from measured per-node
     weights (a prior run's per-node instruction counts, exported as
     [node_weights] in the parallel report), closing the loop for
     workloads whose skew static site counts cannot see.

   Every policy yields a total map (each node gets exactly one shard
   in [0, domains)), is deterministic for fixed inputs, and pins node
   0 — the name-service host — to shard 0, which the engine requires
   for NS routing. *)

type policy =
  | Mod
  | Greedy
  | Profile of float array (* per-node weights from a prior run *)

let pp_policy ppf = function
  | Mod -> Format.fprintf ppf "mod"
  | Greedy -> Format.fprintf ppf "greedy"
  | Profile w -> Format.fprintf ppf "profile(%d nodes)" (Array.length w)

(* Greedy bin-packing, LPT order: heaviest node first, each into the
   currently lightest shard.  Ties break on the lowest index on both
   sides, so the map is a pure function of the weights.  The classic
   4/3-approximation is more than enough here — the alternative being
   beaten is a placement that ignores weight entirely. *)
let greedy_map ~domains weights =
  if domains < 1 then invalid_arg "Placement.greedy_map: domains";
  let n = Array.length weights in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let load = Array.make domains 0. in
  let map = Array.make n 0 in
  Array.iter
    (fun node ->
      let best = ref 0 in
      for s = 1 to domains - 1 do
        if load.(s) < load.(!best) then best := s
      done;
      map.(node) <- !best;
      load.(!best) <- load.(!best) +. weights.(node))
    order;
  (* pin node 0 (the name-service host) to shard 0 by relabelling the
     two shard ids — a label swap, so the packing itself is unchanged *)
  (if n > 0 && map.(0) <> 0 then
     let s0 = map.(0) in
     Array.iteri
       (fun i s -> if s = s0 then map.(i) <- 0 else if s = 0 then map.(i) <- s0)
       map);
  map

let assign ~domains ~site_counts policy =
  if domains < 1 then invalid_arg "Placement.assign: domains";
  let nodes = Array.length site_counts in
  match policy with
  | Mod -> Array.init nodes (fun ip -> ip mod domains)
  | Greedy -> greedy_map ~domains (Array.map float_of_int site_counts)
  | Profile weights ->
      if Array.length weights <> nodes then
        invalid_arg
          (Printf.sprintf
             "Placement.assign: profile has %d node weights, cluster has %d \
              nodes"
             (Array.length weights) nodes);
      greedy_map ~domains weights

(* Per-shard weight totals under [map] — what the report exposes so a
   dashboard can see the imbalance a placement produced. *)
let shard_weights ~domains ~map weights =
  let out = Array.make domains 0. in
  Array.iteri (fun node s -> out.(s) <- out.(s) +. weights.(node)) map;
  out

(* Max-over-mean of the per-shard totals: 1.0 is a perfect balance,
   [domains] is everything on one shard.  0 when there is no weight. *)
let imbalance per_shard =
  let n = Array.length per_shard in
  if n = 0 then 0.
  else begin
    let sum = Array.fold_left ( +. ) 0. per_shard in
    if sum <= 0. then 0.
    else
      let mx = Array.fold_left Float.max neg_infinity per_shard in
      mx /. (sum /. float_of_int n)
  end

(* Dynamic rebalancing (PR 10): given recent per-node load and the
   current node-to-shard map, pick one node to migrate.  The decision
   mirrors the greedy packing one move at a time: take the hottest and
   coldest shards, and move the hot shard's node whose load is closest
   to half the gap — the move that evens the pair out best.  A move is
   only proposed when

   - the max-over-mean imbalance exceeds [threshold] (hysteresis: a
     roughly balanced run never migrates), and
   - some candidate actually shrinks the gap ([load < hot - cold]:
     moving more than the whole gap would just swap the roles), and
   - the candidate is not node 0, which hosts the name service and is
     pinned to shard 0 for routing.

   One node per call: the runner issues at most one migration at a
   time, re-reading fresh loads before the next, so a burst of
   imbalance resolves as a short sequence of single moves rather than
   a thundering herd of simultaneous ships. *)
let choose_migration ~domains ~map ~loads ~threshold =
  let n = Array.length map in
  if Array.length loads <> n then
    invalid_arg "Placement.choose_migration: loads/map length mismatch";
  let per_shard = shard_weights ~domains ~map loads in
  if imbalance per_shard <= threshold then None
  else begin
    let hot = ref 0 and cold = ref 0 in
    for s = 1 to domains - 1 do
      if per_shard.(s) > per_shard.(!hot) then hot := s;
      if per_shard.(s) < per_shard.(!cold) then cold := s
    done;
    if !hot = !cold then None
    else begin
      let gap = per_shard.(!hot) -. per_shard.(!cold) in
      let target = gap /. 2. in
      let best = ref (-1) and best_d = ref infinity in
      for ip = 1 to n - 1 do
        if map.(ip) = !hot && loads.(ip) > 0. && loads.(ip) < gap then begin
          let d = Float.abs (loads.(ip) -. target) in
          if d < !best_d then begin
            best := ip;
            best_d := d
          end
        end
      done;
      if !best < 0 then None else Some (!best, !cold)
    end
  end
